package omegasm

import (
	"fmt"
	"sort"

	"omegasm/check"
	"omegasm/internal/consensus"
	"omegasm/internal/core"
	"omegasm/internal/engine"
	"omegasm/internal/lease"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// SimWrite is one workload write of a simulated run: at virtual time At
// the workload submits Set(Key, Val) to whichever process the oracle
// then names leader, and keeps resubmitting across leadership changes
// until the command commits — the deterministic analogue of KV.Put.
type SimWrite struct {
	// At is the submission time in virtual ticks.
	At int64
	// Key and Val form the command; the pair (0xFFFF, 0xFFFF) is reserved.
	Key, Val uint16
}

// SimCommit is one committed command of a simulated run, in log order.
type SimCommit struct {
	// Key and Val are the committed command's decoded pair.
	Key, Val uint16
}

// SimRequest is one open-loop workload request of a simulated run: it
// arrives at virtual time At on the clock, never gated on earlier
// requests' completions — the open-loop client model of the load
// harness, as opposed to the closed-loop SimWrite/SaturateWindow
// workloads. A write is submitted to whichever process the oracle then
// names leader and resubmitted across leadership changes until it
// commits; a read is answered by the freshest live replica's applied
// state at activation. Per-request completion times come back in
// SimRequestResult, so virtual-time latency percentiles can be compared
// against live-measured ones.
type SimRequest struct {
	// At is the arrival time in virtual ticks.
	At int64
	// Key and Val form the command for a write; reads use Key only.
	Key, Val uint16
	// Read selects a local read instead of a replicated write.
	Read bool
	// Class is an opaque workload-class tag echoed into the result (the
	// load harness keys SLO classes on it).
	Class int
	// Client identifies the issuing client for the recorded history's
	// per-client guarantees (monotone reads); requests of one client must
	// not overlap in time for program order to be meaningful.
	Client int
}

// SimRequestResult is the reproducible outcome of one SimRequest.
type SimRequestResult struct {
	// Index is the request's position in the submitted Requests slice.
	Index int
	// At echoes the request's arrival time in virtual ticks.
	At int64
	// Done is the virtual time the request completed — a write's commit
	// confirmation, a read's local answer — or -1 if it was still
	// outstanding at the horizon. Done - At is the request's open-loop
	// latency in ticks, arrival queueing included.
	Done int64
	// Read echoes the request's Read flag.
	Read bool
	// Class echoes the request's workload-class tag.
	Class int
}

// SimKVConfig parameterizes one deterministic run of the full stack —
// Omega election, Disk-Paxos replicated log, key-value store — under the
// virtual-time engine. Identical configurations (including Seed) produce
// byte-identical results: the seeded adversary chooses the interleaving,
// crashes fire at exact virtual times, and every machine steps on one
// goroutine. This is the run class the paper quantifies over, opened up
// for the whole consensus stack instead of just the election layer.
type SimKVConfig struct {
	// N is the number of processes (>= 2).
	N int
	// Seed drives the run's scheduling adversary.
	Seed int64
	// Horizon ends the run, in virtual ticks; default 500_000.
	Horizon int64
	// Algorithm selects the election algorithm; default WriteEfficient.
	Algorithm Algorithm
	// Slots is the replicated log's slot window; default 256. With
	// checkpointing (the default) it bounds only the in-flight portion of
	// the stream; with checkpointing disabled it is the total capacity.
	Slots int
	// CheckpointEvery is the sealing cadence in slots, mirroring
	// KVCheckpointEvery: 0 picks the default (a quarter of Slots), a
	// negative value disables checkpointing and restores the
	// fixed-capacity log.
	CheckpointEvery int
	// Crashes maps pid -> virtual crash time: the process (its election
	// tasks and its replica) is permanently descheduled at that time, the
	// paper's crash-stop failure. At least one process must survive to
	// satisfy AWB1; crashing every process is rejected.
	Crashes map[int]int64
	// Writes is the workload. Entries may be in any order; they are
	// submitted at their At times.
	Writes []SimWrite
	// Requests is the open-loop workload: requests arrive at their At
	// times regardless of earlier completions, and each one's completion
	// time is reported in the result's Requests (parallel bookkeeping to
	// Writes, which tracks only a delivered count).
	Requests []SimRequest
	// Lease, when positive, turns on leader leases of that many virtual
	// ticks: replicas may only arm proposals while holding the lease
	// (KVLease's authority gate under the deterministic engine, with
	// eps 0 — a machine's clock read and its effects are one atomic
	// activation), and a monitor machine performs a lease read every few
	// ticks, recording the grant history and checking the linearizability
	// invariants into the result's LeaseGrants / LeaseViolations. Requires
	// checkpointing (the descriptor row carries the catch-up barriers);
	// zero leaves leases off, the prior behavior.
	Lease int64
	// Record turns on the scenario recorder: the run assembles a full
	// check.History — per-operation invocation/response events, the
	// committed stream as individually applied by every replica, the
	// final applied state, the lease-grant history — into the result's
	// History, ready for check.Verify. Off by default (recording costs a
	// map insert per applied command).
	Record bool
	// Faults configures the gray-failure fault models (stale election
	// registers, partial census visibility, timer skew, brownouts); nil
	// injects nothing.
	Faults *SimFaults
	// Mutation seeds a deliberate correctness bug (checker non-vacuity
	// proof); MutNone runs the real stack.
	Mutation SimMutation
}

// SimKVResult is the outcome of a simulated run. For a fixed SimKVConfig
// every field is reproducible run over run.
type SimKVResult struct {
	// Committed is the retained committed history in log order, taken
	// from the freshest live replica (all live replicas' streams agree on
	// their common prefix; this is consensus's safety). On a checkpointing
	// run it is the tail since that replica's last fully-applied
	// checkpoint — the sealed prefix is summarized by CommittedTotal and
	// reflected in State. Retries across failovers may commit a command
	// more than once; the store applies duplicates idempotently.
	Committed []SimCommit
	// CommittedTotal is the full committed-stream length of the freshest
	// live replica, including commands summarized away by checkpoints
	// (equal to len(Committed) when checkpointing never sealed).
	CommittedTotal int
	// Checkpoints is how many checkpoints the freshest live replica
	// passed; SnapshotInstalls counts the ones it passed by installing a
	// published snapshot rather than replaying.
	Checkpoints int
	// SnapshotInstalls counts snapshot installs at the freshest live
	// replica (see Checkpoints).
	SnapshotInstalls int
	// State is the freshest live replica's applied key-value state (the
	// last write per key of the committed stream, checkpointed prefix
	// included).
	State map[uint16]uint16
	// Delivered counts workload writes whose commit was confirmed before
	// the horizon.
	Delivered int
	// Crashed[p] reports whether process p crashed during the run.
	Crashed []bool
	// Leaders[p] is process p's final leader estimate, -1 if p crashed.
	Leaders []int
	// SlotsUsed is how many consensus slots the longest live replica
	// decided; with batching it lags len(Committed) by the average batch
	// size.
	SlotsUsed int
	// Requests holds one result per configured open-loop SimRequest,
	// ordered by Index (the submitted slice's order). Empty when the
	// config had no Requests.
	Requests []SimRequestResult
	// LeaseGrants is the full lease-acquisition history of a leased run
	// (SimKVConfig.Lease > 0), in acquisition order.
	LeaseGrants []SimLeaseGrant
	// LeaseReads counts monitor reads served lease-locally; LeaseFallbacks
	// counts monitor activations that found no readable grant (anarchy,
	// expiry, or a barrier still in flight) and would have fallen back to
	// a quorum read.
	LeaseReads, LeaseFallbacks int
	// LeaseViolations lists every lease-linearizability violation the
	// monitor or the history audit detected, humanly readable and
	// deterministic for a fixed config. A correct implementation always
	// leaves it empty; the seeded crash campaigns assert exactly that.
	LeaseViolations []string
	// History is the recorded check.History of a Record run, nil
	// otherwise. Pass it to check.Verify (or call Verify) for the full
	// linearizability/durability verdict.
	History *check.History
	// LeaderChanges counts agreed-leader changes the watcher observed
	// after the first election settled — the leader-churn anomaly metric
	// the campaign scorer ranks runs by.
	LeaderChanges int
	// CommitStallMax is the longest gap in virtual ticks between
	// consecutive newly learned commit positions on a Record run (plus
	// the tail gap to the horizon if writes were still undelivered);
	// 0 when not recording or nothing committed.
	CommitStallMax int64
	// End is the virtual time at which the run ended.
	End int64
}

// Verify runs the correctness checker over the run's recorded history.
// The run must have been executed with SimKVConfig.Record set; verdicts
// on unrecorded runs carry a single violation saying so.
func (r *SimKVResult) Verify(opt check.Options) check.Verdict {
	if r.History == nil {
		return check.Verdict{Violations: []string{"run was not recorded: set SimKVConfig.Record"}}
	}
	return check.Verify(r.History, opt)
}

// SimLeaseGrant is one recorded lease acquisition of a leased simulated
// run (the register history of internal/lease, decoded for results).
type SimLeaseGrant struct {
	// Epoch is the grant's epoch; strictly increasing across the history.
	Epoch uint64
	// Holder is the acquiring process.
	Holder int
	// AcquiredAt and Expiry bound the granted window in virtual ticks
	// (Expiry as granted; extensions push the live register further).
	AcquiredAt, Expiry int64
	// PrevExpiry is the previous grant's final expiry as observed by this
	// acquisition; AcquiredAt > PrevExpiry is the no-overlap invariant.
	PrevExpiry int64
}

// normalize fills the config's defaults and returns the validated shard
// configuration the run executes — the same value, so what was validated
// is exactly what runs.
func (cfg *SimKVConfig) normalize() (simShardConfig, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = 500_000
	}
	if cfg.Horizon < 0 {
		return simShardConfig{}, fmt.Errorf("omegasm: sim horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = WriteEfficient
	}
	if cfg.Slots == 0 {
		cfg.Slots = 256
	}
	shard := simShardConfig{
		n:         cfg.N,
		algorithm: cfg.Algorithm,
		slots:     cfg.Slots,
		batch:     1,
		ckptEvery: resolveSimCkpt(cfg.CheckpointEvery, cfg.Slots, cfg.N),
		crashes:   cfg.Crashes,
		writes:    cfg.Writes,
		lease:     cfg.Lease,
		record:    cfg.Record,
		faults:    cfg.Faults,
		mutation:  cfg.Mutation,
	}
	for i, r := range cfg.Requests {
		shard.requests = append(shard.requests, simIndexedRequest{req: r, index: i})
	}
	return shard, shard.validate()
}

// resolveSimCkpt maps the public checkpoint knob (0: default cadence,
// negative: off) onto the resolved per-shard value, sharing NewKV's auto
// rule so the simulator always models the live store's defaults.
func resolveSimCkpt(every, slots, n int) int {
	if every < 0 {
		return 0
	}
	if every == 0 {
		return consensus.DefaultCheckpointEvery(slots, n)
	}
	return every
}

// simShardConfig is the resolved per-shard configuration the builders
// consume: SimKV runs one shard, SimShardedKV one per partition.
type simShardConfig struct {
	n         int
	algorithm Algorithm
	slots     int
	batch     int
	ckptEvery int // resolved: 0 means off
	crashes   map[int]int64
	writes    []SimWrite
	// requests is the shard's slice of the open-loop workload, each entry
	// carrying its index in the caller's Requests slice.
	requests []simIndexedRequest
	// window, when positive, adds a closed-loop load generator that keeps
	// that many commands queued on the shard's leader (the saturation
	// workload of the scaling benchmark).
	window int
	// lease, when positive, is the leader-lease duration in ticks
	// (authority-gated proposing plus the lease-read monitor).
	lease int64
	// record turns on the scenario recorder (SimKVConfig.Record).
	record bool
	// faults configures the gray-failure models; nil injects nothing.
	faults *SimFaults
	// mutation seeds a deliberate correctness bug (MutNone: none).
	mutation SimMutation
}

// simIndexedRequest pairs an open-loop request with its position in the
// caller's Requests slice, so sharded runs can reassemble results in
// submission order.
type simIndexedRequest struct {
	req   SimRequest
	index int
}

func (c *simShardConfig) validate() error {
	if c.n < 2 {
		return fmt.Errorf("omegasm: sim needs at least 2 processes, got %d", c.n)
	}
	if !c.algorithm.valid() {
		return fmt.Errorf("omegasm: unknown algorithm %v", c.algorithm)
	}
	if c.slots < 1 {
		return fmt.Errorf("omegasm: sim needs at least 1 log slot, got %d", c.slots)
	}
	if c.batch < 1 {
		return fmt.Errorf("omegasm: sim batch size must be at least 1, got %d", c.batch)
	}
	if c.batch > 1 && c.n > consensus.MaxBatchProcs {
		return fmt.Errorf("omegasm: sim batching supports at most %d processes, got %d", consensus.MaxBatchProcs, c.n)
	}
	if c.ckptEvery > 0 {
		if c.n > consensus.MaxBatchProcs {
			return fmt.Errorf("omegasm: sim checkpointing supports at most %d processes, got %d", consensus.MaxBatchProcs, c.n)
		}
		if c.ckptEvery >= c.slots {
			return fmt.Errorf("omegasm: sim checkpoint interval %d must be below the %d-slot window", c.ckptEvery, c.slots)
		}
	}
	// Validate in sorted pid order: with several bad entries the error
	// reported must be the same on every run (map order must never pick
	// it), or seeded-replay comparisons of failing configs would flake.
	pids := make([]int, 0, len(c.crashes))
	for p := range c.crashes {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	for _, p := range pids {
		if t := c.crashes[p]; p < 0 || p >= c.n {
			return fmt.Errorf("omegasm: crash schedule names process %d of %d", p, c.n)
		} else if t < 0 {
			return fmt.Errorf("omegasm: crash time %d for process %d is negative", t, p)
		}
	}
	if len(c.crashes) >= c.n {
		return fmt.Errorf("omegasm: crash schedule kills all %d processes; at least one must survive", c.n)
	}
	for _, wr := range c.writes {
		if consensus.IsReserved(consensus.EncodeSet(wr.Key, wr.Val), c.batch > 1 || c.ckptEvery > 0) {
			return fmt.Errorf("omegasm: key/value pair (0x%04x, 0x%04x) is reserved", wr.Key, wr.Val)
		}
		if wr.At < 0 {
			return fmt.Errorf("omegasm: write time %d is negative", wr.At)
		}
	}
	for _, ir := range c.requests {
		r := ir.req
		if !r.Read && consensus.IsReserved(consensus.EncodeSet(r.Key, r.Val), c.batch > 1 || c.ckptEvery > 0) {
			return fmt.Errorf("omegasm: request key/value pair (0x%04x, 0x%04x) is reserved", r.Key, r.Val)
		}
		if r.At < 0 {
			return fmt.Errorf("omegasm: request time %d is negative", r.At)
		}
	}
	if c.window < 0 {
		return fmt.Errorf("omegasm: saturation window %d is negative", c.window)
	}
	if c.lease < 0 {
		return fmt.Errorf("omegasm: lease duration %d is negative", c.lease)
	}
	if c.lease > 0 && c.ckptEvery == 0 && c.batch <= 1 {
		return fmt.Errorf("omegasm: leases need a log that reserves the descriptor row (enable checkpointing or batching)")
	}
	if err := c.faults.validate(); err != nil {
		return err
	}
	if !c.mutation.valid() {
		return fmt.Errorf("omegasm: unknown mutation %d", c.mutation)
	}
	return nil
}

// simRun holds one shard's machinery while the engine executes it.
type simRun struct {
	sim     *engine.Sim
	crashes map[int]int64
	procs   []core.Proc
	kvs     []*consensus.KV
	ids     []int // replica machine ids, for wake notifications
	writer  *simWriter
	open    *simOpenLoad
	watcher *simWatcher

	// Lease machinery of a leased run (cfg.lease > 0), nil otherwise.
	lease    *lease.Register
	leaseDur int64
	monitor  *simLeaseMonitor

	// rec is the scenario recorder of a recorded run, nil otherwise.
	rec *simHistoryRecorder
	// mutation is the run's seeded correctness bug (MutNone: none).
	mutation SimMutation
}

// simHistoryRecorder merges every replica's apply observations into one
// view of the committed stream: position -> command, with divergence
// detection (two replicas individually applying different commands at
// one position would be a consensus safety break) and commit-stall
// tracking for the campaign's anomaly score.
type simHistoryRecorder struct {
	// order maps a committed-stream position to the command every
	// observing replica applied there.
	order map[int]uint32
	// divergences records cross-replica disagreements (capped; a correct
	// stack never produces any).
	divergences []string
	// lastCommitAt and maxStall track the largest gap between
	// consecutive newly learned positions.
	lastCommitAt vclock.Time
	maxStall     int64
}

// note records replica-observed command cmd at stream position pos.
func (rec *simHistoryRecorder) note(pos int, cmd uint32, now vclock.Time) {
	if prev, ok := rec.order[pos]; ok {
		if prev != cmd && len(rec.divergences) < 8 {
			rec.divergences = append(rec.divergences, fmt.Sprintf(
				"t=%d: replicas applied different commands at position %d (%#x vs %#x) — committed streams diverged",
				now, pos, prev, cmd))
		}
		return
	}
	rec.order[pos] = cmd
	if stall := int64(now - rec.lastCommitAt); stall > rec.maxStall {
		rec.maxStall = stall
	}
	rec.lastCommitAt = now
}

// live reports whether process p is scheduled to be alive at time now.
// The crash schedule, not engine state, decides: a process whose crash
// time has passed is dead even if no event has collected it yet —
// matching how the sampler always treated crashes.
func (r *simRun) live(p int, now vclock.Time) bool {
	ct, ok := r.crashes[p]
	return !ok || now < ct
}

// agreedLeader returns the common leader estimate of all live processes,
// or (-1, false) while they disagree (the live AgreedLeader, evaluated
// deterministically inside the simulation).
func (r *simRun) agreedLeader(now vclock.Time) (int, bool) {
	leader := -1
	for p := range r.procs {
		if !r.live(p, now) {
			continue
		}
		l := r.procs[p].Leader()
		if leader == -1 {
			leader = l
		} else if leader != l {
			return -1, false
		}
	}
	if leader == -1 || !r.live(leader, now) {
		return -1, false
	}
	return leader, true
}

// simProcMachine runs one election process's T2/T3 tasks.
type simProcMachine struct{ p core.Proc }

//omegalint:allow wakehint sim-only machine: WakeNow under the Sim engine is paced by the seeded adversary (the paper's T2 loop always has work)
func (m simProcMachine) Step(now vclock.Time) engine.Hint {
	m.p.Step(now)
	return engine.Now()
}

func (m simProcMachine) OnTimer(now vclock.Time) uint64 { return m.p.OnTimer(now) }

// simReplicaMachine drives one replica's store under the adversary's
// pacing. Unlike the live engine there is no burst draining: the pacing
// is the asynchrony model, so each wake is one micro-step. On a leased
// run it also performs the holder's housekeeping, mirroring the live
// kvMachine: extend while holding, acquire when agreed leader, and fence
// a fresh grant with a catch-up barrier before marking it readable.
type simReplicaMachine struct {
	r   *simRun
	idx int

	// Lease catch-up bookkeeping (leased runs only): the fence generation
	// snapshot taken at acquisition, the grant epoch it fences, and
	// whether the barrier completed (the grant is marked readable).
	acqGen      uint64
	acqEpoch    uint64
	barrierDone bool
}

//omegalint:allow wakehint sim-only machine: each wake is one paced micro-step of the asynchrony model, so WakeNow cannot spin
func (m *simReplicaMachine) Step(now vclock.Time) engine.Hint {
	r := m.r
	kv := r.kvs[m.idx]
	holder := false
	if r.lease != nil {
		if epoch, ok := r.lease.Held(m.idx, now); ok {
			holder = r.lease.Extend(m.idx, now, r.leaseDur)
			m.acqEpoch = epoch
		} else if l, ok := r.agreedLeader(now); ok && l == m.idx {
			// Expired or never held: (re)acquire under a fresh epoch. The
			// fence snapshot is taken before this step's proposing, so the
			// barrier provably covers every prior authority's commits.
			// MutPrematureLeaseExtend runs the acquire guard with a negative
			// skew bound, admitting a new grant while the previous one is
			// still valid — the seeded bug the lease checker must catch.
			eps := int64(0)
			if r.mutation == MutPrematureLeaseExtend {
				eps = -2 * r.leaseDur
			}
			if epoch, ok := r.lease.Acquire(m.idx, now, r.leaseDur, eps); ok {
				holder = true
				m.acqEpoch = epoch
				m.acqGen = kv.FenceGen()
				m.barrierDone = false
			}
		}
	}
	// Shed the queue under another replica's reign before stepping, as the
	// live kvMachine does (the watcher alone leaves a window in which a
	// re-elected stale queue could commit old writes after newer ones).
	if l, ok := r.agreedLeader(now); ok && l != m.idx {
		kv.DropPending()
	}
	kv.Step(now)
	if holder && !m.barrierDone {
		if kv.FencedSince(m.acqGen) {
			r.lease.MarkReadable(m.acqEpoch, m.idx)
			m.barrierDone = true
		} else if kv.PendingLen() == 0 {
			// Idle store: nothing in flight will fence for us, so commit a
			// no-op barrier. Submission failures cannot happen here (leased
			// runs validated the descriptor row), but stay defensive.
			if kv.SubmitBarrier() != nil {
				m.barrierDone = true
			}
		}
	}
	return engine.Now()
}

// simWatcher is the leadership watcher: on a change of agreed leader it
// drops the queues stranded on the other replicas (see NewKV for why)
// and wakes every replica.
type simWatcher struct {
	r          *simRun
	lastLeader int
	// changes counts agreed-leader changes after the first settlement
	// (the campaign's leader-churn metric).
	changes int
}

func (w *simWatcher) Step(now vclock.Time) engine.Hint {
	if l, ok := w.r.agreedLeader(now); ok && l != w.lastLeader {
		for i, st := range w.r.kvs {
			if i != l {
				st.DropPending()
			}
		}
		if w.lastLeader != -1 {
			w.changes++
		}
		w.lastLeader = l
		// Wake every replica, as the live watcher does: the new leader may
		// hold a queue, and parked followers may sit on unlearned slots a
		// dead leader decided.
		for _, id := range w.r.ids {
			w.r.sim.Notify(id)
		}
	}
	return engine.At(now + 16)
}

// simLeaseMonitor is the adversarial lease-read client of a leased run:
// every few ticks it performs the exact lease-read protocol (readable
// grant -> serve from the holder's applied state) and checks the two
// properties a lease read must never break, across any crash schedule:
//
//   - Reads never go back in time: the serving replica's applied
//     watermark is non-decreasing across consecutive lease reads, even
//     when the serving holder changes across a crash + re-acquisition.
//
//   - Reads are never stale: at the instant of a served read, no live
//     replica's committed stream exceeds the serving holder's applied
//     state. While a readable grant is valid its holder is the only
//     commit authority and applies its own commits in the same atomic
//     activation, so any exceedance means a second authority committed
//     under the lease — exactly the straddle the design must exclude.
//
// Violations are recorded as deterministic strings; a correct
// implementation never produces any.
type simLeaseMonitor struct {
	r *simRun

	reads       int
	fallbacks   int
	lastApplied int
	lastEpoch   uint64
	violations  []string
}

func (m *simLeaseMonitor) Step(now vclock.Time) engine.Hint {
	holder, epoch, ok := m.r.lease.ReadableHolder(now)
	if !ok {
		m.fallbacks++
		return engine.At(now + 4)
	}
	m.reads++
	kv := m.r.kvs[holder]
	applied := kv.Applied()
	if applied < m.lastApplied {
		m.violations = append(m.violations, fmt.Sprintf(
			"t=%d epoch=%d holder=%d: lease read went back in time (applied %d after %d)",
			now, epoch, holder, applied, m.lastApplied))
	}
	for p, other := range m.r.kvs {
		if p != holder && m.r.live(p, now) && other.CommittedLen() > applied {
			m.violations = append(m.violations, fmt.Sprintf(
				"t=%d epoch=%d holder=%d: stale lease read (replica %d committed %d > holder applied %d)",
				now, epoch, holder, p, other.CommittedLen(), applied))
		}
	}
	m.lastApplied, m.lastEpoch = applied, epoch
	return engine.At(now + 4)
}

// simActiveWrite is one workload write in flight.
type simActiveWrite struct {
	write       SimWrite
	cmd         uint32
	marks       []int // committed watermark per replica at activation
	submittedTo int
	submitGen   uint64
	done        bool
	doneAt      vclock.Time // confirmation time (valid when done)
}

// simWriter is the deterministic Put loop: it activates writes at their
// times, submits to the agreed leader, confirms commits against
// activation watermarks, and resubmits when leadership moves.
type simWriter struct {
	r         *simRun
	writes    []SimWrite // sorted by At
	next      int
	active    []*simActiveWrite
	delivered int
}

func (w *simWriter) Step(now vclock.Time) engine.Hint {
	// Confirm commits first, so a write activated this tick cannot match
	// a historical entry.
	for _, aw := range w.active {
		if aw.done {
			continue
		}
		for i, kv := range w.r.kvs {
			if w.r.live(i, now) && kv.CommittedContainsAfter(aw.marks[i], aw.cmd) {
				aw.done = true
				aw.doneAt = now
				w.delivered++
				break
			}
		}
	}
	for w.next < len(w.writes) && w.writes[w.next].At <= now {
		wr := w.writes[w.next]
		aw := &simActiveWrite{write: wr, cmd: consensus.EncodeSet(wr.Key, wr.Val), submittedTo: -1}
		for _, kv := range w.r.kvs {
			aw.marks = append(aw.marks, kv.CommittedLen())
		}
		w.active = append(w.active, aw)
		w.next++
	}
	outstanding := false
	if l, ok := w.r.agreedLeader(now); ok {
		gen := w.r.kvs[l].DropGeneration()
		for _, aw := range w.active {
			if aw.done {
				continue
			}
			outstanding = true
			// Resubmit on a leader change, and when a flap this machine
			// never observed swept the command from the leader's queue (its
			// drop generation moved since the submit).
			if aw.submittedTo != l || aw.submitGen != gen {
				if err := w.r.kvs[l].Set(aw.write.Key, aw.write.Val); err == nil {
					aw.submittedTo, aw.submitGen = l, gen
					w.r.sim.Notify(w.r.ids[l])
					// MutDropQuorumAck: acknowledge at submission instead of
					// commit confirmation. A leader crash between here and the
					// commit loses an acknowledged write.
					if w.r.mutation == MutDropQuorumAck {
						aw.done = true
						aw.doneAt = now
						w.delivered++
					}
				}
			}
		}
	} else {
		for _, aw := range w.active {
			if !aw.done {
				outstanding = true
			}
		}
	}
	if !outstanding && w.next == len(w.writes) {
		return engine.Park() // all delivered; nothing will reactivate us
	}
	wake := now + 8
	if !outstanding && w.next < len(w.writes) && w.writes[w.next].At > wake {
		wake = w.writes[w.next].At
	}
	return engine.At(wake)
}

// simOpenRequest is one open-loop request in flight or completed. A
// write carries the same submission bookkeeping as simActiveWrite
// (activation watermarks, submit target and drop generation); a read
// completes at activation.
type simOpenRequest struct {
	req         SimRequest
	index       int
	cmd         uint32
	marks       []int
	submittedTo int
	submitGen   uint64
	done        bool
	doneAt      vclock.Time
	// gotVal/gotOK is a read's observed answer (valid when done), kept
	// for the recorded history.
	gotVal uint16
	gotOK  bool
}

// simOpenLoad is the open-loop arrival machine of the load harness:
// requests activate at their scheduled virtual times — never gated on
// earlier completions, exactly the open-loop client model — and each
// one's completion time is recorded. Reads are answered at activation
// from the freshest live replica's applied state; writes follow the
// simWriter protocol (submit to the agreed leader, confirm against
// activation watermarks, resubmit when leadership moves or the queue is
// swept). While work is outstanding the machine runs adversary-paced
// (WakeNow), so activation and confirmation granularity is the same
// pacing noise every other machine of the model experiences.
type simOpenLoad struct {
	r      *simRun
	reqs   []*simOpenRequest // sorted by (At, submission index)
	next   int
	active []*simOpenRequest // writes awaiting commit confirmation
}

//omegalint:allow wakehint sim-only machine: WakeNow only while requests are outstanding, and the seeded adversary paces every poll
func (w *simOpenLoad) Step(now vclock.Time) engine.Hint {
	// Confirm outstanding writes first, so a request activated this tick
	// cannot match a historical commit.
	live := w.active[:0]
	for _, ar := range w.active {
		if !ar.done {
			for i, kv := range w.r.kvs {
				if w.r.live(i, now) && kv.CommittedContainsAfter(ar.marks[i], ar.cmd) {
					ar.done = true
					ar.doneAt = now
					break
				}
			}
		}
		if !ar.done {
			live = append(live, ar)
		}
	}
	w.active = live
	for w.next < len(w.reqs) && w.reqs[w.next].req.At <= now {
		ar := w.reqs[w.next]
		w.next++
		if ar.req.Read {
			// A read is local: answered by the freshest live replica's
			// applied state the moment the client's request is scheduled.
			// Its open-loop latency is the arrival queueing alone.
			freshest := -1
			for i := range w.r.kvs {
				if w.r.live(i, now) && (freshest < 0 || w.r.kvs[i].CommittedLen() > w.r.kvs[freshest].CommittedLen()) {
					freshest = i
				}
			}
			if freshest >= 0 {
				ar.gotVal, ar.gotOK = w.r.kvs[freshest].Get(ar.req.Key)
			}
			ar.done = true
			ar.doneAt = now
			continue
		}
		ar.cmd = consensus.EncodeSet(ar.req.Key, ar.req.Val)
		ar.submittedTo = -1
		for _, kv := range w.r.kvs {
			ar.marks = append(ar.marks, kv.CommittedLen())
		}
		w.active = append(w.active, ar)
	}
	if l, ok := w.r.agreedLeader(now); ok && len(w.active) > 0 {
		gen := w.r.kvs[l].DropGeneration()
		notify := false
		for _, ar := range w.active {
			// Submit once per reign: resubmit on a leader change, and when
			// a flap swept the leader's queue since the submit.
			if ar.done {
				continue
			}
			if ar.submittedTo != l || ar.submitGen != gen {
				if err := w.r.kvs[l].Set(ar.req.Key, ar.req.Val); err == nil {
					ar.submittedTo, ar.submitGen = l, gen
					notify = true
					// MutDropQuorumAck: see simWriter — ack at submission.
					if w.r.mutation == MutDropQuorumAck {
						ar.done = true
						ar.doneAt = now
					}
				}
			}
		}
		if notify {
			w.r.sim.Notify(w.r.ids[l])
		}
	}
	if len(w.active) > 0 {
		return engine.Now()
	}
	if w.next < len(w.reqs) {
		at := w.reqs[w.next].req.At
		if at <= now {
			at = now + 1
		}
		return engine.At(at)
	}
	return engine.Park() // every request completed; nothing will reactivate us
}

// simLoadWriter is the closed-loop saturation workload of the scaling
// benchmark: it keeps window commands queued on the shard's agreed
// leader, refilling as batches commit, so the shard's consensus pipeline
// is never starved and the committed count measures its capacity. Keys
// cycle over the low key space; delivery is not tracked (the committed
// history is the measurement).
type simLoadWriter struct {
	r      *simRun
	window int
	nextK  uint32
}

func (w *simLoadWriter) Step(now vclock.Time) engine.Hint {
	l, ok := w.r.agreedLeader(now)
	if !ok {
		return engine.At(now + 16)
	}
	kv := w.r.kvs[l]
	if kv.LogFull() {
		return engine.Park()
	}
	refilled := false
	for kv.PendingLen() < w.window {
		// Keys stay far below the reserved 0xFFFF row.
		if err := kv.Set(uint16(w.nextK%1024), uint16(w.nextK)); err != nil {
			break
		}
		w.nextK++
		refilled = true
	}
	if refilled {
		w.r.sim.Notify(w.r.ids[l])
	}
	return engine.At(now + 4)
}

// simElectionClasses names the register classes eligible for fault
// injection: the election layer's families, never the consensus log's.
func simElectionClasses() map[string]bool {
	return map[string]bool{
		core.ClassSuspicions: true,
		core.ClassProgress:   true,
		core.ClassStop:       true,
		core.ClassLast:       true,
		core.ClassNSusp:      true,
		core.ClassHB:         true,
		core.ClassSSusp:      true,
	}
}

// simBrownout wraps a pacing with the configured brownout window, or
// returns it unchanged when none is configured.
func simBrownout(f *SimFaults, p engine.Pacing) engine.Pacing {
	if !f.brownout() {
		return p
	}
	return sched.Brownout{
		P:      p,
		From:   vclock.Time(f.BrownoutFrom),
		To:     vclock.Time(f.BrownoutTo),
		Factor: vclock.Duration(f.BrownoutFactor),
	}
}

// addSimShard builds one shard's full stack — election processes,
// replicas over a (possibly batched) log, leadership watcher, workload
// writers — and registers every machine on sim. Machines are added in a
// fixed order, so the run stays a pure function of (seed, config).
func addSimShard(sim *engine.Sim, cfg simShardConfig) (*simRun, error) {
	n := cfg.n
	mem := shmem.NewSimMem(n)
	run := &simRun{sim: sim, crashes: cfg.crashes, mutation: cfg.mutation}

	// The election build sees the (possibly) faulted view of the shared
	// memory; the consensus log below always gets the raw atomic memory,
	// so register faults probe the election algorithms' regular-register
	// tolerance without breaking the Paxos substrate's assumptions.
	var electionMem shmem.Mem = mem
	if cfg.faults.registerFaults() {
		electionMem = shmem.NewFaultMem(mem, shmem.FaultConfig{
			StaleReadP:     cfg.faults.StaleReadP,
			StaleWindow:    cfg.faults.StaleWindow,
			PartialViewP:   cfg.faults.PartialViewP,
			PartialViewLen: cfg.faults.PartialViewLen,
			Classes:        simElectionClasses(),
		}, sim.Now, sim.Rng())
	}

	run.procs = make([]core.Proc, n)
	switch cfg.algorithm {
	case WriteEfficient:
		for i, p := range core.BuildAlgo1(electionMem, n) {
			run.procs[i] = p
		}
	case Bounded:
		for i, p := range core.BuildAlgo2(electionMem, n) {
			run.procs[i] = p
		}
	case NWnR:
		for i, p := range core.BuildNWNR(electionMem, n) {
			run.procs[i] = p
		}
	case TimerFree:
		for i, p := range core.BuildTimerFree(electionMem, n) {
			run.procs[i] = p
		}
	}

	// AWB1 needs one correct process with eventually bounded step gaps:
	// designate the lowest pid the crash schedule spares.
	awb := -1
	for p := 0; p < n; p++ {
		if _, crashes := cfg.crashes[p]; !crashes {
			awb = p
			break
		}
	}
	for p := 0; p < n; p++ {
		// The non-designated processes face the canonical asynchronous
		// adversary — usually prompt, occasionally stalled for hundreds of
		// ticks — so the run genuinely exercises asynchrony; the AWB1
		// process gets the same adversary with its delays clamped to delta,
		// which is what makes the designation (and the election's liveness)
		// real rather than vacuous.
		var pacing engine.Pacing = sched.HeavyTail{Min: 1, Max: 8, StallP: 0.01, StallMax: 256}
		if p == awb {
			pacing = sched.Clamp{P: pacing, Delta: 8}
		}
		// The brownout wraps outside the AWB1 clamp: inside the window
		// even the designated process slows, but the window is finite, so
		// the eventual bound survives. Skew draws happen in Add order, so
		// the per-process assignment is a pure function of the seed.
		pacing = simBrownout(cfg.faults, pacing)
		scale := vclock.Duration(4)
		if f := cfg.faults; f != nil && f.TimerSkewMax > 0 {
			scale += vclock.Duration(sim.Rng().Intn(f.TimerSkewMax + 1))
		}
		opts := []engine.SimOpt{
			engine.WithPacing(pacing),
			engine.WithTimer(vclock.Exact{Scale: scale, Floor: 1}, 1),
		}
		if ct, ok := cfg.crashes[p]; ok {
			opts = append(opts, engine.WithCrashAt(ct))
		}
		sim.Add(simProcMachine{p: run.procs[p]}, opts...)
	}

	log, err := consensus.NewCheckpointLog(mem, n, cfg.slots, cfg.batch, cfg.ckptEvery)
	if err != nil {
		return nil, fmt.Errorf("omegasm: sim log: %w", err)
	}
	if cfg.lease > 0 {
		run.lease = &lease.Register{}
		run.lease.EnableHistory()
		run.leaseDur = cfg.lease
	}
	for i := 0; i < n; i++ {
		i := i
		replica, err := consensus.NewReplica(log, i, func() int { return run.procs[i].Leader() })
		if err != nil {
			return nil, fmt.Errorf("omegasm: sim replica %d: %w", i, err)
		}
		kv, err := consensus.NewKV(replica)
		if err != nil {
			return nil, fmt.Errorf("omegasm: sim replica %d: %w", i, err)
		}
		if run.lease != nil {
			// The authority gate: a replica only arms proposals while its
			// lease is valid, which is what confines commits to grant
			// windows (same wiring as NewKV's live stores).
			reg := run.lease
			kv.SetAuthority(func(t vclock.Time) bool {
				_, held := reg.Held(i, t)
				return held
			})
		}
		if cfg.record {
			if run.rec == nil {
				run.rec = &simHistoryRecorder{order: make(map[int]uint32)}
			}
			rec := run.rec
			kv.SetApplyObserver(func(pos int, cmd uint32) {
				rec.note(pos, cmd, sim.Now())
			})
		}
		run.kvs = append(run.kvs, kv)
		opts := []engine.SimOpt{engine.WithPacing(simBrownout(cfg.faults, sched.Uniform{Min: 1, Max: 8}))}
		if ct, ok := cfg.crashes[i]; ok {
			opts = append(opts, engine.WithCrashAt(ct))
		}
		run.ids = append(run.ids, sim.Add(&simReplicaMachine{r: run, idx: i}, opts...))
	}

	run.watcher = &simWatcher{r: run, lastLeader: -1}
	sim.Add(run.watcher, engine.WithFirstWakeAt(16))
	if run.lease != nil {
		run.monitor = &simLeaseMonitor{r: run}
		sim.Add(run.monitor, engine.WithFirstWakeAt(16))
	}

	if len(cfg.writes) > 0 {
		writes := append([]SimWrite(nil), cfg.writes...)
		sort.SliceStable(writes, func(i, j int) bool { return writes[i].At < writes[j].At })
		run.writer = &simWriter{r: run, writes: writes}
		first := vclock.Time(1)
		if writes[0].At > first {
			first = writes[0].At
		}
		sim.Add(run.writer, engine.WithFirstWakeAt(first))
	}
	if len(cfg.requests) > 0 {
		reqs := make([]*simOpenRequest, 0, len(cfg.requests))
		for _, ir := range cfg.requests {
			reqs = append(reqs, &simOpenRequest{req: ir.req, index: ir.index})
		}
		sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].req.At < reqs[j].req.At })
		run.open = &simOpenLoad{r: run, reqs: reqs}
		first := vclock.Time(1)
		if reqs[0].req.At > first {
			first = reqs[0].req.At
		}
		sim.Add(run.open, engine.WithFirstWakeAt(first))
	}
	if cfg.window > 0 {
		sim.Add(&simLoadWriter{r: run, window: cfg.window}, engine.WithFirstWakeAt(16))
	}
	return run, nil
}

// collect assembles the shard's reproducible outcome at end time.
func (r *simRun) collect(end vclock.Time) *SimKVResult {
	n := len(r.procs)
	res := &SimKVResult{
		State:   make(map[uint16]uint16),
		Crashed: make([]bool, n),
		Leaders: make([]int, n),
		End:     end,
	}
	if r.writer != nil {
		res.Delivered = r.writer.delivered
	}
	if r.watcher != nil {
		res.LeaderChanges = r.watcher.changes
	}
	if r.lease != nil {
		res.LeaseReads = r.monitor.reads
		res.LeaseFallbacks = r.monitor.fallbacks
		res.LeaseViolations = append(res.LeaseViolations, r.monitor.violations...)
		for _, g := range r.lease.History() {
			res.LeaseGrants = append(res.LeaseGrants, SimLeaseGrant{
				Epoch: g.Epoch, Holder: g.Holder,
				AcquiredAt: int64(g.AcquiredAt), Expiry: int64(g.Expiry),
				PrevExpiry: int64(g.PrevExpiry),
			})
		}
		// The history audit (epochs advance by one, windows never overlap,
		// observed expiries never regress) is the checker's lease pass,
		// run with eps 0: the deterministic engine has no clock skew.
		res.LeaseViolations = append(res.LeaseViolations,
			check.Leases(simCheckGrants(res.LeaseGrants), 0)...)
	}
	if r.open != nil {
		for _, ar := range r.open.reqs {
			rr := SimRequestResult{
				Index: ar.index,
				At:    ar.req.At,
				Done:  -1,
				Read:  ar.req.Read,
				Class: ar.req.Class,
			}
			if ar.done {
				rr.Done = ar.doneAt
			}
			res.Requests = append(res.Requests, rr)
		}
		sort.Slice(res.Requests, func(i, j int) bool { return res.Requests[i].Index < res.Requests[j].Index })
	}
	freshest := -1
	for p := 0; p < n; p++ {
		if !r.live(p, end) {
			res.Crashed[p] = true
			res.Leaders[p] = -1
			continue
		}
		res.Leaders[p] = r.procs[p].Leader()
		if freshest < 0 || r.kvs[p].CommittedLen() > r.kvs[freshest].CommittedLen() {
			freshest = p
		}
	}
	if freshest >= 0 {
		kv := r.kvs[freshest]
		res.CommittedTotal = kv.CommittedLen()
		res.SlotsUsed = kv.SlotsDecided()
		res.Checkpoints = kv.Checkpoints()
		res.SnapshotInstalls = kv.SnapshotInstalls()
		for _, cmd := range kv.Committed() {
			k, v := consensus.DecodeSet(cmd)
			res.Committed = append(res.Committed, SimCommit{Key: k, Val: v})
		}
		res.State = kv.Snapshot()
	}
	if r.rec != nil {
		res.CommitStallMax = r.rec.maxStall
		// The tail counts as a stall only when work was actually starved:
		// a run whose writes all delivered is simply done.
		if r.writer != nil && res.Delivered < len(r.writer.writes) {
			if tail := int64(end - r.rec.lastCommitAt); tail > res.CommitStallMax {
				res.CommitStallMax = tail
			}
		}
		res.History = r.assembleHistory(res, freshest)
	}
	return res
}

// assembleHistory renders a recorded run as the checker's History: the
// client operation events, the merged committed stream, the freshest
// replica's final applied state, the lease grants, and the in-run
// monitor's breaches (External — the grant audit is not duplicated
// there, Verify re-derives it from Grants).
func (r *simRun) assembleHistory(res *SimKVResult, freshest int) *check.History {
	h := &check.History{}
	if r.writer != nil {
		for _, aw := range r.writer.active {
			op := check.Op{Kind: check.Put, Key: aw.write.Key, Val: aw.write.Val, Invoke: aw.write.At, Return: -1}
			if aw.done {
				op.Return = int64(aw.doneAt)
			}
			h.Ops = append(h.Ops, op)
		}
	}
	if r.open != nil {
		for _, ar := range r.open.reqs {
			op := check.Op{Client: ar.req.Client, Key: ar.req.Key, Invoke: ar.req.At, Return: -1}
			if ar.req.Read {
				op.Kind = check.Get
				op.Mode = check.Freshest
				if ar.done {
					op.Return = int64(ar.doneAt)
					op.Val = ar.gotVal
					op.Found = ar.gotOK
				}
			} else {
				op.Kind = check.Put
				op.Val = ar.req.Val
				if ar.done {
					op.Return = int64(ar.doneAt)
				}
			}
			h.Ops = append(h.Ops, op)
		}
	}
	poss := make([]int, 0, len(r.rec.order))
	for p := range r.rec.order {
		poss = append(poss, p)
	}
	sort.Ints(poss)
	for _, p := range poss {
		k, v := consensus.DecodeSet(r.rec.order[p])
		h.Commits = append(h.Commits, check.Commit{Pos: p, Key: k, Val: v})
	}
	if freshest >= 0 {
		h.FinalApplied = r.kvs[freshest].Applied()
		h.Final = res.State
	}
	h.Grants = simCheckGrants(res.LeaseGrants)
	if r.monitor != nil {
		h.External = append(h.External, r.monitor.violations...)
	}
	h.External = append(h.External, r.rec.divergences...)
	return h
}

// simCheckGrants converts result grants to the checker's grant type.
func simCheckGrants(gs []SimLeaseGrant) []check.Grant {
	out := make([]check.Grant, 0, len(gs))
	for _, g := range gs {
		out = append(out, check.Grant{
			Epoch: g.Epoch, Holder: g.Holder,
			AcquiredAt: g.AcquiredAt, Expiry: g.Expiry, PrevExpiry: g.PrevExpiry,
		})
	}
	return out
}

// SimKV executes one deterministic run of the full consensus/KV stack
// under the virtual-time engine and returns its reproducible outcome:
// same config (and seed), same committed history, byte for byte. Use it
// to script failover scenarios — crash the leader mid-workload, replay
// with another seed, diff the histories — that the live runtime can only
// approximate statistically.
func SimKV(cfg SimKVConfig) (*SimKVResult, error) {
	shard, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sim, err := engine.NewSim(engine.SimConfig{Seed: cfg.Seed, Horizon: cfg.Horizon})
	if err != nil {
		return nil, err
	}
	run, err := addSimShard(sim, shard)
	if err != nil {
		return nil, err
	}
	return run.collect(sim.Run()), nil
}

// SimShardCrash schedules one crash of a sharded simulated run: process
// Proc of shard Shard is permanently descheduled at virtual time At.
type SimShardCrash struct {
	// Shard and Proc locate the process.
	Shard, Proc int
	// At is the crash time in virtual ticks.
	At int64
}

// SimShardedKVConfig parameterizes one deterministic run of a whole
// sharded store — S independent shards, each a full
// election/consensus/KV stack, in one virtual-time engine. It is the
// deterministic analogue of ShardedKV: writes route by the same hash,
// shards fail independently, and identical configurations produce
// byte-identical per-shard commit histories. Because virtual time models
// every machine as its own processor, a sharded sim also measures the
// architecture's parallel capacity exactly — the scaling benchmark runs
// this with SaturateWindow set.
type SimShardedKVConfig struct {
	// Shards is the number of hash partitions (>= 1).
	Shards int
	// N is the number of processes per shard (>= 2).
	N int
	// Seed drives the run's scheduling adversary.
	Seed int64
	// Horizon ends the run, in virtual ticks; default 500_000.
	Horizon int64
	// Algorithm selects the election algorithm; default WriteEfficient.
	Algorithm Algorithm
	// Slots is each shard's replicated-log capacity; default 256.
	Slots int
	// BatchSize is each shard's proposal batch size; default
	// DefaultBatchSize, 1 turns batching off. Batched runs reserve the
	// key 0xFFFF row, as ShardedKV does.
	BatchSize int
	// CheckpointEvery is each shard's sealing cadence in slots, mirroring
	// WithCheckpointEvery: 0 picks the default (a quarter of Slots), a
	// negative value disables checkpointing (fixed-capacity shard logs).
	CheckpointEvery int
	// Crashes is the cross-shard crash schedule. At least one process per
	// shard must survive.
	Crashes []SimShardCrash
	// Writes is the tracked workload: each write routes to its key's
	// shard (the ShardFor hash) and is retried across that shard's
	// leadership changes until committed.
	Writes []SimWrite
	// Requests is the open-loop workload: each request routes to its
	// key's shard and arrives there at its At time regardless of earlier
	// completions; per-request completion times come back in the result's
	// Requests, in submission order.
	Requests []SimRequest
	// SaturateWindow, when positive, adds one closed-loop load generator
	// per shard that keeps that many commands queued on the shard's
	// leader — the saturation workload whose committed count measures
	// shard capacity. Zero: no generated load.
	SaturateWindow int
	// Record turns on the scenario recorder per shard (each shard's
	// result carries its own History); see SimKVConfig.Record.
	Record bool
	// Faults configures every shard's gray-failure fault models; nil
	// injects nothing. See SimKVConfig.Faults.
	Faults *SimFaults
}

// SimShardedKVResult is the reproducible outcome of a sharded simulated
// run.
type SimShardedKVResult struct {
	// Shards holds each shard's full outcome (committed history, state,
	// per-process fates), indexed by shard.
	Shards []SimKVResult
	// State is the union of the shards' states (hash partitioning makes
	// the key sets disjoint).
	State map[uint16]uint16
	// TotalCommitted is the total number of committed commands across
	// shards.
	TotalCommitted int
	// TotalSlots is the total number of consensus slots those commands
	// used; TotalCommitted/TotalSlots is the measured average batch size.
	TotalSlots int
	// Delivered counts tracked workload writes whose commit was confirmed
	// before the horizon, across all shards.
	Delivered int
	// Requests holds one result per configured open-loop SimRequest,
	// merged across shards and ordered by Index (the submitted slice's
	// order). Empty when the config had no Requests.
	Requests []SimRequestResult
	// End is the virtual time at which the run ended.
	End int64
}

func (cfg *SimShardedKVConfig) normalize() ([]simShardConfig, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("omegasm: sim needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 500_000
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("omegasm: sim horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = WriteEfficient
	}
	if cfg.Slots == 0 {
		cfg.Slots = 256
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	shards := make([]simShardConfig, cfg.Shards)
	for s := range shards {
		shards[s] = simShardConfig{
			n:         cfg.N,
			algorithm: cfg.Algorithm,
			slots:     cfg.Slots,
			batch:     cfg.BatchSize,
			ckptEvery: resolveSimCkpt(cfg.CheckpointEvery, cfg.Slots, cfg.N),
			crashes:   map[int]int64{},
			window:    cfg.SaturateWindow,
			record:    cfg.Record,
			faults:    cfg.Faults,
		}
	}
	for _, cr := range cfg.Crashes {
		if cr.Shard < 0 || cr.Shard >= cfg.Shards {
			return nil, fmt.Errorf("omegasm: crash schedule names shard %d of %d", cr.Shard, cfg.Shards)
		}
		shards[cr.Shard].crashes[cr.Proc] = cr.At
	}
	for _, wr := range cfg.Writes {
		sh := &shards[shardIndex(wr.Key, cfg.Shards)]
		sh.writes = append(sh.writes, wr)
	}
	for i, r := range cfg.Requests {
		sh := &shards[shardIndex(r.Key, cfg.Shards)]
		sh.requests = append(sh.requests, simIndexedRequest{req: r, index: i})
	}
	for s := range shards {
		if err := shards[s].validate(); err != nil {
			return nil, fmt.Errorf("omegasm: shard %d: %w", s, err)
		}
	}
	return shards, nil
}

// SimShardedKV executes one deterministic run of a whole sharded store
// under the virtual-time engine: same config (and seed), same per-shard
// committed histories, byte for byte. Use it to script cross-shard
// failover scenarios (crash one shard's leader mid-workload and replay),
// and — with SaturateWindow — to measure how aggregate commit capacity
// scales with the shard count when every machine has its own virtual
// processor.
func SimShardedKV(cfg SimShardedKVConfig) (*SimShardedKVResult, error) {
	shardCfgs, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sim, err := engine.NewSim(engine.SimConfig{Seed: cfg.Seed, Horizon: cfg.Horizon})
	if err != nil {
		return nil, err
	}
	runs := make([]*simRun, len(shardCfgs))
	for s, sc := range shardCfgs {
		if runs[s], err = addSimShard(sim, sc); err != nil {
			return nil, fmt.Errorf("omegasm: shard %d: %w", s, err)
		}
	}
	end := sim.Run()
	res := &SimShardedKVResult{
		State: make(map[uint16]uint16),
		End:   end,
	}
	for _, run := range runs {
		sr := run.collect(end)
		res.Shards = append(res.Shards, *sr)
		res.TotalCommitted += sr.CommittedTotal
		res.TotalSlots += sr.SlotsUsed
		res.Delivered += sr.Delivered
		res.Requests = append(res.Requests, sr.Requests...)
		for k, v := range sr.State {
			res.State[k] = v
		}
	}
	sort.Slice(res.Requests, func(i, j int) bool { return res.Requests[i].Index < res.Requests[j].Index })
	return res, nil
}
