package omegasm_test

import (
	"reflect"
	"testing"

	"omegasm"
)

func TestSimShardedKVValidation(t *testing.T) {
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{Shards: 0, N: 3}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{Shards: 2, N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 2, N: 3, Crashes: []omegasm.SimShardCrash{{Shard: 5, Proc: 0, At: 1}},
	}); err == nil {
		t.Error("out-of-range crash shard accepted")
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 2, N: 2,
		Crashes: []omegasm.SimShardCrash{{Shard: 0, Proc: 0, At: 1}, {Shard: 0, Proc: 1, At: 2}},
	}); err == nil {
		t.Error("crashing a whole shard accepted")
	}
	// Batched or checkpointing runs reserve the key 0xFFFF row; only a run
	// with both off accepts it.
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 2, N: 3, Writes: []omegasm.SimWrite{{At: 1, Key: 0xFFFF, Val: 1}},
	}); err == nil {
		t.Error("reserved key accepted on a batched run")
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 2, N: 3, BatchSize: 1, Horizon: 1000,
		Writes: []omegasm.SimWrite{{At: 1, Key: 0xFFFF, Val: 1}},
	}); err == nil {
		t.Error("reserved key accepted on a checkpointing run")
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 2, N: 3, BatchSize: 1, CheckpointEvery: -1, Horizon: 1000,
		Writes: []omegasm.SimWrite{{At: 1, Key: 0xFFFF, Val: 1}},
	}); err != nil {
		t.Errorf("key 0xFFFF rejected on a plain fixed-capacity run: %v", err)
	}
	if _, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 1, N: 17,
	}); err == nil {
		t.Error("17 processes accepted on a batched run")
	}
}

// TestSimShardedKVDeliversAcrossShards: a calm sharded run commits every
// routed write, the merged state matches a directly computed one, and
// traffic actually spreads over the shards.
func TestSimShardedKVDeliversAcrossShards(t *testing.T) {
	writes := simWorkload(40, 2_000, 600)
	res, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
		Shards: 4, N: 3, Seed: 11, Writes: writes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(writes) {
		t.Fatalf("delivered %d of %d writes", res.Delivered, len(writes))
	}
	want := map[uint16]uint16{}
	for _, w := range writes {
		want[w.Key] = w.Val
	}
	if !reflect.DeepEqual(res.State, want) {
		t.Fatalf("state %v, want %v", res.State, want)
	}
	busy := 0
	for s, sh := range res.Shards {
		if len(sh.Committed) > 0 {
			busy++
		}
		if sh.SlotsUsed > len(sh.Committed) {
			t.Errorf("shard %d used %d slots for %d commands", s, sh.SlotsUsed, len(sh.Committed))
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards saw traffic; routing is not spreading", busy)
	}
	if res.TotalCommitted < len(writes) {
		t.Fatalf("total committed %d < %d writes", res.TotalCommitted, len(writes))
	}
}

// TestSimShardedKVDeterministicReplay is the acceptance property: equal
// seeds give byte-identical per-shard commit histories, even with crashes
// mid-workload.
func TestSimShardedKVDeterministicReplay(t *testing.T) {
	cfg := omegasm.SimShardedKVConfig{
		Shards: 3, N: 4, Seed: 42, Horizon: 300_000,
		Writes: simWorkload(30, 2_000, 800),
		Crashes: []omegasm.SimShardCrash{
			{Shard: 1, Proc: 0, At: 60_000},
			{Shard: 2, Proc: 3, At: 120_000},
		},
	}
	a, err := omegasm.SimShardedKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := omegasm.SimShardedKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs diverged")
	}
	for s := range a.Shards {
		if !reflect.DeepEqual(a.Shards[s].Committed, b.Shards[s].Committed) {
			t.Fatalf("shard %d commit history diverged across replays", s)
		}
	}
	if a.TotalCommitted == 0 || a.Delivered == 0 {
		t.Fatal("vacuous: nothing committed")
	}
}

// TestSimShardedKVSaturationScalesWithShards is the scaling benchmark's
// property as a unit test: under the closed-loop saturation workload, a
// 4-shard store must commit at least 3x what a single shard commits in
// the same virtual horizon (each machine owns a virtual processor, so
// this measures the architecture's parallel capacity), with batching
// visibly packing many commands per consensus slot.
func TestSimShardedKVSaturationScalesWithShards(t *testing.T) {
	run := func(shards int) *omegasm.SimShardedKVResult {
		res, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
			Shards: shards, N: 3, Seed: 7, Horizon: 30_000,
			Slots: 4096, SaturateWindow: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		for sh, sr := range res.Shards {
			if sr.SlotsUsed >= 4096 {
				t.Fatalf("shard %d filled its log; the measurement is capacity-capped", sh)
			}
		}
		return res
	}
	one := run(1)
	four := run(4)
	if one.TotalCommitted == 0 {
		t.Fatal("saturated single shard committed nothing")
	}
	// Shards are independent machines on independent virtual processors:
	// aggregate capacity must scale near-linearly. Demand the acceptance
	// floor (3x at 4 shards) with margin to spare for adversary variance.
	ratio := float64(four.TotalCommitted) / float64(one.TotalCommitted)
	if ratio < 3 {
		t.Fatalf("4 shards committed only %.2fx of 1 shard (%d vs %d)",
			ratio, four.TotalCommitted, one.TotalCommitted)
	}
	// Batching must be engaging: far fewer slots than commands.
	if four.TotalSlots*2 >= four.TotalCommitted {
		t.Fatalf("batching not engaging: %d slots for %d commands",
			four.TotalSlots, four.TotalCommitted)
	}
}

// TestSimShardedKVOpenLoopReplay routes an open-loop request stream
// across shards and checks both completion and byte-identical replay.
func TestSimShardedKVOpenLoopReplay(t *testing.T) {
	reqs := make([]omegasm.SimRequest, 48)
	for i := range reqs {
		reqs[i] = omegasm.SimRequest{
			At:    2_000 + int64(i)*2_500,
			Key:   uint16(i * 37 % 97),
			Val:   uint16(300 + i),
			Read:  i%4 == 3,
			Class: i % 3,
		}
	}
	cfg := omegasm.SimShardedKVConfig{
		Shards: 4, N: 3, Seed: 31, Horizon: 600_000, Requests: reqs,
	}
	a, err := omegasm.SimShardedKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(reqs) {
		t.Fatalf("got %d request results, want %d", len(a.Requests), len(reqs))
	}
	for i, rr := range a.Requests {
		if rr.Index != i {
			t.Fatalf("result %d has Index %d", i, rr.Index)
		}
		if rr.Done < 0 {
			t.Fatalf("request %d incomplete at horizon (end=%d)", i, a.End)
		}
		if rr.Done < rr.At {
			t.Fatalf("request %d completed at %d before arrival %d", i, rr.Done, rr.At)
		}
	}
	b, err := omegasm.SimShardedKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different sharded results")
	}
}
