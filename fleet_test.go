package omegasm_test

import (
	"sync"
	"testing"
	"time"

	"omegasm"
)

func startFleet(t *testing.T, cfg omegasm.FleetConfig) *omegasm.Fleet {
	t.Helper()
	f, err := omegasm.NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

func fastClusterConfig(n int) omegasm.Config {
	return omegasm.Config{
		N:            n,
		StepInterval: 100 * time.Microsecond,
		TimerUnit:    time.Millisecond,
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := omegasm.NewFleet(omegasm.FleetConfig{Clusters: 0, Cluster: fastClusterConfig(3)}); err == nil {
		t.Error("0 clusters accepted")
	}
	if _, err := omegasm.NewFleet(omegasm.FleetConfig{Clusters: 2, Cluster: omegasm.Config{N: 1}}); err == nil {
		t.Error("invalid per-cluster config accepted")
	}
}

func TestFleetElectsEverywhere(t *testing.T) {
	const clusters = 4
	f := startFleet(t, omegasm.FleetConfig{Clusters: clusters, Cluster: fastClusterConfig(3)})
	if f.Clusters() != clusters {
		t.Fatalf("Clusters() = %d", f.Clusters())
	}
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("fleet did not fully agree")
	}
	// Each cluster's cached view eventually reports a valid agreed leader.
	// (The exact identity may still churn right after first agreement —
	// Omega is only eventually stable — so only validity is asserted.)
	n := f.Cluster(0).N()
	for i := 0; i < clusters; i++ {
		deadline := time.Now().Add(20 * time.Second)
		for {
			if l, ok := f.Leader(i); ok && l >= 0 && l < n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster %d: cached view never settled on a valid leader", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if f.Cluster(0) == nil || f.Cluster(clusters) != nil || f.Cluster(-1) != nil {
		t.Error("Cluster() bounds wrong")
	}
	if _, ok := f.Leader(clusters); ok {
		t.Error("Leader() out of range reported agreement")
	}
}

func TestFleetCrashReElection(t *testing.T) {
	f := startFleet(t, omegasm.FleetConfig{Clusters: 2, Cluster: fastClusterConfig(3)})
	leaders, ok := f.WaitForAgreement(20 * time.Second)
	if !ok {
		t.Fatal("no initial agreement")
	}
	if err := f.Crash(0, leaders[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash(99, 0); err == nil {
		t.Error("Crash on missing cluster accepted")
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if l, ok := f.Leader(0); ok && l != leaders[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster 0 never re-elected past the crashed leader")
		}
		time.Sleep(time.Millisecond)
	}
	// The untouched cluster is unaffected by cluster 0's crash: it still
	// serves some valid leader (Omega permits churn before stabilization,
	// so only validity — not the exact identity — is guaranteed here).
	deadline = time.Now().Add(20 * time.Second)
	for {
		if l, ok := f.Leader(1); ok && l >= 0 && l < 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster 1 lost agreement after cluster 0's crash")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetConcurrentQueries hammers the cached fast path from many
// goroutines while the fleet runs; under -race this proves Leader queries
// are safe at arbitrary rates.
func TestFleetConcurrentQueries(t *testing.T) {
	const clusters = 3
	f := startFleet(t, omegasm.FleetConfig{Clusters: clusters, Cluster: fastClusterConfig(3)})
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if l, ok := f.Leader((g + i) % clusters); ok && l < 0 {
					t.Errorf("agreed view with negative leader %d", l)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFleetStartStopIdempotent(t *testing.T) {
	f, err := omegasm.NewFleet(omegasm.FleetConfig{Clusters: 2, Cluster: fastClusterConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("second Start accepted")
	}
	f.Stop()
	f.Stop() // idempotent
}
