package omegasm_test

import (
	"sync"
	"testing"
	"time"

	"omegasm"
)

func startFleet(t *testing.T, opts ...omegasm.Option) *omegasm.Fleet {
	t.Helper()
	f, err := omegasm.NewFleet(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

// fleetOpts is clusters-many fast-paced members of n processes each.
func fleetOpts(clusters, n int) []omegasm.Option {
	return append(fastOpts(n), omegasm.WithClusters(clusters))
}

func TestFleetValidation(t *testing.T) {
	if _, err := omegasm.NewFleet(omegasm.WithClusters(0), omegasm.WithN(3)); err == nil {
		t.Error("0 clusters accepted")
	}
	if _, err := omegasm.NewFleet(omegasm.WithClusters(2)); err == nil {
		t.Error("fleet without WithN accepted")
	}
	// Per-cluster overrides must target an existing member and cannot
	// carry fleet-only options.
	if _, err := omegasm.NewFleet(omegasm.WithClusters(2), omegasm.WithN(3),
		omegasm.WithClusterOptions(2, omegasm.WithN(5))); err == nil {
		t.Error("override index out of range accepted")
	}
	if _, err := omegasm.NewFleet(omegasm.WithClusters(2), omegasm.WithN(3),
		omegasm.WithClusterOptions(0, omegasm.WithClusters(3))); err == nil {
		t.Error("nested fleet-only option accepted")
	}
	if _, err := omegasm.NewFleet(omegasm.WithClusters(2), omegasm.WithN(3),
		omegasm.WithClusterOptions(1, omegasm.WithAlgorithm(omegasm.Algorithm(99)))); err == nil {
		t.Error("invalid override option accepted")
	}
}

// TestFleetClusterOverrides builds a heterogeneous fleet: the base options
// configure 3-process WriteEfficient members and one override swaps a
// member to 5 processes running Bounded.
func TestFleetClusterOverrides(t *testing.T) {
	f, err := omegasm.NewFleet(append(fleetOpts(3, 3),
		omegasm.WithClusterOptions(1, omegasm.WithN(5), omegasm.WithAlgorithm(omegasm.Bounded)),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if n := f.Cluster(0).N(); n != 3 {
		t.Errorf("cluster 0 N = %d, want 3", n)
	}
	if n := f.Cluster(1).N(); n != 5 {
		t.Errorf("cluster 1 N = %d, want 5 (override)", n)
	}
	if a := f.Cluster(1).Algorithm(); a != omegasm.Bounded {
		t.Errorf("cluster 1 algorithm = %v, want Bounded (override)", a)
	}
	if a := f.Cluster(2).Algorithm(); a != omegasm.WriteEfficient {
		t.Errorf("cluster 2 algorithm = %v, want the base default", a)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("heterogeneous fleet did not agree")
	}
}

func TestFleetClusterOutOfRange(t *testing.T) {
	f, err := omegasm.NewFleet(fleetOpts(2, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if f.Cluster(-1) != nil || f.Cluster(2) != nil || f.Cluster(1<<20) != nil {
		t.Error("out-of-range Cluster() returned non-nil")
	}
	if f.Cluster(0) == nil || f.Cluster(1) == nil {
		t.Error("in-range Cluster() returned nil")
	}
}

func TestFleetStopBeforeStart(t *testing.T) {
	f, err := omegasm.NewFleet(fleetOpts(2, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	f.Stop() // never started: must not hang or panic
	f.Stop() // and stays idempotent
	if err := f.Start(); err == nil {
		t.Error("Start accepted after Stop")
	}
}

func TestFleetElectsEverywhere(t *testing.T) {
	const clusters = 4
	f := startFleet(t, fleetOpts(clusters, 3)...)
	if f.Clusters() != clusters {
		t.Fatalf("Clusters() = %d", f.Clusters())
	}
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("fleet did not fully agree")
	}
	// Each cluster's cached view eventually reports a valid agreed leader.
	// (The exact identity may still churn right after first agreement —
	// Omega is only eventually stable — so only validity is asserted.)
	n := f.Cluster(0).N()
	for i := 0; i < clusters; i++ {
		deadline := time.Now().Add(20 * time.Second)
		for {
			if l, ok := f.Leader(i); ok && l >= 0 && l < n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster %d: cached view never settled on a valid leader", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if f.Cluster(0) == nil || f.Cluster(clusters) != nil || f.Cluster(-1) != nil {
		t.Error("Cluster() bounds wrong")
	}
	if _, ok := f.Leader(clusters); ok {
		t.Error("Leader() out of range reported agreement")
	}
}

func TestFleetCrashReElection(t *testing.T) {
	f := startFleet(t, fleetOpts(2, 3)...)
	leaders, ok := f.WaitForAgreement(20 * time.Second)
	if !ok {
		t.Fatal("no initial agreement")
	}
	if err := f.Crash(0, leaders[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash(99, 0); err == nil {
		t.Error("Crash on missing cluster accepted")
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if l, ok := f.Leader(0); ok && l != leaders[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster 0 never re-elected past the crashed leader")
		}
		time.Sleep(time.Millisecond)
	}
	// The untouched cluster is unaffected by cluster 0's crash: it still
	// serves some valid leader (Omega permits churn before stabilization,
	// so only validity — not the exact identity — is guaranteed here).
	deadline = time.Now().Add(20 * time.Second)
	for {
		if l, ok := f.Leader(1); ok && l >= 0 && l < 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster 1 lost agreement after cluster 0's crash")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetConcurrentQueries hammers the cached fast path from many
// goroutines while the fleet runs; under -race this proves Leader queries
// are safe at arbitrary rates.
func TestFleetConcurrentQueries(t *testing.T) {
	const clusters = 3
	f := startFleet(t, fleetOpts(clusters, 3)...)
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if l, ok := f.Leader((g + i) % clusters); ok && l < 0 {
					t.Errorf("agreed view with negative leader %d", l)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFleetStartStopIdempotent(t *testing.T) {
	f, err := omegasm.NewFleet(fleetOpts(2, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("second Start accepted")
	}
	f.Stop()
	f.Stop() // idempotent
}
