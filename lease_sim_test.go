package omegasm_test

import (
	"reflect"
	"testing"

	"omegasm"
)

// leaseCampaignConfig builds the adversarial leased run the campaign
// sweeps: a steady write stream across the whole horizon, leases a few
// thousand ticks long, and a crash schedule aimed at the processes the
// oracle elects — so leaders die mid-lease and their grants must hand
// over without a stale or time-travelling read.
func leaseCampaignConfig(seed int64, crashes map[int]int64) omegasm.SimKVConfig {
	cfg := omegasm.SimKVConfig{
		N:       4,
		Seed:    seed,
		Horizon: 300_000,
		Lease:   2_000,
		Crashes: crashes,
	}
	for i := int64(0); i < 400; i++ {
		cfg.Writes = append(cfg.Writes, omegasm.SimWrite{
			At:  1_000 + i*600,
			Key: uint16(i % 8),
			Val: uint16(1 + i),
		})
	}
	return cfg
}

// holders returns the distinct holders of a run's grant history, in
// first-appearance order.
func holders(grants []omegasm.SimLeaseGrant) []int {
	seen := map[int]bool{}
	var out []int
	for _, g := range grants {
		if !seen[g.Holder] {
			seen[g.Holder] = true
			out = append(out, g.Holder)
		}
	}
	return out
}

// checkLeasedRun runs one leased config and asserts the campaign
// invariants: no lease violation, lease reads actually served, writes
// actually delivered. It returns the result for campaign-level checks.
func checkLeasedRun(t *testing.T, name string, cfg omegasm.SimKVConfig) *omegasm.SimKVResult {
	t.Helper()
	res, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, v := range res.LeaseViolations {
		t.Errorf("%s: lease violation: %s", name, v)
	}
	if res.LeaseReads == 0 {
		t.Errorf("%s: monitor never served a lease read", name)
	}
	if res.Delivered == 0 {
		t.Errorf("%s: no write delivered under authority-gated proposing", name)
	}
	if len(res.LeaseGrants) == 0 {
		t.Errorf("%s: no lease was ever granted", name)
	}
	return res
}

// TestSimLeaseCrashCampaign is the seeded adversarial campaign behind
// the lease design: leaders crash mid-lease under a sweep of scheduling
// seeds, and every run must keep the two read invariants (never back in
// time, never stale — see simLeaseMonitor) plus a fully disjoint grant
// history. The campaign also checks its own teeth: across the sweep the
// lease must actually change hands, otherwise the crash schedule never
// killed a holder and the runs prove nothing.
func TestSimLeaseCrashCampaign(t *testing.T) {
	handovers := 0
	for seed := int64(1); seed <= 8; seed++ {
		res := checkLeasedRun(t, "single-crash", leaseCampaignConfig(seed, map[int]int64{0: 120_000}))
		if len(holders(res.LeaseGrants)) > 1 {
			handovers++
		}
		// A second schedule: the first two elected processes die in
		// sequence, forcing two mid-lease handovers.
		res = checkLeasedRun(t, "double-crash", leaseCampaignConfig(seed, map[int]int64{0: 90_000, 1: 200_000}))
		if len(holders(res.LeaseGrants)) > 2 {
			handovers++
		}
	}
	if handovers == 0 {
		t.Error("campaign never observed a lease handover; the crash schedules exercise nothing")
	}
}

// TestSimLeaseReplayByteIdentical pins the campaign's reproducibility:
// the same leased config (including its crash schedule and seed) yields
// the same result, byte for byte — grant history, violation list,
// committed stream, everything. These are the regression scenarios the
// campaign found most eventful (most grants and handovers), frozen.
func TestSimLeaseReplayByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    int64
		crashes map[int]int64
	}{
		{"single-crash-seed3", 3, map[int]int64{0: 120_000}},
		{"double-crash-seed5", 5, map[int]int64{0: 90_000, 1: 200_000}},
	} {
		cfg1 := leaseCampaignConfig(tc.seed, tc.crashes)
		cfg2 := leaseCampaignConfig(tc.seed, tc.crashes)
		r1 := checkLeasedRun(t, tc.name, cfg1)
		r2, err := omegasm.SimKV(cfg2)
		if err != nil {
			t.Fatalf("%s: replay: %v", tc.name, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: replay diverged:\n run 1: %+v\n run 2: %+v", tc.name, r1, r2)
		}
	}
}
