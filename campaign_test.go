package omegasm

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"omegasm/check"
)

// campaignDenseWrites builds a write every step ticks in [from, to],
// with distinct keys and values.
func campaignDenseWrites(from, to, step int64) []SimWrite {
	var out []SimWrite
	i := 0
	for at := from; at <= to; at += step {
		out = append(out, SimWrite{At: at, Key: uint16(1 + i), Val: uint16(100 + i)})
		i++
	}
	return out
}

// campaignDropAckGrid is the grid tuned to catch MutDropQuorumAck: a
// dense write stream through a brownout (which stretches the
// submit-to-commit window) with two staggered leader-candidate crashes
// inside it. Empirically ~16/20 seeds lose an acknowledged write under
// the mutation; all seeds are clean without it.
func campaignDropAckGrid() []CampaignPoint {
	return []CampaignPoint{{
		Name: "dropack-brownout-crash",
		Config: SimKVConfig{
			N: 3, Horizon: 40_000,
			Writes:  campaignDenseWrites(5_800, 6_400, 10),
			Crashes: map[int]int64{0: 6_100, 1: 6_200},
			Faults:  &SimFaults{BrownoutFrom: 5_000, BrownoutTo: 8_000, BrownoutFactor: 6},
		},
	}}
}

// campaignLeaseGrid is the grid tuned to catch MutPrematureLeaseExtend:
// a leased run with a holder crash. Under the mutation every seed
// records overlapping grants (replicas acquire while the previous
// window is valid); without it all seeds are clean.
func campaignLeaseGrid() []CampaignPoint {
	return []CampaignPoint{{
		Name: "lease-holder-crash",
		Config: SimKVConfig{
			N: 3, Horizon: 40_000, Lease: 2_500,
			Writes:  campaignDenseWrites(3_000, 7_000, 2_000),
			Crashes: map[int]int64{0: 9_000},
		},
	}}
}

// TestCampaignDetectsDroppedQuorumAck is the checker's first
// non-vacuity proof: seeding the dropped-quorum-ack bug must make the
// campaign report durability violations.
func TestCampaignDetectsDroppedQuorumAck(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Seeds: 10, Grid: campaignDropAckGrid(), Mutation: MutDropQuorumAck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationRuns == 0 {
		t.Fatalf("mutated campaign reported no violations over %d runs — checker is vacuous", rep.Runs)
	}
	if w := rep.Worst[0]; !strings.Contains(w.FirstViolation, "lost") {
		t.Fatalf("worst violation %q does not report a lost write", w.FirstViolation)
	}
}

// TestCampaignDetectsPrematureLeaseExtend is the second non-vacuity
// proof: seeding the premature-lease-extend bug must make the campaign
// report lease-overlap violations.
func TestCampaignDetectsPrematureLeaseExtend(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Seeds: 5, Grid: campaignLeaseGrid(), Mutation: MutPrematureLeaseExtend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationRuns != rep.Runs {
		t.Fatalf("premature lease extend detected in %d/%d runs, want all", rep.ViolationRuns, rep.Runs)
	}
	if w := rep.Worst[0]; !strings.Contains(w.FirstViolation, "overlap") {
		t.Fatalf("worst violation %q does not report a lease overlap", w.FirstViolation)
	}
}

// TestCampaignCleanOnRealStack runs the mutation-tuned grids and a
// slice of the default grid without any mutation: the real stack must
// come back violation-free, so a red campaign always means a real bug
// (or a seeded one).
func TestCampaignCleanOnRealStack(t *testing.T) {
	grids := [][]CampaignPoint{campaignDropAckGrid(), campaignLeaseGrid(), DefaultCampaignGrid()[:4]}
	for _, grid := range grids {
		rep, err := RunCampaign(CampaignConfig{Seeds: 4, Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ViolationRuns > 0 {
			t.Errorf("grid %v: %d/%d runs violated on the unmutated stack; worst: %s",
				rep.Points, rep.ViolationRuns, rep.Runs, rep.Worst[0].FirstViolation)
		}
	}
}

// TestCampaignReportDeterministic runs the same campaign twice and
// demands identical reports — the sweep, the scoring and the ordering
// are all pure functions of the configuration.
func TestCampaignReportDeterministic(t *testing.T) {
	cfg := CampaignConfig{Seeds: 3, SeedBase: 7, Grid: DefaultCampaignGrid()[:3], Keep: 5}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign report not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestMinimizeScenario shrinks a violating mutated run and checks the
// minimized configuration still reproduces the violation with strictly
// less workload.
func TestMinimizeScenario(t *testing.T) {
	base := campaignDropAckGrid()[0].Config
	base.Mutation = MutDropQuorumAck
	lost := func(_ *SimKVResult, v check.Verdict) bool {
		for _, msg := range v.Violations {
			if strings.Contains(msg, "lost") {
				return true
			}
		}
		return false
	}
	seed := int64(-1)
	for s := int64(0); s < 10; s++ {
		c := cloneSimConfig(base)
		c.Seed = s
		c.Record = true
		res, err := SimKV(c)
		if err != nil {
			t.Fatal(err)
		}
		if lost(res, res.Verify(check.Options{})) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in 0..9 reproduces the lost write")
	}
	cfg := cloneSimConfig(base)
	cfg.Seed = seed
	minimized, err := MinimizeScenario(cfg, lost)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimized.Writes) >= len(cfg.Writes) {
		t.Errorf("minimizer kept all %d writes", len(minimized.Writes))
	}
	if minimized.Horizon > cfg.Horizon {
		t.Errorf("minimizer grew the horizon to %d", minimized.Horizon)
	}
	minimized.Record = true
	res, err := SimKV(minimized)
	if err != nil {
		t.Fatal(err)
	}
	if !lost(res, res.Verify(check.Options{})) {
		t.Fatal("minimized configuration no longer reproduces the lost write")
	}
}

// TestMinimizeScenarioRejectsNonRepro: a configuration that never
// satisfies the predicate is an error, not a silently-returned input.
func TestMinimizeScenarioRejectsNonRepro(t *testing.T) {
	cfg := SimKVConfig{N: 3, Horizon: 10_000}
	_, err := MinimizeScenario(cfg, func(*SimKVResult, check.Verdict) bool { return false })
	if err == nil {
		t.Fatal("want an error for a non-reproducing seed")
	}
}

// TestScenarioBuildAndReplay pins a run into a Scenario, round-trips it
// through JSON (the fixture format), and replays it: the replay must be
// byte-identical and clean.
func TestScenarioBuildAndReplay(t *testing.T) {
	cfg := SimKVConfig{
		N: 3, Horizon: 30_000,
		Writes:  campaignDenseWrites(3_000, 7_000, 1_000),
		Crashes: map[int]int64{0: 9_000},
		Seed:    11,
	}
	sc, err := BuildScenario("build-replay", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Expect.VerdictOK {
		t.Fatalf("scenario built from the real stack has a failing verdict")
	}
	if sc.Expect.HistoryHash == "" || sc.Expect.Delivered == 0 {
		t.Fatalf("scenario expectation incomplete: %+v", sc.Expect)
	}
	raw, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Replay(); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioReplayCatchesDrift: a scenario whose pinned hash no
// longer matches (here, corrupted by hand) must fail its replay — this
// is the property that makes the committed fixtures regression tests.
func TestScenarioReplayCatchesDrift(t *testing.T) {
	cfg := SimKVConfig{N: 3, Horizon: 20_000, Writes: campaignDenseWrites(3_000, 5_000, 1_000), Seed: 3}
	sc, err := BuildScenario("drift", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Expect.HistoryHash = strings.Repeat("0", 64)
	if err := sc.Replay(); err == nil || !strings.Contains(err.Error(), "byte-identical") {
		t.Fatalf("corrupted hash not caught: %v", err)
	}
}
