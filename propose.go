package omegasm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/engine"
	"omegasm/internal/vclock"
)

// arenaTag is the instance tag of the Propose arena's registers. Log
// slots use tags >= 0, so the arena's register names never collide with a
// KV's replicated log on the same shared memory.
const arenaTag = -1

// proposeArena is the cluster's lazily created one-shot consensus
// instance: one proposer per process, stepped by a machine of a live
// engine (one poll-cadence machine regardless of how many Propose calls
// are blocked), with Omega injecting liveness (only the process the
// oracle names leader advances ballots; safety never depends on the
// oracle). Blocked Propose callers sleep on the decision broadcast
// instead of driving the steps themselves.
type proposeArena struct {
	props []*consensus.Proposer
	eng   *engine.Live
	id    int // the arena machine's engine id
	done  *broadcast

	// waiters counts the Propose calls currently blocked; the arena
	// machine parks when it drops to zero (no caller, no stepping — as
	// when the old caller-driven loop lost its last driver).
	waiters atomic.Int64
	// result is the packed decision: 1<<32 | value once decided.
	result atomic.Uint64
}

// decided returns the arena's decision, if reached.
func (a *proposeArena) decided() (uint32, bool) {
	w := a.result.Load()
	return uint32(w), w>>32 != 0
}

// arena lazily builds and starts the cluster's propose arena with v as
// the fixed proposal.
func (c *Cluster) arenaFor(v uint32) (*proposeArena, error) {
	c.svcMu.Lock()
	defer c.svcMu.Unlock()
	if c.arena != nil {
		return c.arena, nil
	}
	if c.svcStopped {
		// A post-Stop Propose must not start an engine nobody will stop.
		return nil, fmt.Errorf("omegasm: propose: cluster is stopped")
	}
	a := &proposeArena{
		eng:  engine.NewLive(engine.LiveConfig{}),
		done: newBroadcast(),
	}
	inst := consensus.NewInstance(c.mem, c.N(), arenaTag)
	for i := 0; i < c.N(); i++ {
		p, err := consensus.NewProposer(inst, i, v, c.oracle(i))
		if err != nil {
			return nil, fmt.Errorf("omegasm: propose: %w", err)
		}
		a.props = append(a.props, p)
	}
	// The arena machine steps every live proposer once per cadence; there
	// is no external enqueue event to wake on (progress arrives with the
	// election's convergence), so this is a poll by nature — but it only
	// polls while a Propose call is blocked on it, and parks permanently
	// once the decision is published.
	interval := int64(c.stepInterval())
	a.id = a.eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
		if a.waiters.Load() == 0 {
			return engine.Park() // no caller: the next Propose notifies us
		}
		for i, p := range a.props {
			if c.Crashed(i) {
				continue
			}
			p.Step(now)
			if val, ok := p.Decided(); ok {
				a.result.Store(1<<32 | uint64(val))
				a.done.signal()
				return engine.Park()
			}
		}
		return engine.At(now + interval)
	}))
	if err := a.eng.Start(); err != nil {
		return nil, err
	}
	c.arena = a
	return a, nil
}

// Propose runs one-shot consensus among the cluster's processes over the
// cluster's substrate and returns the decided value.
//
// The first call fixes the arena's proposal: every process proposes that
// value, so whichever process the Omega oracle stabilizes on drives it to
// decision (Disk Paxos over the cluster's registers; see
// internal/consensus). Later calls — concurrent or after the decision —
// join the same instance and return the already-decided value, which may
// differ from their argument; single-shot consensus decides once per
// cluster. v must not be 0xFFFFFFFF (the reserved no-value sentinel).
//
// Propose blocks until the decision is known or ctx is done. The cluster
// should be started: liveness needs the election to converge, though a
// decision can be reached during anarchy too (any majority-visible ballot
// completes).
func (c *Cluster) Propose(ctx context.Context, v uint32) (uint32, error) {
	if v == consensus.NoValue {
		return 0, fmt.Errorf("omegasm: propose: input %#x is the reserved NoValue sentinel", v)
	}
	a, err := c.arenaFor(v)
	if err != nil {
		return 0, err
	}
	// Register as a waiter and wake the (possibly parked) arena machine;
	// it keeps stepping only while someone is blocked here.
	a.waiters.Add(1)
	defer a.waiters.Add(-1)
	a.eng.Notify(a.id)
	// The fallback ticker guards the decided-during-wait race windows; the
	// broadcast is the fast path.
	ticker := time.NewTicker(c.stepInterval())
	defer ticker.Stop()
	for {
		ch := a.done.wait()
		if val, ok := a.decided(); ok {
			return val, nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("omegasm: propose: %w", ctx.Err())
		case <-ch:
		case <-ticker.C:
		}
	}
}

// stopServices tears down the service-layer engines the cluster started
// lazily (the propose arena) and refuses new ones; called by Stop.
func (c *Cluster) stopServices() {
	c.svcMu.Lock()
	c.svcStopped = true
	a := c.arena
	c.svcMu.Unlock()
	if a != nil {
		a.eng.Stop()
	}
}
