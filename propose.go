package omegasm

import (
	"context"
	"fmt"
	"time"

	"omegasm/internal/consensus"
)

// arenaTag is the instance tag of the Propose arena's registers. Log
// slots use tags >= 0, so the arena's register names never collide with a
// KV's replicated log on the same shared memory.
const arenaTag = -1

// proposeArena is the cluster's lazily created one-shot consensus
// instance: one proposer per process, all driven by whichever Propose
// callers are currently blocked, with Omega injecting liveness (only the
// process the oracle names leader advances ballots; safety never depends
// on the oracle).
type proposeArena struct {
	props []*consensus.Proposer

	// driving is true while one blocked caller acts as the arena's sole
	// driver; the others only poll for the decision, so concurrent
	// Propose calls never multiply the stepping work (each step is N
	// register reads — real quorum I/O on the SAN).
	driving bool
	decided bool
	value   uint32
}

// Propose runs one-shot consensus among the cluster's processes over the
// cluster's substrate and returns the decided value.
//
// The first call fixes the arena's proposal: every process proposes that
// value, so whichever process the Omega oracle stabilizes on drives it to
// decision (Disk Paxos over the cluster's registers; see
// internal/consensus). Later calls — concurrent or after the decision —
// join the same instance and return the already-decided value, which may
// differ from their argument; single-shot consensus decides once per
// cluster. v must not be 0xFFFFFFFF (the reserved no-value sentinel).
//
// Propose blocks until the decision is known or ctx is done. The cluster
// should be started: liveness needs the election to converge, though a
// decision can be reached during anarchy too (any majority-visible ballot
// completes).
func (c *Cluster) Propose(ctx context.Context, v uint32) (uint32, error) {
	c.svcMu.Lock()
	if c.arena == nil {
		a := &proposeArena{}
		inst := consensus.NewInstance(c.mem, c.N(), arenaTag)
		for i := 0; i < c.N(); i++ {
			p, err := consensus.NewProposer(inst, i, v, c.oracle(i))
			if err != nil {
				c.svcMu.Unlock()
				return 0, fmt.Errorf("omegasm: propose: %w", err)
			}
			a.props = append(a.props, p)
		}
		c.arena = a
	}
	a := c.arena
	c.svcMu.Unlock()

	// One caller drives; the rest poll. If the driver leaves (its context
	// died), the next polling caller takes over on its tick.
	iDrive := false
	defer func() {
		if iDrive {
			c.svcMu.Lock()
			a.driving = false
			c.svcMu.Unlock()
		}
	}()
	ticker := time.NewTicker(c.stepInterval())
	defer ticker.Stop()
	for {
		c.svcMu.Lock()
		if a.decided {
			v := a.value
			c.svcMu.Unlock()
			return v, nil
		}
		if iDrive || !a.driving {
			if !iDrive {
				iDrive, a.driving = true, true
			}
			for i, p := range a.props {
				if c.Crashed(i) {
					continue
				}
				p.Step(0)
				if val, ok := p.Decided(); ok {
					a.decided, a.value = true, val
					break
				}
			}
		}
		decided, val := a.decided, a.value
		c.svcMu.Unlock()
		if decided {
			return val, nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("omegasm: propose: %w", ctx.Err())
		case <-ticker.C:
		}
	}
}
