package omegasm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedScenariosReplay replays every committed fixture under
// testdata/scenarios: each minimized worst-case configuration must
// reproduce its pinned outcome byte-identically (sha256 of the recorded
// history's canonical bytes) with a clean checker verdict. Regenerate
// the fixtures with omegabench -campaign -campscenarios testdata/scenarios
// after an intentional behavior change.
func TestCommittedScenariosReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed scenarios under testdata/scenarios")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var sc Scenario
			if err := json.Unmarshal(raw, &sc); err != nil {
				t.Fatal(err)
			}
			if !sc.Expect.VerdictOK {
				t.Fatalf("fixture pins a failing verdict — committed scenarios must be clean")
			}
			if err := sc.Replay(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
