package omegasm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/san"
	"omegasm/internal/shmem"
)

// Algorithm selects which of the paper's algorithms a Cluster runs.
type Algorithm int

// The available algorithms.
const (
	// WriteEfficient is the paper's Figure 2 algorithm: a single eventual
	// writer; all shared variables but one bounded.
	WriteEfficient Algorithm = iota + 1
	// Bounded is the paper's Figure 5 algorithm: every shared variable
	// bounded; every live process writes forever.
	Bounded
	// NWnR is the paper's Section 3.5 multi-writer variant: Figure 2 with
	// each SUSPICIONS column collapsed into one nWnR register, shrinking
	// the register count from O(n²) to O(n).
	NWnR
	// TimerFree is the paper's Section 3.5 clock-free variant: Figure 2
	// with the local timer replaced by a counted loop, so liveness needs
	// no assumption on hardware timers at all.
	TimerFree
)

func (a Algorithm) valid() bool {
	return a >= WriteEfficient && a <= TimerFree
}

// String returns the algorithm's name as used in WithAlgorithm docs and
// experiment output.
func (a Algorithm) String() string {
	switch a {
	case WriteEfficient:
		return "WriteEfficient"
	case Bounded:
		return "Bounded"
	case NWnR:
		return "NWnR"
	case TimerFree:
		return "TimerFree"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config is the closed configuration struct of the pre-options API.
//
// Deprecated: build clusters with New and functional options instead.
// The field mapping is WithN(cfg.N), WithAlgorithm(cfg.Algorithm),
// WithStepInterval(cfg.StepInterval), WithTimerUnit(cfg.TimerUnit) and
// WithInstrumentation() for Instrument; Config cannot express substrates
// or the fleet options.
type Config struct {
	// N is the number of processes (>= 2).
	N int
	// Algorithm selects the election algorithm; default WriteEfficient.
	Algorithm Algorithm
	// StepInterval is the pause between main-loop iterations of each
	// process; default 200us. Smaller values elect faster and write more.
	StepInterval time.Duration
	// TimerUnit converts the algorithms' abstract timeout values into
	// real durations; default 2ms.
	TimerUnit time.Duration
	// Instrument enables the shared-memory access census (Stats).
	Instrument bool
}

// options converts the legacy struct into the equivalent option list.
func (cfg Config) options() []Option {
	opts := []Option{WithN(cfg.N)}
	if cfg.Algorithm != 0 {
		opts = append(opts, WithAlgorithm(cfg.Algorithm))
	}
	if cfg.StepInterval > 0 {
		opts = append(opts, WithStepInterval(cfg.StepInterval))
	}
	if cfg.TimerUnit > 0 {
		opts = append(opts, WithTimerUnit(cfg.TimerUnit))
	}
	if cfg.Instrument {
		opts = append(opts, WithInstrumentation())
	}
	return opts
}

// NewFromConfig builds a Cluster from the legacy Config struct.
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) (*Cluster, error) {
	return New(cfg.options()...)
}

// Cluster is a running set of Omega processes over one shared memory.
type Cluster struct {
	set   *settings
	mem   shmem.Mem
	disks []*san.Disk
	rt    *rt.Runtime

	// arena is the lazily created one-shot consensus instance Propose
	// drives; kvTaken marks the register namespace of the replicated log
	// as claimed; svcStopped refuses new service engines after Stop. All
	// under svcMu.
	svcMu      sync.Mutex
	arena      *proposeArena
	kvTaken    bool
	svcStopped bool
}

// New validates the options and builds a stopped Cluster; call Start to
// run it. WithN is required; everything else has defaults (algorithm
// WriteEfficient, substrate Atomic, pacing chosen by the substrate).
func New(opts ...Option) (*Cluster, error) {
	s := newSettings()
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	if err := s.rejectFleetOptions(); err != nil {
		return nil, err
	}
	if err := s.rejectShardedOptions(); err != nil {
		return nil, err
	}
	return newCluster(s)
}

// newCluster builds a Cluster from resolved settings (shared by New and
// NewFleet, which resolves per-member settings itself).
func newCluster(s *settings) (*Cluster, error) {
	if err := s.finalizeCluster(); err != nil {
		return nil, err
	}
	opened, err := s.substrate.open(s.n, s.instrument)
	if err != nil {
		return nil, err
	}
	procs := make([]rt.Proc, s.n)
	switch s.algorithm {
	case WriteEfficient:
		for i, p := range core.BuildAlgo1(opened.mem, s.n) {
			procs[i] = p
		}
	case Bounded:
		for i, p := range core.BuildAlgo2(opened.mem, s.n) {
			procs[i] = p
		}
	case NWnR:
		for i, p := range core.BuildNWNR(opened.mem, s.n) {
			procs[i] = p
		}
	case TimerFree:
		for i, p := range core.BuildTimerFree(opened.mem, s.n) {
			procs[i] = p
		}
	default:
		return nil, fmt.Errorf("omegasm: unknown algorithm %v", s.algorithm)
	}
	run, err := rt.New(rt.Config{
		StepInterval: s.stepInterval,
		TimerUnit:    s.timerUnit,
	}, procs)
	if err != nil {
		return nil, err
	}
	return &Cluster{set: s, mem: opened.mem, disks: opened.disks, rt: run}, nil
}

// Start launches the cluster's processes. It may be called once.
func (c *Cluster) Start() error { return c.rt.Start() }

// Stop halts every process and joins all goroutines, including the
// engines of lazily started services (the Propose arena). Idempotent. A
// KV store's engine has its own lifecycle: call KV.Close.
func (c *Cluster) Stop() {
	c.rt.Stop()
	c.stopServices()
	// Retire the SAN disks' pipeline pumps last: services and processes
	// are joined, so no quorum traffic is left to submit. Stragglers
	// after this point (a KV closed out of order) degrade to the
	// synchronous disk path instead of deadlocking.
	for _, d := range c.disks {
		d.Close()
	}
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.rt.N() }

// Algorithm returns the election algorithm the cluster runs.
func (c *Cluster) Algorithm() Algorithm { return c.set.algorithm }

// Substrate returns the name of the shared-memory substrate the cluster
// runs over ("atomic", "san").
func (c *Cluster) Substrate() string { return c.set.substrate.Name() }

// DiskCount returns the number of simulated disks backing a SAN cluster,
// or 0 on the atomic substrate.
func (c *Cluster) DiskCount() int { return len(c.disks) }

// CrashDisk permanently fails disk d of a SAN-backed cluster. Crashes of
// a minority of disks are masked by the quorum discipline; crashing a
// majority wedges the cluster (a configuration breach, as in the paper's
// model). It errors on the atomic substrate or an out-of-range index.
func (c *Cluster) CrashDisk(d int) error {
	if len(c.disks) == 0 {
		return fmt.Errorf("omegasm: substrate %q has no disks", c.Substrate())
	}
	if d < 0 || d >= len(c.disks) {
		return fmt.Errorf("omegasm: no disk %d (have %d)", d, len(c.disks))
	}
	c.disks[d].Crash()
	return nil
}

// Leader returns process i's current leader estimate.
func (c *Cluster) Leader(i int) (int, error) { return c.rt.Leader(i) }

// AgreedLeader returns the common leader estimate of all live processes,
// or (-1, false) while they disagree.
func (c *Cluster) AgreedLeader() (int, bool) { return c.rt.AgreedLeader() }

// WaitForAgreement blocks until every live process agrees on a live
// leader, or the timeout elapses.
func (c *Cluster) WaitForAgreement(timeout time.Duration) (int, bool) {
	return c.rt.WaitForAgreement(timeout)
}

// WaitForAgreementContext blocks until every live process agrees on a
// live leader, or ctx is done.
func (c *Cluster) WaitForAgreementContext(ctx context.Context) (int, bool) {
	return c.rt.WaitForAgreementContext(ctx)
}

// Crash stops process i, simulating a crash-stop failure. The survivors
// re-elect; crashed processes never recover.
func (c *Cluster) Crash(i int) error { return c.rt.Crash(i) }

// Crashed reports whether process i has been crashed.
func (c *Cluster) Crashed(i int) bool { return c.rt.Crashed(i) }

// stepInterval is the cluster's resolved pacing, reused by the service
// layer (Propose, KV) as its default driving cadence.
func (c *Cluster) stepInterval() time.Duration { return c.set.stepInterval }

// oracle returns process i's leader oracle for the consensus layer.
func (c *Cluster) oracle(i int) func() int {
	return func() int {
		l, err := c.rt.Leader(i)
		if err != nil {
			return -1
		}
		return l
	}
}

// LeadershipEvent reports a change in the cluster-wide agreement state,
// as observed by Watch.
type LeadershipEvent struct {
	// Leader is the agreed leader, or -1 while the live processes
	// disagree (the oracle's anarchy periods).
	Leader int
	// Agreed is false during anarchy periods.
	Agreed bool
	// At is when the change was observed.
	At time.Time
}

// Watch polls the cluster's agreement state every interval (default 1ms)
// and delivers an event whenever it changes: agreement reached, leader
// changed, or agreement lost. Callers must call cancel when done — the
// watcher goroutine runs until then (Stop does not end it) and closes the
// channel on exit. Slow receivers miss intermediate events rather than
// blocking the watcher (the channel always carries the most recent
// change).
func (c *Cluster) Watch(interval time.Duration) (events <-chan LeadershipEvent, cancel func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	ch := make(chan LeadershipEvent, 1)
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(ch)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := LeadershipEvent{Leader: -2} // sentinel: differs from any real state
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				leader, agreed := c.AgreedLeader()
				if agreed == last.Agreed && leader == last.Leader {
					continue
				}
				ev := LeadershipEvent{Leader: leader, Agreed: agreed, At: time.Now()}
				last = ev
				// Latest-wins delivery: if the 1-buffered channel is full,
				// drop the stale undelivered event (the receiver may have
				// just taken it, in which case there is nothing to drop)
				// and deliver the new one. The watcher is the sole sender,
				// so the freed slot cannot be refilled behind its back and
				// the second send never blocks.
				select {
				case ch <- ev:
				default:
					select {
					case <-ch:
					default:
					}
					ch <- ev
				}
			}
		}
	}()
	return ch, func() { once.Do(func() { close(stop) }) }
}

// RegisterStats describes one shared register's access counts.
type RegisterStats struct {
	// Name is the register's display name, e.g. "SUSPICIONS[2][3]".
	Name string
	// Owner is the writing process id, or -1 for multi-writer registers.
	Owner int
	// Reads counts the register's reads by all processes.
	Reads uint64
	// Writes counts the register's writes by all processes.
	Writes uint64
	// MaxValue is the largest value the register ever carried (the
	// boundedness evidence of the paper's theorems).
	MaxValue uint64
}

// Stats summarizes the cluster's shared-memory accesses. It returns nil
// unless WithInstrumentation was set.
type Stats struct {
	// Writers[p] is the total number of register writes by process p.
	Writers []uint64
	// Readers[p] is the total number of register reads by process p.
	Readers []uint64
	// Registers lists per-register detail, unordered.
	Registers []RegisterStats
	// TotalBits is the shared-memory footprint: bits needed to hold the
	// largest value each register ever carried, summed.
	TotalBits int
}

// Stats snapshots the access census, or returns nil if instrumentation is
// off (or the substrate records no census).
func (c *Cluster) Stats() *Stats {
	if !c.set.instrument {
		return nil
	}
	census := c.mem.Census()
	if census == nil {
		return nil
	}
	snap := census.Snapshot()
	s := &Stats{
		Writers:   make([]uint64, c.set.n),
		Readers:   make([]uint64, c.set.n),
		TotalBits: snap.TotalBits(),
	}
	for _, r := range snap.Regs {
		for p := range r.WritesBy {
			s.Writers[p] += r.WritesBy[p]
			s.Readers[p] += r.ReadsBy[p]
		}
		s.Registers = append(s.Registers, RegisterStats{
			Name:     r.Name,
			Owner:    r.Owner,
			Reads:    r.TotalReads(),
			Writes:   r.TotalWrites(),
			MaxValue: r.MaxValue,
		})
	}
	return s
}
