// Package omegasm is the public API of the reproduction of "Electing an
// Eventual Leader in an Asynchronous Shared Memory System" (Fernández,
// Jiménez, Raynal; DSN 2007): eventual leader (Omega) election for
// crash-prone processes that communicate only through shared memory.
//
// The Omega abstraction provides each process a Leader() query whose
// answers eventually converge, at every live process, on the identity of
// one process that has not crashed. Omega is the weakest failure detector
// for solving consensus in this model; it is the election core of
// Paxos-style replication.
//
// A Cluster runs one process per participant on live goroutines, with
// sync/atomic shared registers and real timers:
//
//	c, err := omegasm.New(omegasm.Config{N: 5})
//	...
//	c.Start()
//	defer c.Stop()
//	leader, ok := c.WaitForAgreement(2 * time.Second)
//
// Two algorithms are available (Config.Algorithm):
//
//   - WriteEfficient (default; the paper's Figure 2): after the run
//     stabilizes, only the elected leader writes shared memory, and every
//     shared variable except the leader's progress counter is bounded.
//     Optimal in the number of eventual writers.
//   - Bounded (the paper's Figure 5): every shared variable is bounded
//     (the handshake registers are single bits); the price — proven
//     unavoidable by the paper's Theorem 5 — is that every live process
//     writes shared memory forever.
//
// Liveness rests on the paper's AWB assumption, which on a live host is
// mild: at least one live process's scheduler keeps granting it steps at
// a bounded pace (AWB1), and the other processes' timers eventually
// dominate a growing function of their timeout value (AWB2; Go timers
// never fire early, so they qualify by construction). Safety — that
// Leader always returns some process id — needs no assumption at all.
package omegasm

import (
	"fmt"
	"sync"
	"time"

	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/shmem"
)

// Algorithm selects which of the paper's algorithms a Cluster runs.
type Algorithm int

// The available algorithms.
const (
	// WriteEfficient is the paper's Figure 2 algorithm: a single eventual
	// writer; all shared variables but one bounded.
	WriteEfficient Algorithm = iota + 1
	// Bounded is the paper's Figure 5 algorithm: every shared variable
	// bounded; every live process writes forever.
	Bounded
)

func (a Algorithm) String() string {
	switch a {
	case WriteEfficient:
		return "WriteEfficient"
	case Bounded:
		return "Bounded"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterizes a Cluster.
type Config struct {
	// N is the number of processes (>= 2).
	N int
	// Algorithm selects the election algorithm; default WriteEfficient.
	Algorithm Algorithm
	// StepInterval is the pause between main-loop iterations of each
	// process; default 200us. Smaller values elect faster and write more.
	StepInterval time.Duration
	// TimerUnit converts the algorithms' abstract timeout values into
	// real durations; default 2ms.
	TimerUnit time.Duration
	// Instrument enables the shared-memory access census (Stats). The
	// census is lock-free — per-process atomic counters per register —
	// so the cost is a few uncontended atomic adds per access.
	Instrument bool
}

// Cluster is a running set of Omega processes over one shared memory.
type Cluster struct {
	cfg Config
	mem *shmem.AtomicMem
	rt  *rt.Runtime
}

// New validates cfg and builds a stopped Cluster; call Start to run it.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("omegasm: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = WriteEfficient
	}
	mem := shmem.NewAtomicMem(cfg.N, cfg.Instrument)
	procs := make([]rt.Proc, cfg.N)
	switch cfg.Algorithm {
	case WriteEfficient:
		for i, p := range core.BuildAlgo1(mem, cfg.N) {
			procs[i] = p
		}
	case Bounded:
		for i, p := range core.BuildAlgo2(mem, cfg.N) {
			procs[i] = p
		}
	default:
		return nil, fmt.Errorf("omegasm: unknown algorithm %v", cfg.Algorithm)
	}
	run, err := rt.New(rt.Config{
		StepInterval: cfg.StepInterval,
		TimerUnit:    cfg.TimerUnit,
	}, procs)
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, mem: mem, rt: run}, nil
}

// Start launches the cluster's processes. It may be called once.
func (c *Cluster) Start() error { return c.rt.Start() }

// Stop halts every process and joins all goroutines. Idempotent.
func (c *Cluster) Stop() { c.rt.Stop() }

// N returns the number of processes.
func (c *Cluster) N() int { return c.rt.N() }

// Leader returns process i's current leader estimate.
func (c *Cluster) Leader(i int) (int, error) { return c.rt.Leader(i) }

// AgreedLeader returns the common leader estimate of all live processes,
// or (-1, false) while they disagree.
func (c *Cluster) AgreedLeader() (int, bool) { return c.rt.AgreedLeader() }

// WaitForAgreement blocks until every live process agrees on a live
// leader, or the timeout elapses.
func (c *Cluster) WaitForAgreement(timeout time.Duration) (int, bool) {
	return c.rt.WaitForAgreement(timeout)
}

// Crash stops process i, simulating a crash-stop failure. The survivors
// re-elect; crashed processes never recover.
func (c *Cluster) Crash(i int) error { return c.rt.Crash(i) }

// Crashed reports whether process i has been crashed.
func (c *Cluster) Crashed(i int) bool { return c.rt.Crashed(i) }

// LeadershipEvent reports a change in the cluster-wide agreement state,
// as observed by Watch.
type LeadershipEvent struct {
	// Leader is the agreed leader, or -1 while the live processes
	// disagree (the oracle's anarchy periods).
	Leader int
	// Agreed is false during anarchy periods.
	Agreed bool
	// At is when the change was observed.
	At time.Time
}

// Watch polls the cluster's agreement state every interval (default 1ms)
// and delivers an event whenever it changes: agreement reached, leader
// changed, or agreement lost. Callers must call cancel when done — the
// watcher goroutine runs until then (Stop does not end it) and closes the
// channel on exit. Slow receivers miss intermediate events rather than
// blocking the watcher (the channel always carries the most recent
// change).
func (c *Cluster) Watch(interval time.Duration) (events <-chan LeadershipEvent, cancel func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	ch := make(chan LeadershipEvent, 1)
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(ch)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := LeadershipEvent{Leader: -2} // sentinel: differs from any real state
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				leader, agreed := c.AgreedLeader()
				if agreed == last.Agreed && leader == last.Leader {
					continue
				}
				ev := LeadershipEvent{Leader: leader, Agreed: agreed, At: time.Now()}
				last = ev
				// Latest-wins delivery: if the 1-buffered channel is full,
				// drop the stale undelivered event (the receiver may have
				// just taken it, in which case there is nothing to drop)
				// and deliver the new one. The watcher is the sole sender,
				// so the freed slot cannot be refilled behind its back and
				// the second send never blocks.
				select {
				case ch <- ev:
				default:
					select {
					case <-ch:
					default:
					}
					ch <- ev
				}
			}
		}
	}()
	return ch, func() { once.Do(func() { close(stop) }) }
}

// RegisterStats describes one shared register's access counts.
type RegisterStats struct {
	Name     string
	Owner    int
	Reads    uint64
	Writes   uint64
	MaxValue uint64
}

// Stats summarizes the cluster's shared-memory accesses. It returns nil
// unless Config.Instrument was set.
type Stats struct {
	// Writers[p] is the total number of register writes by process p;
	// Readers[p] the total reads.
	Writers []uint64
	Readers []uint64
	// Registers lists per-register detail, unordered.
	Registers []RegisterStats
	// TotalBits is the shared-memory footprint: bits needed to hold the
	// largest value each register ever carried, summed.
	TotalBits int
}

// Stats snapshots the access census, or returns nil if instrumentation is
// off.
func (c *Cluster) Stats() *Stats {
	if !c.cfg.Instrument {
		return nil
	}
	snap := c.mem.Census().Snapshot()
	s := &Stats{
		Writers:   make([]uint64, c.cfg.N),
		Readers:   make([]uint64, c.cfg.N),
		TotalBits: snap.TotalBits(),
	}
	for _, r := range snap.Regs {
		for p := range r.WritesBy {
			s.Writers[p] += r.WritesBy[p]
			s.Readers[p] += r.ReadsBy[p]
		}
		s.Registers = append(s.Registers, RegisterStats{
			Name:     r.Name,
			Owner:    r.Owner,
			Reads:    r.TotalReads(),
			Writes:   r.TotalWrites(),
			MaxValue: r.MaxValue,
		})
	}
	return s
}
