package omegasm_test

import (
	"testing"
	"time"

	"omegasm"
)

func TestAlgorithmString(t *testing.T) {
	if omegasm.WriteEfficient.String() != "WriteEfficient" {
		t.Error(omegasm.WriteEfficient.String())
	}
	if omegasm.Bounded.String() != "Bounded" {
		t.Error(omegasm.Bounded.String())
	}
	if omegasm.NWnR.String() != "NWnR" {
		t.Error(omegasm.NWnR.String())
	}
	if omegasm.TimerFree.String() != "TimerFree" {
		t.Error(omegasm.TimerFree.String())
	}
	if omegasm.Algorithm(9).String() != "Algorithm(9)" {
		t.Error(omegasm.Algorithm(9).String())
	}
}

// fastOpts is the fast-paced atomic-substrate configuration most tests
// run with.
func fastOpts(n int) []omegasm.Option {
	return []omegasm.Option{
		omegasm.WithN(n),
		omegasm.WithStepInterval(100 * time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	}
}

func startCluster(t *testing.T, opts ...omegasm.Option) *omegasm.Cluster {
	t.Helper()
	c, err := omegasm.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestClusterElection elects under every exposed algorithm variant; under
// -race this doubles as the data-race check for all four on the live
// runtime.
func TestClusterElection(t *testing.T) {
	for _, algo := range []omegasm.Algorithm{
		omegasm.WriteEfficient, omegasm.Bounded, omegasm.NWnR, omegasm.TimerFree,
	} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, append(fastOpts(4), omegasm.WithAlgorithm(algo))...)
			leader, ok := c.WaitForAgreement(10 * time.Second)
			if !ok {
				t.Fatal("no agreement")
			}
			if l, err := c.Leader(leader); err != nil || l != leader {
				t.Errorf("leader's own estimate: %d, %v", l, err)
			}
			if c.N() != 4 {
				t.Errorf("N() = %d", c.N())
			}
			if c.Algorithm() != algo {
				t.Errorf("Algorithm() = %v", c.Algorithm())
			}
			if c.Substrate() != "atomic" {
				t.Errorf("Substrate() = %q", c.Substrate())
			}
		})
	}
}

func TestClusterCrashReElection(t *testing.T) {
	c := startCluster(t, fastOpts(4)...)
	leader, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no agreement")
	}
	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if !c.Crashed(leader) {
		t.Error("Crashed() false")
	}
	next, ok := c.WaitForAgreement(20 * time.Second)
	if !ok {
		t.Fatal("no re-election")
	}
	if next == leader {
		t.Fatalf("crashed leader %d re-elected", leader)
	}
}

func TestStatsRequiresInstrumentation(t *testing.T) {
	c := startCluster(t, omegasm.WithN(2))
	if c.Stats() != nil {
		t.Error("Stats() non-nil without Instrument")
	}
	// Still nil after the cluster has done real work.
	c.WaitForAgreement(5 * time.Second)
	if c.Stats() != nil {
		t.Error("Stats() non-nil after running without Instrument")
	}
}

func TestStatsShape(t *testing.T) {
	c := startCluster(t, append(fastOpts(3), omegasm.WithInstrumentation())...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	s := c.Stats()
	if s == nil {
		t.Fatal("Stats() nil with Instrument")
	}
	if len(s.Writers) != 3 || len(s.Readers) != 3 {
		t.Fatalf("per-process slices sized %d/%d", len(s.Writers), len(s.Readers))
	}
	// Algorithm 1 on 3 processes: suspicions 9 + progress 3 + stop 3.
	if len(s.Registers) != 15 {
		t.Errorf("register count = %d, want 15", len(s.Registers))
	}
	if s.TotalBits < 15 {
		t.Errorf("TotalBits = %d, implausibly small", s.TotalBits)
	}
	var anyWrites uint64
	for _, w := range s.Writers {
		anyWrites += w
	}
	if anyWrites == 0 {
		t.Error("no writes recorded after an election")
	}
}

func TestWatchObservesFailover(t *testing.T) {
	c := startCluster(t, fastOpts(4)...)
	events, cancel := c.Watch(200 * time.Microsecond)
	defer cancel()

	waitEvent := func(match func(omegasm.LeadershipEvent) bool) (omegasm.LeadershipEvent, bool) {
		deadline := time.After(15 * time.Second)
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					return omegasm.LeadershipEvent{}, false
				}
				if match(ev) {
					return ev, true
				}
			case <-deadline:
				return omegasm.LeadershipEvent{}, false
			}
		}
	}

	first, ok := waitEvent(func(e omegasm.LeadershipEvent) bool { return e.Agreed })
	if !ok {
		t.Fatal("never observed agreement")
	}
	if err := c.Crash(first.Leader); err != nil {
		t.Fatal(err)
	}
	next, ok := waitEvent(func(e omegasm.LeadershipEvent) bool {
		return e.Agreed && e.Leader != first.Leader
	})
	if !ok {
		t.Fatal("never observed failover")
	}
	if next.Leader == first.Leader {
		t.Fatalf("failover to the crashed leader %d", next.Leader)
	}
}

// TestWatchCoalescesForSlowReceiver is the regression test for the
// latest-wins delivery path: a receiver that never drains the channel must
// not block the watcher, the buffer must never hold more than the single
// most recent change, and the first receive after a burst of leadership
// changes must observe the newest state, not the oldest.
func TestWatchCoalescesForSlowReceiver(t *testing.T) {
	c := startCluster(t, fastOpts(4)...)
	first, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no initial agreement")
	}

	// Subscribe but do not receive while the leadership churns: the crash
	// forces at least two further changes (agreement lost, new leader).
	events, cancel := c.Watch(100 * time.Microsecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // watcher delivers the initial state
	if err := c.Crash(first); err != nil {
		t.Fatal(err)
	}
	next, ok := c.WaitForAgreement(20 * time.Second)
	if !ok {
		t.Fatal("no re-election")
	}
	time.Sleep(20 * time.Millisecond) // let the watcher observe the new state

	// The watcher must have kept running (not blocked on the full buffer)
	// and left exactly the most recent change buffered: receiving once,
	// without waiting, must yield the newest state, not the stale initial
	// agreement.
	select {
	case ev := <-events:
		if !ev.Agreed || ev.Leader == first {
			t.Fatalf("first receive after churn = %+v; want the coalesced newest state (leader %d)", ev, next)
		}
	default:
		t.Fatal("no event buffered after leadership changes (watcher stalled or dropped the newest event)")
	}
}

func TestWatchCancelAfterStop(t *testing.T) {
	c, err := omegasm.New(omegasm.WithN(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	events, cancel := c.Watch(time.Millisecond)
	c.Stop()
	cancel() // watcher outlives Stop by contract; cancel must still end it
	if _, ok := <-events; ok {
		// Drain until close; the channel must close after cancel.
		for range events {
		}
	}
}

func TestWatchCancelClosesChannel(t *testing.T) {
	c := startCluster(t, omegasm.WithN(2))
	events, cancel := c.Watch(0) // default interval
	cancel()
	cancel() // idempotent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return // closed as promised
			}
		case <-deadline:
			t.Fatal("channel not closed after cancel")
		}
	}
}
