// Package omegasm is the public API of the reproduction of "Electing an
// Eventual Leader in an Asynchronous Shared Memory System" (Fernández,
// Jiménez, Raynal; DSN 2007): eventual leader (Omega) election for
// crash-prone processes that communicate only through shared memory, plus
// the Paxos-style replication stack the paper motivates on top of it —
// up to a hash-partitioned, batch-committing key-value service.
//
// The Omega abstraction provides each process a Leader() query whose
// answers eventually converge, at every live process, on the identity of
// one process that has not crashed. Omega is the weakest failure detector
// for solving consensus in this model; it is the election core of
// Paxos-style replication.
//
// A Cluster is built from functional options and runs one process per
// participant on live goroutines:
//
//	c, err := omegasm.New(omegasm.WithN(5))
//	...
//	c.Start()
//	defer c.Stop()
//	leader, ok := c.WaitForAgreement(2 * time.Second)
//
// # Substrates
//
// The processes communicate through a pluggable shared-memory Substrate.
// The default is Atomic(): sync/atomic registers in process memory. The
// paper's motivating deployment — "computers that communicate through a
// network of attached disks ... a storage area network (SAN)" (its
// Section 1, pointing at Disk Paxos) — is the SAN substrate: every
// register replicated over simulated network-attached disks, written to
// all and acknowledged by a majority, so disk crashes below a majority
// are masked:
//
//	c, err := omegasm.New(
//		omegasm.WithN(3),
//		omegasm.WithSAN(omegasm.SANConfig{
//			Disks:       5,
//			BaseLatency: 200 * time.Microsecond,
//			Jitter:      300 * time.Microsecond,
//		}),
//	)
//	...
//	leader, ok := c.WaitForAgreement(time.Minute)
//	c.CrashDisk(0) // a minority of disk crashes is invisible to callers
//
// # Algorithms
//
// Four algorithm variants are available (WithAlgorithm):
//
//   - WriteEfficient (default; the paper's Figure 2): after the run
//     stabilizes, only the elected leader writes shared memory, and every
//     shared variable except the leader's progress counter is bounded.
//     Optimal in the number of eventual writers.
//   - Bounded (the paper's Figure 5): every shared variable is bounded
//     (the handshake registers are single bits); the price — proven
//     unavoidable by the paper's Theorem 5 — is that every live process
//     writes shared memory forever.
//   - NWnR (the paper's Section 3.5): WriteEfficient with each suspicion
//     column collapsed into one multi-writer register — n registers
//     instead of n².
//   - TimerFree (the paper's Section 3.5): WriteEfficient with the local
//     timer replaced by a counted loop, dropping the timer assumption.
//
// # Consensus and replication
//
// Because Omega is exactly the liveness ingredient Paxos needs, a Cluster
// also exposes the replication stack: Propose runs one-shot consensus
// among the cluster's processes, and NewKV serves a replicated key-value
// store over an Omega-driven Disk-Paxos log — both over whichever
// substrate the cluster was built on. The KV store can batch: KVBatch
// lets one consensus slot commit a whole group of queued writes via a
// published-batch indirection, amortizing the Disk-Paxos round (PutAll is
// the matching group-commit write path).
//
// # Unbounded write streams
//
// The log checkpoints by default (KVCheckpointEvery for a standalone KV,
// WithCheckpointEvery per shard of a ShardedKV): every few decided slots
// the leader seals the committed prefix into a snapshot of the store's
// state, published to immutable per-epoch register areas on the
// substrate via the same pointer-to-value indirection batches use; once
// a quorum of replicas durably acknowledges the seal, the sealed slots
// are recycled and reused, so the write stream is unbounded — KVSlots
// bounds only the in-flight window, and Put/PutAll never return
// ErrLogFull. A replica that falls behind the recycled window (restarted
// or long parked) installs the latest published snapshot and resumes at
// the seal point. The durability statement is unchanged by recycling: a
// committed write survives any minority of crashes, including across
// recycling, because it is always reconstructible from either a live
// slot or a durably published snapshot. KVCheckpointEvery(0) (or
// WithCheckpointEvery(0)) restores the fixed-capacity log and its
// ErrLogFull semantics.
//
// # Sharding
//
// ShardedKV composes the whole stack into one traffic-serving service: S
// consensus-backed shards over an internally owned Fleet, each key
// hash-routed to one shard, per-shard proposal batching on by default,
// and cross-shard MultiPut/MultiGet fanning out in parallel:
//
//	skv, err := omegasm.NewShardedKV(
//		omegasm.WithShards(4),
//		omegasm.WithN(3),
//	)
//	...
//	skv.Start()
//	defer skv.Close()
//	skv.WaitForAgreement(2 * time.Second)
//	err = skv.MultiPut(ctx, omegasm.Entry{Key: 1, Val: 10}, omegasm.Entry{Key: 2, Val: 20})
//	v, ok := skv.Get(1)
//
// # Deterministic simulation
//
// The same stacks run deterministically under the virtual-time engine:
// SimKV replays one cluster's full consensus/KV run and SimShardedKV a
// whole sharded store, with seeded adversarial scheduling, exact-time
// crash schedules and byte-identical results for equal configurations —
// failover scenarios the live runtime only produces statistically become
// unit tests, and the scaling benchmark measures the architecture's
// parallel capacity exactly.
//
// # Load and SLO harness
//
// Package omegasm/load executes declarative workload specs — client
// populations with Poisson/Gamma/Weibull arrival processes, Zipf key
// skew, read/write mixes and per-class SLO targets — open-loop against
// both the live stack (KV/ShardedKV on the wall clock) and the simulated
// one (SimKV/SimShardedKV under virtual time, via the Requests workload
// below), then calibrates sim-predicted latency percentiles against
// live-measured ones. `omegabench -load` records the comparison.
//
// Liveness rests on the paper's AWB assumption, which on a live host is
// mild: at least one live process's scheduler keeps granting it steps at
// a bounded pace (AWB1), and the other processes' timers eventually
// dominate a growing function of their timeout value (AWB2; Go timers
// never fire early, so they qualify by construction). Safety — that
// Leader always returns some process id — needs no assumption at all.
//
// See ARCHITECTURE.md in the repository for the layer map and a
// data-flow walkthrough of one write from enqueue to commit broadcast.
package omegasm
