package omegasm_test

import (
	"strings"
	"testing"
	"time"

	"omegasm"
)

func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []omegasm.Option
		want string // substring of the expected error
	}{
		{"no options", nil, "at least 2 processes"},
		{"N=1", []omegasm.Option{omegasm.WithN(1)}, "at least 2 processes"},
		{"N=0", []omegasm.Option{omegasm.WithN(0)}, "at least 2 processes"},
		{"negative N", []omegasm.Option{omegasm.WithN(-3)}, "at least 2 processes"},
		{"unknown algorithm", []omegasm.Option{omegasm.WithN(3), omegasm.WithAlgorithm(omegasm.Algorithm(99))}, "unknown algorithm"},
		{"zero algorithm", []omegasm.Option{omegasm.WithN(3), omegasm.WithAlgorithm(0)}, "unknown algorithm"},
		{"bad step interval", []omegasm.Option{omegasm.WithN(3), omegasm.WithStepInterval(0)}, "step interval"},
		{"bad timer unit", []omegasm.Option{omegasm.WithN(3), omegasm.WithTimerUnit(-time.Second)}, "timer unit"},
		{"nil option", []omegasm.Option{omegasm.WithN(3), nil}, "nil Option"},
		{"nil substrate", []omegasm.Option{omegasm.WithN(3), omegasm.WithSubstrate(nil)}, "nil substrate"},
		{"conflicting substrates", []omegasm.Option{
			omegasm.WithN(3),
			omegasm.WithSAN(omegasm.SANConfig{}),
			omegasm.WithSubstrate(omegasm.Atomic()),
		}, "conflicting substrate"},
		{"double SAN", []omegasm.Option{
			omegasm.WithN(3),
			omegasm.WithSAN(omegasm.SANConfig{}),
			omegasm.WithSAN(omegasm.SANConfig{}),
		}, "conflicting substrate"},
		{"negative disks", []omegasm.Option{omegasm.WithN(3), omegasm.WithSAN(omegasm.SANConfig{Disks: -1})}, "disk"},
		{"bad spike probability", []omegasm.Option{omegasm.WithN(3), omegasm.WithSAN(omegasm.SANConfig{SpikeP: 1.5})}, "spike probability"},
		{"spike probability without magnitude", []omegasm.Option{omegasm.WithN(3), omegasm.WithSAN(omegasm.SANConfig{SpikeP: 0.1})}, "spike"},
		{"fleet option in New", []omegasm.Option{omegasm.WithN(3), omegasm.WithClusters(2)}, "only applies to NewFleet"},
		{"refresh interval in New", []omegasm.Option{omegasm.WithN(3), omegasm.WithRefreshInterval(time.Millisecond)}, "only applies to NewFleet"},
		{"override in New", []omegasm.Option{omegasm.WithN(3), omegasm.WithClusterOptions(0, omegasm.WithN(5))}, "only applies to NewFleet"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := omegasm.New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The minimal valid option list: WithN alone.
	c, err := omegasm.New(omegasm.WithN(2))
	if err != nil {
		t.Fatalf("WithN(2) alone rejected: %v", err)
	}
	if c.Substrate() != "atomic" || c.Algorithm() != omegasm.WriteEfficient {
		t.Errorf("defaults: substrate %q algorithm %v", c.Substrate(), c.Algorithm())
	}
}

// TestDeprecatedConfigShims keeps the legacy struct constructors working
// and mapped onto the option path (including its validation).
func TestDeprecatedConfigShims(t *testing.T) {
	if _, err := omegasm.NewFromConfig(omegasm.Config{N: 1}); err == nil {
		t.Error("NewFromConfig accepted N=1")
	}
	if _, err := omegasm.NewFromConfig(omegasm.Config{N: 3, Algorithm: omegasm.Algorithm(99)}); err == nil {
		t.Error("NewFromConfig accepted an unknown algorithm")
	}
	c, err := omegasm.NewFromConfig(omegasm.Config{
		N:            3,
		Algorithm:    omegasm.Bounded,
		StepInterval: 100 * time.Microsecond,
		TimerUnit:    time.Millisecond,
		Instrument:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm() != omegasm.Bounded || c.N() != 3 {
		t.Errorf("shim lost fields: algorithm %v n %d", c.Algorithm(), c.N())
	}
	if _, err := omegasm.NewFleetFromConfig(omegasm.FleetConfig{Clusters: 0, Cluster: omegasm.Config{N: 3}}); err == nil {
		t.Error("NewFleetFromConfig accepted 0 clusters")
	}
	f, err := omegasm.NewFleetFromConfig(omegasm.FleetConfig{Clusters: 2, Cluster: omegasm.Config{N: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Clusters() != 2 || f.Cluster(0).N() != 2 {
		t.Errorf("fleet shim lost fields: clusters %d n %d", f.Clusters(), f.Cluster(0).N())
	}
	f.Stop()
}

// TestSANSubstrateElection runs every exposed algorithm variant over the
// SAN substrate (ideal zero-latency disks keep it fast) and crashes a
// minority disk mid-run: the quorum must mask it.
func TestSANSubstrateElection(t *testing.T) {
	if testing.Short() {
		t.Skip("live SAN election takes seconds")
	}
	for _, algo := range []omegasm.Algorithm{
		omegasm.WriteEfficient, omegasm.Bounded, omegasm.NWnR, omegasm.TimerFree,
	} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			c := startCluster(t,
				omegasm.WithN(3),
				omegasm.WithAlgorithm(algo),
				omegasm.WithSAN(omegasm.SANConfig{Disks: 3}),
				omegasm.WithStepInterval(500*time.Microsecond),
				omegasm.WithTimerUnit(10*time.Millisecond),
			)
			if c.Substrate() != "san" || c.DiskCount() != 3 {
				t.Fatalf("substrate %q with %d disks", c.Substrate(), c.DiskCount())
			}
			if _, ok := c.WaitForAgreement(30 * time.Second); !ok {
				t.Fatal("no agreement over the SAN")
			}
			if err := c.CrashDisk(0); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.WaitForAgreement(30 * time.Second); !ok {
				t.Fatal("agreement lost after a minority disk crash")
			}
		})
	}
}

func TestCrashDiskValidation(t *testing.T) {
	atomic := startCluster(t, omegasm.WithN(2))
	if atomic.DiskCount() != 0 {
		t.Errorf("atomic substrate has %d disks", atomic.DiskCount())
	}
	if err := atomic.CrashDisk(0); err == nil {
		t.Error("CrashDisk accepted on the atomic substrate")
	}
	san, err := omegasm.New(omegasm.WithN(2), omegasm.WithSAN(omegasm.SANConfig{Disks: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := san.CrashDisk(3); err == nil {
		t.Error("out-of-range disk crash accepted")
	}
	if err := san.CrashDisk(-1); err == nil {
		t.Error("negative disk crash accepted")
	}
	if err := san.CrashDisk(2); err != nil {
		t.Errorf("valid disk crash rejected: %v", err)
	}
}

// TestSANPacingDefaults checks that the substrate chooses the pacing when
// the caller does not: disk registers default to a much coarser step than
// atomic words. Observable via election still working with no interval
// options at all.
func TestSANPacingDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("SAN defaults pace in milliseconds")
	}
	c := startCluster(t, omegasm.WithN(2), omegasm.WithSAN(omegasm.SANConfig{Disks: 3}))
	if _, ok := c.WaitForAgreement(time.Minute); !ok {
		t.Fatal("no agreement with substrate-default pacing")
	}
}
