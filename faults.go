package omegasm

import "fmt"

// SimMutation selects a deliberately seeded correctness bug for a
// simulated run. Mutations exist to prove the checker is not vacuous:
// a campaign over a mutated stack must report violations, and the CI
// smoke asserts exactly that. MutNone (the zero value) runs the real
// stack.
type SimMutation int

// The seeded mutations.
const (
	// MutNone runs the unmutated stack.
	MutNone SimMutation = iota
	// MutDropQuorumAck acknowledges workload writes at submission instead
	// of at commit confirmation — the classic dropped-quorum-ack bug. A
	// leader crash between the ack and the commit loses an acknowledged
	// write, which the durability check must flag.
	MutDropQuorumAck
	// MutPrematureLeaseExtend lets a replica acquire the lease while the
	// previous grant is still valid (the acquire guard runs with a
	// negative skew bound) — the premature-extend bug. After a holder
	// crash the successor's window overlaps the crashed holder's, which
	// the lease no-overlap check must flag.
	MutPrematureLeaseExtend
)

// valid reports whether m names a known mutation.
func (m SimMutation) valid() bool {
	return m >= MutNone && m <= MutPrematureLeaseExtend
}

// SimFaults configures the gray-failure fault models of a simulated run.
// All faults are injected deterministically from the run's seeded
// adversary, so a faulted run replays byte-identically like any other.
// The register faults apply to the election classes only: the consensus
// registers stay atomic, so a checker violation under faults is a real
// algorithm weakness, not a broken Paxos substrate. The zero value
// injects nothing.
type SimFaults struct {
	// StaleReadP is the per-read probability that an election-register
	// read landing within StaleWindow ticks of the register's last write
	// observes the overwritten value — the register degrades from atomic
	// to regular, which the paper's algorithms are supposed to tolerate.
	StaleReadP float64
	// StaleWindow bounds the staleness in virtual ticks after a write.
	StaleWindow int64
	// PartialViewP is the per-read probability that a reader's view of an
	// election register freezes for PartialViewLen ticks while writes
	// keep landing underneath — partial census visibility.
	PartialViewP float64
	// PartialViewLen is the freeze duration in virtual ticks.
	PartialViewLen int64
	// TimerSkewMax, when positive, skews each process's timer unit by a
	// per-process deterministic draw in [0, TimerSkewMax] extra ticks per
	// timeout unit — processes disagree about how long a timeout is.
	TimerSkewMax int
	// BrownoutFrom and BrownoutTo bound a cluster-wide slow spell:
	// every machine's inter-step delays are multiplied by BrownoutFactor
	// inside [BrownoutFrom, BrownoutTo). The window is finite, so AWB1's
	// eventual bound still holds after it closes.
	BrownoutFrom, BrownoutTo int64
	// BrownoutFactor is the delay multiplier inside the brownout window;
	// values below 2 disable the brownout.
	BrownoutFactor int64
}

// active reports whether any fault is configured.
func (f *SimFaults) active() bool {
	if f == nil {
		return false
	}
	return f.StaleReadP > 0 || f.PartialViewP > 0 || f.TimerSkewMax > 0 || f.brownout()
}

// registerFaults reports whether the election-register injector is needed.
func (f *SimFaults) registerFaults() bool {
	return f != nil && (f.StaleReadP > 0 || f.PartialViewP > 0)
}

// brownout reports whether a brownout window is configured.
func (f *SimFaults) brownout() bool {
	return f != nil && f.BrownoutFactor > 1 && f.BrownoutTo > f.BrownoutFrom
}

// validate rejects nonsensical fault parameters.
func (f *SimFaults) validate() error {
	if f == nil {
		return nil
	}
	if f.StaleReadP < 0 || f.StaleReadP > 1 {
		return fmt.Errorf("omegasm: stale-read probability %v outside [0, 1]", f.StaleReadP)
	}
	if f.StaleReadP > 0 && f.StaleWindow <= 0 {
		return fmt.Errorf("omegasm: stale reads need a positive window, got %d", f.StaleWindow)
	}
	if f.PartialViewP < 0 || f.PartialViewP > 1 {
		return fmt.Errorf("omegasm: partial-view probability %v outside [0, 1]", f.PartialViewP)
	}
	if f.PartialViewP > 0 && f.PartialViewLen <= 0 {
		return fmt.Errorf("omegasm: partial views need a positive length, got %d", f.PartialViewLen)
	}
	if f.TimerSkewMax < 0 {
		return fmt.Errorf("omegasm: timer skew %d is negative", f.TimerSkewMax)
	}
	if f.BrownoutFactor > 1 && f.BrownoutTo <= f.BrownoutFrom {
		return fmt.Errorf("omegasm: brownout window [%d, %d) is empty", f.BrownoutFrom, f.BrownoutTo)
	}
	if f.BrownoutFrom < 0 {
		return fmt.Errorf("omegasm: brownout start %d is negative", f.BrownoutFrom)
	}
	return nil
}
