package omegasm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"omegasm/check"
)

// CampaignPoint is one cell of a campaign's configuration grid: a named
// base configuration the campaign sweeps seeds over. The campaign forces
// Record on and overrides Seed per run; everything else is taken as is.
type CampaignPoint struct {
	// Name labels the point in reports and scenario fixtures.
	Name string `json:"name"`
	// Config is the base run configuration.
	Config SimKVConfig `json:"config"`
}

// CampaignConfig parameterizes one adversarial scenario campaign: a
// sweep of Seeds seeds over every grid point, each run scored by its
// checker verdict and anomaly metrics.
type CampaignConfig struct {
	// Seeds is how many seeds to sweep per grid point; default 50.
	Seeds int `json:"seeds"`
	// SeedBase offsets the swept seed range (seeds are SeedBase+i), so
	// nightly campaigns can cover fresh ground every night.
	SeedBase int64 `json:"seed_base"`
	// Grid is the configuration grid; empty picks DefaultCampaignGrid.
	Grid []CampaignPoint `json:"grid,omitempty"`
	// Keep bounds the report's worst-run list; default 10.
	Keep int `json:"keep"`
	// Mutation seeds a deliberate bug into every run (the non-vacuity
	// mode: a mutated campaign must report violations); MutNone sweeps
	// the real stack.
	Mutation SimMutation `json:"mutation,omitempty"`
}

// RunScore is one run's scored outcome. Higher scores are worse:
// violations dominate near-misses, which dominate the anomaly metrics
// (leader churn, commit stalls).
type RunScore struct {
	// Point names the grid point the run belongs to.
	Point string `json:"point"`
	// Seed is the run's seed.
	Seed int64 `json:"seed"`
	// Violations, NearMisses and Undecided count the verdict's entries.
	Violations int `json:"violations"`
	// NearMisses counts the verdict's near-misses.
	NearMisses int `json:"near_misses"`
	// Undecided counts linearization searches that hit the state cap.
	Undecided int `json:"undecided"`
	// LeaderChanges and CommitStallMax echo the run's anomaly metrics.
	LeaderChanges int `json:"leader_changes"`
	// CommitStallMax is the run's largest commit stall in ticks.
	CommitStallMax int64 `json:"commit_stall_max"`
	// Score is the run's total badness.
	Score int64 `json:"score"`
	// FirstViolation quotes the verdict's first violation, empty if none.
	FirstViolation string `json:"first_violation,omitempty"`
}

// CampaignReport is a campaign's scored summary, serialized as the
// nightly sweep's JSON artifact.
type CampaignReport struct {
	// Seeds and SeedBase echo the campaign's sweep parameters.
	Seeds int `json:"seeds"`
	// SeedBase echoes the campaign's seed offset.
	SeedBase int64 `json:"seed_base"`
	// Points lists the grid point names in sweep order.
	Points []string `json:"points"`
	// Runs counts executed runs; ViolationRuns and NearMissRuns count
	// the ones whose verdicts had violations / near-misses.
	Runs int `json:"runs"`
	// ViolationRuns counts runs with at least one violation.
	ViolationRuns int `json:"violation_runs"`
	// NearMissRuns counts runs with at least one near-miss.
	NearMissRuns int `json:"near_miss_runs"`
	// Worst lists the highest-scoring runs, worst first.
	Worst []RunScore `json:"worst"`
}

// scoreRun collapses one run's verdict and anomaly metrics into a
// single badness score.
func scoreRun(point string, seed int64, res *SimKVResult, v check.Verdict) RunScore {
	sc := RunScore{
		Point:          point,
		Seed:           seed,
		Violations:     len(v.Violations),
		NearMisses:     len(v.NearMisses),
		Undecided:      len(v.Undecided),
		LeaderChanges:  res.LeaderChanges,
		CommitStallMax: res.CommitStallMax,
	}
	sc.Score = int64(sc.Violations)*1_000_000 +
		int64(sc.NearMisses)*1_000 +
		int64(sc.LeaderChanges)*50 +
		sc.CommitStallMax/100
	if sc.Violations > 0 {
		sc.FirstViolation = v.Violations[0]
	}
	return sc
}

// RunCampaign sweeps the configured seeds over every grid point,
// verifying each recorded run, and returns the scored report. Runs
// execute sequentially (the simulator is single-threaded by design, and
// a sequential sweep keeps the report deterministic for a fixed
// configuration). An error in any run config aborts the campaign — grid
// points are supposed to be valid by construction.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = DefaultCampaignGrid()
	}
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 50
	}
	keep := cfg.Keep
	if keep <= 0 {
		keep = 10
	}
	report := &CampaignReport{Seeds: seeds, SeedBase: cfg.SeedBase}
	for _, pt := range grid {
		report.Points = append(report.Points, pt.Name)
		for s := 0; s < seeds; s++ {
			c := cloneSimConfig(pt.Config)
			c.Seed = cfg.SeedBase + int64(s)
			c.Record = true
			if cfg.Mutation != MutNone {
				c.Mutation = cfg.Mutation
			}
			res, err := SimKV(c)
			if err != nil {
				return nil, fmt.Errorf("omegasm: campaign point %q seed %d: %w", pt.Name, c.Seed, err)
			}
			v := res.Verify(check.Options{})
			sc := scoreRun(pt.Name, c.Seed, res, v)
			report.Runs++
			if sc.Violations > 0 {
				report.ViolationRuns++
			}
			if sc.NearMisses > 0 {
				report.NearMissRuns++
			}
			report.Worst = append(report.Worst, sc)
		}
	}
	// Keep the worst runs, worst first; ties break on (point, seed) so
	// the report is identical run over run.
	sort.SliceStable(report.Worst, func(i, j int) bool {
		a, b := report.Worst[i], report.Worst[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		return a.Seed < b.Seed
	})
	if len(report.Worst) > keep {
		report.Worst = report.Worst[:keep]
	}
	return report, nil
}

// cloneSimConfig deep-copies a run configuration so sweeps and the
// minimizer can mutate candidates without aliasing the original's
// slices and maps.
func cloneSimConfig(c SimKVConfig) SimKVConfig {
	out := c
	out.Writes = append([]SimWrite(nil), c.Writes...)
	out.Requests = append([]SimRequest(nil), c.Requests...)
	if c.Crashes != nil {
		m := make(map[int]int64, len(c.Crashes))
		for p, t := range c.Crashes {
			m[p] = t
		}
		out.Crashes = m
	}
	if c.Faults != nil {
		f := *c.Faults
		out.Faults = &f
	}
	return out
}

// MinimizeScenario greedily shrinks a reproducing configuration: it
// drops writes, requests and crashes one at a time, halves the horizon
// and strips the fault models, keeping each change only while keep
// still accepts the (recorded, verified) rerun. The result is the local
// minimum the regression fixture commits — small enough to read, still
// reproducing the property of interest. keep is called with every
// candidate's result and verdict; MinimizeScenario errors if the
// starting configuration itself does not reproduce.
func MinimizeScenario(cfg SimKVConfig, keep func(*SimKVResult, check.Verdict) bool) (SimKVConfig, error) {
	try := func(c SimKVConfig) bool {
		c.Record = true
		res, err := SimKV(c)
		if err != nil {
			return false
		}
		return keep(res, res.Verify(check.Options{}))
	}
	cur := cloneSimConfig(cfg)
	cur.Record = true
	if !try(cur) {
		return cfg, fmt.Errorf("omegasm: minimization seed does not reproduce")
	}
	improved := true
	for improved {
		improved = false
		for i := len(cur.Writes) - 1; i >= 0; i-- {
			cand := cloneSimConfig(cur)
			cand.Writes = append(cand.Writes[:i], cand.Writes[i+1:]...)
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		for i := len(cur.Requests) - 1; i >= 0; i-- {
			cand := cloneSimConfig(cur)
			cand.Requests = append(cand.Requests[:i], cand.Requests[i+1:]...)
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		pids := make([]int, 0, len(cur.Crashes))
		for p := range cur.Crashes {
			pids = append(pids, p)
		}
		sort.Ints(pids)
		for _, p := range pids {
			cand := cloneSimConfig(cur)
			delete(cand.Crashes, p)
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		if cur.Horizon > 2048 {
			cand := cloneSimConfig(cur)
			cand.Horizon = cur.Horizon / 2
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		if cur.Faults != nil {
			cand := cloneSimConfig(cur)
			cand.Faults = nil
			if try(cand) {
				cur = cand
				improved = true
			}
		}
	}
	return cur, nil
}

// Scenario is one committed regression fixture: a minimized run
// configuration plus the exact outcome it must reproduce. Replaying a
// scenario reruns the configuration and compares everything, including
// the sha256 of the recorded history's canonical bytes — "replays
// byte-identically" as a single hash comparison.
type Scenario struct {
	// Name labels the scenario (the fixture's file stem).
	Name string `json:"name"`
	// Config is the minimized run configuration, Record included.
	Config SimKVConfig `json:"config"`
	// Expect is the outcome the replay must reproduce exactly.
	Expect ScenarioExpect `json:"expect"`
}

// ScenarioExpect pins a scenario's reproducible outcome.
type ScenarioExpect struct {
	// CommittedTotal, Delivered, LeaderChanges and End pin the run's
	// headline result fields.
	CommittedTotal int `json:"committed_total"`
	// Delivered pins the confirmed-write count.
	Delivered int `json:"delivered"`
	// LeaderChanges pins the watcher's churn count.
	LeaderChanges int `json:"leader_changes"`
	// End pins the run's end time in ticks.
	End int64 `json:"end"`
	// HistoryHash is the hex sha256 of the recorded history's canonical
	// bytes.
	HistoryHash string `json:"history_hash"`
	// VerdictOK records whether the checker verdict had no violations.
	VerdictOK bool `json:"verdict_ok"`
}

// historyHash renders the canonical-bytes hash a scenario pins.
func historyHash(h *check.History) string {
	sum := sha256.Sum256(h.Canonical())
	return hex.EncodeToString(sum[:])
}

// BuildScenario runs cfg once (with recording forced on) and pins its
// outcome into a committable fixture.
func BuildScenario(name string, cfg SimKVConfig) (*Scenario, error) {
	c := cloneSimConfig(cfg)
	c.Record = true
	res, err := SimKV(c)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:   name,
		Config: c,
		Expect: ScenarioExpect{
			CommittedTotal: res.CommittedTotal,
			Delivered:      res.Delivered,
			LeaderChanges:  res.LeaderChanges,
			End:            res.End,
			HistoryHash:    historyHash(res.History),
			VerdictOK:      res.Verify(check.Options{}).OK(),
		},
	}, nil
}

// Replay reruns the scenario's configuration and returns an error
// describing the first divergence from the pinned outcome, or nil when
// the replay is byte-identical (history hash included) and the verdict
// matches.
func (s *Scenario) Replay() error {
	c := cloneSimConfig(s.Config)
	c.Record = true
	res, err := SimKV(c)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if res.CommittedTotal != s.Expect.CommittedTotal {
		return fmt.Errorf("scenario %s: committed %d, want %d", s.Name, res.CommittedTotal, s.Expect.CommittedTotal)
	}
	if res.Delivered != s.Expect.Delivered {
		return fmt.Errorf("scenario %s: delivered %d, want %d", s.Name, res.Delivered, s.Expect.Delivered)
	}
	if res.LeaderChanges != s.Expect.LeaderChanges {
		return fmt.Errorf("scenario %s: leader changes %d, want %d", s.Name, res.LeaderChanges, s.Expect.LeaderChanges)
	}
	if res.End != s.Expect.End {
		return fmt.Errorf("scenario %s: end %d, want %d", s.Name, res.End, s.Expect.End)
	}
	if got := historyHash(res.History); got != s.Expect.HistoryHash {
		return fmt.Errorf("scenario %s: history hash %s, want %s — replay is not byte-identical", s.Name, got, s.Expect.HistoryHash)
	}
	if ok := res.Verify(check.Options{}).OK(); ok != s.Expect.VerdictOK {
		return fmt.Errorf("scenario %s: verdict ok=%t, want %t", s.Name, ok, s.Expect.VerdictOK)
	}
	return nil
}

// BuildWorstScenarios sweeps the campaign's grid like RunCampaign, then
// for every grid point takes the worst-scoring clean-verdict run (the
// most leader churn and commit stalling the point produced without any
// violation), greedily minimizes it while the churn, the delivered and
// committed workload and the clean verdict all persist, and pins it
// into a Scenario — the committable
// regression fixtures of a campaign. Points with no clean run are
// skipped. The campaign's Mutation is deliberately ignored: fixtures
// pin the real stack.
func BuildWorstScenarios(cfg CampaignConfig) ([]*Scenario, error) {
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = DefaultCampaignGrid()
	}
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 50
	}
	var out []*Scenario
	for _, pt := range grid {
		bestSeed := int64(-1)
		var best RunScore
		for s := 0; s < seeds; s++ {
			c := cloneSimConfig(pt.Config)
			c.Seed = cfg.SeedBase + int64(s)
			c.Record = true
			res, err := SimKV(c)
			if err != nil {
				return nil, fmt.Errorf("omegasm: scenario point %q seed %d: %w", pt.Name, c.Seed, err)
			}
			v := res.Verify(check.Options{})
			if !v.OK() {
				continue
			}
			sc := scoreRun(pt.Name, c.Seed, res, v)
			if bestSeed < 0 || sc.Score > best.Score {
				best, bestSeed = sc, c.Seed
			}
		}
		if bestSeed < 0 {
			continue
		}
		c := cloneSimConfig(pt.Config)
		c.Seed = bestSeed
		c.Record = true
		orig, err := SimKV(cloneSimConfig(c))
		if err != nil {
			return nil, err
		}
		churn, delivered, committed := best.LeaderChanges, orig.Delivered, orig.CommittedTotal
		minimized, err := MinimizeScenario(c, func(res *SimKVResult, v check.Verdict) bool {
			return v.OK() && res.LeaderChanges >= churn &&
				res.Delivered >= delivered && res.CommittedTotal >= committed
		})
		if err != nil {
			minimized = c
		}
		sc, err := BuildScenario(pt.Name, minimized)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// DefaultCampaignGrid is the stock configuration grid of the scenario
// campaigns: a healthy baseline, leader-crash points with and without
// leases, a gray-failure election substrate, a cluster brownout, and an
// open-loop client mix. Every point uses 3 processes and a 60k-tick
// horizon, with writes spread over the run so crashes land mid-workload.
func DefaultCampaignGrid() []CampaignPoint {
	writes := func() []SimWrite {
		out := make([]SimWrite, 0, 10)
		for i := 0; i < 10; i++ {
			out = append(out, SimWrite{At: int64(2000 + 1000*i), Key: uint16(1 + i), Val: uint16(100 + i)})
		}
		return out
	}
	base := func() SimKVConfig {
		return SimKVConfig{N: 3, Horizon: 60_000, Writes: writes()}
	}
	crash := func(pids ...int) map[int]int64 {
		m := make(map[int]int64, len(pids))
		for i, p := range pids {
			m[p] = int64(9_000 + 4_000*i)
		}
		return m
	}
	leased := func(c SimKVConfig) SimKVConfig {
		c.Lease = 2_500
		return c
	}
	withFaults := func(c SimKVConfig, f SimFaults) SimKVConfig {
		c.Faults = &f
		return c
	}
	openload := func(c SimKVConfig) SimKVConfig {
		for i := 0; i < 12; i++ {
			c.Requests = append(c.Requests,
				SimRequest{At: int64(2_500 + 1_500*i), Key: uint16(1 + i%10), Val: uint16(200 + i), Client: 1 + i%3},
				SimRequest{At: int64(3_000 + 1_500*i), Key: uint16(1 + i%10), Read: true, Client: 1 + i%3},
			)
		}
		return c
	}
	grid := []CampaignPoint{
		{Name: "baseline", Config: base()},
		{Name: "crash-p0", Config: func() SimKVConfig { c := base(); c.Crashes = crash(0); return c }()},
		{Name: "crash-p0p1", Config: func() SimKVConfig { c := base(); c.Crashes = crash(0, 1); return c }()},
		{Name: "leased-crash-p0", Config: func() SimKVConfig { c := leased(base()); c.Crashes = crash(0); return c }()},
		{Name: "leased-crash-p1p2", Config: func() SimKVConfig { c := leased(base()); c.Crashes = crash(1, 2); return c }()},
		{Name: "gray-election", Config: func() SimKVConfig {
			c := withFaults(base(), SimFaults{
				StaleReadP: 0.2, StaleWindow: 16,
				PartialViewP: 0.05, PartialViewLen: 200,
				TimerSkewMax: 3,
			})
			c.Crashes = crash(1)
			return c
		}()},
		{Name: "brownout", Config: func() SimKVConfig {
			return withFaults(base(), SimFaults{BrownoutFrom: 4_000, BrownoutTo: 12_000, BrownoutFactor: 8})
		}()},
		{Name: "openload-crash-p2", Config: func() SimKVConfig {
			c := openload(base())
			c.Crashes = crash(2)
			return c
		}()},
		// A dense write stream through a brownout with two staggered
		// crashes inside it: the submit-to-commit window is stretched and
		// always occupied, so a leader crash catches writes in flight.
		// Clean on the real stack (the writer resubmits); the point that
		// catches MutDropQuorumAck in mutated campaigns.
		{Name: "brownout-crash-dense", Config: func() SimKVConfig {
			c := SimKVConfig{N: 3, Horizon: 40_000}
			for i := 0; i < 61; i++ {
				c.Writes = append(c.Writes, SimWrite{At: int64(5_800 + 10*i), Key: uint16(1 + i), Val: uint16(100 + i)})
			}
			c.Crashes = map[int]int64{0: 6_100, 1: 6_200}
			return withFaults(c, SimFaults{BrownoutFrom: 5_000, BrownoutTo: 8_000, BrownoutFactor: 6})
		}()},
	}
	return grid
}
