package omegasm_test

import (
	"reflect"
	"testing"

	"omegasm"
)

// simWorkload builds a small write set spanning the run.
func simWorkload(count int, from, spacing int64) []omegasm.SimWrite {
	writes := make([]omegasm.SimWrite, count)
	for i := range writes {
		writes[i] = omegasm.SimWrite{
			At:  from + int64(i)*spacing,
			Key: uint16(i % 7),
			Val: uint16(100 + i),
		}
	}
	return writes
}

func TestSimKVValidation(t *testing.T) {
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{N: 3, Slots: -1}); err == nil {
		t.Error("negative slots accepted")
	}
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{N: 3, Crashes: map[int]int64{7: 10}}); err == nil {
		t.Error("out-of-range crash pid accepted")
	}
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{
		N: 2, Crashes: map[int]int64{0: 1, 1: 2},
	}); err == nil {
		t.Error("crashing every process accepted")
	}
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{
		N: 3, Writes: []omegasm.SimWrite{{At: 1, Key: 0xFFFF, Val: 0xFFFF}},
	}); err == nil {
		t.Error("reserved key/value pair accepted")
	}
	if _, err := omegasm.SimKV(omegasm.SimKVConfig{N: 3, Algorithm: omegasm.Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestSimKVValidationDeterministic: with several invalid crash entries
// the reported error must not depend on map iteration order. Validation
// used to range over the crash map directly, so which bad entry it named
// differed run to run; it now checks pids in sorted order and must always
// blame the lowest one.
func TestSimKVValidationDeterministic(t *testing.T) {
	cfg := omegasm.SimKVConfig{
		N:       4,
		Crashes: map[int]int64{9: 10, 7: -5, 3: -1, 11: 20},
	}
	_, err := omegasm.SimKV(cfg)
	if err == nil {
		t.Fatal("invalid crash schedule accepted")
	}
	want := err.Error()
	if want != "omegasm: crash time -1 for process 3 is negative" {
		t.Fatalf("validation blamed %q, not the lowest bad pid", want)
	}
	for i := 0; i < 50; i++ {
		if _, err := omegasm.SimKV(cfg); err == nil || err.Error() != want {
			t.Fatalf("run %d: error changed: %v (want %q)", i, err, want)
		}
	}
}

// TestSimKVDeliversWorkload: a calm run (no crashes) commits every write
// and converges every replica's state.
func TestSimKVDeliversWorkload(t *testing.T) {
	writes := simWorkload(12, 2_000, 500)
	res, err := omegasm.SimKV(omegasm.SimKVConfig{
		N: 3, Seed: 11, Horizon: 300_000, Writes: writes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(writes) {
		t.Fatalf("Delivered = %d, want %d (end=%d, committed=%d)",
			res.Delivered, len(writes), res.End, len(res.Committed))
	}
	if len(res.Committed) < len(writes) {
		t.Fatalf("committed %d entries, want >= %d", len(res.Committed), len(writes))
	}
	// Last write per key wins in the final state.
	want := map[uint16]uint16{}
	for _, w := range writes {
		want[w.Key] = w.Val
	}
	if !reflect.DeepEqual(res.State, want) {
		t.Fatalf("State = %v, want %v", res.State, want)
	}
}

// TestSimKVDeterministicReplay is the acceptance criterion: same seed +
// same crash schedule => byte-identical committed log (and full result)
// across two simulated runs.
func TestSimKVDeterministicReplay(t *testing.T) {
	cfg := omegasm.SimKVConfig{
		N:       4,
		Seed:    1729,
		Horizon: 400_000,
		Crashes: map[int]int64{1: 60_000, 2: 120_000},
		Writes:  simWorkload(16, 2_000, 4_000),
	}
	a, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Committed, b.Committed) {
		t.Fatalf("same seed, different commit histories:\n%v\n%v", a.Committed, b.Committed)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if len(a.Committed) == 0 {
		t.Fatal("vacuous: nothing committed")
	}
}

// TestSimKVCheckpointedReplay is the recycling acceptance criterion: a
// stream several times the slot window, sealed by at least three
// checkpoints, replays byte-identically per seed — including with a
// crash schedule that kills processes while checkpoints are in flight.
func TestSimKVCheckpointedReplay(t *testing.T) {
	const slots = 24 // window 24, default cadence 6: a 150-write stream recycles many times
	base := omegasm.SimKVConfig{
		N:       3,
		Seed:    99,
		Horizon: 2_000_000,
		Slots:   slots,
		Writes:  simWorkload(150, 2_000, 2_000),
	}
	for name, crashes := range map[string]map[int]int64{
		"calm": nil,
		// The crash lands mid-stream, while seals and acks are flowing:
		// whichever process is mid-checkpoint when it hits, the survivors
		// must finish the seal, gather the quorum, and keep recycling.
		"crash-during-checkpointing": {1: 120_000},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			cfg.Crashes = crashes
			a, err := omegasm.SimKV(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := omegasm.SimKV(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different results across checkpoints:\n%+v\n%+v", a, b)
			}
			if a.Checkpoints < 3 {
				t.Fatalf("only %d checkpoints; the scenario is not exercising recycling", a.Checkpoints)
			}
			if a.SlotsUsed <= slots {
				t.Fatalf("SlotsUsed = %d over a %d-slot window: nothing recycled", a.SlotsUsed, slots)
			}
			if a.Delivered != len(cfg.Writes) {
				t.Fatalf("delivered %d of %d across recycling", a.Delivered, len(cfg.Writes))
			}
			want := map[uint16]uint16{}
			for _, w := range cfg.Writes {
				want[w.Key] = w.Val
			}
			if !reflect.DeepEqual(a.State, want) {
				t.Fatalf("state diverged from last-write-wins: %v vs %v", a.State, want)
			}
		})
	}
}

// TestSimKVLeaderCrashFailover scripts the deterministic failover
// scenario: probe the stabilized leader with a dry run, then crash
// exactly that leader mid-workload and check the survivors finish the
// job — reproducibly.
func TestSimKVLeaderCrashFailover(t *testing.T) {
	base := omegasm.SimKVConfig{N: 4, Seed: 7, Horizon: 600_000}
	probe, err := omegasm.SimKV(base)
	if err != nil {
		t.Fatal(err)
	}
	leader := probe.Leaders[0]
	if leader < 0 {
		t.Fatal("probe run elected nobody")
	}
	for p, l := range probe.Leaders {
		if !probe.Crashed[p] && l != leader {
			t.Fatalf("probe run did not stabilize: leaders %v", probe.Leaders)
		}
	}

	cfg := base
	cfg.Crashes = map[int]int64{leader: 100_000}
	cfg.Writes = simWorkload(10, 2_000, 30_000) // spans the crash
	res, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[leader] {
		t.Fatalf("leader %d did not crash", leader)
	}
	if res.Delivered != len(cfg.Writes) {
		t.Fatalf("Delivered = %d of %d across the failover (end=%d)",
			res.Delivered, len(cfg.Writes), res.End)
	}
	for p, l := range res.Leaders {
		if res.Crashed[p] {
			continue
		}
		if l == leader {
			t.Fatalf("process %d still names the crashed leader %d", p, l)
		}
	}
	// And the failover run replays identically.
	again, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Committed, again.Committed) {
		t.Fatal("failover run is not reproducible")
	}
}

// simRequests builds a mixed open-loop request stream: every third
// request is a read, keys cycle a small space, arrivals are evenly
// spaced starting at from.
func simRequests(count int, from, spacing int64) []omegasm.SimRequest {
	reqs := make([]omegasm.SimRequest, count)
	for i := range reqs {
		reqs[i] = omegasm.SimRequest{
			At:    from + int64(i)*spacing,
			Key:   uint16(i % 5),
			Val:   uint16(200 + i),
			Read:  i%3 == 2,
			Class: i % 2,
		}
	}
	return reqs
}

// TestSimKVOpenLoopRequests checks the open-loop workload path: every
// request completes before a generous horizon, completion times respect
// arrival times, and results echo the submitted order.
func TestSimKVOpenLoopRequests(t *testing.T) {
	reqs := simRequests(30, 2_000, 2_000)
	res, err := omegasm.SimKV(omegasm.SimKVConfig{
		N: 3, Seed: 5, Horizon: 500_000, Requests: reqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != len(reqs) {
		t.Fatalf("got %d request results, want %d", len(res.Requests), len(reqs))
	}
	for i, rr := range res.Requests {
		if rr.Index != i {
			t.Fatalf("result %d has Index %d", i, rr.Index)
		}
		if rr.At != reqs[i].At || rr.Read != reqs[i].Read || rr.Class != reqs[i].Class {
			t.Fatalf("result %d = %+v does not echo request %+v", i, rr, reqs[i])
		}
		if rr.Done < 0 {
			t.Fatalf("request %d incomplete at horizon (end=%d)", i, res.End)
		}
		if rr.Done < rr.At {
			t.Fatalf("request %d completed at %d before arrival %d", i, rr.Done, rr.At)
		}
	}
	// The writes landed: last write per key wins in the final state.
	want := map[uint16]uint16{}
	for _, r := range reqs {
		if !r.Read {
			want[r.Key] = r.Val
		}
	}
	for k, v := range want {
		if res.State[k] != v {
			t.Fatalf("State[%d] = %d, want %d", k, res.State[k], v)
		}
	}
}

// TestSimKVOpenLoopReplay is the load harness's determinism criterion:
// the same seeded config with an open-loop request stream (crossing a
// leader crash) produces byte-identical per-request completion times.
func TestSimKVOpenLoopReplay(t *testing.T) {
	cfg := omegasm.SimKVConfig{
		N:        3,
		Seed:     23,
		Horizon:  600_000,
		Crashes:  map[int]int64{0: 90_000},
		Requests: simRequests(40, 2_000, 3_000),
	}
	a, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := omegasm.SimKV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatalf("same seed, different request timelines:\n%v\n%v", a.Requests, b.Requests)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different results")
	}
	done := 0
	for _, rr := range a.Requests {
		if rr.Done >= 0 {
			done++
		}
	}
	if done == 0 {
		t.Fatal("vacuous: no request completed")
	}
}
