package omegasm_test

import (
	"context"
	"testing"
	"time"

	"omegasm"
)

func TestProposeDecides(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	v, err := c.Propose(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("decided %d, want 42", v)
	}
	// One-shot: a later proposal with a different value returns the
	// already-decided one.
	v2, err := c.Propose(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 42 {
		t.Fatalf("second Propose decided %d, want the original 42", v2)
	}
}

func TestProposeValidatesAndCancels(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Propose(ctx, 0xFFFFFFFF); err == nil {
		t.Error("reserved sentinel value accepted")
	}
	// A cancelled context must end the call promptly even before any
	// decision is possible.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := c.Propose(done, 5); err == nil {
		t.Error("Propose returned nil error on a dead context")
	}
}

func TestKVPutGet(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(64))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.Capacity() != 64 {
		t.Errorf("Capacity() = %d", kv.Capacity())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for k := uint16(0); k < 8; k++ {
		if err := kv.Put(ctx, k, 100+k); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint16(0); k < 8; k++ {
		if v, ok := kv.Get(k); !ok || v != 100+k {
			t.Errorf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	if _, ok := kv.Get(999); ok {
		t.Error("Get of a never-written key reported ok")
	}
	if kv.Len() != 8 {
		t.Errorf("Len() = %d, want 8", kv.Len())
	}
	if kv.Applied() < 8 {
		t.Errorf("Applied() = %d, want >= 8", kv.Applied())
	}
	snap := kv.Snapshot()
	if len(snap) != 8 || snap[3] != 103 {
		t.Errorf("Snapshot() = %v", snap)
	}
	// Overwrite: last committed set wins.
	if err := kv.Put(ctx, 3, 999); err != nil {
		t.Fatal(err)
	}
	if v, _ := kv.Get(3); v != 999 {
		t.Errorf("after overwrite Get(3) = %d", v)
	}
	// Regression: re-writing a value the key held before must commit a
	// fresh log entry, not count the historical commit as success.
	if err := kv.Put(ctx, 3, 103); err != nil {
		t.Fatal(err)
	}
	if v, _ := kv.Get(3); v != 103 {
		t.Errorf("re-write of a prior value lost: Get(3) = %d, want 103", v)
	}
	// The reserved (0xFFFF, 0xFFFF) pair is rejected synchronously.
	if err := kv.Put(ctx, 0xFFFF, 0xFFFF); err == nil {
		t.Error("reserved pair accepted")
	}
}

// TestKVSurvivesLeaderCrash is the acceptance scenario: the store keeps
// serving reads and committing writes across a leader crash; committed
// pre-crash keys stay visible.
func TestKVSurvivesLeaderCrash(t *testing.T) {
	c := startCluster(t, fastOpts(4)...)
	leader, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(128))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for k := uint16(0); k < 5; k++ {
		if err := kv.Put(ctx, k, 10+k); err != nil {
			t.Fatalf("pre-crash put %d: %v", k, err)
		}
	}
	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	// Reads keep answering immediately (from a surviving replica).
	if v, ok := kv.Get(0); !ok || v != 10 {
		t.Errorf("Get(0) after crash = %d, %v", v, ok)
	}
	// Writes resume once the survivors re-elect; Put retries internally.
	for k := uint16(5); k < 10; k++ {
		if err := kv.Put(ctx, k, 10+k); err != nil {
			t.Fatalf("post-crash put %d: %v", k, err)
		}
	}
	for k := uint16(0); k < 10; k++ {
		if v, ok := kv.Get(k); !ok || v != 10+k {
			t.Errorf("Get(%d) = %d, %v after failover", k, v, ok)
		}
	}
}

// TestKVReadModes exercises the three read modes live: leases are on by
// default, the agreed leader acquires and serves ReadLease locally, and
// both linearizable modes agree with the committed value.
func TestKVReadModes(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.LeaseDuration() <= 0 {
		t.Fatalf("LeaseDuration() = %v, want the default lease on", kv.LeaseDuration())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := kv.Put(ctx, 7, 42); err != nil {
		t.Fatal(err)
	}
	// The holder appears once the agreed leader acquires and fences.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := kv.LeaseHolder(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease holder became readable")
		}
		time.Sleep(time.Millisecond)
	}
	for _, mode := range []omegasm.ReadMode{
		omegasm.ReadFreshest, omegasm.ReadLease, omegasm.ReadQuorum,
	} {
		v, ok, err := kv.Read(ctx, 7, mode)
		if err != nil || !ok || v != 42 {
			t.Errorf("Read(7, mode %d) = %d, %v, %v; want 42", mode, v, ok, err)
		}
		if _, ok, err := kv.Read(ctx, 999, mode); ok || err != nil {
			t.Errorf("Read(999, mode %d) = ok %v, err %v on absent key", mode, ok, err)
		}
	}
}

// TestLeaseReadZeroAllocs is the allocation regression gate for the
// lease-read fast path: once the holder's grant is readable, a
// ReadLease (and the ReadFreshest it builds on) is two atomic loads
// plus an array read — zero heap allocations per call.
func TestLeaseReadZeroAllocs(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := kv.Put(ctx, 7, 42); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := kv.LeaseHolder(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease holder became readable")
		}
		time.Sleep(time.Millisecond)
	}
	for _, mode := range []omegasm.ReadMode{omegasm.ReadLease, omegasm.ReadFreshest} {
		mode := mode
		avg := testing.AllocsPerRun(500, func() {
			if v, ok, err := kv.Read(ctx, 7, mode); err != nil || !ok || v != 42 {
				t.Fatalf("Read(7, mode %d) = %d, %v, %v", mode, v, ok, err)
			}
		})
		if avg != 0 {
			t.Errorf("read mode %d allocates %.2f times/op, want 0", mode, avg)
		}
	}
}

// TestKVReadModesLeaseOff covers the degraded configurations: KVLease(0)
// keeps both linearizable modes working via the quorum fence, and a store
// without a descriptor row rejects them with ErrReadUnsupported.
func TestKVReadModesLeaseOff(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c,
		omegasm.KVStepInterval(50*time.Microsecond), omegasm.KVLease(0))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if d := kv.LeaseDuration(); d != 0 {
		t.Fatalf("LeaseDuration() = %v with KVLease(0)", d)
	}
	if _, ok := kv.LeaseHolder(); ok {
		t.Error("LeaseHolder() ok with leases disabled")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := kv.Put(ctx, 3, 9); err != nil {
		t.Fatal(err)
	}
	// ReadLease falls back to the quorum path; both stay linearizable.
	for _, mode := range []omegasm.ReadMode{omegasm.ReadLease, omegasm.ReadQuorum} {
		if v, ok, err := kv.Read(ctx, 3, mode); err != nil || !ok || v != 9 {
			t.Errorf("Read(3, mode %d) = %d, %v, %v; want 9", mode, v, ok, err)
		}
	}

	// No descriptor row: unbatched, checkpoint-free logs have nowhere to
	// decide a fence no-op, so the linearizable modes refuse.
	c2 := startCluster(t, fastOpts(3)...)
	if _, ok := c2.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement on second cluster")
	}
	plain, err := omegasm.NewKV(c2,
		omegasm.KVCheckpointEvery(0), omegasm.KVBatch(1),
		omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Put(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.Read(ctx, 1, omegasm.ReadQuorum); err != omegasm.ErrReadUnsupported {
		t.Errorf("ReadQuorum on plain store: err = %v, want ErrReadUnsupported", err)
	}
	if v, ok, err := plain.Read(ctx, 1, omegasm.ReadFreshest); err != nil || !ok || v != 2 {
		t.Errorf("ReadFreshest on plain store = %d, %v, %v", v, ok, err)
	}
}

func TestKVValidation(t *testing.T) {
	if _, err := omegasm.NewKV(nil); err == nil {
		t.Error("nil cluster accepted")
	}
	c := startCluster(t, fastOpts(2)...)
	if _, err := omegasm.NewKV(c, omegasm.KVSlots(0)); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := omegasm.NewKV(c, omegasm.KVStepInterval(0)); err == nil {
		t.Error("0 step interval accepted")
	}
	if _, err := omegasm.NewKV(c, nil); err == nil {
		t.Error("nil KVOption accepted")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(8))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if _, err := omegasm.NewKV(c); err == nil {
		t.Error("second KV on one cluster accepted")
	}
}

// TestKVLogFull is the regression gate for disabled checkpointing: with
// KVCheckpointEvery(0) the log is the old fixed array — it exhausts after
// KVSlots writes and fails cleanly with ErrLogFull while reads keep
// working, exactly the pre-recycling behavior.
func TestKVLogFull(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(4), omegasm.KVCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for k := uint16(0); k < 4; k++ {
		if err := kv.Put(ctx, k, k); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := kv.Put(ctx, 9, 9); err != omegasm.ErrLogFull {
		t.Errorf("Put on a full log: %v, want ErrLogFull", err)
	}
	if err := kv.Set(9, 9); err != omegasm.ErrLogFull {
		t.Errorf("Set on a full log: %v, want ErrLogFull", err)
	}
	if v, ok := kv.Get(2); !ok || v != 2 {
		t.Errorf("read after log full: %d, %v", v, ok)
	}
	if kv.CheckpointEvery() != 0 || kv.Checkpoints() != 0 {
		t.Error("checkpoint machinery engaged despite KVCheckpointEvery(0)")
	}
}

// TestKVSustainedStream is the unbounded-stream acceptance scenario: a
// default-options store (checkpointing on) pushes a write stream 10x its
// slot window with no ErrLogFull, recycling slots across multiple
// checkpoints, and the final state reads back exactly.
func TestKVSustainedStream(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	const slots = 32
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(slots))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.CheckpointEvery() != slots/4 {
		t.Fatalf("CheckpointEvery() = %d, want the %d default", kv.CheckpointEvery(), slots/4)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const writes = 10 * slots
	for k := 0; k < writes; k++ {
		if err := kv.Put(ctx, uint16(k%16), uint16(k)); err != nil {
			t.Fatalf("put %d of a 10x-capacity stream: %v", k, err)
		}
	}
	for k := uint16(0); k < 16; k++ {
		want := uint16(writes - 16 + int(k)) // the last write of each key
		if v, ok := kv.Get(k); !ok || v != want {
			t.Errorf("Get(%d) = (%d, %v), want %d", k, v, ok, want)
		}
	}
	if kv.SlotsUsed() <= slots {
		t.Fatalf("SlotsUsed() = %d over a %d-slot window: recycling never engaged", kv.SlotsUsed(), slots)
	}
	if kv.Checkpoints() < 3 {
		t.Fatalf("only %d checkpoints over a 10x stream", kv.Checkpoints())
	}
}

// TestKVPutWakesParkedReplicas is the wake-driven engine's latency
// contract: with a pathologically slow fallback poll interval, a Put must
// still commit promptly, because enqueueing the write notifies the
// parked leader machine instead of waiting for the next tick. Under the
// old polling driver this test would need ~interval per consensus
// micro-step round and blow the deadline by orders of magnitude.
func TestKVPutWakesParkedReplicas(t *testing.T) {
	c := startCluster(t, fastOpts(3)...)
	if _, ok := c.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("no agreement")
	}
	const interval = time.Second
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(32), omegasm.KVStepInterval(interval))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// A transient leadership flap can legitimately push one Put onto the
	// slow retry path, so demand the majority be fast rather than all.
	const puts = 5
	fast := 0
	for k := uint16(0); k < puts; k++ {
		start := time.Now()
		if err := kv.Put(ctx, k, k); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		if time.Since(start) < interval/4 {
			fast++
		}
	}
	if fast < puts-1 {
		t.Fatalf("only %d/%d Puts beat the %v poll interval: writes are not waking the parked leader", fast, puts, interval)
	}
	for k := uint16(0); k < puts; k++ {
		if v, ok := kv.Get(k); !ok || v != k {
			t.Errorf("Get(%d) = %d, %v", k, v, ok)
		}
	}
}

// TestKVCloseIdempotent checks Close twice and freezes the state.
func TestKVCloseIdempotent(t *testing.T) {
	c := startCluster(t, fastOpts(2)...)
	kv, err := omegasm.NewKV(c)
	if err != nil {
		t.Fatal(err)
	}
	kv.Close()
	kv.Close()
	if _, ok := kv.Get(1); ok {
		t.Error("empty closed store answered a key")
	}
}
