//omegalint:allow simdet Live is the wall-clock engine by design: it reads real time, arms real timers and runs on its own goroutine; only the Sim engine carries the determinism obligation.

package engine

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/vclock"
)

// LiveConfig parameterizes a live engine.
type LiveConfig struct {
	// TimerUnit converts TimerMachine timeout values into real durations;
	// default DefaultTimerUnit.
	TimerUnit time.Duration
	// InitialTimeout is the value every TimerMachine's timer is first set
	// to; default 1 (as in the simulator).
	InitialTimeout uint64
}

func (c *LiveConfig) normalize() {
	if c.TimerUnit <= 0 {
		c.TimerUnit = DefaultTimerUnit
	}
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 1
	}
}

// Live drives a set of machines on one scheduler goroutine with
// deadline-ordered stepping: machines sleep exactly until their earliest
// wake hint, a Notify wakes a machine immediately (a parked KV replica
// wakes on Put enqueue instead of at the next poll tick), and a machine
// hinting WakeNow is re-stepped back to back, so bursts drain at CPU
// speed. Time is vclock.Time nanoseconds since Start.
type Live struct {
	cfg   LiveConfig
	start time.Time

	mu       sync.Mutex
	machines []*liveMachine
	queue    eventQueue
	seq      uint64
	started  bool
	stopped  bool

	kick chan struct{} // wakes the scheduler after a Notify
	halt chan struct{}
	wg   sync.WaitGroup
}

type liveMachine struct {
	m  Machine
	tm TimerMachine // nil when m has no timer task

	firstAt vclock.Time // first step deadline (ns since start)

	// stepMu serializes the machine's step/timer bodies against Crash:
	// after Crash returns, no step of the machine is in flight and none
	// will start.
	stepMu  sync.Mutex
	crashed atomic.Bool

	// stepGen, under Live.mu, invalidates superseded step entries in the
	// queue (a Notify bumps it so the stale future deadline is dropped
	// when popped). Parking needs no flag: a parked machine simply has no
	// live step entry, and Notify pushes one.
	stepGen uint64
}

// event and eventQueue are shared by the live and virtual-time engines:
// both order (deadline, arrival) pairs, the only difference being whether
// at counts nanoseconds since Start or abstract ticks.
type evKind int

const (
	evStep evKind = iota + 1
	evTimer
)

type event struct {
	at   vclock.Time
	seq  uint64
	kind evKind
	id   int
	gen  uint64
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewLive builds a stopped live engine; Add machines, then Start.
func NewLive(cfg LiveConfig) *Live {
	cfg.normalize()
	return &Live{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		halt: make(chan struct{}),
	}
}

// AddOpt configures one machine added to a live engine.
type AddOpt func(*liveMachine)

// FirstStepAt sets the machine's first step deadline, in nanoseconds
// since Start (default 0: step as soon as the engine runs).
func FirstStepAt(at vclock.Time) AddOpt {
	return func(m *liveMachine) { m.firstAt = at }
}

// Add registers a machine and returns its id. If m implements
// TimerMachine its timer task is armed at InitialTimeout * TimerUnit.
// Add may only be called before Start.
func (e *Live) Add(m Machine, opts ...AddOpt) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("engine: Add after Start")
	}
	lm := &liveMachine{m: m}
	if tm, ok := m.(TimerMachine); ok {
		lm.tm = tm
	}
	for _, o := range opts {
		o(lm)
	}
	e.machines = append(e.machines, lm)
	return len(e.machines) - 1
}

// now returns nanoseconds since Start.
func (e *Live) now() vclock.Time { return int64(time.Since(e.start)) }

// Start launches the scheduler goroutine. It may be called once; a
// stopped engine cannot be restarted.
func (e *Live) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return fmt.Errorf("engine: already stopped")
	}
	if e.started {
		return fmt.Errorf("engine: already started")
	}
	e.started = true
	e.start = time.Now()
	for id, m := range e.machines {
		e.push(event{at: m.firstAt, kind: evStep, id: id, gen: m.stepGen})
		if m.tm != nil {
			e.push(event{
				at:   vclock.Time(e.cfg.InitialTimeout) * int64(e.cfg.TimerUnit),
				kind: evTimer, id: id,
			})
		}
	}
	e.wg.Add(1)
	go e.loop()
	return nil
}

// Stop halts the scheduler and joins it. After Stop returns no machine is
// stepping and none will step again. Idempotent.
func (e *Live) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.stopped = true
	started := e.started
	e.mu.Unlock()
	close(e.halt)
	if started {
		e.wg.Wait()
	}
}

// Crash permanently deschedules machine id. When Crash returns, no step or
// timer body of the machine is in flight and none will run again — the
// paper's crash-stop failure. Idempotent; out-of-range ids are a no-op
// (they already read as crashed).
func (e *Live) Crash(id int) {
	if id < 0 || id >= len(e.machines) {
		return
	}
	m := e.machines[id]
	m.crashed.Store(true)
	// Wait out any in-flight step: the dispatcher holds stepMu across the
	// body and re-checks crashed after acquiring it.
	m.stepMu.Lock()
	//lint:ignore SA2001 the critical section is the wait itself
	m.stepMu.Unlock()
}

// Crashed reports whether machine id has been crashed.
func (e *Live) Crashed(id int) bool {
	if id < 0 || id >= len(e.machines) {
		return true
	}
	return e.machines[id].crashed.Load()
}

// Notify wakes machine id immediately: a parked machine is re-scheduled,
// and a machine sleeping toward a poll deadline is pulled forward to now.
// Safe from any goroutine, including machine step bodies. Notifying a
// crashed or stopped engine's machine is a no-op.
func (e *Live) Notify(id int) {
	e.mu.Lock()
	if e.stopped || id < 0 || id >= len(e.machines) {
		e.mu.Unlock()
		return
	}
	m := e.machines[id]
	if m.crashed.Load() {
		e.mu.Unlock()
		return
	}
	m.stepGen++ // invalidate the outstanding (later) step entry, if any
	if e.started {
		e.push(event{at: e.now(), kind: evStep, id: id, gen: m.stepGen})
	} else {
		// Before Start the initial entries have not been seeded yet; just
		// make the first step immediate.
		m.firstAt = 0
	}
	e.mu.Unlock()
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// push enqueues ev; caller holds e.mu.
func (e *Live) push(ev event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
}

// loop is the scheduler: pop due events, dispatch, sleep until the next
// deadline or a Notify.
func (e *Live) loop() {
	defer e.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		e.mu.Lock()
		if e.stopped {
			e.mu.Unlock()
			return
		}
		now := e.now()
		var due []event
		for e.queue.Len() > 0 && e.queue[0].at <= now {
			ev := heap.Pop(&e.queue).(event)
			m := e.machines[ev.id]
			if m.crashed.Load() {
				continue
			}
			if ev.kind == evStep && ev.gen != m.stepGen {
				continue // superseded by a Notify
			}
			due = append(due, ev)
		}
		var wait time.Duration = -1
		if len(due) == 0 && e.queue.Len() > 0 {
			wait = time.Duration(e.queue[0].at - now)
		}
		e.mu.Unlock()

		if len(due) > 0 {
			for _, ev := range due {
				e.dispatch(ev)
			}
			// Yield between drain rounds: on a saturated host a machine
			// hinting WakeNow in a loop would otherwise starve readers and
			// writers of the structures it is filling.
			runtime.Gosched()
			continue // hints may have queued immediate work
		}

		if wait < 0 {
			wait = time.Hour // everything parked: only a Notify can wake us
		}
		timer.Reset(wait)
		select {
		case <-e.halt:
			timer.Stop()
			return
		case <-e.kick:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
	}
}

// dispatch runs one due event's machine body and schedules its successor.
func (e *Live) dispatch(ev event) {
	m := e.machines[ev.id]
	m.stepMu.Lock()
	if m.crashed.Load() {
		m.stepMu.Unlock()
		return
	}
	now := e.now()
	switch ev.kind {
	case evStep:
		hint := m.m.Step(now)
		m.stepMu.Unlock()
		e.mu.Lock()
		if !e.stopped && !m.crashed.Load() && m.stepGen == ev.gen {
			switch hint.Kind {
			case WakeNow:
				e.push(event{at: now, kind: evStep, id: ev.id, gen: m.stepGen})
			case WakeAt:
				e.push(event{at: hint.At, kind: evStep, id: ev.id, gen: m.stepGen})
			case WakePark:
				// No successor entry: the machine sleeps until Notify.
			default:
				panic(fmt.Sprintf("engine: invalid wake hint %+v", hint))
			}
		}
		e.mu.Unlock()
	case evTimer:
		x := m.tm.OnTimer(now)
		m.stepMu.Unlock()
		if x > 0 {
			e.mu.Lock()
			if !e.stopped && !m.crashed.Load() {
				e.push(event{
					at:   now + int64(x)*int64(e.cfg.TimerUnit),
					kind: evTimer, id: ev.id,
				})
			}
			e.mu.Unlock()
		}
	}
}
