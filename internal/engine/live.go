//omegalint:allow simdet Live is the wall-clock engine by design: it reads real time, arms real timers and runs on its own goroutine; only the Sim engine carries the determinism obligation.

package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/vclock"
)

// LiveConfig parameterizes a live engine.
type LiveConfig struct {
	// TimerUnit converts TimerMachine timeout values into real durations;
	// default DefaultTimerUnit.
	TimerUnit time.Duration
	// InitialTimeout is the value every TimerMachine's timer is first set
	// to; default 1 (as in the simulator).
	InitialTimeout uint64
}

func (c *LiveConfig) normalize() {
	if c.TimerUnit <= 0 {
		c.TimerUnit = DefaultTimerUnit
	}
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 1
	}
}

// Live drives a set of machines on one scheduler goroutine with
// deadline-ordered stepping: machines sleep exactly until their earliest
// wake hint, a Notify wakes a machine immediately (a parked KV replica
// wakes on Put enqueue instead of at the next poll tick), and a machine
// hinting WakeNow is re-stepped back to back, so bursts drain at CPU
// speed. Time is vclock.Time nanoseconds since Start.
type Live struct {
	cfg   LiveConfig
	start time.Time

	mu       sync.Mutex
	machines []*liveMachine
	queue    eventQueue
	seq      uint64
	started  bool
	stopped  bool
	// due is the scheduler's reusable drain buffer: the loop pops every
	// ripe event into it each round, so the hot path never allocates.
	due []event

	kick chan struct{} // wakes the scheduler after a Notify
	halt chan struct{}
	wg   sync.WaitGroup
}

type liveMachine struct {
	m  Machine
	tm TimerMachine // nil when m has no timer task

	firstAt vclock.Time // first step deadline (ns since start)

	// stepMu serializes the machine's step/timer bodies against Crash:
	// after Crash returns, no step of the machine is in flight and none
	// will start.
	stepMu  sync.Mutex
	crashed atomic.Bool

	// stepGen, under Live.mu, invalidates superseded step entries in the
	// queue (a Notify bumps it so the stale future deadline is dropped
	// when popped). Parking needs no flag: a parked machine simply has no
	// live step entry, and Notify pushes one.
	stepGen uint64

	// hot and nudge elide the Notify slow path while the machine is
	// actively draining: hot is true from the moment the scheduler pops a
	// due step until the machine next sleeps (WakeAt) or parks, and nudge
	// is the notifier's flag that new work arrived meanwhile. Notify
	// stores nudge then loads hot; the dispatcher stores hot=false then
	// swaps nudge — the sequentially consistent store/load pairing
	// guarantees that either the notifier sees hot (the machine is still
	// running and will re-step), or the dispatcher sees nudge (and
	// schedules an immediate re-step instead of sleeping). Under commit
	// bursts this turns the per-write Notify from a mutex acquisition
	// into one atomic store and one load.
	hot   atomic.Bool
	nudge atomic.Bool
}

// event and eventQueue are shared by the live and virtual-time engines:
// both order (deadline, arrival) pairs, the only difference being whether
// at counts nanoseconds since Start or abstract ticks.
type evKind int

const (
	evStep evKind = iota + 1
	evTimer
)

type event struct {
	at   vclock.Time
	seq  uint64
	kind evKind
	id   int
	gen  uint64
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewLive builds a stopped live engine; Add machines, then Start.
func NewLive(cfg LiveConfig) *Live {
	cfg.normalize()
	return &Live{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		halt: make(chan struct{}),
	}
}

// AddOpt configures one machine added to a live engine.
type AddOpt func(*liveMachine)

// FirstStepAt sets the machine's first step deadline, in nanoseconds
// since Start (default 0: step as soon as the engine runs).
func FirstStepAt(at vclock.Time) AddOpt {
	return func(m *liveMachine) { m.firstAt = at }
}

// Add registers a machine and returns its id. If m implements
// TimerMachine its timer task is armed at InitialTimeout * TimerUnit.
// Add may only be called before Start.
func (e *Live) Add(m Machine, opts ...AddOpt) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("engine: Add after Start")
	}
	lm := &liveMachine{m: m}
	if tm, ok := m.(TimerMachine); ok {
		lm.tm = tm
	}
	for _, o := range opts {
		o(lm)
	}
	e.machines = append(e.machines, lm)
	return len(e.machines) - 1
}

// now returns nanoseconds since Start.
func (e *Live) now() vclock.Time { return int64(time.Since(e.start)) }

// Now returns the engine clock — nanoseconds since Start — for callers
// outside machine activations (a machine should use the time its Step
// was handed). Lease validity checks on read paths use this: leases are
// granted and judged against one clock, the engine's.
func (e *Live) Now() vclock.Time { return e.now() }

// Start launches the scheduler goroutine. It may be called once; a
// stopped engine cannot be restarted.
func (e *Live) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return fmt.Errorf("engine: already stopped")
	}
	if e.started {
		return fmt.Errorf("engine: already started")
	}
	e.started = true
	e.start = time.Now()
	for id, m := range e.machines {
		e.push(event{at: m.firstAt, kind: evStep, id: id, gen: m.stepGen})
		if m.tm != nil {
			e.push(event{
				at:   vclock.Time(e.cfg.InitialTimeout) * int64(e.cfg.TimerUnit),
				kind: evTimer, id: id,
			})
		}
	}
	e.wg.Add(1)
	go e.loop()
	return nil
}

// Stop halts the scheduler and joins it. After Stop returns no machine is
// stepping and none will step again. Idempotent.
func (e *Live) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.stopped = true
	started := e.started
	e.mu.Unlock()
	close(e.halt)
	if started {
		e.wg.Wait()
	}
}

// Crash permanently deschedules machine id. When Crash returns, no step or
// timer body of the machine is in flight and none will run again — the
// paper's crash-stop failure. Idempotent; out-of-range ids are a no-op
// (they already read as crashed).
func (e *Live) Crash(id int) {
	if id < 0 || id >= len(e.machines) {
		return
	}
	m := e.machines[id]
	m.crashed.Store(true)
	// Wait out any in-flight step: the dispatcher holds stepMu across the
	// body and re-checks crashed after acquiring it.
	m.stepMu.Lock()
	//lint:ignore SA2001 the critical section is the wait itself
	m.stepMu.Unlock()
}

// Crashed reports whether machine id has been crashed.
func (e *Live) Crashed(id int) bool {
	if id < 0 || id >= len(e.machines) {
		return true
	}
	return e.machines[id].crashed.Load()
}

// Notify wakes machine id immediately: a parked machine is re-scheduled,
// and a machine sleeping toward a poll deadline is pulled forward to now.
// Safe from any goroutine, including machine step bodies. Notifying a
// crashed or stopped engine's machine is a no-op.
func (e *Live) Notify(id int) {
	if id < 0 || id >= len(e.machines) {
		return
	}
	// Fast path: the machine is actively draining (popped and not yet
	// asleep). Flag the new work and return — the dispatcher re-checks
	// nudge before it lets the machine sleep or park, so the wake cannot
	// be lost (see the hot/nudge ordering contract on liveMachine).
	m := e.machines[id]
	m.nudge.Store(true)
	if m.hot.Load() {
		return
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if m.crashed.Load() {
		e.mu.Unlock()
		return
	}
	m.stepGen++ // invalidate the outstanding (later) step entry, if any
	if e.started {
		e.push(event{at: e.now(), kind: evStep, id: id, gen: m.stepGen})
	} else {
		// Before Start the initial entries have not been seeded yet; just
		// make the first step immediate.
		m.firstAt = 0
	}
	e.mu.Unlock()
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// push enqueues ev; caller holds e.mu. The sift-up is hand-rolled (not
// container/heap) so the scheduler's hot path never boxes an event into
// an interface allocation.
func (e *Live) push(ev event) {
	e.seq++
	ev.seq = e.seq
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.Less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

// popMin removes and returns the earliest event; caller holds e.mu and
// has checked the queue is non-empty. Allocation-free for the same
// reason as push.
func (e *Live) popMin() event {
	q := e.queue
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && q.Less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && q.Less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	e.queue = q
	return min
}

// loop is the scheduler: pop due events, dispatch, sleep until the next
// deadline or a Notify.
func (e *Live) loop() {
	defer e.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		e.mu.Lock()
		if e.stopped {
			e.mu.Unlock()
			return
		}
		now := e.now()
		due := e.due[:0]
		for e.queue.Len() > 0 && e.queue[0].at <= now {
			ev := e.popMin()
			m := e.machines[ev.id]
			if m.crashed.Load() {
				continue
			}
			if ev.kind == evStep && ev.gen != m.stepGen {
				continue // superseded by a Notify
			}
			if ev.kind == evStep {
				m.hot.Store(true) // Notify elides until the machine sleeps
			}
			due = append(due, ev)
		}
		e.due = due
		var wait time.Duration = -1
		if len(due) == 0 && e.queue.Len() > 0 {
			wait = time.Duration(e.queue[0].at - now)
		}
		e.mu.Unlock()

		if len(due) > 0 {
			for _, ev := range due {
				e.dispatch(ev)
			}
			// Yield between drain rounds: on a saturated host a machine
			// hinting WakeNow in a loop would otherwise starve readers and
			// writers of the structures it is filling.
			runtime.Gosched()
			continue // hints may have queued immediate work
		}

		if wait < 0 {
			wait = time.Hour // everything parked: only a Notify can wake us
		}
		timer.Reset(wait)
		select {
		case <-e.halt:
			timer.Stop()
			return
		case <-e.kick:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
	}
}

// dispatch runs one due event's machine body and schedules its successor.
func (e *Live) dispatch(ev event) {
	m := e.machines[ev.id]
	m.stepMu.Lock()
	if m.crashed.Load() {
		m.stepMu.Unlock()
		return
	}
	now := e.now()
	switch ev.kind {
	case evStep:
		hint := m.m.Step(now)
		m.stepMu.Unlock()
		e.mu.Lock()
		if !e.stopped && !m.crashed.Load() && m.stepGen == ev.gen {
			switch hint.Kind {
			case WakeNow:
				// Still draining: hot stays set and any nudge is consumed
				// by the immediate re-step, which observes the new work.
				m.nudge.Store(false)
				e.push(event{at: now, kind: evStep, id: ev.id, gen: m.stepGen})
			case WakeAt, WakePark:
				// About to sleep: drop hot first, then re-check nudge. A
				// Notify that raced past the mutex saw hot and only set
				// nudge — honor it now with an immediate re-step, exactly
				// what its slow path would have scheduled.
				m.hot.Store(false)
				if m.nudge.Swap(false) {
					m.stepGen++
					m.hot.Store(true)
					e.push(event{at: now, kind: evStep, id: ev.id, gen: m.stepGen})
				} else if hint.Kind == WakeAt {
					e.push(event{at: hint.At, kind: evStep, id: ev.id, gen: m.stepGen})
				}
			default:
				panic(fmt.Sprintf("engine: invalid wake hint %+v", hint))
			}
		} else {
			// Superseded (a Notify's fresher entry owns the wake-up) or
			// crashed/stopped: this dispatch no longer controls the
			// machine's sleep state.
			m.hot.Store(false)
		}
		e.mu.Unlock()
	case evTimer:
		x := m.tm.OnTimer(now)
		m.stepMu.Unlock()
		if x > 0 {
			e.mu.Lock()
			if !e.stopped && !m.crashed.Load() {
				e.push(event{
					at:   now + int64(x)*int64(e.cfg.TimerUnit),
					kind: evTimer, id: ev.id,
				})
			}
			e.mu.Unlock()
		}
	}
}
