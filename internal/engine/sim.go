package engine

import (
	"container/heap"
	"fmt"
	"math/rand"

	"omegasm/internal/vclock"
)

// SimConfig parameterizes one deterministic virtual-time run.
type SimConfig struct {
	// Seed drives the run's single randomness source; identical seeds (and
	// identical machine sets) produce identical runs.
	Seed int64
	// Horizon ends the run: events scheduled after it never execute.
	Horizon vclock.Time
}

// Sim is the virtual-time engine: an event queue over abstract ticks,
// single-threaded, with the seeded per-machine Pacing adversary choosing
// the interleaving and crash schedules descheduling machines permanently.
// All machine steps happen on the goroutine that calls Run, so registers
// shared by the machines are linearized in event order and a run is an
// exactly reproducible function of (seed, machines, schedules).
type Sim struct {
	cfg   SimConfig
	rng   *rand.Rand
	now   vclock.Time
	queue eventQueue // the event heap shared with the live engine
	seq   uint64
	slots []*simSlot

	running bool
	stopped bool
}

type simSlot struct {
	m  Machine
	tm TimerMachine

	pacing         Pacing
	timer          vclock.Behavior
	initialTimeout uint64
	firstAt        vclock.Time // -1: draw from pacing
	crashAt        vclock.Time // -1: never

	crashed   bool
	crashTime vclock.Time
	gen       uint64
	steps     uint64
	firings   uint64
}

// NewSim validates cfg and builds an empty simulation.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("engine: horizon must be positive, got %d", cfg.Horizon)
	}
	s := &Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	heap.Init(&s.queue)
	return s, nil
}

// SimOpt configures one machine added to a simulation.
type SimOpt func(*simSlot)

// WithPacing sets the machine's step adversary (default Uniform{1, 8}).
func WithPacing(p Pacing) SimOpt {
	return func(sl *simSlot) {
		if p != nil {
			sl.pacing = p
		}
	}
}

// WithTimer arms the machine's T3 timer under behavior b, first set to
// the initial timeout value. The machine must implement TimerMachine.
func WithTimer(b vclock.Behavior, initial uint64) SimOpt {
	return func(sl *simSlot) {
		sl.timer = b
		sl.initialTimeout = initial
	}
}

// WithCrashAt schedules a permanent crash: the first event of the machine
// at or after t collects it instead of executing, exactly the lazy
// crash-stop semantics the scheduler always had.
func WithCrashAt(t vclock.Time) SimOpt {
	return func(sl *simSlot) { sl.crashAt = t }
}

// WithFirstWakeAt pins the machine's first step to time t instead of a
// pacing draw (used for fixed-cadence observers like the sampler).
func WithFirstWakeAt(t vclock.Time) SimOpt {
	return func(sl *simSlot) { sl.firstAt = t }
}

// Add registers a machine, seeds its first step (and timer, if armed) and
// returns its id. The seeding draws from the run's rng in Add order, so
// callers control the deterministic schedule by adding machines in a
// fixed order. Add may be called before Run only.
func (s *Sim) Add(m Machine, opts ...SimOpt) int {
	if s.running {
		panic("engine: Add during Run")
	}
	sl := &simSlot{
		m:              m,
		pacing:         uniformPacing{min: 1, max: 8},
		initialTimeout: 1,
		firstAt:        -1,
		crashAt:        -1,
	}
	if tm, ok := m.(TimerMachine); ok {
		sl.tm = tm
	}
	for _, o := range opts {
		o(sl)
	}
	s.slots = append(s.slots, sl)
	id := len(s.slots) - 1
	first := sl.firstAt
	if first < 0 {
		first = s.stepDelay(sl)
	}
	s.push(event{at: first, kind: evStep, id: id, gen: sl.gen})
	if sl.timer != nil && sl.tm != nil {
		s.push(event{at: sl.timer.Expire(0, sl.initialTimeout), kind: evTimer, id: id})
	}
	return id
}

func (s *Sim) push(ev event) {
	s.seq++
	ev.seq = s.seq
	heap.Push(&s.queue, ev)
}

// stepDelay draws the machine's next inter-step delay from its pacing,
// floored at one tick.
func (s *Sim) stepDelay(sl *simSlot) vclock.Duration {
	d := sl.pacing.Next(s.rng, s.now)
	if d < 1 {
		d = 1
	}
	return d
}

// Now returns the current virtual time.
func (s *Sim) Now() vclock.Time { return s.now }

// Rng exposes the run's seeded randomness source (for hooks that perturb
// the run deterministically).
func (s *Sim) Rng() *rand.Rand { return s.rng }

// Stop ends the run after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Crashed reports whether machine id has been collected by its crash
// schedule, or is due: a parked machine past its crash time is dead even
// though no event has collected it yet.
func (s *Sim) Crashed(id int) bool {
	sl := s.slots[id]
	return sl.crashed || (sl.crashAt >= 0 && s.now >= sl.crashAt)
}

// CrashTime returns machine id's crash time, or -1 if it has not crashed
// (a due-but-uncollected machine reports its scheduled crash time).
func (s *Sim) CrashTime(id int) vclock.Time {
	sl := s.slots[id]
	if sl.crashed {
		return sl.crashTime
	}
	if sl.crashAt >= 0 && s.now >= sl.crashAt {
		return sl.crashAt
	}
	return -1
}

// Steps returns how many Step calls machine id has executed.
func (s *Sim) Steps(id int) uint64 { return s.slots[id].steps }

// TimerFirings returns how many OnTimer calls machine id has executed.
func (s *Sim) TimerFirings(id int) uint64 { return s.slots[id].firings }

// Notify wakes machine id at the next tick, superseding any later pending
// step. Deterministic: it may only be called from machine bodies running
// inside Run (or before Run). Notifying a crashed machine is a strict
// no-op — including a parked machine whose crash time has passed but that
// no event has collected yet: such a machine is dead, so the notify
// collects it instead of waking it, and neither bumps its generation nor
// consumes an event sequence number (which would perturb same-time
// tie-breaks elsewhere in the run).
func (s *Sim) Notify(id int) {
	sl := s.slots[id]
	if sl.crashAt >= 0 && s.now+1 >= sl.crashAt {
		if !sl.crashed {
			sl.crashed = true
			sl.crashTime = sl.crashAt
		}
		return
	}
	if sl.crashed {
		return
	}
	sl.gen++
	s.push(event{at: s.now + 1, kind: evStep, id: id, gen: sl.gen})
}

// Run executes the simulation until the horizon, queue exhaustion or an
// early Stop, and returns the end time.
func (s *Sim) Run() vclock.Time {
	s.running = true
	for s.queue.Len() > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(event)
		if e.at > s.cfg.Horizon {
			break
		}
		s.now = e.at
		sl := s.slots[e.id]
		if sl.crashed {
			continue
		}
		if sl.crashAt >= 0 && e.at >= sl.crashAt {
			sl.crashed = true
			sl.crashTime = sl.crashAt
			continue
		}
		if e.kind == evStep {
			if e.gen != sl.gen {
				continue // superseded by a Notify
			}
			hint := sl.m.Step(s.now)
			sl.steps++
			switch hint.Kind {
			case WakeNow:
				s.push(event{at: s.now + s.stepDelay(sl), kind: evStep, id: e.id, gen: sl.gen})
			case WakeAt:
				at := hint.At
				if at <= s.now {
					at = s.now + 1
				}
				s.push(event{at: at, kind: evStep, id: e.id, gen: sl.gen})
			case WakePark:
				// No successor event: the machine sleeps until Notify.
			default:
				panic(fmt.Sprintf("engine: invalid wake hint %+v", hint))
			}
		} else {
			x := sl.tm.OnTimer(s.now)
			sl.firings++
			if x > 0 {
				d := sl.timer.Expire(s.now, x)
				if d < 1 {
					d = 1
				}
				s.push(event{at: s.now + d, kind: evTimer, id: e.id})
			}
		}
	}
	s.running = false
	return s.now
}
