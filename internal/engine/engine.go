// Package engine is the single execution layer under every way this
// module drives the paper's state machines. It defines one Machine
// contract — a step function plus a *wake hint* telling the engine when
// the machine next needs CPU — and two engines behind it:
//
//   - Live (live.go): deadline-ordered, notification-driven stepping on
//     real goroutines. It subsumes both the per-node ticker goroutines the
//     old internal/rt runtime used and the blind polling loop the old
//     consensus.Drive used: a parked machine wakes the moment work is
//     enqueued for it (Notify) instead of at the next tick, and a machine
//     reporting pending work is re-stepped immediately, so bursts drain at
//     CPU speed while idle machines cost one wakeup per poll interval.
//
//   - Sim (sim.go): a deterministic virtual-time engine. The seeded
//     adversary (per-machine Pacing) chooses the interleaving, crash
//     schedules deschedule machines permanently, and all steps serialize
//     on the caller's goroutine, so a run is an exactly reproducible
//     function of its seed. It subsumes the event loop of sched.World and
//     additionally hosts the consensus/KV machines, which the old World
//     only co-scheduled as untyped auxiliaries.
//
// Mapping to the paper's model: a Machine's Step is one iteration of task
// T2's infinite loop, and a TimerMachine's OnTimer is the body of task T3
// (the engine re-arms the timer to the returned value, paper line 27).
// The wake hint is scheduling metadata only — it never changes what a
// step does, so safety arguments about the state machines are untouched;
// it only decides when the next T2 iteration is granted, which both the
// asynchronous model and the AWB assumption leave to the scheduler.
package engine

import (
	"math/rand"

	"omegasm/internal/vclock"
)

// HintKind classifies a Machine's wake hint.
type HintKind int

const (
	// WakeNow: the machine has pending work; step it again as soon as
	// possible (live: immediately; sim: after the adversary's pacing delay).
	WakeNow HintKind = iota + 1
	// WakeAt: the machine is idle until the given time; step it then
	// (its poll deadline).
	WakeAt
	// WakePark: the machine has nothing to do and no deadline; do not step
	// it again until Notify.
	WakePark
)

// Hint is a Machine's answer to "when do you next need to run?".
type Hint struct {
	// Kind selects between WakeNow, WakeAt and WakePark.
	Kind HintKind
	// At is the wake deadline, valid when Kind == WakeAt. Live engines
	// interpret it as nanoseconds since engine start; the sim as a virtual
	// tick.
	At vclock.Time
}

// Now hints that the machine has pending work and wants the next step as
// soon as the engine can grant it.
func Now() Hint { return Hint{Kind: WakeNow} }

// At hints that the machine is idle until time t.
func At(t vclock.Time) Hint { return Hint{Kind: WakeAt, At: t} }

// Park hints that the machine should not be stepped again until Notify.
func Park() Hint { return Hint{Kind: WakePark} }

// Machine is one drivable state machine: a consensus replica, a KV store,
// an election process's main loop. Step runs one iteration at time now
// and returns the machine's wake hint.
type Machine interface {
	// Step runs one iteration at time now and returns the wake hint.
	Step(now vclock.Time) Hint
}

// TimerMachine is a Machine with the paper's task T3: a timer the engine
// arms for it. OnTimer runs the expiry handler and returns the next
// timeout value x; the engine re-arms the timer to expire after the
// machine's timer behavior maps x to a duration (live: x * TimerUnit).
// Returning 0 disarms the timer permanently (the timer-free variant).
type TimerMachine interface {
	Machine
	// OnTimer runs the expiry handler at time now and returns the next
	// abstract timeout value (0 disarms the timer permanently).
	OnTimer(now vclock.Time) (next uint64)
}

// MachineFunc adapts a function to Machine.
type MachineFunc func(now vclock.Time) Hint

// Step implements Machine.
func (f MachineFunc) Step(now vclock.Time) Hint { return f(now) }

// Pacing generates the inter-step delays of one simulated machine — the
// adversary of the asynchronous model. It is structurally identical to
// sched.Pacing, so every pacing the experiment layer defines plugs in
// unchanged.
type Pacing interface {
	// Next returns the delay before the machine's next step, >= 1 tick.
	Next(rng *rand.Rand, now vclock.Time) vclock.Duration
}

// uniformPacing is the default sim pacing (matches sched.Uniform{1, 8}).
type uniformPacing struct{ min, max vclock.Duration }

func (u uniformPacing) Next(rng *rand.Rand, _ vclock.Time) vclock.Duration {
	return u.min + rng.Int63n(u.max-u.min+1)
}
