package engine

import (
	"reflect"
	"testing"

	"omegasm/internal/vclock"
)

// simRecorder records step/timer times.
type simRecorder struct {
	stepTimes []vclock.Time
	fireTimes []vclock.Time
	hint      func(now vclock.Time) Hint
	next      uint64
}

func (r *simRecorder) Step(now vclock.Time) Hint {
	r.stepTimes = append(r.stepTimes, now)
	if r.hint != nil {
		return r.hint(now)
	}
	return Now()
}

func (r *simRecorder) OnTimer(now vclock.Time) uint64 {
	r.fireTimes = append(r.fireTimes, now)
	return r.next
}

func TestSimValidation(t *testing.T) {
	if _, err := NewSim(SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func(seed int64) []vclock.Time {
		s, err := NewSim(SimConfig{Seed: seed, Horizon: 5000})
		if err != nil {
			t.Fatal(err)
		}
		r := &simRecorder{next: 1}
		s.Add(r, WithTimer(vclock.Exact{Scale: 4, Floor: 1}, 1))
		s.Add(&simRecorder{next: 1}, WithTimer(vclock.Exact{Scale: 4, Floor: 1}, 1))
		s.Run()
		return r.stepTimes
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, run(43)) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestSimCrashSchedule(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	r := &simRecorder{next: 1}
	id := s.Add(r, WithCrashAt(2_000), WithTimer(vclock.Exact{Scale: 4}, 1))
	s.Run()
	if !s.Crashed(id) {
		t.Fatal("machine did not crash")
	}
	if s.CrashTime(id) != 2_000 {
		t.Fatalf("CrashTime = %d", s.CrashTime(id))
	}
	for _, ts := range append(r.stepTimes, r.fireTimes...) {
		if ts >= 2_000 {
			t.Fatalf("crashed machine ran at t=%d", ts)
		}
	}
}

func TestSimWakeAtAndPark(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed-cadence machine: wakes exactly every 100 ticks.
	cadence := &simRecorder{}
	cadence.hint = func(now vclock.Time) Hint { return At(now + 100) }
	s.Add(cadence, WithFirstWakeAt(100))
	// A parked machine: steps once, then parks forever.
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	s.Add(parked, WithFirstWakeAt(1))
	s.Run()
	if len(cadence.stepTimes) != 10 {
		t.Fatalf("cadence machine stepped %d times, want 10: %v", len(cadence.stepTimes), cadence.stepTimes)
	}
	for i, ts := range cadence.stepTimes {
		if ts != vclock.Time(100*(i+1)) {
			t.Fatalf("cadence step %d at t=%d", i, ts)
		}
	}
	if len(parked.stepTimes) != 1 {
		t.Fatalf("parked machine stepped %d times, want 1", len(parked.stepTimes))
	}
}

func TestSimNotifyWakesParked(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	parkedID := s.Add(parked, WithFirstWakeAt(1))
	// A poker machine notifies the parked one at t=500.
	poker := &simRecorder{}
	poker.hint = func(now vclock.Time) Hint {
		s.Notify(parkedID)
		return Park()
	}
	s.Add(poker, WithFirstWakeAt(500))
	s.Run()
	if len(parked.stepTimes) != 2 {
		t.Fatalf("parked machine stepped %d times, want 2 (initial + notified)", len(parked.stepTimes))
	}
	if got := parked.stepTimes[1]; got != 501 {
		t.Errorf("notified wake at t=%d, want 501", got)
	}
}

func TestSimNotifyAfterCrashIsNoOp(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	// A machine that parks immediately: after its crash time passes, no
	// event is left to collect it — it is dead but uncollected.
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	parkedID := s.Add(parked, WithFirstWakeAt(1), WithCrashAt(200))
	// A poker notifies it at t=500, well after the crash time.
	poker := &simRecorder{}
	poker.hint = func(now vclock.Time) Hint {
		s.Notify(parkedID)
		return Park()
	}
	s.Add(poker, WithFirstWakeAt(500))
	s.Run()
	if len(parked.stepTimes) != 1 {
		t.Fatalf("dead machine stepped %d times, want 1 (notify after crash must be a no-op)",
			len(parked.stepTimes))
	}
	if !s.Crashed(parkedID) {
		t.Fatal("dead-but-parked machine not reported crashed")
	}
	if got := s.CrashTime(parkedID); got != 200 {
		t.Fatalf("CrashTime = %d, want 200", got)
	}
}

func TestSimCrashedReportsDueParkedMachine(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	parkedID := s.Add(parked, WithFirstWakeAt(1), WithCrashAt(200))
	var during, timeAt []bool
	probe := &simRecorder{}
	probe.hint = func(now vclock.Time) Hint {
		during = append(during, s.Crashed(parkedID))
		timeAt = append(timeAt, s.CrashTime(parkedID) == 200)
		return Park()
	}
	s.Add(probe, WithFirstWakeAt(100))
	probe2 := &simRecorder{}
	probe2.hint = func(now vclock.Time) Hint {
		during = append(during, s.Crashed(parkedID))
		timeAt = append(timeAt, s.CrashTime(parkedID) == 200)
		return Park()
	}
	s.Add(probe2, WithFirstWakeAt(900))
	s.Run()
	if len(during) != 2 {
		t.Fatalf("probes ran %d times, want 2", len(during))
	}
	if during[0] {
		t.Error("machine reported crashed before its crash time")
	}
	if !during[1] || !timeAt[1] {
		t.Error("parked machine past its crash time must report crashed with its scheduled time")
	}
}

func TestSimNotifyAfterCrashPreservesTieBreaks(t *testing.T) {
	// A spurious gen-bump/event from notifying a dead machine would
	// consume a sequence number and perturb same-time tie-breaks. Run the
	// same live machines with and without a dead bystander being notified;
	// the live schedule must be identical.
	run := func(withDead bool) []vclock.Time {
		s, err := NewSim(SimConfig{Seed: 7, Horizon: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		dead := &simRecorder{}
		dead.hint = func(vclock.Time) Hint { return Park() }
		deadID := s.Add(dead, WithFirstWakeAt(1), WithCrashAt(100))
		live := &simRecorder{next: 1}
		s.Add(live, WithTimer(vclock.Exact{Scale: 4, Floor: 1}, 1))
		poker := &simRecorder{}
		poker.hint = func(now vclock.Time) Hint {
			if withDead {
				s.Notify(deadID)
			}
			return At(now + 50)
		}
		s.Add(poker, WithFirstWakeAt(200))
		s.Run()
		return live.stepTimes
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("notifying a dead machine perturbed the live schedule")
	}
}

func TestSimStopEndsRun(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	m := &simRecorder{}
	m.hint = func(now vclock.Time) Hint {
		if now >= 1_000 {
			s.Stop()
		}
		return Now()
	}
	s.Add(m)
	end := s.Run()
	if end > 2_000 {
		t.Fatalf("Stop ignored: run ended at %d", end)
	}
}
