package engine

import (
	"reflect"
	"testing"

	"omegasm/internal/vclock"
)

// simRecorder records step/timer times.
type simRecorder struct {
	stepTimes []vclock.Time
	fireTimes []vclock.Time
	hint      func(now vclock.Time) Hint
	next      uint64
}

func (r *simRecorder) Step(now vclock.Time) Hint {
	r.stepTimes = append(r.stepTimes, now)
	if r.hint != nil {
		return r.hint(now)
	}
	return Now()
}

func (r *simRecorder) OnTimer(now vclock.Time) uint64 {
	r.fireTimes = append(r.fireTimes, now)
	return r.next
}

func TestSimValidation(t *testing.T) {
	if _, err := NewSim(SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func(seed int64) []vclock.Time {
		s, err := NewSim(SimConfig{Seed: seed, Horizon: 5000})
		if err != nil {
			t.Fatal(err)
		}
		r := &simRecorder{next: 1}
		s.Add(r, WithTimer(vclock.Exact{Scale: 4, Floor: 1}, 1))
		s.Add(&simRecorder{next: 1}, WithTimer(vclock.Exact{Scale: 4, Floor: 1}, 1))
		s.Run()
		return r.stepTimes
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, run(43)) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestSimCrashSchedule(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	r := &simRecorder{next: 1}
	id := s.Add(r, WithCrashAt(2_000), WithTimer(vclock.Exact{Scale: 4}, 1))
	s.Run()
	if !s.Crashed(id) {
		t.Fatal("machine did not crash")
	}
	if s.CrashTime(id) != 2_000 {
		t.Fatalf("CrashTime = %d", s.CrashTime(id))
	}
	for _, ts := range append(r.stepTimes, r.fireTimes...) {
		if ts >= 2_000 {
			t.Fatalf("crashed machine ran at t=%d", ts)
		}
	}
}

func TestSimWakeAtAndPark(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed-cadence machine: wakes exactly every 100 ticks.
	cadence := &simRecorder{}
	cadence.hint = func(now vclock.Time) Hint { return At(now + 100) }
	s.Add(cadence, WithFirstWakeAt(100))
	// A parked machine: steps once, then parks forever.
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	s.Add(parked, WithFirstWakeAt(1))
	s.Run()
	if len(cadence.stepTimes) != 10 {
		t.Fatalf("cadence machine stepped %d times, want 10: %v", len(cadence.stepTimes), cadence.stepTimes)
	}
	for i, ts := range cadence.stepTimes {
		if ts != vclock.Time(100*(i+1)) {
			t.Fatalf("cadence step %d at t=%d", i, ts)
		}
	}
	if len(parked.stepTimes) != 1 {
		t.Fatalf("parked machine stepped %d times, want 1", len(parked.stepTimes))
	}
}

func TestSimNotifyWakesParked(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	parked := &simRecorder{}
	parked.hint = func(vclock.Time) Hint { return Park() }
	parkedID := s.Add(parked, WithFirstWakeAt(1))
	// A poker machine notifies the parked one at t=500.
	poker := &simRecorder{}
	poker.hint = func(now vclock.Time) Hint {
		s.Notify(parkedID)
		return Park()
	}
	s.Add(poker, WithFirstWakeAt(500))
	s.Run()
	if len(parked.stepTimes) != 2 {
		t.Fatalf("parked machine stepped %d times, want 2 (initial + notified)", len(parked.stepTimes))
	}
	if got := parked.stepTimes[1]; got != 501 {
		t.Errorf("notified wake at t=%d, want 501", got)
	}
}

func TestSimStopEndsRun(t *testing.T) {
	s, err := NewSim(SimConfig{Seed: 1, Horizon: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	m := &simRecorder{}
	m.hint = func(now vclock.Time) Hint {
		if now >= 1_000 {
			s.Stop()
		}
		return Now()
	}
	s.Add(m)
	end := s.Run()
	if end > 2_000 {
		t.Fatalf("Stop ignored: run ended at %d", end)
	}
}
