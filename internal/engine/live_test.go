package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"omegasm/internal/vclock"
)

// stepRecorder counts steps and returns a configurable hint.
type stepRecorder struct {
	steps atomic.Int64
	hint  func(now vclock.Time, steps int64) Hint
}

func (r *stepRecorder) Step(now vclock.Time) Hint {
	n := r.steps.Add(1)
	return r.hint(now, n)
}

func TestLiveParkAndNotify(t *testing.T) {
	woken := make(chan vclock.Time, 16)
	m := &stepRecorder{hint: func(now vclock.Time, steps int64) Hint {
		woken <- now
		return Park()
	}}
	e := NewLive(LiveConfig{})
	id := e.Add(m)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// The initial step (FirstStepAt 0) runs promptly, then the machine is
	// parked: no further steps without a Notify.
	select {
	case <-woken:
	case <-time.After(2 * time.Second):
		t.Fatal("initial step never ran")
	}
	time.Sleep(20 * time.Millisecond)
	if got := m.steps.Load(); got != 1 {
		t.Fatalf("parked machine stepped %d times, want 1", got)
	}
	// A Notify wakes it promptly — far faster than any polling interval.
	start := time.Now()
	e.Notify(id)
	select {
	case <-woken:
	case <-time.After(2 * time.Second):
		t.Fatal("Notify did not wake the parked machine")
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("wakeup took %v", waited)
	}
}

func TestLiveWakeNowDrainsBursts(t *testing.T) {
	const burst = 1000
	done := make(chan struct{})
	m := &stepRecorder{}
	m.hint = func(now vclock.Time, steps int64) Hint {
		if steps == burst {
			close(done)
		}
		if steps < burst {
			return Now()
		}
		return Park()
	}
	e := NewLive(LiveConfig{})
	e.Add(m)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// 1000 back-to-back steps must complete far faster than 1000 polling
	// intervals (200ms at the default cadence) would allow.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("burst did not drain: %d steps", m.steps.Load())
	}
}

func TestLiveDeadlineOrderedPolling(t *testing.T) {
	interval := 5 * time.Millisecond
	m := &stepRecorder{hint: func(now vclock.Time, steps int64) Hint {
		return At(now + int64(interval))
	}}
	e := NewLive(LiveConfig{})
	e.Add(m)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	e.Stop()
	got := m.steps.Load()
	// ~20 deadlines in the window; a blind busy loop would run thousands.
	if got < 5 || got > 60 {
		t.Errorf("steps = %d, want a deadline-paced count (~20)", got)
	}
}

// timerProc parks its step task and counts timer firings.
type timerProc struct {
	fired atomic.Int64
	next  uint64
}

func (p *timerProc) Step(vclock.Time) Hint { return Park() }
func (p *timerProc) OnTimer(vclock.Time) uint64 {
	p.fired.Add(1)
	return p.next
}

func TestLiveTimerRearmAndDisarm(t *testing.T) {
	p := &timerProc{next: 1}
	e := NewLive(LiveConfig{TimerUnit: time.Millisecond})
	e.Add(p)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	e.Stop()
	if got := p.fired.Load(); got < 3 {
		t.Errorf("timer fired %d times, want repeated re-arming", got)
	}

	// next = 0 disarms after the first firing.
	p2 := &timerProc{next: 0}
	e2 := NewLive(LiveConfig{TimerUnit: time.Millisecond})
	e2.Add(p2)
	if err := e2.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	e2.Stop()
	if got := p2.fired.Load(); got != 1 {
		t.Errorf("disarmed timer fired %d times, want exactly 1", got)
	}
}

func TestLiveCrashStopsMachine(t *testing.T) {
	m := &stepRecorder{hint: func(now vclock.Time, _ int64) Hint {
		return At(now + int64(time.Millisecond))
	}}
	e := NewLive(LiveConfig{})
	id := e.Add(m)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	time.Sleep(10 * time.Millisecond)
	e.Crash(id)
	after := m.steps.Load()
	if !e.Crashed(id) {
		t.Fatal("Crashed() false after Crash")
	}
	time.Sleep(20 * time.Millisecond)
	if got := m.steps.Load(); got != after {
		t.Errorf("crashed machine stepped %d more times", got-after)
	}
	// Notify on a crashed machine is a no-op.
	e.Notify(id)
	time.Sleep(10 * time.Millisecond)
	if got := m.steps.Load(); got != after {
		t.Errorf("notified crashed machine stepped")
	}
}

func TestLiveStopIdempotentAndOutOfRange(t *testing.T) {
	e := NewLive(LiveConfig{})
	e.Add(&stepRecorder{hint: func(vclock.Time, int64) Hint { return Park() }})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Error("second Start accepted")
	}
	e.Stop()
	e.Stop()
	if !e.Crashed(99) {
		t.Error("out-of-range machine must read as crashed")
	}
	e.Notify(99) // must not panic
}
