package engine

import "time"

// The module-wide pacing defaults. Every layer that needs a default
// cadence — the live runtime's normalize, the consensus.Drive shim, the
// public substrate pacing in options/substrate.go, the fleet's view
// refresher — reads these constants, so the live engine and the public
// options cannot drift apart.
const (
	// DefaultStepInterval is the idle poll cadence of a live machine on
	// atomic shared memory: the pause between T2 iterations when nothing
	// has notified the machine earlier.
	DefaultStepInterval = 200 * time.Microsecond
	// DefaultTimerUnit converts the algorithms' abstract timeout values
	// into real durations on atomic shared memory.
	DefaultTimerUnit = 2 * time.Millisecond

	// DefaultSANStepInterval and DefaultSANTimerUnit are the equivalents
	// over the SAN substrate, where every register access is quorum disk
	// I/O: pacing faster than the medium just queues suspicion.
	DefaultSANStepInterval = 2 * time.Millisecond
	DefaultSANTimerUnit    = 25 * time.Millisecond
)
