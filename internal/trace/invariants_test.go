package trace

import (
	"strings"
	"testing"

	"omegasm/internal/sched"
)

func feed(c *InvariantChecker, t int64, leaders ...int) {
	c.OnSample(nil, sched.Sample{T: t, Leaders: leaders})
}

func TestInvariantCheckerCleanRun(t *testing.T) {
	c := NewInvariantChecker(3)
	feed(c, 10, 0, 0, 1)
	feed(c, 20, 0, 0, 0)
	feed(c, 30, 0, 0, -1) // crash is fine
	feed(c, 40, 0, 0, -1)
	if !c.OK() {
		t.Fatalf("clean run flagged: %v", c.Violations())
	}
}

func TestInvariantCheckerValidity(t *testing.T) {
	c := NewInvariantChecker(3)
	feed(c, 10, 0, 7, 1) // 7 out of range
	if c.OK() {
		t.Fatal("out-of-range leader not flagged")
	}
	if !strings.Contains(c.Violations()[0], "out-of-range") {
		t.Errorf("violation = %q", c.Violations()[0])
	}
}

func TestInvariantCheckerResurrection(t *testing.T) {
	c := NewInvariantChecker(2)
	feed(c, 10, 0, -1)
	feed(c, 20, 0, 1) // process 1 came back from the dead
	if c.OK() {
		t.Fatal("resurrection not flagged")
	}
}

func TestInvariantCheckerTimeMonotone(t *testing.T) {
	c := NewInvariantChecker(2)
	feed(c, 20, 0, 0)
	feed(c, 10, 0, 0)
	if c.OK() {
		t.Fatal("backwards time not flagged")
	}
}

func TestInvariantCheckerWidth(t *testing.T) {
	c := NewInvariantChecker(3)
	feed(c, 10, 0, 0)
	if c.OK() {
		t.Fatal("narrow sample not flagged")
	}
}

func TestInvariantCheckerViolationCap(t *testing.T) {
	c := NewInvariantChecker(2)
	for i := 0; i < 100; i++ {
		feed(c, int64(10+i), 5, 5)
	}
	if got := len(c.Violations()); got > 32 {
		t.Fatalf("violation log grew to %d", got)
	}
}
