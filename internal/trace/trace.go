// Package trace analyzes runs: it detects stabilization of the leader
// oracle and turns the paper's theorems into checkable verdicts over the
// shared-memory census.
//
// Mapping from paper claims to verdicts:
//
//   - Eventual Leadership (Section 2.2): Stabilization finds the earliest
//     time from which every non-crashed process reports the same, correct
//     leader until the end of the run.
//   - Theorem 3 (write efficiency of Algorithm 1): after stabilization the
//     writer set is exactly {leader} and the only register still written
//     is PROGRESS[leader].
//   - Theorem 2 / Theorem 6 (boundedness): after stabilization no register
//     value changes except PROGRESS[leader] (Algorithm 1) / none grows at
//     all (Algorithm 2 — booleans flip but stay in a 1-bit domain).
//   - Lemma 5 / Lemma 6: the leader keeps writing, every other correct
//     process keeps reading, in every suffix window.
//   - Corollary 1: with bounded memory, every correct process keeps
//     writing.
package trace

import (
	"fmt"
	"strings"

	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Stabilization scans the samples of a run and returns the earliest time
// from which (a) every non-crashed process reports the same leader L,
// (b) L did not crash in the run, and (c) this remains true through the
// last sample. ok is false if the run never stabilizes.
func Stabilization(samples []sched.Sample, crashed []bool) (t vclock.Time, leader int, ok bool) {
	if len(samples) == 0 {
		return 0, -1, false
	}
	// Walk backwards: find the longest suffix with a constant, common,
	// correct leader.
	last := samples[len(samples)-1]
	leader = commonLeader(last, crashed)
	if leader < 0 || crashed[leader] {
		return 0, -1, false
	}
	stabIdx := len(samples) - 1
	for i := len(samples) - 2; i >= 0; i-- {
		if commonLeader(samples[i], crashed) != leader {
			break
		}
		stabIdx = i
	}
	return samples[stabIdx].T, leader, true
}

// commonLeader returns the common leader estimate of all processes that
// are alive in the sample (and never crash later per crashed), or -1 if
// they disagree. Processes that crash later in the run are ignored: the
// oracle only constrains correct processes.
func commonLeader(s sched.Sample, crashed []bool) int {
	leader := -2
	for p, l := range s.Leaders {
		if l == -1 || crashed[p] {
			continue // crashed (now or eventually): unconstrained
		}
		if leader == -2 {
			leader = l
		} else if leader != l {
			return -1
		}
	}
	if leader == -2 {
		return -1
	}
	return leader
}

// LeaderChangesAfter counts, over all processes, the sample-to-sample
// leader-estimate changes at or after time t. A run that stabilized has 0;
// the Figure 4 strawman keeps accumulating them forever.
func LeaderChangesAfter(samples []sched.Sample, t vclock.Time) int {
	changes := 0
	var prev []int
	for _, s := range samples {
		// prev tracks the estimates of the last sample strictly before
		// the current one, even outside the window, so a change landing
		// on the first in-window sample is counted.
		if prev != nil && s.T >= t {
			for p := range s.Leaders {
				if s.Leaders[p] != -1 && prev[p] != -1 && s.Leaders[p] != prev[p] {
					changes++
				}
			}
		}
		prev = s.Leaders
	}
	return changes
}

// Verdict is the outcome of checking one paper claim on one run.
type Verdict struct {
	Claim  string
	OK     bool
	Detail string
}

func (v Verdict) String() string {
	status := "PASS"
	if !v.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%-4s %-34s %s", status, v.Claim, v.Detail)
}

// Report is a set of verdicts for one run.
type Report struct {
	Verdicts []Verdict
}

// Add appends a verdict.
func (r *Report) Add(claim string, ok bool, detail string) {
	r.Verdicts = append(r.Verdicts, Verdict{Claim: claim, OK: ok, Detail: detail})
}

// AllOK reports whether every verdict passed.
func (r *Report) AllOK() bool {
	for _, v := range r.Verdicts {
		if !v.OK {
			return false
		}
	}
	return true
}

func (r *Report) String() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckEventualLeadership adds the Validity + Eventual Leadership verdict
// for a run and returns the stabilization point.
func CheckEventualLeadership(r *Report, res *sched.Result) (t vclock.Time, leader int, ok bool) {
	t, leader, ok = Stabilization(res.Samples, res.Crashed)
	if !ok {
		r.Add("EventualLeadership", false, "no common correct leader suffix")
		return t, leader, ok
	}
	valid := leader >= 0 && leader < len(res.Crashed)
	r.Add("Validity", valid, fmt.Sprintf("leader=%d", leader))
	correct := valid && !res.Crashed[leader]
	r.Add("EventualLeadership", correct,
		fmt.Sprintf("leader=%d stabilized at t=%d (end=%d)", leader, t, res.End))
	return t, leader, ok && correct
}

// CheckWriteEfficiency adds Theorem 3's verdict: in the census diff
// window (post-stabilization), the writer set is exactly {leader} and the
// only written register is PROGRESS[leader].
func CheckWriteEfficiency(r *Report, diff *shmem.CensusSnapshot, leader int) {
	writers := diff.Writers()
	okWriters := len(writers) == 1 && writers[0] == leader
	r.Add("Thm3/writers", okWriters, fmt.Sprintf("writers=%v want=[%d]", writers, leader))

	want := shmem.RegName("PROGRESS", leader)
	written := diff.WrittenRegisters()
	okRegs := len(written) == 1 && written[0] == want
	r.Add("Thm3/registers", okRegs, fmt.Sprintf("written=%v want=[%s]", written, want))
}

// CheckBoundedExceptProgress adds Theorem 2's verdict: in the diff window
// no register's value changed except PROGRESS[leader], which must have
// kept changing (the leader's liveness heartbeats, Lemma 5).
func CheckBoundedExceptProgress(r *Report, diff *shmem.CensusSnapshot, leader int) {
	want := shmem.RegName("PROGRESS", leader)
	changed := diff.ChangedRegisters()
	others := make([]string, 0, len(changed))
	sawProgress := false
	for _, name := range changed {
		if name == want {
			sawProgress = true
			continue
		}
		others = append(others, name)
	}
	r.Add("Thm2/bounded", len(others) == 0,
		fmt.Sprintf("changing registers besides %s: %v", want, others))
	r.Add("Lemma5/leaderWritesForever", sawProgress,
		fmt.Sprintf("%s changed in suffix window: %v", want, sawProgress))
}

// CheckReadersForever adds Lemma 6's verdict: every correct process other
// than the leader performed reads in the diff window.
func CheckReadersForever(r *Report, diff *shmem.CensusSnapshot, leader int, crashed []bool) {
	var silent []int
	readers := make(map[int]bool)
	for _, p := range diff.Readers() {
		readers[p] = true
	}
	for p := range crashed {
		if crashed[p] || p == leader {
			continue
		}
		if !readers[p] {
			silent = append(silent, p)
		}
	}
	r.Add("Lemma6/readersForever", len(silent) == 0,
		fmt.Sprintf("correct non-leaders with no suffix reads: %v", silent))
}

// CheckAllCorrectWriteForever adds Corollary 1's verdict for the bounded
// algorithm: every correct process wrote in the diff window.
func CheckAllCorrectWriteForever(r *Report, diff *shmem.CensusSnapshot, crashed []bool) {
	writers := make(map[int]bool)
	for _, p := range diff.Writers() {
		writers[p] = true
	}
	var silent []int
	for p := range crashed {
		if crashed[p] {
			continue
		}
		if !writers[p] {
			silent = append(silent, p)
		}
	}
	r.Add("Cor1/allCorrectWriteForever", len(silent) == 0,
		fmt.Sprintf("correct processes with no suffix writes: %v", silent))
}

// CheckBoundedMemory adds Theorem 6's verdict for Algorithm 2: every
// boolean register stayed in a 1-bit domain for the whole run, and every
// natural register (SUSPICIONS) stopped changing in the suffix window —
// i.e. nothing in the shared memory keeps growing. end is the final
// census; stab is the snapshot taken at stabilization time.
func CheckBoundedMemory(r *Report, end, stab *shmem.CensusSnapshot) {
	var wide []string
	for name, reg := range end.Regs {
		boolean := reg.Class == "PROGRESS" || reg.Class == "LAST" || reg.Class == "STOP"
		if boolean && reg.Bits() > 1 {
			wide = append(wide, name)
		}
	}
	r.Add("Thm6/booleans1bit", len(wide) == 0,
		fmt.Sprintf("boolean registers wider than 1 bit: %v", wide))

	diff := end.Diff(stab)
	var growing []string
	for name, d := range diff.Regs {
		if d.Class == "SUSPICIONS" && d.DistinctValues > 0 {
			growing = append(growing, name)
		}
	}
	r.Add("Thm6/suspicionsStabilize", len(growing) == 0,
		fmt.Sprintf("SUSPICIONS still changing after stabilization: %v (footprint %d bits)",
			growing, end.TotalBits()))
}

// CheckAlgo2WriteSet adds Theorem 7's verdict: in the diff window, value
// changes happen only on PROGRESS[leader][*] (written by the leader) and
// LAST[leader][i] (written by each correct watcher i).
func CheckAlgo2WriteSet(r *Report, diff *shmem.CensusSnapshot, leader int, crashed []bool) {
	var rogue []string
	for _, name := range diff.ChangedRegisters() {
		reg := diff.Regs[name]
		okName := false
		switch reg.Class {
		case "PROGRESS":
			okName = strings.HasPrefix(name, fmt.Sprintf("PROGRESS[%d][", leader))
		case "LAST":
			okName = strings.HasPrefix(name, fmt.Sprintf("LAST[%d][", leader))
		}
		if !okName {
			rogue = append(rogue, name)
		}
	}
	r.Add("Thm7/writeSet", len(rogue) == 0,
		fmt.Sprintf("changing registers outside PROGRESS[%d][*]/LAST[%d][*]: %v", leader, leader, rogue))
}
