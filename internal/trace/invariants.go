package trace

import (
	"fmt"

	"omegasm/internal/sched"
)

// InvariantChecker is an online run monitor: installed as a scheduler
// hook, it checks at every observation point the properties that must
// hold at all times — not just eventually — and records the first
// violation of each.
//
//   - Validity (paper Section 2.2): every live process's Leader() answer
//     is a process identity in [0, n).
//   - CrashMonotone: a process reported crashed never comes back.
//   - TimeMonotone: observation timestamps strictly increase.
//
// Unlike the eventual properties (checked post-hoc by Stabilization and
// the census verdicts), a violation here indicates a bug in the
// algorithm or the substrate, so the checker is wired into the harness's
// tests rather than into experiment verdicts.
type InvariantChecker struct {
	n          int
	lastT      int64
	wasCrashed []bool
	violations []string
}

var _ sched.Hook = (*InvariantChecker)(nil)

// NewInvariantChecker creates a checker for n processes.
func NewInvariantChecker(n int) *InvariantChecker {
	return &InvariantChecker{
		n:          n,
		lastT:      -1,
		wasCrashed: make([]bool, n),
	}
}

// OnSample implements sched.Hook.
func (c *InvariantChecker) OnSample(_ *sched.World, s sched.Sample) {
	if s.T < c.lastT {
		c.violate("time went backwards: %d after %d", s.T, c.lastT)
	}
	c.lastT = s.T
	if len(s.Leaders) != c.n {
		c.violate("sample width %d, want %d", len(s.Leaders), c.n)
		return
	}
	for p, l := range s.Leaders {
		if l == -1 {
			c.wasCrashed[p] = true
			continue
		}
		if c.wasCrashed[p] {
			c.violate("process %d resurrected at t=%d", p, s.T)
		}
		if l < 0 || l >= c.n {
			c.violate("process %d returned out-of-range leader %d at t=%d", p, l, s.T)
		}
	}
}

func (c *InvariantChecker) violate(format string, args ...interface{}) {
	// Record each first-of-kind violation; cap the log so a broken run
	// does not balloon memory.
	if len(c.violations) < 32 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the recorded violations, nil if the run was clean.
func (c *InvariantChecker) Violations() []string {
	return append([]string(nil), c.violations...)
}

// OK reports whether no invariant was violated.
func (c *InvariantChecker) OK() bool { return len(c.violations) == 0 }
