package trace

import (
	"strings"
	"testing"

	"omegasm/internal/sched"
	"omegasm/internal/shmem"
)

func sample(t int64, leaders ...int) sched.Sample {
	return sched.Sample{T: t, Leaders: leaders}
}

func TestStabilizationBasic(t *testing.T) {
	samples := []sched.Sample{
		sample(10, 0, 1, 2),
		sample(20, 1, 1, 2),
		sample(30, 1, 1, 1),
		sample(40, 1, 1, 1),
	}
	crashed := []bool{false, false, false}
	st, leader, ok := Stabilization(samples, crashed)
	if !ok || leader != 1 || st != 30 {
		t.Fatalf("got (%d,%d,%v), want (30,1,true)", st, leader, ok)
	}
}

func TestStabilizationNeverAgrees(t *testing.T) {
	samples := []sched.Sample{
		sample(10, 0, 1),
		sample(20, 1, 0),
	}
	if _, _, ok := Stabilization(samples, []bool{false, false}); ok {
		t.Fatal("disagreeing run reported stable")
	}
}

func TestStabilizationCrashedLeaderRejected(t *testing.T) {
	// Everyone agrees on process 0, but 0 crashed during the run:
	// Eventual Leadership requires a CORRECT leader.
	samples := []sched.Sample{
		sample(10, 0, 0, 0),
		sample(20, -1, 0, 0),
	}
	if _, _, ok := Stabilization(samples, []bool{true, false, false}); ok {
		t.Fatal("crashed leader accepted")
	}
}

func TestStabilizationIgnoresEventuallyCrashedProcesses(t *testing.T) {
	// Process 2 disagrees early and then crashes; the oracle only
	// constrains correct processes, so the run is stable from t=10.
	samples := []sched.Sample{
		sample(10, 1, 1, 2),
		sample(20, 1, 1, -1),
		sample(30, 1, 1, -1),
	}
	st, leader, ok := Stabilization(samples, []bool{false, false, true})
	if !ok || leader != 1 || st != 10 {
		t.Fatalf("got (%d,%d,%v), want (10,1,true)", st, leader, ok)
	}
}

func TestStabilizationEmpty(t *testing.T) {
	if _, _, ok := Stabilization(nil, nil); ok {
		t.Fatal("empty run reported stable")
	}
	// All processes crashed by the end.
	samples := []sched.Sample{sample(10, -1, -1)}
	if _, _, ok := Stabilization(samples, []bool{true, true}); ok {
		t.Fatal("fully-crashed run reported stable")
	}
}

func TestStabilizationFlappingSuffixDetected(t *testing.T) {
	// Agreement at the end only: stabilization time is the start of the
	// final agreeing suffix, not any earlier coincidental agreement.
	samples := []sched.Sample{
		sample(10, 1, 1),
		sample(20, 0, 1),
		sample(30, 1, 1),
	}
	st, leader, ok := Stabilization(samples, []bool{false, false})
	if !ok || leader != 1 || st != 30 {
		t.Fatalf("got (%d,%d,%v), want (30,1,true)", st, leader, ok)
	}
}

func TestLeaderChangesAfter(t *testing.T) {
	samples := []sched.Sample{
		sample(10, 0, 0),
		sample(20, 1, 0), // p0 changed
		sample(30, 1, 1), // p1 changed
		sample(40, 1, 1),
	}
	if got := LeaderChangesAfter(samples, 0); got != 2 {
		t.Errorf("changes from 0 = %d, want 2", got)
	}
	if got := LeaderChangesAfter(samples, 25); got != 1 {
		t.Errorf("changes from 25 = %d, want 1", got)
	}
	if got := LeaderChangesAfter(samples, 35); got != 0 {
		t.Errorf("changes from 35 = %d, want 0", got)
	}
	// Crashed processes (-1) never count as changes.
	samples2 := []sched.Sample{sample(10, 0, 0), sample(20, 0, -1)}
	if got := LeaderChangesAfter(samples2, 0); got != 0 {
		t.Errorf("crash counted as leader change: %d", got)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{}
	r.Add("claimA", true, "fine")
	r.Add("claimB", false, "broken")
	if r.AllOK() {
		t.Fatal("AllOK with a failing verdict")
	}
	s := r.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "FAIL") {
		t.Errorf("report rendering missing statuses:\n%s", s)
	}
}

// censusWith builds a census snapshot with the given writes/reads applied.
type access struct {
	class string
	name  string
	owner int
	pid   int
	write bool
	value uint64
}

func buildSnapshot(n int, accesses []access) *shmem.CensusSnapshot {
	c := shmem.NewCensus(n, nil)
	for _, a := range accesses {
		st := c.Track(a.class, a.name, a.owner)
		if a.write {
			c.NoteWrite(st, a.pid, a.value)
		} else {
			c.NoteRead(st, a.pid)
		}
	}
	return c.Snapshot()
}

func TestCheckWriteEfficiency(t *testing.T) {
	good := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[1]", 1, 1, true, 5},
	})
	r := &Report{}
	CheckWriteEfficiency(r, good, 1)
	if !r.AllOK() {
		t.Fatalf("clean census failed:\n%s", r)
	}
	bad := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[1]", 1, 1, true, 5},
		{"STOP", "STOP[2]", 2, 2, true, 1},
	})
	r2 := &Report{}
	CheckWriteEfficiency(r2, bad, 1)
	if r2.AllOK() {
		t.Fatal("extra writer passed the Theorem 3 check")
	}
}

func TestCheckBoundedExceptProgress(t *testing.T) {
	r := &Report{}
	snap := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[0]", 0, 0, true, 1},
		{"PROGRESS", "PROGRESS[0]", 0, 0, true, 2},
	})
	CheckBoundedExceptProgress(r, snap, 0)
	if !r.AllOK() {
		t.Fatalf("growing PROGRESS[leader] must pass:\n%s", r)
	}
	r2 := &Report{}
	snap2 := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[0]", 0, 0, true, 1},
		{"SUSPICIONS", "SUSPICIONS[1][0]", 1, 1, true, 3},
	})
	CheckBoundedExceptProgress(r2, snap2, 0)
	if r2.AllOK() {
		t.Fatal("growing SUSPICIONS passed the Theorem 2 check")
	}
}

func TestCheckReadersForever(t *testing.T) {
	r := &Report{}
	snap := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[0]", 0, 1, false, 0},
		{"PROGRESS", "PROGRESS[0]", 0, 2, false, 0},
	})
	CheckReadersForever(r, snap, 0, []bool{false, false, false})
	if !r.AllOK() {
		t.Fatalf("all-readers census failed:\n%s", r)
	}
	r2 := &Report{}
	snap2 := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[0]", 0, 1, false, 0},
	})
	CheckReadersForever(r2, snap2, 0, []bool{false, false, false})
	if r2.AllOK() {
		t.Fatal("silent non-leader passed the Lemma 6 check")
	}
	// A crashed process is allowed to be silent.
	r3 := &Report{}
	CheckReadersForever(r3, snap2, 0, []bool{false, false, true})
	if !r3.AllOK() {
		t.Fatalf("crashed process's silence failed Lemma 6:\n%s", r3)
	}
}

func TestCheckAllCorrectWriteForever(t *testing.T) {
	snap := buildSnapshot(3, []access{
		{"LAST", "LAST[0][1]", 1, 1, true, 1},
		{"PROGRESS", "PROGRESS[0][1]", 0, 0, true, 1},
	})
	r := &Report{}
	CheckAllCorrectWriteForever(r, snap, []bool{false, false, true})
	if !r.AllOK() {
		t.Fatalf("census failed:\n%s", r)
	}
	r2 := &Report{}
	CheckAllCorrectWriteForever(r2, snap, []bool{false, false, false})
	if r2.AllOK() {
		t.Fatal("silent correct process passed the Corollary 1 check")
	}
}

func TestCheckAlgo2WriteSet(t *testing.T) {
	leaderOnly := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[0][1]", 0, 0, true, 1},
		{"LAST", "LAST[0][1]", 1, 1, true, 0},
	})
	r := &Report{}
	CheckAlgo2WriteSet(r, leaderOnly, 0, []bool{false, false, false})
	if !r.AllOK() {
		t.Fatalf("Theorem 7 write set failed:\n%s", r)
	}
	rogue := buildSnapshot(3, []access{
		{"PROGRESS", "PROGRESS[2][1]", 2, 2, true, 1}, // non-leader signalling
	})
	r2 := &Report{}
	CheckAlgo2WriteSet(r2, rogue, 0, []bool{false, false, false})
	if r2.AllOK() {
		t.Fatal("rogue writer passed the Theorem 7 check")
	}
}

func TestCheckBoundedMemory(t *testing.T) {
	c := shmem.NewCensus(2, nil)
	p := c.Track("PROGRESS", "PROGRESS[0][1]", 0)
	s := c.Track("SUSPICIONS", "SUSPICIONS[1][0]", 1)
	c.NoteWrite(p, 0, 1)
	c.NoteWrite(s, 1, 2)
	stab := c.Snapshot()
	c.NoteWrite(p, 0, 0) // boolean keeps flipping: fine
	end := c.Snapshot()
	r := &Report{}
	CheckBoundedMemory(r, end, stab)
	if !r.AllOK() {
		t.Fatalf("bounded run failed:\n%s", r)
	}
	// SUSPICIONS changing after stabilization must fail.
	c.NoteWrite(s, 1, 3)
	r2 := &Report{}
	CheckBoundedMemory(r2, c.Snapshot(), stab)
	if r2.AllOK() {
		t.Fatal("post-stabilization suspicion growth passed Theorem 6 check")
	}
	// A multi-bit "boolean" register must fail.
	c2 := shmem.NewCensus(2, nil)
	wide := c2.Track("PROGRESS", "PROGRESS[0][1]", 0)
	c2.NoteWrite(wide, 0, 7)
	r3 := &Report{}
	snap := c2.Snapshot()
	CheckBoundedMemory(r3, snap, snap)
	if r3.AllOK() {
		t.Fatal("3-bit handshake register passed the 1-bit check")
	}
}

func TestCheckEventualLeadership(t *testing.T) {
	res := &sched.Result{
		Samples: []sched.Sample{sample(10, 1, 1), sample(20, 1, 1)},
		Crashed: []bool{false, false},
		End:     20,
	}
	r := &Report{}
	st, leader, ok := CheckEventualLeadership(r, res)
	if !ok || leader != 1 || st != 10 || !r.AllOK() {
		t.Fatalf("got (%d,%d,%v):\n%s", st, leader, ok, r)
	}
	bad := &sched.Result{
		Samples: []sched.Sample{sample(10, 0, 1)},
		Crashed: []bool{false, false},
		End:     10,
	}
	r2 := &Report{}
	if _, _, ok := CheckEventualLeadership(r2, bad); ok || r2.AllOK() {
		t.Fatal("disagreeing run passed")
	}
}
