// Package rt is the live runtime: it runs the core state machines on real
// goroutines with time.Timer-based timers. The runtime is substrate-
// agnostic: processes close over registers of any shmem.Mem (sync/atomic
// words, SAN-replicated disks, ...) — rt only schedules their steps, so
// one runtime serves every substrate the public API can be configured
// with.
//
// Mapping to the paper's model:
//
//   - Task T2's infinite loop is a goroutine that calls Step every
//     StepInterval.
//   - Task T3's timer is a time.Timer armed to TimerUnit * x after every
//     firing, where x is the value the algorithm set the timer to (paper
//     line 27). On a healthy machine the elapsed duration of a Go timer is
//     at least its programmed duration, i.e. T_R(tau, x) >= TimerUnit * x:
//     an asymptotically well-behaved timer dominating f(tau, x) =
//     TimerUnit*x by construction — AWB2 holds. AWB1 holds for any process
//     whose stepper goroutine keeps getting scheduled, which the Go
//     runtime guarantees for runnable goroutines.
//   - A crash is simulated by stopping a node's goroutines: a crashed
//     process takes no further steps and writes nothing, exactly the
//     paper's crash-stop failure.
//
// All goroutines are joined on Stop — the runtime never leaks.
package rt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/vclock"
)

// Proc is the state-machine contract the runtime drives; the core
// algorithms implement it.
type Proc interface {
	Step(now vclock.Time)
	OnTimer(now vclock.Time) (next uint64)
	Leader() int
	ID() int
}

// Config parameterizes the live runtime.
type Config struct {
	// StepInterval is the pause between T2 iterations; default 200us.
	StepInterval time.Duration
	// TimerUnit converts the algorithm's timeout value x into a real
	// duration; default 2ms.
	TimerUnit time.Duration
}

func (c *Config) normalize() {
	if c.StepInterval <= 0 {
		c.StepInterval = 200 * time.Microsecond
	}
	if c.TimerUnit <= 0 {
		c.TimerUnit = 2 * time.Millisecond
	}
}

// Runtime drives a set of processes on live goroutines.
type Runtime struct {
	cfg   Config
	nodes []*node
	start time.Time

	mu      sync.Mutex
	started bool
	stopped bool
}

type node struct {
	rt   *Runtime
	proc Proc

	mu sync.Mutex // guards proc's local state across tasks

	// leaderEst is the node's published leader estimate, re-published
	// after every Step/OnTimer. Leader queries read it without touching
	// mu, so high-rate oracle queries (the Fleet fast path) never contend
	// with the algorithm's own tasks.
	leaderEst atomic.Int64
	crashed   atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// publish refreshes the node's lock-free leader estimate; called with mu
// held, right after the proc took a step.
func (n *node) publish() { n.leaderEst.Store(int64(n.proc.Leader())) }

// New builds a runtime over the given processes.
func New(cfg Config, procs []Proc) (*Runtime, error) {
	if len(procs) < 2 {
		return nil, fmt.Errorf("rt: need at least 2 processes, got %d", len(procs))
	}
	cfg.normalize()
	r := &Runtime{cfg: cfg, start: time.Now()}
	for _, p := range procs {
		n := &node{rt: r, proc: p, stop: make(chan struct{})}
		n.leaderEst.Store(int64(p.Leader()))
		r.nodes = append(r.nodes, n)
	}
	return r, nil
}

// now returns nanoseconds since runtime start, the live vclock.Time.
func (r *Runtime) now() vclock.Time { return int64(time.Since(r.start)) }

// Start launches every node's task goroutines. It may be called once.
func (r *Runtime) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("rt: already started")
	}
	r.started = true
	for _, n := range r.nodes {
		n.run()
	}
	return nil
}

// Stop crashes every node and joins all goroutines. Idempotent.
func (r *Runtime) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	for _, n := range r.nodes {
		n.halt()
	}
	for _, n := range r.nodes {
		n.wg.Wait()
	}
}

// Crash stops process i's goroutines, simulating a crash-stop failure.
// The node's registers keep their last values, as in the paper's model.
func (r *Runtime) Crash(i int) error {
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("rt: no process %d", i)
	}
	n := r.nodes[i]
	n.halt()
	n.wg.Wait()
	return nil
}

// Crashed reports whether process i has been crashed.
func (r *Runtime) Crashed(i int) bool {
	if i < 0 || i >= len(r.nodes) {
		return true
	}
	return r.nodes[i].crashed.Load()
}

// Leader returns process i's current leader estimate (task T1). It reads
// the node's published estimate — a single atomic load, never blocking on
// the process's own tasks — so oracle queries scale with readers.
func (r *Runtime) Leader(i int) (int, error) {
	if i < 0 || i >= len(r.nodes) {
		return -1, fmt.Errorf("rt: no process %d", i)
	}
	return int(r.nodes[i].leaderEst.Load()), nil
}

// AgreedLeader returns the common leader estimate of all live processes,
// or (-1, false) while they disagree. Lock-free: it scans the published
// estimates.
func (r *Runtime) AgreedLeader() (int, bool) {
	leader := -1
	for _, n := range r.nodes {
		if n.crashed.Load() {
			continue
		}
		l := int(n.leaderEst.Load())
		if leader == -1 {
			leader = l
		} else if leader != l {
			return -1, false
		}
	}
	return leader, leader != -1
}

// WaitForAgreement polls until all live processes agree on a live leader
// or the timeout elapses.
func (r *Runtime) WaitForAgreement(timeout time.Duration) (int, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.WaitForAgreementContext(ctx)
}

// WaitForAgreementContext polls until all live processes agree on a live
// leader or ctx is done.
func (r *Runtime) WaitForAgreementContext(ctx context.Context) (int, bool) {
	ticker := time.NewTicker(r.cfg.StepInterval)
	defer ticker.Stop()
	for {
		if l, ok := r.AgreedLeader(); ok && !r.Crashed(l) {
			return l, true
		}
		select {
		case <-ctx.Done():
			return -1, false
		case <-ticker.C:
		}
	}
}

// N returns the number of processes.
func (r *Runtime) N() int { return len(r.nodes) }

func (n *node) run() {
	// Task T2: the main loop.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(n.rt.cfg.StepInterval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				n.mu.Lock()
				n.proc.Step(n.rt.now())
				n.publish()
				n.mu.Unlock()
			}
		}
	}()
	// Task T3: the timer loop. The timer starts at value 1, as in the
	// simulator.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		timer := time.NewTimer(n.rt.cfg.TimerUnit)
		defer timer.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-timer.C:
				n.mu.Lock()
				x := n.proc.OnTimer(n.rt.now())
				n.publish()
				n.mu.Unlock()
				if x == 0 {
					return // timer-free variant: never re-arm
				}
				timer.Reset(time.Duration(x) * n.rt.cfg.TimerUnit)
			}
		}
	}()
}

func (n *node) halt() {
	n.once.Do(func() {
		n.crashed.Store(true)
		close(n.stop)
	})
}
