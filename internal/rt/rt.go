// Package rt is the live runtime: it runs the core state machines over
// the live engine (internal/engine) with real-time deadlines. The runtime
// is substrate-agnostic: processes close over registers of any shmem.Mem
// (sync/atomic words, SAN-replicated disks, ...) — rt only schedules
// their steps, so one runtime serves every substrate the public API can
// be configured with.
//
// Mapping to the paper's model:
//
//   - Task T2's infinite loop is an engine machine whose wake hint asks
//     for the next step StepInterval after the previous one.
//   - Task T3's timer is the engine's timer task, armed to TimerUnit * x
//     after every firing, where x is the value the algorithm set the
//     timer to (paper line 27). On a healthy machine the elapsed duration
//     of a Go timer is at least its programmed duration, i.e.
//     T_R(tau, x) >= TimerUnit * x: an asymptotically well-behaved timer
//     dominating f(tau, x) = TimerUnit*x by construction — AWB2 holds.
//     AWB1 holds for any process whose engine keeps granting it steps,
//     which the Go runtime guarantees for a runnable scheduler goroutine.
//   - A crash permanently deschedules a node's machine: a crashed process
//     takes no further steps and writes nothing, exactly the paper's
//     crash-stop failure.
//
// The engine's scheduler goroutine is joined on Stop — the runtime never
// leaks.
package rt

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"omegasm/internal/engine"
	"omegasm/internal/vclock"
)

// Proc is the state-machine contract the runtime drives; the core
// algorithms implement it.
type Proc interface {
	Step(now vclock.Time)
	OnTimer(now vclock.Time) (next uint64)
	Leader() int
	ID() int
}

// Config parameterizes the live runtime.
type Config struct {
	// StepInterval is the pause between T2 iterations; default
	// engine.DefaultStepInterval (200us).
	StepInterval time.Duration
	// TimerUnit converts the algorithm's timeout value x into a real
	// duration; default engine.DefaultTimerUnit (2ms).
	TimerUnit time.Duration
}

func (c *Config) normalize() {
	if c.StepInterval <= 0 {
		c.StepInterval = engine.DefaultStepInterval
	}
	if c.TimerUnit <= 0 {
		c.TimerUnit = engine.DefaultTimerUnit
	}
}

// Runtime drives a set of processes on the live engine: one engine per
// node, so a node's T2 and T3 bodies serialize with each other (as they
// always did, under the old per-node mutex) while different nodes run
// concurrently — on the SAN substrate a step blocks in quorum disk I/O,
// and one node's slow quorum must not stall its peers' timers.
type Runtime struct {
	cfg   Config
	nodes []*node
}

// node adapts one Proc to the engine's machine contract. Step and OnTimer
// bodies run only on the engine's scheduler goroutine; the published
// leader estimate is the lock-free read path.
type node struct {
	proc     Proc
	eng      *engine.Live
	interval vclock.Duration // StepInterval in ns

	// leaderEst is the node's published leader estimate, re-published
	// after every Step/OnTimer. Leader queries read it without touching
	// the engine, so high-rate oracle queries (the Fleet fast path) never
	// contend with the algorithm's own tasks.
	leaderEst atomic.Int64
	crashed   atomic.Bool
}

// publish refreshes the node's lock-free leader estimate, right after the
// proc took a step.
func (n *node) publish() { n.leaderEst.Store(int64(n.proc.Leader())) }

// Step implements engine.Machine (task T2).
func (n *node) Step(now vclock.Time) engine.Hint {
	n.proc.Step(now)
	n.publish()
	return engine.At(now + n.interval)
}

// OnTimer implements engine.TimerMachine (task T3).
func (n *node) OnTimer(now vclock.Time) uint64 {
	x := n.proc.OnTimer(now)
	n.publish()
	return x
}

// New builds a runtime over the given processes.
func New(cfg Config, procs []Proc) (*Runtime, error) {
	if len(procs) < 2 {
		return nil, fmt.Errorf("rt: need at least 2 processes, got %d", len(procs))
	}
	cfg.normalize()
	r := &Runtime{cfg: cfg}
	for _, p := range procs {
		n := &node{
			proc:     p,
			eng:      engine.NewLive(engine.LiveConfig{TimerUnit: cfg.TimerUnit}),
			interval: int64(cfg.StepInterval),
		}
		n.leaderEst.Store(int64(p.Leader()))
		// The first step lands one interval after Start, as the old
		// per-node ticker did.
		n.eng.Add(n, engine.FirstStepAt(int64(cfg.StepInterval)))
		r.nodes = append(r.nodes, n)
	}
	return r, nil
}

// Start launches every node's engine. It may be called once.
func (r *Runtime) Start() error {
	for i, n := range r.nodes {
		if err := n.eng.Start(); err != nil {
			for _, prev := range r.nodes[:i] {
				prev.eng.Stop()
			}
			return err
		}
	}
	return nil
}

// Stop crashes every node and joins all engines. Idempotent.
func (r *Runtime) Stop() {
	for _, n := range r.nodes {
		n.crashed.Store(true)
	}
	for _, n := range r.nodes {
		n.eng.Stop()
	}
}

// Crash stops process i permanently, simulating a crash-stop failure. The
// node's registers keep their last values, as in the paper's model. When
// Crash returns, no step of i is in flight and none will run again.
func (r *Runtime) Crash(i int) error {
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("rt: no process %d", i)
	}
	r.nodes[i].crashed.Store(true)
	r.nodes[i].eng.Crash(0)
	return nil
}

// Crashed reports whether process i has been crashed.
func (r *Runtime) Crashed(i int) bool {
	if i < 0 || i >= len(r.nodes) {
		return true
	}
	return r.nodes[i].crashed.Load()
}

// Leader returns process i's current leader estimate (task T1). It reads
// the node's published estimate — a single atomic load, never blocking on
// the process's own tasks — so oracle queries scale with readers.
func (r *Runtime) Leader(i int) (int, error) {
	if i < 0 || i >= len(r.nodes) {
		return -1, fmt.Errorf("rt: no process %d", i)
	}
	return int(r.nodes[i].leaderEst.Load()), nil
}

// AgreedLeader returns the common leader estimate of all live processes,
// or (-1, false) while they disagree. Lock-free: it scans the published
// estimates.
func (r *Runtime) AgreedLeader() (int, bool) {
	leader := -1
	for _, n := range r.nodes {
		if n.crashed.Load() {
			continue
		}
		l := int(n.leaderEst.Load())
		if leader == -1 {
			leader = l
		} else if leader != l {
			return -1, false
		}
	}
	return leader, leader != -1
}

// WaitForAgreement polls until all live processes agree on a live leader
// or the timeout elapses.
func (r *Runtime) WaitForAgreement(timeout time.Duration) (int, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.WaitForAgreementContext(ctx)
}

// WaitForAgreementContext polls until all live processes agree on a live
// leader or ctx is done.
func (r *Runtime) WaitForAgreementContext(ctx context.Context) (int, bool) {
	ticker := time.NewTicker(r.cfg.StepInterval)
	defer ticker.Stop()
	for {
		if l, ok := r.AgreedLeader(); ok && !r.Crashed(l) {
			return l, true
		}
		select {
		case <-ctx.Done():
			return -1, false
		case <-ticker.C:
		}
	}
}

// N returns the number of processes.
func (r *Runtime) N() int { return len(r.nodes) }
