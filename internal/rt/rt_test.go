package rt_test

import (
	"sync"
	"testing"
	"time"

	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/shmem"
)

func liveCluster(t *testing.T, n int, algo string) (*rt.Runtime, *shmem.AtomicMem) {
	t.Helper()
	mem := shmem.NewAtomicMem(n, true)
	procs := make([]rt.Proc, n)
	switch algo {
	case "algo1":
		for i, p := range core.BuildAlgo1(mem, n) {
			procs[i] = p
		}
	case "algo2":
		for i, p := range core.BuildAlgo2(mem, n) {
			procs[i] = p
		}
	default:
		t.Fatalf("unknown algo %q", algo)
	}
	r, err := rt.New(rt.Config{
		StepInterval: 100 * time.Microsecond,
		TimerUnit:    time.Millisecond,
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	return r, mem
}

func TestRTValidation(t *testing.T) {
	if _, err := rt.New(rt.Config{}, nil); err == nil {
		t.Error("empty process list accepted")
	}
}

func TestRTStartTwiceFails(t *testing.T) {
	r, _ := liveCluster(t, 2, "algo1")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(); err == nil {
		t.Error("second Start accepted")
	}
}

func TestRTStopIdempotent(t *testing.T) {
	r, _ := liveCluster(t, 2, "algo1")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.Stop() // must not panic or deadlock
}

func TestRTElectsLive(t *testing.T) {
	for _, algo := range []string{"algo1", "algo2"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			r, _ := liveCluster(t, 4, algo)
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			defer r.Stop()
			leader, ok := r.WaitForAgreement(10 * time.Second)
			if !ok {
				t.Fatal("no agreement within 10s")
			}
			if leader < 0 || leader >= 4 || r.Crashed(leader) {
				t.Fatalf("bad leader %d", leader)
			}
		})
	}
}

func TestRTCrashAndReElect(t *testing.T) {
	r, mem := liveCluster(t, 4, "algo1")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	leader, ok := r.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no initial agreement")
	}
	if err := r.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if !r.Crashed(leader) {
		t.Fatal("Crashed() false after Crash")
	}
	next, ok := r.WaitForAgreement(20 * time.Second)
	if !ok {
		t.Fatal("no re-election after crash")
	}
	if next == leader {
		t.Fatalf("crashed process %d re-elected", leader)
	}
	// The crashed process must stop writing: snapshot twice and compare.
	before := mem.Census().Snapshot()
	time.Sleep(50 * time.Millisecond)
	diff := mem.Census().Snapshot().Diff(before)
	for _, reg := range diff.Regs {
		if reg.WritesBy[leader] > 0 {
			t.Fatalf("crashed process still writing %s", reg.Name)
		}
	}
}

func TestRTCrashInvalidPid(t *testing.T) {
	r, _ := liveCluster(t, 2, "algo1")
	if err := r.Crash(-1); err == nil {
		t.Error("Crash(-1) accepted")
	}
	if err := r.Crash(99); err == nil {
		t.Error("Crash(99) accepted")
	}
	if _, err := r.Leader(99); err == nil {
		t.Error("Leader(99) accepted")
	}
	if !r.Crashed(99) {
		t.Error("out-of-range process must read as crashed")
	}
}

// TestRTWriteEfficiencyLive reproduces Theorem 3 on the live runtime:
// once agreement holds for a while, only the leader writes.
func TestRTWriteEfficiencyLive(t *testing.T) {
	r, mem := liveCluster(t, 3, "algo1")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	leader, ok := r.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no agreement")
	}
	// Let the anarchy fully drain, then census settled windows. A loaded
	// machine can churn leadership mid-window (a suspicion timeout fires),
	// which legitimately adds writers — Theorem 3 speaks only about
	// windows with stable leadership — so retry a few windows and demand
	// one clean one. A real write-efficiency regression (a non-leader
	// writing in steady state) dirties every window and still fails.
	time.Sleep(200 * time.Millisecond)
	var writers []int
	for attempt := 0; attempt < 5; attempt++ {
		leader, ok = r.WaitForAgreement(5 * time.Second)
		if !ok {
			t.Fatal("agreement lost and not regained")
		}
		before := mem.Census().Snapshot()
		time.Sleep(100 * time.Millisecond)
		diff := mem.Census().Snapshot().Diff(before)
		writers = diff.Writers()
		if l2, ok := r.AgreedLeader(); !ok || l2 != leader {
			continue // churned mid-window: void, retry
		}
		if len(writers) == 1 && writers[0] == leader {
			return
		}
	}
	t.Errorf("no settled window with writers = [leader] in 5 attempts; last writers = %v, leader %d", writers, leader)
}

// TestRTLeaderQueriesLockFree hammers Leader/AgreedLeader/Crashed from
// many goroutines while the cluster runs and a crash happens mid-stream:
// the queries read published atomics, so under -race this proves the
// oracle fast path never races with the algorithm's tasks.
func TestRTLeaderQueriesLockFree(t *testing.T) {
	r, _ := liveCluster(t, 4, "algo1")
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	leader, ok := r.WaitForAgreement(10 * time.Second)
	if !ok {
		t.Fatal("no agreement")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if l, err := r.Leader((g + i) % 4); err != nil || l < 0 || l >= 4 {
					t.Errorf("Leader = %d, %v", l, err)
					return
				}
				r.AgreedLeader()
				r.Crashed(i % 4)
			}
		}(g)
	}
	if err := r.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.WaitForAgreement(20 * time.Second); !ok {
		t.Fatal("no re-election under query load")
	}
	close(stop)
	wg.Wait()
}

func TestRTTimerFreeVariantLive(t *testing.T) {
	mem := shmem.NewAtomicMem(3, false)
	procs := make([]rt.Proc, 3)
	for i, p := range core.BuildTimerFree(mem, 3) {
		procs[i] = p
	}
	r, err := rt.New(rt.Config{StepInterval: 50 * time.Microsecond}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if _, ok := r.WaitForAgreement(10 * time.Second); !ok {
		t.Fatal("timer-free variant did not agree live")
	}
}
