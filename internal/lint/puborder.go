package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"omegasm/internal/lint/analysis"
)

// PubOrder checks the publication protocol of pointer-to-value areas
// (internal/consensus batches, checkpoints, snapshots): within one
// function, register stores that land in a `data` field must come
// before stores to a `meta` field, which must come before stores to a
// `hdr` field. The descriptor a reader can learn points at the header,
// so the header store is the commit point — writing it before the data
// publishes a half-written area. Stores in mutually exclusive branches
// of the same if/switch are unordered and never paired.
var PubOrder = &analysis.Analyzer{
	Name: "puborder",
	Doc: "publication-area register stores must be ordered data -> meta -> header " +
		"within a publishing function",
	Run: runPubOrder,
}

// pubKind ranks the three store classes in required order.
type pubKind int

const (
	pubData pubKind = iota
	pubMeta
	pubHdr
)

// pubKindName renders a pubKind for diagnostics.
func pubKindName(k pubKind) string {
	switch k {
	case pubData:
		return "data"
	case pubMeta:
		return "meta"
	default:
		return "header"
	}
}

// pubStore is one classified register store with its ancestor path.
type pubStore struct {
	kind pubKind
	pos  token.Pos
	path []ast.Node
}

// runPubOrder walks every function body, collects classified Write
// calls, and reports later stores that belong earlier in the protocol.
func runPubOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPubOrderFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkPubOrderFunc analyzes one function body. Function literals
// inside it are analyzed as their own scopes and skipped here.
func checkPubOrderFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var stores []pubStore
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok && lit.Body != nil {
				checkPubOrderFunc(pass, lit.Body)
				return false
			}
			stack = append(stack, m)
			if call, ok := m.(*ast.CallExpr); ok {
				if kind, ok := classifyPubStore(pass.TypesInfo, call); ok {
					stores = append(stores, pubStore{
						kind: kind,
						pos:  call.Pos(),
						path: append([]ast.Node(nil), stack...),
					})
				}
			}
			return true
		})
	}
	walk(body)

	for i, later := range stores {
		for _, earlier := range stores[:i] {
			if later.kind < earlier.kind && sequentiallyOrdered(earlier.path, later.path) {
				pass.Reportf(later.pos,
					"%s store after %s store; publication protocol is data -> meta -> header (the header store is the commit point)",
					pubKindName(later.kind), pubKindName(earlier.kind))
				break
			}
		}
	}
}

// classifyPubStore recognizes reg.Write(pid, v) calls whose receiver
// chain selects a publication-area field named data, meta or hdr, and
// returns the innermost such classification.
func classifyPubStore(info *types.Info, call *ast.CallExpr) (pubKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" || len(call.Args) != 2 {
		return 0, false
	}
	// Must be a method call (a selection), not a package function.
	if s := info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return 0, false
	}
	kind := pubKind(-1)
	found := false
	for expr := sel.X; expr != nil; {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if s := info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
				switch e.Sel.Name {
				case "data":
					kind, found = pubData, true
				case "meta":
					kind, found = pubMeta, true
				case "hdr":
					kind, found = pubHdr, true
				}
			}
			if found {
				return kind, true // innermost (nearest the Write) wins
			}
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			expr = nil
		}
	}
	return 0, false
}

// sequentiallyOrdered reports whether the store at path a executes
// before the store at path b in straight-line program order: their
// divergence point must be a statement list (block or case body), not
// the two arms of a branch.
func sequentiallyOrdered(a, b []ast.Node) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i == 0 || i == n {
		return false
	}
	switch a[i-1].(type) {
	case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		return true
	default:
		// Divergence inside an IfStmt, SwitchStmt, etc.: the two stores
		// sit in different branches and are never both executed in this
		// order.
		return false
	}
}
