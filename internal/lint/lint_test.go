package lint_test

import (
	"path/filepath"
	"testing"

	"omegasm/internal/lint"
	"omegasm/internal/lint/analysistest"
	"omegasm/internal/lint/loader"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicField,
		"atomicfield/bad", "atomicfield/good", "atomicfield/allow")
}

func TestPubOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PubOrder,
		"puborder/bad", "puborder/good", "puborder/allow")
}

func TestSimDet(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SimDet,
		"simdet/internal/engine", "simdet/filescope", "simdet/unscoped",
		"simdet/allowed/internal/core")
}

func TestWakeHint(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WakeHint,
		"wakehint/bad", "wakehint/good")
}

// TestRepoIsClean is the gate in test form: the whole module must pass
// the suite, so `go test ./...` fails on a violation even where CI's
// dedicated omegalint job does not run.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	module, err := loader.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := loader.LoadModule(loader.Config{Root: root, Module: module})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.RunSuite(prog, nil, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
