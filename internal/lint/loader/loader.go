// Package loader type-checks this module's packages without the go
// tool or network access: module-internal imports are resolved to
// directories and type-checked from source recursively, everything else
// (the standard library) goes through go/importer's source importer.
// One Load call produces one analysis.Program with a shared FileSet and
// type identity across packages.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"omegasm/internal/lint/analysis"
)

// Config locates the source tree to load.
type Config struct {
	// Root is the directory of the module (or fixture tree) to load.
	Root string
	// Module is the import-path prefix that maps to Root. Empty means
	// fixture mode: any import whose directory exists under Root is
	// loaded from there (analysistest uses this for testdata/src).
	Module string
}

// Loader resolves and caches type-checked packages for one program.
type Loader struct {
	cfg   Config
	fset  *token.FileSet
	pkgs  map[string]*analysis.PackageInfo
	order []string
	src   types.ImporterFrom
}

// New creates a loader for the tree described by cfg.
func New(cfg Config) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		cfg:  cfg,
		fset: fset,
		pkgs: map[string]*analysis.PackageInfo{},
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to a directory under Root, or "" when the
// path is not local to the loaded tree.
func (l *Loader) dirFor(path string) string {
	if l.cfg.Module != "" {
		if path == l.cfg.Module {
			return l.cfg.Root
		}
		if rest, ok := strings.CutPrefix(path, l.cfg.Module+"/"); ok {
			return filepath.Join(l.cfg.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.cfg.Root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.cfg.Root, 0)
}

// ImportFrom implements types.ImporterFrom: local paths load from
// source under Root, all others delegate to the standard-library source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if info, ok := l.pkgs[path]; ok {
		return info.Pkg, nil
	}
	if d := l.dirFor(path); d != "" {
		info, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return info.Pkg, nil
	}
	return l.src.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dir under import path
// path, caching the result.
func (l *Loader) load(path, dir string) (*analysis.PackageInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	pi := &analysis.PackageInfo{Path: path, Dir: dir, Files: files, Pkg: pkg, TypesInfo: info}
	l.pkgs[path] = pi
	l.order = append(l.order, path)
	return pi, nil
}

// LoadDir loads the single package in dir under the given import path.
func (l *Loader) LoadDir(path, dir string) (*analysis.PackageInfo, error) {
	if info, ok := l.pkgs[path]; ok {
		return info, nil
	}
	return l.load(path, dir)
}

// Program assembles the loaded packages (sorted by import path) into an
// analysis.Program.
func (l *Loader) Program() *analysis.Program {
	paths := append([]string(nil), l.order...)
	sort.Strings(paths)
	prog := &analysis.Program{Fset: l.fset}
	for _, p := range paths {
		prog.Packages = append(prog.Packages, l.pkgs[p])
	}
	return prog
}

// LoadModule loads every package of the module rooted at cfg.Root
// (skipping testdata and hidden directories) and returns the assembled
// program. Directories without Go files are skipped.
func LoadModule(cfg Config) (*analysis.Program, *Loader, error) {
	l := New(cfg)
	dirs, err := moduleDirs(cfg.Root)
	if err != nil {
		return nil, nil, err
	}
	for _, dir := range dirs {
		path, err := importPathFor(cfg, dir)
		if err != nil {
			return nil, nil, err
		}
		if _, err := l.LoadDir(path, dir); err != nil {
			return nil, nil, err
		}
	}
	return l.Program(), l, nil
}

// moduleDirs lists every directory under root that contains non-test Go
// files, in sorted order.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under cfg.Root to its import path.
func importPathFor(cfg Config, dir string) (string, error) {
	rel, err := filepath.Rel(cfg.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if cfg.Module == "" {
			return "", fmt.Errorf("loader: package at module root needs Config.Module")
		}
		return cfg.Module, nil
	case cfg.Module == "":
		return rel, nil
	default:
		return cfg.Module + "/" + rel, nil
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("loader: no module line in %s/go.mod", root)
}
