package filescope

import "time"

// virtualNow lives in sim.go, which is sim-scoped by file name in any
// package.
func virtualNow() int64 {
	return time.Now().UnixNano() // want `time.Now in sim-reachable code`
}
