package filescope

import "time"

// wallNow lives outside sim.go in an unscoped package: no finding.
func wallNow() int64 {
	return time.Now().UnixNano()
}
