//omegalint:allow simdet this adapter is wall-clock by design; only the sim paths of the package carry the determinism obligation

package core

import "time"

// now is covered by the file-wide directive above the package clause.
func now() int64 {
	return time.Now().UnixNano()
}

func spawn(f func()) {
	go f()
}
