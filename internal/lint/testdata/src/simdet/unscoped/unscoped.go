package unscoped

import "time"

// now is out of simdet's scope entirely: wall-clock reads are fine in
// live-only packages.
func now() int64 {
	return time.Now().UnixNano()
}
