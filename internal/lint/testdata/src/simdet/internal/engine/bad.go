package engine

import (
	"math/rand"
	"sort"
	"time"
)

type sink struct{ out []int }

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in sim-reachable code`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since in sim-reachable code`
}

func globalRand() int {
	return rand.Intn(8) // want `global math/rand.Intn`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded generator: allowed
	return rng.Intn(8)
}

func spawn(f func()) {
	go f() // want `goroutine spawn in sim-reachable code`
}

// leakOrder appends map values in iteration order: the emitted slice
// depends on the hash seed.
func leakOrder(m map[int]int, s *sink) {
	for _, v := range m { // want `iteration over map m`
		s.out = append(s.out, v)
	}
}

// sortedOrder is the canonical fix: collect keys, sort, then walk.
func sortedOrder(m map[int]int, s *sink) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.out = append(s.out, m[k])
	}
}

// commutative bodies — keyed writes, deletes, counters — cannot leak
// iteration order.
func commutative(dst, src map[int]int) int {
	n := 0
	for k, v := range src {
		if v > 0 {
			dst[k] = v
		}
		n++
	}
	for k := range dst {
		if k < 0 {
			delete(dst, k)
		}
	}
	return n
}
