package bad

type Hint struct {
	Kind int
	At   int64
}

const (
	WakeNow = iota + 1
	WakeAt
	WakePark
)

func Now() Hint       { return Hint{Kind: WakeNow} }
func At(t int64) Hint { return Hint{Kind: WakeAt, At: t} }

type spinner struct{}

// Step below returns WakeNow unconditionally: the engine re-steps it
// forever and the machine can never idle.
func (spinner) Step(now int64) Hint { // want `Step returns WakeNow on every path`
	return Now()
}

type literalSpinner struct{}

func (literalSpinner) Step(now int64) Hint { // want `Step returns WakeNow on every path`
	return Hint{Kind: WakeNow}
}

type zeroer struct{ busy bool }

func (z zeroer) Step(now int64) Hint {
	if z.busy {
		return Now()
	}
	return Hint{} // want `Step returns a zero Hint`
}

type naked struct{}

func (naked) Step(now int64) (h Hint) {
	return // want `naked return in Step`
}

type endless struct{}

func (endless) Step(now int64) Hint { // want `Step has no return path`
	for {
	}
}
