package good

type Hint struct {
	Kind int
	At   int64
}

const (
	WakeNow = iota + 1
	WakeAt
	WakePark
)

func Now() Hint       { return Hint{Kind: WakeNow} }
func At(t int64) Hint { return Hint{Kind: WakeAt, At: t} }
func Park() Hint      { return Hint{Kind: WakePark} }

type worker struct{ pending []int }

// Step drains one unit and parks when idle: the wake-hint contract.
func (w *worker) Step(now int64) Hint {
	if len(w.pending) > 0 {
		w.pending = w.pending[1:]
		return Now()
	}
	return Park()
}

type poller struct{}

// Step always reports a deadline: pacing, not spinning.
func (poller) Step(now int64) Hint { return At(now + 8) }

type delegator struct{ inner worker }

// Step delegates; the callee's hint is not statically WakeNow.
func (d *delegator) Step(now int64) Hint { return d.inner.Step(now) }

type paced struct{}

// Step is WakeNow on every path but justified: the directive carries
// the reason.
//
//omegalint:allow wakehint stepped only under the sim adversary, which paces every WakeNow
func (paced) Step(now int64) Hint { return Now() }

type notAMachine struct{}

// Step without a Hint result is outside the contract.
func (notAMachine) Step(now int64) {}
