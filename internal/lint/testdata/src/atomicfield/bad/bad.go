package bad

import "sync/atomic"

// gauge mixes atomic and plain access to ticks, and lays the 64-bit
// field out at a 32-bit-misaligned offset.
type gauge struct {
	ready bool
	ticks uint64 // want `64-bit atomic field ticks sits at offset 4 under 32-bit layout`
}

func bump(g *gauge) {
	atomic.AddUint64(&g.ticks, 1)
}

func racyRead(g *gauge) uint64 {
	return g.ticks // want `non-atomic access to field ticks`
}

func racyWrite(g *gauge) {
	g.ticks = 0 // want `non-atomic access to field ticks`
}
