package allow

import "sync/atomic"

type gauge struct {
	ticks uint64
}

func bump(g *gauge) {
	atomic.AddUint64(&g.ticks, 1)
}

// reset's plain store predates publication; the directive's reason
// records why the suppression is sound.
func reset(g *gauge) {
	//omegalint:allow atomicfield pre-publication store before the gauge is shared
	g.ticks = 0
}

// An allow directive without a reason is itself a finding and
// suppresses nothing.
func bad(g *gauge) {
	//omegalint:allow atomicfield // want `allow directive for "atomicfield" needs a reason`
	g.ticks = 1 // want `non-atomic access to field ticks`
}
