package good

import "sync/atomic"

// gauge leads with its 64-bit atomic field, so it is aligned under
// every layout, and every access goes through sync/atomic.
type gauge struct {
	ticks uint64
	ready bool
}

func bump(g *gauge) {
	atomic.AddUint64(&g.ticks, 1)
}

func read(g *gauge) uint64 {
	return atomic.LoadUint64(&g.ticks)
}

// newGauge's keyed composite literal is initialization, not access.
func newGauge() *gauge {
	return &gauge{ticks: 0, ready: true}
}

// plain is never touched atomically, so plain access stays legal.
type plain struct{ n int }

func inc(p *plain) { p.n++ }

// typed uses the atomic wrapper types: safe by construction and
// runtime-aligned, so the field may sit anywhere.
type typed struct {
	ready bool
	hits  atomic.Uint64
}

func bumpTyped(t *typed) { t.hits.Add(1) }
