package bad

type reg struct{ v uint64 }

func (r *reg) Write(pid int, v uint64) { r.v = v }

type area struct {
	data []reg
	meta reg
	hdr  reg
}

// headerFirst publishes the completion header before the data words: a
// reader that learns the descriptor can see a half-written area.
func headerFirst(a *area, pid int) {
	a.hdr.Write(pid, 1)
	for w := range a.data {
		a.data[w].Write(pid, uint64(w)) // want `data store after header store`
	}
	a.meta.Write(pid, 2) // want `meta store after header store`
}

// metaFirst writes the metadata before the data words.
func metaFirst(a *area, pid int) {
	a.meta.Write(pid, 2)
	a.data[0].Write(pid, 7) // want `data store after meta store`
}
