package allow

type reg struct{ v uint64 }

func (r *reg) Write(pid int, v uint64) { r.v = v }

type area struct {
	data []reg
	meta reg
	hdr  reg
}

// repair tombstones the header before rewriting the area; the
// suppression carries its justification, and the unsuppressed meta
// store after the header still fires.
func repair(a *area, pid int) {
	a.hdr.Write(pid, 0)
	//omegalint:allow puborder header tombstone precedes the rewrite; readers treat 0 as absent
	a.data[0].Write(pid, 3)
	a.meta.Write(pid, 1) // want `meta store after header store`
}
