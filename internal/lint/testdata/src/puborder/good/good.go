package good

type reg struct{ v uint64 }

func (r *reg) Write(pid int, v uint64) { r.v = v }

type area struct {
	data []reg
	meta reg
	hdr  reg
}

// publish follows the protocol: data words, then metadata, then the
// completion header.
func publish(a *area, pid int, words []uint64) {
	for w, v := range words {
		a.data[w].Write(pid, v)
	}
	a.meta.Write(pid, uint64(len(words)))
	a.hdr.Write(pid, 1)
}

// branchy's stores sit in mutually exclusive arms: they are unordered
// and never paired.
func branchy(a *area, pid int, fresh bool) {
	if fresh {
		a.hdr.Write(pid, 1)
	} else {
		a.data[0].Write(pid, 7)
	}
}

// unrelated Write methods without a data/meta/hdr receiver chain are
// not publication stores.
func unrelated(r *reg, pid int) {
	r.Write(pid, 3)
}
