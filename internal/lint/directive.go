package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"omegasm/internal/lint/analysis"
)

// allowPrefix introduces a suppression directive:
//
//	//omegalint:allow <analyzer> <reason>
//
// On a line of its own the directive suppresses the named analyzer on
// that line and the next; as an end-of-line comment it suppresses the
// line it trails. Placed before the package clause it suppresses the
// analyzer for the whole file. The reason is mandatory: a directive
// without one is itself a diagnostic, so every suppression in the tree
// carries its justification.
const allowPrefix = "//omegalint:allow"

// allowDirective is one parsed //omegalint:allow comment.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	reason   string
	// line is the directive's own source line.
	line int
	// fileWide marks directives placed before the package clause.
	fileWide bool
	// file is the token.File the directive appears in.
	file *token.File
}

// parseAllow parses c as an allow directive, or returns ok == false.
// The reason runs to the end of the comment or to an embedded "//"
// (which lets test fixtures carry a trailing "// want" expectation in
// the same physical comment).
func parseAllow(c *ast.Comment) (d allowDirective, ok bool) {
	rest, found := strings.CutPrefix(c.Text, allowPrefix)
	if !found {
		return d, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return d, false // e.g. //omegalint:allowx
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	d.pos = c.Pos()
	if len(fields) > 0 {
		d.analyzer = fields[0]
	}
	if len(fields) > 1 {
		d.reason = strings.Join(fields[1:], " ")
	}
	return d, true
}

// allowIndex answers "is this diagnostic suppressed?" for one package
// and one analyzer.
type allowIndex struct {
	// lines maps token.File -> suppressed line set.
	lines map[*token.File]map[int]bool
	// files holds token.Files suppressed wholesale.
	files map[*token.File]bool
}

// buildAllowIndex collects the directives of pass's files that name
// pass.Analyzer, reporting malformed ones (missing or empty reason) as
// diagnostics of that analyzer.
func buildAllowIndex(pass *analysis.Pass) *allowIndex {
	idx := &allowIndex{
		lines: map[*token.File]map[int]bool{},
		files: map[*token.File]bool{},
	}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		pkgLine := tf.Line(f.Package)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseAllow(c)
				if !ok || d.analyzer != pass.Analyzer.Name {
					continue
				}
				if d.reason == "" {
					pass.Reportf(d.pos, "allow directive for %q needs a reason: //omegalint:allow %s <reason>",
						pass.Analyzer.Name, pass.Analyzer.Name)
					continue
				}
				line := tf.Line(c.Pos())
				if line < pkgLine {
					idx.files[tf] = true
					continue
				}
				if idx.lines[tf] == nil {
					idx.lines[tf] = map[int]bool{}
				}
				idx.lines[tf][line] = true
				idx.lines[tf][line+1] = true
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic at pos is covered by a
// directive.
func (idx *allowIndex) suppressed(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	if idx.files[tf] {
		return true
	}
	return idx.lines[tf][tf.Line(pos)]
}

// runWithAllows runs one analyzer over pass, filtering diagnostics
// through the package's //omegalint:allow directives. Malformed
// directives naming the analyzer surface as diagnostics regardless.
func runWithAllows(pass *analysis.Pass) error {
	report := pass.Report
	var malformed []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { malformed = append(malformed, d) }
	idx := buildAllowIndex(pass)
	pass.Report = func(d analysis.Diagnostic) {
		if !idx.suppressed(pass.Fset, d.Pos) {
			report(d)
		}
	}
	for _, d := range malformed {
		report(d)
	}
	_, err := pass.Analyzer.Run(pass)
	pass.Report = report
	return err
}
