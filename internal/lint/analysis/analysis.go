// Package analysis is a minimal, offline reimplementation of the
// golang.org/x/tools/go/analysis contract: an Analyzer is a named check
// with a Run function, a Pass hands Run one type-checked package, and
// diagnostics flow through Pass.Report.
//
// The module vendors no third-party code and builds without network
// access, so the real x/tools module is not available; this package
// keeps the same shape (Analyzer/Pass/Diagnostic, analysistest-style
// fixtures) so the analyzers in internal/lint port to the upstream API
// mechanically if the dependency ever lands. One deliberate divergence:
// instead of x/tools' serialized Facts, a Pass carries the whole
// type-checked Program, because every omegalint invocation loads the
// full module in-process anyway (see internal/lint/loader).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //omegalint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by `omegalint -help`.
	Doc string
	// Run applies the check to one package and reports diagnostics via
	// pass.Report. The result value is unused by omegalint (kept for
	// x/tools API shape).
	Run func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package plus the surrounding
// program.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file of the program.
	Fset *token.FileSet
	// Files are the package's parsed files (tests excluded).
	Files []*ast.File
	// Pkg is the package's type-checker object.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking results.
	TypesInfo *types.Info
	// TypesSizes gives sizes/offsets under the primary target
	// (gc/amd64).
	TypesSizes types.Sizes
	// Program is the full loaded module, for whole-program checks such
	// as atomicfield's cross-package field census (the stand-in for
	// x/tools Facts).
	Program *Program
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Category optionally sub-classifies the finding within an analyzer.
	Category string
	// Message states the violated invariant.
	Message string
}

// Program is the set of type-checked packages one omegalint invocation
// loaded (the whole module, or one test fixture).
type Program struct {
	// Fset is shared by all packages, so types.Object identity holds
	// across them.
	Fset *token.FileSet
	// Packages lists the loaded packages in deterministic (sorted
	// import path) order.
	Packages []*PackageInfo
}

// PackageInfo is one loaded package of a Program.
type PackageInfo struct {
	// Path is the import path ("omegasm/internal/engine").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checker package.
	Pkg *types.Package
	// TypesInfo holds type-checking results for Files.
	TypesInfo *types.Info
}
