package lint

import (
	"go/ast"
	"go/types"

	"omegasm/internal/lint/analysis"
)

// WakeHint checks engine.Machine Step implementations — methods named
// Step whose single result is a type named Hint — for wake-hint
// hygiene: every return path must produce an explicit hint (no naked
// returns, no zero Hint{} literals, which the engines treat as
// malformed), and at least one path must yield something other than
// WakeNow. A Step that answers WakeNow on every path pins the engine in
// a busy-poll: the machine is re-stepped immediately forever and can
// never park or sleep to a deadline, which is exactly the regression
// the wake-driven engine layer exists to prevent.
var WakeHint = &analysis.Analyzer{
	Name: "wakehint",
	Doc: "engine.Machine Step implementations must return an explicit wake hint on " +
		"every path and must have at least one non-WakeNow path",
	Run: runWakeHint,
}

// runWakeHint scans every Step method with a Hint result.
func runWakeHint(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Step" || fd.Recv == nil {
				continue
			}
			if !returnsHint(pass.TypesInfo, fd) {
				continue
			}
			checkStepMethod(pass, fd)
		}
	}
	return nil, nil
}

// returnsHint reports whether fd's signature is func(...) Hint for a
// named type called Hint.
func returnsHint(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "Hint"
}

// checkStepMethod audits the return statements of one Step method.
// Returns inside nested function literals belong to those literals and
// are skipped.
func checkStepMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})
	if len(returns) == 0 {
		// Body must diverge (panic/infinite loop) for the method to
		// compile; an endless Step monopolizes the engine.
		pass.Reportf(fd.Name.Pos(),
			"Step has no return path; every Step must yield a wake hint to its engine")
		return
	}
	allNow := true
	for _, r := range returns {
		if len(r.Results) == 0 {
			pass.Reportf(r.Pos(),
				"naked return in Step; return an explicit wake hint (engine.Now/At/Park)")
			allNow = false // already reported; one finding per defect
			continue
		}
		switch hintReturnKind(pass.TypesInfo, r.Results[0]) {
		case hintZero:
			pass.Reportf(r.Pos(),
				"Step returns a zero Hint, which no engine accepts as a wake hint; return engine.Now(), engine.At(t) or engine.Park()")
			allNow = false // already reported; one finding per defect
		case hintNow:
			// Counts toward the busy-poll audit below.
		default:
			allNow = false
		}
	}
	if allNow {
		pass.Reportf(fd.Name.Pos(),
			"Step returns WakeNow on every path; the machine can never idle (busy-poll) — park or report a deadline when there is no work")
	}
}

// hintReturnKind classifies one returned hint expression.
type hintKindClass int

const (
	// hintOther is a hint the analyzer cannot or need not classify
	// (delegated calls, variables, At/Park constructors).
	hintOther hintKindClass = iota
	// hintNow is a WakeNow hint (engine.Now() or Hint{Kind: WakeNow}).
	hintNow
	// hintZero is a zero composite literal Hint{}.
	hintZero
)

// hintReturnKind inspects a return expression.
func hintReturnKind(info *types.Info, e ast.Expr) hintKindClass {
	switch e := e.(type) {
	case *ast.CallExpr:
		if name, ok := calleeName(info, e); ok && name == "Now" {
			return hintNow
		}
	case *ast.CompositeLit:
		if len(e.Elts) == 0 {
			return hintZero
		}
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				break
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
				if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "WakeNow" {
					return hintNow
				}
				if v, ok := kv.Value.(*ast.SelectorExpr); ok && v.Sel.Name == "WakeNow" {
					return hintNow
				}
				return hintOther
			}
		}
	}
	return hintOther
}

// calleeName extracts the function name of a direct call: Now() or
// engine.Now().
func calleeName(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Func); ok {
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.PkgName); ok {
				return fun.Sel.Name, true
			}
		}
	}
	return "", false
}
