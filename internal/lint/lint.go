// Package lint is omegalint: a suite of static analyzers that
// machine-check the repository invariants its correctness arguments
// lean on but the compiler cannot see. Four analyzers:
//
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     must be accessed through sync/atomic everywhere, and 64-bit
//     atomic fields must be 8-byte aligned on 32-bit layouts (the mmap
//     cross-process substrate of ROADMAP item 4 makes misalignment a
//     real fault, not a style nit).
//   - puborder: publication areas are written data -> meta -> header,
//     so a published descriptor can never name a half-written area
//     (the Disk-Paxos pointer-to-value indirection of internal/
//     consensus).
//   - simdet: code reachable from the deterministic simulator must be
//     free of wall-clock reads, global math/rand, goroutine spawns and
//     unordered map iteration, so seeded replays stay byte-identical.
//   - wakehint: engine.Machine Step implementations must return a real
//     wake hint on every path and must be able to go idle (no
//     always-WakeNow busy-poll regressions).
//
// Each analyzer honors //omegalint:allow <analyzer> <reason>
// suppression directives (see directive.go); an empty reason is itself
// a finding. The framework under internal/lint/analysis mirrors the
// golang.org/x/tools/go/analysis API shape so the suite can move to the
// upstream multichecker if that dependency ever becomes available to
// this module.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"omegasm/internal/lint/analysis"
)

// Analyzers returns the full omegalint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicField,
		PubOrder,
		SimDet,
		WakeHint,
	}
}

// Finding is one resolved diagnostic of a suite run.
type Finding struct {
	// Analyzer names the check that fired.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as loaded.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the violated invariant.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunSuite applies each analyzer to the target packages, honoring
// allow directives, and returns the surviving findings sorted by
// position. prog must be the full loaded program — whole-program checks
// (atomicfield) read it even when targets narrows what is reported; nil
// targets means every package of prog.
func RunSuite(prog *analysis.Program, targets []*analysis.PackageInfo, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if targets == nil {
		targets = prog.Packages
	}
	var findings []Finding
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       prog.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				TypesInfo:  pkg.TypesInfo,
				TypesSizes: types.SizesFor("gc", "amd64"),
				Program:    prog,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := prog.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: name,
					File:     p.Filename,
					Line:     p.Line,
					Col:      p.Column,
					Message:  d.Message,
				})
			}
			if err := runWithAllows(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// posLess orders two token positions within one file set.
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}
