// Package analysistest runs one analyzer over fixture packages under a
// testdata tree and compares its diagnostics against // want
// expectations, in the style of golang.org/x/tools/go/analysis/
// analysistest (reimplemented offline, see internal/lint/analysis).
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	x := m[k] // want `regex`
//
// with one backquoted (or double-quoted) regular expression per
// expected diagnostic on that line. The run fails on diagnostics
// without a matching expectation and on expectations nothing matched.
// Allow-directive fixtures combine both in one physical comment:
// "//omegalint:allow name reason // want `...`".
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"omegasm/internal/lint"
	"omegasm/internal/lint/analysis"
	"omegasm/internal/lint/loader"
)

// wantRe extracts the expectation list of one comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics against the fixtures' expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	for _, pattern := range patterns {
		runOne(t, testdata, a, pattern)
	}
}

// runOne handles a single fixture package.
func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pattern string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	l := loader.New(loader.Config{Root: src})
	info, err := l.LoadDir(pattern, filepath.Join(src, filepath.FromSlash(pattern)))
	if err != nil {
		t.Fatalf("%s: load: %v", pattern, err)
	}
	prog := l.Program()
	findings, err := lint.RunSuite(prog, []*analysis.PackageInfo{info}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: run: %v", pattern, err)
	}

	expectations, err := collectExpectations(prog, info)
	if err != nil {
		t.Fatalf("%s: %v", pattern, err)
	}

	for _, f := range findings {
		if !matchExpectation(expectations, f) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pattern, filepath.Base(f.File), f.Line, f.Message)
		}
	}
	sort.Slice(expectations, func(i, j int) bool {
		if expectations[i].file != expectations[j].file {
			return expectations[i].file < expectations[j].file
		}
		return expectations[i].line < expectations[j].line
	})
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pattern, filepath.Base(e.file), e.line, e.re)
		}
	}
}

// matchExpectation marks and reports the first unmatched expectation
// covering the finding.
func matchExpectation(expectations []*expectation, f lint.Finding) bool {
	for _, e := range expectations {
		if e.matched || e.line != f.Line || filepath.Base(e.file) != filepath.Base(f.File) {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectExpectations parses the // want comments of the fixture.
func collectExpectations(prog *analysis.Program, info *analysis.PackageInfo) ([]*expectation, error) {
	var out []*expectation
	for _, f := range info.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				res, err := parseWant(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parseWant splits a want payload into its quoted regular expressions.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want: expressions must be `...` or \"...\" quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("want: unterminated expression in %q", s)
		}
		re, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("want: %w", err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want: empty expectation")
	}
	return out, nil
}
