package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"omegasm/internal/lint/analysis"
)

// AtomicField checks that cross-goroutine fields stay on one side of
// the atomic fence: any struct field that is passed to a sync/atomic
// function anywhere in the program must never be read or written
// non-atomically anywhere else, and any field used with a 64-bit
// sync/atomic function must be 8-byte aligned even under 32-bit struct
// layout rules (offset computed with gc/386 sizes), the layout
// discipline the padded census slots follow and the future mmap
// cross-process substrate requires. Fields of the atomic.Int64-style
// wrapper types are exempt from the alignment rule: the runtime aligns
// those itself.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "fields accessed via sync/atomic must be accessed that way everywhere, " +
		"and 64-bit atomic fields must be 8-byte aligned under 32-bit layout",
	Run: runAtomicField,
}

// atomicFuncs maps sync/atomic function names to whether they operate
// on a 64-bit word.
var atomicFuncs = map[string]bool{
	"LoadInt32": false, "LoadInt64": true, "LoadUint32": false, "LoadUint64": true,
	"LoadUintptr": false, "LoadPointer": false,
	"StoreInt32": false, "StoreInt64": true, "StoreUint32": false, "StoreUint64": true,
	"StoreUintptr": false, "StorePointer": false,
	"AddInt32": false, "AddInt64": true, "AddUint32": false, "AddUint64": true,
	"AddUintptr": false,
	"AndInt32":   false, "AndInt64": true, "AndUint32": false, "AndUint64": true,
	"AndUintptr": false,
	"OrInt32":    false, "OrInt64": true, "OrUint32": false, "OrUint64": true,
	"OrUintptr": false,
	"SwapInt32": false, "SwapInt64": true, "SwapUint32": false, "SwapUint64": true,
	"SwapUintptr": false, "SwapPointer": false,
	"CompareAndSwapInt32": false, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": false, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": false, "CompareAndSwapPointer": false,
}

// atomicUse records how a field is used atomically across the program.
type atomicUse struct {
	// is64 is set when any use goes through a 64-bit atomic function.
	is64 bool
	// recv is the struct type owning the field, for offset computation.
	recv types.Type
	// index is the selection's field index path into recv.
	index []int
	// pos is one representative atomic-use site.
	pos token.Pos
}

// runAtomicField implements the analyzer: a program-wide census of
// atomically accessed fields, then a per-package scan for stray plain
// accesses, plus the 32-bit alignment audit for the 64-bit ones.
func runAtomicField(pass *analysis.Pass) (any, error) {
	fields, sanctioned := atomicFieldCensus(pass.Program)

	// Plain-access scan over this pass's package only (each package
	// reports its own files; the census above is program-wide).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			obj, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := fields[obj]; !tracked || sanctioned[sel.Pos()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"non-atomic access to field %s, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic",
				obj.Name())
			return true
		})
	}

	// Alignment audit: reported once, by the package that defines the
	// field, so the whole-program census yields each finding exactly once.
	sizes32 := types.SizesFor("gc", "386")
	var objs []*types.Var
	for obj := range fields {
		if fields[obj].is64 && obj.Pkg() == pass.Pkg {
			objs = append(objs, obj)
		}
	}
	// Deterministic report order.
	sortVarsByPos(pass.Fset, objs)
	for _, obj := range objs {
		u := fields[obj]
		off, ok := fieldOffset(sizes32, u.recv, u.index)
		if !ok {
			continue
		}
		if off%8 != 0 {
			pass.Reportf(obj.Pos(),
				"64-bit atomic field %s sits at offset %d under 32-bit layout; "+
					"move it to an 8-byte-aligned offset (lead the struct with it or pad) per the census slot convention",
				obj.Name(), off)
		}
	}
	return nil, nil
}

// atomicFieldCensus walks every package of prog and returns the struct
// fields whose address is passed to a sync/atomic call, together with
// the set of selector positions that are sanctioned (are that atomic
// argument).
func atomicFieldCensus(prog *analysis.Program) (map[*types.Var]atomicUse, map[token.Pos]bool) {
	fields := map[*types.Var]atomicUse{}
	sanctioned := map[token.Pos]bool{}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				name, ok := syncAtomicCallee(info, call)
				if !ok {
					return true
				}
				is64, known := atomicFuncs[name]
				if !known {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				sel, ok := addr.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				obj, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				sanctioned[sel.Pos()] = true
				u := fields[obj]
				u.is64 = u.is64 || is64
				u.recv = s.Recv()
				u.index = s.Index()
				u.pos = sel.Pos()
				fields[obj] = u
				return true
			})
		}
	}
	return fields, sanctioned
}

// syncAtomicCallee returns the function name when call is a direct call
// of a sync/atomic package-level function.
func syncAtomicCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldOffset computes the byte offset of the field reached from recv
// via the selection index path, under the given size model.
func fieldOffset(sizes types.Sizes, recv types.Type, index []int) (int64, bool) {
	t := recv
	var off int64
	for _, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return 0, false
		}
		flds := make([]*types.Var, st.NumFields())
		for k := range flds {
			flds[k] = st.Field(k)
		}
		offs := sizes.Offsetsof(flds)
		off += offs[i]
		t = st.Field(i).Type()
	}
	return off, true
}

// sortVarsByPos orders vars by source position for deterministic
// reporting.
func sortVarsByPos(fset *token.FileSet, vs []*types.Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && posLess(fset, vs[j].Pos(), vs[j-1].Pos()); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
