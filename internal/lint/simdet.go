package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"omegasm/internal/lint/analysis"
)

// SimDet checks that code reachable from the deterministic simulator
// stays a pure function of (seed, config): no wall-clock reads, no
// global math/rand, no bare goroutine spawns (all concurrency must be
// engine machines the seeded adversary schedules), and no iteration
// over a map in unsorted order unless the loop body is provably
// order-insensitive (pure key collection for later sorting, keyed map/
// index writes, deletes, and commutative accumulator updates).
//
// Scope: packages whose import path ends in one of simdetPackages, plus
// files whose path ends in one of simdetFiles in any package. The live
// engine (internal/engine/live.go) is wall-clock by design and carries
// a file-wide allow directive rather than an exemption here, so the
// suppression — like every other — is visible in the source it covers.
var SimDet = &analysis.Analyzer{
	Name: "simdet",
	Doc: "sim-reachable code must be deterministic: no wall clock, no global rand, " +
		"no goroutine spawns, no unordered map iteration",
	Run: runSimDet,
}

// simdetPackages lists the import-path suffixes of packages that are
// wholly sim-reachable.
var simdetPackages = []string{
	"internal/engine",
	"internal/consensus",
	"internal/sched",
	"internal/core",
	"omegasm/load",
	"omegasm/check",
}

// simdetFiles lists file-path suffixes that are sim-reachable (or must
// emit byte-stable output) regardless of package: the public simulator
// surface and the bench-table renderer the docs-sync CI gate replays.
var simdetFiles = []string{
	"sim.go",
	"omegabench/readme.go",
	"campaign.go",
	"faults.go",
	"shmem/fault.go",
	"san/gray.go",
}

// forbiddenTimeFuncs are the time package functions that read or
// schedule against the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package functions that construct
// seeded generators rather than draw from the global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// simdetPackageScoped reports whether the whole package is
// sim-reachable.
func simdetPackageScoped(pkgPath string) bool {
	for _, s := range simdetPackages {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// simdetFileScoped reports whether the single file is in scope by
// name.
func simdetFileScoped(filename string) bool {
	fn := strings.ReplaceAll(filename, "\\", "/")
	for _, s := range simdetFiles {
		if fn == s || strings.HasSuffix(fn, "/"+s) {
			return true
		}
	}
	return false
}

// runSimDet applies the determinism checks to every in-scope file.
func runSimDet(pass *analysis.Pass) (any, error) {
	pkgScoped := simdetPackageScoped(pass.Pkg.Path())
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if !pkgScoped && !simdetFileScoped(filename) {
			continue
		}
		checkSimDetFile(pass, f, path.Base(filename))
	}
	return nil, nil
}

// checkSimDetFile scans one in-scope file.
func checkSimDetFile(pass *analysis.Pass, f *ast.File, base string) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"goroutine spawn in sim-reachable code; schedule an engine.Machine so the seeded adversary controls the interleaving")
		case *ast.CallExpr:
			if pkg, name, ok := packageLevelCallee(info, n); ok {
				switch {
				case pkg == "time" && forbiddenTimeFuncs[name]:
					pass.Reportf(n.Pos(),
						"time.%s in sim-reachable code reads the wall clock; use the engine's virtual now", name)
				case pkg == "math/rand" && !allowedRandFuncs[name]:
					pass.Reportf(n.Pos(),
						"global math/rand.%s in sim-reachable code; draw from a seeded *rand.Rand instead", name)
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !orderInsensitiveBody(info, n) {
					pass.Reportf(n.Pos(),
						"iteration over map %s in sim-reachable code is unordered; iterate sorted keys (or keep the body order-insensitive)",
						types.ExprString(n.X))
				}
			}
		}
		return true
	})
}

// packageLevelCallee resolves a call of the form pkgname.Func and
// returns the package path and function name.
func packageLevelCallee(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// orderInsensitiveBody reports whether a range-over-map body cannot
// leak iteration order: every statement (recursively through if/block
// nesting) is a keyed map or index write, a delete, a pure key
// collection append, a commutative accumulator update, or a continue.
// Anything order-dependent — emitting inside the loop, early return or
// break, appending values — fails the test.
func orderInsensitiveBody(info *types.Info, rng *ast.RangeStmt) bool {
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			return assignOK(info, s, keyName)
		case *ast.IncDecStmt:
			_, isIndex := s.X.(*ast.IndexExpr)
			_, isIdent := s.X.(*ast.Ident)
			return isIdent || isIndex
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
			}
			return false
		case *ast.IfStmt:
			if s.Init != nil && !stmtOK(s.Init) {
				return false
			}
			if !blockStmtsOK(s.Body, stmtOK) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return blockStmtsOK(e, stmtOK)
			case *ast.IfStmt:
				return stmtOK(e)
			default:
				return false
			}
		case *ast.BlockStmt:
			return blockStmtsOK(s, stmtOK)
		case *ast.BranchStmt:
			return s.Tok.String() == "continue" && s.Label == nil
		case *ast.DeclStmt:
			return true
		default:
			return false
		}
	}
	return blockStmtsOK(rng.Body, stmtOK)
}

// blockStmtsOK applies stmtOK to every statement of b.
func blockStmtsOK(b *ast.BlockStmt, stmtOK func(ast.Stmt) bool) bool {
	for _, s := range b.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// assignOK accepts keyed writes (m[k] = v), commutative op-assignments
// to plain variables (sum += x, flags |= f, n-- forms), short variable
// declarations of locals, and key-collection appends
// (keys = append(keys, k) where the appended values mention only the
// ranged key — the collect-then-sort idiom).
func assignOK(info *types.Info, s *ast.AssignStmt, keyName string) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok.String() {
	case "=":
		if _, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			return true
		}
		// xs = append(xs, <key-only exprs>...)
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
					for _, a := range call.Args[1:] {
						if !mentionsOnlyKey(a, keyName) {
							return false
						}
					}
					lhs, lok := s.Lhs[0].(*ast.Ident)
					base, bok := call.Args[0].(*ast.Ident)
					return lok && bok && lhs.Name == base.Name
				}
			}
		}
		return false
	case ":=":
		return true
	case "+=", "-=", "|=", "&=", "^=", "*=":
		_, ok := s.Lhs[0].(*ast.Ident)
		return ok
	default:
		return false
	}
}

// mentionsOnlyKey reports whether expr references no identifier other
// than the ranged key (conversions and literals around it are fine).
func mentionsOnlyKey(expr ast.Expr, keyName string) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent {
			if id.Name != keyName && !isTypeName(id) {
				ok = false
			}
		}
		return ok
	})
	return ok && keyName != ""
}

// isTypeName reports whether the identifier names a type (allowed in
// conversions like int(k)).
func isTypeName(id *ast.Ident) bool {
	switch id.Name {
	case "int", "int8", "int16", "int32", "int64",
		"uint", "uint8", "uint16", "uint32", "uint64", "uintptr",
		"float32", "float64", "string", "byte", "rune":
		return true
	}
	return false
}
