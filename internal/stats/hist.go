package stats

import (
	"fmt"
	"math/bits"
)

// The histogram's bucket layout: values below histSubCount land in
// unit-width buckets (exact); above, each power-of-two octave is split
// into histSubCount log-spaced buckets, so a bucket's width is at most
// lo/histSubCount and the midpoint representative is within
// 1/(2*histSubCount) ≈ 1.6% of any value it absorbs. That bound is what
// TestHistogramQuantileErrorBound checks against exact sorted quantiles.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histBuckets is the bucket count needed to cover all of int64: the
	// highest bucket index is 57*histSubCount + 2*histSubCount - 1 for
	// v = MaxInt64 (shift 63-histSubBits-1, sub-index up to 2*histSubCount).
	histBuckets = (64 - histSubBits) * histSubCount
)

// Histogram is a mergeable log-bucketed histogram of non-negative int64
// observations (latencies in nanoseconds or virtual ticks). Recording is
// O(1), memory is a fixed ~15KB regardless of sample size, two
// histograms recorded on different runners merge by bucket-wise
// addition, and any quantile is recoverable with bounded relative error
// (≤ 1/(2*histSubCount) from bucketing, exact below histSubCount) — the
// properties the open-loop load harness needs to aggregate per-request
// latencies from millions of requests without retaining them.
//
// The zero Histogram is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// histBucketOf maps a non-negative value to its bucket index.
func histBucketOf(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits - 1
	return shift*histSubCount + int(v>>shift)
}

// histBucketMid returns the representative (midpoint) value of bucket b.
func histBucketMid(b int) float64 {
	if b < histSubCount {
		return float64(b)
	}
	shift := b/histSubCount - 1
	m := int64(b%histSubCount + histSubCount)
	lo := m << shift
	width := int64(1) << shift
	return float64(lo) + float64(width-1)/2
}

// Record adds one observation. Negative values clamp to zero (a latency
// measured across a clock adjustment must not corrupt the layout).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucketOf(v)]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Merge adds other's observations into h. Merging is exact: the merged
// histogram is identical to one that recorded both sample streams.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of recorded observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the exact smallest recorded observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean of recorded observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the p-th percentile (0..100) of the recorded sample:
// the representative value of the bucket holding the nearest-rank
// observation, clamped to the exact observed min/max. The answer is
// within 1/(2*histSubCount) relative error of the exact sorted-sample
// percentile (exact for values below histSubCount). Returns 0 on an
// empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return float64(h.min)
	}
	if p >= 100 {
		return float64(h.max)
	}
	// Nearest-rank on the bucketed sample: the ceil(p/100 * count)-th
	// observation in bucket order.
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			v := histBucketMid(b)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
	}
	return float64(h.max)
}

// String summarizes the histogram for debugging output.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%.0f p99=%.0f max=%d",
		h.count, h.Min(), h.Quantile(50), h.Quantile(99), h.Max())
}
