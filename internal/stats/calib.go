package stats

import "math"

// Calibration metrics for the sim↔live loop: the load harness runs one
// workload spec against the deterministic simulator and the live store,
// then quantifies how well the sim's predicted percentiles track the
// measured ones (MAPE, PearsonR) and how evenly the service treats its
// SLO classes (JainFairness). The shapes follow the observe-predict-
// calibrate loop of deterministic cluster simulators: predictions are
// only trustworthy when their error against live measurements is
// tracked run over run.

// MAPE returns the mean absolute percentage error of pred against
// actual, in percent: mean over i of |pred[i]-actual[i]| / |actual[i]|.
// Pairs whose actual value is zero are skipped (a zero denominator says
// nothing about relative error); it returns NaN when no usable pair
// remains or the slices differ in length.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * sum / float64(n)
}

// PearsonR returns the Pearson correlation coefficient of the paired
// samples xs and ys: +1 for a perfect increasing linear relationship,
// 0 for none. It returns NaN when fewer than two pairs exist, the
// lengths differ, or either sample has zero variance.
func PearsonR(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// JainFairness returns Jain's fairness index over the non-negative
// allocations xs: (Σx)² / (n·Σx²), which is 1 when every class gets an
// identical share and 1/n when a single class gets everything. It
// returns 1 for an empty or all-zero sample (nothing is being divided
// unfairly).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
