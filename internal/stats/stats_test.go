package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v", s.P50)
	}
	// Sample stddev of 1..5 is sqrt(2.5).
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(sorted, -5); got != 10 {
		t.Errorf("p-5 = %v", got)
	}
	if got := Percentile(sorted, 50); got != 25 { // interpolated
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

// TestPercentileWithinRange: property — any percentile of a sample lies
// within [min, max], and percentiles are monotone in p.
func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p := float64(pRaw) / 2.55 // 0..100
		v := Percentile(xs, p)
		if v < xs[0] || v > xs[len(xs)-1] {
			return false
		}
		return Percentile(xs, p) <= Percentile(xs, math.Min(p+10, 100))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "n=3") {
		t.Errorf("summary string %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Header:  []string{"a", "long-column", "c"},
		Caption: "the caption",
	}
	tbl.AddRow("1", "2")                // short row padded
	tbl.AddRow("123456", "x", "y", "z") // long row truncated to header width
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, 2 rows, caption
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "long-column") {
		t.Errorf("header line %q", lines[1])
	}
	if lines[5] != "the caption" {
		t.Errorf("caption line %q", lines[5])
	}
	// Column alignment: all data lines at least as wide as the header's
	// first two columns.
	if len(lines[3]) < len("a  long-column") {
		t.Errorf("row line too short: %q", lines[3])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.50) != "1.5" {
		t.Errorf("F(1.50) = %q", F(1.50))
	}
	if F(2.00) != "2" {
		t.Errorf("F(2.00) = %q", F(2.00))
	}
	if F(0) != "0" {
		t.Errorf("F(0) = %q", F(0))
	}
	if I(-3) != "-3" {
		t.Errorf("I(-3) = %q", I(-3))
	}
	if U(18446744073709551615) != "18446744073709551615" {
		t.Errorf("U(max) = %q", U(18446744073709551615))
	}
}
