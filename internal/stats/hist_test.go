package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if q := h.Quantile(50); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if m := h.Mean(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestHistogramExactBelowLinearRange(t *testing.T) {
	// Values below histSubCount land in unit buckets: quantiles are exact.
	var h Histogram
	for v := int64(0); v < histSubCount; v++ {
		h.Record(v)
	}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		exact := Percentile(seq(histSubCount), p)
		got := h.Quantile(p)
		if math.Abs(got-exact) > 1 {
			t.Errorf("p%v = %v, exact %v", p, got, exact)
		}
	}
	if h.Min() != 0 || h.Max() != histSubCount-1 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func seq(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

// TestHistogramBucketsContinuous checks that the bucket index function
// is monotone and gap-free across the linear/log boundary and octave
// boundaries, so no value can fall between buckets.
func TestHistogramBucketsContinuous(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, histSubCount - 1, histSubCount, 2*histSubCount - 1,
		2 * histSubCount, 1 << 20, math.MaxInt64 / 2, math.MaxInt64} {
		b := histBucketOf(v)
		if b <= last && v != 0 {
			t.Fatalf("bucket(%d) = %d not past %d", v, b, last)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		last = b
	}
	// Exhaustively: consecutive values never skip more than one bucket
	// and never decrease, over the first few octaves.
	prev := histBucketOf(0)
	for v := int64(1); v < 1<<12; v++ {
		b := histBucketOf(v)
		if b < prev || b > prev+1 {
			t.Fatalf("bucket(%d) = %d after bucket(%d) = %d", v, b, v-1, prev)
		}
		prev = b
	}
}

// TestHistogramQuantileErrorBound is the satellite's quantile check: for
// heavy-tailed samples, every reported quantile is within the layout's
// relative error bound of the exact sorted-sample quantile.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Lognormal-ish latencies spanning ~5 orders of magnitude.
		v := int64(math.Exp(rng.NormFloat64()*2 + 8))
		h.Record(v)
		xs = append(xs, float64(v))
	}
	sort.Float64s(xs)
	// Bucket midpoint error ≤ 1/(2*histSubCount); allow the same again
	// for the rank-convention difference between nearest-rank (histogram)
	// and interpolation (Percentile) — adjacent order statistics of a
	// 20k-sample differ by far less than a bucket width at these ranks.
	tol := 2.0 / float64(2*histSubCount)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		exact := Percentile(xs, p)
		got := h.Quantile(p)
		if math.Abs(got-exact) > exact*tol+1 {
			t.Errorf("p%v = %v, exact %v (tol %.1f%%)", p, got, exact, 100*tol)
		}
	}
}

func TestHistogramMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge: count/sum/min/max %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(), both.Count(), both.Sum(), both.Min(), both.Max())
	}
	for _, p := range []float64{1, 50, 99, 99.9} {
		if a.Quantile(p) != both.Quantile(p) {
			t.Errorf("p%v: merged %v vs combined %v", p, a.Quantile(p), both.Quantile(p))
		}
	}
	// Merging an empty or nil histogram changes nothing.
	before := a.Count()
	a.Merge(&Histogram{})
	a.Merge(nil)
	if a.Count() != before {
		t.Errorf("merge of empty changed count: %d -> %d", before, a.Count())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

func TestSummaryP95P999(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..1000
	}
	s := Summarize(xs)
	if math.Abs(s.P95-950.05) > 0.5 {
		t.Errorf("p95 = %v", s.P95)
	}
	if math.Abs(s.P999-999.001) > 0.5 {
		t.Errorf("p999 = %v", s.P999)
	}
	if s.P50 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if got := MAPE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("perfect MAPE = %v", got)
	}
	// Zero actuals are skipped, not divided by.
	if got := MAPE([]float64{5, 110}, []float64{0, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE with zero actual = %v, want 10", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); !math.IsNaN(got) {
		t.Errorf("MAPE with no usable pair = %v, want NaN", got)
	}
	if got := MAPE([]float64{1, 2}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("MAPE with mismatched lengths = %v, want NaN", got)
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := PearsonR(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := PearsonR(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := PearsonR(xs, []float64{5, 5, 5, 5}); !math.IsNaN(got) {
		t.Errorf("zero-variance sample = %v, want NaN", got)
	}
	if got := PearsonR([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("single pair = %v, want NaN", got)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{3, 3, 3}); math.Abs(got-1) > 1e-9 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("single hog of 4 = %v, want 0.25", got)
	}
	if got := JainFairness(nil); got != 1 {
		t.Errorf("empty = %v, want 1", got)
	}
	if got := JainFairness([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero = %v, want 1", got)
	}
}
