// Package stats provides the small statistics toolkit used by the
// experiment harness: summaries over repeated seeded runs (election
// latency distributions, write-rate series) and series formatting for the
// regenerated tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	// P50..P999 are interpolated percentiles of the sample; P999 is the
	// 99.9th (the deep-tail latency percentile the load harness reports).
	P50, P90, P95, P99, P999 float64
}

// Summarize computes a Summary; it returns the zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	s.P999 = Percentile(sorted, 99.9)
	return s
}

// Percentile returns the p-th percentile (0..100) of a sorted sample,
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.0f p50=%.0f mean=%.1f p90=%.0f p99=%.0f max=%.0f",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.P99, s.Max)
}

// Table is a simple fixed-column text table, the output format of every
// regenerated figure/table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row; cells beyond the header width are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render renders the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// F formats a float with trailing-zero trimming, for table cells.
func F(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }

// U formats a uint64 for table cells.
func U(x uint64) string { return fmt.Sprintf("%d", x) }
