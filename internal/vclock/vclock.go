// Package vclock models logical time and the paper's timer theory.
//
// The AWB2 assumption (Section 2.3) is a statement about timers, not about
// process speeds: the duration T_R(tau, x) that really elapses between
// setting a timer to x at time tau and its expiry must, after some finite
// point (tau_f, x_f), dominate a function f(tau, x) that is eventually
// non-decreasing (property f1) and unbounded in x (property f2). Before
// that point the timer may behave arbitrarily, and even afterwards T_R may
// oscillate freely above f (paper Figure 1).
//
// This package provides:
//
//   - Time/Duration: virtual time in abstract ticks.
//   - FFunc: the dominated function f with its (tau_f, x_f) bounds.
//   - Behavior: generators of T_R for a process's timer, including exact
//     timers, asymptotically well-behaved timers with adversarial finite
//     prefixes and oscillation, legal-but-nasty behaviors (e.g. rounding
//     expiries to multiples of a period, used by the Figure 4 lower-bound
//     adversary), and broken timers that violate AWB2 for negative tests.
package vclock

// Time is a point in virtual time, in ticks. Tick 0 is the start of a run.
type Time = int64

// Duration is a span of virtual time in ticks.
type Duration = int64

// FFunc is the function f(tau, x) of the paper's asymptotically
// well-behaved timer definition, together with the bounds after which its
// monotonicity (f1) is guaranteed.
type FFunc interface {
	// Eval returns f(tau, x) in ticks.
	Eval(tau Time, x uint64) Duration
	// Bounds returns (tau_f, x_f): for tau2 >= tau1 >= tau_f and
	// x2 >= x1 >= x_f, Eval(tau2, x2) >= Eval(tau1, x1).
	Bounds() (tauF Time, xF uint64)
}

// Affine is f(tau, x) = A*x + B, independent of tau. It satisfies (f1)
// everywhere and (f2) whenever A >= 1.
type Affine struct {
	A Duration // slope per timeout unit, >= 1 for (f2)
	B Duration // constant offset, >= 0
}

var _ FFunc = Affine{}

// Eval implements FFunc.
func (f Affine) Eval(_ Time, x uint64) Duration {
	return f.A*Duration(x) + f.B
}

// Bounds implements FFunc. Affine is monotone from the origin.
func (f Affine) Bounds() (Time, uint64) { return 0, 0 }

// Warmup wraps an FFunc so that it only "settles" after TauF: before TauF
// it may report smaller values, exercising the f1 bounds machinery. It
// models an f whose early behavior is irregular, as the definition allows.
type Warmup struct {
	F    FFunc
	TauF Time
	XF   uint64
	// Dip is subtracted from F before the bounds (clamped at 1), making
	// the prefix genuinely non-monotone.
	Dip Duration
}

var _ FFunc = Warmup{}

// Eval implements FFunc.
func (w Warmup) Eval(tau Time, x uint64) Duration {
	v := w.F.Eval(tau, x)
	if tau < w.TauF || x < w.XF {
		v -= w.Dip
		if v < 1 {
			v = 1
		}
	}
	return v
}

// Bounds implements FFunc.
func (w Warmup) Bounds() (Time, uint64) {
	ft, fx := w.F.Bounds()
	if w.TauF > ft {
		ft = w.TauF
	}
	if w.XF > fx {
		fx = w.XF
	}
	return ft, fx
}
