package vclock

import "math/rand"

// Behavior produces the real expiry duration T_R(tau, x) of one process's
// timer: the ticks that elapse between setting the timer to x at time tau
// and its expiry. Behaviors may be stateful and randomized (seeded), but a
// given Behavior instance is consulted from a single scheduler goroutine.
type Behavior interface {
	// Expire returns T_R(tau, x) >= 1.
	Expire(tau Time, x uint64) Duration
}

// AWBBehavior additionally exposes the function f it eventually dominates,
// so experiments can verify property (f3) of the AWB2 assumption.
type AWBBehavior interface {
	Behavior
	// Dominates returns the dominated f and the time from which the
	// domination guarantee holds (the behavior's own settle point; it is
	// >= f's tau_f).
	Dominates() (f FFunc, settle Time)
}

// Exact is the ideal timer: T_R(tau, x) = Scale*x + Floor. It trivially
// dominates Affine{Scale, Floor}.
type Exact struct {
	Scale Duration // ticks per timeout unit (>= 1)
	Floor Duration // constant offset (>= 0)
}

var _ AWBBehavior = Exact{}

// Expire implements Behavior.
func (e Exact) Expire(_ Time, x uint64) Duration {
	d := e.Scale*Duration(x) + e.Floor
	if d < 1 {
		d = 1
	}
	return d
}

// Dominates implements AWBBehavior.
func (e Exact) Dominates() (FFunc, Time) {
	return Affine{A: max64(e.Scale, 1), B: e.Floor}, 0
}

// Adversarial is the fully general asymptotically well-behaved timer of
// the paper: before Settle it returns arbitrary (seeded) durations in
// [1, PrefixMax]; from Settle on it returns F(tau,x) plus a non-negative
// oscillation bounded by OscAmp, so it dominates F without ever being
// monotone itself (paper Figure 1).
type Adversarial struct {
	F         FFunc
	Settle    Time     // end of the arbitrary prefix
	PrefixMax Duration // max arbitrary duration during the prefix (>= 1)
	OscAmp    Duration // oscillation amplitude above F after Settle
	Rng       *rand.Rand
}

var _ AWBBehavior = (*Adversarial)(nil)

// Expire implements Behavior.
func (a *Adversarial) Expire(tau Time, x uint64) Duration {
	if tau < a.Settle {
		if a.PrefixMax <= 1 {
			return 1
		}
		return 1 + a.Rng.Int63n(a.PrefixMax)
	}
	d := a.F.Eval(tau, x)
	if a.OscAmp > 0 {
		d += a.Rng.Int63n(a.OscAmp + 1)
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Dominates implements AWBBehavior.
func (a *Adversarial) Dominates() (FFunc, Time) {
	ft, _ := a.F.Bounds()
	return a.F, max64(a.Settle, ft)
}

// PhaseLocked is a *legal* AWB timer that the Figure 4 lower-bound
// adversary uses: expiry durations are F(tau,x) rounded UP to the next
// multiple of Period (plus Offset modulo Period). Rounding up keeps the
// behavior above F, so AWB2 holds; yet every expiry lands on the same
// phase of a Period-step cycle, which lets the adversary keep a
// bounded-memory strawman observing a repeating shared-memory state
// (Theorem 5's indistinguishability argument, operationalized).
type PhaseLocked struct {
	F      FFunc
	Period Duration // > 0
	Offset Duration // target phase in [0, Period)
}

var _ AWBBehavior = PhaseLocked{}

// Expire implements Behavior. The returned duration d satisfies
// (tau + d) mod Period == Offset and d >= F(tau, x).
func (p PhaseLocked) Expire(tau Time, x uint64) Duration {
	d := p.F.Eval(tau, x)
	if d < 1 {
		d = 1
	}
	expiry := tau + d
	rem := (expiry - p.Offset) % p.Period
	if rem < 0 {
		rem += p.Period
	}
	if rem != 0 {
		expiry += p.Period - rem
	}
	return expiry - tau
}

// Dominates implements AWBBehavior.
func (p PhaseLocked) Dominates() (FFunc, Time) {
	ft, _ := p.F.Bounds()
	return p.F, ft
}

// Broken violates AWB2: it always expires after exactly Short ticks, no
// matter the timeout value, so no unbounded f can be dominated. Used in
// negative tests showing the algorithms genuinely need the assumption.
type Broken struct {
	Short Duration // constant expiry (>= 1)
}

var _ Behavior = Broken{}

// Expire implements Behavior.
func (b Broken) Expire(Time, uint64) Duration {
	if b.Short < 1 {
		return 1
	}
	return b.Short
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
