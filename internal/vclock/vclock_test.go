package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAffineF1 checks property (f1): f is non-decreasing in both
// arguments past its bounds.
func TestAffineF1(t *testing.T) {
	f := Affine{A: 4, B: 1}
	check := func(t1, t2 int32, x1, x2 uint16) bool {
		tau1, tau2 := Time(t1), Time(t2)
		if tau2 < tau1 {
			tau1, tau2 = tau2, tau1
		}
		xa, xb := uint64(x1), uint64(x2)
		if xb < xa {
			xa, xb = xb, xa
		}
		return f.Eval(tau2, xb) >= f.Eval(tau1, xa)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestAffineF2 checks property (f2): f is unbounded in x.
func TestAffineF2(t *testing.T) {
	f := Affine{A: 1, B: 0}
	prev := Duration(-1)
	for x := uint64(1); x < 1<<20; x *= 2 {
		v := f.Eval(0, x)
		if v <= prev {
			t.Fatalf("f not strictly growing at x=%d: %d <= %d", x, v, prev)
		}
		prev = v
	}
}

func TestAffineBounds(t *testing.T) {
	tau, x := Affine{A: 2, B: 3}.Bounds()
	if tau != 0 || x != 0 {
		t.Errorf("Affine.Bounds() = (%d,%d), want (0,0)", tau, x)
	}
}

func TestWarmup(t *testing.T) {
	inner := Affine{A: 4, B: 10}
	w := Warmup{F: inner, TauF: 100, XF: 5, Dip: 8}
	if got, want := w.Eval(50, 3), inner.Eval(50, 3)-8; got != want {
		t.Errorf("prefix not dipped: got %d, want %d", got, want)
	}
	if got := w.Eval(200, 10); got != 4*10+10 {
		t.Errorf("settled value wrong: %d", got)
	}
	// Dip clamps at 1.
	w2 := Warmup{F: Affine{A: 1, B: 0}, TauF: 100, XF: 0, Dip: 1000}
	if got := w2.Eval(0, 1); got != 1 {
		t.Errorf("dip must clamp at 1, got %d", got)
	}
	ft, fx := w.Bounds()
	if ft != 100 || fx != 5 {
		t.Errorf("Warmup.Bounds() = (%d,%d)", ft, fx)
	}
	// Bounds take the max with the inner f's bounds.
	w3 := Warmup{F: Warmup{F: Affine{}, TauF: 500, XF: 9}, TauF: 100, XF: 5}
	ft, fx = w3.Bounds()
	if ft != 500 || fx != 9 {
		t.Errorf("nested Bounds() = (%d,%d), want (500,9)", ft, fx)
	}
}

func TestExactDominatesItsF(t *testing.T) {
	e := Exact{Scale: 4, Floor: 1}
	f, settle := e.Dominates()
	for x := uint64(1); x < 100; x++ {
		for _, tau := range []Time{settle, settle + 100, settle + 10000} {
			if e.Expire(tau, x) < f.Eval(tau, x) {
				t.Fatalf("Exact violates (f3) at tau=%d x=%d", tau, x)
			}
		}
	}
	if e.Expire(0, 0) < 1 {
		t.Error("Expire must be >= 1")
	}
}

// TestAdversarialF3 checks the central AWB2 property on the adversarial
// behavior: after Settle, every expiry dominates f; before, some expiries
// fall below it (the arbitrary prefix).
func TestAdversarialF3(t *testing.T) {
	a := &Adversarial{
		F:         Affine{A: 4, B: 1},
		Settle:    1000,
		PrefixMax: 8,
		OscAmp:    32,
		Rng:       rand.New(rand.NewSource(1)),
	}
	f, settle := a.Dominates()
	sawBelow := false
	for i := 0; i < 500; i++ {
		tau := Time(i)
		if a.Expire(tau, 100) < f.Eval(tau, 100) {
			sawBelow = true
		}
	}
	if !sawBelow {
		t.Error("prefix never misbehaved; PrefixMax=8 vs f(100)=401 should")
	}
	for i := 0; i < 500; i++ {
		tau := settle + Time(i*7)
		for _, x := range []uint64{1, 5, 50} {
			if got := a.Expire(tau, x); got < f.Eval(tau, x) {
				t.Fatalf("(f3) violated after settle: T_R(%d,%d)=%d < f=%d", tau, x, got, f.Eval(tau, x))
			}
		}
	}
}

func TestAdversarialOscillates(t *testing.T) {
	a := &Adversarial{
		F:      Affine{A: 4, B: 1},
		Settle: 0,
		OscAmp: 16,
		Rng:    rand.New(rand.NewSource(2)),
	}
	first := a.Expire(10, 10)
	varies := false
	for i := 0; i < 200; i++ {
		if a.Expire(10, 10) != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("oscillation amplitude 16 produced constant expiries")
	}
}

func TestAdversarialPrefixMinimum(t *testing.T) {
	a := &Adversarial{
		F:         Affine{A: 1, B: 0},
		Settle:    100,
		PrefixMax: 1, // degenerate: must clamp to exactly 1
		Rng:       rand.New(rand.NewSource(3)),
	}
	for i := 0; i < 50; i++ {
		if got := a.Expire(Time(i), 10); got != 1 {
			t.Fatalf("degenerate prefix expiry = %d, want 1", got)
		}
	}
}

// TestPhaseLockedDominatesAndAligns: the Figure 4 adversary must stay a
// legal AWB behavior (rounding UP above f) while landing every expiry on
// its phase.
func TestPhaseLockedDominatesAndAligns(t *testing.T) {
	p := PhaseLocked{F: Affine{A: 4, B: 1}, Period: 4, Offset: 2}
	f, _ := p.Dominates()
	for tau := Time(0); tau < 200; tau++ {
		for _, x := range []uint64{1, 3, 17} {
			d := p.Expire(tau, x)
			if d < f.Eval(tau, x) {
				t.Fatalf("PhaseLocked below f at tau=%d x=%d", tau, x)
			}
			if (tau+d-2)%4 != 0 {
				t.Fatalf("expiry %d not phase-aligned (tau=%d d=%d)", tau+d, tau, d)
			}
		}
	}
}

func TestPhaseLockedNegativeRemainder(t *testing.T) {
	// Offset larger than the first expiry exercises the negative-modulo
	// branch.
	p := PhaseLocked{F: Affine{A: 1, B: 0}, Period: 10, Offset: 9}
	d := p.Expire(0, 1)
	if (d-9)%10 != 0 {
		t.Fatalf("expiry %d not aligned to offset 9 mod 10", d)
	}
	if d < 1 {
		t.Fatal("duration must be >= 1")
	}
}

func TestBroken(t *testing.T) {
	b := Broken{Short: 3}
	for _, x := range []uint64{1, 100, 1 << 40} {
		if got := b.Expire(0, x); got != 3 {
			t.Fatalf("Broken.Expire(%d) = %d, want 3", x, got)
		}
	}
	if got := (Broken{Short: 0}).Expire(0, 1); got != 1 {
		t.Errorf("Broken with Short<1 must clamp to 1, got %d", got)
	}
}

// TestBehaviorsNeverReturnZero: property — every behavior returns a
// positive duration for any inputs (the scheduler relies on it for
// progress).
func TestBehaviorsNeverReturnZero(t *testing.T) {
	behaviors := []Behavior{
		Exact{Scale: 0, Floor: 0},
		&Adversarial{F: Affine{A: 0, B: 0}, Settle: 10, PrefixMax: 0, Rng: rand.New(rand.NewSource(4))},
		PhaseLocked{F: Affine{A: 0, B: 0}, Period: 3},
		Broken{},
	}
	f := func(tRaw int32, x uint16) bool {
		tau := Time(tRaw)
		if tau < 0 {
			tau = -tau
		}
		for _, b := range behaviors {
			if b.Expire(tau, uint64(x)) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
