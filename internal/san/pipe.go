package san

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the pipelined disk I/O path shared by the register layer
// (san.go) and Disk Paxos (diskpaxos.go). Before it, every quorum
// operation spawned one goroutine per disk and waited for the whole
// fan-out to wind down before the caller could issue its next operation:
// slot N fully completed before slot N+1 started, and each goroutine +
// response channel was a fresh allocation on the commit hot path.
//
// Now each disk owns one long-lived pump goroutine fed by a bounded
// request queue (the in-flight window). Submitting a quorum operation
// enqueues one request per disk and returns to gathering acks; the next
// operation's requests can enter the windows while this one's stragglers
// are still in flight. Three properties the consensus layers rely on:
//
//   - Order preservation. A pump serves its queue FIFO, so one disk
//     acknowledges requests in submission order and a register's
//     sequence-tagged writes land in order (Disk.WriteBlock would mask
//     reordering anyway; FIFO makes the common case exact).
//
//   - Pipelined latency. A request's simulated latency is charged from
//     its submission time, not from when the pump reaches it: completion
//     time is max(previous completion, submitted + drawn latency), the
//     service curve of a full-duplex link with command queuing. Queued
//     requests overlap their transfer latencies instead of summing them.
//
//   - Straggler accounting. A quorum call returns at majority, but its
//     per-disk requests remain live until every disk acknowledged. A
//     reference count hands the call object (requests, ack channel and
//     result buffers) back to a pool only when the last ack lands, so the
//     hot path recycles instead of allocating, without a use-after-free
//     when a slow disk acks an operation the caller finished long ago.
//
// Scatter-gather: a multi-block read (Disk Paxos reading every process's
// block) is one request and one latency draw per disk, not one per
// block — the command-queuing model again: one round trip carries the
// whole batch of read commands.

// pipeWindow bounds the in-flight requests per disk. Submission blocks
// when a disk's window is full, which backpressures a fast proposer
// instead of queueing unboundedly behind a slow disk.
const pipeWindow = 64

type pipeKind uint8

const (
	opRead   pipeKind = iota // single block: results in rseq, rval
	opGather                 // scatter-gather read: results in seqs, vals
	opWrite                  // single block write of (seq, val)
)

// pipeOp is one per-disk request of a quorum call. The ops live inside
// their quorumCall and are reused across calls; every request field is
// rewritten at submission.
type pipeOp struct {
	kind      pipeKind
	name      string    // opRead / opWrite block name
	names     []string  // opGather block names; aliased, caller-immutable
	seq, val  uint64    // opWrite payload
	submitted time.Time // latency accounting starts at submission

	rseq, rval uint64   // opRead result
	seqs, vals []uint64 // opGather results, len(names), buffers reused
	err        error
	call       *quorumCall
}

// quorumCall is the bookkeeping for one fan-out: one request per disk,
// a buffered ack channel sized so no pump ever blocks sending, and the
// straggler reference count. pending starts at len(ops)+1 — one token
// per disk plus one for the submitter — and whoever drops it to zero
// recycles the call.
type quorumCall struct {
	ops     []pipeOp
	done    chan *pipeOp
	pending atomic.Int32
}

var callPool sync.Pool

// getCall returns a call sized for disks in-flight requests. Calls whose
// size does not match the pooled one (clusters of different disk counts
// in one process) fall back to a fresh allocation.
func getCall(disks int) *quorumCall {
	c, _ := callPool.Get().(*quorumCall)
	if c == nil || len(c.ops) != disks {
		c = &quorumCall{
			ops:  make([]pipeOp, disks),
			done: make(chan *pipeOp, disks),
		}
		for i := range c.ops {
			c.ops[i].call = c
		}
	}
	c.pending.Store(int32(disks) + 1)
	return c
}

// release drops one reference; the last holder drains any unread acks
// and pools the call. The submitter must copy results out of received
// ops before calling release — afterwards the buffers may be rewritten
// by the next call.
func (c *quorumCall) release() {
	if c.pending.Add(-1) != 0 {
		return
	}
	for {
		select {
		case <-c.done:
		default:
			callPool.Put(c)
			return
		}
	}
}

// enqueue hands op to the disk's pump, lazily starting it. After Close
// the request is served synchronously on the caller (the unpipelined
// path), so late teardown-ordering submissions degrade instead of
// deadlocking on a dead pump.
func (d *Disk) enqueue(op *pipeOp) {
	d.pipeMu.RLock()
	if d.pipeClosed {
		d.pipeMu.RUnlock()
		d.sleep()
		d.runOp(op)
		op.call.done <- op
		op.call.release()
		return
	}
	d.pipeOnce.Do(func() {
		d.reqs = make(chan *pipeOp, pipeWindow)
		go d.pump(d.reqs)
	})
	d.reqs <- op
	d.pipeMu.RUnlock()
}

// Close retires the disk's pump goroutine; buffered requests are still
// served and acknowledged before it exits. Submissions racing Close hold
// the read lock, so Close cannot strand a request between the closed
// check and the channel send; submissions after Close take the
// synchronous fallback in enqueue. Idempotent.
func (d *Disk) Close() {
	d.pipeMu.Lock()
	defer d.pipeMu.Unlock()
	if d.pipeClosed {
		return
	}
	d.pipeClosed = true
	if d.reqs != nil {
		close(d.reqs)
	}
}

// pump serves one disk's request queue FIFO. Latency is charged from
// each request's submission time, so in-flight requests pipeline: the
// pump sleeps only for the portion of a request's latency that has not
// already elapsed while it was queued.
func (d *Disk) pump(reqs chan *pipeOp) {
	for op := range reqs {
		if lat := d.draw(); lat > 0 {
			if wait := time.Until(op.submitted.Add(lat)); wait > 0 {
				time.Sleep(wait)
			}
		}
		d.runOp(op)
		// Ack before release: release may recycle the call (if the
		// submitter already detached), and then the send would land on a
		// reused channel.
		op.call.done <- op
		op.call.release()
	}
}

// runOp executes the block operation itself; the latency was already
// charged by the pump (or enqueue's fallback path).
func (d *Disk) runOp(op *pipeOp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		op.err = ErrCrashed
		return
	}
	op.err = nil
	switch op.kind {
	case opRead:
		b := d.blocks[op.name]
		if b.hasPrev && d.grayStaleRead() {
			op.rseq, op.rval = b.prevSeq, b.prevVal
		} else {
			op.rseq, op.rval = b.seq, b.val
		}
	case opGather:
		for i, name := range op.names {
			b := d.blocks[name]
			if b.hasPrev && d.grayStaleRead() {
				op.seqs[i], op.vals[i] = b.prevSeq, b.prevVal
			} else {
				op.seqs[i], op.vals[i] = b.seq, b.val
			}
		}
	case opWrite:
		if d.grayDropWrite() {
			return // gray fault: acknowledged but never persisted
		}
		if b, ok := d.blocks[op.name]; !ok || op.seq > b.seq {
			d.blocks[op.name] = block{seq: op.seq, val: op.val, prevSeq: b.seq, prevVal: b.val, hasPrev: ok}
		}
	}
}

// writeQuorum writes (name, seq, val) through every disk's pipeline and
// returns once a majority acknowledged; ErrNoQuorum if too many disks
// failed. Minority stragglers keep draining in the background under the
// call's reference count.
func writeQuorum(disks []*Disk, name string, seq, val uint64) error {
	c := getCall(len(disks))
	now := time.Now()
	for i, d := range disks {
		op := &c.ops[i]
		op.kind, op.name, op.seq, op.val = opWrite, name, seq, val
		op.submitted = now
		d.enqueue(op)
	}
	need, got, failed := len(disks)/2+1, 0, 0
	var err error
	for got < need {
		op := <-c.done
		if op.err != nil {
			if failed++; failed > len(disks)-need {
				err = ErrNoQuorum
				break
			}
			continue
		}
		got++
	}
	c.release()
	return err
}

// readQuorum reads name from a majority of disks through their
// pipelines and returns the (seq, val) with the highest sequence seen.
func readQuorum(disks []*Disk, name string) (seq, val uint64, err error) {
	c := getCall(len(disks))
	now := time.Now()
	for i, d := range disks {
		op := &c.ops[i]
		op.kind, op.name = opRead, name
		op.submitted = now
		d.enqueue(op)
	}
	need, got, failed := len(disks)/2+1, 0, 0
	for got < need {
		op := <-c.done
		if op.err != nil {
			if failed++; failed > len(disks)-need {
				c.release()
				return 0, 0, ErrNoQuorum
			}
			continue
		}
		got++
		if op.rseq >= seq {
			seq, val = op.rseq, op.rval
		}
	}
	c.release()
	return seq, val, nil
}

// gatherQuorum reads all names from a majority of disks — one
// scatter-gather request (and one latency draw) per disk — and merges
// highest-sequence-wins per name into bestSeq/bestVal, which the caller
// provides with len(names). Missing blocks merge as zero.
func gatherQuorum(disks []*Disk, names []string, bestSeq, bestVal []uint64) error {
	c := getCall(len(disks))
	now := time.Now()
	for i, d := range disks {
		op := &c.ops[i]
		op.kind, op.names = opGather, names
		if cap(op.seqs) < len(names) {
			op.seqs = make([]uint64, len(names))
			op.vals = make([]uint64, len(names))
		} else {
			op.seqs = op.seqs[:len(names)]
			op.vals = op.vals[:len(names)]
		}
		op.submitted = now
		d.enqueue(op)
	}
	need, got, failed := len(disks)/2+1, 0, 0
	for got < need {
		op := <-c.done
		if op.err != nil {
			if failed++; failed > len(disks)-need {
				c.release()
				return ErrNoQuorum
			}
			continue
		}
		got++
		for p := range names {
			if op.seqs[p] >= bestSeq[p] {
				bestSeq[p], bestVal[p] = op.seqs[p], op.vals[p]
			}
		}
	}
	c.release()
	return nil
}
