package san

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newDP(t *testing.T, n, disks int) (*DiskPaxos, []*Disk) {
	t.Helper()
	ds := fastDisks(disks)
	dp, err := NewDiskPaxos(ds, n, "t")
	if err != nil {
		t.Fatal(err)
	}
	return dp, ds
}

func TestDiskPaxosValidation(t *testing.T) {
	if _, err := NewDiskPaxos(nil, 3, "x"); err == nil {
		t.Error("no disks accepted")
	}
	if _, err := NewDiskPaxos(fastDisks(3), 0, "x"); err == nil {
		t.Error("zero processes accepted")
	}
	dp, _ := newDP(t, 2, 3)
	if _, err := dp.Propose(0, 1, nil, ProposeConfig{}); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestDiskPaxosStableLeaderDecides(t *testing.T) {
	dp, _ := newDP(t, 3, 3)
	v, err := dp.Propose(1, 111, func() int { return 1 }, ProposeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 111 {
		t.Fatalf("decided %d, want 111", v)
	}
	// A follower learns the same decision.
	v2, err := dp.Propose(2, 222, func() int { return 1 }, ProposeConfig{Backoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 111 {
		t.Fatalf("follower learned %d, want 111", v2)
	}
}

// TestDiskPaxosAgreementUnderContention: every process proposes
// concurrently with a self-proclaiming oracle — safety must hold.
func TestDiskPaxosAgreementUnderContention(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		dp, _ := newDP(t, 3, 5)
		var wg sync.WaitGroup
		results := make([]uint16, 3)
		errs := make([]error, 3)
		for i := 0; i < 3; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i], errs[i] = dp.Propose(i, uint16(100+i),
					func() int { return i }, ProposeConfig{MaxRounds: 2000})
			}()
		}
		wg.Wait()
		var decided []uint16
		for i := 0; i < 3; i++ {
			if errs[i] == nil {
				decided = append(decided, results[i])
			}
		}
		if len(decided) == 0 {
			t.Fatal("nobody decided under contention")
		}
		for _, v := range decided {
			if v != decided[0] {
				t.Fatalf("agreement violated: %v", decided)
			}
			if v < 100 || v > 102 {
				t.Fatalf("validity violated: %d", v)
			}
		}
	}
}

func TestDiskPaxosSurvivesMinorityDiskCrash(t *testing.T) {
	dp, ds := newDP(t, 3, 5)
	ds[0].Crash()
	ds[1].Crash()
	v, err := dp.Propose(0, 77, func() int { return 0 }, ProposeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("decided %d", v)
	}
}

func TestDiskPaxosQuorumLoss(t *testing.T) {
	dp, ds := newDP(t, 2, 3)
	for _, d := range ds {
		d.Crash()
	}
	_, err := dp.Propose(0, 1, func() int { return 0 }, ProposeConfig{})
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestDiskPaxosValueRange(t *testing.T) {
	// All uint16 values are representable; the packing must round-trip
	// the extremes.
	for _, v := range []uint16{0, 1, 1<<16 - 1} {
		m, b, inp := unpackDBlock(packDBlock(1<<24-1, 12345, v))
		if m != 1<<24-1 || b != 12345 || inp != v {
			t.Fatalf("roundtrip (%d,%d,%d)", m, b, inp)
		}
	}
}

func TestDiskPaxosRoundsExhausted(t *testing.T) {
	dp, _ := newDP(t, 2, 3)
	// The oracle never names this process and nobody else proposes.
	_, err := dp.Propose(0, 5, func() int { return 1 },
		ProposeConfig{MaxRounds: 3, Backoff: time.Microsecond})
	if !errors.Is(err, ErrRoundsExhausted) {
		t.Fatalf("err = %v, want ErrRoundsExhausted", err)
	}
}

// TestDiskPaxosValueAdoption: a proposer that wrote an accepted value and
// stopped must have its value adopted by the next ballot.
func TestDiskPaxosValueAdoption(t *testing.T) {
	dp, _ := newDP(t, 3, 3)
	// Process 0 accepts (bal=b0, inp=55) but "crashes" before committing:
	// simulate by doing its phase writes manually.
	if err := dp.writeMajority(0, dp.blockName(0), packDBlock(1, 1, 55)); err != nil {
		t.Fatal(err)
	}
	v, err := dp.Propose(1, 99, func() int { return 1 }, ProposeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 55 {
		t.Fatalf("decided %d; must adopt the possibly-chosen 55", v)
	}
}
