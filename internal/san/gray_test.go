package san

import "testing"

func TestGrayStaleAckDropsWrites(t *testing.T) {
	d := NewDisk(Latency{}, 1)
	d.SetGray(GrayFault{StaleAckP: 1.0})
	if err := d.WriteBlock("B", 1, 42); err != nil {
		t.Fatalf("gray write must still ack: %v", err)
	}
	seq, val, err := d.ReadBlock("B")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 || val != 0 {
		t.Fatalf("dropped write persisted anyway: seq=%d val=%d", seq, val)
	}
}

func TestGrayStaleReadServesPrevious(t *testing.T) {
	d := NewDisk(Latency{}, 1)
	if err := d.WriteBlock("B", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock("B", 2, 20); err != nil {
		t.Fatal(err)
	}
	d.SetGray(GrayFault{StaleReadP: 1.0})
	seq, val, err := d.ReadBlock("B")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || val != 10 {
		t.Fatalf("stale read = (seq %d, val %d), want previous (1, 10)", seq, val)
	}
	// A block with no predecessor has nothing stale to serve.
	if err := d.WriteBlock("C", 1, 7); err != nil {
		t.Fatal(err)
	}
	// The gray write path may drop; StaleAckP is zero here so it persisted.
	seq, val, err = d.ReadBlock("C")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || val != 7 {
		t.Fatalf("first-version read = (seq %d, val %d), want (1, 7)", seq, val)
	}
}

func TestGrayMinorityIsMaskedByQuorum(t *testing.T) {
	// One gray disk out of three: the quorum discipline must still serve
	// exact values (highest sequence wins across a majority).
	disks := []*Disk{NewDisk(Latency{}, 1), NewDisk(Latency{}, 2), NewDisk(Latency{}, 3)}
	disks[0].SetGray(GrayFault{StaleAckP: 1.0, StaleReadP: 1.0})
	defer func() {
		for _, d := range disks {
			d.Close()
		}
	}()
	m, err := NewDiskMem(2, disks)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Word(0, "HB", 0)
	for v := uint64(1); v <= 20; v++ {
		r.Write(0, v)
		if got := r.Read(1); got != v {
			t.Fatalf("quorum read = %d, want %d despite one gray disk", got, v)
		}
	}
}
