// Package san simulates the deployment the paper motivates in its
// introduction: "distributed systems made up of computers that communicate
// through a network of attached disks ... a storage area network (SAN)
// that implements a shared memory abstraction" (paper Section 1, with
// references [1], [4], [10], [18]).
//
// We do not have a hardware SAN; the substitution (recorded in DESIGN.md)
// is a set of simulated network-attached disks with seeded, heavy-tailed
// access latency and crash faults. A shared register is replicated across
// all disks and accessed with the classic single-writer quorum discipline:
//
//   - Write: tag the value with the writer's monotone sequence number,
//     write to every disk, return once a majority acknowledged.
//   - Read: read from a majority, return the value with the highest
//     sequence number.
//
// With a single writer per register (the paper's 1WnR model) this yields
// regular register semantics, which suffices for the Omega algorithms: the
// proofs only need that a read sees either the latest completed write or
// the value of an overlapping one, both of which keep the PROGRESS /
// handshake freshness arguments intact. Disk crashes below a majority are
// masked; the substrate surfaces ErrNoQuorum if too many disks fail.
//
// DiskMem implements shmem.Mem, so the core algorithms run over the SAN
// unchanged — this is the live-runtime (goroutine) substrate used by the
// sanpaxos example and the T6 experiment.
package san

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/shmem"
)

// ErrNoQuorum is returned (via panic recovery in Reg, see below) when a
// majority of disks is unreachable. The experiments keep disk failures
// below a majority; breaching it is a configuration error.
var ErrNoQuorum = errors.New("san: majority of disks unreachable")

// ErrCrashed is returned by operations on a crashed disk.
var ErrCrashed = errors.New("san: disk crashed")

// Latency draws per-operation disk latencies.
type Latency struct {
	Base   time.Duration // minimum latency
	Jitter time.Duration // uniform extra
	SpikeP float64       // probability of a spike
	Spike  time.Duration // spike magnitude (uniform up to)
}

func (l Latency) draw(rng *rand.Rand) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter) + 1))
	}
	if l.SpikeP > 0 && rng.Float64() < l.SpikeP {
		d += time.Duration(rng.Int63n(int64(l.Spike) + 1))
	}
	return d
}

// Disk is one simulated network-attached disk: a block store keyed by
// register name, with latency and crash faults.
type Disk struct {
	mu      sync.Mutex
	blocks  map[string]block
	crashed bool
	lat     Latency
	rng     *rand.Rand
	rngMu   sync.Mutex

	// Gray-failure model (gray.go); guarded by rngMu with the rng it draws
	// from. grayOn distinguishes "no model" from a zero-valued one.
	gray   GrayFault
	grayOn bool

	// Pipelined access path (see pipe.go): a lazily started pump
	// goroutine serving a bounded FIFO request window. pipeMu orders
	// submissions against Close; ReadBlock/WriteBlock bypass the pipe.
	pipeMu     sync.RWMutex
	pipeOnce   sync.Once
	reqs       chan *pipeOp
	pipeClosed bool
}

type block struct {
	seq uint64
	val uint64
	// The previous version, kept so a gray disk can serve stale reads;
	// hasPrev distinguishes a real predecessor from the zero block.
	prevSeq uint64
	prevVal uint64
	hasPrev bool
}

// NewDisk creates a disk with the given latency model and seed.
func NewDisk(lat Latency, seed int64) *Disk {
	return &Disk{
		blocks: make(map[string]block),
		lat:    lat,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// draw samples one operation's latency from the disk's model, gray
// slow-down included.
func (d *Disk) draw() time.Duration {
	d.rngMu.Lock()
	dur := d.lat.draw(d.rng)
	if d.grayOn {
		dur += d.gray.Slow.draw(d.rng)
	}
	d.rngMu.Unlock()
	return dur
}

func (d *Disk) sleep() {
	if dur := d.draw(); dur > 0 {
		time.Sleep(dur)
	}
}

// Crash fails the disk permanently; subsequent operations error.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = true
}

// Crashed reports whether the disk has failed.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// ReadBlock returns the block's (seq, value), after the disk's latency.
func (d *Disk) ReadBlock(name string) (seq, val uint64, err error) {
	d.sleep()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, 0, ErrCrashed
	}
	b := d.blocks[name]
	if b.hasPrev && d.grayStaleRead() {
		return b.prevSeq, b.prevVal, nil
	}
	return b.seq, b.val, nil
}

// DeleteBlock frees the named block without latency (reclamation is a
// background bookkeeping action, not a quorum operation). Deleting on a
// crashed disk is a no-op. The name must never be written again: a
// re-created block would restart its sequence numbering.
func (d *Disk) DeleteBlock(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.crashed {
		delete(d.blocks, name)
	}
}

// WriteBlock stores (seq, value) if seq is newer, after the disk's
// latency. Stale writes are ignored, which makes retries idempotent.
func (d *Disk) WriteBlock(name string, seq, val uint64) error {
	d.sleep()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.grayDropWrite() {
		return nil // gray fault: acknowledged but never persisted
	}
	if b, ok := d.blocks[name]; !ok || seq > b.seq {
		d.blocks[name] = block{seq: seq, val: val, prevSeq: b.seq, prevVal: b.val, hasPrev: ok}
	}
	return nil
}

// DiskMem is a shared memory replicated over a set of disks.
type DiskMem struct {
	disks  []*Disk
	census *shmem.Census
	count  bool
}

var _ shmem.Mem = (*DiskMem)(nil)

// NewDiskMem builds a replicated memory for n processes over the disks,
// attributing every access in the census. len(disks) should be odd; a
// majority must stay alive.
func NewDiskMem(n int, disks []*Disk) (*DiskMem, error) {
	return newDiskMem(n, disks, true)
}

// NewUncountedDiskMem is NewDiskMem without census instrumentation: no
// per-register tracking and no per-access attribution. A recycling log
// allocates and discards registers continuously, so uninstrumented
// clusters must not pay a global census mutex and map churn per slot.
func NewUncountedDiskMem(n int, disks []*Disk) (*DiskMem, error) {
	return newDiskMem(n, disks, false)
}

func newDiskMem(n int, disks []*Disk, count bool) (*DiskMem, error) {
	if len(disks) < 1 {
		return nil, fmt.Errorf("san: need at least one disk")
	}
	return &DiskMem{
		disks:  disks,
		census: shmem.NewCensus(n, nil),
		count:  count,
	}, nil
}

// Word allocates a disk-replicated register. (The display name is always
// materialized — unlike atomic memory it doubles as the block address on
// every disk — but only counted memories track it in the census.)
func (m *DiskMem) Word(owner int, class string, idx ...int) shmem.Reg {
	name := shmem.RegName(class, idx...)
	r := &sanReg{
		mem:   m,
		owner: owner,
		name:  name,
	}
	if m.count {
		r.stats = m.census.Track(class, name, owner)
	}
	return r
}

// WordRowBlock bulk-allocates rows CLASS[tag0+j][0..n-1] (register i of
// each row owned by process i) over one contiguous backing array — the
// consensus-instance shape a recycling log re-allocates per window
// advance. Block names are still materialized eagerly (they address the
// disks) but the register objects cost three allocations per block.
func (m *DiskMem) WordRowBlock(class string, tag0, k, n int) [][]shmem.Reg {
	backing := make([]sanReg, k*n)
	flat := make([]shmem.Reg, k*n)
	rows := make([][]shmem.Reg, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			r := &backing[j*n+i]
			r.mem = m
			r.owner = i
			r.name = shmem.RegName(class, tag0+j, i)
			if m.count {
				r.stats = m.census.Track(class, r.name, i)
			}
			flat[j*n+i] = r
		}
		rows[j] = flat[j*n : (j+1)*n : (j+1)*n]
	}
	return rows
}

var _ shmem.RowAllocator = (*DiskMem)(nil)

// Census returns the (process-level) access census.
func (m *DiskMem) Census() *shmem.Census { return m.census }

// Discard frees a dead register's disk blocks on every disk and drops
// its census accounting — the sealed-slot reclamation a recycling log
// performs once a checkpoint makes the register unreachable. The name is
// never allocated again, so block deletion cannot alias a live register.
// The register object itself is tombstoned: a stale holder that races
// the reclamation (a lagging replica mid-step on a just-recycled slot)
// gets no-op writes and zero reads instead of re-creating the deleted
// blocks under a dead name.
func (m *DiskMem) Discard(reg shmem.Reg) {
	if r, ok := reg.(*sanReg); ok {
		r.dead.Store(true)
	}
	for _, d := range m.disks {
		d.DeleteBlock(reg.Name())
	}
	if m.count {
		m.census.Forget(reg.Name())
	}
}

var _ shmem.Discarder = (*DiskMem)(nil)

// Quorum returns the majority size.
func (m *DiskMem) Quorum() int { return len(m.disks)/2 + 1 }

// sanReg is one replicated register. The single writer's sequence number
// lives in writerSeq; readers never write.
type sanReg struct {
	mem       *DiskMem
	owner     int
	name      string
	stats     *shmem.RegStats
	writerSeq uint64 // guarded by seqMu; only the owner increments
	seqMu     sync.Mutex

	// readCache holds the highest (seq, val) this register handle has
	// ever returned, so reads are monotone per handle even if quorums
	// answer out of order.
	cacheMu   sync.Mutex
	cacheSeq  uint64
	cacheVal  uint64
	cacheInit bool

	// dead is set by DiskMem.Discard: the register was reclaimed and its
	// blocks deleted. Stale holders' accesses become no-ops so they
	// cannot re-create blocks under the dead name.
	dead atomic.Bool
}

var _ shmem.Reg = (*sanReg)(nil)

func (r *sanReg) Owner() int   { return r.owner }
func (r *sanReg) Name() string { return r.name }

// Read implements shmem.Reg: majority read, highest sequence wins,
// served through the per-disk pipelines (pipe.go) so a hot register
// neither spawns goroutines nor allocates per access. It panics with
// ErrNoQuorum if a majority of disks has crashed — the register
// abstraction has no error channel, and losing the quorum is a
// configuration breach in every experiment that uses the SAN.
func (r *sanReg) Read(pid int) uint64 {
	if r.dead.Load() {
		return 0 // reclaimed register: nothing to read
	}
	bestSeq, bestVal, err := readQuorum(r.mem.disks, r.name)
	if err != nil {
		panic(ErrNoQuorum)
	}
	r.cacheMu.Lock()
	if !r.cacheInit || bestSeq > r.cacheSeq {
		r.cacheSeq, r.cacheVal, r.cacheInit = bestSeq, bestVal, true
	} else {
		bestVal = r.cacheVal
	}
	r.cacheMu.Unlock()
	if r.stats != nil {
		r.mem.census.NoteRead(r.stats, pid)
	}
	return bestVal
}

// Write implements shmem.Reg: tag with the next sequence number, write to
// all disks, return after a majority acknowledged. Panics with ErrNoQuorum
// when a majority of disks has crashed (see Read).
func (r *sanReg) Write(pid int, v uint64) {
	if r.owner != shmem.MultiWriter && pid != r.owner {
		panic(fmt.Sprintf("san: process %d wrote 1WnR register %s owned by %d", pid, r.name, r.owner))
	}
	if r.dead.Load() {
		return // reclaimed register: never re-create its deleted blocks
	}
	r.seqMu.Lock()
	r.writerSeq++
	seq := r.writerSeq
	r.seqMu.Unlock()

	if err := writeQuorum(r.mem.disks, r.name, seq, v); err != nil {
		panic(ErrNoQuorum)
	}
	if r.stats != nil {
		r.mem.census.NoteWrite(r.stats, pid, v)
	}
}
