package san_test

import (
	"testing"
	"time"

	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/san"
)

// TestOmegaOverSAN is the end-to-end integration of the paper's
// motivating deployment: Algorithm 1 running live over disk-replicated
// registers, electing across a disk crash.
func TestOmegaOverSAN(t *testing.T) {
	if testing.Short() {
		t.Skip("live SAN election takes seconds")
	}
	const n, disks = 3, 5
	var ds []*san.Disk
	for d := 0; d < disks; d++ {
		ds = append(ds, san.NewDisk(san.Latency{
			Base:   50 * time.Microsecond,
			Jitter: 100 * time.Microsecond,
		}, int64(d+1)))
	}
	mem, err := san.NewDiskMem(n, ds)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]rt.Proc, n)
	for i, p := range core.BuildAlgo1(mem, n) {
		procs[i] = p
	}
	cluster, err := rt.New(rt.Config{
		StepInterval: time.Millisecond,
		TimerUnit:    10 * time.Millisecond,
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	leader, ok := cluster.WaitForAgreement(30 * time.Second)
	if !ok {
		t.Fatal("no leader elected over the SAN")
	}
	t.Logf("leader %d over %d disks", leader, disks)

	// Crash a minority disk mid-flight: the quorum must mask it and
	// leadership must hold (or re-stabilize).
	ds[2].Crash()
	leader2, ok := cluster.WaitForAgreement(30 * time.Second)
	if !ok {
		t.Fatal("agreement lost after a minority disk crash")
	}
	t.Logf("leader %d after disk crash", leader2)
}

// TestOmegaOverSANProcessCrash crashes the elected process (not a disk)
// and requires re-election over the disk substrate.
func TestOmegaOverSANProcessCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("live SAN election takes seconds")
	}
	const n, disks = 3, 3
	var ds []*san.Disk
	for d := 0; d < disks; d++ {
		ds = append(ds, san.NewDisk(san.Latency{Base: 20 * time.Microsecond}, int64(d+1)))
	}
	mem, err := san.NewDiskMem(n, ds)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]rt.Proc, n)
	for i, p := range core.BuildAlgo1(mem, n) {
		procs[i] = p
	}
	cluster, err := rt.New(rt.Config{
		StepInterval: time.Millisecond,
		TimerUnit:    10 * time.Millisecond,
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	leader, ok := cluster.WaitForAgreement(30 * time.Second)
	if !ok {
		t.Fatal("no initial leader")
	}
	if err := cluster.Crash(leader); err != nil {
		t.Fatal(err)
	}
	next, ok := cluster.WaitForAgreement(60 * time.Second)
	if !ok {
		t.Fatal("no re-election over the SAN")
	}
	if next == leader {
		t.Fatalf("crashed process %d still leader", leader)
	}
}
