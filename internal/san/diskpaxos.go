package san

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements Disk Paxos (Gafni & Lamport — the paper's
// reference [9]) directly over the simulated disks, as opposed to the
// register-based consensus in internal/consensus which runs over any
// shmem.Mem. Disk Paxos is the algorithm actually designed for the
// paper's motivating SAN deployment: each process owns one block per
// disk, writes only its own blocks, and reads everybody's from a majority
// of disks.
//
// A dblock is (mbal, bal, inp) packed into one 64-bit disk word so each
// block write is atomic on its disk:
//
//	bits 40..63: mbal (24 bits)   highest ballot the process entered
//	bits 16..39: bal  (24 bits)   ballot of the value it last accepted
//	bits  0..15: inp  (16 bits)   that value
//
// Ballots are below 2^24 and values below 2^16; Propose validates both.
// A committed value is published in a per-process commit block so
// followers and laggards terminate by polling.

// ErrValueRange is returned for inputs outside the 16-bit value space.
var ErrValueRange = errors.New("san: disk-paxos values must fit in 16 bits")

// ErrRoundsExhausted is returned when Propose gives up after MaxRounds
// ballots (e.g. because the oracle kept moving).
var ErrRoundsExhausted = errors.New("san: disk paxos gave up after max rounds")

const (
	dpMbalShift = 40
	dpBalShift  = 16
	dpFieldMask = 1<<24 - 1
	dpValMask   = 1<<16 - 1
)

func packDBlock(mbal, bal uint32, inp uint16) uint64 {
	return uint64(mbal&dpFieldMask)<<dpMbalShift |
		uint64(bal&dpFieldMask)<<dpBalShift |
		uint64(inp)
}

func unpackDBlock(w uint64) (mbal, bal uint32, inp uint16) {
	return uint32(w >> dpMbalShift & dpFieldMask),
		uint32(w >> dpBalShift & dpFieldMask),
		uint16(w & dpValMask)
}

// DiskPaxos is one consensus instance over a set of disks.
type DiskPaxos struct {
	disks []*Disk
	n     int
	tag   string

	// blockNames and commitNames are the per-process block names,
	// precomputed once so the scatter-gather reads (see pipe.go) can
	// alias one immutable name list per request instead of formatting
	// names on every phase.
	blockNames  []string
	commitNames []string

	// seq tags each process's disk writes so retries stay idempotent
	// (Disk.WriteBlock keeps the highest sequence number).
	mu  sync.Mutex
	seq map[int]uint64
}

// NewDiskPaxos creates an instance for n processes over the disks; tag
// namespaces the blocks so several instances can share disks.
func NewDiskPaxos(disks []*Disk, n int, tag string) (*DiskPaxos, error) {
	if len(disks) < 1 {
		return nil, fmt.Errorf("san: disk paxos needs at least one disk")
	}
	if n < 1 {
		return nil, fmt.Errorf("san: disk paxos needs at least one process")
	}
	dp := &DiskPaxos{
		disks: disks,
		n:     n,
		tag:   tag,
		seq:   make(map[int]uint64),
	}
	dp.blockNames = make([]string, n)
	dp.commitNames = make([]string, n)
	for p := 0; p < n; p++ {
		dp.blockNames[p] = dp.blockName(p)
		dp.commitNames[p] = dp.commitName(p)
	}
	return dp, nil
}

func (dp *DiskPaxos) quorum() int { return len(dp.disks)/2 + 1 }

func (dp *DiskPaxos) blockName(p int) string {
	return fmt.Sprintf("dp/%s/b%d", dp.tag, p)
}

func (dp *DiskPaxos) commitName(p int) string {
	return fmt.Sprintf("dp/%s/c%d", dp.tag, p)
}

func (dp *DiskPaxos) nextSeq(p int) uint64 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	dp.seq[p]++
	return dp.seq[p]
}

// writeMajority writes (name, val) through every disk's pipeline and
// returns once a majority acknowledged; it errors if a majority is
// unreachable. Minority stragglers drain in the background, so the next
// phase's requests enter the disks' windows while they finish — slot
// N+1's writes no longer wait for slot N's full fan-out to wind down.
func (dp *DiskPaxos) writeMajority(p int, name string, val uint64) error {
	return writeQuorum(dp.disks, name, dp.nextSeq(p), val)
}

// readAllMajority reads every process's dblock from a majority of disks
// and returns, per process, the block with the highest sequence number
// seen. Missing blocks read as zero. Each disk serves the whole batch as
// one scatter-gather request — one queued command and one latency draw —
// instead of n sequential block reads.
func (dp *DiskPaxos) readAllMajority(reader int) ([]uint64, error) {
	best := make([]uint64, dp.n)
	bestSeq := make([]uint64, dp.n)
	if err := gatherQuorum(dp.disks, dp.blockNames, bestSeq, best); err != nil {
		return nil, err
	}
	return best, nil
}

// checkCommit polls the commit blocks; ok reports whether some process
// has published a decision. One scatter-gather per disk covers all n
// commit blocks; a majority suffices because a published decision was
// acknowledged by a majority, which intersects the one read here.
func (dp *DiskPaxos) checkCommit(reader int) (uint16, bool, error) {
	vals := make([]uint64, dp.n)
	seqs := make([]uint64, dp.n)
	if err := gatherQuorum(dp.disks, dp.commitNames, seqs, vals); err != nil {
		return 0, false, err
	}
	for _, v := range vals {
		if v>>16 != 0 { // committed flag in bit 16
			return uint16(v & dpValMask), true, nil
		}
	}
	return 0, false, nil
}

// ProposeConfig tunes a Propose call.
type ProposeConfig struct {
	// MaxRounds bounds the ballots attempted; default 64.
	MaxRounds int
	// Backoff is the pause between oracle polls while not leading;
	// default 1ms.
	Backoff time.Duration
}

func (c *ProposeConfig) normalize() {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
}

// Propose runs Disk Paxos for process id with the given input, gated by
// the omega oracle for liveness: the process only advances ballots while
// the oracle names it leader, and otherwise polls for a published
// decision. It blocks until a decision is known or MaxRounds ballots were
// burned.
func (dp *DiskPaxos) Propose(id int, input uint16, omega func() int, cfg ProposeConfig) (uint16, error) {
	if int(input) != int(uint64(input)&dpValMask) {
		return 0, ErrValueRange
	}
	if omega == nil {
		return 0, fmt.Errorf("san: nil omega oracle")
	}
	cfg.normalize()
	var ballot uint32
	for round := 0; round < cfg.MaxRounds; round++ {
		if v, ok, err := dp.checkCommit(id); err != nil {
			return 0, err
		} else if ok {
			return v, nil
		}
		if omega() != id {
			time.Sleep(cfg.Backoff)
			continue
		}
		// Phase 1: claim the next ballot congruent to id.
		blocks, err := dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		maxM := uint32(0)
		for _, b := range blocks {
			if m, _, _ := unpackDBlock(b); m > maxM {
				maxM = m
			}
		}
		ballot = (maxM/uint32(dp.n)+1)*uint32(dp.n) + uint32(id) + 1
		_, myBal, myInp := unpackDBlock(blocks[id])
		if err := dp.writeMajority(id, dp.blockName(id), packDBlock(ballot, myBal, myInp)); err != nil {
			return 0, err
		}
		blocks, err = dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		abort := false
		var chosen uint16
		var maxBal uint32
		chosen = input
		for _, b := range blocks {
			m, bal, inp := unpackDBlock(b)
			if m > ballot {
				abort = true
			}
			if bal > maxBal {
				maxBal, chosen = bal, inp
			}
		}
		if abort {
			continue
		}
		// Phase 2: accept the chosen value under this ballot.
		if err := dp.writeMajority(id, dp.blockName(id), packDBlock(ballot, ballot, chosen)); err != nil {
			return 0, err
		}
		blocks, err = dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		for _, b := range blocks {
			if m, _, _ := unpackDBlock(b); m > ballot {
				abort = true
			}
		}
		if abort {
			continue
		}
		// Decided: publish.
		if err := dp.writeMajority(id, dp.commitName(id), 1<<16|uint64(chosen)); err != nil {
			return 0, err
		}
		return chosen, nil
	}
	return 0, ErrRoundsExhausted
}
