package san

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements Disk Paxos (Gafni & Lamport — the paper's
// reference [9]) directly over the simulated disks, as opposed to the
// register-based consensus in internal/consensus which runs over any
// shmem.Mem. Disk Paxos is the algorithm actually designed for the
// paper's motivating SAN deployment: each process owns one block per
// disk, writes only its own blocks, and reads everybody's from a majority
// of disks.
//
// A dblock is (mbal, bal, inp) packed into one 64-bit disk word so each
// block write is atomic on its disk:
//
//	bits 40..63: mbal (24 bits)   highest ballot the process entered
//	bits 16..39: bal  (24 bits)   ballot of the value it last accepted
//	bits  0..15: inp  (16 bits)   that value
//
// Ballots are below 2^24 and values below 2^16; Propose validates both.
// A committed value is published in a per-process commit block so
// followers and laggards terminate by polling.

// ErrValueRange is returned for inputs outside the 16-bit value space.
var ErrValueRange = errors.New("san: disk-paxos values must fit in 16 bits")

// ErrRoundsExhausted is returned when Propose gives up after MaxRounds
// ballots (e.g. because the oracle kept moving).
var ErrRoundsExhausted = errors.New("san: disk paxos gave up after max rounds")

const (
	dpMbalShift = 40
	dpBalShift  = 16
	dpFieldMask = 1<<24 - 1
	dpValMask   = 1<<16 - 1
)

func packDBlock(mbal, bal uint32, inp uint16) uint64 {
	return uint64(mbal&dpFieldMask)<<dpMbalShift |
		uint64(bal&dpFieldMask)<<dpBalShift |
		uint64(inp)
}

func unpackDBlock(w uint64) (mbal, bal uint32, inp uint16) {
	return uint32(w >> dpMbalShift & dpFieldMask),
		uint32(w >> dpBalShift & dpFieldMask),
		uint16(w & dpValMask)
}

// DiskPaxos is one consensus instance over a set of disks.
type DiskPaxos struct {
	disks []*Disk
	n     int
	tag   string

	// seq tags each process's disk writes so retries stay idempotent
	// (Disk.WriteBlock keeps the highest sequence number).
	mu  sync.Mutex
	seq map[int]uint64
}

// NewDiskPaxos creates an instance for n processes over the disks; tag
// namespaces the blocks so several instances can share disks.
func NewDiskPaxos(disks []*Disk, n int, tag string) (*DiskPaxos, error) {
	if len(disks) < 1 {
		return nil, fmt.Errorf("san: disk paxos needs at least one disk")
	}
	if n < 1 {
		return nil, fmt.Errorf("san: disk paxos needs at least one process")
	}
	return &DiskPaxos{
		disks: disks,
		n:     n,
		tag:   tag,
		seq:   make(map[int]uint64),
	}, nil
}

func (dp *DiskPaxos) quorum() int { return len(dp.disks)/2 + 1 }

func (dp *DiskPaxos) blockName(p int) string {
	return fmt.Sprintf("dp/%s/b%d", dp.tag, p)
}

func (dp *DiskPaxos) commitName(p int) string {
	return fmt.Sprintf("dp/%s/c%d", dp.tag, p)
}

func (dp *DiskPaxos) nextSeq(p int) uint64 {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	dp.seq[p]++
	return dp.seq[p]
}

// writeMajority writes (name, val) to all disks and returns once a
// majority acknowledged; it errors if a majority is unreachable.
func (dp *DiskPaxos) writeMajority(p int, name string, val uint64) error {
	seq := dp.nextSeq(p)
	ch := make(chan error, len(dp.disks))
	for _, d := range dp.disks {
		d := d
		go func() { ch <- d.WriteBlock(name, seq, val) }()
	}
	need, failed := dp.quorum(), 0
	for got := 0; got < need; {
		if err := <-ch; err != nil {
			failed++
			if failed > len(dp.disks)-need {
				return ErrNoQuorum
			}
			continue
		}
		got++
	}
	return nil
}

// readAllMajority reads every process's dblock from a majority of disks
// and returns, per process, the block with the highest sequence number
// seen. Missing blocks read as zero.
func (dp *DiskPaxos) readAllMajority(reader int) ([]uint64, error) {
	type diskRead struct {
		vals []uint64
		seqs []uint64
		err  error
	}
	ch := make(chan diskRead, len(dp.disks))
	for _, d := range dp.disks {
		d := d
		go func() {
			r := diskRead{vals: make([]uint64, dp.n), seqs: make([]uint64, dp.n)}
			for p := 0; p < dp.n; p++ {
				seq, val, err := d.ReadBlock(dp.blockName(p))
				if err != nil {
					r.err = err
					break
				}
				r.seqs[p], r.vals[p] = seq, val
			}
			ch <- r
		}()
	}
	need, failed := dp.quorum(), 0
	best := make([]uint64, dp.n)
	bestSeq := make([]uint64, dp.n)
	for got := 0; got < need; {
		r := <-ch
		if r.err != nil {
			failed++
			if failed > len(dp.disks)-need {
				return nil, ErrNoQuorum
			}
			continue
		}
		got++
		for p := 0; p < dp.n; p++ {
			if r.seqs[p] >= bestSeq[p] {
				bestSeq[p], best[p] = r.seqs[p], r.vals[p]
			}
		}
	}
	return best, nil
}

// checkCommit polls the commit blocks; ok reports whether some process
// has published a decision.
func (dp *DiskPaxos) checkCommit(reader int) (uint16, bool, error) {
	for p := 0; p < dp.n; p++ {
		// One fresh copy suffices: the commit flag is only ever written
		// after a decision, so any disk holding it is proof.
		ch := make(chan uint64, len(dp.disks))
		for _, d := range dp.disks {
			d := d
			go func() {
				_, val, err := d.ReadBlock(dp.commitName(p))
				if err != nil {
					ch <- 0
					return
				}
				ch <- val
			}()
		}
		for i := 0; i < len(dp.disks); i++ {
			if v := <-ch; v>>16 != 0 { // committed flag in bit 16
				return uint16(v & dpValMask), true, nil
			}
		}
	}
	return 0, false, nil
}

// ProposeConfig tunes a Propose call.
type ProposeConfig struct {
	// MaxRounds bounds the ballots attempted; default 64.
	MaxRounds int
	// Backoff is the pause between oracle polls while not leading;
	// default 1ms.
	Backoff time.Duration
}

func (c *ProposeConfig) normalize() {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
}

// Propose runs Disk Paxos for process id with the given input, gated by
// the omega oracle for liveness: the process only advances ballots while
// the oracle names it leader, and otherwise polls for a published
// decision. It blocks until a decision is known or MaxRounds ballots were
// burned.
func (dp *DiskPaxos) Propose(id int, input uint16, omega func() int, cfg ProposeConfig) (uint16, error) {
	if int(input) != int(uint64(input)&dpValMask) {
		return 0, ErrValueRange
	}
	if omega == nil {
		return 0, fmt.Errorf("san: nil omega oracle")
	}
	cfg.normalize()
	var ballot uint32
	for round := 0; round < cfg.MaxRounds; round++ {
		if v, ok, err := dp.checkCommit(id); err != nil {
			return 0, err
		} else if ok {
			return v, nil
		}
		if omega() != id {
			time.Sleep(cfg.Backoff)
			continue
		}
		// Phase 1: claim the next ballot congruent to id.
		blocks, err := dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		maxM := uint32(0)
		for _, b := range blocks {
			if m, _, _ := unpackDBlock(b); m > maxM {
				maxM = m
			}
		}
		ballot = (maxM/uint32(dp.n)+1)*uint32(dp.n) + uint32(id) + 1
		_, myBal, myInp := unpackDBlock(blocks[id])
		if err := dp.writeMajority(id, dp.blockName(id), packDBlock(ballot, myBal, myInp)); err != nil {
			return 0, err
		}
		blocks, err = dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		abort := false
		var chosen uint16
		var maxBal uint32
		chosen = input
		for _, b := range blocks {
			m, bal, inp := unpackDBlock(b)
			if m > ballot {
				abort = true
			}
			if bal > maxBal {
				maxBal, chosen = bal, inp
			}
		}
		if abort {
			continue
		}
		// Phase 2: accept the chosen value under this ballot.
		if err := dp.writeMajority(id, dp.blockName(id), packDBlock(ballot, ballot, chosen)); err != nil {
			return 0, err
		}
		blocks, err = dp.readAllMajority(id)
		if err != nil {
			return 0, err
		}
		for _, b := range blocks {
			if m, _, _ := unpackDBlock(b); m > ballot {
				abort = true
			}
		}
		if abort {
			continue
		}
		// Decided: publish.
		if err := dp.writeMajority(id, dp.commitName(id), 1<<16|uint64(chosen)); err != nil {
			return 0, err
		}
		return chosen, nil
	}
	return 0, ErrRoundsExhausted
}
