package san

import (
	"errors"
	"sync"
	"testing"
	"time"

	"omegasm/internal/shmem"
)

func fastDisks(n int) []*Disk {
	ds := make([]*Disk, n)
	for i := range ds {
		ds[i] = NewDisk(Latency{}, int64(i+1)) // zero latency for unit tests
	}
	return ds
}

func newMem(t *testing.T, nProc, nDisk int) (*DiskMem, []*Disk) {
	t.Helper()
	ds := fastDisks(nDisk)
	m, err := NewDiskMem(nProc, ds)
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestDiskMemValidation(t *testing.T) {
	if _, err := NewDiskMem(2, nil); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestQuorumSize(t *testing.T) {
	for _, tc := range []struct{ disks, want int }{{1, 1}, {3, 2}, {5, 3}, {4, 3}} {
		m, _ := newMem(t, 2, tc.disks)
		if got := m.Quorum(); got != tc.want {
			t.Errorf("Quorum(%d disks) = %d, want %d", tc.disks, got, tc.want)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	m, _ := newMem(t, 2, 3)
	r := m.Word(0, "PROGRESS", 0)
	if got := r.Read(1); got != 0 {
		t.Fatalf("fresh register = %d", got)
	}
	for v := uint64(1); v <= 20; v++ {
		r.Write(0, v)
		if got := r.Read(1); got != v {
			t.Fatalf("read %d after writing %d", got, v)
		}
	}
}

func TestOwnershipEnforced(t *testing.T) {
	m, _ := newMem(t, 2, 3)
	r := m.Word(0, "STOP", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("non-owner write must panic")
		}
	}()
	r.Write(1, 1)
}

func TestMinorityDiskCrashMasked(t *testing.T) {
	m, ds := newMem(t, 2, 5)
	r := m.Word(0, "PROGRESS", 0)
	r.Write(0, 10)
	ds[0].Crash()
	ds[1].Crash()
	r.Write(0, 11) // quorum 3 of the surviving 3
	if got := r.Read(1); got != 11 {
		t.Fatalf("read %d with 2/5 disks down, want 11", got)
	}
	if !ds[0].Crashed() || ds[2].Crashed() {
		t.Error("Crashed() bookkeeping wrong")
	}
}

func TestMajorityLossPanicsNoQuorum(t *testing.T) {
	m, ds := newMem(t, 2, 3)
	r := m.Word(0, "PROGRESS", 0)
	r.Write(0, 1)
	ds[0].Crash()
	ds[1].Crash()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("quorum loss must panic")
		}
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("panic value %v, want ErrNoQuorum", rec)
		}
	}()
	r.Read(1)
}

// TestReadsMonotonePerHandle: the per-handle cache must prevent a reader
// from observing an older value after a newer one (the single-writer
// regular-register guarantee the Omega proofs rely on).
func TestReadsMonotonePerHandle(t *testing.T) {
	m, _ := newMem(t, 3, 5)
	r := m.Word(0, "PROGRESS", 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= 500; v++ {
			r.Write(0, v)
		}
		close(stop)
	}()
	for reader := 1; reader <= 2; reader++ {
		reader := reader
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := r.Read(reader)
				if v < last {
					t.Errorf("reader %d went backwards: %d after %d", reader, v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
}

func TestStaleWriteIgnoredByDisk(t *testing.T) {
	d := NewDisk(Latency{}, 1)
	if err := d.WriteBlock("x", 5, 50); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock("x", 3, 30); err != nil { // stale retry
		t.Fatal(err)
	}
	seq, val, err := d.ReadBlock("x")
	if err != nil || seq != 5 || val != 50 {
		t.Fatalf("got (%d,%d,%v), want (5,50,nil)", seq, val, err)
	}
}

func TestCrashedDiskErrors(t *testing.T) {
	d := NewDisk(Latency{}, 1)
	d.Crash()
	if _, _, err := d.ReadBlock("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("ReadBlock on crashed disk: %v", err)
	}
	if err := d.WriteBlock("x", 1, 1); !errors.Is(err, ErrCrashed) {
		t.Errorf("WriteBlock on crashed disk: %v", err)
	}
}

func TestLatencyDrawBounds(t *testing.T) {
	d := NewDisk(Latency{
		Base:   time.Millisecond,
		Jitter: time.Millisecond,
		SpikeP: 1.0,
		Spike:  2 * time.Millisecond,
	}, 1)
	start := time.Now()
	if _, _, err := d.ReadBlock("x"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < time.Millisecond {
		t.Errorf("latency %v below Base", elapsed)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("latency %v wildly above Base+Jitter+Spike", elapsed)
	}
}

func TestCensusAttribution(t *testing.T) {
	m, _ := newMem(t, 3, 3)
	r := m.Word(0, "PROGRESS", 0)
	r.Write(0, 1)
	r.Read(2)
	snap := m.Census().Snapshot()
	rs := snap.Regs["PROGRESS[0]"]
	if rs.WritesBy[0] != 1 || rs.ReadsBy[2] != 1 {
		t.Errorf("census writes=%v reads=%v", rs.WritesBy, rs.ReadsBy)
	}
}

// TestMemInterfaceCompliance pins the shmem.Mem contract.
func TestMemInterfaceCompliance(t *testing.T) {
	var _ shmem.Mem = (*DiskMem)(nil)
}
