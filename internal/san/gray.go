package san

// GrayFault is a disk's gray-failure model: the disk stays up and
// answers, but some answers are wrong in the ways real deteriorating
// storage is wrong — acknowledged writes that never hit the medium,
// reads served from a stale snapshot, and a latency tax on every
// operation. Gray faults are strictly weaker than the regular-register
// guarantee the healthy SAN quorum discipline provides: a gray disk can
// silently lose an acknowledged write, which is exactly the anomaly the
// scenario campaigns feed to the checker. Keep gray disks below a
// quorum if the run is supposed to stay correct.
type GrayFault struct {
	// StaleAckP is the probability that WriteBlock acknowledges without
	// persisting anything (an intermittent stale ack).
	StaleAckP float64
	// StaleReadP is the probability that ReadBlock serves the block's
	// previous (seq, value) instead of the current one.
	StaleReadP float64
	// Slow is extra latency drawn on top of the disk's base model for
	// every operation (a slow, not-yet-failed disk).
	Slow Latency
}

// SetGray installs (or replaces) the disk's gray-failure model. Safe to
// call concurrently with operations; typically set once at rig time.
func (d *Disk) SetGray(g GrayFault) {
	d.rngMu.Lock()
	d.gray = g
	d.grayOn = true
	d.rngMu.Unlock()
}

// grayDropWrite reports whether this write should be acknowledged
// without persisting.
func (d *Disk) grayDropWrite() bool {
	d.rngMu.Lock()
	hit := d.grayOn && d.gray.StaleAckP > 0 && d.rng.Float64() < d.gray.StaleAckP
	d.rngMu.Unlock()
	return hit
}

// grayStaleRead reports whether this read should serve the previous
// block version.
func (d *Disk) grayStaleRead() bool {
	d.rngMu.Lock()
	hit := d.grayOn && d.gray.StaleReadP > 0 && d.rng.Float64() < d.gray.StaleReadP
	d.rngMu.Unlock()
	return hit
}
