// Package lease implements the leader-lease register behind the KV's
// linearizable read fast path.
//
// The paper's Omega oracle makes leadership *eventually* exclusive, which
// is enough for consensus safety but not for serving a read locally: any
// replica that merely believes it leads could answer from a state another
// leader has already moved past. A lease makes the exclusivity explicit
// and time-bounded: the agreed leader claims (epoch, holder, expiry) in a
// shared register, commits one fenced no-op through the replicated log
// (the catch-up barrier), and may then answer reads from its own applied
// state — no consensus round per read — until the expiry passes. Every
// proposer in the store is gated on holding this lease, so while a lease
// is valid nobody else can commit: the lease never straddles two leaders'
// commit authority.
//
// The register is two padded atomic words, not shared-memory registers:
// all replicas of one store live in one address space, so the claim is a
// compare-and-swap, and the paper's register model stays confined to the
// consensus substrate underneath.
//
//   - word A holds (epoch, holder) and changes only at acquisition, by
//     CAS — epoch is monotone, so a reader can detect any change.
//   - word B holds the expiry (engine nanoseconds) and is extended by CAS
//     only while the lease is still valid.
//
// Safety argument. Acquire requires the observed expiry to have passed by
// more than eps before the CAS on A; Extend requires validity at its
// clock read and verifies A unchanged after its CAS on B. All parties
// read one clock (the engine's), so the only way two holders can overlap
// is a refresh or acquire whose clock read and CAS are separated by more
// than eps — the standard bounded-delay assumption every lease scheme
// makes. Consensus safety never depends on it (Paxos ballots arbitrate
// regardless); only read linearizability does. Under the deterministic
// simulator a machine's clock read and its effects are one atomic
// activation, so eps 0 is exact and the property is machine-checkable.
package lease

import (
	"sync"
	"sync/atomic"

	"omegasm/internal/vclock"
)

// maxHolders bounds the holder ids packable into word A.
const maxHolders = 1 << 8

// word is a cache-line padded atomic uint64, same idiom as the census
// shards in internal/shmem: the holder stores into one word on every
// refresh while all readers load all three, and padding keeps a refresh
// from invalidating the readers' copies of the other words.
type word struct {
	v atomic.Uint64
	_ [56]byte
}

func (w *word) Load() uint64                    { return w.v.Load() }
func (w *word) Store(x uint64)                  { w.v.Store(x) }
func (w *word) CompareAndSwap(o, n uint64) bool { return w.v.CompareAndSwap(o, n) }

// packA packs (epoch, holder) into word A; epoch is monotone and
// 56 bits, so it never wraps in practice and A never repeats a value.
func packA(epoch uint64, holder int) uint64 {
	return epoch<<8 | uint64(holder)
}

func unpackA(a uint64) (epoch uint64, holder int) {
	return a >> 8, int(a & 0xFF)
}

// Grant is a decoded view of one acquisition, as recorded by the
// optional history (see EnableHistory).
type Grant struct {
	Epoch      uint64
	Holder     int
	AcquiredAt vclock.Time
	Expiry     vclock.Time
	// PrevExpiry is the expiry word the acquirer observed (and found
	// passed) when it claimed — the previous grant's final, extension-
	// included expiry; 0 for the first grant. AcquiredAt > PrevExpiry for
	// every recorded grant is exactly the no-two-valid-leases-overlap
	// property, so the sim campaigns assert it over the whole history.
	PrevExpiry vclock.Time
}

// Register is the store-wide lease word pair. The zero value is an
// unheld lease at epoch 0. Fields A and B sit on their own cache lines:
// the holder extends B on every refresh while every reader loads both,
// and sharing a line would make each refresh invalidate the readers'
// copy of A as well.
type Register struct {
	a word // (epoch, holder), CAS'd at acquisition only
	b word // expiry in engine nanoseconds, CAS-extended
	// readable holds the full A word of the newest lease whose holder has
	// completed its catch-up barrier; a reader serves only when it matches
	// the current A, so a fresh (un-barriered) lease never serves and a
	// stale barrier mark can never match a newer epoch.
	readable word

	// History instrumentation (sim campaigns); off unless EnableHistory.
	histMu  sync.Mutex
	history []Grant
	record  bool
}

// EnableHistory makes the register record every successful acquisition;
// call before concurrent use. The deterministic-simulation lease
// campaigns use the trace to assert that no two grants' validity windows
// ever overlap.
func (r *Register) EnableHistory() { r.record = true }

// History returns a copy of the recorded acquisitions in order.
func (r *Register) History() []Grant {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	return append([]Grant(nil), r.history...)
}

// Acquire claims the lease for holder me until now+dur, succeeding only
// when no current grant is valid: the observed expiry must be more than
// eps in the past (eps covers the previous holder's clock-read-to-effect
// delay; 0 under the simulator). On success the epoch advances and the
// new grant is NOT readable until the holder completes its barrier and
// calls MarkReadable. A holder whose own lease merely expired re-acquires
// through this same path — with a fresh epoch and a fresh barrier,
// because commits by a successor during the lapse are possible.
func (r *Register) Acquire(me int, now vclock.Time, dur, eps int64) (epoch uint64, ok bool) {
	if me < 0 || me >= maxHolders {
		return 0, false
	}
	a := r.a.Load()
	e, _ := unpackA(a)
	b := r.b.Load()
	if b != 0 && now <= vclock.Time(b)+vclock.Time(eps) {
		return 0, false // current grant still (possibly) valid
	}
	if !r.a.CompareAndSwap(a, packA(e+1, me)) {
		return 0, false // another claimant won; re-evaluate next step
	}
	// B still carries the expired expiry, so readers and Held see the new
	// epoch as invalid until this lands. A late extend by the previous
	// holder can race the store; CAS-loop to the maximum so the previous
	// holder's Extend (which re-checks A and finds itself dispossessed)
	// cannot shorten or lengthen our grant unnoticed.
	exp := uint64(now + vclock.Time(dur))
	for {
		cur := r.b.Load()
		if cur >= exp || r.b.CompareAndSwap(cur, exp) {
			break
		}
	}
	if r.record {
		r.histMu.Lock()
		r.history = append(r.history, Grant{
			Epoch: e + 1, Holder: me, AcquiredAt: now,
			Expiry: now + vclock.Time(dur), PrevExpiry: vclock.Time(b),
		})
		r.histMu.Unlock()
	}
	return e + 1, true
}

// Extend pushes the expiry of me's grant out to now+dur. It returns
// false — and extends nothing durable — when me no longer holds the
// lease or let it expire (expired holders must re-acquire, taking a new
// epoch and a new barrier). The post-CAS re-check of A closes the race
// with a concurrent Acquire: if the claim landed between our validity
// check and our extension, we report lost and the caller stops serving.
func (r *Register) Extend(me int, now vclock.Time, dur int64) bool {
	a := r.a.Load()
	if _, h := unpackA(a); h != me {
		return false
	}
	b := r.b.Load()
	if now >= vclock.Time(b) {
		return false // lapsed: only Acquire may revalidate
	}
	exp := uint64(now + vclock.Time(dur))
	for {
		cur := r.b.Load()
		if cur >= exp || r.b.CompareAndSwap(cur, exp) {
			break
		}
	}
	return r.a.Load() == a
}

// Held reports whether me holds a currently valid grant, and under which
// epoch. This is the proposer authority check: a replica may only arm
// proposals while Held, which is what confines commits to lease windows.
func (r *Register) Held(me int, now vclock.Time) (epoch uint64, ok bool) {
	a := r.a.Load()
	e, h := unpackA(a)
	if h != me {
		return 0, false
	}
	if now >= vclock.Time(r.b.Load()) {
		return 0, false
	}
	return e, true
}

// MarkReadable publishes that epoch's holder has completed its catch-up
// barrier: its applied state reflects every command any previous
// authority committed. Readers serve only from a readable grant. A stale
// call (the epoch has already moved on) marks nothing, because the
// stored word can never equal a newer A.
func (r *Register) MarkReadable(epoch uint64, me int) {
	r.readable.Store(packA(epoch, me))
}

// ReadableHolder returns the holder to serve a lease read from: the
// current grant's holder, provided the grant is valid at now and its
// barrier is complete. The A-B-readable loads need no retry loop: a
// mismatched pairing (a concurrent acquisition between loads) can only
// fail the readable==A comparison, never serve the wrong holder, and the
// reader then takes the fallback path.
func (r *Register) ReadableHolder(now vclock.Time) (holder int, epoch uint64, ok bool) {
	a := r.a.Load()
	if now >= vclock.Time(r.b.Load()) {
		return -1, 0, false
	}
	if r.readable.Load() != a {
		return -1, 0, false
	}
	e, h := unpackA(a)
	return h, e, true
}

// Peek decodes the current words for diagnostics and tests: the grant as
// (epoch, holder, expiry) plus whether it is marked readable.
func (r *Register) Peek() (g Grant, readable bool) {
	a := r.a.Load()
	e, h := unpackA(a)
	return Grant{Epoch: e, Holder: h, Expiry: vclock.Time(r.b.Load())},
		r.readable.Load() == a
}
