package sched_test

import (
	"testing"

	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

// TestSmokeAlgo1Elects is the stack's end-to-end sanity check: Algorithm 1
// under a default AWB run must stabilize on a single correct leader. (The
// identity of the winner is run-dependent: startup suspicions accrued
// before the timers settle decide the lexmin.)
func TestSmokeAlgo1Elects(t *testing.T) {
	n := 5
	mem := shmem.NewSimMem(n)
	procs := core.BuildAlgo1(mem, n)
	ps := make([]sched.Process, n)
	for i, p := range procs {
		ps[i] = p
	}
	cfg := sched.Config{
		N:       n,
		Seed:    1,
		Horizon: 200_000,
		AWBProc: 0,
		Tau1:    1_000,
		Delta:   8,
	}
	w, err := sched.NewWorld(cfg, ps, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	st, leader, ok := trace.Stabilization(res.Samples, res.Crashed)
	if !ok {
		t.Fatalf("no stabilization; last sample %+v", res.Samples[len(res.Samples)-1])
	}
	t.Logf("stabilized at t=%d on leader %d (end=%d)", st, leader, res.End)
	if leader < 0 || leader >= n || res.Crashed[leader] {
		t.Errorf("leader = %d, want a correct process id", leader)
	}
}

// TestSmokeAlgo1CrashRecovery crashes the initial leader mid-run; the
// survivors must converge on a correct leader.
func TestSmokeAlgo1CrashRecovery(t *testing.T) {
	n := 5
	mem := shmem.NewSimMem(n)
	procs := core.BuildAlgo1(mem, n)
	ps := make([]sched.Process, n)
	for i, p := range procs {
		ps[i] = p
	}
	cfg := sched.Config{
		N:       n,
		Seed:    7,
		Horizon: 400_000,
		AWBProc: 1,
		Tau1:    1_000,
		Delta:   8,
		Crash:   map[int]vclock.Time{0: 50_000},
	}
	w, err := sched.NewWorld(cfg, ps, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	st, leader, ok := trace.Stabilization(res.Samples, res.Crashed)
	if !ok {
		t.Fatalf("no stabilization after crash")
	}
	t.Logf("stabilized at t=%d on leader %d", st, leader)
	if leader == 0 {
		t.Errorf("elected the crashed process 0")
	}
}
