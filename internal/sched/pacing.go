package sched

import (
	"math/rand"

	"omegasm/internal/vclock"
)

// Pacing generates the inter-step delays of one process: how long after a
// completed T2 step the scheduler waits before granting the next one. This
// is the adversary of the asynchronous model: the paper places no bound on
// these delays for any process except (after tau_1) the AWB1 process, so a
// Pacing may return arbitrarily large — but finite — values.
type Pacing interface {
	// Next returns the delay before the process's next step, >= 1 tick.
	Next(rng *rand.Rand, now vclock.Time) vclock.Duration
}

// Fixed paces a process at exactly D ticks per step: a synchronous process.
type Fixed struct {
	D vclock.Duration
}

var _ Pacing = Fixed{}

// Next implements Pacing.
func (f Fixed) Next(*rand.Rand, vclock.Time) vclock.Duration {
	if f.D < 1 {
		return 1
	}
	return f.D
}

// Uniform draws each delay uniformly from [Min, Max].
type Uniform struct {
	Min, Max vclock.Duration
}

var _ Pacing = Uniform{}

// Next implements Pacing.
func (u Uniform) Next(rng *rand.Rand, _ vclock.Time) vclock.Duration {
	lo, hi := u.Min, u.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// HeavyTail is the canonical asynchronous adversary: usually a delay in
// [Min, Max], but with probability StallP a stall drawn uniformly from
// [Max, StallMax]. Stalls are finite, so the process is correct, yet no
// bound on its speed holds — exactly the processes AWB leaves
// unconstrained.
type HeavyTail struct {
	Min, Max vclock.Duration
	StallP   float64 // probability of a stall per step
	StallMax vclock.Duration
}

var _ Pacing = HeavyTail{}

// Next implements Pacing.
func (h HeavyTail) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	if h.StallP > 0 && rng.Float64() < h.StallP {
		lo := h.Max
		if lo < 1 {
			lo = 1
		}
		hi := h.StallMax
		if hi < lo {
			hi = lo
		}
		return lo + rng.Int63n(hi-lo+1)
	}
	return Uniform{Min: h.Min, Max: h.Max}.Next(rng, now)
}

// Phase switches pacing at a boundary time: Before applies strictly before
// At, After applies from At on. Used to build runs that are chaotic for a
// finite prefix and then settle — the shape of every AWB run.
type Phase struct {
	At     vclock.Time
	Before Pacing
	After  Pacing
}

var _ Pacing = Phase{}

// Next implements Pacing.
func (p Phase) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	if now < p.At {
		return p.Before.Next(rng, now)
	}
	return p.After.Next(rng, now)
}

// GrowingStall stalls the process every Every steps, with stall durations
// that double each time (capped at Cap, 0 meaning horizon-scale). Every
// stall is finite, so the process is correct; but no fixed bound on its
// step gaps ever holds, so the process is suspected infinitely often and
// stays out of the paper's set B — the canonical "correct but forever
// untimely" process of the AWB model. Used to force a chosen process to
// win the election (experiment F3).
type GrowingStall struct {
	Min, Max vclock.Duration // base pace between stalls
	Every    int             // steps between stalls (>= 1)
	First    vclock.Duration // first stall duration
	Cap      vclock.Duration // stall growth cap (0: 1<<40 ticks)

	steps int
	cur   vclock.Duration
}

var _ Pacing = (*GrowingStall)(nil)

// Next implements Pacing.
func (g *GrowingStall) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	every := g.Every
	if every < 1 {
		every = 1
	}
	g.steps++
	if g.steps%every != 0 {
		return Uniform{Min: g.Min, Max: g.Max}.Next(rng, now)
	}
	if g.cur == 0 {
		g.cur = g.First
		if g.cur < 1 {
			g.cur = 1
		}
	} else {
		g.cur *= 2
	}
	maxStall := g.Cap
	if maxStall <= 0 {
		maxStall = 1 << 40
	}
	if g.cur > maxStall {
		g.cur = maxStall
	}
	return g.cur
}

// Chase is the leader-chasing adversary: whenever the observed leader
// estimate (maintained by a scheduler hook in *Target) names this
// process, its next step is delayed by a stall; otherwise it paces at
// Base. With Grow=false the stalls are bounded, so every process still
// satisfies AWB1 with delta = Stall and Omega must stabilize despite the
// persecution. With Grow=true the stalls double forever: the adversary
// chases whoever leads with unbounded outages, no process satisfies AWB1,
// and the assumption's hypothesis fails — experiment A3 uses the pair to
// show AWB1 is load-bearing.
type Chase struct {
	Self   int
	Target *int // updated by a hook; -1 = nobody chased
	Base   Pacing
	Stall  vclock.Duration
	Grow   bool

	cur vclock.Duration
}

var _ Pacing = (*Chase)(nil)

// Next implements Pacing.
func (c *Chase) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	if c.Target == nil || *c.Target != c.Self {
		base := c.Base
		if base == nil {
			base = Uniform{Min: 1, Max: 8}
		}
		return base.Next(rng, now)
	}
	if c.cur == 0 || !c.Grow {
		c.cur = c.Stall
		if c.cur < 1 {
			c.cur = 1
		}
	} else {
		c.cur *= 2
	}
	return c.cur
}

// Clamp bounds another pacing's delays from time From on — the AWB1
// enforcement shape: after tau_1 the designated correct process's
// consecutive steps (and hence its consecutive critical-register
// accesses, which happen within steps) are at most Delta apart. Before
// From the inner pacing is passed through untouched.
type Clamp struct {
	P     Pacing
	From  vclock.Time
	Delta vclock.Duration
}

var _ Pacing = Clamp{}

// Next implements Pacing.
func (c Clamp) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	d := c.P.Next(rng, now)
	if now >= c.From && d > c.Delta {
		d = c.Delta
	}
	return d
}

// Brownout multiplies another pacing's delays by Factor inside the
// window [From, To) — a process (or a whole cluster, when every machine
// wears one) running through a finite slow spell: steps still happen, just
// Factor times further apart. Outside the window the inner pacing passes
// through untouched, so a Brownout wrapped outside a Clamp preserves the
// eventual AWB1 bound once the window closes.
type Brownout struct {
	P        Pacing
	From, To vclock.Time
	Factor   vclock.Duration
}

var _ Pacing = Brownout{}

// Next implements Pacing.
func (b Brownout) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	d := b.P.Next(rng, now)
	if now >= b.From && now < b.To && b.Factor > 1 {
		d *= b.Factor
	}
	return d
}

// OwnRng wraps a pacing with its own random source, making the process's
// delay sequence a pure function of its own seed: the k-th delay is the
// k-th draw regardless of how runs interleave. Experiments that compare a
// truncated "dry run" against a full run (T5d) rely on this to keep the
// two schedules identical even when a scheduler-level knob (e.g. the AWB1
// clamp target) differs between them.
type OwnRng struct {
	Rng *rand.Rand
	P   Pacing
}

var _ Pacing = OwnRng{}

// Next implements Pacing, ignoring the scheduler's shared source.
func (o OwnRng) Next(_ *rand.Rand, now vclock.Time) vclock.Duration {
	return o.P.Next(o.Rng, now)
}

// StallOnce paces a process at Base except for a single deterministic
// stall of Dur ticks at the first step scheduled at or after At. Used by
// experiments that need one precisely-placed outage (e.g. demoting an
// incumbent leader exactly once, ablation A2).
type StallOnce struct {
	At   vclock.Time
	Dur  vclock.Duration
	Base Pacing

	done bool
}

var _ Pacing = (*StallOnce)(nil)

// Next implements Pacing.
func (s *StallOnce) Next(rng *rand.Rand, now vclock.Time) vclock.Duration {
	if !s.done && now >= s.At {
		s.done = true
		if s.Dur < 1 {
			return 1
		}
		return s.Dur
	}
	base := s.Base
	if base == nil {
		base = Uniform{Min: 1, Max: 8}
	}
	return base.Next(rng, now)
}

// Lockstep paces a process so each step lands on the next multiple of
// Period (plus Offset). Together with vclock.PhaseLocked timers it builds
// the Figure 4 lower-bound schedule in which a bounded shared memory
// revisits the same state at every observation.
type Lockstep struct {
	Period vclock.Duration // > 0
	Offset vclock.Duration
}

var _ Pacing = Lockstep{}

// Next implements Pacing.
func (l Lockstep) Next(_ *rand.Rand, now vclock.Time) vclock.Duration {
	period := l.Period
	if period < 1 {
		period = 1
	}
	next := now + 1
	rem := (next - l.Offset) % period
	if rem < 0 {
		rem += period
	}
	if rem != 0 {
		next += period - rem
	}
	return next - now
}
