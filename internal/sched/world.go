// Package sched is the deterministic simulation runtime: an event-driven
// scheduler over virtual time that generates exactly the run class the
// paper's theorems quantify over.
//
// A run of AS[n, AWB] is an interleaving of process steps in which (1)
// every correct process takes infinitely many steps with finite — but
// unbounded — gaps, (2) after some unknown time tau_1 one correct process
// p_ell has its consecutive critical-register accesses separated by at
// most delta ticks (AWB1), and (3) the timers of the other correct
// processes are asymptotically well-behaved (AWB2, see package vclock).
//
// The scheduler serializes all process steps on the caller's goroutine, so
// the SimMem registers are linearized in scheduler order; the seeded
// adversary (Pacing per process) chooses the interleaving. Crashes are
// injected at configured times by permanently descheduling the process.
package sched

import (
	"container/heap"
	"fmt"
	"math/rand"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Process is one algorithm process as seen by the scheduler. The three
// methods correspond to the paper's three tasks: Leader is task T1 (the
// oracle query), Step is one iteration of task T2's infinite loop, and
// OnTimer is the body of task T3, returning the value the timer is re-set
// to (paper line 27).
type Process interface {
	// Step executes one iteration of the process's main loop at virtual
	// time now.
	Step(now vclock.Time)
	// OnTimer executes the timer-expiry handler at virtual time now and
	// returns the next timeout value x (the timer is then re-armed to
	// expire after the process's Behavior maps x to a duration).
	OnTimer(now vclock.Time) (next uint64)
	// Leader returns the process's current leader estimate (task T1).
	Leader() int
}

// Config parameterizes one simulated run.
type Config struct {
	N       int
	Seed    int64
	Horizon vclock.Time
	// SampleEvery is the observation period for leader estimates;
	// default 64 ticks.
	SampleEvery vclock.Duration
	// AWBProc designates p_ell for AWB1 pacing enforcement (-1 disables:
	// the run then need not satisfy AWB1 unless the Pacing does).
	AWBProc int
	// Tau1 is the time from which AWB1 pacing is enforced for AWBProc.
	Tau1 vclock.Time
	// Delta is the AWB1 bound: after Tau1, AWBProc's inter-step gap is
	// clamped to at most Delta ticks.
	Delta vclock.Duration
	// Pacing holds the per-process step adversary; nil entries default to
	// Uniform{1, 8}.
	Pacing []Pacing
	// Timers holds the per-process timer behavior; nil entries default to
	// Exact{Scale: 4, Floor: 1}.
	Timers []vclock.Behavior
	// Crash maps pid -> crash time. Processes not present never crash.
	Crash map[int]vclock.Time
	// InitialTimeout is the value each process's timer is first set to;
	// default 1.
	InitialTimeout uint64
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("sched: need at least 2 processes, got %d", c.N)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sched: horizon must be positive, got %d", c.Horizon)
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.Delta <= 0 {
		c.Delta = 8
	}
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 1
	}
	if c.Pacing == nil {
		c.Pacing = make([]Pacing, c.N)
	}
	if len(c.Pacing) != c.N {
		return fmt.Errorf("sched: len(Pacing)=%d, want %d", len(c.Pacing), c.N)
	}
	for i, p := range c.Pacing {
		if p == nil {
			c.Pacing[i] = Uniform{Min: 1, Max: 8}
		}
	}
	if c.Timers == nil {
		c.Timers = make([]vclock.Behavior, c.N)
	}
	if len(c.Timers) != c.N {
		return fmt.Errorf("sched: len(Timers)=%d, want %d", len(c.Timers), c.N)
	}
	for i, b := range c.Timers {
		if b == nil {
			c.Timers[i] = vclock.Exact{Scale: 4, Floor: 1}
		}
	}
	if c.AWBProc >= c.N {
		return fmt.Errorf("sched: AWBProc=%d out of range for n=%d", c.AWBProc, c.N)
	}
	if ct, ok := c.Crash[c.AWBProc]; ok && c.AWBProc >= 0 {
		return fmt.Errorf("sched: AWBProc %d is scheduled to crash at %d; AWB1 requires a correct process", c.AWBProc, ct)
	}
	return nil
}

// Sample is one observation of every process's leader estimate.
// Leaders[p] is -1 if p had crashed by time T.
type Sample struct {
	T       vclock.Time
	Leaders []int
}

// Result is the outcome of a run.
type Result struct {
	Samples []Sample
	Crashed []bool
	// CrashTime[p] is the crash time or -1.
	CrashTime []vclock.Time
	End       vclock.Time
	// Steps[p] counts T2 iterations executed by p.
	Steps []uint64
	// TimerFirings[p] counts T3 executions by p.
	TimerFirings []uint64
}

// Correct reports whether p did not crash in the run.
func (r *Result) Correct(p int) bool { return !r.Crashed[p] }

// World is one simulated run in progress.
type World struct {
	cfg   Config
	procs []Process
	rng   *rand.Rand
	now   vclock.Time
	queue eventQueue
	seq   uint64

	crashed  []bool
	res      *Result
	hooks    []Hook
	stopped  bool
	stopTime vclock.Time

	aux       []Stepper
	auxPacing []Pacing
}

// Stepper is an auxiliary state machine co-scheduled with the oracle
// processes but not sampled and not subject to timers — e.g. consensus
// proposers running on top of the elected leader (experiment T6).
type Stepper interface {
	Step(now vclock.Time)
}

// Hook observes the run as it unfolds. Hooks may stop the run early.
type Hook interface {
	// OnSample is called at every observation point.
	OnSample(w *World, s Sample)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(w *World, s Sample)

// OnSample implements Hook.
func (f HookFunc) OnSample(w *World, s Sample) { f(w, s) }

// NewWorld validates cfg and builds a run over the given processes and
// memory. The memory's census is re-clocked to virtual time.
func NewWorld(cfg Config, procs []Process, mem shmem.Mem) (*World, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.N {
		return nil, fmt.Errorf("sched: %d processes for n=%d", len(procs), cfg.N)
	}
	w := &World{
		cfg:     cfg,
		procs:   procs,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		crashed: make([]bool, cfg.N),
		res: &Result{
			Crashed:      make([]bool, cfg.N),
			CrashTime:    make([]vclock.Time, cfg.N),
			Steps:        make([]uint64, cfg.N),
			TimerFirings: make([]uint64, cfg.N),
		},
	}
	for p := range w.res.CrashTime {
		w.res.CrashTime[p] = -1
	}
	if c := mem.Census(); c != nil {
		c.SetClock(func() int64 { return w.now })
	}
	return w, nil
}

// AddHook registers an observation hook; call before Run.
func (w *World) AddHook(h Hook) { w.hooks = append(w.hooks, h) }

// AddAux co-schedules an auxiliary stepper with its own pacing (nil means
// Uniform{1,8}). Call before Run. Auxiliary steppers never crash and take
// steps until the run ends.
func (w *World) AddAux(s Stepper, p Pacing) {
	if p == nil {
		p = Uniform{Min: 1, Max: 8}
	}
	w.aux = append(w.aux, s)
	w.auxPacing = append(w.auxPacing, p)
}

// Now returns the current virtual time.
func (w *World) Now() vclock.Time { return w.now }

// Stop ends the run after the current event; used by hooks that have seen
// enough (e.g. stabilization detectors in benchmarks).
func (w *World) Stop() {
	if !w.stopped {
		w.stopped = true
		w.stopTime = w.now
	}
}

// Rng exposes the run's seeded randomness source (for hooks that perturb
// the run deterministically).
func (w *World) Rng() *rand.Rand { return w.rng }

type evKind int

const (
	evStep evKind = iota + 1
	evTimer
	evSample
	evAux
)

type event struct {
	at   vclock.Time
	seq  uint64
	kind evKind
	pid  int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (w *World) push(at vclock.Time, kind evKind, pid int) {
	w.seq++
	heap.Push(&w.queue, event{at: at, seq: w.seq, kind: kind, pid: pid})
}

func (w *World) stepDelay(pid int) vclock.Duration {
	d := w.cfg.Pacing[pid].Next(w.rng, w.now)
	if d < 1 {
		d = 1
	}
	// AWB1 enforcement: after tau_1 the designated process's consecutive
	// steps — and hence its consecutive critical-register accesses, which
	// happen within steps — are at most Delta apart.
	if pid == w.cfg.AWBProc && w.now >= w.cfg.Tau1 && d > w.cfg.Delta {
		d = w.cfg.Delta
	}
	return d
}

func (w *World) crashTimeOf(pid int) (vclock.Time, bool) {
	t, ok := w.cfg.Crash[pid]
	return t, ok
}

// Run executes the simulation until the horizon (or an early Stop) and
// returns the result. Run may be called once.
func (w *World) Run() *Result {
	heap.Init(&w.queue)
	for p := 0; p < w.cfg.N; p++ {
		w.push(w.stepDelay(p), evStep, p)
		d := w.cfg.Timers[p].Expire(0, w.cfg.InitialTimeout)
		w.push(d, evTimer, p)
	}
	w.push(w.cfg.SampleEvery, evSample, -1)
	for a := range w.aux {
		w.push(w.auxPacing[a].Next(w.rng, 0), evAux, a)
	}

	for w.queue.Len() > 0 && !w.stopped {
		e := heap.Pop(&w.queue).(event)
		if e.at > w.cfg.Horizon {
			break
		}
		w.now = e.at
		switch e.kind {
		case evSample:
			w.sample()
			w.push(w.now+w.cfg.SampleEvery, evSample, -1)
		case evAux:
			w.aux[e.pid].Step(w.now)
			d := w.auxPacing[e.pid].Next(w.rng, w.now)
			if d < 1 {
				d = 1
			}
			w.push(w.now+d, evAux, e.pid)
		case evStep, evTimer:
			if w.crashed[e.pid] {
				continue
			}
			if ct, ok := w.crashTimeOf(e.pid); ok && e.at >= ct {
				w.crashed[e.pid] = true
				w.res.Crashed[e.pid] = true
				w.res.CrashTime[e.pid] = ct
				continue
			}
			if e.kind == evStep {
				w.procs[e.pid].Step(w.now)
				w.res.Steps[e.pid]++
				w.push(w.now+w.stepDelay(e.pid), evStep, e.pid)
			} else {
				x := w.procs[e.pid].OnTimer(w.now)
				w.res.TimerFirings[e.pid]++
				// x == 0 means "do not re-arm" (the timer-free variant of
				// paper Section 3.5 drives its checks from task T2).
				if x > 0 {
					d := w.cfg.Timers[e.pid].Expire(w.now, x)
					if d < 1 {
						d = 1
					}
					w.push(w.now+d, evTimer, e.pid)
				}
			}
		}
	}
	// Final observation so callers always see the end state.
	w.sample()
	w.res.End = w.now
	return w.res
}

func (w *World) sample() {
	s := Sample{T: w.now, Leaders: make([]int, w.cfg.N)}
	for p := 0; p < w.cfg.N; p++ {
		// A process that reached its crash time is reported crashed even
		// if no event has collected it yet.
		if ct, ok := w.crashTimeOf(p); (ok && w.now >= ct) || w.crashed[p] {
			if ok && w.now >= ct && !w.crashed[p] {
				w.crashed[p] = true
				w.res.Crashed[p] = true
				w.res.CrashTime[p] = ct
			}
			s.Leaders[p] = -1
			continue
		}
		s.Leaders[p] = w.procs[p].Leader()
	}
	w.res.Samples = append(w.res.Samples, s)
	for _, h := range w.hooks {
		h.OnSample(w, s)
	}
}
