// Package sched is the deterministic simulation runtime: an event-driven
// scheduler over virtual time that generates exactly the run class the
// paper's theorems quantify over.
//
// A run of AS[n, AWB] is an interleaving of process steps in which (1)
// every correct process takes infinitely many steps with finite — but
// unbounded — gaps, (2) after some unknown time tau_1 one correct process
// p_ell has its consecutive critical-register accesses separated by at
// most delta ticks (AWB1), and (3) the timers of the other correct
// processes are asymptotically well-behaved (AWB2, see package vclock).
//
// Since the engine refactor the event loop itself lives in
// internal/engine (the virtual-time Sim engine); World remains the
// experiment-facing configuration layer: it translates a Config — the
// AWB parameters, pacing adversaries, timer behaviors and crash schedule
// — into engine machines, adds the observation sampler, and collects the
// Result. All process steps still serialize on the caller's goroutine,
// so the SimMem registers are linearized in scheduler order; the seeded
// adversary (Pacing per process) chooses the interleaving. Crashes are
// injected at configured times by permanently descheduling the process.
package sched

import (
	"fmt"
	"math/rand"

	"omegasm/internal/engine"
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Process is one algorithm process as seen by the scheduler. The three
// methods correspond to the paper's three tasks: Leader is task T1 (the
// oracle query), Step is one iteration of task T2's infinite loop, and
// OnTimer is the body of task T3, returning the value the timer is re-set
// to (paper line 27).
type Process interface {
	// Step executes one iteration of the process's main loop at virtual
	// time now.
	Step(now vclock.Time)
	// OnTimer executes the timer-expiry handler at virtual time now and
	// returns the next timeout value x (the timer is then re-armed to
	// expire after the process's Behavior maps x to a duration).
	OnTimer(now vclock.Time) (next uint64)
	// Leader returns the process's current leader estimate (task T1).
	Leader() int
}

// Config parameterizes one simulated run.
type Config struct {
	N       int
	Seed    int64
	Horizon vclock.Time
	// SampleEvery is the observation period for leader estimates;
	// default 64 ticks.
	SampleEvery vclock.Duration
	// AWBProc designates p_ell for AWB1 pacing enforcement (-1 disables:
	// the run then need not satisfy AWB1 unless the Pacing does).
	AWBProc int
	// Tau1 is the time from which AWB1 pacing is enforced for AWBProc.
	Tau1 vclock.Time
	// Delta is the AWB1 bound: after Tau1, AWBProc's inter-step gap is
	// clamped to at most Delta ticks.
	Delta vclock.Duration
	// Pacing holds the per-process step adversary; nil entries default to
	// Uniform{1, 8}.
	Pacing []Pacing
	// Timers holds the per-process timer behavior; nil entries default to
	// Exact{Scale: 4, Floor: 1}.
	Timers []vclock.Behavior
	// Crash maps pid -> crash time. Processes not present never crash.
	Crash map[int]vclock.Time
	// InitialTimeout is the value each process's timer is first set to;
	// default 1.
	InitialTimeout uint64
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("sched: need at least 2 processes, got %d", c.N)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sched: horizon must be positive, got %d", c.Horizon)
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.Delta <= 0 {
		c.Delta = 8
	}
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 1
	}
	if c.Pacing == nil {
		c.Pacing = make([]Pacing, c.N)
	}
	if len(c.Pacing) != c.N {
		return fmt.Errorf("sched: len(Pacing)=%d, want %d", len(c.Pacing), c.N)
	}
	for i, p := range c.Pacing {
		if p == nil {
			c.Pacing[i] = Uniform{Min: 1, Max: 8}
		}
	}
	if c.Timers == nil {
		c.Timers = make([]vclock.Behavior, c.N)
	}
	if len(c.Timers) != c.N {
		return fmt.Errorf("sched: len(Timers)=%d, want %d", len(c.Timers), c.N)
	}
	for i, b := range c.Timers {
		if b == nil {
			c.Timers[i] = vclock.Exact{Scale: 4, Floor: 1}
		}
	}
	if c.AWBProc >= c.N {
		return fmt.Errorf("sched: AWBProc=%d out of range for n=%d", c.AWBProc, c.N)
	}
	if ct, ok := c.Crash[c.AWBProc]; ok && c.AWBProc >= 0 {
		return fmt.Errorf("sched: AWBProc %d is scheduled to crash at %d; AWB1 requires a correct process", c.AWBProc, ct)
	}
	return nil
}

// Sample is one observation of every process's leader estimate.
// Leaders[p] is -1 if p had crashed by time T.
type Sample struct {
	T       vclock.Time
	Leaders []int
}

// Result is the outcome of a run.
type Result struct {
	Samples []Sample
	Crashed []bool
	// CrashTime[p] is the crash time or -1.
	CrashTime []vclock.Time
	End       vclock.Time
	// Steps[p] counts T2 iterations executed by p.
	Steps []uint64
	// TimerFirings[p] counts T3 executions by p.
	TimerFirings []uint64
}

// Correct reports whether p did not crash in the run.
func (r *Result) Correct(p int) bool { return !r.Crashed[p] }

// World is one simulated run in progress: the experiment-facing
// configuration over the virtual-time engine.
type World struct {
	cfg   Config
	procs []Process
	sim   *engine.Sim
	ids   []int // proc p's engine machine id

	res   *Result
	hooks []Hook

	aux       []Stepper
	auxPacing []Pacing
}

// Stepper is an auxiliary state machine co-scheduled with the oracle
// processes but not sampled and not subject to timers — e.g. consensus
// proposers running on top of the elected leader (experiment T6).
type Stepper interface {
	Step(now vclock.Time)
}

// Hook observes the run as it unfolds. Hooks may stop the run early.
type Hook interface {
	// OnSample is called at every observation point.
	OnSample(w *World, s Sample)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(w *World, s Sample)

// OnSample implements Hook.
func (f HookFunc) OnSample(w *World, s Sample) { f(w, s) }

// NewWorld validates cfg and builds a run over the given processes and
// memory. The memory's census is re-clocked to virtual time.
func NewWorld(cfg Config, procs []Process, mem shmem.Mem) (*World, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.N {
		return nil, fmt.Errorf("sched: %d processes for n=%d", len(procs), cfg.N)
	}
	sim, err := engine.NewSim(engine.SimConfig{Seed: cfg.Seed, Horizon: cfg.Horizon})
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:   cfg,
		procs: procs,
		sim:   sim,
		res: &Result{
			Crashed:      make([]bool, cfg.N),
			CrashTime:    make([]vclock.Time, cfg.N),
			Steps:        make([]uint64, cfg.N),
			TimerFirings: make([]uint64, cfg.N),
		},
	}
	for p := range w.res.CrashTime {
		w.res.CrashTime[p] = -1
	}
	if c := mem.Census(); c != nil {
		c.SetClock(w.Now)
	}
	return w, nil
}

// AddHook registers an observation hook; call before Run.
func (w *World) AddHook(h Hook) { w.hooks = append(w.hooks, h) }

// AddAux co-schedules an auxiliary stepper with its own pacing (nil means
// Uniform{1,8}). Call before Run. Auxiliary steppers never crash and take
// steps until the run ends.
func (w *World) AddAux(s Stepper, p Pacing) {
	if p == nil {
		p = Uniform{Min: 1, Max: 8}
	}
	w.aux = append(w.aux, s)
	w.auxPacing = append(w.auxPacing, p)
}

// Now returns the current virtual time.
func (w *World) Now() vclock.Time { return w.sim.Now() }

// Stop ends the run after the current event; used by hooks that have seen
// enough (e.g. stabilization detectors in benchmarks).
func (w *World) Stop() { w.sim.Stop() }

// Rng exposes the run's seeded randomness source (for hooks that perturb
// the run deterministically).
func (w *World) Rng() *rand.Rand { return w.sim.Rng() }

// procMachine adapts one Process to the engine's machine contract: the
// wake hint is always WakeNow — under the simulator the pacing adversary,
// not the machine, decides when the next step is granted.
type procMachine struct {
	w   *World
	pid int
}

//omegalint:allow wakehint sim-only machine: under the Sim engine WakeNow defers to the pacing adversary, so a perpetual-work hint is the model, not a busy-poll
func (m *procMachine) Step(now vclock.Time) engine.Hint {
	m.w.procs[m.pid].Step(now)
	return engine.Now()
}

func (m *procMachine) OnTimer(now vclock.Time) uint64 {
	return m.w.procs[m.pid].OnTimer(now)
}

// samplerMachine is the fixed-cadence observer.
type samplerMachine struct{ w *World }

func (m samplerMachine) Step(now vclock.Time) engine.Hint {
	m.w.sample()
	return engine.At(now + m.w.cfg.SampleEvery)
}

// auxMachine adapts a Stepper.
type auxMachine struct{ s Stepper }

//omegalint:allow wakehint sim-only machine: the pacing adversary spaces every WakeNow step, so the auxiliary can never spin
func (m auxMachine) Step(now vclock.Time) engine.Hint {
	m.s.Step(now)
	return engine.Now()
}

// Run executes the simulation until the horizon (or an early Stop) and
// returns the result. Run may be called once.
func (w *World) Run() *Result {
	sim := w.sim
	w.ids = make([]int, w.cfg.N)
	// Machines are added in a fixed order — each process (step then
	// timer), the sampler, then the auxiliaries — so the seeded schedule
	// is identical to the pre-engine event loop's. (Adding them here, not
	// in NewWorld, keeps every rng draw inside Run, also as before.)
	for p := 0; p < w.cfg.N; p++ {
		pacing := w.cfg.Pacing[p]
		if p == w.cfg.AWBProc {
			pacing = Clamp{P: pacing, From: w.cfg.Tau1, Delta: w.cfg.Delta}
		}
		opts := []engine.SimOpt{
			engine.WithPacing(pacing),
			engine.WithTimer(w.cfg.Timers[p], w.cfg.InitialTimeout),
		}
		if ct, ok := w.cfg.Crash[p]; ok {
			opts = append(opts, engine.WithCrashAt(ct))
		}
		w.ids[p] = sim.Add(&procMachine{w: w, pid: p}, opts...)
	}
	sim.Add(samplerMachine{w: w}, engine.WithFirstWakeAt(w.cfg.SampleEvery))
	for a := range w.aux {
		sim.Add(auxMachine{s: w.aux[a]}, engine.WithPacing(w.auxPacing[a]))
	}

	sim.Run()

	// Final observation so callers always see the end state.
	w.sample()
	w.res.End = sim.Now()
	for p := 0; p < w.cfg.N; p++ {
		w.res.Steps[p] = sim.Steps(w.ids[p])
		w.res.TimerFirings[p] = sim.TimerFirings(w.ids[p])
		if sim.Crashed(w.ids[p]) {
			w.res.Crashed[p] = true
			w.res.CrashTime[p] = sim.CrashTime(w.ids[p])
		}
	}
	return w.res
}

func (w *World) sample() {
	now := w.Now()
	s := Sample{T: now, Leaders: make([]int, w.cfg.N)}
	for p := 0; p < w.cfg.N; p++ {
		// A process that reached its crash time is reported crashed even
		// if no event has collected it yet.
		ct, scheduled := w.cfg.Crash[p]
		if (scheduled && now >= ct) || w.sim.Crashed(w.ids[p]) {
			if !w.res.Crashed[p] {
				w.res.Crashed[p] = true
				w.res.CrashTime[p] = ct
			}
			s.Leaders[p] = -1
			continue
		}
		s.Leaders[p] = w.procs[p].Leader()
	}
	w.res.Samples = append(w.res.Samples, s)
	for _, h := range w.hooks {
		h.OnSample(w, s)
	}
}
