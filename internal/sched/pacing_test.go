package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omegasm/internal/vclock"
)

func testRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

func TestFixedPacing(t *testing.T) {
	rng := testRng()
	if got := (Fixed{D: 5}).Next(rng, 0); got != 5 {
		t.Errorf("Fixed{5}.Next = %d", got)
	}
	if got := (Fixed{D: 0}).Next(rng, 0); got != 1 {
		t.Errorf("Fixed{0} must clamp to 1, got %d", got)
	}
}

func TestUniformPacingBounds(t *testing.T) {
	rng := testRng()
	u := Uniform{Min: 3, Max: 9}
	for i := 0; i < 1000; i++ {
		d := u.Next(rng, 0)
		if d < 3 || d > 9 {
			t.Fatalf("Uniform out of bounds: %d", d)
		}
	}
	// Degenerate configurations clamp sanely.
	if d := (Uniform{Min: 0, Max: 0}).Next(rng, 0); d != 1 {
		t.Errorf("Uniform{0,0} = %d, want 1", d)
	}
	if d := (Uniform{Min: 7, Max: 2}).Next(rng, 0); d != 7 {
		t.Errorf("Uniform{7,2} (max<min) = %d, want 7", d)
	}
}

func TestHeavyTailStalls(t *testing.T) {
	rng := testRng()
	h := HeavyTail{Min: 1, Max: 4, StallP: 0.5, StallMax: 100}
	sawStall, sawBase := false, false
	for i := 0; i < 1000; i++ {
		d := h.Next(rng, 0)
		if d > 4 {
			sawStall = true
			if d > 100 {
				t.Fatalf("stall exceeds StallMax: %d", d)
			}
		} else {
			sawBase = true
		}
	}
	if !sawStall || !sawBase {
		t.Errorf("heavy tail did not mix: stall=%v base=%v", sawStall, sawBase)
	}
	// StallP=0 never stalls.
	h0 := HeavyTail{Min: 1, Max: 4, StallP: 0, StallMax: 100}
	for i := 0; i < 200; i++ {
		if d := h0.Next(rng, 0); d > 4 {
			t.Fatalf("StallP=0 stalled: %d", d)
		}
	}
}

func TestPhaseSwitches(t *testing.T) {
	rng := testRng()
	p := Phase{At: 100, Before: Fixed{D: 2}, After: Fixed{D: 7}}
	if got := p.Next(rng, 99); got != 2 {
		t.Errorf("before boundary: %d", got)
	}
	if got := p.Next(rng, 100); got != 7 {
		t.Errorf("at boundary: %d", got)
	}
}

func TestGrowingStallDoublesAndCaps(t *testing.T) {
	rng := testRng()
	g := &GrowingStall{Min: 1, Max: 1, Every: 2, First: 10, Cap: 35}
	var stalls []vclock.Duration
	for i := 0; i < 12; i++ {
		d := g.Next(rng, 0)
		if d > 1 {
			stalls = append(stalls, d)
		}
	}
	want := []vclock.Duration{10, 20, 35, 35, 35, 35}
	if len(stalls) != len(want) {
		t.Fatalf("stalls = %v, want %v", stalls, want)
	}
	for i := range want {
		if stalls[i] != want[i] {
			t.Fatalf("stalls = %v, want %v", stalls, want)
		}
	}
}

func TestGrowingStallDefaults(t *testing.T) {
	rng := testRng()
	g := &GrowingStall{Every: 0, First: 0} // every step stalls; First clamps to 1
	if d := g.Next(rng, 0); d != 1 {
		t.Errorf("first degenerate stall = %d, want 1", d)
	}
	if d := g.Next(rng, 0); d != 2 {
		t.Errorf("second stall = %d, want 2", d)
	}
}

func TestLockstepAlignsToPhase(t *testing.T) {
	rng := testRng()
	l := Lockstep{Period: 8, Offset: 3}
	for _, now := range []vclock.Time{0, 1, 2, 3, 7, 8, 100, 1023} {
		d := l.Next(rng, now)
		if d < 1 {
			t.Fatalf("Lockstep returned %d at now=%d", d, now)
		}
		if (now+d-3)%8 != 0 {
			t.Fatalf("step at %d not phase-aligned (now=%d)", now+d, now)
		}
	}
	// Degenerate period.
	if d := (Lockstep{Period: 0}).Next(rng, 5); d != 1 {
		t.Errorf("Lockstep{0} = %d, want 1", d)
	}
}

// TestAllPacingsPositive: property — every pacing returns >= 1 for any
// time, which the scheduler needs for progress.
func TestAllPacingsPositive(t *testing.T) {
	pacings := []Pacing{
		Fixed{},
		Uniform{Min: -3, Max: -1},
		HeavyTail{Min: -1, Max: 0, StallP: 1, StallMax: -5},
		Phase{At: 10, Before: Fixed{}, After: Uniform{}},
		&GrowingStall{},
		Lockstep{Period: 5, Offset: -12},
	}
	rng := testRng()
	f := func(nowRaw int32) bool {
		now := vclock.Time(nowRaw)
		if now < 0 {
			now = -now
		}
		for _, p := range pacings {
			if p.Next(rng, now) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStallOnceFiresExactlyOnce(t *testing.T) {
	rng := testRng()
	s := &StallOnce{At: 100, Dur: 5000, Base: Fixed{D: 2}}
	if d := s.Next(rng, 50); d != 2 {
		t.Fatalf("pre-stall delay %d, want base 2", d)
	}
	if d := s.Next(rng, 120); d != 5000 {
		t.Fatalf("stall delay %d, want 5000", d)
	}
	if d := s.Next(rng, 6000); d != 2 {
		t.Fatalf("post-stall delay %d, want base 2 (stall must fire once)", d)
	}
}

func TestStallOnceDefaults(t *testing.T) {
	rng := testRng()
	s := &StallOnce{At: 0, Dur: 0} // degenerate: stall clamps to 1, base defaults
	if d := s.Next(rng, 0); d != 1 {
		t.Fatalf("degenerate stall = %d, want 1", d)
	}
	if d := s.Next(rng, 10); d < 1 || d > 8 {
		t.Fatalf("default base delay = %d, want in [1,8]", d)
	}
}

func TestOwnRngIsolatesSequences(t *testing.T) {
	// Two OwnRng pacings with the same seed produce identical sequences
	// regardless of the shared rng passed in.
	mk := func() Pacing {
		return OwnRng{Rng: rand.New(rand.NewSource(5)), P: Uniform{Min: 1, Max: 1000}}
	}
	a, b := mk(), mk()
	sharedA, sharedB := rand.New(rand.NewSource(1)), rand.New(rand.NewSource(999))
	for i := 0; i < 100; i++ {
		da := a.Next(sharedA, vclock.Time(i))
		db := b.Next(sharedB, vclock.Time(i*7))
		if da != db {
			t.Fatalf("OwnRng sequences diverged at %d: %d vs %d", i, da, db)
		}
	}
}

func TestChaseStallsOnlyTheTarget(t *testing.T) {
	rng := testRng()
	target := 1
	c0 := &Chase{Self: 0, Target: &target, Base: Fixed{D: 2}, Stall: 500}
	c1 := &Chase{Self: 1, Target: &target, Base: Fixed{D: 2}, Stall: 500}
	if d := c0.Next(rng, 0); d != 2 {
		t.Fatalf("non-target delayed %d, want base 2", d)
	}
	if d := c1.Next(rng, 0); d != 500 {
		t.Fatalf("target delayed %d, want stall 500", d)
	}
	// Bounded chase: stall stays fixed.
	if d := c1.Next(rng, 0); d != 500 {
		t.Fatalf("bounded stall grew to %d", d)
	}
	// Retargeting moves the persecution.
	target = 0
	if d := c0.Next(rng, 0); d != 500 {
		t.Fatalf("new target delayed %d, want 500", d)
	}
	if d := c1.Next(rng, 0); d != 2 {
		t.Fatalf("released process delayed %d, want base", d)
	}
}

func TestChaseGrowingDoubles(t *testing.T) {
	rng := testRng()
	target := 0
	c := &Chase{Self: 0, Target: &target, Stall: 10, Grow: true}
	want := []vclock.Duration{10, 20, 40, 80}
	for i, w := range want {
		if d := c.Next(rng, 0); d != w {
			t.Fatalf("stall %d = %d, want %d", i, d, w)
		}
	}
	// Nil target: never chased, default base applies.
	free := &Chase{Self: 0, Target: nil, Stall: 10}
	if d := free.Next(rng, 0); d < 1 || d > 8 {
		t.Fatalf("nil-target delay %d, want default base in [1,8]", d)
	}
}
