package sched

import (
	"reflect"
	"testing"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// fakeProc records the virtual times at which it was stepped and fired.
type fakeProc struct {
	id        int
	stepTimes []vclock.Time
	fireTimes []vclock.Time
	nextX     uint64 // returned by OnTimer; 0 disarms
}

func (p *fakeProc) Step(now vclock.Time) { p.stepTimes = append(p.stepTimes, now) }
func (p *fakeProc) OnTimer(now vclock.Time) uint64 {
	p.fireTimes = append(p.fireTimes, now)
	return p.nextX
}
func (p *fakeProc) Leader() int { return p.id }

func fakeWorld(t *testing.T, cfg Config, xs ...uint64) (*World, []*fakeProc) {
	t.Helper()
	procs := make([]Process, cfg.N)
	fakes := make([]*fakeProc, cfg.N)
	for i := range procs {
		x := uint64(1)
		if i < len(xs) {
			x = xs[i]
		}
		fakes[i] = &fakeProc{id: i, nextX: x}
		procs[i] = fakes[i]
	}
	mem := shmem.NewSimMem(cfg.N)
	w, err := NewWorld(cfg, procs, mem)
	if err != nil {
		t.Fatal(err)
	}
	return w, fakes
}

func TestConfigValidation(t *testing.T) {
	mem := shmem.NewSimMem(2)
	mk := func(cfg Config, n int) error {
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &fakeProc{id: i, nextX: 1}
		}
		_, err := NewWorld(cfg, procs, mem)
		return err
	}
	if err := mk(Config{N: 1, Horizon: 10}, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if err := mk(Config{N: 2, Horizon: 0}, 2); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := mk(Config{N: 2, Horizon: 10}, 3); err == nil {
		t.Error("proc count mismatch accepted")
	}
	if err := mk(Config{N: 2, Horizon: 10, AWBProc: 5}, 2); err == nil {
		t.Error("AWBProc out of range accepted")
	}
	if err := mk(Config{N: 2, Horizon: 10, AWBProc: 0,
		Crash: map[int]vclock.Time{0: 5}}, 2); err == nil {
		t.Error("crashing the AWB1 process accepted")
	}
	if err := mk(Config{N: 2, Horizon: 10, Pacing: make([]Pacing, 1)}, 2); err == nil {
		t.Error("wrong Pacing length accepted")
	}
	if err := mk(Config{N: 2, Horizon: 10, Timers: make([]vclock.Behavior, 5)}, 2); err == nil {
		t.Error("wrong Timers length accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) ([]Sample, []vclock.Time) {
		w, fakes := fakeWorld(t, Config{N: 3, Seed: seed, Horizon: 5000, AWBProc: -1})
		res := w.Run()
		return res.Samples, fakes[0].stepTimes
	}
	aSamples, aSteps := run(99)
	bSamples, bSteps := run(99)
	if !reflect.DeepEqual(aSamples, bSamples) || !reflect.DeepEqual(aSteps, bSteps) {
		t.Fatal("same seed produced different runs")
	}
	// Different seeds must draw different interleavings (observable via
	// the step times; the sample times are fixed by SampleEvery).
	_, cSteps := run(100)
	if reflect.DeepEqual(aSteps, cSteps) {
		t.Fatal("different seeds produced identical step schedules (suspicious)")
	}
}

func TestCrashStopsProcess(t *testing.T) {
	w, fakes := fakeWorld(t, Config{
		N: 2, Seed: 1, Horizon: 10_000, AWBProc: -1,
		Crash: map[int]vclock.Time{1: 2_000},
	})
	res := w.Run()
	if !res.Crashed[1] || res.Crashed[0] {
		t.Fatalf("Crashed = %v", res.Crashed)
	}
	if res.CrashTime[1] != 2_000 || res.CrashTime[0] != -1 {
		t.Fatalf("CrashTime = %v", res.CrashTime)
	}
	for _, ts := range fakes[1].stepTimes {
		if ts >= 2_000 {
			t.Fatalf("crashed process stepped at t=%d", ts)
		}
	}
	for _, ts := range fakes[1].fireTimes {
		if ts >= 2_000 {
			t.Fatalf("crashed process fired at t=%d", ts)
		}
	}
	// Samples report -1 for the crashed process afterwards.
	last := res.Samples[len(res.Samples)-1]
	if last.Leaders[1] != -1 {
		t.Errorf("crashed process sampled as %d", last.Leaders[1])
	}
	if last.Leaders[0] != 0 {
		t.Errorf("live process sampled as %d", last.Leaders[0])
	}
}

func TestAWBClampBoundsGaps(t *testing.T) {
	// Process 0 has a pathologically slow pacing; the AWB clamp must cap
	// its post-tau1 gaps at Delta.
	cfg := Config{
		N: 2, Seed: 5, Horizon: 50_000,
		AWBProc: 0, Tau1: 10_000, Delta: 6,
		Pacing: []Pacing{Uniform{Min: 500, Max: 900}, nil},
	}
	w, fakes := fakeWorld(t, cfg)
	w.Run()
	var prev vclock.Time = -1
	for _, ts := range fakes[0].stepTimes {
		if prev >= cfg.Tau1 && ts-prev > 6 {
			t.Fatalf("AWB1 gap %d > Delta at t=%d", ts-prev, ts)
		}
		prev = ts
	}
	// Sanity: before tau1 the slow pacing really produced big gaps.
	big := false
	prev = -1
	for _, ts := range fakes[0].stepTimes {
		if ts > cfg.Tau1 {
			break
		}
		if prev >= 0 && ts-prev > 6 {
			big = true
		}
		prev = ts
	}
	if !big {
		t.Error("test vacuous: no large pre-tau1 gaps")
	}
}

func TestTimerRearmUsesReturnedValue(t *testing.T) {
	// nextX = 10 with Exact{Scale 3, Floor 0} => firings 10*3=30 ticks
	// apart (after the initial firing at Expire(0, InitialTimeout)).
	cfg := Config{
		N: 2, Seed: 1, Horizon: 1_000, AWBProc: -1,
		Timers:         []vclock.Behavior{vclock.Exact{Scale: 3}, vclock.Exact{Scale: 3}},
		InitialTimeout: 2,
	}
	w, fakes := fakeWorld(t, cfg, 10, 10)
	w.Run()
	fires := fakes[0].fireTimes
	if len(fires) < 3 {
		t.Fatalf("too few firings: %v", fires)
	}
	if fires[0] != 6 { // Expire(0, 2) = 6
		t.Errorf("first firing at %d, want 6", fires[0])
	}
	for i := 1; i < len(fires); i++ {
		if got := fires[i] - fires[i-1]; got != 30 {
			t.Fatalf("firing gap %d, want 30 (timer must re-arm to returned x)", got)
		}
	}
}

func TestTimerDisarmOnZero(t *testing.T) {
	w, fakes := fakeWorld(t, Config{N: 2, Seed: 1, Horizon: 10_000, AWBProc: -1}, 0, 1)
	w.Run()
	if got := len(fakes[0].fireTimes); got != 1 {
		t.Fatalf("disarmed timer fired %d times, want exactly the initial firing", got)
	}
	if len(fakes[1].fireTimes) < 10 {
		t.Errorf("armed timer fired only %d times", len(fakes[1].fireTimes))
	}
}

func TestHookAndStop(t *testing.T) {
	w, _ := fakeWorld(t, Config{N: 2, Seed: 1, Horizon: 1 << 40, AWBProc: -1, SampleEvery: 100})
	calls := 0
	w.AddHook(HookFunc(func(w *World, s Sample) {
		calls++
		if s.T >= 1_000 {
			w.Stop()
		}
	}))
	res := w.Run()
	if res.End > 2_000 {
		t.Fatalf("Stop() ignored: run ended at %d", res.End)
	}
	if calls == 0 {
		t.Fatal("hook never called")
	}
}

func TestAuxStepper(t *testing.T) {
	w, _ := fakeWorld(t, Config{N: 2, Seed: 1, Horizon: 5_000, AWBProc: -1})
	var auxTimes []vclock.Time
	w.AddAux(auxFunc(func(now vclock.Time) { auxTimes = append(auxTimes, now) }), Fixed{D: 50})
	w.Run()
	if len(auxTimes) < 90 {
		t.Fatalf("aux stepped %d times, want ~100", len(auxTimes))
	}
	for i := 1; i < len(auxTimes); i++ {
		if auxTimes[i]-auxTimes[i-1] != 50 {
			t.Fatalf("aux pacing not honored: gap %d", auxTimes[i]-auxTimes[i-1])
		}
	}
}

type auxFunc func(now vclock.Time)

func (f auxFunc) Step(now vclock.Time) { f(now) }

func TestStepsAndFiringsCounted(t *testing.T) {
	w, fakes := fakeWorld(t, Config{N: 2, Seed: 1, Horizon: 5_000, AWBProc: -1})
	res := w.Run()
	for i, f := range fakes {
		if res.Steps[i] != uint64(len(f.stepTimes)) {
			t.Errorf("Steps[%d] = %d, want %d", i, res.Steps[i], len(f.stepTimes))
		}
		if res.TimerFirings[i] != uint64(len(f.fireTimes)) {
			t.Errorf("TimerFirings[%d] = %d, want %d", i, res.TimerFirings[i], len(f.fireTimes))
		}
	}
	if res.End < 4_900 {
		t.Errorf("run ended early at %d", res.End)
	}
}

func TestCorrectHelper(t *testing.T) {
	w, _ := fakeWorld(t, Config{
		N: 3, Seed: 1, Horizon: 5_000, AWBProc: -1,
		Crash: map[int]vclock.Time{2: 100},
	})
	res := w.Run()
	if !res.Correct(0) || res.Correct(2) {
		t.Errorf("Correct() wrong: %v", res.Crashed)
	}
}
