package consensus

import (
	"context"
	"time"

	"omegasm/internal/vclock"
)

// Steppable is one drivable state machine: Proposer, Replica and KV all
// take micro-steps through this shape, so the same driver serves the
// whole stack.
type Steppable interface {
	Step(now vclock.Time)
}

// StepFunc adapts a function to Steppable (e.g. to drive KV.StepN bursts).
type StepFunc func(now vclock.Time)

// Step implements Steppable.
func (f StepFunc) Step(now vclock.Time) { f(now) }

// Drive steps every machine whose live(i) reports true once per interval,
// until ctx is done. It is the context-aware driving loop for running the
// consensus layer on live goroutines (under the simulator the scheduler
// steps machines itself); now is nanoseconds since Drive started. Drive
// blocks; run it on its own goroutine and cancel ctx to stop.
func Drive(ctx context.Context, interval time.Duration, live func(i int) bool, machines []Steppable) {
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			now := vclock.Time(time.Since(start))
			for i, m := range machines {
				if live != nil && !live(i) {
					continue
				}
				m.Step(now)
			}
		}
	}
}
