package consensus

import (
	"context"
	"time"

	"omegasm/internal/engine"
	"omegasm/internal/vclock"
)

// Steppable is one drivable state machine: Proposer, Replica and KV all
// take micro-steps through this shape, so the same driver serves the
// whole stack.
type Steppable interface {
	// Step advances the machine by one micro-step at time now.
	Step(now vclock.Time)
}

// StepFunc adapts a function to Steppable (e.g. to drive KV.StepN bursts).
type StepFunc func(now vclock.Time)

// Step implements Steppable.
func (f StepFunc) Step(now vclock.Time) { f(now) }

// Drive steps every machine whose live(i) reports true once per interval,
// until ctx is done; now is nanoseconds since Drive started. Drive
// blocks; run it on its own goroutine and cancel ctx to stop.
//
// Deprecated-in-spirit compatibility shim: Drive predates the engine
// layer and polls blindly — every machine is stepped every tick whether
// or not it has work, and work enqueued between ticks waits for the next
// one. It is kept (implemented over a single engine.Live machine, with
// the historical semantics) for callers that drive raw Steppables
// themselves; the public KV service now runs its replicas as wake-hinted
// engine machines instead, which is why a Put wakes a parked replica
// immediately. New code should add machines to an engine.Live directly.
func Drive(ctx context.Context, interval time.Duration, live func(i int) bool, machines []Steppable) {
	if interval <= 0 {
		interval = engine.DefaultStepInterval
	}
	eng := engine.NewLive(engine.LiveConfig{})
	eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
		for i, m := range machines {
			if live != nil && !live(i) {
				continue
			}
			m.Step(now)
		}
		return engine.At(now + int64(interval))
	}), engine.FirstStepAt(int64(interval)))
	if err := eng.Start(); err != nil {
		return
	}
	<-ctx.Done()
	eng.Stop()
}
