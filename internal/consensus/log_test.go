package consensus

import (
	"math/rand"
	"reflect"
	"testing"

	"omegasm/internal/shmem"
)

func newLogReplicas(t *testing.T, n, slots int, omega func(i int) func() int) []*Replica {
	t.Helper()
	mem := shmem.NewSimMem(n)
	log := NewLog(mem, n, slots)
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		r, err := NewReplica(log, i, omega(i))
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
	}
	return reps
}

func TestLogStableLeaderCommitsInOrder(t *testing.T) {
	reps := newLogReplicas(t, 3, 16, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 1; k <= 5; k++ {
		reps[0].Submit(uint32(k))
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 200_000; s++ {
		reps[rng.Intn(3)].Step(0)
		if len(reps[0].Committed()) >= 5 && len(reps[1].Committed()) >= 5 && len(reps[2].Committed()) >= 5 {
			break
		}
	}
	want := []uint32{1, 2, 3, 4, 5}
	for i, r := range reps {
		got := r.Committed()
		if len(got) < 5 || !reflect.DeepEqual(got[:5], want) {
			t.Fatalf("replica %d committed %v, want prefix %v", i, got, want)
		}
	}
	if reps[0].Pending() != 0 {
		t.Errorf("leader still has %d pending", reps[0].Pending())
	}
}

// TestLogPrefixAgreementUnderChurn: all replicas propose concurrently
// (self-proclaimed leaders); committed sequences must stay prefix-
// consistent for every seed.
func TestLogPrefixAgreementUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		reps := newLogReplicas(t, 3, 32, func(i int) func() int {
			return func() int { return i }
		})
		for i, r := range reps {
			for k := 0; k < 3; k++ {
				r.Submit(uint32(100*i + k + 1))
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 100_000; s++ {
			reps[rng.Intn(3)].Step(0)
		}
		// Prefix consistency.
		var longest []uint32
		for _, r := range reps {
			if c := r.Committed(); len(c) > len(longest) {
				longest = c
			}
		}
		for i, r := range reps {
			c := r.Committed()
			if !reflect.DeepEqual(c, longest[:len(c)]) {
				t.Fatalf("seed %d: replica %d diverged: %v vs %v", seed, i, c, longest)
			}
		}
		// No slot committed twice with different values is implied by
		// prefix equality; also check no duplicate values within a
		// replica's own committed prefix beyond resubmissions (inputs are
		// unique here).
		seen := map[uint32]bool{}
		for _, v := range longest {
			if seen[v] {
				t.Fatalf("seed %d: value %d committed in two slots", seed, v)
			}
			seen[v] = true
		}
	}
}

func TestLogFullStopsCleanly(t *testing.T) {
	reps := newLogReplicas(t, 2, 2, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 1; k <= 5; k++ {
		reps[0].Submit(uint32(k))
	}
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 50_000; s++ {
		reps[rng.Intn(2)].Step(0)
	}
	if got := len(reps[0].Committed()); got != 2 {
		t.Fatalf("committed %d, want exactly the 2 slots available", got)
	}
	// Further steps are no-ops, not panics.
	reps[0].Step(0)
}

func TestReplicaValidation(t *testing.T) {
	mem := shmem.NewSimMem(2)
	log := NewLog(mem, 2, 4)
	if _, err := NewReplica(log, 0, nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestReplicaLearnsForeignCommits(t *testing.T) {
	reps := newLogReplicas(t, 2, 4, func(i int) func() int {
		return func() int { return 0 }
	})
	reps[0].Submit(7)
	for s := 0; s < 10_000; s++ {
		reps[0].Step(0)
		if len(reps[0].Committed()) == 1 {
			break
		}
	}
	if len(reps[0].Committed()) != 1 {
		t.Fatal("leader did not commit")
	}
	// Replica 1 has nothing pending and is not leader: it learns purely
	// from the decision registers.
	for s := 0; s < 100 && len(reps[1].Committed()) == 0; s++ {
		reps[1].Step(0)
	}
	if got := reps[1].Committed(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("follower learned %v", got)
	}
}
