package consensus

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"omegasm/internal/vclock"
)

// TestDriveStopsOnContextCancel: Drive must return promptly once its
// context dies, and step nothing afterwards.
func TestDriveStopsOnContextCancel(t *testing.T) {
	var steps atomic.Int64
	m := StepFunc(func(vclock.Time) { steps.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Drive(ctx, 100*time.Microsecond, nil, []Steppable{m})
	}()
	// Let it tick a few times, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for steps.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if steps.Load() < 3 {
		t.Fatal("driver never ticked")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drive did not return after cancel")
	}
	after := steps.Load()
	time.Sleep(20 * time.Millisecond)
	if got := steps.Load(); got != after {
		t.Errorf("machines stepped %d more times after Drive returned", got-after)
	}
}

// TestDriveLiveFiltering: machines whose live(i) is false are skipped;
// liveness flips take effect on the next tick.
func TestDriveLiveFiltering(t *testing.T) {
	var a, b atomic.Int64
	var bLive atomic.Bool
	machines := []Steppable{
		StepFunc(func(vclock.Time) { a.Add(1) }),
		StepFunc(func(vclock.Time) { b.Add(1) }),
	}
	live := func(i int) bool { return i == 0 || bLive.Load() }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Drive(ctx, 100*time.Microsecond, live, machines)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Load() < 5 {
		t.Fatal("live machine never stepped")
	}
	if b.Load() != 0 {
		t.Fatalf("dead machine stepped %d times", b.Load())
	}
	bLive.Store(true)
	before := b.Load()
	for b.Load() < before+3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Load() < before+3 {
		t.Error("revived machine not stepped after liveness flip")
	}
	cancel()
	<-done
}

// TestDriveDefaultIntervalNormalization: a non-positive interval falls
// back to the shared engine default instead of panicking the ticker.
func TestDriveDefaultIntervalNormalization(t *testing.T) {
	for _, interval := range []time.Duration{0, -time.Second} {
		var steps atomic.Int64
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			Drive(ctx, interval, nil, []Steppable{StepFunc(func(vclock.Time) { steps.Add(1) })})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for steps.Load() < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
		<-done
		if steps.Load() < 2 {
			t.Fatalf("interval %v: driver did not tick at the default cadence", interval)
		}
	}
}

// TestDriveMonotonicNow: the virtual now handed to machines never goes
// backwards and starts near zero.
func TestDriveMonotonicNow(t *testing.T) {
	var last atomic.Int64
	var bad atomic.Bool
	m := StepFunc(func(now vclock.Time) {
		if now < last.Load() {
			bad.Store(true)
		}
		last.Store(now)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	Drive(ctx, 100*time.Microsecond, nil, []Steppable{m})
	if bad.Load() {
		t.Error("now went backwards")
	}
	if last.Load() <= 0 {
		t.Error("now never advanced")
	}
}
