// Package consensus implements Omega-based consensus over 1WnR atomic
// registers, closing the loop on the paper's motivation: the eventual
// leader oracle is the weakest failure detector for solving consensus in
// crash-prone asynchronous shared-memory systems (paper references [19],
// [6]), and the paper's own Section 1 points at Paxos-style protocols
// ([9] Gafni & Lamport's Disk Paxos, [16] Lamport's Paxos) as the
// canonical consumers.
//
// The protocol here is single-memory Disk Paxos: each process owns one
// "block" of registers it alone writes (1WnR — the paper's model),
// consisting of a ballot-promise register MBAL[i] and a packed
// (bal, value) register BALINP[i]. Safety is that of Paxos and holds under
// full asynchrony and any number of crashes below n; liveness needs a
// single eventual proposer, which the Omega oracle provides.
//
// Splitting the Disk Paxos block into two registers is safe because:
// phase 1 writes only MBAL; phase 2 writes only BALINP (mbal is already
// the phase's ballot) and then re-checks every MBAL. For two competing
// ballots b < b', either b' phase-1 read sees b's BALINP write (and adopts
// its value), or b's phase-2 read sees b' in MBAL (and aborts) — the
// standard Paxos intersection argument with single-register granularity.
//
// The state machines take micro-steps (one phase action per Step call) so
// they run under the deterministic simulator and on live goroutines alike.
package consensus

import (
	"fmt"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Register class names.
const (
	ClassMBal   = "MBAL"
	ClassBalInp = "BALINP"
	ClassDec    = "DEC"
)

// NoValue is returned by Decided when no decision is known yet.
const NoValue = uint32(0xFFFFFFFF)

// Instance is the shared memory of one consensus instance.
type Instance struct {
	// N is the number of participating processes.
	N      int
	MBal   []shmem.Reg // [i] owned by i: highest ballot i entered
	BalInp []shmem.Reg // [i] owned by i: (bal<<32 | value) i last accepted
	Dec    []shmem.Reg // [i] owned by i: (1<<32 | value) once i decided
}

// NewInstance allocates the registers of one consensus instance. tag
// distinguishes instances sharing one memory (e.g. log slots).
func NewInstance(mem shmem.Mem, n int, tag int) *Instance {
	return &NewInstances(mem, n, tag, 1)[0]
}

// NewInstances allocates the instances of tags [tag0, tag0+k) in bulk,
// one contiguous backing array per register class (on memories with a
// bulk path — see shmem.RowAllocator). A recycling log re-instantiates
// a whole checkpoint interval of slots per window advance at commit
// rate, so instance allocation is steady-state commit-path overhead:
// bulk-allocating turns O(n·k) small objects into O(1) arrays per
// advance. The instances stay fresh objects per epoch — the returned
// block aliases nothing older — so the log's stale-reader argument
// (sealed epochs' registers become unreachable, never reused) is
// untouched.
func NewInstances(mem shmem.Mem, n, tag0, k int) []Instance {
	mb := shmem.WordRowBlock(mem, ClassMBal, tag0, k, n)
	bi := shmem.WordRowBlock(mem, ClassBalInp, tag0, k, n)
	dec := shmem.WordRowBlock(mem, ClassDec, tag0, k, n)
	insts := make([]Instance, k)
	for j := range insts {
		insts[j] = Instance{N: n, MBal: mb[j], BalInp: bi[j], Dec: dec[j]}
	}
	return insts
}

func packBalInp(bal uint32, v uint32) uint64 { return uint64(bal)<<32 | uint64(v) }
func unpackBalInp(w uint64) (bal uint32, v uint32) {
	return uint32(w >> 32), uint32(w)
}
func packDec(v uint32) uint64 { return 1<<32 | uint64(v) }
func unpackDec(w uint64) (v uint32, ok bool) {
	return uint32(w), w>>32 != 0
}

type phase int

const (
	phaseFollow phase = iota + 1 // not proposing: poll DEC
	phase1                       // wrote MBAL, about to scan
	phase2                       // wrote BALINP, about to verify
	phaseDone
)

// Proposer is one process's state machine for one consensus instance.
//
// Omega injects liveness: the proposer only advances ballots while the
// oracle names it leader; everyone else follows by polling the decision
// registers. Safety never depends on the oracle's output.
type Proposer struct {
	inst  *Instance
	id    int
	omega func() int // the leader oracle (task T1 of the core algorithms)

	input   uint32
	phase   phase
	ballot  uint32
	chosen  uint32 // value carried into phase 2
	decided bool
	value   uint32
	rounds  int // ballot attempts, for the experiment's cost metric
	// wonBallot records that this proposer's OWN phase 2 completed — it
	// wrote the decision under its own ballot rather than adopting one it
	// read. A won ballot proves the proposer observed every lower ballot's
	// outcome (the phase-1/phase-2 intersection), which is what the
	// lease catch-up barrier and quorum reads need; an adopted decision
	// proves nothing about the adopter.
	wonBallot bool
}

// NewProposer creates the state machine of process id proposing input on
// inst, with omega as its leader oracle.
func NewProposer(inst *Instance, id int, input uint32, omega func() int) (*Proposer, error) {
	if input == NoValue {
		return nil, fmt.Errorf("consensus: input %#x is the reserved NoValue sentinel", input)
	}
	if omega == nil {
		return nil, fmt.Errorf("consensus: nil omega oracle")
	}
	return &Proposer{
		inst:  inst,
		id:    id,
		omega: omega,
		input: input,
		phase: phaseFollow,
	}, nil
}

// reset re-arms the state machine for a new instance and input, reusing
// the allocation: a replica would otherwise construct one proposer per
// slot it leads, which is the dominant per-commit heap allocation on the
// steady-state write path. The caller guarantees input is not NoValue
// (the same contract NewProposer validates).
func (p *Proposer) reset(inst *Instance, input uint32) {
	p.inst = inst
	p.input = input
	p.phase = phaseFollow
	p.ballot = 0
	p.chosen = 0
	p.decided = false
	p.value = 0
	p.rounds = 0
	p.wonBallot = false
}

// WonBallot reports whether the decided value was decided by this
// proposer's own completed phase 2 (meaningful once Decided returns
// true; false when the decision was adopted from another proposer).
func (p *Proposer) WonBallot() bool { return p.wonBallot }

// Decided returns the decided value, or (NoValue, false).
func (p *Proposer) Decided() (uint32, bool) {
	if !p.decided {
		return NoValue, false
	}
	return p.value, true
}

// Rounds returns the number of ballots this proposer started.
func (p *Proposer) Rounds() int { return p.rounds }

// Step advances the state machine by one phase action.
func (p *Proposer) Step(vclock.Time) {
	if p.decided {
		return
	}
	// Adopt any published decision first: followers terminate this way,
	// and a demoted proposer abandons its ballot.
	for i := 0; i < p.inst.N; i++ {
		if v, ok := unpackDec(p.inst.Dec[i].Read(p.id)); ok {
			p.decide(v)
			return
		}
	}
	switch p.phase {
	case phaseFollow:
		if p.omega() != p.id {
			return
		}
		p.startBallot(p.maxSeenBallot())
	case phase1:
		if p.omega() != p.id {
			p.phase = phaseFollow
			return
		}
		maxM, maxBal, maxVal := p.scan()
		if maxM > p.ballot {
			p.startBallot(maxM)
			return
		}
		p.chosen = p.input
		if maxBal > 0 {
			p.chosen = maxVal
		}
		p.inst.BalInp[p.id].Write(p.id, packBalInp(p.ballot, p.chosen))
		p.phase = phase2
	case phase2:
		if p.omega() != p.id {
			p.phase = phaseFollow
			return
		}
		maxM, _, _ := p.scan()
		if maxM > p.ballot {
			p.startBallot(maxM)
			return
		}
		p.wonBallot = true
		p.inst.Dec[p.id].Write(p.id, packDec(p.chosen))
		p.decide(p.chosen)
	}
}

func (p *Proposer) decide(v uint32) {
	p.decided = true
	p.value = v
	p.phase = phaseDone
	// Republish so laggards can learn from any register row.
	p.inst.Dec[p.id].Write(p.id, packDec(v))
}

// startBallot picks the next ballot above floor that is congruent to this
// process (ballot mod n == id, shifted by one so ballot 0 means "none").
func (p *Proposer) startBallot(floor uint32) {
	n := uint32(p.inst.N)
	b := (floor/n + 1) * n // smallest multiple of n strictly above floor
	p.ballot = b + uint32(p.id) + 1
	p.rounds++
	p.inst.MBal[p.id].Write(p.id, uint64(p.ballot))
	p.phase = phase1
}

// scan reads every process's block and returns the highest promise ballot,
// plus the (bal, value) of the highest accepted ballot.
func (p *Proposer) scan() (maxMBal uint32, maxBal uint32, maxVal uint32) {
	for i := 0; i < p.inst.N; i++ {
		m := uint32(p.inst.MBal[i].Read(p.id))
		if m > maxMBal {
			maxMBal = m
		}
		bal, val := unpackBalInp(p.inst.BalInp[i].Read(p.id))
		if bal > maxBal {
			maxBal, maxVal = bal, val
		}
	}
	return maxMBal, maxBal, maxVal
}

func (p *Proposer) maxSeenBallot() uint32 {
	m, _, _ := p.scan()
	return m
}
