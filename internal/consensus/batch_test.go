package consensus

import (
	"math/rand"
	"reflect"
	"testing"

	"omegasm/internal/shmem"
)

func newBatchReplicas(t *testing.T, n, slots, maxBatch int, omega func(i int) func() int) []*Replica {
	t.Helper()
	mem := shmem.NewSimMem(n)
	log, err := NewBatchLog(mem, n, slots, maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		r, err := NewReplica(log, i, omega(i))
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
	}
	return reps
}

func TestBatchDescEncoding(t *testing.T) {
	// Batch coordinates: the full 12-bit space on a plain batched log
	// (historical cap 4094), the bit-11-clear half on a checkpointing one.
	for _, c := range []struct{ pid, seq int }{{0, 0}, {3, 17}, {15, batchSeqCapCkpt - 1}, {15, batchSeqCapPlain - 1}} {
		desc := encodeBatchDesc(c.pid, c.seq)
		if !isDesc(desc) {
			t.Fatalf("batch descriptor (%d,%d) not recognized", c.pid, c.seq)
		}
		if c.seq < batchSeqCapCkpt && isCkptDesc(desc) {
			t.Fatalf("checkpointing-log batch descriptor (%d,%d) classified as checkpoint", c.pid, c.seq)
		}
		pid, seq := decodeBatchDesc(desc)
		if pid != c.pid || seq != c.seq {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.pid, c.seq, pid, seq)
		}
	}
	for _, c := range []struct{ pid, seq int }{{0, 0}, {7, 99}, {15, ckptSeqCap - 1}} {
		desc := encodeCkptDesc(c.pid, c.seq)
		if !isDesc(desc) || !isCkptDesc(desc) {
			t.Fatalf("checkpoint descriptor (%d,%d) not recognized", c.pid, c.seq)
		}
		pid, seq := decodeCkptDesc(desc)
		if pid != c.pid || seq != c.seq {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.pid, c.seq, pid, seq)
		}
	}
	// The sequence caps keep every reachable descriptor distinct from
	// NoValue: the colliding coordinates are out of range by construction.
	if encodeCkptDesc(15, 0x7FF) != NoValue {
		t.Fatal("expected checkpoint (15, 0x7FF) to collide with NoValue; the cap comment is stale")
	}
	if encodeBatchDesc(15, 0xFFF) != NoValue {
		t.Fatal("expected batch (15, 0xFFF) to collide with NoValue; the cap comment is stale")
	}
	if ckptSeqCap > 0x7FF || batchSeqCapPlain > 0xFFF || batchSeqCapCkpt > 0x7FF {
		t.Fatal("sequence caps reach the NoValue coordinates")
	}
	if IsReserved(EncodeSet(0xFFFF, 1), true) != true {
		t.Fatal("key 0xFFFF must be reserved when the descriptor row is claimed")
	}
	if IsReserved(EncodeSet(0xFFFF, 1), false) != false {
		t.Fatal("key 0xFFFF must stay usable on a plain log")
	}
}

func TestNewBatchLogValidation(t *testing.T) {
	mem := shmem.NewSimMem(2)
	if _, err := NewBatchLog(mem, 2, 4, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
	if _, err := NewBatchLog(shmem.NewSimMem(17), 17, 4, 8); err == nil {
		t.Error("17 processes accepted on a batched log")
	}
	if _, err := NewBatchLog(shmem.NewSimMem(17), 17, 4, 1); err != nil {
		t.Errorf("unbatched log must not cap processes: %v", err)
	}
}

// TestBatchPacksPendingIntoFewSlots: a stable leader with a deep queue
// commits many commands over few consensus slots, in submission order, and
// every replica resolves the same flattened stream.
func TestBatchPacksPendingIntoFewSlots(t *testing.T) {
	reps := newBatchReplicas(t, 3, 16, 8, func(i int) func() int {
		return func() int { return 0 }
	})
	want := make([]uint32, 20)
	for k := range want {
		want[k] = uint32(k + 1)
		reps[0].Submit(want[k])
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 500_000; s++ {
		reps[rng.Intn(3)].Step(0)
		if reps[0].CommittedLen() >= 20 && reps[1].CommittedLen() >= 20 && reps[2].CommittedLen() >= 20 {
			break
		}
	}
	for i, r := range reps {
		got := r.Committed()
		if len(got) != 20 || !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d committed %v, want %v", i, got, want)
		}
		// 20 commands at batch 8 need at least 3 slots; batching must have
		// used far fewer slots than commands.
		if r.SlotsDecided() >= 20 || r.SlotsDecided() < 3 {
			t.Fatalf("replica %d used %d slots for 20 commands", i, r.SlotsDecided())
		}
	}
	if reps[0].Pending() != 0 {
		t.Errorf("leader still has %d pending", reps[0].Pending())
	}
}

// TestBatchPrefixAgreementUnderChurn: concurrently proposing replicas
// (self-proclaimed leaders) publishing competing batches must keep the
// flattened committed streams prefix-consistent, and no command may
// commit twice (inputs are unique and nothing resubmits here).
func TestBatchPrefixAgreementUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		reps := newBatchReplicas(t, 3, 32, 4, func(i int) func() int {
			return func() int { return i }
		})
		for i, r := range reps {
			for k := 0; k < 6; k++ {
				r.Submit(uint32(100*i + k + 1))
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 150_000; s++ {
			reps[rng.Intn(3)].Step(0)
		}
		var longest []uint32
		for _, r := range reps {
			if c := r.Committed(); len(c) > len(longest) {
				longest = c
			}
		}
		for i, r := range reps {
			c := r.Committed()
			if !reflect.DeepEqual(c, longest[:len(c)]) {
				t.Fatalf("seed %d: replica %d diverged: %v vs %v", seed, i, c, longest)
			}
		}
		seen := map[uint32]bool{}
		for _, v := range longest {
			if isDesc(v) {
				t.Fatalf("seed %d: descriptor %#x leaked into the flattened stream", seed, v)
			}
			if seen[v] {
				t.Fatalf("seed %d: value %d committed twice", seed, v)
			}
			seen[v] = true
		}
	}
}

// TestBatchAreaExhaustionFallsBackToPlain: once a proposer's batch areas
// are spent (the run-time path there is leadership churn wasting
// publications on slots another proposer wins), it keeps committing via
// plain single-command proposals rather than wedging.
func TestBatchAreaExhaustionFallsBackToPlain(t *testing.T) {
	reps := newBatchReplicas(t, 2, 4, 8, func(i int) func() int {
		return func() int { return 0 }
	})
	// Burn replica 0's whole header area with publications that will
	// never be proposed.
	burned := 0
	for {
		if _, ok := reps[0].publishBatch([]uint32{901, 902}); !ok {
			break
		}
		burned++
	}
	if burned != 4 { // hdrCap = min(slots, batch seq cap) = 4
		t.Fatalf("burned %d publications, want 4", burned)
	}
	for k := 1; k <= 30; k++ {
		reps[0].Submit(uint32(k))
	}
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 200_000 && !reps[0].LogFull(); s++ {
		reps[rng.Intn(2)].Step(0)
	}
	if !reps[0].LogFull() {
		t.Fatal("log never filled")
	}
	got := reps[0].Committed()
	// Every slot decided one plain command: batching was unavailable but
	// the log kept moving.
	want := []uint32{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("committed %v, want %v", got, want)
	}
	reps[0].Step(0) // full log: no-op, no panic
}

// TestBatchAreaCoversFullWidth: with properly sized areas a stable
// leader batches at full width for the whole log — Capacity()*MaxBatch
// commands are genuinely reachable.
func TestBatchAreaCoversFullWidth(t *testing.T) {
	reps := newBatchReplicas(t, 2, 4, 8, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 1; k <= 32; k++ {
		reps[0].Submit(uint32(k))
	}
	rng := rand.New(rand.NewSource(9))
	for s := 0; s < 200_000 && !reps[0].LogFull(); s++ {
		reps[rng.Intn(2)].Step(0)
	}
	got := reps[0].Committed()
	if len(got) != 32 {
		t.Fatalf("committed %d commands over 4 slots at batch 8, want all 32", len(got))
	}
	for i, v := range got {
		if v != uint32(i+1) {
			t.Fatalf("committed[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestBatchedKVStoreConverges: the KV state machine over a batched log
// applies flattened batches in order and converges on every replica.
func TestBatchedKVStoreConverges(t *testing.T) {
	mem := shmem.NewSimMem(3)
	log, err := NewBatchLog(mem, 3, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	kvs := make([]*KV, 3)
	for i := range kvs {
		r, err := NewReplica(log, i, func() int { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if kvs[i], err = NewKV(r); err != nil {
			t.Fatal(err)
		}
	}
	var pairs [][2]uint16
	for k := 0; k < 40; k++ {
		pairs = append(pairs, [2]uint16{uint16(k % 10), uint16(k)})
	}
	if err := kvs[0].SetAll(pairs...); err != nil {
		t.Fatal(err)
	}
	if err := kvs[0].Set(0xFFFF, 1); err == nil {
		t.Fatal("reserved key accepted on batched store")
	}
	if err := kvs[0].SetAll([2]uint16{1, 1}, [2]uint16{0xFFFF, 2}); err == nil {
		t.Fatal("SetAll with a reserved pair accepted")
	}
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 500_000; s++ {
		kvs[rng.Intn(3)].Step(0)
		if kvs[0].Applied() >= 40 && kvs[1].Applied() >= 40 && kvs[2].Applied() >= 40 {
			break
		}
	}
	want := kvs[0].Snapshot()
	if len(want) != 10 {
		t.Fatalf("leader state has %d keys, want 10 (applied %d)", len(want), kvs[0].Applied())
	}
	for k := 0; k < 10; k++ {
		if v, ok := kvs[0].Get(uint16(k)); !ok || v != uint16(30+k) {
			t.Fatalf("key %d = (%d, %v), want %d (last write wins in order)", k, v, ok, 30+k)
		}
	}
	for i := 1; i < 3; i++ {
		if got := kvs[i].Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d state %v diverged from %v", i, got, want)
		}
	}
	if kvs[0].SlotsDecided() >= kvs[0].CommittedLen() {
		t.Fatalf("no batching engaged: %d slots for %d commands",
			kvs[0].SlotsDecided(), kvs[0].CommittedLen())
	}
	if kvs[0].MaxBatch() != 8 || !kvs[0].Batched() {
		t.Fatal("batch accessors disagree with construction")
	}
}

func TestDropGeneration(t *testing.T) {
	mem := shmem.NewSimMem(2)
	log := NewLog(mem, 2, 4)
	r, err := NewReplica(log, 0, func() int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	kv, err := NewKV(r)
	if err != nil {
		t.Fatal(err)
	}
	if kv.DropGeneration() != 0 {
		t.Fatal("fresh replica has nonzero drop generation")
	}
	if kv.DropPending() != 0 || kv.DropGeneration() != 0 {
		t.Fatal("dropping an empty queue must not bump the generation")
	}
	if err := kv.Set(1, 2); err != nil {
		t.Fatal(err)
	}
	if kv.PendingLen() != 1 {
		t.Fatal("pending not queued")
	}
	if kv.DropPending() != 1 || kv.DropGeneration() != 1 {
		t.Fatal("dropping a non-empty queue must bump the generation once")
	}
}
