package consensus

import (
	"testing"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// TestSteadyStateWriteZeroAllocs is the allocation regression gate for
// the write hot path: at steady state (every buffer warmed — staging,
// pending queue, proposer scratch, committed tail) a submitted write
// must ride to commit and application without a single heap allocation,
// across Set, the step burst that proposes and decides it, and the
// apply. The gate runs over the atomic substrate, the one the
// multi-core throughput benches measure.
func TestSteadyStateWriteZeroAllocs(t *testing.T) {
	const n = 3
	mem := shmem.NewAtomicMem(n, false)
	log := NewLog(mem, n, 2048)
	kvs := make([]*KV, n)
	for i := 0; i < n; i++ {
		r, err := NewReplica(log, i, func() int { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if kvs[i], err = NewKV(r); err != nil {
			t.Fatal(err)
		}
	}
	lead := kvs[0]
	now := vclock.Time(0)
	val := uint16(0)
	commitOne := func() {
		val = (val + 1) & 0x7FFF
		if err := lead.Set(1, val); err != nil {
			t.Fatal(err)
		}
		want := lead.Applied() + 1
		for lead.Applied() < want {
			now += 1000
			for _, kv := range kvs {
				kv.StepBurst(now, 8)
			}
		}
	}
	// Warm every buffer: slice growth and proposer setup happen in the
	// first commits, never again.
	for i := 0; i < 64; i++ {
		commitOne()
	}
	if avg := testing.AllocsPerRun(100, commitOne); avg != 0 {
		t.Errorf("steady-state committed write allocates %.2f times/op, want 0", avg)
	}
}
