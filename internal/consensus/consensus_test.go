package consensus

import (
	"math/rand"
	"testing"

	"omegasm/internal/shmem"
)

// stepAll drives the proposers in a seeded random interleaving until all
// decide or the step budget runs out.
func stepAll(t *testing.T, rng *rand.Rand, props []*Proposer, budget int) {
	t.Helper()
	for s := 0; s < budget; s++ {
		allDone := true
		for _, p := range props {
			if _, ok := p.Decided(); !ok {
				allDone = false
			}
		}
		if allDone {
			return
		}
		props[rng.Intn(len(props))].Step(0)
	}
	t.Fatal("step budget exhausted before all proposers decided")
}

func newInstanceProposers(t *testing.T, n int, omega func(i int) func() int) (*Instance, []*Proposer) {
	t.Helper()
	mem := shmem.NewSimMem(n)
	inst := NewInstance(mem, n, 0)
	props := make([]*Proposer, n)
	for i := 0; i < n; i++ {
		p, err := NewProposer(inst, i, uint32(100+i), omega(i))
		if err != nil {
			t.Fatal(err)
		}
		props[i] = p
	}
	return inst, props
}

func checkAgreementValidity(t *testing.T, props []*Proposer) uint32 {
	t.Helper()
	decided := uint32(NoValue)
	for i, p := range props {
		v, ok := p.Decided()
		if !ok {
			t.Fatalf("proposer %d undecided", i)
		}
		if decided == NoValue {
			decided = v
		} else if v != decided {
			t.Fatalf("agreement violated: %d vs %d", v, decided)
		}
	}
	if decided < 100 || decided >= uint32(100+len(props)) {
		t.Fatalf("validity violated: decided %d not among inputs", decided)
	}
	return decided
}

// TestConsensusStableLeader: with a constant oracle only the leader
// proposes; everyone decides its value.
func TestConsensusStableLeader(t *testing.T) {
	_, props := newInstanceProposers(t, 4, func(i int) func() int {
		return func() int { return 2 }
	})
	rng := rand.New(rand.NewSource(1))
	stepAll(t, rng, props, 100_000)
	if v := checkAgreementValidity(t, props); v != 102 {
		t.Fatalf("decided %d, want the stable leader's input 102", v)
	}
	if r := props[2].Rounds(); r != 1 {
		t.Errorf("stable leader used %d ballots, want 1", r)
	}
}

// TestConsensusSafetyUnderLeaderChurn: every process believes IT is the
// leader — the worst case Omega ever produces. Safety (agreement +
// validity) must hold regardless; termination holds here because each
// decided proposer publishes its decision.
func TestConsensusSafetyUnderLeaderChurn(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		_, props := newInstanceProposers(t, 4, func(i int) func() int {
			return func() int { return i } // everyone self-proclaims
		})
		rng := rand.New(rand.NewSource(seed))
		stepAll(t, rng, props, 500_000)
		checkAgreementValidity(t, props)
	}
}

// TestConsensusOscillatingOracle: the oracle output flips among processes
// over time (anarchy period), then settles. Agreement must hold across
// the churn.
func TestConsensusOscillatingOracle(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		step := 0
		_, props := newInstanceProposers(t, 3, func(i int) func() int {
			return func() int {
				if step < 200 {
					return (step / 10) % 3 // churn
				}
				return 0 // settled
			}
		})
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 200_000; s++ {
			step++
			props[rng.Intn(len(props))].Step(0)
			done := true
			for _, p := range props {
				if _, ok := p.Decided(); !ok {
					done = false
				}
			}
			if done {
				break
			}
		}
		checkAgreementValidity(t, props)
	}
}

// TestFollowersLearnFromDecisionRegisters: a follower whose oracle names
// someone else never proposes but still terminates by reading DEC.
func TestFollowersLearnFromDecisionRegisters(t *testing.T) {
	_, props := newInstanceProposers(t, 3, func(i int) func() int {
		return func() int { return 0 }
	})
	// Let only the leader run first.
	for s := 0; s < 100; s++ {
		props[0].Step(0)
		if _, ok := props[0].Decided(); ok {
			break
		}
	}
	if _, ok := props[0].Decided(); !ok {
		t.Fatal("leader did not decide alone")
	}
	if r := props[1].Rounds(); r != 0 {
		t.Fatalf("follower started %d ballots", r)
	}
	props[1].Step(0)
	if v, ok := props[1].Decided(); !ok || v != 100 {
		t.Fatalf("follower did not learn: (%d,%v)", v, ok)
	}
}

// TestCrashedProposerValueSurvives: a proposer that wrote phase-2 state
// and crashed may have its value adopted; at minimum, later ballots must
// not decide anything else if a decision already exists.
func TestCrashedProposerValueSurvives(t *testing.T) {
	inst, props := newInstanceProposers(t, 3, func(i int) func() int {
		return func() int { return i } // everyone proposes
	})
	p0 := props[0]
	// p0 runs alone up to (but not including) the decision write: ballot,
	// phase-1 scan, phase-2 write. Then it "crashes".
	p0.Step(0) // start ballot, write MBAL
	p0.Step(0) // phase 1 scan, write BALINP
	// p0's accepted (bal, value) is now visible; a later ballot by p1
	// must adopt p0's value.
	p1 := props[1]
	for s := 0; s < 1000; s++ {
		p1.Step(0)
		if _, ok := p1.Decided(); ok {
			break
		}
	}
	v, ok := p1.Decided()
	if !ok {
		t.Fatal("p1 never decided")
	}
	if v != 100 {
		t.Fatalf("p1 decided %d; must adopt the possibly-chosen value 100", v)
	}
	_ = inst
}

func TestProposerValidation(t *testing.T) {
	mem := shmem.NewSimMem(2)
	inst := NewInstance(mem, 2, 0)
	if _, err := NewProposer(inst, 0, NoValue, func() int { return 0 }); err == nil {
		t.Error("NoValue input accepted")
	}
	if _, err := NewProposer(inst, 0, 1, nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestBallotsAreUniquePerProcess(t *testing.T) {
	mem := shmem.NewSimMem(3)
	inst := NewInstance(mem, 3, 0)
	// Ballot formula: (floor/n+1)*n + id + 1 — distinct processes can
	// never produce the same ballot number.
	seen := map[uint32]int{}
	for id := 0; id < 3; id++ {
		p, err := NewProposer(inst, id, 1, func() int { return id })
		if err != nil {
			t.Fatal(err)
		}
		for floor := uint32(0); floor < 50; floor++ {
			p.startBallot(floor)
			if p.ballot <= floor {
				t.Fatalf("ballot %d not above floor %d", p.ballot, floor)
			}
			if owner, dup := seen[p.ballot]; dup && owner != id {
				t.Fatalf("ballot %d issued by both %d and %d", p.ballot, owner, id)
			}
			seen[p.ballot] = id
		}
	}
}

func TestPackUnpack(t *testing.T) {
	bal, v := unpackBalInp(packBalInp(7, 0xDEADBEEF))
	if bal != 7 || v != 0xDEADBEEF {
		t.Fatalf("balinp roundtrip: (%d,%x)", bal, v)
	}
	dv, ok := unpackDec(packDec(42))
	if !ok || dv != 42 {
		t.Fatalf("dec roundtrip: (%d,%v)", dv, ok)
	}
	if _, ok := unpackDec(0); ok {
		t.Fatal("zero register decoded as a decision")
	}
}
