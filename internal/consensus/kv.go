package consensus

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"omegasm/internal/vclock"
)

// keySpace is the size of the 16-bit key space the flat applied-state
// array covers.
const keySpace = 1 << 16

// statePresent is the presence bit of a flat state word: a key's slot
// holds statePresent|value once any committed Set wrote it (value 0 is
// distinguishable from "never written").
const statePresent = uint32(1) << 16

// KV is a replicated key-value store: the canonical state machine driven
// by the replicated log (the full Paxos-style stack the paper's
// introduction motivates, from the Omega oracle at the bottom to a
// linearizable-ish store at the top).
//
// Commands are Set(key, value) operations over 16-bit keys and values,
// encoded into the log's 32-bit command space. Every replica applies the
// committed prefix in order, so all replicas' states converge to the same
// map; reads are served from the local applied state (and are therefore
// only as fresh as the replica's commit progress — sequential
// consistency, not linearizability; a linearizable read goes through the
// lease or quorum machinery of the public KV).
//
// The store is built for multi-core traffic: the applied state is a flat
// array of atomic words, so Get, Applied and Len never take the step
// lock (readers cannot stall the replication driver, and vice versa),
// and writes are staged under a separate short lock that the step path
// drains, so a submitting writer never waits out a full step burst.
//
// On a checkpointing (recycling) log the KV is also the log's
// Snapshotter: the leader seals the applied map into published snapshots,
// and a replica that falls behind the recycled window installs the
// latest snapshot instead of replaying — so the write stream is
// unbounded while the state stays exact.
type KV struct {
	mu      sync.Mutex
	replica *Replica
	// applied indexes into the global committed command stream (including
	// any prefix summarized by checkpoints): the first applied commands
	// are reflected in state. Written under mu, read lock-free.
	applied atomic.Int64
	// state[k] is key k's applied word: 0 when never written, else
	// statePresent|value. One atomic word per key makes Get a single
	// lock-free load; the applier stores under mu, so per-key values are
	// monotone along the committed stream.
	state []atomic.Uint32
	// keys lists the present keys in first-write order (the command
	// alphabet has no deletes, so the list only grows); under mu. It is
	// what lets snapshots iterate the state deterministically without
	// ranging over a map or scanning the whole key space.
	keys []uint16
	// keyCount mirrors len(keys) for the lock-free Len.
	keyCount atomic.Int64

	// applyObs, when set, observes every individually applied command at
	// its global position (snapshot installs bypass it — they jump the
	// application point without per-command applies). Written before
	// stepping begins, called under mu.
	applyObs func(pos int, cmd uint32)

	// submitMu guards the staging buffer writers append to; StepBurst
	// drains it into the replica's queue under mu. Lock order: mu before
	// submitMu when both are held. Two buffers swap roles at each drain,
	// so the steady-state submit path never allocates.
	submitMu    sync.Mutex
	staged      []uint32
	stagedSpare []uint32
}

// EncodeSet packs a Set command. Value 0xFFFF is reserved (it would
// collide with the log's NoValue sentinel when paired with key 0xFFFF);
// Set rejects it.
func EncodeSet(key, val uint16) uint32 {
	return uint32(key)<<16 | uint32(val)
}

// DecodeSet unpacks a Set command.
func DecodeSet(cmd uint32) (key, val uint16) {
	return uint16(cmd >> 16), uint16(cmd)
}

// NewKV builds a store replica over the given log replica and attaches
// itself as the replica's snapshotter, enabling checkpoint sealing and
// snapshot install when the log recycles.
func NewKV(replica *Replica) (*KV, error) {
	if replica == nil {
		return nil, fmt.Errorf("consensus: nil replica")
	}
	kv := &KV{
		replica: replica,
		state:   make([]atomic.Uint32, keySpace),
	}
	replica.AttachSnapshotter(kvSnapshotter{kv})
	return kv, nil
}

// kvSnapshotter adapts the store to the log's Snapshotter contract. Its
// methods run inside Replica.Step, i.e. with kv.mu already held by the
// StepBurst that drives the replica, so they touch the fields directly.
type kvSnapshotter struct{ kv *KV }

// SnapshotEntries renders the applied state — fast-forwarded over any
// committed-but-unapplied tail first — as Set commands in ascending key
// order, a pure function of the committed prefix.
func (s kvSnapshotter) SnapshotEntries() []uint32 {
	s.kv.applyCommittedLocked()
	keys := append([]uint16(nil), s.kv.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]uint32, len(keys))
	for i, k := range keys {
		out[i] = EncodeSet(k, uint16(s.kv.state[k].Load()))
	}
	return out
}

// InstallSnapshot overlays the decoded entries onto the applied state and
// jumps the application point past the sealed prefix. Overlaying (rather
// than replacing) is exact because the command alphabet has no deletes —
// the key set is monotone along the committed stream, and installs only
// move forward — and it keeps concurrent lock-free readers from ever
// observing a present key transiently vanish.
func (s kvSnapshotter) InstallSnapshot(entries []uint32, committedLen int) {
	for _, e := range entries {
		k, v := DecodeSet(e)
		s.kv.setLocked(k, v)
	}
	s.kv.applied.Store(int64(committedLen))
}

// AppliedLen returns the application point; the replica never trims
// retained commands past it.
func (s kvSnapshotter) AppliedLen() int { return int(s.kv.applied.Load()) }

// setLocked applies one Set to the flat state. Callers hold kv.mu.
func (kv *KV) setLocked(key, val uint16) {
	if kv.state[key].Swap(statePresent|uint32(val))&statePresent == 0 {
		kv.keys = append(kv.keys, key)
		kv.keyCount.Add(1)
	}
}

// applyCommittedLocked applies every committed-but-unapplied command in
// log order. Callers hold kv.mu.
func (kv *KV) applyCommittedLocked() {
	base := kv.replica.committedBase
	a := int(kv.applied.Load())
	for a < base+len(kv.replica.committed) {
		cmd := kv.replica.committed[a-base]
		key, val := DecodeSet(cmd)
		kv.setLocked(key, val)
		if kv.applyObs != nil {
			kv.applyObs(a, cmd)
		}
		a++
		kv.applied.Store(int64(a))
	}
}

// SetApplyObserver installs a hook observing every command this replica
// individually applies, with its global position in the committed stream.
// Because commit and apply happen within the same step burst, the hook
// sees each position the moment the replica learns it; positions skipped
// by a snapshot install are not replayed through the hook. Used by the
// scenario recorder to reconstruct the committed stream; must be set
// before stepping begins and must not call back into the KV.
func (kv *KV) SetApplyObserver(f func(pos int, cmd uint32)) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.applyObs = f
}

// Set queues a write for replication. It is applied once committed. On a
// log that reserves the descriptor row (batched or checkpointing) the
// whole key 0xFFFF row is rejected; on a plain log only the pair
// (0xFFFF, 0xFFFF) is (the NoValue sentinel). The write lands in the
// staging buffer under its own short lock — a submitter never waits out
// an in-flight step burst — and enters the replica's queue at the next
// step.
func (kv *KV) Set(key, val uint16) error {
	if IsReserved(EncodeSet(key, val), kv.replica.log.ReservesTopRow()) {
		return fmt.Errorf("consensus: key/value pair (0x%04x, 0x%04x) is reserved", key, val)
	}
	kv.submitMu.Lock()
	kv.staged = append(kv.staged, EncodeSet(key, val))
	kv.submitMu.Unlock()
	return nil
}

// SetAll queues several writes for replication under one lock
// acquisition, rejecting the whole batch (queueing nothing) if any pair
// is reserved. On a batched log the queued run is what a leader packs
// into batch proposals, so submitting related writes together is the
// group-commit fast path.
func (kv *KV) SetAll(pairs ...[2]uint16) error {
	claimed := kv.replica.log.ReservesTopRow()
	for _, p := range pairs {
		if IsReserved(EncodeSet(p[0], p[1]), claimed) {
			return fmt.Errorf("consensus: key/value pair (0x%04x, 0x%04x) is reserved", p[0], p[1])
		}
	}
	kv.submitMu.Lock()
	for _, p := range pairs {
		kv.staged = append(kv.staged, EncodeSet(p[0], p[1]))
	}
	kv.submitMu.Unlock()
	return nil
}

// SubmitBarrier stages a no-op barrier command (see Replica.SubmitBarrier):
// it decides a slot without touching the applied state, which is the fence
// both lease catch-up and quorum reads are built on. Only stores over
// descriptor-row logs (batched or checkpointing) can carry barriers.
func (kv *KV) SubmitBarrier() error {
	if !kv.replica.log.ReservesTopRow() {
		return fmt.Errorf("consensus: no-op barriers need a log that reserves the descriptor row")
	}
	kv.submitMu.Lock()
	kv.staged = append(kv.staged, NoopBarrier)
	kv.submitMu.Unlock()
	return nil
}

// SetAuthority installs the replica's proposal-arming gate (see
// Replica.SetAuthority). Call before the store starts stepping.
func (kv *KV) SetAuthority(f func(vclock.Time) bool) { kv.replica.SetAuthority(f) }

// FenceGen returns the replica's current arm generation — the snapshot a
// fence waiter takes before forcing progress. Taking kv.mu also orders
// the read after any in-flight step burst.
func (kv *KV) FenceGen() uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.ArmGen()
}

// FencedSince reports whether a proposal armed after gen (a prior
// FenceGen reading) has since won its own ballot. When true, every
// command committed by any authority before that FenceGen call has been
// learned AND applied at this store — the mu acquisition here orders the
// observation after the step burst that applied them — so a local read
// that follows is linearizable with respect to that point.
func (kv *KV) FencedSince(gen uint64) bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.LastWinArmGen() > gen
}

// Noops returns how many no-op barrier slots this replica has learned.
func (kv *KV) Noops() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.Noops()
}

// drainStagedLocked moves staged writes into the replica's queue.
// Callers hold kv.mu; the staging buffers swap roles so neither path
// allocates at steady state.
func (kv *KV) drainStagedLocked() {
	kv.submitMu.Lock()
	batch := kv.staged
	kv.staged = kv.stagedSpare[:0]
	kv.submitMu.Unlock()
	for _, c := range batch {
		kv.replica.Submit(c)
	}
	kv.stagedSpare = batch[:0]
}

// Get returns the value of key in the applied state. It is a single
// atomic load — reads never contend with the replication driver.
func (kv *KV) Get(key uint16) (uint16, bool) {
	w := kv.state[key].Load()
	return uint16(w), w&statePresent != 0
}

// Len returns the number of keys in the applied state (lock-free).
func (kv *KV) Len() int { return int(kv.keyCount.Load()) }

// Applied returns how many commands of the global committed stream are
// reflected in the applied state (including any checkpoint-summarized
// prefix). Lock-free.
func (kv *KV) Applied() int { return int(kv.applied.Load()) }

// Step advances the underlying replica and applies newly committed
// entries in log order.
func (kv *KV) Step(now vclock.Time) { kv.StepN(now, 1) }

// StepN advances the replica by up to n micro-steps under one lock
// acquisition, then applies newly committed entries in log order. Paxos
// phases are micro-steps (one phase action each), so a slot commit needs
// several; bursting them amortizes the lock handoff when writers contend
// for the store — on a timer-resolution-bound host this is the difference
// between one commit per several ticks and several commits per tick.
func (kv *KV) StepN(now vclock.Time, n int) { kv.StepBurst(now, n) }

// StepBurst is StepN reporting progress, for wake-driven engines: it
// returns how much the burst advanced the store — newly committed
// entries plus newly decided slots, so command-free slots (checkpoints,
// no-op barriers) still count; snapshot installs count their whole
// skipped prefix — and how many submitted commands remain unproposed.
// A driver decides between stepping again immediately (work is
// draining), polling later (idle), or signalling waiters (progress
// landed: committed writes, or a barrier some fence waiter needs).
func (kv *KV) StepBurst(now vclock.Time, n int) (progress, pending int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.drainStagedLocked()
	before := kv.replica.CommittedLen()
	beforeSlots := kv.replica.SlotsDecided()
	for i := 0; i < n; i++ {
		kv.replica.Step(now)
	}
	kv.applyCommittedLocked()
	progress = kv.replica.CommittedLen() - before +
		kv.replica.SlotsDecided() - beforeSlots
	return progress, kv.replica.pendingLen()
}

// Committed returns a copy of the replica's retained committed tail, in
// log order: the full history on a non-recycling log, the commands since
// the last fully-applied checkpoint on a recycling one.
func (kv *KV) Committed() []uint32 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.Committed()
}

// CommittedLen returns the length of the whole committed command stream,
// including any checkpoint-summarized prefix.
func (kv *KV) CommittedLen() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.CommittedLen()
}

// CommittedSince returns a copy of the committed commands from global
// index from on (clamped to the retained range: commands summarized into
// a checkpoint are no longer individually returnable, and callers must
// treat them as unconfirmed — resubmission is idempotent). Prefer
// TailSince, which also reports the next watermark.
func (kv *KV) CommittedSince(from int) []uint32 {
	cmds, _ := kv.TailSince(from)
	return cmds
}

// TailSince returns a copy of the retained committed commands from global
// index from on, plus the global index just past what was returned — the
// caller's next watermark. Writers that watch many commands at once scan
// each appended region exactly once by advancing their watermark to next.
// Commands already summarized into a checkpoint are skipped (treat as
// unconfirmed; Set is idempotent under resubmission).
func (kv *KV) TailSince(from int) (cmds []uint32, next int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	base := kv.replica.committedBase
	if from < base {
		from = base
	}
	if from > base+len(kv.replica.committed) {
		from = base + len(kv.replica.committed)
	}
	cmds = append([]uint32(nil), kv.replica.committed[from-base:]...)
	return cmds, from + len(cmds)
}

// Capacity returns the slot capacity of the log window: the total log
// capacity of a non-recycling store, the in-flight window of a recycling
// one (whose command stream is unbounded). On a batched log one slot can
// decide up to MaxBatch commands.
func (kv *KV) Capacity() int {
	return kv.replica.log.Cap()
}

// SlotsDecided returns how many global log slots this replica has passed
// (learned or skipped via snapshot install); on a recycling store it
// grows without bound.
func (kv *KV) SlotsDecided() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.SlotsDecided()
}

// LogFull reports whether the store can accept no further writes: every
// slot of a non-recycling log has been decided and learned at this
// replica. A recycling store never fills — that case short-circuits
// without the step lock, keeping the per-write check off the contended
// path; transient window backpressure is WindowFull.
func (kv *KV) LogFull() bool {
	if kv.replica.log.Recycling() {
		return false
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.LogFull()
}

// WindowFull reports whether the replica sits at the end of the recycling
// window, waiting for a checkpoint to be quorum-acknowledged before more
// slots can decide. Always false on a non-recycling store.
func (kv *KV) WindowFull() bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.WindowFull()
}

// Batched reports whether the underlying log packs multi-command batches
// into consensus slots.
func (kv *KV) Batched() bool { return kv.replica.log.Batched() }

// MaxBatch returns the largest number of commands one consensus slot of
// the underlying log may decide (1 on an unbatched log).
func (kv *KV) MaxBatch() int { return kv.replica.log.MaxBatch() }

// Recycling reports whether the underlying log checkpoints and recycles
// slots, i.e. whether the store's write stream is unbounded.
func (kv *KV) Recycling() bool { return kv.replica.log.Recycling() }

// CheckpointEvery returns the log's sealing cadence in slots (0: off).
func (kv *KV) CheckpointEvery() int { return kv.replica.log.CheckpointEvery() }

// ReservesTopRow reports whether key 0xFFFF is reserved on this store
// (the log is batched or checkpointing, so the descriptor row is
// claimed).
func (kv *KV) ReservesTopRow() bool { return kv.replica.log.ReservesTopRow() }

// Checkpoints returns how many checkpoints this replica has passed.
func (kv *KV) Checkpoints() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.Checkpoints()
}

// SnapshotInstalls returns how many checkpoints this replica passed by
// installing a published snapshot (the lagging-replica path).
func (kv *KV) SnapshotInstalls() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.SnapshotInstalls()
}

// PendingLen returns how many submitted commands are still waiting in the
// replica's queue or the staging buffer (neither committed nor dropped).
func (kv *KV) PendingLen() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.submitMu.Lock()
	staged := len(kv.staged)
	kv.submitMu.Unlock()
	return kv.replica.pendingLen() + staged
}

// DropGeneration returns how many times this replica's pending queue has
// been swept by DropPending. Writers cache it at submit time: a changed
// generation means a leadership flap may have dropped their command even
// if the same replica is leader again, so they must re-check and
// resubmit. One atomic-free comparison replaces a queue scan.
func (kv *KV) DropGeneration() uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.dropGen
}

// CommittedContainsAfter reports whether cmd appears in the committed
// stream at global index from or later — how a synchronous writer
// observes that its own submission (not some identical historical
// command) survived replication: it records the committed length before
// submitting and scans only the entries appended after that watermark,
// which also keeps the scan O(new entries) instead of O(log). Entries
// summarized into a checkpoint cannot match (the writer resubmits;
// duplicates apply idempotently).
func (kv *KV) CommittedContainsAfter(from int, cmd uint32) bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	base := kv.replica.committedBase
	if from < base {
		from = base
	}
	committed := kv.replica.committed
	if from > base+len(committed) {
		from = base + len(committed)
	}
	for _, c := range committed[from-base:] {
		if c == cmd {
			return true
		}
	}
	return false
}

// DropPending discards the replica's queued-but-unproposed commands —
// staged writes included — and returns how many were dropped. The
// replicated-service layer calls it on the replicas a leadership change
// left behind: their queues would otherwise be re-proposed whenever that
// replica regains leadership, committing stale writes after newer ones.
func (kv *KV) DropPending() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.submitMu.Lock()
	n := len(kv.staged)
	kv.staged = kv.staged[:0]
	kv.submitMu.Unlock()
	n += kv.replica.pendingLen()
	if n > 0 {
		kv.replica.clearPending()
		kv.replica.dropGen++
	}
	return n
}

// Snapshot returns a copy of the applied state.
func (kv *KV) Snapshot() map[uint16]uint16 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	out := make(map[uint16]uint16, len(kv.keys))
	for _, k := range kv.keys {
		out[k] = uint16(kv.state[k].Load())
	}
	return out
}
