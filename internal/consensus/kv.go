package consensus

import (
	"fmt"
	"sync"

	"omegasm/internal/vclock"
)

// KV is a replicated key-value store: the canonical state machine driven
// by the replicated log (the full Paxos-style stack the paper's
// introduction motivates, from the Omega oracle at the bottom to a
// linearizable-ish store at the top).
//
// Commands are Set(key, value) operations over 16-bit keys and values,
// encoded into the log's 32-bit command space. Every replica applies the
// committed prefix in order, so all replicas' states converge to the same
// map; reads are served from the local applied state (and are therefore
// only as fresh as the replica's commit progress — sequential
// consistency, not linearizability; a linearizable read would go through
// the log).
type KV struct {
	mu      sync.Mutex
	replica *Replica
	applied int
	state   map[uint16]uint16
}

// EncodeSet packs a Set command. Value 0xFFFF is reserved (it would
// collide with the log's NoValue sentinel when paired with key 0xFFFF);
// Set rejects it.
func EncodeSet(key, val uint16) uint32 {
	return uint32(key)<<16 | uint32(val)
}

// DecodeSet unpacks a Set command.
func DecodeSet(cmd uint32) (key, val uint16) {
	return uint16(cmd >> 16), uint16(cmd)
}

// NewKV builds a store replica over the given log replica.
func NewKV(replica *Replica) (*KV, error) {
	if replica == nil {
		return nil, fmt.Errorf("consensus: nil replica")
	}
	return &KV{
		replica: replica,
		state:   make(map[uint16]uint16),
	}, nil
}

// Set queues a write for replication. It is applied once committed. On a
// batched log the whole key 0xFFFF row is reserved for batch descriptors;
// on an unbatched log only the pair (0xFFFF, 0xFFFF) is (the NoValue
// sentinel).
func (kv *KV) Set(key, val uint16) error {
	if IsReserved(EncodeSet(key, val), kv.replica.log.Batched()) {
		return fmt.Errorf("consensus: key/value pair (0x%04x, 0x%04x) is reserved", key, val)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.replica.Submit(EncodeSet(key, val))
	return nil
}

// SetAll queues several writes for replication under one lock
// acquisition, rejecting the whole batch (queueing nothing) if any pair
// is reserved. On a batched log the queued run is what a leader packs
// into batch proposals, so submitting related writes together is the
// group-commit fast path.
func (kv *KV) SetAll(pairs ...[2]uint16) error {
	batched := kv.replica.log.Batched()
	for _, p := range pairs {
		if IsReserved(EncodeSet(p[0], p[1]), batched) {
			return fmt.Errorf("consensus: key/value pair (0x%04x, 0x%04x) is reserved", p[0], p[1])
		}
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	for _, p := range pairs {
		kv.replica.Submit(EncodeSet(p[0], p[1]))
	}
	return nil
}

// Get returns the value of key in the applied state.
func (kv *KV) Get(key uint16) (uint16, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.state[key]
	return v, ok
}

// Len returns the number of keys in the applied state.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.state)
}

// Applied returns how many log entries have been applied.
func (kv *KV) Applied() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.applied
}

// Step advances the underlying replica and applies newly committed
// entries in log order.
func (kv *KV) Step(now vclock.Time) { kv.StepN(now, 1) }

// StepN advances the replica by up to n micro-steps under one lock
// acquisition, then applies newly committed entries in log order. Paxos
// phases are micro-steps (one phase action each), so a slot commit needs
// several; bursting them amortizes the lock handoff when readers contend
// for the store — on a timer-resolution-bound host this is the difference
// between one commit per several ticks and several commits per tick.
func (kv *KV) StepN(now vclock.Time, n int) { kv.StepBurst(now, n) }

// StepBurst is StepN reporting progress, for wake-driven engines: it
// returns how many entries newly committed during the burst and how many
// submitted commands remain unproposed, so a driver can decide between
// stepping again immediately (work is draining), polling later (idle), or
// signalling waiting writers (commits landed).
func (kv *KV) StepBurst(now vclock.Time, n int) (newlyCommitted, pending int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	before := len(kv.replica.committed)
	for i := 0; i < n; i++ {
		kv.replica.Step(now)
	}
	committed := kv.replica.committed
	for ; kv.applied < len(committed); kv.applied++ {
		key, val := DecodeSet(committed[kv.applied])
		kv.state[key] = val
	}
	return len(committed) - before, len(kv.replica.pending)
}

// Committed returns a copy of the replica's committed prefix, in log
// order.
func (kv *KV) Committed() []uint32 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.Committed()
}

// CommittedLen returns the length of the replica's committed prefix.
func (kv *KV) CommittedLen() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.replica.committed)
}

// CommittedSince returns a copy of the committed commands from index from
// on (clamped to the committed range). Writers that watch many commands
// at once scan each appended region exactly once by advancing their
// watermark past what CommittedSince returned.
func (kv *KV) CommittedSince(from int) []uint32 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	committed := kv.replica.committed
	if from < 0 {
		from = 0
	}
	if from > len(committed) {
		from = len(committed)
	}
	return append([]uint32(nil), committed[from:]...)
}

// Capacity returns the total number of log slots. On a batched log one
// slot can decide up to MaxBatch commands, so the committed command
// stream may grow past Capacity; use LogFull to detect exhaustion.
func (kv *KV) Capacity() int {
	return len(kv.replica.log.Slots)
}

// SlotsDecided returns how many log slots this replica has learned.
func (kv *KV) SlotsDecided() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.SlotsDecided()
}

// LogFull reports whether every log slot has been decided and learned at
// this replica, i.e. whether the store can accept no further writes. On
// an unbatched log this is CommittedLen() == Capacity(); on a batched log
// slots, not committed commands, are the exhaustible resource.
func (kv *KV) LogFull() bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.LogFull()
}

// Batched reports whether the underlying log packs multi-command batches
// into consensus slots.
func (kv *KV) Batched() bool { return kv.replica.log.Batched() }

// MaxBatch returns the largest number of commands one consensus slot of
// the underlying log may decide (1 on an unbatched log).
func (kv *KV) MaxBatch() int { return kv.replica.log.MaxBatch() }

// PendingLen returns how many submitted commands are still waiting in the
// replica's queue (neither committed nor dropped).
func (kv *KV) PendingLen() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.replica.pending)
}

// DropGeneration returns how many times this replica's pending queue has
// been swept by DropPending. Writers cache it at submit time: a changed
// generation means a leadership flap may have dropped their command even
// if the same replica is leader again, so they must re-check and
// resubmit. One atomic-free comparison replaces a queue scan.
func (kv *KV) DropGeneration() uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.replica.dropGen
}

// CommittedContainsAfter reports whether cmd appears in the replica's
// committed prefix at slot index from or later — how a synchronous writer
// observes that its own submission (not some identical historical
// command) survived replication: it records the committed length before
// submitting and scans only the entries appended after that watermark,
// which also keeps the scan O(new entries) instead of O(log).
func (kv *KV) CommittedContainsAfter(from int, cmd uint32) bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	committed := kv.replica.committed
	if from < 0 {
		from = 0
	}
	for _, c := range committed[min(from, len(committed)):] {
		if c == cmd {
			return true
		}
	}
	return false
}

// DropPending discards the replica's queued-but-unproposed commands and
// returns how many were dropped. The replicated-service layer calls it on
// the replicas a leadership change left behind: their queues would
// otherwise be re-proposed whenever that replica regains leadership,
// committing stale writes after newer ones.
func (kv *KV) DropPending() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	n := len(kv.replica.pending)
	if n > 0 {
		kv.replica.pending = nil
		kv.replica.dropGen++
	}
	return n
}

// Snapshot returns a copy of the applied state.
func (kv *KV) Snapshot() map[uint16]uint16 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	out := make(map[uint16]uint16, len(kv.state))
	for k, v := range kv.state {
		out[k] = v
	}
	return out
}
