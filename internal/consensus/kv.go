package consensus

import (
	"fmt"
	"sync"

	"omegasm/internal/vclock"
)

// KV is a replicated key-value store: the canonical state machine driven
// by the replicated log (the full Paxos-style stack the paper's
// introduction motivates, from the Omega oracle at the bottom to a
// linearizable-ish store at the top).
//
// Commands are Set(key, value) operations over 16-bit keys and values,
// encoded into the log's 32-bit command space. Every replica applies the
// committed prefix in order, so all replicas' states converge to the same
// map; reads are served from the local applied state (and are therefore
// only as fresh as the replica's commit progress — sequential
// consistency, not linearizability; a linearizable read would go through
// the log).
type KV struct {
	mu      sync.Mutex
	replica *Replica
	applied int
	state   map[uint16]uint16
}

// EncodeSet packs a Set command. Value 0xFFFF is reserved (it would
// collide with the log's NoValue sentinel when paired with key 0xFFFF);
// Set rejects it.
func EncodeSet(key, val uint16) uint32 {
	return uint32(key)<<16 | uint32(val)
}

// DecodeSet unpacks a Set command.
func DecodeSet(cmd uint32) (key, val uint16) {
	return uint16(cmd >> 16), uint16(cmd)
}

// NewKV builds a store replica over the given log replica.
func NewKV(replica *Replica) (*KV, error) {
	if replica == nil {
		return nil, fmt.Errorf("consensus: nil replica")
	}
	return &KV{
		replica: replica,
		state:   make(map[uint16]uint16),
	}, nil
}

// Set queues a write for replication. It is applied once committed.
func (kv *KV) Set(key, val uint16) error {
	if EncodeSet(key, val) == NoValue {
		return fmt.Errorf("consensus: key/value pair (0x%04x, 0x%04x) is reserved", key, val)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.replica.Submit(EncodeSet(key, val))
	return nil
}

// Get returns the value of key in the applied state.
func (kv *KV) Get(key uint16) (uint16, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.state[key]
	return v, ok
}

// Len returns the number of keys in the applied state.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.state)
}

// Applied returns how many log entries have been applied.
func (kv *KV) Applied() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.applied
}

// Step advances the underlying replica and applies newly committed
// entries in log order.
func (kv *KV) Step(now vclock.Time) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.replica.Step(now)
	committed := kv.replica.Committed()
	for ; kv.applied < len(committed); kv.applied++ {
		key, val := DecodeSet(committed[kv.applied])
		kv.state[key] = val
	}
}

// Snapshot returns a copy of the applied state.
func (kv *KV) Snapshot() map[uint16]uint16 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	out := make(map[uint16]uint16, len(kv.state))
	for k, v := range kv.state {
		out[k] = v
	}
	return out
}
