package consensus

import (
	"fmt"
	"sort"
	"sync"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Register class names of the batch and checkpoint areas (the per-slot
// consensus classes are in consensus.go).
const (
	// ClassBatchHdr is the class of the per-process batch header areas.
	ClassBatchHdr = "BHDR"
	// ClassBatchData is the class of the per-process batch data areas.
	ClassBatchData = "BDAT"
	// ClassSnapHdr is the class of the per-publication snapshot header
	// registers (the word that marks a snapshot publication complete).
	ClassSnapHdr = "SNAPH"
	// ClassSnapMeta is the class of the per-publication snapshot metadata
	// registers (the committed-stream length the snapshot summarizes).
	ClassSnapMeta = "SNAPM"
	// ClassSnapData is the class of the per-publication snapshot data
	// registers (two encoded state entries per 64-bit word).
	ClassSnapData = "SNAPD"
	// ClassCkptAck is the class of the per-process checkpoint ack
	// registers: ACK[p] = 1 + the highest slot a checkpoint learned by p
	// has sealed (0: none). Recycling waits for a quorum of these.
	ClassCkptAck = "CKACK"
	// ClassCkptPtr is the class of the per-process latest-checkpoint
	// pointer registers: PTR[p] names the newest checkpoint publication p
	// has learned, so a replica whose next slot was recycled can find the
	// snapshot to install.
	ClassCkptPtr = "CKPTR"
)

// MaxBatchProcs is the largest process count a batched or checkpointing
// log supports: descriptors pack the publishing process id into four bits.
const MaxBatchProcs = 16

// Descriptors live in the top row of the 32-bit command space: commands
// whose high 16 bits are all ones. A descriptor names a publication —
// (pid, seq) — rather than carrying a command itself, exactly the
// pointer-to-value indirection Disk Paxos uses for large proposals. The
// 16 payload bits split into a 4-bit process id and a 12-bit sequence
// number whose top bit distinguishes the two descriptor families:
//
//   - batch descriptors (seq bit 11 clear): the slot decides the batch of
//     commands published in the proposer's batch area.
//   - checkpoint descriptors (seq bit 11 set): the slot seals every slot
//     before it; the proposer's snapshot area holds the state-machine
//     snapshot covering the sealed prefix.
//
// On a log that reserves the top row (batched or checkpointing), Submit
// must not be given plain commands with all-ones high bits (KV.Set
// enforces this by rejecting key 0xFFFF).
const batchDescMark = uint32(0xFFFF0000)

// ckptSeqFlag is the descriptor-seq bit that marks a checkpoint
// publication on a checkpointing log.
const ckptSeqFlag = 0x800

// NoopBarrier is the no-op barrier command: a descriptor-row word that
// decides a slot without appending anything to the committed stream.
// Leaders commit it as a fence — the lease catch-up barrier after an
// acquisition, and the marker slot behind a quorum read — when no write
// traffic is flowing to fence on. Its coordinates, pid 15 seq 0xFFE, are
// unreachable by any publisher on any log family: batch sequences stay
// below 4094 (0xFFE) and checkpoint sequences below 2046 under the 0x800
// family flag, so the sequence payload 0xFFE is never produced, and the
// word is one below the NoValue sentinel. Only logs that reserve the
// descriptor row may carry it (elsewhere it would be a legal user
// command).
const NoopBarrier = batchDescMark | 0xF<<12 | 0xFFE

// The per-process publication sequence caps. A non-checkpointing batched
// log has the whole 12-bit sequence space to itself (capped one short of
// the coordinates that would collide with the NoValue sentinel, with a
// symmetric margin — the historical 4094). A checkpointing log splits
// the space between the two descriptor families at bit 11, 2046 each.
// Sequence numbers recycle as a ring on a checkpointing log (a
// publication whose slot fell behind the recycled window can never be
// resolved again), so there the caps bound in-flight publications, not
// the stream length.
const (
	batchSeqCapPlain = 4094
	batchSeqCapCkpt  = 2046
	ckptSeqCap       = 2046
)

// encodeBatchDesc packs a batch publication identity into a descriptor
// command: 16 mark bits, 4 process-id bits, 12 sequence bits. On a
// checkpointing log batch sequences stay below ckptSeqFlag.
func encodeBatchDesc(pid, seq int) uint32 {
	return batchDescMark | uint32(pid)<<12 | uint32(seq)
}

// encodeCkptDesc packs a checkpoint publication identity into a
// descriptor command (sequence bit 11 set).
func encodeCkptDesc(pid, seq int) uint32 {
	return batchDescMark | uint32(pid)<<12 | uint32(ckptSeqFlag|seq)
}

// decodeBatchDesc unpacks a batch descriptor's publication coordinates
// (the full 12-bit sequence: on a checkpointing log bit 11 is always
// clear for batches, so this is correct on every log).
func decodeBatchDesc(cmd uint32) (pid, seq int) {
	return int(cmd >> 12 & 0xF), int(cmd & 0xFFF)
}

// decodeCkptDesc unpacks a checkpoint descriptor's publication
// coordinates (the 11-bit sequence below the family flag).
func decodeCkptDesc(cmd uint32) (pid, seq int) {
	return int(cmd >> 12 & 0xF), int(cmd & 0x7FF)
}

// isDesc reports whether cmd lies in the descriptor row. NoValue also
// has all-ones high bits, but it is never decided (Submit and
// NewProposer both reject it), so a decided command in the top row is a
// descriptor.
func isDesc(cmd uint32) bool { return cmd&batchDescMark == batchDescMark }

// isCkptDesc reports whether cmd is a checkpoint descriptor — only
// meaningful on a checkpointing log, where batch sequences never set the
// family flag. (On a plain batched log the whole row is batch
// descriptors and this predicate must not be consulted.)
func isCkptDesc(cmd uint32) bool {
	return isDesc(cmd) && cmd&ckptSeqFlag != 0
}

// IsReserved reports whether cmd may not be submitted to a log whose
// top command-space row is claimed by descriptors (rowClaimed: the log is
// batched or checkpointing). On a plain fixed-capacity unbatched log only
// the NoValue sentinel is reserved.
func IsReserved(cmd uint32, rowClaimed bool) bool {
	if rowClaimed {
		return cmd&batchDescMark == batchDescMark
	}
	return cmd == NoValue
}

// packBatchHdr packs a publication's extent — its first data-word offset
// and its command count — into the publisher's header register.
func packBatchHdr(start, count int) uint64 {
	return uint64(start)<<32 | uint64(uint32(count))
}

func unpackBatchHdr(w uint64) (start, count int) {
	return int(w >> 32), int(uint32(w))
}

// packCkptPtr packs a latest-checkpoint pointer: the sealed slot (plus
// one, so the zero word means "no checkpoint yet") in the high bits —
// making the numeric maximum over all pointer registers the newest
// checkpoint — and the publication coordinates in the low bits.
func packCkptPtr(sealSlot, pid, seq int) uint64 {
	return uint64(sealSlot+1)<<16 | uint64(pid)<<12 | uint64(seq)
}

func unpackCkptPtr(w uint64) (sealSlot, pid, seq int) {
	return int(w>>16) - 1, int(w >> 12 & 0xF), int(w & 0x7FF)
}

// Snapshotter is the state-machine side of checkpointing: the replicated
// log seals prefixes into snapshots, but only the state machine driving
// the replica (the KV store) knows how to render and install its state.
// All three methods are called from inside Replica.Step, i.e. under
// whatever lock the state machine holds while stepping — implementations
// must not re-acquire it.
type Snapshotter interface {
	// SnapshotEntries returns the canonical encoding of the state after
	// applying every currently committed command, fast-forwarding the
	// application point first if it lags. The encoding must be a pure
	// function of the committed prefix (deterministic order), because
	// every replica must be able to reproduce the same sealed state.
	SnapshotEntries() []uint32
	// InstallSnapshot replaces the state with the decoded entries and
	// records that the first committedLen commands of the log's command
	// stream are reflected in it.
	InstallSnapshot(entries []uint32, committedLen int)
	// AppliedLen returns how many commands of the committed stream the
	// state machine has applied; the replica never discards retained
	// committed entries beyond this point.
	AppliedLen() int
}

// snapArea is the register storage of one published snapshot. Areas are
// pooled per process: a publication takes a free area (growing its data
// registers if the state outgrew it), and the area returns to the pool
// when the publication is reclaimed — so the substrate footprint and the
// register namespace of checkpointing are bounded by the in-flight
// publications, not the stream length. Reuse is safe because an area is
// only freed once its publication can never be dereferenced again, and
// the single writer republishes data-then-meta-then-header before the
// new descriptor can be proposed. (Reusing the same register objects
// also keeps a disk-backed register's internal write sequencing
// monotone, which a fresh object with a recycled name would not.)
type snapArea struct {
	pool int       // index in the owner's pool; register names derive from it
	hdr  shmem.Reg // entry count + 1, written last: nonzero = complete
	meta shmem.Reg // committed-stream length the snapshot summarizes
	data []shmem.Reg
}

// slotStatus classifies a global slot index against the log's current
// window.
type slotStatus int

const (
	slotOK       slotStatus = iota // in the window: learn/propose normally
	slotRecycled                   // behind the window: install a snapshot
	slotAhead                      // past the window: full (or not yet recycled)
)

// Log is a replicated log: consensus instances over one shared memory.
// Slot s's decision is the s-th decided value of every replica's slot
// sequence — the classic Omega/Paxos state-machine-replication
// construction the paper's introduction motivates.
//
// A log built with NewBatchLog additionally carries per-process batch
// areas, and a slot's decided value may then be a batch descriptor that
// expands to up to MaxBatch commands, so the committed command stream can
// be longer than the number of decided slots.
//
// A log built with NewCheckpointLog is additionally *recycling*: slot
// storage is a fixed-size window over an unbounded global slot sequence.
// The leader periodically proposes a checkpoint command that seals the
// log prefix before it into a snapshot published on the substrate; once a
// quorum of replicas has durably acknowledged passing the checkpoint, the
// sealed slots are recycled — the window slides forward, reusing the ring
// positions with fresh per-epoch register areas — and the write stream is
// unbounded. A replica that falls behind the window installs the latest
// snapshot instead of replaying the recycled slots.
type Log struct {
	// N is the number of replica processes.
	N int

	mem shmem.Mem
	// maxBatch is the largest number of commands one slot may decide
	// (1: plain log, no batch areas allocated).
	maxBatch int
	// ckptEvery is the sealing cadence in slots (0: checkpointing off, the
	// log is a fixed array and fills permanently).
	ckptEvery int

	// mu guards the window (ring, base) and the publication areas: slot
	// lookup, window advancement, publication writes/reclaims and
	// descriptor resolution all serialize here, so a resolver can never
	// observe a publication being recycled under it.
	mu sync.Mutex
	// ring[g%cap] holds the consensus instance of global slot g for the
	// g in [base, base+cap). Recycled positions are re-pointed at fresh
	// instances (fresh per-epoch registers), never reset in place: stale
	// reads of a sealed epoch's registers are impossible because the old
	// instance objects are unreachable once the window moves.
	ring []*Instance
	// base is the first global slot the window still holds; every slot
	// below it is sealed by a quorum-acknowledged checkpoint.
	base int

	// hdr[p][seq] is process p's header register for its seq-th batch
	// publication; data[p][w] the w-th word of its batch data area. Both
	// are single-writer (owned by p) and written only before the
	// publication's descriptor is proposed, so their contents are
	// immutable by the time any reader can learn the descriptor. On a
	// recycling log both are rings: a sequence number and its data words
	// are reused once the publication can no longer be resolved.
	hdr  [][]shmem.Reg
	data [][]shmem.Reg

	// ack[p] and ptr[p] are the checkpoint registers (ClassCkptAck,
	// ClassCkptPtr); snaps[p][seq] maps a live publication to its area,
	// snapFree[p] holds process p's reusable areas, and snapPoolN[p]
	// counts how many areas p has ever allocated (the next pool name).
	ack       []shmem.Reg
	ptr       []shmem.Reg
	snaps     []map[int]*snapArea
	snapFree  [][]*snapArea
	snapPoolN []int
}

// NewLog allocates slots consensus instances for n processes in mem. The
// log is unbatched and non-recycling: every slot decides exactly one
// command and the log fills permanently after slots decisions.
func NewLog(mem shmem.Mem, n, slots int) *Log {
	l, err := NewCheckpointLog(mem, n, slots, 1, 0)
	if err != nil {
		// Unreachable: maxBatch 1 and ckptEvery 0 skip every validation.
		panic(err)
	}
	return l
}

// NewBatchLog allocates a non-recycling replicated log whose slots may
// decide batches of up to maxBatch commands; it is NewCheckpointLog with
// checkpointing off. maxBatch 1 is exactly NewLog.
func NewBatchLog(mem shmem.Mem, n, slots, maxBatch int) (*Log, error) {
	return NewCheckpointLog(mem, n, slots, maxBatch, 0)
}

// NewCheckpointLog allocates a replicated log over a window of slots
// consensus instances, with per-slot batches of up to maxBatch commands
// and — when ckptEvery > 0 — checkpoint-driven slot recycling every
// ckptEvery slots, which makes the write stream unbounded.
//
// For maxBatch > 1 the log reserves the all-ones top row of the command
// space for descriptors (so 16-bit key/value commands lose key 0xFFFF)
// and supports at most MaxBatchProcs processes; ckptEvery > 0 claims the
// same row and the same process cap for checkpoint descriptors. Each
// process gets a batch header area of min(slots, 4094) publications
// (2046 on a checkpointing log, where checkpoints claim half the
// sequence space) and a
// data area sized so every one of those publications can carry a full
// maxBatch commands (two per 64-bit word): a stable leader can therefore
// batch at full width for the whole window. Leadership churn can still
// burn publications whose slot another proposer wins; a proposer that
// exhausts its areas falls back to plain single-command proposals, so
// batching degrades, never wedges — and on a recycling log spent
// publications are reclaimed, so degradation is transient.
//
// ckptEvery must leave room for the checkpoint command itself inside the
// window: 0 < ckptEvery < slots (or 0 to disable).
func NewCheckpointLog(mem shmem.Mem, n, slots, maxBatch, ckptEvery int) (*Log, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("consensus: batch size must be at least 1, got %d", maxBatch)
	}
	if maxBatch > 1 && n > MaxBatchProcs {
		return nil, fmt.Errorf("consensus: batched log supports at most %d processes, got %d", MaxBatchProcs, n)
	}
	if ckptEvery < 0 {
		return nil, fmt.Errorf("consensus: checkpoint interval must not be negative, got %d", ckptEvery)
	}
	if ckptEvery > 0 {
		if n > MaxBatchProcs {
			return nil, fmt.Errorf("consensus: checkpointing log supports at most %d processes, got %d", MaxBatchProcs, n)
		}
		if ckptEvery >= slots {
			return nil, fmt.Errorf("consensus: checkpoint interval %d must be below the %d-slot window", ckptEvery, slots)
		}
	}
	l := &Log{N: n, mem: mem, maxBatch: maxBatch, ckptEvery: ckptEvery, ring: make([]*Instance, slots)}
	initial := NewInstances(mem, n, 0, slots)
	for s := range l.ring {
		l.ring[s] = &initial[s]
	}
	if maxBatch > 1 {
		maxSeq := batchSeqCapPlain
		if ckptEvery > 0 {
			maxSeq = batchSeqCapCkpt // checkpoint descriptors claim bit 11
		}
		hdrCap := slots
		if hdrCap > maxSeq {
			hdrCap = maxSeq
		}
		dataCap := hdrCap * ((maxBatch + 1) / 2)
		l.hdr = make([][]shmem.Reg, n)
		l.data = make([][]shmem.Reg, n)
		for p := 0; p < n; p++ {
			l.hdr[p] = make([]shmem.Reg, hdrCap)
			for s := range l.hdr[p] {
				l.hdr[p][s] = mem.Word(p, ClassBatchHdr, p, s)
			}
			l.data[p] = make([]shmem.Reg, dataCap)
			for w := range l.data[p] {
				l.data[p][w] = mem.Word(p, ClassBatchData, p, w)
			}
		}
	}
	if ckptEvery > 0 {
		l.ack = make([]shmem.Reg, n)
		l.ptr = make([]shmem.Reg, n)
		l.snaps = make([]map[int]*snapArea, n)
		l.snapFree = make([][]*snapArea, n)
		l.snapPoolN = make([]int, n)
		for p := 0; p < n; p++ {
			l.ack[p] = mem.Word(p, ClassCkptAck, p)
			l.ptr[p] = mem.Word(p, ClassCkptPtr, p)
			l.snaps[p] = make(map[int]*snapArea)
		}
	}
	return l, nil
}

// takeAreaLocked hands process p a snapshot area with room for words
// data registers: a pooled free area (grown if the state outgrew it) or
// a freshly named one. Callers hold l.mu.
func (l *Log) takeAreaLocked(p, words int) *snapArea {
	var area *snapArea
	if n := len(l.snapFree[p]); n > 0 {
		area = l.snapFree[p][n-1]
		l.snapFree[p] = l.snapFree[p][:n-1]
	} else {
		area = &snapArea{
			pool: l.snapPoolN[p],
			hdr:  l.mem.Word(p, ClassSnapHdr, p, l.snapPoolN[p]),
			meta: l.mem.Word(p, ClassSnapMeta, p, l.snapPoolN[p]),
		}
		l.snapPoolN[p]++
	}
	for w := len(area.data); w < words; w++ {
		area.data = append(area.data, l.mem.Word(p, ClassSnapData, p, area.pool, w))
	}
	return area
}

// freeAreaLocked returns a reclaimed publication's area to its owner's
// pool. Callers hold l.mu and have already unmapped the publication.
func (l *Log) freeAreaLocked(p int, area *snapArea) {
	if area != nil {
		l.snapFree[p] = append(l.snapFree[p], area)
	}
}

// DefaultCheckpointEvery is the sealing cadence a default-options store
// derives from its window: a quarter of the slot count (at least 1), or
// 0 — checkpointing off — for configurations that cannot checkpoint (a
// sub-2-slot window, or more processes than descriptors can name). The
// public KV constructor and the deterministic simulator both resolve
// their "checkpointing on by default" knobs through this one rule.
func DefaultCheckpointEvery(slots, n int) int {
	if slots < 2 || n > MaxBatchProcs {
		return 0
	}
	every := slots / 4
	if every < 1 {
		every = 1
	}
	return every
}

// Batched reports whether slots of this log may decide multi-command
// batches.
func (l *Log) Batched() bool { return l.maxBatch > 1 }

// MaxBatch returns the largest number of commands one slot may decide.
func (l *Log) MaxBatch() int { return l.maxBatch }

// Recycling reports whether the log recycles sealed slots (checkpointing
// is on), i.e. whether its write stream is unbounded.
func (l *Log) Recycling() bool { return l.ckptEvery > 0 }

// CheckpointEvery returns the sealing cadence in slots (0: off).
func (l *Log) CheckpointEvery() int { return l.ckptEvery }

// ReservesTopRow reports whether the all-ones top row of the command
// space is claimed by descriptors (the log is batched or checkpointing).
func (l *Log) ReservesTopRow() bool { return l.maxBatch > 1 || l.ckptEvery > 0 }

// Cap returns the window capacity in slots: the total log capacity of a
// non-recycling log, and the in-flight window of a recycling one.
func (l *Log) Cap() int { return len(l.ring) }

// Base returns the first global slot the window still holds (always 0 on
// a non-recycling log).
func (l *Log) Base() int {
	if l.ckptEvery == 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// instance classifies global slot g against the window and returns its
// consensus instance when it is live. A non-recycling log's window never
// moves, so its lookup skips the window lock entirely (the ring is
// immutable after construction) — the hot learn/propose path costs
// exactly what it did before recycling existed.
func (l *Log) instance(g int) (*Instance, slotStatus) {
	if l.ckptEvery == 0 {
		if g >= len(l.ring) {
			return nil, slotAhead
		}
		return l.ring[g], slotOK
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if g < l.base {
		return nil, slotRecycled
	}
	if g >= l.base+len(l.ring) {
		return nil, slotAhead
	}
	return l.ring[g%len(l.ring)], slotOK
}

// advance slides the window forward to newBase, repointing the recycled
// ring positions at fresh per-epoch instances (register tag = the global
// slot index, so a recycled epoch's registers are never read as the new
// epoch's). Only slots sealed by a quorum-acknowledged checkpoint are
// ever passed as newBase.
func (l *Log) advance(newBase int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if newBase <= l.base {
		return
	}
	n := len(l.ring)
	// One bulk allocation covers every recycled position of this advance
	// (a checkpoint interval of slots), instead of per-slot objects on
	// the steady-state commit path.
	fresh := NewInstances(l.mem, l.N, l.base+n, newBase-l.base)
	for j, g := 0, l.base+n; g < newBase+n; j, g = j+1, g+1 {
		// The sealed epoch's registers are permanently dead (its instance
		// object becomes unreachable, and its globally-unique names are
		// never allocated again): release their substrate backing — disk
		// blocks, census rows — so an unbounded stream has a bounded
		// footprint.
		if old := l.ring[g%n]; old != nil {
			for i := 0; i < l.N; i++ {
				shmem.DiscardIfPossible(l.mem, old.MBal[i])
				shmem.DiscardIfPossible(l.mem, old.BalInp[i])
				shmem.DiscardIfPossible(l.mem, old.Dec[i])
			}
		}
		l.ring[g%n] = &fresh[j]
	}
	l.base = newBase
}

// readSnapshot reads publication (pid, seq) on behalf of reader, checking
// under the window lock that the area is still live and complete.
func (l *Log) readSnapshot(reader, pid, seq int) (entries []uint32, committedLen int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	area := l.snaps[pid][seq]
	if area == nil {
		return nil, 0, false
	}
	h := area.hdr.Read(reader)
	if h == 0 {
		return nil, 0, false
	}
	count := int(h - 1)
	entries = make([]uint32, 0, count)
	for w := 0; len(entries) < count; w++ {
		word := area.data[w].Read(reader)
		entries = append(entries, uint32(word))
		if len(entries) < count {
			entries = append(entries, uint32(word>>32))
		}
	}
	return entries, int(area.meta.Read(reader)), true
}

// pub tracks one in-flight publication of a replica's own areas: its
// sequence number, the global slot it was proposed for, its descriptor,
// and (for batches) how many data words it occupies. A publication can be
// reclaimed once it can never be resolved again: its slot fell behind the
// recycled window, or its slot decided a different value.
type pub struct {
	seq   int
	slot  int
	desc  uint32
	words int
}

// Replica is one process's view of the replicated log. It learns decided
// slots in order, and — while the Omega oracle names it leader — proposes
// for the first undecided slot: a checkpoint when one is due, its oldest
// pending command, or, on a batched log with two or more pending
// commands, a freshly published batch of up to MaxBatch of them.
type Replica struct {
	log   *Log
	id    int
	omega func() int
	// authority, when set, additionally gates the arming of every new
	// proposal (commands, batches, checkpoints and barriers alike): the
	// replica arms only when authority(now) is true. The lease layer
	// installs the holder check here, which is what confines commits to
	// lease validity windows. A proposal already armed keeps stepping —
	// it was authorized at arming, and the successor's catch-up barrier
	// is what fences its eventual commit (see the lease package).
	authority func(vclock.Time) bool
	// armGen counts proposals armed; curArmGen is the generation of the
	// currently armed one, and lastWinArmGen the generation of the newest
	// proposal that won its own ballot (see Proposer.WonBallot). A waiter
	// that snapshots armGen and then observes lastWinArmGen exceed it
	// knows a proposal armed after the snapshot has decided — the fence
	// primitive behind lease barriers and quorum reads.
	armGen        uint64
	curArmGen     uint64
	lastWinArmGen uint64
	// noops counts decided no-op barrier slots (never part of the
	// committed command stream).
	noops int

	// committed is the retained tail of the flattened command stream:
	// descriptors are resolved at learn time, so it never contains
	// descriptors. committedBase counts the commands before the tail that
	// have been summarized away by checkpoints (always 0 on a
	// non-recycling log, where the full history is retained); global
	// command-stream indices are committedBase + tail offset.
	committed     []uint32
	committedBase int
	slotsDecided  int
	// pending[pendingHead:] is the submitted-but-uncommitted queue. The
	// head index makes the pop O(1) without shrinking the array from the
	// front (which would force append to reallocate every refill); Submit
	// compacts the consumed prefix back over itself once it dominates the
	// array, so the queue's storage is bounded by its high-water mark and
	// the steady-state submit path never allocates.
	pending     []uint32
	pendingHead int
	// dropGen counts DropPending calls, so writers can detect a queue
	// sweep they never observed with one comparison.
	dropGen uint64

	// resolveBuf is the scratch buffer resolveSlot decodes into; its
	// contents are consumed (copied into committed) before the next
	// resolve, so reusing it keeps slot learning allocation-free.
	resolveBuf []uint32

	// prop is reused across slots (reset, not reallocated); propSlot -1
	// means it is not armed for the current slot.
	prop     *Proposer
	propSlot int

	// cachedInst/cachedSlot memoize the window lookup of the slot the
	// replica is working on: a slot takes several micro-steps to settle,
	// and only the first needs the window lock. A cached instance can go
	// stale if the window advances past the slot mid-work; that is benign
	// — decisions read from it are still slot-accurate (decision registers
	// are immutable once written), descriptor resolution re-checks the
	// window under the lock, and writes to reclaimed registers are
	// tombstoned by the substrate — and the next lookup lands on the
	// install path.
	cachedInst *Instance
	cachedSlot int

	// Own publication state: in-flight batch and checkpoint publications
	// (fifo, slot-ordered) plus the ring cursors of the batch data area.
	// Publications stay immutable while in flight — a proposed descriptor
	// may commit long after the proposer moved on (ballot adoption) — and
	// are reclaimed only once they can never be resolved again.
	batchPubs    []pub
	nextBatchSeq int
	dataOff      int
	dataUsed     int
	ckptPubs     []pub
	nextCkptSeq  int

	// Checkpoint learning state.
	snap Snapshotter
	// lastSealSlot is the slot of the newest checkpoint this replica has
	// passed (-1: none); ckptSeen counts them and installs counts the ones
	// passed by installing a snapshot rather than replaying.
	lastSealSlot int
	ckptSeen     int
	installs     int
	// selfLatestSeq is the sequence of this replica's own publication when
	// the newest checkpoint it knows is its own (-1 otherwise); that
	// publication is exempt from reclaiming because a lagging replica may
	// still install from it.
	selfLatestSeq int
}

// NewReplica creates replica id over log with the given leader oracle.
func NewReplica(log *Log, id int, omega func() int) (*Replica, error) {
	if omega == nil {
		return nil, fmt.Errorf("consensus: nil omega oracle")
	}
	return &Replica{
		log: log, id: id, omega: omega,
		// Pre-size the committed tail to the window's worst case so the
		// steady-state learn path appends without reallocating (a
		// recycling log's tail is trimmed in place at each seal, keeping
		// this capacity; growth past it is amortized as usual).
		committed: make([]uint32, 0, log.Cap()*log.MaxBatch()),
		propSlot:  -1, lastSealSlot: -1, selfLatestSeq: -1, cachedSlot: -1,
	}, nil
}

// AttachSnapshotter binds the state-machine snapshot hooks checkpointing
// needs. On a recycling log a replica without a snapshotter can neither
// propose checkpoints nor install snapshots (it wedges if it falls behind
// the window); the KV state machine attaches itself in NewKV.
func (r *Replica) AttachSnapshotter(s Snapshotter) { r.snap = s }

// Submit queues a command for replication. Commands of different replicas
// should be distinct values (e.g. tag the replica id into the value);
// duplicate values are committed once per slot that decides them. On a
// log that reserves the descriptor row, commands in that row (IsReserved)
// must not be submitted.
func (r *Replica) Submit(cmd uint32) {
	if h := r.pendingHead; h > 0 && h >= len(r.pending)-h {
		// The consumed prefix dominates the array: slide the live tail
		// down so append reuses the freed capacity instead of growing.
		n := copy(r.pending, r.pending[h:])
		r.pending = r.pending[:n]
		r.pendingHead = 0
	}
	r.pending = append(r.pending, cmd)
}

// SubmitBarrier queues a no-op barrier: a command that decides a slot
// without extending the committed stream. It is only meaningful on logs
// that reserve the descriptor row (batched or checkpointing); on a plain
// log the word would collide with the user command space.
func (r *Replica) SubmitBarrier() error {
	if !r.log.ReservesTopRow() {
		return fmt.Errorf("consensus: no-op barriers need a log that reserves the descriptor row")
	}
	r.Submit(NoopBarrier)
	return nil
}

// SetAuthority installs the arming gate (see the authority field). Call
// before the replica starts stepping; nil leaves arming gated only on
// the Omega oracle, the pre-lease behavior.
func (r *Replica) SetAuthority(f func(vclock.Time) bool) { r.authority = f }

// ArmGen returns how many proposals this replica has armed.
func (r *Replica) ArmGen() uint64 { return r.armGen }

// LastWinArmGen returns the arm generation of the newest proposal that
// won its own ballot (0: none yet). LastWinArmGen() > g, for g a prior
// reading of ArmGen(), proves a proposal armed after that reading has
// decided — and therefore that this replica had learned every slot
// decided before the reading (it arms only at its first unlearned slot,
// and a slot already decided can only be adopted, never won).
func (r *Replica) LastWinArmGen() uint64 { return r.lastWinArmGen }

// Noops returns how many no-op barrier slots this replica has learned.
func (r *Replica) Noops() int { return r.noops }

// pendingLen returns the number of queued-but-uncommitted commands.
func (r *Replica) pendingLen() int { return len(r.pending) - r.pendingHead }

// pendingAt returns the i-th queued command (0 is the oldest).
func (r *Replica) pendingAt(i int) uint32 { return r.pending[r.pendingHead+i] }

// popPending drops the oldest queued command.
func (r *Replica) popPending() {
	r.pendingHead++
	if r.pendingHead == len(r.pending) {
		r.pending = r.pending[:0]
		r.pendingHead = 0
	}
}

// clearPending empties the queue, keeping its storage.
func (r *Replica) clearPending() {
	r.pending = r.pending[:0]
	r.pendingHead = 0
}

// Committed returns a copy of the replica's retained committed command
// tail in log order (shared across all replicas by consensus slot
// agreement), with batch slots flattened into their constituent commands
// and checkpoint slots elided. On a non-recycling log this is the full
// history; on a recycling log it is the commands since the newest
// checkpoint the state machine had fully applied (CommittedBase counts
// the summarized prefix).
func (r *Replica) Committed() []uint32 {
	return append([]uint32(nil), r.committed...)
}

// CommittedLen returns the length of the whole committed command stream,
// including the prefix summarized away by checkpoints.
func (r *Replica) CommittedLen() int { return r.committedBase + len(r.committed) }

// CommittedBase returns how many committed commands have been summarized
// into checkpoints and are no longer retained individually (0 on a
// non-recycling log).
func (r *Replica) CommittedBase() int { return r.committedBase }

// SlotsDecided returns how many log slots this replica has passed —
// learned in order or skipped by installing a snapshot. On an unbatched
// log this equals CommittedLen plus the checkpoint slots; on a batched
// log the committed stream can be up to MaxBatch times longer.
func (r *Replica) SlotsDecided() int { return r.slotsDecided }

// LogFull reports whether the log can commit no further commands through
// this replica: every slot of a non-recycling log has been decided and
// learned. A recycling log never fills — sealed slots are reclaimed — so
// LogFull is then always false; see WindowFull for the transient
// backpressure condition.
func (r *Replica) LogFull() bool {
	return !r.log.Recycling() && r.slotsDecided >= len(r.log.ring)
}

// WindowFull reports whether the replica has caught up to the end of the
// recycling window and must wait for a checkpoint to be quorum-acked
// before more slots can decide. Unlike LogFull this is transient: the
// window slides as soon as the acks land.
func (r *Replica) WindowFull() bool {
	return r.log.Recycling() && r.slotsDecided >= r.log.Base()+len(r.log.ring)
}

// Pending returns the number of commands still waiting for commit.
func (r *Replica) Pending() int { return r.pendingLen() }

// Checkpoints returns how many checkpoints this replica has passed
// (learned in order or installed).
func (r *Replica) Checkpoints() int { return r.ckptSeen }

// SnapshotInstalls returns how many of those checkpoints were passed by
// installing a published snapshot — the lagging-replica catch-up path —
// rather than by replaying the sealed slots.
func (r *Replica) SnapshotInstalls() int { return r.installs }

// DropGeneration returns how many times this replica's pending queue has
// been dropped (DropPending). A writer that cached the generation at
// submit time can detect an unobserved leadership flap — and therefore
// the loss of its queued command — with one comparison instead of
// scanning the queue.
func (r *Replica) DropGeneration() uint64 { return r.dropGen }

// checkpointDue reports whether the leader should seal now: ckptEvery
// slots have decided since the last seal (or since birth) and the state
// machine hooks needed to render a snapshot are attached.
func (r *Replica) checkpointDue() bool {
	return r.log.ckptEvery > 0 && r.snap != nil &&
		r.slotsDecided-(r.lastSealSlot+1) >= r.log.ckptEvery
}

// Step advances the replica: learn the next slot if decided, otherwise
// propose for it when leader — a checkpoint when due, else the oldest
// pending command or a batch. A replica whose next slot was recycled
// installs the latest snapshot instead; one that has caught up to the end
// of the window tries to slide it forward.
func (r *Replica) Step(now vclock.Time) {
	slot := r.slotsDecided
	inst := r.cachedInst
	if inst == nil || r.cachedSlot != slot {
		var st slotStatus
		inst, st = r.log.instance(slot)
		switch st {
		case slotRecycled:
			r.cachedInst, r.cachedSlot = nil, -1
			r.installLatestSnapshot()
			return
		case slotAhead:
			// Non-recycling: the log is permanently full. Recycling: the
			// window is exhausted until a checkpoint gathers its quorum of
			// acks; re-check them now so the window slides as soon as it
			// can.
			r.cachedInst, r.cachedSlot = nil, -1
			if r.log.Recycling() {
				r.maybeAdvanceWindow()
			}
			return
		}
		r.cachedInst, r.cachedSlot = inst, slot
	}
	// Learn: any replica's decision register settles the slot.
	for i := 0; i < r.log.N; i++ {
		if v, ok := unpackDec(inst.Dec[i].Read(r.id)); ok {
			r.commitSlot(v)
			return
		}
	}
	if r.omega() != r.id || (r.pendingLen() == 0 && !r.checkpointDue()) {
		return
	}
	if r.prop == nil || r.propSlot != slot {
		// The authority gate sits exactly at arming: an in-flight proposal
		// (below) keeps stepping after authority lapses, but no NEW
		// proposal — command, batch, checkpoint or barrier — arms without
		// it. This is what bounds a deposed leader to at most one straggler
		// commit, which the successor's catch-up barrier fences.
		if r.authority != nil && !r.authority(now) {
			return
		}
		input, ok := r.proposal()
		if !ok {
			return
		}
		if input == NoValue {
			// Only reachable with a NoValue command, which Submit's
			// contract excludes; drop it rather than wedge the log.
			r.popPending()
			return
		}
		if r.prop == nil {
			p, err := NewProposer(inst, r.id, input, r.omega)
			if err != nil {
				r.popPending()
				return
			}
			r.prop = p
		} else {
			r.prop.reset(inst, input)
		}
		r.propSlot = slot
		r.armGen++
		r.curArmGen = r.armGen
	}
	r.prop.Step(now)
	if v, ok := r.prop.Decided(); ok {
		if r.prop.WonBallot() {
			r.lastWinArmGen = r.curArmGen
		}
		r.commitSlot(v)
	}
}

// proposal picks what to run consensus on for the next slot: a freshly
// published checkpoint descriptor when a seal is due, the oldest pending
// command, or — when the log is batched, at least two commands are
// pending and the batch areas have room — a freshly published batch
// descriptor covering up to MaxBatch of them. ok is false when there is
// nothing proposable (a due checkpoint could not publish and nothing is
// pending).
func (r *Replica) proposal() (input uint32, ok bool) {
	if r.checkpointDue() {
		if desc, ok := r.publishCkpt(); ok {
			return desc, true
		}
	}
	if r.pendingLen() == 0 {
		return 0, false
	}
	k := r.pendingLen()
	if k > r.log.maxBatch {
		k = r.log.maxBatch
	}
	if r.log.ReservesTopRow() {
		// A queued barrier proposes as itself, never inside a batch (batch
		// data words are commands; a barrier is not). One at the head goes
		// out now; one further back truncates the batch in front of it.
		for i := 0; i < k; i++ {
			if r.pendingAt(i) == NoopBarrier {
				if i == 0 {
					return NoopBarrier, true
				}
				k = i
				break
			}
		}
	}
	if k < 2 {
		return r.pendingAt(0), true
	}
	desc, published := r.publishBatch(r.pending[r.pendingHead : r.pendingHead+k])
	if !published {
		return r.pendingAt(0), true
	}
	return desc, true
}

// reclaimPubsLocked pops the spent head publications of a fifo: those
// whose slot fell behind the recycled window (never resolvable again) and
// — keepLatest aside — returns the surviving list plus the data words
// freed. Only recycling logs reclaim; a non-recycling log keeps every
// publication forever, preserving the fixed-capacity semantics. Callers
// hold log.mu.
func (r *Replica) reclaimPubsLocked(pubs []pub, keepLatest int) ([]pub, int) {
	if !r.log.Recycling() {
		return pubs, 0
	}
	freed := 0
	for len(pubs) > 0 && pubs[0].slot < r.log.base && pubs[0].seq != keepLatest {
		freed += pubs[0].words
		pubs = pubs[1:]
	}
	return pubs, freed
}

// dropDeadPub removes a publication whose slot just decided a different
// value: the descriptor can never be decided anymore (a publication's
// BALINP write exists only in its own slot's instance), so on a recycling
// log its area is immediately reusable. This is what keeps leadership
// churn from permanently burning area capacity. The dead publication is
// always the newest one (a replica publishes at most once per slot and
// only for its first undecided slot), so the pop rewinds the ring
// cursors exactly, keeping the in-flight sequence and data ranges
// contiguous — which is what guarantees a fresh sequence number never
// collides with a live publication.
func (r *Replica) dropDeadPub(slot int, decided uint32) {
	if !r.log.Recycling() {
		return
	}
	r.log.mu.Lock()
	defer r.log.mu.Unlock()
	if n := len(r.batchPubs); n > 0 && r.batchPubs[n-1].slot == slot && r.batchPubs[n-1].desc != decided {
		p := r.batchPubs[n-1]
		dataCap := len(r.log.data[r.id])
		r.dataUsed -= p.words
		r.dataOff = (r.dataOff - p.words + dataCap) % dataCap
		r.nextBatchSeq--
		r.batchPubs = r.batchPubs[:n-1]
	}
	if n := len(r.ckptPubs); n > 0 && r.ckptPubs[n-1].slot == slot && r.ckptPubs[n-1].desc != decided {
		p := r.ckptPubs[n-1]
		r.log.freeAreaLocked(r.id, r.log.snaps[r.id][p.seq])
		delete(r.log.snaps[r.id], p.seq)
		r.nextCkptSeq--
		r.ckptPubs = r.ckptPubs[:n-1]
	}
}

// publishBatch writes cmds into the replica's batch area and returns the
// descriptor naming the publication. The data words are written before
// the header, and publishBatch returns before the descriptor is proposed,
// so by the time any replica can learn the descriptor the publication is
// complete and immutable (single-writer registers, linearizable
// substrate). ok is false when the header or data area is exhausted; the
// caller then proposes a plain command instead.
func (r *Replica) publishBatch(cmds []uint32) (desc uint32, ok bool) {
	// Only a recycling log reclaims areas under readers, so only there is
	// the window lock needed to fence publication against resolution.
	if r.log.Recycling() {
		r.log.mu.Lock()
		defer r.log.mu.Unlock()
	}
	var freed int
	r.batchPubs, freed = r.reclaimPubsLocked(r.batchPubs, -1)
	r.dataUsed -= freed
	hdrCap := len(r.log.hdr[r.id])
	dataCap := len(r.log.data[r.id])
	words := (len(cmds) + 1) / 2
	if len(r.batchPubs) >= hdrCap || r.dataUsed+words > dataCap {
		return 0, false
	}
	seq := r.nextBatchSeq % hdrCap
	start := r.dataOff % dataCap
	for w := 0; w < words; w++ {
		word := uint64(cmds[2*w])
		if 2*w+1 < len(cmds) {
			word |= uint64(cmds[2*w+1]) << 32
		}
		r.log.data[r.id][(start+w)%dataCap].Write(r.id, word)
	}
	r.log.hdr[r.id][seq].Write(r.id, packBatchHdr(start, len(cmds)))
	desc = encodeBatchDesc(r.id, seq)
	r.batchPubs = append(r.batchPubs, pub{seq: seq, slot: r.slotsDecided, desc: desc, words: words})
	r.nextBatchSeq++
	r.dataOff = (start + words) % dataCap
	r.dataUsed += words
	return desc, true
}

// publishCkpt renders the state machine's snapshot of the committed
// prefix, publishes it into a fresh per-epoch snapshot area — data words,
// then the metadata, then the completion header, so the publication is
// complete and immutable before its descriptor can be proposed, let alone
// learned — and returns the checkpoint descriptor to propose for the
// current slot. ok is false when the sequence ring has no free slot.
func (r *Replica) publishCkpt() (desc uint32, ok bool) {
	entries := r.snap.SnapshotEntries()
	r.log.mu.Lock()
	defer r.log.mu.Unlock()
	var survivors []pub
	survivors, _ = r.reclaimPubsLocked(r.ckptPubs, r.selfLatestSeq)
	for _, p := range r.ckptPubs[:len(r.ckptPubs)-len(survivors)] {
		r.log.freeAreaLocked(r.id, r.log.snaps[r.id][p.seq])
		delete(r.log.snaps[r.id], p.seq)
	}
	r.ckptPubs = survivors
	if len(r.ckptPubs) >= ckptSeqCap {
		return 0, false
	}
	seq := r.nextCkptSeq % ckptSeqCap
	if _, taken := r.log.snaps[r.id][seq]; taken {
		// The ring slot is still in flight (pathological churn); skip
		// sealing this round rather than clobber a live publication.
		return 0, false
	}
	r.nextCkptSeq++
	words := (len(entries) + 1) / 2
	area := r.log.takeAreaLocked(r.id, words)
	for w := 0; w < words; w++ {
		word := uint64(entries[2*w])
		if 2*w+1 < len(entries) {
			word |= uint64(entries[2*w+1]) << 32
		}
		area.data[w].Write(r.id, word)
	}
	area.meta.Write(r.id, uint64(r.committedBase+len(r.committed)))
	area.hdr.Write(r.id, uint64(len(entries))+1)
	r.log.snaps[r.id][seq] = area
	desc = encodeCkptDesc(r.id, seq)
	r.ckptPubs = append(r.ckptPubs, pub{seq: seq, slot: r.slotsDecided, desc: desc})
	return desc, true
}

// resolveSlot expands the decided value of the given global slot: a plain
// command is itself, a batch descriptor is read back from the publisher's
// batch area, a checkpoint descriptor yields seal coordinates instead of
// commands. The publication was completed before the descriptor could be
// proposed, so every replica resolves the same descriptor to the same
// commands. ok is false when the slot was recycled out from under the
// learner mid-step (it will install a snapshot on a later step).
func (r *Replica) resolveSlot(slot int, v uint32) (cmds []uint32, sealPid, sealSeq int, isSeal, ok bool) {
	if r.log.Recycling() && isCkptDesc(v) {
		pid, seq := decodeCkptDesc(v)
		return nil, pid, seq, true, true
	}
	if !r.log.Batched() || !isDesc(v) {
		r.resolveBuf = append(r.resolveBuf[:0], v)
		return r.resolveBuf, 0, 0, false, true
	}
	pid, seq := decodeBatchDesc(v)
	// Resolution must exclude area reclamation, which only a recycling
	// log performs; a non-recycling log's publications are immutable
	// forever, exactly as before recycling existed.
	if r.log.Recycling() {
		r.log.mu.Lock()
		defer r.log.mu.Unlock()
		if slot < r.log.base {
			return nil, 0, 0, false, false
		}
	}
	dataCap := len(r.log.data[pid])
	start, count := unpackBatchHdr(r.log.hdr[pid][seq].Read(r.id))
	cmds = r.resolveBuf[:0]
	for w := 0; len(cmds) < count; w++ {
		word := r.log.data[pid][(start+w)%dataCap].Read(r.id)
		cmds = append(cmds, uint32(word))
		if len(cmds) < count {
			cmds = append(cmds, uint32(word>>32))
		}
	}
	r.resolveBuf = cmds
	return cmds, 0, 0, false, true
}

// commitSlot records slot r.slotsDecided as decided with value v,
// appending its resolved commands to the committed stream and popping the
// matching prefix of the pending queue (the decided commands, when they
// are this replica's own proposal). A decided checkpoint instead seals
// the prefix: the replica acknowledges it on the substrate, publishes the
// latest-checkpoint pointer, trims its retained history, and tries to
// slide the window.
func (r *Replica) commitSlot(v uint32) {
	slot := r.slotsDecided
	if r.log.ReservesTopRow() && v == NoopBarrier {
		// Barrier slots decide but append nothing. Pop a queued barrier at
		// the head (any decided barrier satisfies it — the fence property
		// is in who won the slot, not in whose no-op word it was), and
		// reclaim a dead publication of ours the barrier outran.
		r.slotsDecided++
		r.noops++
		if r.propSlot == slot {
			r.propSlot = -1
		}
		r.dropDeadPub(slot, v)
		if r.pendingLen() > 0 && r.pendingAt(0) == NoopBarrier {
			r.popPending()
		}
		return
	}
	cmds, sealPid, sealSeq, isSeal, ok := r.resolveSlot(slot, v)
	if !ok {
		// Recycled mid-learn: drop the memoized instance so the next step
		// re-classifies the slot and takes the snapshot-install path.
		r.cachedInst, r.cachedSlot = nil, -1
		return
	}
	r.slotsDecided++
	if r.propSlot == slot {
		// Disarm but keep the proposer object: the next led slot resets
		// it in place instead of allocating a fresh state machine.
		r.propSlot = -1
	}
	r.dropDeadPub(slot, v)
	if isSeal {
		r.applySeal(slot, sealPid, sealSeq)
		return
	}
	for _, c := range cmds {
		r.committed = append(r.committed, c)
		if r.pendingLen() > 0 && r.pendingAt(0) == c {
			r.popPending()
		}
	}
}

// applySeal processes a learned checkpoint decided at the given slot: the
// replica's own committed prefix is exactly the sealed one, so no
// snapshot read is needed — it acknowledges the seal, points lagging
// replicas at the publication, trims the retained command tail up to what
// its state machine has applied, and re-checks the ack quorum.
func (r *Replica) applySeal(slot, pid, seq int) {
	r.lastSealSlot = slot
	r.ckptSeen++
	if pid == r.id {
		r.selfLatestSeq = seq
	} else {
		r.selfLatestSeq = -1
	}
	r.log.ack[r.id].Write(r.id, uint64(slot)+1)
	r.log.ptr[r.id].Write(r.id, packCkptPtr(slot, pid, seq))
	if r.snap != nil {
		keep := r.committedBase + len(r.committed)
		if a := r.snap.AppliedLen(); a < keep {
			keep = a
		}
		if drop := keep - r.committedBase; drop > 0 {
			// Trim in place: the tail slides down over the sealed prefix,
			// keeping the array's capacity for the next window of commits.
			n := copy(r.committed, r.committed[drop:])
			r.committed = r.committed[:n]
			r.committedBase = keep
		}
	}
	r.maybeAdvanceWindow()
}

// maybeAdvanceWindow reads every replica's checkpoint ack register and
// slides the window up to the newest seal a majority has durably
// acknowledged. Any replica may observe the quorum and advance; the
// window state is monotone, so concurrent observers are harmless.
func (r *Replica) maybeAdvanceWindow() {
	if !r.log.Recycling() {
		return
	}
	acks := make([]int, r.log.N)
	for i := range acks {
		acks[i] = int(r.log.ack[i].Read(r.id))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(acks)))
	// acks[i] is 1 + sealed slot, i.e. directly the base candidate; the
	// (N/2+1)-th largest is the newest value a majority has reached.
	if q := acks[r.log.N/2]; q > 0 {
		r.log.advance(q)
	}
}

// installLatestSnapshot is the lagging-replica catch-up path: the
// replica's next slot was recycled, so it finds the newest checkpoint any
// process has published a pointer to, installs that snapshot into its
// state machine, and resumes learning right after the sealed prefix. The
// skipped commands are reflected in the installed state but are not
// individually retained (committedBase advances past them).
func (r *Replica) installLatestSnapshot() {
	if r.snap == nil {
		return // cannot install without state hooks; documented wedge
	}
	best := uint64(0)
	for i := 0; i < r.log.N; i++ {
		if v := r.log.ptr[i].Read(r.id); v > best {
			best = v
		}
	}
	if best == 0 {
		return
	}
	sealSlot, pid, seq := unpackCkptPtr(best)
	if sealSlot+1 <= r.slotsDecided {
		return // no newer checkpoint visible yet; retry on a later step
	}
	entries, committedLen, ok := r.log.readSnapshot(r.id, pid, seq)
	if !ok {
		return // publication raced away; a newer pointer will appear
	}
	r.snap.InstallSnapshot(entries, committedLen)
	r.slotsDecided = sealSlot + 1
	r.committed = r.committed[:0]
	r.committedBase = committedLen
	r.lastSealSlot = sealSlot
	r.ckptSeen++
	r.installs++
	if pid == r.id {
		r.selfLatestSeq = seq
	} else {
		r.selfLatestSeq = -1
	}
	r.propSlot = -1
	r.log.ack[r.id].Write(r.id, uint64(sealSlot)+1)
	r.log.ptr[r.id].Write(r.id, best)
	r.maybeAdvanceWindow()
}
