package consensus

import (
	"fmt"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Register class names of the batch areas (the per-slot consensus classes
// are in consensus.go).
const (
	ClassBatchHdr  = "BHDR"
	ClassBatchData = "BDAT"
)

// MaxBatchProcs is the largest process count a batched log supports: a
// batch descriptor packs the publishing process id into four bits.
const MaxBatchProcs = 16

// Batch descriptors live in the top row of the 32-bit command space:
// commands whose high 16 bits are all ones. A descriptor names a batch
// publication — (pid, seq) — rather than carrying a command itself, so
// one consensus slot can decide many commands at once: the proposer
// publishes the batch contents into its single-writer batch area first,
// then runs consensus on the 32-bit descriptor, exactly the
// pointer-to-value indirection Disk Paxos uses for large proposals. On a
// batched log the top row is therefore reserved: Submit must not be given
// plain commands with all-ones high bits (KV.Set enforces this by
// rejecting key 0xFFFF).
const batchDescMark = uint32(0xFFFF0000)

// encodeBatchDesc packs a batch publication identity into a descriptor
// command: 16 mark bits, 4 process-id bits, 12 sequence bits.
func encodeBatchDesc(pid, seq int) uint32 {
	return batchDescMark | uint32(pid)<<12 | uint32(seq)
}

// decodeBatchDesc unpacks a descriptor command.
func decodeBatchDesc(cmd uint32) (pid, seq int) {
	return int(cmd >> 12 & 0xF), int(cmd & 0xFFF)
}

// isBatchDesc reports whether cmd is a batch descriptor. NoValue also has
// all-ones high bits, but it is never decided (Submit and NewProposer
// both reject it), so a decided command in the top row is a descriptor.
func isBatchDesc(cmd uint32) bool { return cmd&batchDescMark == batchDescMark }

// IsReserved reports whether cmd may not be submitted to a batched log:
// the all-ones top row of the command space is claimed by batch
// descriptors (and the NoValue sentinel). On an unbatched log only
// NoValue itself is reserved.
func IsReserved(cmd uint32, batched bool) bool {
	if batched {
		return cmd&batchDescMark == batchDescMark
	}
	return cmd == NoValue
}

// packBatchHdr packs a publication's extent — its first data-word offset
// and its command count — into the publisher's header register.
func packBatchHdr(start, count int) uint64 {
	return uint64(start)<<32 | uint64(uint32(count))
}

func unpackBatchHdr(w uint64) (start, count int) {
	return int(w >> 32), int(uint32(w))
}

// Log is a replicated log: a fixed array of consensus instances over one
// shared memory. Slot s's decision is the s-th decided value of every
// replica's slot sequence — the classic Omega/Paxos
// state-machine-replication construction the paper's introduction
// motivates.
//
// A log built with NewBatchLog additionally carries per-process batch
// areas, and a slot's decided value may then be a batch descriptor that
// expands to up to MaxBatch commands, so the committed command stream can
// be longer than the number of decided slots.
type Log struct {
	// N is the number of replica processes.
	N int
	// Slots holds one consensus instance per log position.
	Slots []*Instance

	// maxBatch is the largest number of commands one slot may decide
	// (1: plain log, no batch areas allocated).
	maxBatch int
	// hdr[p][seq] is process p's header register for its seq-th batch
	// publication; data[p][w] the w-th word of its batch data area. Both
	// are single-writer (owned by p) and written only before the
	// publication's descriptor is proposed, so their contents are
	// immutable by the time any reader can learn the descriptor.
	hdr  [][]shmem.Reg
	data [][]shmem.Reg
}

// NewLog allocates slots consensus instances for n processes in mem. The
// log is unbatched: every slot decides exactly one command.
func NewLog(mem shmem.Mem, n, slots int) *Log {
	l, err := NewBatchLog(mem, n, slots, 1)
	if err != nil {
		// Unreachable: maxBatch 1 skips every batch validation.
		panic(err)
	}
	return l
}

// NewBatchLog allocates a replicated log whose slots may decide batches
// of up to maxBatch commands. maxBatch 1 is exactly NewLog. For
// maxBatch > 1 the log reserves the all-ones top row of the command space
// for batch descriptors (so 16-bit key/value commands lose key 0xFFFF)
// and supports at most MaxBatchProcs processes. Each process gets a
// header area of min(slots, 4094) publications — the descriptor's
// 12-bit sequence space, kept clear of the NoValue sentinel — and a data
// area sized so every one of those publications can carry a full
// maxBatch commands (two per 64-bit word): a stable leader can therefore
// batch at full width for the whole log. Leadership churn can still burn
// publications whose slot another proposer wins; a proposer that
// exhausts its areas falls back to plain single-command proposals, so
// batching degrades, never wedges.
func NewBatchLog(mem shmem.Mem, n, slots, maxBatch int) (*Log, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("consensus: batch size must be at least 1, got %d", maxBatch)
	}
	if maxBatch > 1 && n > MaxBatchProcs {
		return nil, fmt.Errorf("consensus: batched log supports at most %d processes, got %d", MaxBatchProcs, n)
	}
	l := &Log{N: n, Slots: make([]*Instance, slots), maxBatch: maxBatch}
	for s := range l.Slots {
		l.Slots[s] = NewInstance(mem, n, s)
	}
	if maxBatch > 1 {
		// 4094, not 4096: descriptor seq is 12 bits, and (pid 15, seq
		// 0xFFF) would collide with the NoValue sentinel. 4094 keeps a
		// symmetric margin below both.
		hdrCap := slots
		if hdrCap > 4094 {
			hdrCap = 4094
		}
		dataCap := hdrCap * ((maxBatch + 1) / 2)
		l.hdr = make([][]shmem.Reg, n)
		l.data = make([][]shmem.Reg, n)
		for p := 0; p < n; p++ {
			l.hdr[p] = make([]shmem.Reg, hdrCap)
			for s := range l.hdr[p] {
				l.hdr[p][s] = mem.Word(p, ClassBatchHdr, p, s)
			}
			l.data[p] = make([]shmem.Reg, dataCap)
			for w := range l.data[p] {
				l.data[p][w] = mem.Word(p, ClassBatchData, p, w)
			}
		}
	}
	return l, nil
}

// Batched reports whether slots of this log may decide multi-command
// batches.
func (l *Log) Batched() bool { return l.maxBatch > 1 }

// MaxBatch returns the largest number of commands one slot may decide.
func (l *Log) MaxBatch() int { return l.maxBatch }

// Replica is one process's view of the replicated log. It learns decided
// slots in order, and — while the Omega oracle names it leader — proposes
// for the first undecided slot: its oldest pending command, or, on a
// batched log with two or more pending commands, a freshly published
// batch of up to MaxBatch of them.
type Replica struct {
	log   *Log
	id    int
	omega func() int

	// committed is the flattened command stream: batch descriptors are
	// resolved at learn time, so committed never contains descriptors and
	// may be longer than slotsDecided on a batched log.
	committed    []uint32
	slotsDecided int
	pending      []uint32
	// dropGen counts DropPending calls, so writers can detect a queue
	// sweep they never observed with one comparison.
	dropGen uint64

	prop     *Proposer
	propSlot int

	// nextSeq and dataOff track the replica's batch areas: the next free
	// publication slot and data word. Publications are never reused — a
	// proposed descriptor may commit long after the proposer moved on
	// (ballot adoption), so the area behind it must stay immutable.
	nextSeq int
	dataOff int
}

// NewReplica creates replica id over log with the given leader oracle.
func NewReplica(log *Log, id int, omega func() int) (*Replica, error) {
	if omega == nil {
		return nil, fmt.Errorf("consensus: nil omega oracle")
	}
	return &Replica{log: log, id: id, omega: omega, propSlot: -1}, nil
}

// Submit queues a command for replication. Commands of different replicas
// should be distinct values (e.g. tag the replica id into the value);
// duplicate values are committed once per slot that decides them. On a
// batched log, commands in the reserved descriptor row (IsReserved) must
// not be submitted.
func (r *Replica) Submit(cmd uint32) { r.pending = append(r.pending, cmd) }

// Committed returns the replica's committed command stream in log order
// (shared across all replicas by consensus slot agreement), with batch
// slots flattened into their constituent commands.
func (r *Replica) Committed() []uint32 {
	return append([]uint32(nil), r.committed...)
}

// CommittedLen returns the length of the committed command stream without
// copying it.
func (r *Replica) CommittedLen() int { return len(r.committed) }

// SlotsDecided returns how many log slots this replica has learned. On an
// unbatched log this equals CommittedLen; on a batched log the committed
// stream can be up to MaxBatch times longer.
func (r *Replica) SlotsDecided() int { return r.slotsDecided }

// LogFull reports whether every slot of the log has been decided and
// learned by this replica: no further commands can commit through it.
func (r *Replica) LogFull() bool { return r.slotsDecided >= len(r.log.Slots) }

// Pending returns the number of commands still waiting for commit.
func (r *Replica) Pending() int { return len(r.pending) }

// DropGeneration returns how many times this replica's pending queue has
// been dropped (DropPending). A writer that cached the generation at
// submit time can detect an unobserved leadership flap — and therefore
// the loss of its queued command — with one comparison instead of
// scanning the queue.
func (r *Replica) DropGeneration() uint64 { return r.dropGen }

// Step advances the replica: learn the next slot if decided, otherwise
// propose for it when leader — the oldest pending command, or a batch.
func (r *Replica) Step(now vclock.Time) {
	slot := r.slotsDecided
	if slot >= len(r.log.Slots) {
		return // log full
	}
	inst := r.log.Slots[slot]
	// Learn: any replica's decision register settles the slot.
	for i := 0; i < r.log.N; i++ {
		if v, ok := unpackDec(inst.Dec[i].Read(r.id)); ok {
			r.commitSlot(v)
			return
		}
	}
	if len(r.pending) == 0 || r.omega() != r.id {
		return
	}
	if r.prop == nil || r.propSlot != slot {
		p, err := NewProposer(inst, r.id, r.proposal(), r.omega)
		if err != nil {
			// Only reachable with a NoValue command, which Submit's
			// contract excludes; drop it rather than wedge the log.
			r.pending = r.pending[1:]
			return
		}
		r.prop, r.propSlot = p, slot
	}
	r.prop.Step(now)
	if v, ok := r.prop.Decided(); ok {
		r.commitSlot(v)
	}
}

// proposal picks what to run consensus on for the next slot: the oldest
// pending command, or — when the log is batched, at least two commands
// are pending and the batch areas have room — a freshly published batch
// descriptor covering up to MaxBatch of them.
func (r *Replica) proposal() uint32 {
	k := len(r.pending)
	if k > r.log.maxBatch {
		k = r.log.maxBatch
	}
	if k < 2 {
		return r.pending[0]
	}
	desc, ok := r.publishBatch(r.pending[:k])
	if !ok {
		return r.pending[0]
	}
	return desc
}

// publishBatch writes cmds into the replica's batch area and returns the
// descriptor naming the publication. The data words are written before
// the header, and publishBatch returns before the descriptor is proposed,
// so by the time any replica can learn the descriptor the publication is
// complete and immutable (single-writer registers, linearizable
// substrate). ok is false when the header or data area is exhausted; the
// caller then proposes a plain command instead.
func (r *Replica) publishBatch(cmds []uint32) (desc uint32, ok bool) {
	words := (len(cmds) + 1) / 2
	if r.nextSeq >= len(r.log.hdr[r.id]) || r.dataOff+words > len(r.log.data[r.id]) {
		return 0, false
	}
	for w := 0; w < words; w++ {
		word := uint64(cmds[2*w])
		if 2*w+1 < len(cmds) {
			word |= uint64(cmds[2*w+1]) << 32
		}
		r.log.data[r.id][r.dataOff+w].Write(r.id, word)
	}
	r.log.hdr[r.id][r.nextSeq].Write(r.id, packBatchHdr(r.dataOff, len(cmds)))
	desc = encodeBatchDesc(r.id, r.nextSeq)
	r.nextSeq++
	r.dataOff += words
	return desc, true
}

// resolve expands a decided slot value into its command sequence: a plain
// command is itself, a batch descriptor is read back from the publisher's
// batch area. The publication was completed before the descriptor could
// be proposed, so every replica resolves the same descriptor to the same
// commands.
func (r *Replica) resolve(v uint32) []uint32 {
	if !r.log.Batched() || !isBatchDesc(v) {
		return []uint32{v}
	}
	pid, seq := decodeBatchDesc(v)
	start, count := unpackBatchHdr(r.log.hdr[pid][seq].Read(r.id))
	cmds := make([]uint32, 0, count)
	for w := start; len(cmds) < count; w++ {
		word := r.log.data[pid][w].Read(r.id)
		cmds = append(cmds, uint32(word))
		if len(cmds) < count {
			cmds = append(cmds, uint32(word>>32))
		}
	}
	return cmds
}

// commitSlot records slot r.slotsDecided as decided with value v,
// appending its resolved commands to the committed stream and popping the
// matching prefix of the pending queue (the decided commands, when they
// are this replica's own proposal).
func (r *Replica) commitSlot(v uint32) {
	slot := r.slotsDecided
	r.slotsDecided++
	for _, c := range r.resolve(v) {
		r.committed = append(r.committed, c)
		if len(r.pending) > 0 && r.pending[0] == c {
			r.pending = r.pending[1:]
		}
	}
	if r.propSlot == slot {
		r.prop, r.propSlot = nil, -1
	}
}
