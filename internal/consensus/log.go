package consensus

import (
	"fmt"

	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Log is a replicated log: a fixed array of consensus instances over one
// shared memory. Slot s's decision is the s-th command of every replica's
// committed sequence — the classic Omega/Paxos state-machine-replication
// construction the paper's introduction motivates.
type Log struct {
	N     int
	Slots []*Instance
}

// NewLog allocates slots consensus instances for n processes in mem.
func NewLog(mem shmem.Mem, n, slots int) *Log {
	l := &Log{N: n, Slots: make([]*Instance, slots)}
	for s := range l.Slots {
		l.Slots[s] = NewInstance(mem, n, s)
	}
	return l
}

// Replica is one process's view of the replicated log. It learns decided
// slots in order, and — while the Omega oracle names it leader — proposes
// its oldest pending command for the first undecided slot.
type Replica struct {
	log   *Log
	id    int
	omega func() int

	committed []uint32
	pending   []uint32

	prop     *Proposer
	propSlot int
}

// NewReplica creates replica id over log with the given leader oracle.
func NewReplica(log *Log, id int, omega func() int) (*Replica, error) {
	if omega == nil {
		return nil, fmt.Errorf("consensus: nil omega oracle")
	}
	return &Replica{log: log, id: id, omega: omega, propSlot: -1}, nil
}

// Submit queues a command for replication. Commands of different replicas
// should be distinct values (e.g. tag the replica id into the value);
// duplicate values are committed once per slot that decides them.
func (r *Replica) Submit(cmd uint32) { r.pending = append(r.pending, cmd) }

// Committed returns the replica's committed prefix (shared across all
// replicas by consensus slot agreement).
func (r *Replica) Committed() []uint32 {
	return append([]uint32(nil), r.committed...)
}

// Pending returns the number of commands still waiting for commit.
func (r *Replica) Pending() int { return len(r.pending) }

// Step advances the replica: learn the next slot if decided, otherwise
// propose the oldest pending command when leader.
func (r *Replica) Step(now vclock.Time) {
	slot := len(r.committed)
	if slot >= len(r.log.Slots) {
		return // log full
	}
	inst := r.log.Slots[slot]
	// Learn: any replica's decision register settles the slot.
	for i := 0; i < r.log.N; i++ {
		if v, ok := unpackDec(inst.Dec[i].Read(r.id)); ok {
			r.commit(v)
			return
		}
	}
	if len(r.pending) == 0 || r.omega() != r.id {
		return
	}
	if r.prop == nil || r.propSlot != slot {
		p, err := NewProposer(inst, r.id, r.pending[0], r.omega)
		if err != nil {
			// Only reachable with a NoValue command, which Submit's
			// contract excludes; drop it rather than wedge the log.
			r.pending = r.pending[1:]
			return
		}
		r.prop, r.propSlot = p, slot
	}
	r.prop.Step(now)
	if v, ok := r.prop.Decided(); ok {
		r.commit(v)
	}
}

func (r *Replica) commit(v uint32) {
	slot := len(r.committed)
	r.committed = append(r.committed, v)
	if len(r.pending) > 0 && r.pending[0] == v {
		r.pending = r.pending[1:]
	}
	if r.propSlot == slot {
		r.prop, r.propSlot = nil, -1
	}
}
