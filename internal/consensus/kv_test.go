package consensus

import (
	"math/rand"
	"reflect"
	"testing"

	"omegasm/internal/shmem"
)

func newKVs(t *testing.T, n, slots int, omega func(i int) func() int) []*KV {
	t.Helper()
	mem := shmem.NewSimMem(n)
	log := NewLog(mem, n, slots)
	kvs := make([]*KV, n)
	for i := 0; i < n; i++ {
		r, err := NewReplica(log, i, omega(i))
		if err != nil {
			t.Fatal(err)
		}
		kv, err := NewKV(r)
		if err != nil {
			t.Fatal(err)
		}
		kvs[i] = kv
	}
	return kvs
}

func TestKVValidation(t *testing.T) {
	if _, err := NewKV(nil); err == nil {
		t.Error("nil replica accepted")
	}
}

func TestKVEncodeDecode(t *testing.T) {
	for _, tc := range []struct{ k, v uint16 }{{0, 0}, {1, 2}, {65535, 0}, {42, 65535}} {
		k, v := DecodeSet(EncodeSet(tc.k, tc.v))
		if k != tc.k || v != tc.v {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", tc.k, tc.v, k, v)
		}
	}
}

func TestKVRejectsReservedPair(t *testing.T) {
	kvs := newKVs(t, 2, 4, func(i int) func() int { return func() int { return 0 } })
	if err := kvs[0].Set(0xFFFF, 0xFFFF); err == nil {
		t.Error("reserved pair accepted")
	}
	if err := kvs[0].Set(0xFFFF, 0); err != nil {
		t.Errorf("legal pair rejected: %v", err)
	}
}

func TestKVReplication(t *testing.T) {
	kvs := newKVs(t, 3, 16, func(i int) func() int { return func() int { return 0 } })
	if err := kvs[0].Set(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := kvs[0].Set(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := kvs[0].Set(1, 11); err != nil { // overwrite
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 100_000; s++ {
		kvs[rng.Intn(3)].Step(0)
		if kvs[0].Applied() >= 3 && kvs[1].Applied() >= 3 && kvs[2].Applied() >= 3 {
			break
		}
	}
	want := map[uint16]uint16{1: 11, 2: 20}
	for i, kv := range kvs {
		if got := kv.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d state %v, want %v", i, got, want)
		}
	}
	if v, ok := kvs[2].Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = (%d,%v)", v, ok)
	}
	if _, ok := kvs[2].Get(99); ok {
		t.Fatal("Get of missing key reported present")
	}
}

// TestKVConvergenceUnderChurn: concurrent writers with self-proclaiming
// oracles; all replicas' applied states must stay convergent (same
// committed prefix => same state).
func TestKVConvergenceUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		kvs := newKVs(t, 3, 32, func(i int) func() int { return func() int { return i } })
		for i, kv := range kvs {
			for k := 0; k < 3; k++ {
				if err := kv.Set(uint16(i*10+k), uint16(seed)); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 150_000; s++ {
			kvs[rng.Intn(3)].Step(0)
		}
		// Truncate to the shortest applied prefix and compare by
		// replaying: simpler — replicas with equal Applied must have
		// equal snapshots.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if kvs[i].Applied() == kvs[j].Applied() {
					if !reflect.DeepEqual(kvs[i].Snapshot(), kvs[j].Snapshot()) {
						t.Fatalf("seed %d: replicas %d and %d diverged at same applied count",
							seed, i, j)
					}
				}
			}
		}
	}
}
