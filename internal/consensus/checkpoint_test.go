package consensus

import (
	"math/rand"
	"reflect"
	"testing"

	"omegasm/internal/shmem"
)

// newCkptKVs builds n KV replicas over one checkpointing log.
func newCkptKVs(t *testing.T, n, slots, maxBatch, every int, omega func(i int) func() int) []*KV {
	t.Helper()
	mem := shmem.NewSimMem(n)
	log, err := NewCheckpointLog(mem, n, slots, maxBatch, every)
	if err != nil {
		t.Fatal(err)
	}
	kvs := make([]*KV, n)
	for i := 0; i < n; i++ {
		r, err := NewReplica(log, i, omega(i))
		if err != nil {
			t.Fatal(err)
		}
		if kvs[i], err = NewKV(r); err != nil {
			t.Fatal(err)
		}
	}
	return kvs
}

func TestNewCheckpointLogValidation(t *testing.T) {
	mem := shmem.NewSimMem(2)
	if _, err := NewCheckpointLog(mem, 2, 8, 1, -1); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := NewCheckpointLog(mem, 2, 8, 1, 8); err == nil {
		t.Error("interval equal to the window accepted")
	}
	if _, err := NewCheckpointLog(shmem.NewSimMem(17), 17, 8, 1, 2); err == nil {
		t.Error("17 processes accepted on a checkpointing log")
	}
	l, err := NewCheckpointLog(mem, 2, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Recycling() || l.CheckpointEvery() != 2 || !l.ReservesTopRow() || l.Batched() {
		t.Fatal("accessors disagree with construction")
	}
	if IsReserved(EncodeSet(0xFFFF, 1), l.ReservesTopRow()) != true {
		t.Fatal("checkpointing log must reserve the 0xFFFF key row")
	}
}

// TestCheckpointUnboundedStream is the core recycling property: a stream
// 10x the slot capacity commits through a tiny window, with checkpoints
// sealing and recycling slots along the way, and every replica's state
// converges on the last-write-wins map.
func TestCheckpointUnboundedStream(t *testing.T) {
	const (
		slots  = 16
		every  = 4
		writes = 160 // 10x the window
	)
	kvs := newCkptKVs(t, 3, slots, 1, every, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 0; k < writes; k++ {
		if err := kvs[0].Set(uint16(k%10), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for s := 0; s < 4_000_000; s++ {
		kvs[rng.Intn(3)].Step(0)
		if kvs[0].Applied() >= writes && kvs[1].Applied() >= writes && kvs[2].Applied() >= writes {
			break
		}
	}
	want := map[uint16]uint16{}
	for k := 0; k < writes; k++ {
		want[uint16(k%10)] = uint16(k)
	}
	for i, kv := range kvs {
		if kv.Applied() < writes {
			t.Fatalf("replica %d applied only %d of %d (slots decided %d)",
				i, kv.Applied(), writes, kv.SlotsDecided())
		}
		if got := kv.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d state %v, want %v", i, got, want)
		}
		if kv.LogFull() {
			t.Fatalf("replica %d reports LogFull on a recycling log", i)
		}
		if kv.SlotsDecided() <= slots {
			t.Fatalf("replica %d decided only %d slots; recycling never engaged", i, kv.SlotsDecided())
		}
		if kv.Checkpoints() < 3 {
			t.Fatalf("replica %d passed only %d checkpoints", i, kv.Checkpoints())
		}
	}
}

// TestCheckpointBatchedStream runs the same unbounded stream over a
// batched log: batch descriptors and checkpoint descriptors share the
// reserved row and must coexist across many recycles.
func TestCheckpointBatchedStream(t *testing.T) {
	const (
		slots  = 8
		every  = 3
		writes = 320
	)
	kvs := newCkptKVs(t, 3, slots, 8, every, func(i int) func() int {
		return func() int { return 0 }
	})
	var pairs [][2]uint16
	for k := 0; k < writes; k++ {
		pairs = append(pairs, [2]uint16{uint16(k % 13), uint16(k)})
	}
	if err := kvs[0].SetAll(pairs...); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 6_000_000; s++ {
		kvs[rng.Intn(3)].Step(0)
		if kvs[0].Applied() >= writes && kvs[1].Applied() >= writes && kvs[2].Applied() >= writes {
			break
		}
	}
	want := kvs[0].Snapshot()
	if kvs[0].Applied() < writes {
		t.Fatalf("leader applied only %d of %d", kvs[0].Applied(), writes)
	}
	for k := 0; k < 13; k++ {
		last := writes - 1 - (writes-1-k)%13 // the last write of key k
		if v := want[uint16(k)]; v != uint16(last) {
			t.Fatalf("key %d = %d, want %d", k, v, last)
		}
	}
	for i := 1; i < 3; i++ {
		if got := kvs[i].Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d diverged", i)
		}
	}
	if kvs[0].SlotsDecided() >= writes {
		t.Fatal("batching never engaged under checkpointing")
	}
}

// TestCheckpointCrashBetweenSealAndAck is the crash-during-checkpoint
// recovery scenario: the leader seals (its checkpoint command decides and
// it learns it) and then dies before any other replica has learned —
// let alone acknowledged — the checkpoint. The survivors must learn the
// seal from the decision registers, gather the ack quorum among
// themselves, recycle, and keep committing.
func TestCheckpointCrashBetweenSealAndAck(t *testing.T) {
	const (
		slots = 8
		every = 2
	)
	leader := 0
	omega := func(i int) func() int { return func() int { return leader } }
	kvs := newCkptKVs(t, 3, slots, 1, every, omega)
	// Drive only the leader until it has passed its first checkpoint: the
	// followers have learned nothing, so no ack but the leader's exists.
	for k := 0; k < 4; k++ {
		if err := kvs[0].Set(uint16(k), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 100_000 && kvs[0].Checkpoints() == 0; s++ {
		kvs[0].Step(0)
	}
	if kvs[0].Checkpoints() == 0 {
		t.Fatal("leader never sealed")
	}
	if kvs[1].Checkpoints() != 0 || kvs[2].Checkpoints() != 0 {
		t.Fatal("test premise broken: a follower already passed the checkpoint")
	}
	// The leader crashes: it is never stepped again, and the oracle moves.
	leader = 1
	// Survivor 1 inherits the workload and must push the stream well past
	// the original window, which requires recycling — and recycling
	// requires the survivors to ack the dead leader's checkpoint and every
	// one they seal themselves.
	const writes = 40 // 5x the window
	for k := 0; k < writes; k++ {
		if err := kvs[1].Set(uint16(100+k%10), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 2_000_000; s++ {
		kvs[1+rng.Intn(2)].Step(0)
		if kvs[1].PendingLen() == 0 && kvs[2].Applied() >= kvs[1].Applied() && kvs[1].Applied() >= writes {
			break
		}
	}
	if kvs[1].PendingLen() != 0 {
		t.Fatalf("survivors wedged: %d writes still pending after the leader died mid-checkpoint (slots decided %d)",
			kvs[1].PendingLen(), kvs[1].SlotsDecided())
	}
	for i := 1; i < 3; i++ {
		if v, ok := kvs[i].Get(100 + uint16(writes-1)%10); !ok || v != uint16(writes-1) {
			t.Fatalf("survivor %d missing the final write: (%d, %v)", i, v, ok)
		}
		if v, ok := kvs[i].Get(0); !ok || v != 0 {
			t.Fatalf("survivor %d lost a pre-crash committed write: (%d, %v)", i, v, ok)
		}
	}
}

// TestSnapshotInstallOnLaggingReplica: a replica that stops stepping
// while the others stream far past the window cannot replay the recycled
// slots; it must install the newest published snapshot and resume from
// the seal point with the exact state.
func TestSnapshotInstallOnLaggingReplica(t *testing.T) {
	const (
		slots  = 8
		every  = 2
		writes = 64
	)
	kvs := newCkptKVs(t, 3, slots, 1, every, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 0; k < writes; k++ {
		if err := kvs[0].Set(uint16(k%5), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Only replicas 0 and 1 run (a majority: acks gather, slots recycle).
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 2_000_000; s++ {
		kvs[rng.Intn(2)].Step(0)
		if kvs[0].Applied() >= writes && kvs[1].Applied() >= writes {
			break
		}
	}
	if kvs[0].Applied() < writes {
		t.Fatalf("stream stalled at %d of %d", kvs[0].Applied(), writes)
	}
	if kvs[2].SlotsDecided() != 0 {
		t.Fatal("test premise broken: the lagging replica stepped")
	}
	// The laggard wakes up: its slot 0 is long recycled.
	for s := 0; s < 100_000 && kvs[2].Applied() < kvs[0].CommittedLen(); s++ {
		kvs[2].Step(0)
	}
	if kvs[2].SnapshotInstalls() == 0 {
		t.Fatal("lagging replica never installed a snapshot")
	}
	if got, want := kvs[2].Snapshot(), kvs[0].Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("installed state %v diverged from leader state %v", got, want)
	}
}

// TestRestartedReplicaInstallsSnapshot models a process restart: a brand
// new Replica (fresh local state, same id and shared log) joins after the
// stream has recycled its early slots, and must catch up via snapshot
// install rather than replay.
func TestRestartedReplicaInstallsSnapshot(t *testing.T) {
	const (
		slots  = 8
		every  = 2
		writes = 48
	)
	mem := shmem.NewSimMem(3)
	log, err := NewCheckpointLog(mem, 3, slots, 1, every)
	if err != nil {
		t.Fatal(err)
	}
	omega := func() int { return 0 }
	kvs := make([]*KV, 3)
	for i := 0; i < 3; i++ {
		r, err := NewReplica(log, i, omega)
		if err != nil {
			t.Fatal(err)
		}
		if kvs[i], err = NewKV(r); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < writes; k++ {
		if err := kvs[0].Set(uint16(k%5), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for s := 0; s < 2_000_000; s++ {
		kvs[rng.Intn(2)].Step(0)
		if kvs[0].Applied() >= writes && kvs[1].Applied() >= writes {
			break
		}
	}
	if kvs[0].Applied() < writes {
		t.Fatalf("stream stalled at %d of %d", kvs[0].Applied(), writes)
	}
	// "Restart" replica 2: a fresh replica object over the same log — all
	// local learning state lost, shared registers intact.
	r2, err := NewReplica(log, 2, omega)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := NewKV(r2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 100_000 && restarted.Applied() < kvs[0].CommittedLen(); s++ {
		restarted.Step(0)
	}
	if restarted.SnapshotInstalls() == 0 {
		t.Fatal("restarted replica never installed a snapshot")
	}
	if got, want := restarted.Snapshot(), kvs[0].Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted state %v diverged from leader state %v", got, want)
	}
}

// TestCheckpointDisabledKeepsLogFull is the regression gate: with
// checkpointing off the log is exactly the old fixed array — it fills,
// LogFull reports it, and further steps are no-ops.
func TestCheckpointDisabledKeepsLogFull(t *testing.T) {
	kvs := newCkptKVs(t, 2, 4, 1, 0, func(i int) func() int {
		return func() int { return 0 }
	})
	for k := 0; k < 10; k++ {
		if err := kvs[0].Set(uint16(k), uint16(k)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 200_000 && !kvs[0].LogFull(); s++ {
		kvs[rng.Intn(2)].Step(0)
	}
	if !kvs[0].LogFull() {
		t.Fatal("non-recycling log never filled")
	}
	if kvs[0].Applied() != 4 {
		t.Fatalf("applied %d, want exactly the 4 slots available", kvs[0].Applied())
	}
	if kvs[0].Checkpoints() != 0 || kvs[0].WindowFull() {
		t.Fatal("checkpoint machinery engaged on a non-recycling log")
	}
	kvs[0].Step(0) // full log: no-op, no panic
}

// TestCheckpointPrefixAgreementUnderChurn: concurrently proposing
// replicas (self-proclaimed leaders) interleaving checkpoint and data
// proposals must keep the applied states convergent at equal applied
// counts, across many recycles, for every seed.
func TestCheckpointPrefixAgreementUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		kvs := newCkptKVs(t, 3, 8, 1, 2, func(i int) func() int {
			return func() int { return i }
		})
		for i, kv := range kvs {
			for k := 0; k < 20; k++ {
				if err := kv.Set(uint16(i*100+k%7), uint16(k)); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < 400_000; s++ {
			kvs[rng.Intn(3)].Step(0)
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if kvs[i].Applied() == kvs[j].Applied() {
					if !reflect.DeepEqual(kvs[i].Snapshot(), kvs[j].Snapshot()) {
						t.Fatalf("seed %d: replicas %d and %d diverged at applied=%d",
							seed, i, j, kvs[i].Applied())
					}
				}
			}
		}
	}
}
