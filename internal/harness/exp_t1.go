package harness

import (
	"fmt"

	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Algorithm 1: write efficiency and boundedness",
		Paper: "Theorems 2, 3 (and Lemma 5)",
		Run:   runT1,
	})
}

// runT1 regenerates Theorems 2 and 3 for Algorithm 1: after
// stabilization,
//
//   - exactly one process (the leader) writes shared memory, and the only
//     register it writes is PROGRESS[leader] (Theorem 3);
//   - every other register's value stops changing — all shared variables
//     but PROGRESS[leader] are bounded (Theorem 2);
//   - the leader keeps writing in every suffix window (Lemma 5).
//
// The table reports the per-process write counts in the last quarter of
// each run: a single nonzero row per run is the paper's headline result.
func runT1(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "T1: Algorithm 1 per-process writes in the last quarter of the run",
		Header: []string{"n", "crashes", "seed", "leader", "suffix writes by process", "regs written"},
		Caption: "Theorem 3: the suffix writer census is {leader} and the only register " +
			"written is PROGRESS[leader].",
	}

	n := 5
	for _, crashes := range []int{0, 2} {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(AlgoWriteEfficient, n, seed, horizon)
			p.Crash = crashSchedule(crashes, horizon)
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			tag := fmt.Sprintf("crashes=%d seed=%d", crashes, seed)
			if !out.StableBeforeMid() {
				report.Add("T1/stabilized "+tag, false,
					fmt.Sprintf("stable=%v stabTime=%d mid=%d", out.Stable, out.StabTime, out.MidTime))
				continue
			}
			suffix := out.Suffix()
			trace.CheckWriteEfficiency(report, suffix, out.Leader)
			trace.CheckBoundedExceptProgress(report, suffix, out.Leader)
			trace.CheckReadersForever(report, suffix, out.Leader, out.Res.Crashed)
			tbl.AddRow(stats.I(n), stats.I(crashes), fmt.Sprintf("%d", seed),
				stats.I(out.Leader), fmt.Sprintf("%v", writesByProcess(suffix)),
				fmt.Sprintf("%v", suffix.WrittenRegisters()))
		}
	}
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}

// writesByProcess sums the suffix write counts per process.
func writesByProcess(s *shmem.CensusSnapshot) []uint64 {
	out := make([]uint64, s.N)
	for _, r := range s.Regs {
		for p, w := range r.WritesBy {
			out[p] += w
		}
	}
	return out
}
