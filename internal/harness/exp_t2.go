package harness

import (
	"fmt"

	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "T2",
		Title: "The leader writes forever; every other correct process reads forever",
		Paper: "Lemmas 5 and 6 (Section 3.4 lower bounds)",
		Run:   runT2,
	})
}

// runT2 regenerates Lemmas 5 and 6 as a windowed census: the run is split
// into 8 equal windows and for each window we record which processes
// wrote and which read. The lemmas predict that in every window after
// stabilization the leader appears in the writer census (Lemma 5) and
// every correct non-leader appears in the reader census (Lemma 6) — not
// just "eventually once", but in every suffix window, which is the
// operational meaning of "forever".
func runT2(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	const windows = 8
	n := 5

	report := &trace.Report{}
	var tables []*stats.Table
	for _, algo := range []Algo{AlgoWriteEfficient, AlgoBounded} {
		p := defaultPreset(algo, n, 5, horizon)
		var snaps []*shmem.CensusSnapshot
		var snapTimes []vclock.Time
		mem := shmem.NewSimMem(p.N)
		procs, err := buildProcs(p, mem)
		if err != nil {
			return nil, err
		}
		w, err := newWorld(p, procs, mem)
		if err != nil {
			return nil, err
		}
		winLen := horizon / windows
		next := winLen
		w.AddHook(sched.HookFunc(func(_ *sched.World, s sched.Sample) {
			// The final boundary is covered by the explicit end snapshot
			// below; stopping early avoids a degenerate empty window.
			for s.T >= next && next < horizon {
				snaps = append(snaps, mem.Census().Snapshot())
				snapTimes = append(snapTimes, next)
				next += winLen
			}
		}))
		res := w.Run()
		snaps = append(snaps, mem.Census().Snapshot())
		snapTimes = append(snapTimes, res.End)
		stab, leader, stable := trace.Stabilization(res.Samples, res.Crashed)
		if !stable {
			report.Add(fmt.Sprintf("T2/%s/stabilized", algo), false, "run did not stabilize")
			continue
		}
		report.Add(fmt.Sprintf("T2/%s/stabilized", algo), true,
			fmt.Sprintf("leader=%d at t=%d", leader, stab))

		tbl := &stats.Table{
			Title:  fmt.Sprintf("T2 (%s): per-window access census", algo),
			Header: []string{"window end", "writers", "readers", "leaderWrote", "allOthersRead"},
			Caption: fmt.Sprintf("leader=%d stabilized at t=%d; Lemma 5/6 assert the last two "+
				"columns are true in every post-stabilization window.", leader, stab),
		}
		okL5, okL6 := true, true
		prev := (*shmem.CensusSnapshot)(nil)
		for i, s := range snaps {
			var diff *shmem.CensusSnapshot
			if prev == nil {
				diff = s
			} else {
				diff = s.Diff(prev)
			}
			prev = s
			writers := diff.Writers()
			readers := diff.Readers()
			leaderWrote := containsInt(writers, leader)
			others := true
			for q := 0; q < n; q++ {
				if q == leader || res.Crashed[q] {
					continue
				}
				if !containsInt(readers, q) {
					others = false
				}
			}
			post := snapTimes[i] > stab+winLen // fully post-stabilization windows
			if post && !leaderWrote {
				okL5 = false
			}
			if post && !others {
				okL6 = false
			}
			tbl.AddRow(fmt.Sprintf("%d", snapTimes[i]), fmt.Sprintf("%v", writers),
				fmt.Sprintf("%v", readers), fmt.Sprintf("%v", leaderWrote),
				fmt.Sprintf("%v", others))
		}
		report.Add(fmt.Sprintf("Lemma5/%s", algo), okL5,
			"leader wrote in every post-stabilization window")
		report.Add(fmt.Sprintf("Lemma6/%s", algo), okL6,
			"every correct non-leader read in every post-stabilization window")
		tables = append(tables, tbl)
	}
	return &Outcome{Tables: tables, Report: report}, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
