package harness

import (
	"fmt"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "T7",
		Title: "Shared-memory operation complexity, before and after stabilization",
		Paper: "implicit (the cost model behind Section 3.4's read/write optimality)",
		Run:   runT7,
	})
}

// runT7 measures the read/write cost structure the optimality section
// reasons about: for each algorithm, the rate of register reads and
// writes system-wide during the anarchy phase (up to stabilization) and
// during the steady state (after it). The paper's results predict the
// steady-state column shapes:
//
//   - writes/ktick: algo1-family ~ the leader's step rate only; algo2 ~
//     n times higher (the handshake acknowledgements); baseline ~ n
//     heartbeats;
//   - reads/ktick: everyone scans forever in all algorithms (Lemma 6 and
//     the quasi-optimality remark after Theorem 4): reads dominate
//     writes by the n^2 suspicion scan in every T2 iteration.
func runT7(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	n := 5

	report := &trace.Report{}
	tbl := &stats.Table{
		Title: "T7: shared-memory operations per 1000 ticks (means over seeds, n=5)",
		Header: []string{"algorithm", "anarchy reads", "anarchy writes",
			"steady reads", "steady writes", "read/write ratio (steady)"},
		Caption: "anarchy = start..stabilization; steady = last quarter. " +
			"Reads stay heavy forever (Lemma 6); writes collapse per Theorem 3 / stay up per Corollary 1.",
	}

	type rates struct{ ar, aw, sr, sw []float64 }
	perAlgo := map[Algo]*rates{}
	for _, algo := range Algos {
		r := &rates{}
		perAlgo[algo] = r
		for seed := int64(1); seed <= int64(seeds); seed++ {
			out, err := Execute(defaultPreset(algo, n, seed, horizon))
			if err != nil {
				return nil, err
			}
			if !out.StableBeforeMid() {
				continue
			}
			var anarchyR, anarchyW, steadyR, steadyW uint64
			// Anarchy window approximated by the midpoint snapshot minus
			// the suffix; more precisely we use [0, mid] vs [mid, end]
			// and report the suffix as "steady" (stabilization happened
			// before mid by construction).
			for _, reg := range out.Mid.Regs {
				anarchyR += reg.TotalReads()
				anarchyW += reg.TotalWrites()
			}
			suffix := out.Suffix()
			for _, reg := range suffix.Regs {
				steadyR += reg.TotalReads()
				steadyW += reg.TotalWrites()
			}
			anarchyLen := float64(out.MidTime)
			steadyLen := float64(out.Res.End - out.MidTime)
			if anarchyLen > 0 {
				r.ar = append(r.ar, float64(anarchyR)/anarchyLen*1000)
				r.aw = append(r.aw, float64(anarchyW)/anarchyLen*1000)
			}
			if steadyLen > 0 {
				r.sr = append(r.sr, float64(steadyR)/steadyLen*1000)
				r.sw = append(r.sw, float64(steadyW)/steadyLen*1000)
			}
		}
		mean := func(xs []float64) float64 { return stats.Summarize(xs).Mean }
		ratio := "-"
		if mean(r.sw) > 0 {
			ratio = stats.F(mean(r.sr) / mean(r.sw))
		}
		tbl.AddRow(string(algo),
			stats.F(mean(r.ar)), stats.F(mean(r.aw)),
			stats.F(mean(r.sr)), stats.F(mean(r.sw)), ratio)
	}

	mean := func(xs []float64) float64 { return stats.Summarize(xs).Mean }
	a1, a2 := perAlgo[AlgoWriteEfficient], perAlgo[AlgoBounded]
	report.Add("T7/algo2WritesMore", mean(a2.sw) > 2*mean(a1.sw),
		fmt.Sprintf("steady writes: algo2 %.1f vs algo1 %.1f per ktick (the bounded-memory price)",
			mean(a2.sw), mean(a1.sw)))
	report.Add("T7/readsNeverStop", mean(a1.sr) > 0 && mean(a2.sr) > 0,
		"steady read rates positive for both algorithms (Lemma 6)")
	report.Add("T7/readsDominate", mean(a1.sr) > mean(a1.sw),
		fmt.Sprintf("algo1 steady reads %.1f > writes %.1f (the n^2 suspicion scan)",
			mean(a1.sr), mean(a1.sw)))
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
