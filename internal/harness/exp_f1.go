package harness

import (
	"fmt"
	"math/rand"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Asymptotically well-behaved timer: T_R dominates f",
		Paper: "Figure 1 / Section 2.3 (properties f1-f3)",
		Run:   runF1,
	})
}

// runF1 regenerates Figure 1: it samples an adversarial timer's real
// expiry durations T_R(tau, x) across set-times tau and timeout values x,
// against the dominated function f(tau, x) = 4x + 1. The verdicts check
// the definition's three properties on the measured data:
//
//   - before the settle point the timer is genuinely arbitrary (some
//     samples fall below f: the finite misbehaving prefix);
//   - after the settle point every sample satisfies T_R >= f (f3);
//   - T_R itself is NOT monotone after settling (the oscillation the
//     definition permits, which distinguishes AWB timers from the
//     traditional monotone-timer assumption);
//   - f is unbounded in x on the sampled range (f2).
func runF1(cfg Config) (*Outcome, error) {
	f := vclock.Affine{A: 4, B: 1}
	settle := vclock.Time(10_000)
	beh := &vclock.Adversarial{
		F:         f,
		Settle:    settle,
		PrefixMax: 40,
		OscAmp:    24,
		Rng:       rand.New(rand.NewSource(42)),
	}

	tbl := &stats.Table{
		Title:  "F1: timer expiry T_R(tau,x) vs dominated f(tau,x)=4x+1",
		Header: []string{"phase", "x", "f(tau,x)", "T_R min", "T_R max", "dominated"},
		Caption: "Arbitrary before settle (tau<10000); dominating but non-monotone after " +
			"(paper Fig. 1: T_R oscillates above f).",
	}

	report := &trace.Report{}
	xs := []uint64{1, 2, 4, 8, 16, 32, 64}
	samplesPerCell := 40

	prefixBelowF := false
	postAllDominate := true
	postMonotone := true
	var prevMin vclock.Duration

	for _, phase := range []string{"prefix", "settled"} {
		for _, x := range xs {
			minD, maxD := vclock.Duration(1<<62), vclock.Duration(0)
			for s := 0; s < samplesPerCell; s++ {
				var tau vclock.Time
				if phase == "prefix" {
					tau = vclock.Time(s * 200)
				} else {
					tau = settle + vclock.Time(s*200)
				}
				d := beh.Expire(tau, x)
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
			fv := f.Eval(settle, x)
			dominated := minD >= fv
			if phase == "prefix" && minD < fv {
				prefixBelowF = true
			}
			if phase == "settled" {
				if !dominated {
					postAllDominate = false
				}
				if prevMin > 0 && maxD < prevMin {
					// a later (larger-x) cell entirely below an earlier
					// one would contradict domination of a nondecreasing
					// f; oscillation within cells is what we expect.
					postMonotone = false
				}
				prevMin = minD
			}
			tbl.AddRow(phase, stats.U(x), fmt.Sprintf("%d", fv),
				fmt.Sprintf("%d", minD), fmt.Sprintf("%d", maxD),
				fmt.Sprintf("%v", dominated))
		}
	}

	// Oscillation check: resample one cell and verify T_R is not constant
	// (i.e. the timer is not simply f plus a constant).
	oscillates := false
	first := beh.Expire(settle+1, 16)
	for s := 0; s < 100; s++ {
		if beh.Expire(settle+1+vclock.Time(s), 16) != first {
			oscillates = true
			break
		}
	}

	// (f2): f grows without bound in x on the sampled range.
	growing := f.Eval(settle, xs[len(xs)-1]) > f.Eval(settle, xs[0])

	report.Add("F1/prefixArbitrary", prefixBelowF,
		"misbehaving prefix produced samples below f")
	report.Add("F1/f3DominationAfterSettle", postAllDominate,
		"every settled sample satisfies T_R >= f")
	report.Add("F1/oscillatesAboveF", oscillates,
		"T_R is non-constant above f (monotonicity NOT required)")
	report.Add("F1/f2Unbounded", growing && postMonotone,
		"f increases with x across sampled range")

	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
