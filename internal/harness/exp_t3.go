package harness

import (
	"fmt"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "T3",
		Title: "Optimality trade-off: eventual writers vs bounded memory, across algorithms",
		Paper: "Section 3.4 / Section 4 (the inherent trade-off of the Conclusion)",
		Run:   runT3,
	})
}

// runT3 regenerates the paper's central trade-off as a comparison table
// over all implemented algorithms (the paper's two, its Section 3.5
// variants, and the reconstructed eventually-synchronous baseline [13]):
//
//   - eventual writers: how many processes still write in the last
//     quarter of the run (Algorithm 1 and variants: 1, the optimum of
//     Lemma 5; Algorithm 2: all correct, the optimum under bounded memory
//     by Corollary 1; baseline [13]: all correct, although it does not
//     even bound its memory);
//   - eventual readers: Lemma 6's census;
//   - unbounded registers: how many registers kept changing value in the
//     suffix window (Algorithm 1: exactly one, PROGRESS[ell]; Algorithm 2:
//     only 1-bit booleans flip, nothing grows);
//   - memory footprint in bits, and election latency.
func runT3(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	n := 5

	report := &trace.Report{}
	tbl := &stats.Table{
		Title: "T3: algorithm comparison (means over seeds, n=5, no crashes)",
		Header: []string{"algorithm", "stab p50", "eventual writers", "eventual readers",
			"growing regs", "footprint(bits)", "suffix writes/ktick"},
		Caption: "eventual = active in the last quarter of the run. growing regs = registers " +
			"whose value still changes in the suffix and that are wider than 1 bit.",
	}

	for _, algo := range Algos {
		var stabs []float64
		var writers, readers, growing, bits, wrate []float64
		stable := true
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(algo, n, seed, horizon)
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			if !out.StableBeforeMid() {
				stable = false
				continue
			}
			suffix := out.Suffix()
			stabs = append(stabs, float64(out.StabTime))
			writers = append(writers, float64(len(suffix.Writers())))
			readers = append(readers, float64(len(suffix.Readers())))
			g := 0
			for _, r := range suffix.Regs {
				if r.DistinctValues > 0 && out.End.Regs[r.Name].Bits() > 1 {
					g++
				}
			}
			growing = append(growing, float64(g))
			bits = append(bits, float64(out.End.TotalBits()))
			window := float64(out.Res.End - out.MidTime)
			var w uint64
			for _, r := range suffix.Regs {
				w += r.TotalWrites()
			}
			if window > 0 {
				wrate = append(wrate, float64(w)/window*1000)
			}
		}
		report.Add(fmt.Sprintf("T3/%s/stabilized", algo), stable,
			fmt.Sprintf("all %d seeded runs stabilized before the suffix window", seeds))
		tbl.AddRow(string(algo),
			stats.F(stats.Summarize(stabs).P50),
			stats.F(stats.Summarize(writers).Mean),
			stats.F(stats.Summarize(readers).Mean),
			stats.F(stats.Summarize(growing).Mean),
			stats.F(stats.Summarize(bits).Mean),
			stats.F(stats.Summarize(wrate).Mean))
	}

	return &Outcome{Tables: []*stats.Table{tbl}, Report: report,
		Notes: []string{
			"Expected shape (paper Conclusion): algo1/nwnr/timerfree converge to 1 eventual writer",
			"with exactly one growing register; algo2 keeps every correct process writing but",
			"nothing grows; the baseline pays both costs (all write, unbounded heartbeats).",
		}}, nil
}
