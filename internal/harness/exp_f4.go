package harness

import (
	"fmt"

	"omegasm/internal/sched"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "F4",
		Title: "Bounded memory + silent non-leaders cannot implement Omega",
		Paper: "Figure 4 / Theorem 5, Corollary 1",
		Run:   runF4,
	})
}

// runF4 operationalizes the Figure 4 lower-bound construction. Theorem 5's
// proof builds runs in which a bounded shared memory keeps revisiting the
// same state S, so processes reading it cannot distinguish a live lockstep
// leader from a crashed one. We realize exactly that schedule:
//
//   - every process is paced Fixed{1} (synchronous — the proof's runs are
//     synchronous after the prefix, so the failure is NOT an asynchrony
//     artifact);
//   - every timer is PhaseLocked with period Mod*1 ticks: a legal AWB
//     behavior (expiries are rounded UP above f), yet every observation of
//     the strawman's mod-Mod heartbeat lands on the same phase and reads
//     the same value — the recurring state S of the proof.
//
// Under this schedule the strawman (bounded wrap-around heartbeats,
// saturating suspicions, silent non-leaders) never stabilizes, while
// Algorithms 1 and 2 — run under the *identical* adversary — stabilize:
// Algorithm 1 because its unbounded PROGRESS counter never revisits a
// state, Algorithm 2 because its handshake is watcher-specific and
// acknowledged, so every correct process keeps writing (Corollary 1's
// price, paid by design).
func runF4(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	n := 4
	const mod = 4

	mkPreset := func(algo Algo) Preset {
		p := Preset{
			Algo:         algo,
			N:            n,
			Seed:         11,
			Horizon:      horizon,
			AWBProc:      0,
			Tau1:         horizon / 16,
			Delta:        1,
			StrawMod:     mod,
			StrawSuspCap: 8,
		}
		p.Pacing = make([]sched.Pacing, n)
		p.Timers = make([]vclock.Behavior, n)
		for i := 0; i < n; i++ {
			p.Pacing[i] = sched.Fixed{D: 1}
			p.Timers[i] = vclock.PhaseLocked{
				F:      vclock.Affine{A: 4, B: 1},
				Period: mod,                // one heartbeat wrap per observation period
				Offset: vclock.Duration(i), // distinct phases per watcher
			}
		}
		return p
	}

	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "F4: the Theorem 5 adversary (recurring memory state S)",
		Header: []string{"algorithm", "bounded mem", "stabilized", "leader changes (last 25%)"},
		Caption: "Same schedule for all rows: Fixed{1} pacing, PhaseLocked AWB timers. " +
			"The bounded strawman thrashes forever; the paper's algorithms stabilize.",
	}

	type rowResult struct {
		algo    Algo
		bounded string
		out     *RunOutcome
		changes int
	}
	var rows []rowResult
	for _, algo := range []Algo{AlgoStrawman, AlgoWriteEfficient, AlgoBounded} {
		out, err := Execute(mkPreset(algo))
		if err != nil {
			return nil, err
		}
		changes := trace.LeaderChangesAfter(out.Res.Samples, horizon*3/4)
		bounded := "yes"
		if algo == AlgoWriteEfficient {
			bounded = "all but one"
		}
		rows = append(rows, rowResult{algo, bounded, out, changes})
		tbl.AddRow(string(algo), bounded, fmt.Sprintf("%v", out.Stable), stats.I(changes))
	}

	straw, a1, a2 := rows[0], rows[1], rows[2]
	report.Add("Thm5/strawmanFails", !straw.out.Stable || straw.changes > 0,
		fmt.Sprintf("strawman stable=%v, late leader changes=%d (must thrash)",
			straw.out.Stable, straw.changes))
	report.Add("Thm5/algo1SurvivesAdversary", a1.out.Stable,
		fmt.Sprintf("Algorithm 1 stabilized at t=%d (unbounded PROGRESS defeats state recurrence)", a1.out.StabTime))
	report.Add("Thm5/algo2SurvivesAdversary", a2.out.Stable,
		fmt.Sprintf("Algorithm 2 stabilized at t=%d (acknowledged handshake defeats state recurrence)", a2.out.StabTime))

	// Corollary 1 on Algorithm 2 under this adversary: every correct
	// process still writes in the suffix window.
	if a2.out.StableBeforeMid() {
		trace.CheckAllCorrectWriteForever(report, a2.out.Suffix(), a2.out.Res.Crashed)
	}

	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
