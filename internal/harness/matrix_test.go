package harness

import (
	"fmt"
	"testing"

	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

// TestConvergenceMatrix is the repository's broad correctness sweep: every
// Omega implementation must satisfy Eventual Leadership on AWB runs across
// sizes, seeds, and crash counts up to n-1 (the paper's t).
func TestConvergenceMatrix(t *testing.T) {
	horizon := vclock.Time(150_000)
	for _, algo := range Algos {
		for _, n := range []int{2, 4, 7} {
			for _, crashes := range crashPatterns(n) {
				algo, n, crashes := algo, n, crashes
				name := fmt.Sprintf("%s/n=%d/crashes=%d", algo, n, crashes)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					for seed := int64(1); seed <= 3; seed++ {
						p := defaultPreset(algo, n, seed, horizon)
						p.Crash = crashSchedule(crashes, horizon)
						out, err := Execute(p)
						if err != nil {
							t.Fatal(err)
						}
						if !out.Invariants.OK() {
							t.Errorf("seed %d: invariant violations: %v", seed, out.Invariants.Violations())
						}
						if !out.Stable {
							t.Errorf("seed %d: no stabilization", seed)
							continue
						}
						if out.Leader < 0 || out.Res.Crashed[out.Leader] {
							t.Errorf("seed %d: elected leader %d invalid/crashed", seed, out.Leader)
						}
					}
				})
			}
		}
	}
}

// TestValidityAlways: even before stabilization, every Leader() answer is
// a process identity in range — the oracle's Validity property holds in
// every sample of every run.
func TestValidityAlways(t *testing.T) {
	for _, algo := range Algos {
		p := defaultPreset(algo, 5, 17, 50_000)
		out, err := Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range out.Res.Samples {
			for pid, l := range s.Leaders {
				if l == -1 {
					continue // crashed
				}
				if l < 0 || l >= 5 {
					t.Fatalf("%s: process %d returned out-of-range leader %d at t=%d",
						algo, pid, l, s.T)
				}
			}
		}
	}
}

// TestSelfStabilizationFromGarbage exercises the paper's footnote 7: the
// shared registers may hold arbitrary initial values and the algorithms
// still converge. We fill every register with adversarial garbage before
// construction.
func TestSelfStabilizationFromGarbage(t *testing.T) {
	horizon := vclock.Time(200_000)
	n := 4
	t.Run("algo1", func(t *testing.T) {
		mem := shmem.NewSimMem(n)
		sh := core.NewShared1(mem, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				// Garbage suspicions, but small enough that line 27's
				// timeout (max own row + 1) stays inside the horizon.
				shmem.SeedIfPossible(sh.Suspicions[j][k], uint64((j*7+k*13)%50))
			}
			shmem.SeedIfPossible(sh.Progress[j], uint64(j)*1_000_000_007)
			shmem.SeedIfPossible(sh.Stop[j], uint64(j%2))
		}
		procs := make([]sched.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = core.NewAlgo1(sh, i)
		}
		runGarbage(t, procs, mem, horizon)
	})
	t.Run("algo2", func(t *testing.T) {
		mem := shmem.NewSimMem(n)
		sh := core.NewShared2(mem, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				shmem.SeedIfPossible(sh.Suspicions[j][k], uint64((j*5+k*11)%50))
				shmem.SeedIfPossible(sh.Progress[j][k], uint64(k%2))
				shmem.SeedIfPossible(sh.Last[j][k], uint64(j%2))
			}
			shmem.SeedIfPossible(sh.Stop[j], uint64((j+1)%2))
		}
		procs := make([]sched.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = core.NewAlgo2(sh, i)
		}
		runGarbage(t, procs, mem, horizon)
	})
}

func runGarbage(t *testing.T, procs []sched.Process, mem shmem.Mem, horizon vclock.Time) {
	t.Helper()
	cfg := sched.Config{
		N: len(procs), Seed: 23, Horizon: horizon,
		AWBProc: 0, Tau1: horizon / 8, Delta: 8,
	}
	w, err := sched.NewWorld(cfg, procs, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	st, leader, ok := trace.Stabilization(res.Samples, res.Crashed)
	if !ok {
		t.Fatalf("no stabilization from garbage initial state; last=%v",
			res.Samples[len(res.Samples)-1].Leaders)
	}
	t.Logf("stabilized on %d at t=%d from garbage state", leader, st)
}

// TestBrokenTimersBreakLiveness is the negative control: with timers that
// violate AWB2 (constant short expiry regardless of the timeout value)
// and recurring stalls, Algorithm 1 keeps suspecting and never settles —
// demonstrating the algorithms genuinely use the assumption rather than
// being accidentally robust.
func TestBrokenTimersBreakLiveness(t *testing.T) {
	horizon := vclock.Time(300_000)
	n := 4
	p := defaultPreset(AlgoWriteEfficient, n, 31, horizon)
	for i := 0; i < n; i++ {
		// Constant 8-tick expiry: far below the recurring stalls, and
		// deaf to the growing timeout values (violates f2/f3).
		p.Timers[i] = vclock.Broken{Short: 8}
		// Every process stalls regularly, forever.
		p.Pacing[i] = sched.HeavyTail{Min: 1, Max: 8, StallP: 0.05, StallMax: 4_000}
	}
	p.AWBProc = -1 // no pacing rescue for anyone
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	churn := trace.LeaderChangesAfter(out.Res.Samples, horizon/2)
	if out.Stable && churn == 0 {
		t.Fatalf("run with AWB2-violating timers stabilized (leader=%d); "+
			"the assumption appears unused", out.Leader)
	}
	t.Logf("as predicted: stable=%v, late churn=%d", out.Stable, churn)
}

// TestElectionPrefersLessSuspected: across seeds, the eventually elected
// process is one whose total suspicion count is (weakly) minimal among
// correct processes — the lexmin rule observed end to end.
func TestElectionPrefersLessSuspected(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := defaultPreset(AlgoWriteEfficient, 5, seed, 150_000)
		out, err := Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Stable {
			t.Fatalf("seed %d: no stabilization", seed)
		}
		totals := make([]uint64, 5)
		for _, r := range out.End.Regs {
			if r.Class == core.ClassSuspicions {
				var j, k int
				if _, err := fmt.Sscanf(r.Name, "SUSPICIONS[%d][%d]", &j, &k); err == nil {
					totals[k] += r.MaxValue
				}
			}
		}
		for k := 0; k < 5; k++ {
			if out.Res.Crashed[k] {
				continue
			}
			if totals[k] < totals[out.Leader] {
				t.Errorf("seed %d: leader %d has %d suspicions but correct process %d has %d",
					seed, out.Leader, totals[out.Leader], k, totals[k])
			}
		}
	}
}
