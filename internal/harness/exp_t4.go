package harness

import (
	"fmt"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "T4",
		Title: "Section 3.5 variants behave like Algorithm 1",
		Paper: "Section 3.5 (nWnR registers; eliminating the local clocks)",
		Run:   runT4,
	})
}

// runT4 checks the two Section 3.5 variants against Algorithm 1 run by
// run (same seeds, same adversary): both must stabilize, elect a correct
// leader, and keep Algorithm 1's write-efficiency (one eventual writer,
// one growing register). The nWnR variant must do it with n suspicion
// registers instead of n^2.
func runT4(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	n := 5
	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "T4: Algorithm 1 vs its Section 3.5 variants",
		Header: []string{"algorithm", "seed", "stabilized", "leader", "stab time", "suffix writers", "susp regs"},
		Caption: "susp regs counts suspicion registers allocated (n^2 for the matrix, n for " +
			"the nWnR vector).",
	}

	for _, algo := range []Algo{AlgoWriteEfficient, AlgoNWNR, AlgoTimerFree} {
		okAll := true
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(algo, n, seed, horizon)
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			suspRegs := 0
			for _, r := range out.End.Regs {
				if r.Class == "SUSPICIONS" || r.Class == "NSUSP" {
					suspRegs++
				}
			}
			writers := "-"
			if out.StableBeforeMid() {
				writers = fmt.Sprintf("%v", out.Suffix().Writers())
				if len(out.Suffix().Writers()) != 1 {
					okAll = false
				}
			} else {
				okAll = false
			}
			tbl.AddRow(string(algo), fmt.Sprintf("%d", seed),
				fmt.Sprintf("%v", out.Stable), stats.I(out.Leader),
				fmt.Sprintf("%d", out.StabTime), writers, stats.I(suspRegs))
		}
		report.Add(fmt.Sprintf("T4/%s/writeEfficient", algo), okAll,
			"stabilized with a single eventual writer on every seed")
	}
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
