package harness

import (
	"fmt"

	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "A1",
		Title: "Ablation: what the STOP registers buy",
		Paper: "Figure 2 design choice (lines 9, 11, 15, 20-21)",
		Run:   runA1,
	})
}

// runA1 removes the STOP registers from Algorithm 1 (silence becomes the
// only demotion signal) and measures the cost across a churny run in
// which the leadership changes repeatedly (a sequence of leader crashes):
//
//   - with STOP, a demoted process withdraws voluntarily and is never
//     suspected for it: suspicion totals reflect only real outages;
//   - without STOP, every demotion is charged as a suspicion by every
//     watcher, so suspicion registers (and hence timeouts) grow with the
//     churn, inflating recovery time.
//
// Both variants implement Omega in the limit, but the ablation's inflated
// suspicion counts inflate timeouts (line 27), which in a bounded-horizon
// run can push convergence past the end: the measured cost is therefore
// (a) strictly more suspicions, and (b) no more — and typically fewer —
// runs stabilized within the horizon than the real algorithm.
func runA1(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(800_000)
	seeds := cfg.seeds()
	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "A1: Algorithm 1 vs the NoStop ablation under leadership churn",
		Header: []string{"variant", "stabilized", "stab p50", "total suspicions (mean)", "max timeout (mean)"},
		Caption: "3 staggered crashes force repeated re-elections; suspicions counted over " +
			"the whole run, timeouts from the final timer values.",
	}

	type variant struct {
		name  string
		build func(mem shmem.Mem, n int) []sched.Process
	}
	variants := []variant{
		{"algo1 (with STOP)", func(mem shmem.Mem, n int) []sched.Process {
			out := make([]sched.Process, n)
			for i, p := range core.BuildAlgo1(mem, n) {
				out[i] = p
			}
			return out
		}},
		{"noStop ablation", func(mem shmem.Mem, n int) []sched.Process {
			out := make([]sched.Process, n)
			for i, p := range core.BuildNoStop(mem, n) {
				out[i] = p
			}
			return out
		}},
	}

	n := 6
	suspTotals := make([]float64, len(variants))
	stableCounts := make([]int, len(variants))
	for vi, v := range variants {
		var stabs, susps, timeouts []float64
		stable := 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(AlgoWriteEfficient, n, seed, horizon)
			p.Crash = map[int]vclock.Time{
				1: horizon / 4,
				2: horizon * 2 / 5,
				3: horizon / 2,
			}
			mem := shmem.NewSimMem(n)
			procs := v.build(mem, n)
			w, err := newWorld(p, procs, mem)
			if err != nil {
				return nil, err
			}
			res := w.Run()
			st, _, ok := trace.Stabilization(res.Samples, res.Crashed)
			if ok {
				stable++
				stabs = append(stabs, float64(st))
			}
			snap := mem.Census().Snapshot()
			var total uint64
			for _, r := range snap.Regs {
				if r.Class == core.ClassSuspicions {
					total += r.MaxValue
				}
			}
			susps = append(susps, float64(total))
			// Max timeout proxy: largest suspicion value + 1 (line 27).
			var maxS uint64
			for _, r := range snap.Regs {
				if r.Class == core.ClassSuspicions && r.MaxValue > maxS {
					maxS = r.MaxValue
				}
			}
			timeouts = append(timeouts, float64(maxS+1))
		}
		suspTotals[vi] = stats.Summarize(susps).Mean
		stableCounts[vi] = stable
		tbl.AddRow(v.name, fmt.Sprintf("%d/%d", stable, seeds),
			stats.F(stats.Summarize(stabs).P50),
			stats.F(stats.Summarize(susps).Mean),
			stats.F(stats.Summarize(timeouts).Mean))
	}
	report.Add("A1/algo1/elects", stableCounts[0] == seeds,
		"Algorithm 1 stabilized in every churny run")
	// The ablation's limit-correctness is covered by the core unit test
	// TestNoStopStillElectsInQuietRuns; within a bounded horizon its
	// inflated timeouts legitimately defer convergence, so the in-horizon
	// claim is only "never better than the real algorithm".
	report.Add("A1/stopHelpsConvergence", stableCounts[1] <= stableCounts[0],
		fmt.Sprintf("runs stabilized within horizon: with STOP %d/%d >= without %d/%d",
			stableCounts[0], seeds, stableCounts[1], seeds))
	report.Add("A1/stopReducesSuspicions", suspTotals[0] < suspTotals[1],
		fmt.Sprintf("mean total suspicions: with STOP %.1f < without %.1f",
			suspTotals[0], suspTotals[1]))
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
