package harness

import (
	"fmt"

	"omegasm/internal/sched"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "T5",
		Title: "Sensitivity sweeps: election latency vs n, delta, timer settle, crashes",
		Paper: "implicit (performance behavior of Figure 2 across the AWB parameter space)",
		Run:   runT5,
	})
}

// runT5 sweeps the AWB parameter space and reports Algorithm 1's election
// latency (median over seeds):
//
//   - system size n: latency grows mildly with n (more registers to scan,
//     more suspicion noise at startup);
//   - AWB1 bound delta: latency is insensitive to delta once below the
//     timer scale (the bound only needs to beat the timeout growth);
//   - timer settle time tau_f: latency is dominated by the misbehaving
//     prefix — stabilization tracks the settle point, the paper's
//     "arbitrarily long (but finite) periods";
//   - crash recovery: time from the leader's crash to re-stabilization.
func runT5(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(800_000)
	seeds := cfg.seeds()
	report := &trace.Report{}
	var tables []*stats.Table

	median := func(xs []float64) string { return stats.F(stats.Summarize(xs).P50) }

	// Sweep 1: n.
	ns := []int{2, 3, 5, 8, 12, 16}
	if cfg.Quick {
		ns = []int{2, 4, 8}
	}
	tblN := &stats.Table{
		Title:   "T5a: election latency vs system size (Algorithm 1)",
		Header:  []string{"n", "stab p50 (ticks)", "stabilized"},
		Caption: "medians over seeds; AWB adversary with settle at horizon/8.",
	}
	okAll := true
	for _, n := range ns {
		var stabs []float64
		ok := 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			out, err := Execute(defaultPreset(AlgoWriteEfficient, n, seed, horizon))
			if err != nil {
				return nil, err
			}
			if out.Stable {
				ok++
				stabs = append(stabs, float64(out.StabTime))
			} else {
				okAll = false
			}
		}
		tblN.AddRow(stats.I(n), median(stabs), fmt.Sprintf("%d/%d", ok, seeds))
	}
	report.Add("T5a/allSizesStabilize", okAll, fmt.Sprintf("n in %v", ns))
	tables = append(tables, tblN)

	// Sweep 2: delta.
	tblD := &stats.Table{
		Title:   "T5b: election latency vs AWB1 bound delta (Algorithm 1, n=5)",
		Header:  []string{"delta", "stab p50 (ticks)", "stabilized"},
		Caption: "latency is flat in delta: only the timeout-vs-gap race matters (Lemma 2).",
	}
	for _, delta := range []vclock.Duration{2, 8, 32, 128} {
		var stabs []float64
		ok := 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(AlgoWriteEfficient, 5, seed, horizon)
			p.Delta = delta
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			if out.Stable {
				ok++
				stabs = append(stabs, float64(out.StabTime))
			}
		}
		tblD.AddRow(fmt.Sprintf("%d", delta), median(stabs), fmt.Sprintf("%d/%d", ok, seeds))
	}
	tables = append(tables, tblD)

	// Sweep 3: timer settle point tau_f.
	tblS := &stats.Table{
		Title:   "T5c: election latency vs timer settle point (Algorithm 1, n=5)",
		Header:  []string{"settle", "stab p50 (ticks)", "stabilized"},
		Caption: "stabilization tracks the end of the timers' misbehaving prefix.",
	}
	settles := []vclock.Time{horizon / 64, horizon / 16, horizon / 8, horizon / 4}
	settleTracks := true
	var prevMedian float64 = -1
	for _, settle := range settles {
		var stabs []float64
		ok := 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(AlgoWriteEfficient, 5, seed, horizon)
			for i := range p.Timers {
				p.Timers[i] = &vclock.Adversarial{
					F:         vclock.Affine{A: 4, B: 1},
					Settle:    settle,
					PrefixMax: 64,
					OscAmp:    16,
					Rng:       newRng(seed, i+100),
				}
			}
			p.Tau1 = settle
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			if out.Stable {
				ok++
				stabs = append(stabs, float64(out.StabTime))
			}
		}
		m := stats.Summarize(stabs).P50
		if prevMedian > 0 && m < prevMedian/4 {
			settleTracks = false // latency should not collapse as settle grows
		}
		prevMedian = m
		tblS.AddRow(fmt.Sprintf("%d", settle), median(stabs), fmt.Sprintf("%d/%d", ok, seeds))
	}
	report.Add("T5c/latencyTracksSettle", settleTracks,
		"stabilization latency is monotone-ish in the timers' settle point")
	tables = append(tables, tblS)

	// Sweep 4: incumbent-leader crash recovery. The incumbent is found by
	// a deterministic dry run of the same seed up to the crash time; the
	// real run then crashes exactly that process (the scheduler is
	// deterministic, so the incumbent is the same in both runs).
	tblC := &stats.Table{
		Title:  "T5d: recovery latency after crashing the incumbent leader (Algorithm 1, n=5)",
		Header: []string{"extra crashes", "incumbent crashed", "recover p50 (ticks)", "recovered"},
		Caption: "recovery = re-stabilization time minus the incumbent's crash time; " +
			"extra crashes are staggered after it.",
	}
	// Pacing for the recovery sweep: chaotic heavy-tailed prefix, then
	// every process timely (a run that is *nicer* than AWB requires, so
	// the measured recovery latency isolates detection + re-election
	// rather than adversarial stalls). The pacing is per-process-seeded
	// and identical between the dry and the real run, so the dry run's
	// incumbent is exactly the process the real run crashes.
	recoveryPacing := func(seed int64, tau1 vclock.Time) []sched.Pacing {
		ps := make([]sched.Pacing, 5)
		for i := range ps {
			ps[i] = sched.OwnRng{
				Rng: newRng(seed, 9000+i),
				P: sched.Phase{
					At:     tau1,
					Before: sched.HeavyTail{Min: 1, Max: 8, StallP: 0.02, StallMax: horizon / 64},
					After:  sched.Uniform{Min: 1, Max: 8},
				},
			}
		}
		return ps
	}
	allRecovered := true
	for _, extra := range []int{0, 2} {
		var recov []float64
		ok, incumbentCrashes := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			crashAt := horizon / 2
			dry := defaultPreset(AlgoWriteEfficient, 5, seed, horizon)
			dry.AWBProc = -1
			dry.Pacing = recoveryPacing(seed, dry.Tau1)
			dry.Horizon = crashAt
			dryOut, err := Execute(dry)
			if err != nil {
				return nil, err
			}
			incumbent := dryOut.Leader
			if !dryOut.Stable || incumbent < 0 {
				continue // no settled incumbent to crash
			}
			p := defaultPreset(AlgoWriteEfficient, 5, seed, horizon)
			p.AWBProc = -1
			p.Pacing = recoveryPacing(seed, p.Tau1)
			p.Crash = map[int]vclock.Time{incumbent: crashAt}
			dead := map[int]bool{incumbent: true}
			next := 0
			for c := 0; c < extra; c++ {
				for dead[next] {
					next++
				}
				p.Crash[next] = crashAt + vclock.Time(c+1)*64
				dead[next] = true
			}
			incumbentCrashes++
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			if out.Stable {
				ok++
				r := out.StabTime - crashAt
				if r < 0 {
					r = 0 // survivors already agreed on the new leader
				}
				recov = append(recov, float64(r))
			}
		}
		if ok < incumbentCrashes {
			allRecovered = false
		}
		tblC.AddRow(stats.I(extra), fmt.Sprintf("%d/%d", incumbentCrashes, seeds),
			median(recov), fmt.Sprintf("%d/%d", ok, incumbentCrashes))
	}
	report.Add("T5d/allRecover", allRecovered,
		"every run that crashed its incumbent re-stabilized on a survivor")
	tables = append(tables, tblC)

	return &Outcome{Tables: tables, Report: report}, nil
}
