package harness

import (
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and requires every verdict to pass: this is the repository's
// "reproduce the paper" integration test.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if out.Report == nil {
				t.Fatalf("%s: no report", e.ID)
			}
			for _, v := range out.Report.Verdicts {
				if !v.OK {
					t.Errorf("%s verdict failed: %s", e.ID, v)
				}
			}
			for _, tbl := range out.Tables {
				t.Logf("\n%s", tbl.Render())
			}
		})
	}
}
