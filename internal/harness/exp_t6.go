package harness

import (
	"fmt"

	"omegasm/internal/consensus"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "T6",
		Title: "Omega drives consensus: replicated log over 1WnR registers",
		Paper: "Section 1 motivation (Omega is the weakest FD for consensus; refs [9],[16],[19])",
		Run:   runT6,
	})
}

// runT6 closes the paper's motivating loop: the elected leader drives
// Disk-Paxos-style consensus over the same 1WnR register model. Each
// process runs Algorithm 1 (the oracle) plus a log replica that proposes
// its commands whenever the oracle names it leader. The run crashes a
// process mid-way (possibly the incumbent leader). Verdicts:
//
//   - Agreement: all correct replicas' committed sequences are mutually
//     consistent prefixes;
//   - Validity: every committed value was submitted by some replica;
//   - Progress: commits keep happening once the oracle stabilizes (the
//     liveness Omega buys).
func runT6(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(800_000)
	n := 5
	const slots = 64
	const cmdsPerReplica = 8

	p := defaultPreset(AlgoWriteEfficient, n, 21, horizon)
	p.Crash = map[int]vclock.Time{1: horizon / 2}

	var replicas []*consensus.Replica
	submitted := make(map[uint32]bool)
	p.Aux = func(mem shmem.Mem, procs []sched.Process, w *sched.World) error {
		log := consensus.NewLog(mem, n, slots)
		for i := 0; i < n; i++ {
			i := i
			oracle := func() int { return procs[i].Leader() }
			r, err := consensus.NewReplica(log, i, oracle)
			if err != nil {
				return err
			}
			for k := 0; k < cmdsPerReplica; k++ {
				cmd := uint32(i*1000 + k + 1)
				r.Submit(cmd)
				submitted[cmd] = true
			}
			replicas = append(replicas, r)
			// The crashed oracle process's replica also stops stepping at
			// the crash time: model it as a phase switch to an effectively
			// infinite pacing.
			var pacing sched.Pacing = sched.Uniform{Min: 1, Max: 8}
			if ct, ok := p.Crash[i]; ok {
				pacing = sched.Phase{At: ct, Before: pacing, After: sched.Fixed{D: horizon * 2}}
			}
			w.AddAux(r, pacing)
		}
		return nil
	}

	out, err := Execute(p)
	if err != nil {
		return nil, err
	}

	report := &trace.Report{}
	report.Add("T6/oracleStabilized", out.Stable,
		fmt.Sprintf("leader=%d at t=%d (process 1 crashed at t=%d)", out.Leader, out.StabTime, horizon/2))

	// Agreement: committed sequences are pairwise prefix-consistent.
	agree := true
	var longest []uint32
	for i, r := range replicas {
		if out.Res.Crashed[i] {
			continue
		}
		c := r.Committed()
		if len(c) > len(longest) {
			longest = c
		}
	}
	for i, r := range replicas {
		if out.Res.Crashed[i] {
			continue
		}
		c := r.Committed()
		for s := range c {
			if c[s] != longest[s] {
				agree = false
			}
		}
	}
	report.Add("T6/agreement", agree, "all correct replicas commit consistent prefixes")

	// Validity: every committed value was submitted.
	valid := true
	for _, v := range longest {
		if !submitted[v] {
			valid = false
		}
	}
	report.Add("T6/validity", valid, fmt.Sprintf("%d slots committed, all from submitted set", len(longest)))
	report.Add("T6/progress", len(longest) > 0,
		fmt.Sprintf("committed %d commands across leader crash", len(longest)))

	tbl := &stats.Table{
		Title:  "T6: replicated log over Omega (n=5, crash at mid-run)",
		Header: []string{"replica", "crashed", "committed", "pending"},
	}
	for i, r := range replicas {
		tbl.AddRow(stats.I(i), fmt.Sprintf("%v", out.Res.Crashed[i]),
			stats.I(len(r.Committed())), stats.I(r.Pending()))
	}
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
