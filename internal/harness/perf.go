package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/engine"
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Perf measurement for the instrumentation layer itself (as opposed to the
// paper experiments): BenchCensusContention quantifies what the lock-free
// census buys over the retired global-mutex design under the monitored
// multi-process workload the motivation describes — N processes of a live
// cluster each scanning registers every step while a Stats poller
// snapshots concurrently. `omegabench -bench` runs these and emits the
// machine-readable BENCH_*.json files that record the perf trajectory.

// CensusContentionPoint is one data point of the census contention
// benchmark: the same monitored workload run against the mutex census and
// the lock-free census.
type CensusContentionPoint struct {
	// Procs is the number of concurrently accessing processes.
	Procs int `json:"procs"`
	// Registers is how many registers the workload touches (the Algorithm
	// 1 shape for Procs processes: SUSPICIONS + PROGRESS + STOP).
	Registers int `json:"registers"`
	// MutexOpsPerSec and LockFreeOpsPerSec are instrumented register
	// accesses per second, summed over all processes.
	MutexOpsPerSec    float64 `json:"mutex_ops_per_sec"`
	LockFreeOpsPerSec float64 `json:"lockfree_ops_per_sec"`
	// Speedup is LockFreeOpsPerSec / MutexOpsPerSec.
	Speedup float64 `json:"speedup"`
}

// FleetQueryPoint is one data point of the fleet leader-query benchmark.
type FleetQueryPoint struct {
	Clusters        int     `json:"clusters"`
	ProcsPerCluster int     `json:"procs_per_cluster"`
	Queriers        int     `json:"queriers"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
}

// KVThroughputPoint is one data point of the replicated key-value store
// throughput benchmark: async writes submitted to the Omega-elected
// leader, committed through the Disk-Paxos log, applied on every replica.
type KVThroughputPoint struct {
	Procs     int    `json:"procs"`
	Substrate string `json:"substrate"`
	// GoMaxProcs is the GOMAXPROCS the point ran under (the benchmark
	// sweeps it, so the table shows how the live stack scales with host
	// parallelism).
	GoMaxProcs int `json:"gomaxprocs"`
	// CommitsPerSec is committed-and-applied log entries per second at the
	// reading replica; ReadsPerSec is local Get throughput measured
	// concurrently.
	CommitsPerSec float64 `json:"commits_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
}

// ReadPathPoint is one data point of the read-path benchmark: Get
// latency and throughput of the public KV's read modes — the lease fast
// path against the freshest-replica local read and the full quorum
// fence — over an otherwise idle store, so the numbers isolate the read
// machinery itself.
type ReadPathPoint struct {
	Procs     int    `json:"procs"`
	Substrate string `json:"substrate"`
	// Mode is the read mode ("lease", "freshest", "quorum").
	Mode string `json:"mode"`
	// ReadsPerSec is completed reads per second in that mode; P50Usec and
	// P99Usec are per-read latency percentiles in microseconds.
	ReadsPerSec float64 `json:"reads_per_sec"`
	P50Usec     float64 `json:"p50_usec"`
	P99Usec     float64 `json:"p99_usec"`
}

// EngineWakeupPoint is one data point of the engine wakeup benchmark:
// the same synchronous replicated-write workload over the same consensus
// stack, once under the legacy blind polling driver (consensus.Drive:
// every machine stepped once per tick, writers polling for their commit
// on the same cadence) and once under the wake-driven engine (the writer
// notifies the leader machine, bursts drain back to back, commits wake
// the writer).
type EngineWakeupPoint struct {
	Procs int `json:"procs"`
	// IntervalUsec is the driver tick / fallback poll interval both
	// drivers were given.
	IntervalUsec float64 `json:"interval_usec"`
	// PollingCommitsPerSec and WakeCommitsPerSec are synchronous committed
	// writes per second under each driver.
	PollingCommitsPerSec float64 `json:"polling_commits_per_sec"`
	WakeCommitsPerSec    float64 `json:"wake_commits_per_sec"`
	// Speedup is WakeCommitsPerSec / PollingCommitsPerSec.
	Speedup float64 `json:"speedup"`
}

// ShardedKVScalingPoint is one data point of the sharded-store scaling
// benchmark: S independent consensus-backed shards under a closed-loop
// saturation workload, batched vs unbatched proposals. The measurement
// runs under the deterministic virtual-time engine (mode
// "sim-virtual-time", one virtual tick = 1us), where every machine owns
// a virtual processor — so the numbers quantify the architecture's
// parallel capacity exactly and reproducibly, independent of how many
// host cores the benchmark machine happens to have. Live-host numbers
// for the same stack are in BenchmarkShardedKVThroughput.
type ShardedKVScalingPoint struct {
	Shards        int    `json:"shards"`
	ProcsPerShard int    `json:"procs_per_shard"`
	BatchSize     int    `json:"batch_size"`
	Mode          string `json:"mode"`
	Substrate     string `json:"substrate"`
	// GoMaxProcs is the GOMAXPROCS the point ran under. The benchmark
	// sweeps it to record that virtual-time numbers are host-independent:
	// unlike the live KV throughput rows, these rows are identical at
	// every GOMAXPROCS.
	GoMaxProcs int `json:"gomaxprocs"`
	// CommittedCommands is the aggregate committed-command count over the
	// horizon; SlotsUsed the consensus slots they consumed; AvgBatch
	// their ratio (the measured batching factor).
	CommittedCommands int     `json:"committed_commands"`
	SlotsUsed         int     `json:"slots_used"`
	AvgBatch          float64 `json:"avg_batch"`
	// CommitsPerSec is CommittedCommands per virtual second.
	CommitsPerSec float64 `json:"commits_per_sec"`
	// SpeedupVsOneShard is this point's CommitsPerSec over the
	// same-batch-size single-shard point's.
	SpeedupVsOneShard float64 `json:"speedup_vs_one_shard"`
}

// KVSustainedPoint is one data point of the sustained-stream benchmark:
// a default-options (checkpointing) store over a deliberately small slot
// window serving a write stream many times its slot capacity, so the
// measured rate includes the full seal/publish/ack/recycle cycle. A
// fixed-capacity log would return ErrLogFull a tenth of the way in.
type KVSustainedPoint struct {
	Procs     int    `json:"procs"`
	Substrate string `json:"substrate"`
	// Slots is the log window; CheckpointEvery the sealing cadence.
	Slots           int `json:"slots"`
	CheckpointEvery int `json:"checkpoint_every"`
	// TargetCommands is the stream length asked for (10x the window);
	// Committed how many actually landed inside the measurement cap;
	// Checkpoints how many seals the stream crossed.
	TargetCommands int `json:"target_commands"`
	Committed      int `json:"committed"`
	Checkpoints    int `json:"checkpoints"`
	// CommitsPerSec is the sustained committed-write rate across the
	// whole stream, recycling included.
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// LoadClassPoint is one per-(runner mode, SLO class) row of the
// latency-under-load benchmark: the same open-loop workload spec
// executed against the simulated store under virtual time and the live
// store on the wall clock, reported per SLO class.
type LoadClassPoint struct {
	// Mode names the runner ("sim" or "live"); Class the SLO class.
	Mode  string `json:"mode"`
	Class string `json:"class"`
	// SLOMs is the class's latency target in milliseconds.
	SLOMs float64 `json:"slo_ms"`
	// Requests and Completed count the class's scheduled and completed
	// requests; Attainment is the within-SLO fraction of scheduled ones.
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	Attainment float64 `json:"attainment"`
	// GoodputPerSec is within-SLO completions per second.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// P50Ms through P999Ms are completed-request latency percentiles in
	// milliseconds, measured from each request's scheduled arrival
	// (coordinated-omission-free).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// LoadModePoint is one per-runner rollup row of the latency-under-load
// benchmark.
type LoadModePoint struct {
	// Mode names the runner ("sim" or "live"); Class marks the row as a
	// rollup.
	Mode  string `json:"mode"`
	Class string `json:"class"`
	// Requests and Completed count all classes together.
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// ThroughputPerSec counts completions per second, GoodputPerSec only
	// within-SLO ones.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	GoodputPerSec    float64 `json:"goodput_per_sec"`
	// JainFairness is Jain's index over the classes' weight-normalized
	// goodput.
	JainFairness float64 `json:"jain_fairness"`
}

// LoadCalibrationPoint scores the sim runner's predictions against the
// live runner's measurements for the same spec.
type LoadCalibrationPoint struct {
	// Mode marks the row ("sim-vs-live").
	Mode string `json:"mode"`
	// MAPEPct is the mean absolute percentage error over the paired
	// per-class p50/p95/p99/p999 values; PearsonR their correlation;
	// Pairs how many pairs were compared.
	MAPEPct  float64 `json:"mape_pct"`
	PearsonR float64 `json:"pearson_r"`
	Pairs    int     `json:"pairs"`
}

// BenchReport is the envelope of a BENCH_*.json file. There is
// deliberately no report-level gomaxprocs field: several benchmarks
// sweep GOMAXPROCS per point, so a header value would record whatever
// the process happened to run under at write time and contradict the
// points — exactly the stale "gomaxprocs": 1 the old header produced.
// Points that depend on it carry their own.
type BenchReport struct {
	// Name identifies the benchmark ("census_contention", ...).
	Name string `json:"name"`
	// Unit describes what the points' throughput numbers count.
	Unit      string `json:"unit"`
	NumCPU    int    `json:"num_cpu"`
	Timestamp string `json:"timestamp"`
	// Points holds CensusContentionPoint or FleetQueryPoint values.
	Points any `json:"points"`
}

// WriteBenchJSON writes report to dir/BENCH_<name>.json and returns the
// path.
func WriteBenchJSON(dir string, report BenchReport) (string, error) {
	report.NumCPU = runtime.NumCPU()
	if report.Timestamp == "" {
		report.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+report.Name+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// CensusWorkload is the contention workload shape over one census
// implementation, shared by `omegabench -bench` and the Go benchmarks in
// bench_test.go so both measure the same thing. Access performs process
// pid's iteration k — one write to its own register plus a procs-wide read
// scan, the Algorithm 1 step shape — and Snapshot is what the concurrent
// stats monitor calls.
type CensusWorkload struct {
	Procs     int
	Registers int
	Access    func(pid, k int)
	Snapshot  func()
}

// censusWorkloadRegs is the Algorithm 1 register count for procs
// processes: SUSPICIONS (procs^2) + PROGRESS + STOP.
func censusWorkloadRegs(procs int) int { return procs*procs + 2*procs }

// MutexCensusWorkload builds the workload over the retired global-mutex
// census baseline.
func MutexCensusWorkload(procs int) CensusWorkload {
	nregs := censusWorkloadRegs(procs)
	c := shmem.NewMutexCensus(procs, nil)
	regs := make([]*shmem.MutexRegStats, nregs)
	for i := range regs {
		regs[i] = c.Track("X", shmem.RegName("X", i), i%procs)
	}
	return CensusWorkload{
		Procs:     procs,
		Registers: nregs,
		Access: func(pid, k int) {
			c.NoteWrite(regs[pid], pid, uint64(k))
			for j := 0; j < procs; j++ {
				c.NoteRead(regs[(pid+j)%nregs], pid)
			}
		},
		Snapshot: func() { c.SnapshotAll(regs) },
	}
}

// LockFreeCensusWorkload builds the workload over the lock-free census.
func LockFreeCensusWorkload(procs int) CensusWorkload {
	nregs := censusWorkloadRegs(procs)
	c := shmem.NewCensus(procs, nil)
	regs := make([]*shmem.RegStats, nregs)
	for i := range regs {
		regs[i] = c.Track("X", shmem.RegName("X", i), i%procs)
	}
	return CensusWorkload{
		Procs:     procs,
		Registers: nregs,
		Access: func(pid, k int) {
			c.NoteWrite(regs[pid], pid, uint64(k))
			for j := 0; j < procs; j++ {
				c.NoteRead(regs[(pid+j)%nregs], pid)
			}
		},
		Snapshot: func() { c.Snapshot() },
	}
}

// BenchCensusContention measures instrumented register-access throughput
// for procs concurrent processes under a live Stats monitor, against both
// census implementations (the workload of CensusWorkload; the monitor
// snapshots continuously, as a Fleet stats poller would).
//
// GOMAXPROCS is raised to procs+1 for the duration (and restored) so the
// measurement reflects a host with one core per process: the design target
// is hardware-speed multi-core operation, and on a starved host the mutex
// census would look artificially healthy because the scheduler, not the
// lock, does the serializing.
func BenchCensusContention(procs int, dur time.Duration) CensusContentionPoint {
	want := runtime.GOMAXPROCS(0)
	if procs+1 > want {
		want = procs + 1
	}
	var mutexOps, lockfreeOps float64
	WithGoMaxProcs(want, func() {
		mutexOps = contendedThroughput(MutexCensusWorkload(procs), dur)
		lockfreeOps = contendedThroughput(LockFreeCensusWorkload(procs), dur)
	})

	return CensusContentionPoint{
		Procs:             procs,
		Registers:         censusWorkloadRegs(procs),
		MutexOpsPerSec:    mutexOps,
		LockFreeOpsPerSec: lockfreeOps,
		Speedup:           lockfreeOps / mutexOps,
	}
}

// WithGoMaxProcs runs f with GOMAXPROCS set to procs and restores the
// previous value afterwards. Benchmarks use it to sweep host parallelism
// — live-stack throughput scales with it, virtual-time numbers must not.
func WithGoMaxProcs(procs int, f func()) {
	if prev := runtime.GOMAXPROCS(0); procs != prev {
		runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	}
	f()
}

// contendedThroughput runs the workload's accessors and monitor for dur
// and returns register accesses per second.
func contendedThroughput(w CensusWorkload, dur time.Duration) float64 {
	return contendedRun(w.Procs, dur,
		func(pid int, stop *atomic.Bool) int64 {
			var ops int64
			for k := 0; !stop.Load(); k++ {
				w.Access(pid, k)
				ops += int64(w.Procs) + 1
			}
			return ops
		},
		func(stop *atomic.Bool) {
			for !stop.Load() {
				w.Snapshot()
			}
		})
}

// KVDriver is one driving strategy over a fresh single-leader consensus
// stack: Put performs one synchronous committed write, Close tears the
// driver down. Shared by `omegabench -bench` (BENCH_engine_wakeup.json)
// and BenchmarkKVWakeDriven so both measure the same thing. The oracle is
// pinned to process 0, so the measurement isolates the driving strategy
// from election dynamics.
type KVDriver struct {
	Put   func() error
	Close func()

	stores []*consensus.KV
	k      uint32
}

// newWakeupStack builds the shared consensus stack both drivers run over.
func newWakeupStack(procs, slots int) ([]*consensus.KV, error) {
	mem := shmem.NewAtomicMem(procs, false)
	log := consensus.NewLog(mem, procs, slots)
	oracle := func() int { return 0 }
	stores := make([]*consensus.KV, procs)
	for i := 0; i < procs; i++ {
		r, err := consensus.NewReplica(log, i, oracle)
		if err != nil {
			return nil, err
		}
		if stores[i], err = consensus.NewKV(r); err != nil {
			return nil, err
		}
	}
	return stores, nil
}

// put submits the driver's next command to the leader store and spins the
// provided wait function until the commit is visible.
func (d *KVDriver) put(wait func(mark int, cmd uint32) error) error {
	d.k++
	key, val := uint16(d.k%1024), uint16(d.k)
	cmd := consensus.EncodeSet(key, val)
	if cmd == consensus.NoValue {
		d.k++
		key, val = uint16(d.k%1024), uint16(d.k)
		cmd = consensus.EncodeSet(key, val)
	}
	mark := d.stores[0].CommittedLen()
	if mark == d.stores[0].Capacity() {
		return fmt.Errorf("harness: wakeup stack log full")
	}
	if err := d.stores[0].Set(key, val); err != nil {
		return err
	}
	return wait(mark, cmd)
}

// NewPollingKVDriver reproduces the pre-engine pipeline: machines stepped
// by consensus.Drive once per tick, the writer polling for its commit on
// the same cadence.
func NewPollingKVDriver(procs, slots int, interval time.Duration) (*KVDriver, error) {
	stores, err := newWakeupStack(procs, slots)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	machines := make([]consensus.Steppable, procs)
	for i := range stores {
		st := stores[i]
		machines[i] = consensus.StepFunc(func(now vclock.Time) { st.StepN(now, 8) })
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		consensus.Drive(ctx, interval, nil, machines)
	}()
	d := &KVDriver{stores: stores}
	d.Put = func() error {
		return d.put(func(mark int, cmd uint32) error {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for !d.stores[0].CommittedContainsAfter(mark, cmd) {
				<-ticker.C
			}
			return nil
		})
	}
	d.Close = func() {
		cancel()
		<-done
	}
	return d, nil
}

// NewWakeKVDriver runs the same stack as wake-hinted engine machines: the
// writer notifies the leader machine on submit and sleeps on a commit
// signal instead of a poll loop.
func NewWakeKVDriver(procs, slots int, interval time.Duration) (*KVDriver, error) {
	stores, err := newWakeupStack(procs, slots)
	if err != nil {
		return nil, err
	}
	eng := engine.NewLive(engine.LiveConfig{})
	commit := make(chan struct{}, 1)
	ids := make([]int, procs)
	for i := range stores {
		i := i
		st := stores[i]
		ids[i] = eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
			newly, pending := st.StepBurst(now, 8)
			if newly > 0 {
				// Wake the followers to learn the decisions, and the
				// writer waiting on the leader's commit — as the public KV
				// machines do.
				for j, id := range ids {
					if j != i {
						eng.Notify(id)
					}
				}
				if i == 0 {
					select {
					case commit <- struct{}{}:
					default:
					}
				}
				return engine.Now()
			}
			if pending > 0 {
				return engine.At(now + int64(interval))
			}
			return engine.Park()
		}))
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	d := &KVDriver{stores: stores}
	d.Put = func() error {
		return d.put(func(mark int, cmd uint32) error {
			eng.Notify(ids[0])
			for !d.stores[0].CommittedContainsAfter(mark, cmd) {
				<-commit
			}
			return nil
		})
	}
	d.Close = eng.Stop
	return d, nil
}

// BenchEngineWakeup measures synchronous committed writes per second
// under both drivers at the given tick interval.
func BenchEngineWakeup(procs int, interval, dur time.Duration) (EngineWakeupPoint, error) {
	measure := func(mk func(procs, slots int, interval time.Duration) (*KVDriver, error)) (float64, error) {
		// The wake driver commits at CPU speed, so any fixed log size can
		// be outrun by a long enough window: end the window early when the
		// log nears capacity and report the rate over the shortened run.
		const slots = 1 << 17
		d, err := mk(procs, slots, interval)
		if err != nil {
			return 0, err
		}
		defer d.Close()
		var commits int64
		start := time.Now()
		for time.Since(start) < dur && d.stores[0].CommittedLen() < slots-64 {
			if err := d.Put(); err != nil {
				return 0, err
			}
			commits++
		}
		return float64(commits) / time.Since(start).Seconds(), nil
	}
	polling, err := measure(NewPollingKVDriver)
	if err != nil {
		return EngineWakeupPoint{}, err
	}
	wake, err := measure(NewWakeKVDriver)
	if err != nil {
		return EngineWakeupPoint{}, err
	}
	return EngineWakeupPoint{
		Procs:                procs,
		IntervalUsec:         float64(interval) / float64(time.Microsecond),
		PollingCommitsPerSec: polling,
		WakeCommitsPerSec:    wake,
		Speedup:              wake / polling,
	}, nil
}

// contendedRun drives procs worker goroutines plus one monitor goroutine
// for dur and returns the workers' summed throughput in ops per second.
func contendedRun(procs int, dur time.Duration, worker func(int, *atomic.Bool) int64, monitor func(*atomic.Bool)) float64 {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			total.Add(worker(pid, &stop))
		}(pid)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		monitor(&stop)
	}()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}
