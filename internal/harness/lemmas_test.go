package harness

import (
	"fmt"
	"testing"

	"omegasm/internal/core"
	"omegasm/internal/shmem"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

// TestLemma1CrashedLeaveCandidatesForever verifies Lemma 1 operationally:
// after a process crashes, there is a time after which it is absent from
// every live process's candidate set — observable as: no live process's
// leader estimate ever names it again after some sample.
func TestLemma1CrashedLeaveCandidatesForever(t *testing.T) {
	horizon := vclock.Time(200_000)
	for _, algo := range []Algo{AlgoWriteEfficient, AlgoBounded} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			p := defaultPreset(algo, 5, 3, horizon)
			crashAt := horizon / 4
			p.Crash = map[int]vclock.Time{1: crashAt, 2: crashAt + 100}
			out, err := Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			// Find the last sample at which any live process still named
			// a crashed process; it must be well before the horizon.
			lastNamed := vclock.Time(-1)
			for _, s := range out.Res.Samples {
				for pid, l := range s.Leaders {
					if l == 1 || l == 2 {
						if s.Leaders[pid] != -1 {
							lastNamed = s.T
						}
					}
				}
			}
			if lastNamed >= horizon*3/4 {
				t.Fatalf("a crashed process was still somebody's leader at t=%d", lastNamed)
			}
			t.Logf("crashed processes last named at t=%d (crash at %d)", lastNamed, crashAt)
		})
	}
}

// TestLemma2SuspicionsOfAWBProcessBounded verifies Lemma 2: the total
// suspicion count of the AWB1 process stops growing (it is in the paper's
// set B). The adversary keeps stalling everyone else forever.
func TestLemma2SuspicionsOfAWBProcessBounded(t *testing.T) {
	horizon := vclock.Time(300_000)
	p := defaultPreset(AlgoWriteEfficient, 5, 7, horizon)
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// Suspicions of process 0 in the last quarter: none.
	suffix := out.Suffix()
	var late uint64
	for name, r := range suffix.Regs {
		if r.Class == core.ClassSuspicions && r.DistinctValues > 0 {
			var j, k int
			if _, err := fmt.Sscanf(name, "SUSPICIONS[%d][%d]", &j, &k); err == nil && k == 0 {
				late += r.DistinctValues
			}
		}
	}
	if late > 0 {
		t.Fatalf("AWB1 process gathered %d new suspicions in the suffix window (B would be empty)", late)
	}
}

// TestTheorem1LeaderIsLexminOfB verifies the proof's characterization:
// the elected leader is the process with the (lexicographically) smallest
// final suspicion total among those whose suspicions stopped growing.
func TestTheorem1LeaderIsLexminOfB(t *testing.T) {
	horizon := vclock.Time(200_000)
	for seed := int64(1); seed <= 5; seed++ {
		p := defaultPreset(AlgoWriteEfficient, 5, seed, horizon)
		out, err := Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if !out.StableBeforeMid() {
			t.Fatalf("seed %d: no early stabilization", seed)
		}
		totals := suspicionTotals(out.End, 5)
		grew := suspicionGrowth(out.Suffix(), 5)
		best := -1
		for k := 0; k < 5; k++ {
			if out.Res.Crashed[k] || grew[k] > 0 {
				continue // not in B
			}
			if best == -1 || totals[k] < totals[best] || (totals[k] == totals[best] && k < best) {
				best = k
			}
		}
		if best != out.Leader {
			t.Errorf("seed %d: lexmin of B = %d (totals %v) but leader = %d",
				seed, best, totals, out.Leader)
		}
	}
}

// suspicionTotals sums, per suspected process k, the final values of
// column k of the SUSPICIONS matrix.
func suspicionTotals(s *shmem.CensusSnapshot, n int) []uint64 {
	totals := make([]uint64, n)
	for name, r := range s.Regs {
		if r.Class != core.ClassSuspicions {
			continue
		}
		var j, k int
		if _, err := fmt.Sscanf(name, "SUSPICIONS[%d][%d]", &j, &k); err == nil {
			totals[k] += r.MaxValue
		}
	}
	return totals
}

// suspicionGrowth counts, per suspected process k, the value changes of
// column k within a diff window: nonzero means k is not in the set B.
func suspicionGrowth(diff *shmem.CensusSnapshot, n int) []uint64 {
	grew := make([]uint64, n)
	for name, r := range diff.Regs {
		if r.Class != core.ClassSuspicions {
			continue
		}
		var j, k int
		if _, err := fmt.Sscanf(name, "SUSPICIONS[%d][%d]", &j, &k); err == nil {
			grew[k] += r.DistinctValues
		}
	}
	return grew
}

// TestTerminationProperty: the oracle's Termination property — every
// Leader() invocation returns (trivially true for a state machine, but
// we pin it across the whole run via the invariant checker).
func TestTerminationProperty(t *testing.T) {
	p := defaultPreset(AlgoWriteEfficient, 4, 2, 50_000)
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Invariants.OK() {
		t.Fatalf("invariants: %v", out.Invariants.Violations())
	}
	_ = trace.Verdict{} // package coupling pin
}
