package harness

import (
	"fmt"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "F2",
		Title: "Algorithm 1 elects an eventual leader in every AWB run",
		Paper: "Figure 2 / Theorem 1",
		Run:   runF2,
	})
}

// runF2 regenerates the content of Figure 2 / Theorem 1: across system
// sizes, seeds and crash patterns (from none up to n-1 crashes, the
// paper's t < n bound), Algorithm 1 stabilizes on a single correct leader
// in every run satisfying AWB. The table reports the stabilization-time
// distribution; the verdicts require every run to stabilize correctly.
func runF2(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "F2: Algorithm 1 election latency (virtual ticks)",
		Header: []string{"n", "crashes", "runs", "stabilized", "stab p50", "stab p90", "stab max"},
		Caption: "Stabilization time = earliest instant from which all correct processes " +
			"agree on one correct leader forever (Theorem 1).",
	}

	ns := []int{3, 5, 8}
	if cfg.Quick {
		ns = []int{3, 5}
	}
	allStable := true
	for _, n := range ns {
		for _, crashes := range crashPatterns(n) {
			var stabs []float64
			stable := 0
			runs := 0
			for seed := int64(1); seed <= int64(seeds); seed++ {
				p := defaultPreset(AlgoWriteEfficient, n, seed, horizon)
				p.Crash = crashSchedule(crashes, horizon)
				out, err := Execute(p)
				if err != nil {
					return nil, err
				}
				runs++
				if out.Stable {
					stable++
					stabs = append(stabs, float64(out.StabTime))
				} else {
					allStable = false
				}
			}
			sum := stats.Summarize(stabs)
			tbl.AddRow(stats.I(n), stats.I(crashes), stats.I(runs), stats.I(stable),
				stats.F(sum.P50), stats.F(sum.P90), stats.F(sum.Max))
		}
	}
	report.Add("Thm1/eventualLeadership", allStable,
		fmt.Sprintf("every AWB run over n in %v with 0..n-1 crashes stabilized", ns))
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}

// crashPatterns returns the crash counts exercised for a system of size n:
// 0, a minority, and the maximum n-1 (the paper assumes t = n-1: any
// number of processes may crash).
func crashPatterns(n int) []int {
	out := []int{0}
	if n >= 3 {
		out = append(out, (n-1)/2)
	}
	out = append(out, n-1)
	return out
}

// crashSchedule crashes processes n-1, n-2, ... (never process 0, the
// AWB1 process) at staggered times in the first third of the horizon.
func crashSchedule(count int, horizon vclock.Time) map[int]vclock.Time {
	if count == 0 {
		return nil
	}
	m := make(map[int]vclock.Time, count)
	for c := 0; c < count; c++ {
		pid := c + 1 // keep process 0 alive (it is the AWB1 process)
		m[pid] = horizon/6 + vclock.Time(c)*horizon/24
	}
	return m
}
