package harness

import (
	"fmt"

	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "F5",
		Title: "Algorithm 2: all shared variables bounded; write set after stabilization",
		Paper: "Figure 5 / Theorems 6, 7; Corollary 1",
		Run:   runF5,
	})
}

// runF5 regenerates the claims around Figure 5: running Algorithm 2 over
// AWB runs (with and without crashes),
//
//   - Theorem 6: every shared variable stays in a bounded domain — the
//     handshake booleans are 1-bit for the whole run and the SUSPICIONS
//     counters stop changing after stabilization;
//   - Theorem 7: in the post-stabilization window, the only registers
//     whose value changes are PROGRESS[ell][*] (written by the leader) and
//     LAST[ell][i] (written by each correct watcher i);
//   - Corollary 1: every correct process writes forever.
//
// The table reports the shared-memory footprint and the post-stabilization
// writer census per run.
func runF5(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	seeds := cfg.seeds()
	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "F5: Algorithm 2 boundedness and post-stabilization write set",
		Header: []string{"n", "crashes", "seed", "leader", "footprint(bits)", "suffix writers", "suffix regs changed"},
		Caption: "footprint = total bits across all shared registers over the whole run " +
			"(Theorem 6); suffix = last quarter of the horizon.",
	}

	n := 5
	for _, crashes := range []int{0, 2} {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			p := defaultPreset(AlgoBounded, n, seed, horizon)
			p.Crash = crashSchedule(crashes, horizon)
			out, err := Execute(p)
			if err != nil {
				return nil, err
			}
			tag := fmt.Sprintf("crashes=%d seed=%d", crashes, seed)
			if !out.StableBeforeMid() {
				report.Add("F5/stabilized "+tag, false,
					fmt.Sprintf("stable=%v stabTime=%d mid=%d", out.Stable, out.StabTime, out.MidTime))
				continue
			}
			suffix := out.Suffix()
			trace.CheckBoundedMemory(report, out.End, out.Mid)
			trace.CheckAlgo2WriteSet(report, suffix, out.Leader, out.Res.Crashed)
			trace.CheckAllCorrectWriteForever(report, suffix, out.Res.Crashed)
			trace.CheckReadersForever(report, suffix, out.Leader, out.Res.Crashed)
			tbl.AddRow(stats.I(n), stats.I(crashes), fmt.Sprintf("%d", seed),
				stats.I(out.Leader), stats.I(out.End.TotalBits()),
				fmt.Sprintf("%v", suffix.Writers()),
				stats.I(len(suffix.ChangedRegisters())))
		}
	}
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
