package harness

import (
	"reflect"
	"testing"

	"omegasm/internal/vclock"
)

func TestByID(t *testing.T) {
	e, err := ByID("F2")
	if err != nil || e.ID != "F2" {
		t.Fatalf("ByID(F2) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllRegistered(t *testing.T) {
	want := []string{"F1", "F2", "F3", "F4", "F5", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "A1", "A2", "A3"}
	var got []string
	for _, e := range All() {
		got = append(got, e.ID)
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registered = %v, want %v", got, want)
	}
}

// TestIDsTracksIndex pins the contract CLI help is built on: IDs reflects
// the registry (including the post-T6 additions that once went stale in
// hand-written docs) in report order.
func TestIDsTracksIndex(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() has %d entries, registry %d", len(ids), len(All()))
	}
	for _, must := range []string{"T7", "A1", "A3"} {
		found := false
		for _, id := range ids {
			if id == must {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("IDs() missing %s: %v", must, ids)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).seeds() != 10 {
		t.Errorf("default seeds = %d", (Config{}).seeds())
	}
	if (Config{Quick: true}).seeds() != 3 {
		t.Errorf("quick seeds = %d", (Config{Quick: true}).seeds())
	}
	if (Config{Seeds: 7}).seeds() != 7 {
		t.Errorf("explicit seeds = %d", (Config{Seeds: 7}).seeds())
	}
	if (Config{Quick: true}).horizon(400) != 100 {
		t.Errorf("quick horizon = %d", (Config{Quick: true}).horizon(400))
	}
	if (Config{}).horizon(400) != 400 {
		t.Errorf("full horizon = %d", (Config{}).horizon(400))
	}
}

func TestCrashPatterns(t *testing.T) {
	if got := crashPatterns(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("crashPatterns(2) = %v", got)
	}
	if got := crashPatterns(5); !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("crashPatterns(5) = %v", got)
	}
}

func TestCrashSchedule(t *testing.T) {
	if crashSchedule(0, 1000) != nil {
		t.Error("zero crashes must return nil")
	}
	m := crashSchedule(3, 2400)
	if len(m) != 3 {
		t.Fatalf("schedule %v", m)
	}
	if _, ok := m[0]; ok {
		t.Error("process 0 (the AWB1 process) must never be crashed")
	}
	for pid, at := range m {
		if at <= 0 || at >= 2400 {
			t.Errorf("crash of %d at %d outside run", pid, at)
		}
	}
}

func TestExecuteUnknownAlgo(t *testing.T) {
	_, err := Execute(Preset{Algo: "bogus", N: 3, Horizon: 1000})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestExecuteInvalidWorld(t *testing.T) {
	_, err := Execute(Preset{Algo: AlgoWriteEfficient, N: 1, Horizon: 1000})
	if err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestStableBeforeMid(t *testing.T) {
	o := &RunOutcome{Stable: true, StabTime: 100, MidTime: 200}
	if !o.StableBeforeMid() {
		t.Error("stab before mid rejected")
	}
	o.StabTime = 300
	if o.StableBeforeMid() {
		t.Error("late stabilization accepted")
	}
	o.Stable = false
	if o.StableBeforeMid() {
		t.Error("unstable run accepted")
	}
}

func TestExecuteProducesSnapshots(t *testing.T) {
	p := defaultPreset(AlgoWriteEfficient, 3, 1, 20_000)
	out, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.End == nil || out.Mid == nil {
		t.Fatal("missing census snapshots")
	}
	if out.MidTime < 20_000*3/4 || out.MidTime > 20_000 {
		t.Errorf("mid snapshot at %d, want ~3/4 of horizon", out.MidTime)
	}
	if len(out.Res.Samples) == 0 {
		t.Error("no samples")
	}
	// Suffix is a diff: totals must not exceed end totals.
	suffix := out.Suffix()
	for name, r := range suffix.Regs {
		if r.TotalWrites() > out.End.Regs[name].TotalWrites() {
			t.Errorf("suffix writes exceed end writes for %s", name)
		}
	}
}

func TestDefaultPresetShape(t *testing.T) {
	p := defaultPreset(AlgoBounded, 6, 42, 80_000)
	if p.N != 6 || p.Algo != AlgoBounded || p.Seed != 42 {
		t.Fatalf("preset = %+v", p)
	}
	if len(p.Pacing) != 6 || len(p.Timers) != 6 {
		t.Fatalf("adversary slices sized %d/%d", len(p.Pacing), len(p.Timers))
	}
	if p.AWBProc != 0 || p.Tau1 != 10_000 {
		t.Errorf("AWB params: proc=%d tau1=%d", p.AWBProc, p.Tau1)
	}
	// The timers must be AWB behaviors that settle at tau1.
	for i, b := range p.Timers {
		awb, ok := b.(vclock.AWBBehavior)
		if !ok {
			t.Fatalf("timer %d is not an AWBBehavior", i)
		}
		if _, settle := awb.Dominates(); settle != p.Tau1 {
			t.Errorf("timer %d settles at %d, want tau1=%d", i, settle, p.Tau1)
		}
	}
}
