// Package harness defines the reproduction's experiments: one per figure
// and theorem of the paper (see DESIGN.md's experiment index), each
// regenerating the corresponding artifact as tables of measurements plus
// pass/fail verdicts of the paper's claims.
//
// The paper is theoretical and has no measured evaluation section; its
// figures are the algorithm listings (Figures 2 and 5), the timer
// definition (Figure 1), the leader write sequence (Figure 3) and the
// lower-bound run construction (Figure 4). Each experiment here executes
// the figure's content: runs the algorithm over the adversarial run class
// of its theorem and measures the claimed behavior.
package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"omegasm/internal/baseline"
	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

// Algo selects an algorithm under test.
type Algo string

// The algorithms the harness can run.
const (
	AlgoWriteEfficient Algo = "algo1"     // paper Figure 2
	AlgoBounded        Algo = "algo2"     // paper Figure 5
	AlgoNWNR           Algo = "nwnr"      // paper Section 3.5 (nWnR)
	AlgoTimerFree      Algo = "timerfree" // paper Section 3.5 (no clocks)
	AlgoBaseline       Algo = "baseline"  // paper reference [13]
	AlgoStrawman       Algo = "strawman"  // paper Figure 4 counterexample
)

// Algos lists the Omega implementations (not the strawman) in report
// order.
var Algos = []Algo{AlgoWriteEfficient, AlgoBounded, AlgoNWNR, AlgoTimerFree, AlgoBaseline}

// Config is the global experiment configuration.
type Config struct {
	// Quick shrinks horizons and seed counts for use from unit tests.
	Quick bool
	// Seeds is the number of seeded repetitions per data point.
	Seeds int
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 3
	}
	return 10
}

func (c Config) horizon(full vclock.Time) vclock.Time {
	if c.Quick {
		return full / 4
	}
	return full
}

// Outcome is what an experiment produces: regenerated tables plus claim
// verdicts.
type Outcome struct {
	Tables []*stats.Table
	Report *trace.Report
	Notes  []string
}

// Experiment is one entry of the reproduction's experiment index.
type Experiment struct {
	ID    string
	Title string
	Paper string // the paper artifact it regenerates
	Run   func(Config) (*Outcome, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in report order: the figure experiments
// (F-series) first, then the theorem/table experiments (T-series), then
// the ablations (A-series). Registration order is file-init order and is
// not meaningful; IDs lists the actual index, so documentation derived
// from it cannot drift as experiments are added.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	rank := func(id string) int {
		if id == "" {
			return 1 << 20
		}
		series := map[byte]int{'F': 0, 'T': 1, 'A': 2}[id[0]]
		return series<<8 + int(id[len(id)-1])
	}
	sort.Slice(out, func(i, j int) bool { return rank(out[i].ID) < rank(out[j].ID) })
	return out
}

// IDs returns every registered experiment id in report order. CLI help
// text is derived from this list so it tracks the index automatically.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// Preset describes one simulated run.
type Preset struct {
	Algo    Algo
	N       int
	Seed    int64
	Horizon vclock.Time
	Crash   map[int]vclock.Time

	// AWB parameters.
	AWBProc int
	Tau1    vclock.Time
	Delta   vclock.Duration

	// Overrides; nil entries use scheduler defaults.
	Pacing []sched.Pacing
	Timers []vclock.Behavior

	// Strawman parameters.
	StrawMod     uint64
	StrawSuspCap uint64

	// LogClasses enables per-write logging for these register classes.
	LogClasses []string

	// SampleEvery overrides the observation period.
	SampleEvery vclock.Duration

	// Aux steppers (e.g. consensus replicas) attached after build.
	Aux func(mem shmem.Mem, procs []sched.Process, w *sched.World) error
}

// RunOutcome is the measured result of one simulated run.
type RunOutcome struct {
	Res      *sched.Result
	End      *shmem.CensusSnapshot
	Mid      *shmem.CensusSnapshot // taken at 3/4 of the horizon
	MidTime  vclock.Time
	WriteLog []shmem.WriteEvent

	StabTime vclock.Time
	Leader   int
	Stable   bool

	// Invariants is the online checker attached to every run: Validity,
	// crash monotonicity, time monotonicity. A violation is a bug, not an
	// experimental outcome.
	Invariants *trace.InvariantChecker
}

// Suffix returns the census of the post-midpoint window (final minus
// midpoint): the operational version of the paper's "after some finite
// time" quantifier.
func (o *RunOutcome) Suffix() *shmem.CensusSnapshot {
	return o.End.Diff(o.Mid)
}

// StableBeforeMid reports whether the run had stabilized before the
// midpoint snapshot, which the suffix-window verdicts require.
func (o *RunOutcome) StableBeforeMid() bool {
	return o.Stable && o.StabTime <= o.MidTime
}

// buildProcs allocates the preset's algorithm over mem.
func buildProcs(p Preset, mem shmem.Mem) ([]sched.Process, error) {
	wrap := func(n int, at func(int) sched.Process) []sched.Process {
		out := make([]sched.Process, n)
		for i := range out {
			out[i] = at(i)
		}
		return out
	}
	switch p.Algo {
	case AlgoWriteEfficient:
		ps := core.BuildAlgo1(mem, p.N)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	case AlgoBounded:
		ps := core.BuildAlgo2(mem, p.N)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	case AlgoNWNR:
		ps := core.BuildNWNR(mem, p.N)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	case AlgoTimerFree:
		ps := core.BuildTimerFree(mem, p.N)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	case AlgoBaseline:
		ps := baseline.Build(mem, p.N)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	case AlgoStrawman:
		mod, suspCap := p.StrawMod, p.StrawSuspCap
		if mod == 0 {
			mod = 4
		}
		if suspCap == 0 {
			suspCap = 8
		}
		ps := core.BuildStrawman(mem, p.N, mod, suspCap)
		return wrap(p.N, func(i int) sched.Process { return ps[i] }), nil
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", p.Algo)
	}
}

// newWorld builds the scheduler world of a preset over already-built
// processes (exposed separately from Execute so experiments can attach
// custom hooks).
func newWorld(p Preset, procs []sched.Process, mem shmem.Mem) (*sched.World, error) {
	cfg := sched.Config{
		N:           p.N,
		Seed:        p.Seed,
		Horizon:     p.Horizon,
		SampleEvery: p.SampleEvery,
		AWBProc:     p.AWBProc,
		Tau1:        p.Tau1,
		Delta:       p.Delta,
		Pacing:      p.Pacing,
		Timers:      p.Timers,
		Crash:       p.Crash,
	}
	return sched.NewWorld(cfg, procs, mem)
}

// Execute runs one preset to completion and analyzes it.
func Execute(p Preset) (*RunOutcome, error) {
	mem := shmem.NewSimMem(p.N)
	if len(p.LogClasses) > 0 {
		mem.Census().LogWrites(p.LogClasses...)
	}
	procs, err := buildProcs(p, mem)
	if err != nil {
		return nil, err
	}
	w, err := newWorld(p, procs, mem)
	if err != nil {
		return nil, err
	}
	out := &RunOutcome{Invariants: trace.NewInvariantChecker(p.N)}
	w.AddHook(out.Invariants)
	midAt := p.Horizon * 3 / 4
	w.AddHook(sched.HookFunc(func(w *sched.World, s sched.Sample) {
		if out.Mid == nil && s.T >= midAt {
			out.Mid = mem.Census().Snapshot()
			out.MidTime = s.T
		}
	}))
	if p.Aux != nil {
		if err := p.Aux(mem, procs, w); err != nil {
			return nil, err
		}
	}
	out.Res = w.Run()
	out.End = mem.Census().Snapshot()
	if out.Mid == nil { // horizon too small for the hook to fire
		out.Mid = out.End
		out.MidTime = out.Res.End
	}
	out.WriteLog = mem.Census().WriteLog()
	out.StabTime, out.Leader, out.Stable = trace.Stabilization(out.Res.Samples, out.Res.Crashed)
	return out, nil
}

// defaultPreset fills an AWB-satisfying configuration: process 0 is the
// AWB1 process; everyone else is heavy-tailed asynchronous with
// adversarial-prefix AWB timers that settle at tau_1.
func defaultPreset(algo Algo, n int, seed int64, horizon vclock.Time) Preset {
	p := Preset{
		Algo:    algo,
		N:       n,
		Seed:    seed,
		Horizon: horizon,
		AWBProc: 0,
		Tau1:    horizon / 8,
		Delta:   8,
	}
	p.Pacing = advPacing(n, seed, horizon)
	p.Timers = advTimers(n, seed, horizon)
	return p
}

// advPacing builds the canonical asynchronous adversary: every process is
// heavy-tailed (occasional long stalls). Process 0 is also heavy-tailed —
// the scheduler's AWB1 clamp tames it after tau_1, which is exactly the
// assumption's shape: chaotic prefix, then timely. Each process draws
// from its own seeded source (sched.OwnRng) so a process's delay sequence
// does not depend on the interleaving.
func advPacing(n int, seed int64, horizon vclock.Time) []sched.Pacing {
	ps := make([]sched.Pacing, n)
	stall := horizon / 64
	if stall < 32 {
		stall = 32
	}
	for i := range ps {
		ps[i] = sched.OwnRng{
			Rng: newRng(seed, 7000+i),
			P:   sched.HeavyTail{Min: 1, Max: 8, StallP: 0.02, StallMax: stall},
		}
	}
	return ps
}

// advTimers builds per-process asymptotically well-behaved timers with an
// arbitrary prefix up to horizon/8 and bounded oscillation afterwards.
func advTimers(n int, seed int64, horizon vclock.Time) []vclock.Behavior {
	return advTimersAt(n, seed, horizon/8)
}

// advTimersAt is advTimers with an explicit settle point.
func advTimersAt(n int, seed int64, settle vclock.Time) []vclock.Behavior {
	ts := make([]vclock.Behavior, n)
	for i := range ts {
		ts[i] = &vclock.Adversarial{
			F:         vclock.Affine{A: 4, B: 1},
			Settle:    settle,
			PrefixMax: 64,
			OscAmp:    16,
			Rng:       newRng(seed, i),
		}
	}
	return ts
}

// buildWorld builds memory, processes and world for a preset, for
// experiments that need to attach hooks before running.
func buildWorld(p Preset) (*shmem.SimMem, []sched.Process, *sched.World, error) {
	mem := shmem.NewSimMem(p.N)
	if len(p.LogClasses) > 0 {
		mem.Census().LogWrites(p.LogClasses...)
	}
	procs, err := buildProcs(p, mem)
	if err != nil {
		return nil, nil, nil, err
	}
	w, err := newWorld(p, procs, mem)
	if err != nil {
		return nil, nil, nil, err
	}
	return mem, procs, w, nil
}

func newRng(seed int64, salt int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(salt)))
}
