package harness

import (
	"fmt"

	"omegasm/internal/sched"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "A3",
		Title: "Necessity of AWB1: the leader-chasing adversary",
		Paper: "assumption AWB1 (Section 2.3); complements the AWB2 negative control",
		Run:   runA3,
	})
}

// runA3 shows AWB1 is load-bearing by persecuting the leader. A
// scheduler hook tracks the current leader estimate; the Chase pacing
// stalls whichever process is being followed:
//
//   - bounded chase (fixed stall): every process still satisfies AWB1
//     with delta = the stall bound, so Omega must — and does — stabilize:
//     the watchers' timeouts grow with each suspicion (line 27) until
//     they outlast the stall, ending the persecution (Lemma 2's race,
//     with the adversary losing);
//   - growing chase (stalls double forever): whoever leads suffers
//     unbounded outages, so no process satisfies AWB1 and the run leaves
//     the assumption's hypothesis class; leadership churns for the whole
//     horizon.
//
// Together with the Broken-timer negative control (AWB2, in the test
// suite), this pins both halves of the AWB assumption as necessary for
// the implementation to work.
func runA3(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(800_000)
	n := 4

	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "A3: Algorithm 1 under the leader-chasing adversary",
		Header: []string{"chase", "stabilized", "stab time", "late leader changes", "max suspicions"},
		Caption: "bounded chase: fixed 100-tick stalls on the current leader; growing chase: " +
			"stalls double forever. Timers settle at horizon/16.",
	}

	type chaseKind struct {
		name string
		grow bool
	}
	outcomes := map[string]*RunOutcome{}
	for _, kind := range []chaseKind{{"bounded", false}, {"growing", true}} {
		target := -1
		p := defaultPreset(AlgoWriteEfficient, n, 13, horizon)
		p.Tau1 = horizon / 16
		p.Timers = advTimersAt(n, p.Seed, horizon/16)
		// The chase replaces the default pacing; AWB1 clamping must not
		// rescue the chased process, so no process is clamped.
		p.AWBProc = -1
		p.Pacing = make([]sched.Pacing, n)
		for i := 0; i < n; i++ {
			p.Pacing[i] = &sched.Chase{
				Self:   i,
				Target: &target,
				Base:   sched.OwnRng{Rng: newRng(p.Seed, 400+i), P: sched.Uniform{Min: 1, Max: 8}},
				Stall:  100,
				Grow:   kind.grow,
			}
		}
		mem, procs, w, err := buildWorld(p)
		if err != nil {
			return nil, err
		}
		// The adversary observes the run: chase whoever the lowest-id
		// live process currently follows.
		w.AddHook(sched.HookFunc(func(_ *sched.World, s sched.Sample) {
			target = -1
			for _, l := range s.Leaders {
				if l != -1 {
					target = l
					break
				}
			}
		}))
		res := w.Run()
		out := &RunOutcome{Res: res, End: mem.Census().Snapshot()}
		out.StabTime, out.Leader, out.Stable = trace.Stabilization(res.Samples, res.Crashed)
		outcomes[kind.name] = out

		var maxSusp uint64
		for _, r := range out.End.Regs {
			if r.Class == "SUSPICIONS" && r.MaxValue > maxSusp {
				maxSusp = r.MaxValue
			}
		}
		_ = procs
		tbl.AddRow(kind.name, fmt.Sprintf("%v", out.Stable),
			fmt.Sprintf("%d", out.StabTime),
			stats.I(trace.LeaderChangesAfter(res.Samples, horizon*3/4)),
			stats.U(maxSusp))
	}

	report.Add("A3/boundedChaseStabilizes", outcomes["bounded"].Stable,
		"with bounded stalls AWB1 still holds and the election completes")
	growing := outcomes["growing"]
	churn := trace.LeaderChangesAfter(growing.Res.Samples, horizon*3/4)
	report.Add("A3/growingChaseChurns", !growing.Stable || churn > 0,
		fmt.Sprintf("unbounded persecution defeats the election (stable=%v, late churn=%d): AWB1 is necessary",
			growing.Stable, churn))
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
