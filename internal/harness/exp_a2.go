package harness

import (
	"fmt"

	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "A2",
		Title: "Ablation: can the reigning leader stop reading? (open question, Section 5)",
		Paper: "Section 5 open question; complements Lemma 6",
		Run:   runA2,
	})
}

// runA2 probes the paper's open question — "is it possible to design a
// leader algorithm in which there is a time after which the eventual
// leader is not required to read the shared memory?" — by trying the
// obvious shortcut: a leader that stops refreshing suspicion totals once
// it has reigned for a while (the LeaderNoRead ablation).
//
// The schedule is a minimal two-process duel, fully deterministic in
// outline: process 0 wins the initial election (zero suspicions, lexmin
// by id), reigns long past the ablation's blinding threshold, then
// suffers one long outage. Process 1's timer expires during the outage,
// charges a suspicion, and 1 elects itself. When 0 wakes:
//
//   - Algorithm 1's process 0 re-reads the suspicion totals, sees
//     susp[0]=1 > susp[1]=0, and follows process 1 — the run
//     re-stabilizes (and it must: Theorem 1);
//   - the blinded ablation keeps answering "me" forever — a permanent
//     split that violates Eventual Leadership.
//
// Conclusion recorded in EXPERIMENTS.md: the naive answer to the open
// question is no; a reigning leader that merely keeps writing cannot
// stop reading, because demotion is only observable by reading.
func runA2(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	const n = 2

	type variant struct {
		name  string
		build func(mem shmem.Mem) []sched.Process
	}
	variants := []variant{
		{"algo1 (leader reads)", func(mem shmem.Mem) []sched.Process {
			sh := core.NewShared1(mem, n)
			out := make([]sched.Process, n)
			for i := 0; i < n; i++ {
				out[i] = core.NewAlgo1(sh, i)
			}
			return out
		}},
		{"leaderNoRead ablation", func(mem shmem.Mem) []sched.Process {
			sh := core.NewShared1(mem, n)
			out := make([]sched.Process, n)
			for i := 0; i < n; i++ {
				out[i] = core.NewLeaderNoRead(sh, i, 32)
			}
			return out
		}},
	}

	report := &trace.Report{}
	tbl := &stats.Table{
		Title:  "A2: one leader outage; does the incumbent ever follow the new leader?",
		Header: []string{"variant", "stabilized", "final estimates (p0,p1)", "late leader changes"},
		Caption: "Process 0 leads, stalls for an epoch, gets suspected. A reading leader " +
			"reconciles on wake-up; a blind one splits forever.",
	}

	outcomes := make([]bool, len(variants))
	for vi, v := range variants {
		p := Preset{
			Algo:    AlgoWriteEfficient,
			N:       n,
			Seed:    9,
			Horizon: horizon,
			AWBProc: 1, // after the outage, process 1 is the timely one
			Tau1:    horizon / 8,
			Delta:   8,
		}
		p.Pacing = []sched.Pacing{
			// Process 0: timely until mid-run, then one outage long
			// enough for process 1's timer to expire several times.
			&sched.StallOnce{
				At:   horizon / 2,
				Dur:  horizon / 8,
				Base: sched.Uniform{Min: 1, Max: 4},
			},
			sched.Uniform{Min: 1, Max: 4},
		}

		mem := shmem.NewSimMem(n)
		procs := v.build(mem)
		w, err := newWorld(p, procs, mem)
		if err != nil {
			return nil, err
		}
		res := w.Run()
		_, _, stable := trace.Stabilization(res.Samples, res.Crashed)
		outcomes[vi] = stable
		last := res.Samples[len(res.Samples)-1]
		changes := trace.LeaderChangesAfter(res.Samples, horizon*3/4)
		tbl.AddRow(v.name, fmt.Sprintf("%v", stable),
			fmt.Sprintf("%v", last.Leaders), stats.I(changes))
	}

	report.Add("A2/readingLeaderReconciles", outcomes[0],
		"Algorithm 1 re-stabilizes after the incumbent's outage")
	report.Add("A2/blindLeaderSplitsForever", !outcomes[1],
		"the LeaderNoRead ablation ends with a permanent split: the naive "+
			"answer to the Section 5 open question is no")
	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
