package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBenchCensusContentionShape(t *testing.T) {
	pt := BenchCensusContention(2, 10*time.Millisecond)
	if pt.Procs != 2 || pt.Registers != 2*2+2*2 {
		t.Errorf("point shape: %+v", pt)
	}
	if pt.MutexOpsPerSec <= 0 || pt.LockFreeOpsPerSec <= 0 || pt.Speedup <= 0 {
		t.Errorf("non-positive throughput: %+v", pt)
	}
}

func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBenchJSON(dir, BenchReport{
		Name:   "census_contention",
		Unit:   "register accesses/sec",
		Points: []CensusContentionPoint{{Procs: 2, Speedup: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_census_contention.json" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if back.Name != "census_contention" || back.NumCPU < 1 || back.Timestamp == "" {
		t.Errorf("envelope = %+v", back)
	}
	// The envelope must not carry a report-level gomaxprocs: points that
	// sweep it record their own, and a header value would be stale.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["gomaxprocs"]; ok {
		t.Errorf("report envelope still has a gomaxprocs header: %s", data)
	}
}
