package harness

import (
	"fmt"

	"omegasm/internal/core"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/stats"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func init() {
	register(Experiment{
		ID:    "F3",
		Title: "The leader's critical-write sequence S is eventually delta-timely",
		Paper: "Figure 3 / assumption AWB1, Lemma 2",
		Run:   runF3,
	})
}

// runF3 regenerates Figure 3: the sequence S of the AWB1 process's writes
// to its critical registers (PROGRESS[ell], STOP[ell]).
//
// To pin the eventual winner to the AWB1 process p_0 we use the paper's
// footnote 7 (initial register values are arbitrary; the algorithm is
// self-stabilizing with respect to them): every other process starts with
// a large seeded suspicion count. Suspicion totals never decrease, so p_0
// stays the lexicographic minimum as long as its own count stays below
// the handicap — which AWB1 guarantees once its writes are delta-timely.
//
// The table reports the distribution of gaps between consecutive critical
// writes of p_0 before tau_1 (unbounded: the chaotic prefix, with
// heavy-tailed stalls) and after stabilization (<= delta: the AWB1 bound
// that Lemma 2's proof turns into a suspicion bound).
func runF3(cfg Config) (*Outcome, error) {
	horizon := cfg.horizon(400_000)
	n := 5
	delta := vclock.Duration(8)
	tau1 := horizon / 8
	const handicap = 1_000_000

	mem := shmem.NewSimMem(n)
	mem.Census().LogWrites(core.ClassProgress, core.ClassStop)
	sh := core.NewShared1(mem, n)
	// Footnote-7 seeding: processes 1..n-1 start with a suspicion
	// handicap recorded in process 0's suspicion row.
	for k := 1; k < n; k++ {
		shmem.SeedIfPossible(sh.Suspicions[0][k], handicap)
	}
	procs := make([]sched.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = core.NewAlgo1(sh, i)
	}

	p := Preset{
		Algo:    AlgoWriteEfficient,
		N:       n,
		Seed:    3,
		Horizon: horizon,
		AWBProc: 0,
		Tau1:    tau1,
		Delta:   delta,
	}
	p.Pacing = make([]sched.Pacing, n)
	p.Pacing[0] = sched.HeavyTail{Min: 1, Max: 64, StallP: 0.05, StallMax: horizon / 32}
	for i := 1; i < n; i++ {
		p.Pacing[i] = sched.HeavyTail{Min: 1, Max: 8, StallP: 0.02, StallMax: horizon / 64}
	}
	p.Timers = advTimers(n, p.Seed, horizon)

	w, err := newWorld(p, procs, mem)
	if err != nil {
		return nil, err
	}
	res := w.Run()
	writeLog := mem.Census().WriteLog()
	stabTime, leader, stable := trace.Stabilization(res.Samples, res.Crashed)

	report := &trace.Report{}
	if !stable {
		report.Add("F3/stabilized", false, "run did not stabilize")
		return &Outcome{Report: report}, nil
	}
	report.Add("F3/stabilized", true,
		fmt.Sprintf("leader=%d at t=%d", leader, stabTime))
	report.Add("F3/leaderIsAWBProc", leader == 0,
		fmt.Sprintf("winner=%d, AWB1 process=0 (forced via footnote-7 suspicion seeding)", leader))

	// Gap analysis over the leader's critical writes.
	var pre, post []float64
	var lastPre, lastPost vclock.Time = -1, -1
	for _, ev := range writeLog {
		if ev.Pid != leader {
			continue
		}
		switch {
		case ev.T < tau1:
			if lastPre >= 0 {
				pre = append(pre, float64(ev.T-lastPre))
			}
			lastPre = ev.T
		case ev.T >= stabTime:
			if lastPost >= 0 {
				post = append(post, float64(ev.T-lastPost))
			}
			lastPost = ev.T
		}
	}
	preSum, postSum := stats.Summarize(pre), stats.Summarize(post)
	tbl := &stats.Table{
		Title:  "F3: gaps between consecutive critical writes of p_0 (ticks)",
		Header: []string{"window", "writes", "gap p50", "gap p90", "gap max"},
		Caption: fmt.Sprintf("AWB1 bound delta=%d applies after tau_1=%d; the prefix is unconstrained.",
			delta, tau1),
	}
	tbl.AddRow("before tau_1", stats.I(len(pre)), stats.F(preSum.P50), stats.F(preSum.P90), stats.F(preSum.Max))
	tbl.AddRow("after stabilization", stats.I(len(post)), stats.F(postSum.P50), stats.F(postSum.P90), stats.F(postSum.Max))

	report.Add("AWB1/gapBound", len(post) > 0 && postSum.Max <= float64(delta),
		fmt.Sprintf("max post-stabilization gap %.0f <= delta %d over %d writes",
			postSum.Max, delta, len(post)))
	report.Add("F3/prefixUnbounded", preSum.Max > float64(delta),
		fmt.Sprintf("prefix max gap %.0f exceeds delta (chaotic prefix allowed)", preSum.Max))

	return &Outcome{Tables: []*stats.Table{tbl}, Report: report}, nil
}
