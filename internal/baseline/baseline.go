// Package baseline reconstructs the paper's only prior-work comparator:
// the leader election protocol for *eventually synchronous* shared memory
// systems of Guerraoui and Raynal (SEUS 2006), the paper's reference [13].
//
// That protocol's behavioral assumption is strictly stronger than AWB
// (the paper, Related work): after some time there are a lower AND an
// upper bound on the time for ANY process to execute a step. Under that
// assumption a simple design works: every process that considers itself a
// candidate keeps incrementing a heartbeat register forever, every process
// suspects silent candidates with a timeout that grows on each suspicion,
// and the leader is the least-suspected candidate.
//
// No source for [13] is public; this is a faithful reconstruction from its
// stated model, built to expose the two costs the paper's Algorithm 1
// eliminates:
//
//   - every correct process writes shared memory forever (its heartbeat),
//     versus Algorithm 1's single eventual writer;
//   - correctness needs eventual synchrony of every process, versus AWB's
//     single timely process: under an AWB-only run that keeps stalling
//     some processes with unbounded bursts, the baseline keeps suspecting
//     them forever and its suspicion registers grow without bound, while
//     Algorithm 1's demoted processes go silent.
package baseline

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Register class names of the baseline.
const (
	ClassHeartbeat = "HEARTBEAT"
	ClassBSusp     = "BSUSP"
)

// Shared is the baseline's shared memory: a heartbeat register per process
// plus the usual suspicion matrix.
type Shared struct {
	N         int
	Heartbeat []shmem.Reg   // [i] owned by i; incremented forever
	Susp      [][]shmem.Reg // [j][k] owned by j
}

// NewShared allocates the baseline's registers.
func NewShared(mem shmem.Mem, n int) *Shared {
	s := &Shared{
		N:         n,
		Heartbeat: make([]shmem.Reg, n),
		Susp:      make([][]shmem.Reg, n),
	}
	for j := 0; j < n; j++ {
		s.Heartbeat[j] = mem.Word(j, ClassHeartbeat, j)
		s.Susp[j] = make([]shmem.Reg, n)
		for k := 0; k < n; k++ {
			s.Susp[j][k] = mem.Word(j, ClassBSusp, j, k)
		}
	}
	return s
}

// Proc is one process of the baseline protocol.
type Proc struct {
	id int
	n  int
	sh *Shared

	alive  []bool // processes currently deemed alive
	last   []uint64
	mySusp []uint64
	myHB   uint64

	cachedLeader int
}

// NewProc creates process id of the baseline.
func NewProc(sh *Shared, id int) *Proc {
	p := &Proc{
		id:           id,
		n:            sh.N,
		sh:           sh,
		alive:        make([]bool, sh.N),
		last:         make([]uint64, sh.N),
		mySusp:       make([]uint64, sh.N),
		cachedLeader: id,
	}
	for k := range p.alive {
		p.alive[k] = true
	}
	return p
}

// ID returns the process identity.
func (p *Proc) ID() int { return p.id }

// Leader returns the current leader estimate: the least-suspected alive
// process (lexicographic tie-break on id).
func (p *Proc) Leader() int { return p.cachedLeader }

func (p *Proc) computeLeader() int {
	best := -1
	var bestSusp uint64
	for k := 0; k < p.n; k++ {
		if !p.alive[k] {
			continue
		}
		var s uint64
		for j := 0; j < p.n; j++ {
			if j == p.id {
				s += p.mySusp[k]
			} else {
				s += p.sh.Susp[j][k].Read(p.id)
			}
		}
		if best == -1 || s < bestSusp || (s == bestSusp && k < best) {
			best, bestSusp = k, s
		}
	}
	if best == -1 {
		best = p.id
	}
	p.cachedLeader = best
	return best
}

// Step is the baseline's main loop body: unconditionally advance the
// heartbeat — every process writes shared memory forever, which is
// exactly the cost Theorem 3 shows Algorithm 1 avoids.
func (p *Proc) Step(vclock.Time) {
	p.myHB++
	p.sh.Heartbeat[p.id].Write(p.id, p.myHB)
	p.computeLeader()
}

// OnTimer checks heartbeats: a process whose heartbeat did not move since
// the last check is suspected and dropped until it moves again.
func (p *Proc) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		hb := p.sh.Heartbeat[k].Read(p.id)
		if hb != p.last[k] {
			p.alive[k] = true
			p.last[k] = hb
		} else if p.alive[k] {
			p.mySusp[k]++
			p.sh.Susp[p.id][k].Write(p.id, p.mySusp[k])
			p.alive[k] = false
		}
	}
	p.computeLeader()
	var m uint64
	for _, s := range p.mySusp {
		if s > m {
			m = s
		}
	}
	return m + 1
}

// Build allocates the baseline's shared memory in mem and returns the n
// process state machines.
func Build(mem shmem.Mem, n int) []*Proc {
	sh := NewShared(mem, n)
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = NewProc(sh, i)
	}
	return procs
}
