package baseline_test

import (
	"testing"

	"omegasm/internal/baseline"
	"omegasm/internal/sched"
	"omegasm/internal/shmem"
	"omegasm/internal/trace"
	"omegasm/internal/vclock"
)

func runBaseline(t *testing.T, cfg sched.Config) (*sched.Result, *shmem.SimMem) {
	t.Helper()
	mem := shmem.NewSimMem(cfg.N)
	procs := make([]sched.Process, cfg.N)
	for i, p := range baseline.Build(mem, cfg.N) {
		procs[i] = p
	}
	w, err := sched.NewWorld(cfg, procs, mem)
	if err != nil {
		t.Fatal(err)
	}
	return w.Run(), mem
}

// TestBaselineElectsUnderEventualSynchrony: the baseline's home turf —
// every process eventually timely — elects the lowest-id process.
func TestBaselineElectsUnderEventualSynchrony(t *testing.T) {
	res, _ := runBaseline(t, sched.Config{
		N: 4, Seed: 1, Horizon: 100_000, AWBProc: -1,
	})
	st, leader, ok := trace.Stabilization(res.Samples, res.Crashed)
	if !ok {
		t.Fatal("baseline did not stabilize under eventual synchrony")
	}
	t.Logf("leader %d at t=%d", leader, st)
}

// TestBaselineCrashRecovery: survivors re-elect after the leader crashes.
func TestBaselineCrashRecovery(t *testing.T) {
	res, _ := runBaseline(t, sched.Config{
		N: 4, Seed: 2, Horizon: 200_000, AWBProc: -1,
		Crash: map[int]vclock.Time{0: 50_000},
	})
	_, leader, ok := trace.Stabilization(res.Samples, res.Crashed)
	if !ok {
		t.Fatal("no recovery after crash")
	}
	if leader == 0 {
		t.Fatal("crashed process still elected")
	}
}

// TestBaselineEveryoneWritesForever: the cost the paper's Algorithm 1
// eliminates — all correct baseline processes keep writing heartbeats.
func TestBaselineEveryoneWritesForever(t *testing.T) {
	mem := shmem.NewSimMem(4)
	procs := make([]sched.Process, 4)
	for i, p := range baseline.Build(mem, 4) {
		procs[i] = p
	}
	cfg := sched.Config{N: 4, Seed: 3, Horizon: 100_000, AWBProc: -1}
	w, err := sched.NewWorld(cfg, procs, mem)
	if err != nil {
		t.Fatal(err)
	}
	var mid *shmem.CensusSnapshot
	w.AddHook(sched.HookFunc(func(_ *sched.World, s sched.Sample) {
		if mid == nil && s.T >= cfg.Horizon*3/4 {
			mid = mem.Census().Snapshot()
		}
	}))
	res := w.Run()
	if mid == nil {
		t.Fatal("no midpoint snapshot")
	}
	suffix := mem.Census().Snapshot().Diff(mid)
	writers := suffix.Writers()
	if len(writers) != 4 {
		t.Fatalf("suffix writers = %v, want all 4 (heartbeats never stop)", writers)
	}
	_ = res
}

// TestBaselineHeartbeatsUnbounded: the baseline's registers grow without
// bound — the other cost, contrasting with Algorithm 2's Theorem 6.
func TestBaselineHeartbeatsUnbounded(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := make([]sched.Process, 3)
	ps := baseline.Build(mem, 3)
	for i := range ps {
		procs[i] = ps[i]
	}
	w, err := sched.NewWorld(sched.Config{N: 3, Seed: 4, Horizon: 50_000, AWBProc: -1}, procs, mem)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	snap := mem.Census().Snapshot()
	for i := 0; i < 3; i++ {
		name := shmem.RegName(baseline.ClassHeartbeat, i)
		if snap.Regs[name].MaxValue < 1000 {
			t.Errorf("%s = %d; heartbeats should have grown into the thousands", name, snap.Regs[name].MaxValue)
		}
	}
}

func TestBaselineProcBasics(t *testing.T) {
	mem := shmem.NewSimMem(3)
	ps := baseline.Build(mem, 3)
	if ps[1].ID() != 1 {
		t.Errorf("ID() = %d", ps[1].ID())
	}
	if ps[1].Leader() != 1 {
		t.Errorf("initial Leader() = %d, want self", ps[1].Leader())
	}
	// One step: heartbeat written, leader recomputed to lexmin (0).
	ps[1].Step(0)
	if got := ps[1].Leader(); got != 0 {
		t.Errorf("Leader() after step = %d, want 0", got)
	}
	// Timer: silence suspects; alive[0] false drops 0 from leadership.
	ps[1].OnTimer(0) // sees hb[0]=0 unchanged? initial last=0, hb=0 -> suspect
	if got := ps[1].Leader(); got != 1 {
		t.Errorf("Leader() after suspecting all = %d, want self", got)
	}
}
