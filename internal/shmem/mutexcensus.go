package shmem

import "sync"

// MutexCensus is the retired global-mutex census implementation, preserved
// verbatim (hot path only) as the baseline for the contention benchmarks:
// BenchmarkCensusContention and `omegabench -bench` quantify how much the
// lock-free Census gains over this design at high process counts. Every
// access takes one global lock, so N instrumented processes serialize.
//
// It is not wired into any Mem implementation; only benchmarks construct
// it.
type MutexCensus struct {
	mu    sync.Mutex
	n     int
	regs  map[string]*MutexRegStats
	clock func() int64
}

// MutexRegStats is the per-register slice of a MutexCensus, mirroring the
// original locked RegStats layout.
type MutexRegStats struct {
	Class          string
	Name           string
	Owner          int
	ReadsBy        []uint64
	WritesBy       []uint64
	MaxValue       uint64
	LastWrite      int64
	DistinctValues uint64
	lastValue      uint64
	everWritten    bool
}

// NewMutexCensus creates a global-mutex census for n processes. clock may
// be nil, in which case all timestamps are 0.
func NewMutexCensus(n int, clock func() int64) *MutexCensus {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &MutexCensus{
		n:     n,
		regs:  make(map[string]*MutexRegStats),
		clock: clock,
	}
}

// Track registers (or returns the existing) stats slot for a register.
func (c *MutexCensus) Track(class, name string, owner int) *MutexRegStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.regs[name]; ok {
		return st
	}
	st := &MutexRegStats{
		Class:     class,
		Name:      name,
		Owner:     owner,
		ReadsBy:   make([]uint64, c.n),
		WritesBy:  make([]uint64, c.n),
		LastWrite: -1,
	}
	c.regs[name] = st
	return st
}

// NoteRead attributes one read to process pid, under the global lock.
func (c *MutexCensus) NoteRead(st *MutexRegStats, pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pid >= 0 && pid < len(st.ReadsBy) {
		st.ReadsBy[pid]++
	}
}

// NoteWrite attributes one write of value v to process pid, under the
// global lock.
func (c *MutexCensus) NoteWrite(st *MutexRegStats, pid int, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pid >= 0 && pid < len(st.WritesBy) {
		st.WritesBy[pid]++
	}
	if v > st.MaxValue {
		st.MaxValue = v
	}
	if !st.everWritten || v != st.lastValue {
		st.DistinctValues++
	}
	st.everWritten = true
	st.lastValue = v
	st.LastWrite = c.clock()
}

// SnapshotAll copies every register's counters under the global lock,
// exactly as the retired Snapshot did: monitoring stalls all accessors.
func (c *MutexCensus) SnapshotAll(regs []*MutexRegStats) [][]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]uint64, 0, 2*len(regs))
	for _, st := range regs {
		out = append(out, append([]uint64(nil), st.ReadsBy...))
		out = append(out, append([]uint64(nil), st.WritesBy...))
	}
	return out
}
