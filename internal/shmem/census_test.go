package shmem

import (
	"reflect"
	"testing"
	"testing/quick"
)

func newTestCensus() (*Census, *RegStats, *RegStats) {
	c := NewCensus(3, nil)
	a := c.Track("PROGRESS", "PROGRESS[0]", 0)
	b := c.Track("STOP", "STOP[1]", 1)
	return c, a, b
}

func TestCensusCounts(t *testing.T) {
	c, a, b := newTestCensus()
	c.NoteWrite(a, 0, 5)
	c.NoteWrite(a, 0, 5) // same value: one distinct
	c.NoteWrite(a, 0, 7)
	c.NoteRead(a, 1)
	c.NoteRead(a, 2)
	c.NoteWrite(b, 1, 1)

	snap := c.Snapshot()
	ra := snap.Regs["PROGRESS[0]"]
	if ra.TotalWrites() != 3 || ra.TotalReads() != 2 {
		t.Fatalf("writes=%d reads=%d", ra.TotalWrites(), ra.TotalReads())
	}
	if ra.MaxValue != 7 {
		t.Errorf("MaxValue = %d, want 7", ra.MaxValue)
	}
	if ra.DistinctValues != 2 {
		t.Errorf("DistinctValues = %d, want 2 (5 then 7; the repeat of 5 is not distinct)", ra.DistinctValues)
	}
	if got := snap.Writers(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Writers() = %v", got)
	}
	if got := snap.Readers(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Readers() = %v", got)
	}
}

func TestCensusOutOfRangePidIgnored(t *testing.T) {
	c, a, _ := newTestCensus()
	c.NoteRead(a, -1)
	c.NoteRead(a, 99)
	c.NoteWrite(a, -5, 1)
	snap := c.Snapshot()
	ra := snap.Regs["PROGRESS[0]"]
	if ra.TotalReads() != 0 {
		t.Errorf("out-of-range reads counted: %d", ra.TotalReads())
	}
	// The write's per-pid count is dropped but the value stats still update.
	if ra.MaxValue != 1 {
		t.Errorf("MaxValue = %d, want 1", ra.MaxValue)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	c, a, _ := newTestCensus()
	c.NoteWrite(a, 0, 1)
	snap := c.Snapshot()
	c.NoteWrite(a, 0, 2)
	if snap.Regs["PROGRESS[0]"].TotalWrites() != 1 {
		t.Fatal("snapshot mutated by later writes")
	}
}

func TestDiffSubtracts(t *testing.T) {
	c, a, _ := newTestCensus()
	c.NoteWrite(a, 0, 1)
	c.NoteRead(a, 1)
	early := c.Snapshot()
	c.NoteWrite(a, 0, 2)
	c.NoteWrite(a, 0, 3)
	c.NoteRead(a, 2)
	late := c.Snapshot()
	d := late.Diff(early)
	ra := d.Regs["PROGRESS[0]"]
	if ra.TotalWrites() != 2 {
		t.Errorf("diff writes = %d, want 2", ra.TotalWrites())
	}
	if ra.ReadsBy[1] != 0 || ra.ReadsBy[2] != 1 {
		t.Errorf("diff reads = %v", ra.ReadsBy)
	}
	if ra.DistinctValues != 2 {
		t.Errorf("diff distinct = %d, want 2", ra.DistinctValues)
	}
	if got := d.Writers(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("diff writers = %v", got)
	}
}

// TestDiffSelfIsZero: property — diffing a snapshot against itself leaves
// no writers, readers, or changed registers.
func TestDiffSelfIsZero(t *testing.T) {
	f := func(writes []uint8) bool {
		c := NewCensus(4, nil)
		a := c.Track("X", "X[0]", 0)
		for _, w := range writes {
			c.NoteWrite(a, int(w)%4, uint64(w))
		}
		s := c.Snapshot()
		d := s.Diff(s)
		return len(d.Writers()) == 0 && len(d.Readers()) == 0 && len(d.ChangedRegisters()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBits(t *testing.T) {
	tests := []struct {
		max  uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
	}
	for _, tc := range tests {
		r := RegSnapshot{MaxValue: tc.max}
		if got := r.Bits(); got != tc.want {
			t.Errorf("Bits(max=%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
}

func TestWrittenVsChangedRegisters(t *testing.T) {
	c, a, b := newTestCensus()
	c.NoteWrite(a, 0, 7)
	base := c.Snapshot()
	c.NoteWrite(a, 0, 7) // rewrite same value
	c.NoteWrite(b, 1, 1) // new value
	d := c.Snapshot().Diff(base)
	if got := d.WrittenRegisters(); !reflect.DeepEqual(got, []string{"PROGRESS[0]", "STOP[1]"}) {
		t.Errorf("WrittenRegisters = %v", got)
	}
	if got := d.ChangedRegisters(); !reflect.DeepEqual(got, []string{"STOP[1]"}) {
		t.Errorf("ChangedRegisters = %v (same-value rewrites must not count)", got)
	}
}

func TestClassBitsAndTotalBits(t *testing.T) {
	c := NewCensus(2, nil)
	a := c.Track("A", "A[0]", 0)
	b := c.Track("A", "A[1]", 1)
	x := c.Track("B", "B[0]", 0)
	c.NoteWrite(a, 0, 255) // 8 bits
	c.NoteWrite(b, 1, 1)   // 1 bit
	c.NoteWrite(x, 0, 15)  // 4 bits
	snap := c.Snapshot()
	if got := snap.ClassBits("A"); got != 9 {
		t.Errorf("ClassBits(A) = %d, want 9", got)
	}
	if got := snap.TotalBits(); got != 13 {
		t.Errorf("TotalBits = %d, want 13", got)
	}
	if name, bits := snap.MaxBitsOutside("A[0]"); name != "B[0]" || bits != 4 {
		t.Errorf("MaxBitsOutside = %q/%d, want B[0]/4", name, bits)
	}
	if got := snap.Classes(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("Classes = %v", got)
	}
}

func TestWriteLog(t *testing.T) {
	c := NewCensus(2, nil)
	c.LogWrites("P")
	p := c.Track("P", "P[0]", 0)
	q := c.Track("Q", "Q[0]", 0)
	c.NoteWrite(p, 0, 1)
	c.NoteWrite(q, 0, 2) // class Q not logged
	c.NoteWrite(p, 0, 3)
	log := c.WriteLog()
	if len(log) != 2 {
		t.Fatalf("write log has %d events, want 2", len(log))
	}
	if log[0].Value != 1 || log[1].Value != 3 {
		t.Errorf("log values = %d,%d", log[0].Value, log[1].Value)
	}
	if log[0].Class != "P" || log[0].Pid != 0 {
		t.Errorf("log[0] = %+v", log[0])
	}
}

func TestCensusClock(t *testing.T) {
	now := int64(0)
	c := NewCensus(1, func() int64 { return now })
	a := c.Track("P", "P[0]", 0)
	now = 42
	c.NoteWrite(a, 0, 1)
	if got := c.Snapshot().Regs["P[0]"].LastWrite; got != 42 {
		t.Errorf("LastWrite = %d, want 42", got)
	}
	// Replace clock and check it takes effect.
	c.SetClock(func() int64 { return 100 })
	c.NoteWrite(a, 0, 2)
	if got := c.Snapshot().Regs["P[0]"].LastWrite; got != 100 {
		t.Errorf("LastWrite = %d, want 100", got)
	}
	// Nil clock is ignored.
	c.SetClock(nil)
	c.NoteWrite(a, 0, 3)
	if got := c.Snapshot().Regs["P[0]"].LastWrite; got != 100 {
		t.Errorf("nil SetClock changed the clock")
	}
}

// TestDiffComposition: property — for any split point, the suffix diff
// plus the prefix counts equal the final counts.
func TestDiffComposition(t *testing.T) {
	f := func(ops []uint16, split uint8) bool {
		c := NewCensus(4, nil)
		a := c.Track("X", "X[0]", 0)
		cut := int(split) % (len(ops) + 1)
		var mid *CensusSnapshot
		for i, op := range ops {
			if i == cut {
				mid = c.Snapshot()
			}
			c.NoteWrite(a, int(op)%4, uint64(op))
		}
		if mid == nil {
			mid = c.Snapshot()
		}
		end := c.Snapshot()
		d := end.Diff(mid)
		for p := 0; p < 4; p++ {
			if mid.Regs["X[0]"].WritesBy[p]+d.Regs["X[0]"].WritesBy[p] != end.Regs["X[0]"].WritesBy[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
