package shmem

import "fmt"

// SimMem is the simulation shared memory: plain words plus a census.
//
// It is intentionally not safe for concurrent use. The deterministic
// scheduler (package sched) runs all process steps on one goroutine, so
// every register access is trivially linearized in scheduler order, which
// is exactly the atomicity granted by the paper's model: the linearization
// point of each operation is the scheduler tick at which it runs.
type SimMem struct {
	census *Census
}

var _ Mem = (*SimMem)(nil)

// NewSimMem creates a simulation memory for n processes.
func NewSimMem(n int) *SimMem {
	return &SimMem{census: NewCensus(n, nil)}
}

// Word allocates an instrumented register initialized to zero.
func (m *SimMem) Word(owner int, class string, idx ...int) Reg {
	name := RegName(class, idx...)
	st := m.census.Track(class, name, owner)
	return &simReg{
		owner:  owner,
		name:   name,
		census: m.census,
		stats:  st,
	}
}

// Census returns the memory's access census.
func (m *SimMem) Census() *Census { return m.census }

// Discard drops a dead register's census accounting (the word itself is
// garbage-collected with the register object).
func (m *SimMem) Discard(reg Reg) { m.census.Forget(reg.Name()) }

var _ Discarder = (*SimMem)(nil)

type simReg struct {
	owner  int
	name   string
	value  uint64
	census *Census
	stats  *RegStats
}

var _ Reg = (*simReg)(nil)

func (r *simReg) Read(pid int) uint64 {
	r.census.NoteRead(r.stats, pid)
	return r.value
}

func (r *simReg) Write(pid int, v uint64) {
	if r.owner != MultiWriter && pid != r.owner {
		panic(fmt.Sprintf("shmem: process %d wrote 1WnR register %s owned by %d", pid, r.name, r.owner))
	}
	r.census.NoteWrite(r.stats, pid, v)
	r.value = v
}

func (r *simReg) Owner() int   { return r.owner }
func (r *simReg) Name() string { return r.name }

// Seed installs an arbitrary initial value without counting it as a write,
// supporting the paper's self-stabilization claim (footnote 7: initial
// register values may be arbitrary).
func (r *simReg) Seed(v uint64) {
	r.value = v
	r.census.SeedValue(r.stats, v)
}

// Seeder is implemented by registers that support installing an arbitrary
// initial value outside of the algorithm's write discipline.
type Seeder interface {
	Seed(v uint64)
}

// SeedIfPossible installs v as the initial value of r when supported.
func SeedIfPossible(r Reg, v uint64) {
	if s, ok := r.(Seeder); ok {
		s.Seed(v)
	}
}
