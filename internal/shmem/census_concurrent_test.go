package shmem

import (
	"sync"
	"testing"
)

// TestCensusConcurrentCounts hammers the census from n goroutines (one per
// process identity, the 1WnR discipline: each pid writes only its own
// register but reads everyone's) and checks that no increment is lost.
// Run under -race this also proves the hot paths are data-race free.
func TestCensusConcurrentCounts(t *testing.T) {
	const (
		n   = 8
		ops = 5000
	)
	c := NewCensus(n, nil)
	regs := make([]*RegStats, n)
	for i := 0; i < n; i++ {
		regs[i] = c.Track("X", RegName("X", i), i)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < ops; k++ {
				c.NoteWrite(regs[pid], pid, uint64(k))
				for j := 0; j < n; j++ {
					c.NoteRead(regs[j], pid)
				}
			}
		}(pid)
	}
	wg.Wait()
	snap := c.Snapshot()
	for i := 0; i < n; i++ {
		r := snap.Regs[RegName("X", i)]
		if got := r.WritesBy[i]; got != ops {
			t.Errorf("reg %d: writes by owner = %d, want %d", i, got, ops)
		}
		if got := r.TotalReads(); got != uint64(n*ops) {
			t.Errorf("reg %d: total reads = %d, want %d", i, got, n*ops)
		}
		if r.MaxValue != ops-1 {
			t.Errorf("reg %d: max = %d, want %d", i, r.MaxValue, ops-1)
		}
		// Single-writer register with strictly increasing values: distinct
		// counting is exact.
		if r.DistinctValues != ops {
			t.Errorf("reg %d: distinct = %d, want %d", i, r.DistinctValues, ops)
		}
	}
}

// TestCensusConcurrentMultiWriter checks that per-process write counts and
// the CAS-raised maximum stay exact on a multi-writer register even when
// every process writes it concurrently. (DistinctValues is documented as
// approximate in this regime, so it is not asserted.)
func TestCensusConcurrentMultiWriter(t *testing.T) {
	const (
		n   = 8
		ops = 5000
	)
	c := NewCensus(n, nil)
	st := c.Track("M", "M", MultiWriter)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < ops; k++ {
				c.NoteWrite(st, pid, uint64(pid*ops+k))
			}
		}(pid)
	}
	wg.Wait()
	r := c.Snapshot().Regs["M"]
	for p := 0; p < n; p++ {
		if r.WritesBy[p] != ops {
			t.Errorf("writes by %d = %d, want %d", p, r.WritesBy[p], ops)
		}
	}
	if want := uint64((n-1)*ops + ops - 1); r.MaxValue != want {
		t.Errorf("max = %d, want %d", r.MaxValue, want)
	}
}

// TestCensusConcurrentWriteLog checks the sharded write log merges back
// into one totally ordered sequence: global order tickets are strictly
// increasing in the merged log and no event is lost.
func TestCensusConcurrentWriteLog(t *testing.T) {
	const (
		n   = 4
		ops = 2000
	)
	c := NewCensus(n, nil)
	c.LogWrites("P")
	regs := make([]*RegStats, n)
	for i := 0; i < n; i++ {
		regs[i] = c.Track("P", RegName("P", i), i)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < ops; k++ {
				c.NoteWrite(regs[pid], pid, uint64(k))
			}
		}(pid)
	}
	wg.Wait()
	log := c.WriteLog()
	if len(log) != n*ops {
		t.Fatalf("log has %d events, want %d", len(log), n*ops)
	}
	perPid := make(map[int]uint64)
	for i, ev := range log {
		if i > 0 && log[i-1].seq >= ev.seq {
			t.Fatalf("log not in global order at %d: seq %d then %d", i, log[i-1].seq, ev.seq)
		}
		// Each process's own events must appear in its program order.
		if ev.Value != perPid[ev.Pid] {
			t.Fatalf("pid %d events out of program order: got value %d, want %d", ev.Pid, ev.Value, perPid[ev.Pid])
		}
		perPid[ev.Pid]++
	}
}

// TestCensusSnapshotDuringWrites takes snapshots while writers run; each
// observed counter must be monotone between successive snapshots, and the
// final snapshot exact.
func TestCensusSnapshotDuringWrites(t *testing.T) {
	const ops = 20000
	c := NewCensus(2, nil)
	st := c.Track("P", "P[0]", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < ops; k++ {
			c.NoteWrite(st, 0, uint64(k))
		}
	}()
	var last uint64
	for i := 0; i < 100; i++ {
		w := c.Snapshot().Regs["P[0]"].WritesBy[0]
		if w < last {
			t.Fatalf("write count went backwards: %d after %d", w, last)
		}
		last = w
	}
	<-done
	if got := c.Snapshot().Regs["P[0]"].WritesBy[0]; got != ops {
		t.Fatalf("final writes = %d, want %d", got, ops)
	}
}

// TestMutexCensusBaseline keeps the benchmark baseline honest: it must
// count exactly like the lock-free census on a serial workload.
func TestMutexCensusBaseline(t *testing.T) {
	c := NewMutexCensus(3, nil)
	st := c.Track("P", "P[0]", 0)
	c.NoteWrite(st, 0, 5)
	c.NoteWrite(st, 0, 5)
	c.NoteWrite(st, 0, 7)
	c.NoteRead(st, 1)
	if st.WritesBy[0] != 3 || st.ReadsBy[1] != 1 {
		t.Errorf("counts writes=%v reads=%v", st.WritesBy, st.ReadsBy)
	}
	if st.MaxValue != 7 || st.DistinctValues != 2 {
		t.Errorf("max=%d distinct=%d, want 7/2", st.MaxValue, st.DistinctValues)
	}
	if again := c.Track("P", "P[0]", 0); again != st {
		t.Error("Track not idempotent")
	}
}
