package shmem

import (
	"sync"
	"testing"
)

func TestAtomicMemBasics(t *testing.T) {
	m := NewAtomicMem(3, true)
	r := m.Word(0, "PROGRESS", 0)
	r.Write(0, 7)
	if got := r.Read(1); got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
	snap := m.Census().Snapshot()
	rs := snap.Regs["PROGRESS[0]"]
	if rs.WritesBy[0] != 1 || rs.ReadsBy[1] != 1 {
		t.Errorf("census writes=%v reads=%v", rs.WritesBy, rs.ReadsBy)
	}
	if rs.LastWrite < 0 {
		t.Errorf("LastWrite not timestamped: %d", rs.LastWrite)
	}
}

func TestAtomicMemCountingDisabled(t *testing.T) {
	m := NewAtomicMem(2, false)
	r := m.Word(0, "X", 0)
	r.Write(0, 1)
	r.Read(1)
	snap := m.Census().Snapshot()
	if snap.Regs["X[0]"].TotalWrites() != 0 || snap.Regs["X[0]"].TotalReads() != 0 {
		t.Error("census must stay empty with counting disabled")
	}
}

func TestAtomicMemOwnershipPanic(t *testing.T) {
	m := NewAtomicMem(2, false)
	r := m.Word(0, "X", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("write by non-owner must panic")
		}
	}()
	r.Write(1, 1)
}

func TestAtomicMemSeed(t *testing.T) {
	m := NewAtomicMem(2, true)
	r := m.Word(0, "X", 0)
	SeedIfPossible(r, 123)
	if got := r.Read(1); got != 123 {
		t.Fatalf("seed not visible: %d", got)
	}
	if w := m.Census().Snapshot().Regs["X[0]"].TotalWrites(); w != 0 {
		t.Errorf("seed counted as write: %d", w)
	}
}

// TestAtomicMemConcurrent hammers a register from one writer and many
// readers under the race detector: the single-writer discipline plus
// atomic words must be race-free, and readers must observe monotone
// values when the writer writes monotonically (atomicity of the word).
func TestAtomicMemConcurrent(t *testing.T) {
	m := NewAtomicMem(4, true)
	r := m.Word(0, "PROGRESS", 0)
	const writes = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= writes; v++ {
			r.Write(0, v)
		}
	}()
	errs := make(chan string, 3)
	for reader := 1; reader <= 3; reader++ {
		reader := reader
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < writes; i++ {
				v := r.Read(reader)
				if v < last {
					errs <- "non-monotone read of a monotone single-writer register"
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := r.Read(1); got != writes {
		t.Errorf("final value %d, want %d", got, writes)
	}
}
