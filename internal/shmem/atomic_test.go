package shmem

import (
	"sync"
	"testing"
)

func TestAtomicMemBasics(t *testing.T) {
	m := NewAtomicMem(3, true)
	r := m.Word(0, "PROGRESS", 0)
	r.Write(0, 7)
	if got := r.Read(1); got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
	snap := m.Census().Snapshot()
	rs := snap.Regs["PROGRESS[0]"]
	if rs.WritesBy[0] != 1 || rs.ReadsBy[1] != 1 {
		t.Errorf("census writes=%v reads=%v", rs.WritesBy, rs.ReadsBy)
	}
	if rs.LastWrite < 0 {
		t.Errorf("LastWrite not timestamped: %d", rs.LastWrite)
	}
}

func TestAtomicMemCountingDisabled(t *testing.T) {
	m := NewAtomicMem(2, false)
	r := m.Word(0, "X", 0)
	r.Write(0, 1)
	r.Read(1)
	snap := m.Census().Snapshot()
	if snap.Regs["X[0]"].TotalWrites() != 0 || snap.Regs["X[0]"].TotalReads() != 0 {
		t.Error("census must stay empty with counting disabled")
	}
}

func TestAtomicMemOwnershipPanic(t *testing.T) {
	m := NewAtomicMem(2, false)
	r := m.Word(0, "X", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("write by non-owner must panic")
		}
	}()
	r.Write(1, 1)
}

func TestAtomicMemSeed(t *testing.T) {
	m := NewAtomicMem(2, true)
	r := m.Word(0, "X", 0)
	SeedIfPossible(r, 123)
	if got := r.Read(1); got != 123 {
		t.Fatalf("seed not visible: %d", got)
	}
	if w := m.Census().Snapshot().Regs["X[0]"].TotalWrites(); w != 0 {
		t.Errorf("seed counted as write: %d", w)
	}
}

// TestAtomicMemConcurrent hammers a register from one writer and many
// readers under the race detector: the single-writer discipline plus
// atomic words must be race-free, and readers must observe monotone
// values when the writer writes monotonically (atomicity of the word).
func TestAtomicMemConcurrent(t *testing.T) {
	m := NewAtomicMem(4, true)
	r := m.Word(0, "PROGRESS", 0)
	const writes = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= writes; v++ {
			r.Write(0, v)
		}
	}()
	errs := make(chan string, 3)
	for reader := 1; reader <= 3; reader++ {
		reader := reader
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < writes; i++ {
				v := r.Read(reader)
				if v < last {
					errs <- "non-monotone read of a monotone single-writer register"
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := r.Read(1); got != writes {
		t.Errorf("final value %d, want %d", got, writes)
	}
}

// TestWordRowBlockEquivalence pins the RowAllocator contract: a block is
// semantically exactly the Word calls it replaces — same names, same
// owners, same single-writer discipline, same census attribution.
func TestWordRowBlockEquivalence(t *testing.T) {
	const tag0, k, n = 40, 3, 4
	m := NewAtomicMem(n, true)
	rows := m.WordRowBlock("DEC", tag0, k, n)
	if len(rows) != k {
		t.Fatalf("rows: %d, want %d", len(rows), k)
	}
	for j, row := range rows {
		if len(row) != n {
			t.Fatalf("row %d width: %d, want %d", j, len(row), n)
		}
		for i, r := range row {
			if r.Owner() != i {
				t.Errorf("row %d reg %d owner %d, want %d", j, i, r.Owner(), i)
			}
			want := RegName("DEC", tag0+j, i)
			if r.Name() != want {
				t.Errorf("row %d reg %d name %q, want %q", j, i, r.Name(), want)
			}
			r.Write(i, uint64(100*j+i))
		}
	}
	// Values are per-register (the backing array must not alias).
	for j, row := range rows {
		for i, r := range row {
			if got := r.Read(0); got != uint64(100*j+i) {
				t.Errorf("row %d reg %d value %d, want %d", j, i, got, 100*j+i)
			}
		}
	}
	// Census attribution matches register-at-a-time allocation.
	snap := m.Census().Snapshot()
	rs, ok := snap.Regs[RegName("DEC", tag0+1, 2)]
	if !ok || rs.TotalWrites() != 1 || rs.ReadsBy[0] != 1 {
		t.Errorf("census row missing or miscounted: %+v", rs)
	}
}

func TestWordRowBlockOwnershipPanic(t *testing.T) {
	m := NewAtomicMem(3, false)
	rows := m.WordRowBlock("MBAL", 7, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("write by non-owner must panic")
		}
	}()
	rows[0][1].Write(2, 1)
}

// TestWordRowBlockFallback checks the package-level helper against a
// memory without a bulk path (SimMem): identical shape and naming.
func TestWordRowBlockFallback(t *testing.T) {
	m := NewSimMem(3)
	rows := WordRowBlock(m, "BALINP", 5, 2, 3)
	if len(rows) != 2 || len(rows[0]) != 3 {
		t.Fatalf("shape %dx%d, want 2x3", len(rows), len(rows[0]))
	}
	if got, want := rows[1][2].Name(), RegName("BALINP", 6, 2); got != want {
		t.Errorf("fallback name %q, want %q", got, want)
	}
	if rows[1][2].Owner() != 2 {
		t.Errorf("fallback owner %d, want 2", rows[1][2].Owner())
	}
}
