package shmem

import (
	"math/rand"
	"testing"

	"omegasm/internal/vclock"
)

func TestFaultMemStaleReads(t *testing.T) {
	var now vclock.Time
	fm := NewFaultMem(NewSimMem(2), FaultConfig{
		StaleReadP:  1.0,
		StaleWindow: 10,
	}, func() vclock.Time { return now }, rand.New(rand.NewSource(1)))
	r := fm.Word(0, "HB", 0)
	r.Write(0, 5)
	now = 3
	r.Write(0, 7)
	// Within the window every read observes the overwritten value.
	now = 8
	if got := r.Read(1); got != 5 {
		t.Fatalf("in-window read = %d, want stale 5", got)
	}
	// Past the window the fault disarms and reads are exact again.
	now = 14
	if got := r.Read(1); got != 7 {
		t.Fatalf("post-window read = %d, want 7", got)
	}
}

func TestFaultMemStaleNeverInventsValues(t *testing.T) {
	// Regularity: any read returns either the current or the previous
	// value, never anything else — across many writes and probabilities.
	var now vclock.Time
	fm := NewFaultMem(NewSimMem(2), FaultConfig{
		StaleReadP:  0.5,
		StaleWindow: 4,
	}, func() vclock.Time { return now }, rand.New(rand.NewSource(2)))
	r := fm.Word(0, "HB", 0)
	prev := uint64(0)
	for i := uint64(1); i <= 200; i++ {
		r.Write(0, i)
		now++
		if got := r.Read(1); got != i && got != prev {
			t.Fatalf("read %d after writing %d (prev %d): not regular", got, i, prev)
		}
		prev = i
		now += 2
	}
}

func TestFaultMemPartialView(t *testing.T) {
	var now vclock.Time
	fm := NewFaultMem(NewSimMem(2), FaultConfig{
		PartialViewP:   1.0,
		PartialViewLen: 100,
	}, func() vclock.Time { return now }, rand.New(rand.NewSource(3)))
	r := fm.Word(0, "PROGRESS", 0)
	r.Write(0, 1)
	if got := r.Read(1); got != 1 {
		t.Fatalf("first read = %d", got)
	}
	// Writes keep landing but reader 1's view is frozen for 100 ticks.
	now = 50
	r.Write(0, 2)
	if got := r.Read(1); got != 1 {
		t.Fatalf("frozen read = %d, want 1", got)
	}
	// A different reader is independent (it freezes onto the live value).
	if got := r.Read(0); got != 2 {
		t.Fatalf("other reader = %d, want 2", got)
	}
	// Past the freeze the view thaws (and may re-freeze on the new value).
	now = 200
	if got := r.Read(1); got != 2 {
		t.Fatalf("thawed read = %d, want 2", got)
	}
}

func TestFaultMemClassFilterAndWritesExact(t *testing.T) {
	var now vclock.Time
	fm := NewFaultMem(NewSimMem(2), FaultConfig{
		StaleReadP:  1.0,
		StaleWindow: 1 << 30,
		Classes:     map[string]bool{"HB": true},
	}, func() vclock.Time { return now }, rand.New(rand.NewSource(4)))
	// A class outside the filter gets the raw register: no staleness.
	log := fm.Word(0, "LOG", 0)
	log.Write(0, 1)
	log.Write(0, 2)
	if got := log.Read(1); got != 2 {
		t.Fatalf("filtered-class read = %d, want exact 2", got)
	}
	// Writes always reach the inner word even on faulted classes: the
	// owner's own census and any later unfaulted path see the truth.
	hb := fm.Word(0, "HB", 0)
	hb.Write(0, 9)
	if c := fm.Census(); c == nil {
		t.Fatal("census lost through the wrapper")
	}
}

func TestFaultMemSeedResetsShadow(t *testing.T) {
	var now vclock.Time
	fm := NewFaultMem(NewSimMem(2), FaultConfig{
		StaleReadP:  1.0,
		StaleWindow: 1 << 30,
	}, func() vclock.Time { return now }, rand.New(rand.NewSource(5)))
	r := fm.Word(0, "HB", 0)
	SeedIfPossible(r, 42)
	r.Write(0, 43)
	// The stale value after a seed is the seed, never a phantom zero.
	if got := r.Read(1); got != 42 {
		t.Fatalf("post-seed stale read = %d, want 42", got)
	}
}

func TestFaultMemDeterminism(t *testing.T) {
	run := func() []uint64 {
		var now vclock.Time
		fm := NewFaultMem(NewSimMem(2), FaultConfig{
			StaleReadP:     0.3,
			StaleWindow:    8,
			PartialViewP:   0.1,
			PartialViewLen: 20,
		}, func() vclock.Time { return now }, rand.New(rand.NewSource(7)))
		r := fm.Word(0, "HB", 0)
		var out []uint64
		for i := uint64(1); i <= 100; i++ {
			r.Write(0, i)
			now += 3
			out = append(out, r.Read(1))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}
