package shmem

import (
	"fmt"
	"sync/atomic"
	"time"
)

// AtomicMem is the live-runtime shared memory: each register is a
// sync/atomic word, so concurrent goroutines get exactly the atomic
// 1WnR register semantics of the paper's model from the Go memory model's
// sequentially consistent atomics.
//
// Instrumentation is optional: with counting enabled every access also
// updates the census (which takes a mutex); production users of the public
// API run with counting disabled and pay only the atomic load/store.
type AtomicMem struct {
	census *Census
	count  bool
	start  time.Time
}

var _ Mem = (*AtomicMem)(nil)

// NewAtomicMem creates a live shared memory for n processes. When count is
// true every access is attributed in the census (timestamped with
// nanoseconds since creation).
func NewAtomicMem(n int, count bool) *AtomicMem {
	m := &AtomicMem{count: count, start: time.Now()}
	m.census = NewCensus(n, func() int64 { return int64(time.Since(m.start)) })
	return m
}

// Word allocates an atomic register initialized to zero.
//
// With counting off the register never touches the census: no display
// name is formatted and nothing is tracked. This matters because a
// recycling log allocates (and discards) fresh registers continuously —
// per-slot census bookkeeping would put a fmt.Sprintf, a global mutex
// and a string-map insert on the steady-state commit path of every
// uninstrumented cluster.
func (m *AtomicMem) Word(owner int, class string, idx ...int) Reg {
	r := &atomicReg{
		owner:  owner,
		census: m.census,
		count:  m.count,
	}
	r.setIdent(class, idx...)
	if m.count {
		r.stats = m.census.Track(class, RegName(class, idx...), owner)
	}
	return r
}

// WordRowBlock allocates k rows of n registers CLASS[tag0+j][0..n-1]
// (register i of each row owned by process i) over one contiguous
// backing array of slim blockRegs that share one identity header: a few
// allocations — and ~40 bytes per register — for the whole block,
// instead of a ~100-byte object plus an index slice per register.
// Recycling logs allocate a consensus instance (three rows) per
// reclaimed slot and reclaim a checkpoint interval of slots at a time,
// so both the allocation count and the byte volume here are
// steady-state commit-path churn — GC pressure that grows with
// GOMAXPROCS.
func (m *AtomicMem) WordRowBlock(class string, tag0, k, n int) [][]Reg {
	hdr := &blockHdr{class: class, tag0: tag0, n: n, census: m.census, count: m.count}
	if m.count {
		hdr.stats = make([]*RegStats, k*n)
	}
	backing := make([]blockReg, k*n)
	flat := make([]Reg, k*n)
	rows := make([][]Reg, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			r := &backing[j*n+i]
			r.hdr = hdr
			r.i = int32(j*n + i)
			if m.count {
				hdr.stats[j*n+i] = m.census.Track(class, RegName(class, tag0+j, i), i)
			}
			flat[j*n+i] = r
		}
		rows[j] = flat[j*n : (j+1)*n : (j+1)*n]
	}
	return rows
}

// blockHdr is the shared identity of one WordRowBlock: class, base tag,
// row width and census wiring live here once instead of in every
// register of the block.
type blockHdr struct {
	class  string
	tag0   int
	n      int
	census *Census
	count  bool
	stats  []*RegStats // by flat index; nil when counting is off
}

// blockReg is one register of a row block: the atomic word, the shared
// header and the flat index (row j, process i at j*n+i) that derives
// owner, subscripts and — in counted mode — the stats slot. 24 bytes.
type blockReg struct {
	value atomic.Uint64
	hdr   *blockHdr
	i     int32
}

var _ Reg = (*blockReg)(nil)
var _ Seeder = (*blockReg)(nil)

func (r *blockReg) Read(pid int) uint64 {
	v := r.value.Load()
	if r.hdr.count {
		r.hdr.census.NoteRead(r.hdr.stats[r.i], pid)
	}
	return v
}

func (r *blockReg) Write(pid int, v uint64) {
	if pid != r.Owner() {
		panic(fmt.Sprintf("shmem: process %d wrote 1WnR register %s owned by %d", pid, r.Name(), r.Owner()))
	}
	r.value.Store(v)
	if r.hdr.count {
		r.hdr.census.NoteWrite(r.hdr.stats[r.i], pid, v)
	}
}

func (r *blockReg) Owner() int { return int(r.i) % r.hdr.n }

func (r *blockReg) Name() string {
	h := r.hdr
	return RegName(h.class, h.tag0+int(r.i)/h.n, int(r.i)%h.n)
}

func (r *blockReg) Seed(v uint64) {
	r.value.Store(v)
	if r.hdr.count {
		r.hdr.census.SeedValue(r.hdr.stats[r.i], v)
	}
}

// Census returns the census (meaningful only when counting is enabled).
func (m *AtomicMem) Census() *Census { return m.census }

// Discard drops a dead register's census accounting (the word itself is
// garbage-collected with the register object). Uncounted registers were
// never tracked, so there is nothing to forget.
func (m *AtomicMem) Discard(reg Reg) {
	if m.count {
		m.census.Forget(reg.Name())
	}
}

var _ Discarder = (*AtomicMem)(nil)
var _ RowAllocator = (*AtomicMem)(nil)

type atomicReg struct {
	owner int
	// class plus up to three inline indices carry the identity; the
	// display name is formatted on demand (panic messages, counted-mode
	// tracking) so the allocation path never runs fmt and the register
	// retains no index slice. overflow covers the hypothetical deeper
	// subscript lists (no current register class has more than three).
	class    string
	i0, i1   int
	i2       int
	nidx     uint8
	overflow []int
	value    atomic.Uint64
	census   *Census
	stats    *RegStats
	count    bool
}

func (r *atomicReg) setIdent(class string, idx ...int) {
	r.class = class
	switch len(idx) {
	case 0:
	case 1:
		r.i0 = idx[0]
	case 2:
		r.i0, r.i1 = idx[0], idx[1]
	case 3:
		r.i0, r.i1, r.i2 = idx[0], idx[1], idx[2]
	default:
		r.overflow = append([]int(nil), idx...)
	}
	r.nidx = uint8(len(idx))
}

var _ Reg = (*atomicReg)(nil)
var _ Seeder = (*atomicReg)(nil)

func (r *atomicReg) Read(pid int) uint64 {
	v := r.value.Load()
	if r.count {
		r.census.NoteRead(r.stats, pid)
	}
	return v
}

func (r *atomicReg) Write(pid int, v uint64) {
	if r.owner != MultiWriter && pid != r.owner {
		panic(fmt.Sprintf("shmem: process %d wrote 1WnR register %s owned by %d", pid, r.Name(), r.owner))
	}
	r.value.Store(v)
	if r.count {
		r.census.NoteWrite(r.stats, pid, v)
	}
}

func (r *atomicReg) Owner() int { return r.owner }

func (r *atomicReg) Name() string {
	switch r.nidx {
	case 0:
		return RegName(r.class)
	case 1:
		return RegName(r.class, r.i0)
	case 2:
		return RegName(r.class, r.i0, r.i1)
	case 3:
		return RegName(r.class, r.i0, r.i1, r.i2)
	default:
		return RegName(r.class, r.overflow...)
	}
}

func (r *atomicReg) Seed(v uint64) {
	r.value.Store(v)
	if r.count {
		r.census.SeedValue(r.stats, v)
	}
}
