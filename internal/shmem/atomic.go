package shmem

import (
	"fmt"
	"sync/atomic"
	"time"
)

// AtomicMem is the live-runtime shared memory: each register is a
// sync/atomic word, so concurrent goroutines get exactly the atomic
// 1WnR register semantics of the paper's model from the Go memory model's
// sequentially consistent atomics.
//
// Instrumentation is optional: with counting enabled every access also
// updates the census (which takes a mutex); production users of the public
// API run with counting disabled and pay only the atomic load/store.
type AtomicMem struct {
	census *Census
	count  bool
	start  time.Time
}

var _ Mem = (*AtomicMem)(nil)

// NewAtomicMem creates a live shared memory for n processes. When count is
// true every access is attributed in the census (timestamped with
// nanoseconds since creation).
func NewAtomicMem(n int, count bool) *AtomicMem {
	m := &AtomicMem{count: count, start: time.Now()}
	m.census = NewCensus(n, func() int64 { return int64(time.Since(m.start)) })
	return m
}

// Word allocates an atomic register initialized to zero.
func (m *AtomicMem) Word(owner int, class string, idx ...int) Reg {
	name := RegName(class, idx...)
	st := m.census.Track(class, name, owner)
	return &atomicReg{
		owner:  owner,
		name:   name,
		census: m.census,
		stats:  st,
		count:  m.count,
	}
}

// Census returns the census (meaningful only when counting is enabled).
func (m *AtomicMem) Census() *Census { return m.census }

// Discard drops a dead register's census accounting (the word itself is
// garbage-collected with the register object).
func (m *AtomicMem) Discard(reg Reg) { m.census.Forget(reg.Name()) }

var _ Discarder = (*AtomicMem)(nil)

type atomicReg struct {
	owner  int
	name   string
	value  atomic.Uint64
	census *Census
	stats  *RegStats
	count  bool
}

var _ Reg = (*atomicReg)(nil)
var _ Seeder = (*atomicReg)(nil)

func (r *atomicReg) Read(pid int) uint64 {
	v := r.value.Load()
	if r.count {
		r.census.NoteRead(r.stats, pid)
	}
	return v
}

func (r *atomicReg) Write(pid int, v uint64) {
	if r.owner != MultiWriter && pid != r.owner {
		panic(fmt.Sprintf("shmem: process %d wrote 1WnR register %s owned by %d", pid, r.name, r.owner))
	}
	r.value.Store(v)
	if r.count {
		r.census.NoteWrite(r.stats, pid, v)
	}
}

func (r *atomicReg) Owner() int   { return r.owner }
func (r *atomicReg) Name() string { return r.name }

func (r *atomicReg) Seed(v uint64) {
	r.value.Store(v)
	r.census.SeedValue(r.stats, v)
}
