// Package shmem provides the shared-memory substrate of the reproduction:
// atomic registers in the style of the paper's base model AS[n,emptyset].
//
// The paper's processes communicate only by reading and writing
// one-writer/multi-reader (1WnR) atomic registers. This package models a
// register as a 64-bit word (booleans are encoded as 0/1) and offers three
// interchangeable implementations behind the Mem/Reg interfaces:
//
//   - SimMem: plain words plus full instrumentation, for the deterministic
//     simulation scheduler (package sched), which serializes all accesses
//     on a single goroutine so linearizability is trivial.
//   - AtomicMem (atomic.go): sync/atomic-backed registers for the live
//     goroutine runtime (package rt).
//   - san.DiskMem (package san): registers replicated over simulated
//     network-attached disks, the paper's motivating deployment.
//
// Every access is attributed to the accessing process identity so that the
// experiment harness can regenerate the paper's write/read censuses
// (Theorems 3 and 7, Lemmas 5 and 6) and boundedness verdicts
// (Theorems 2 and 6).
package shmem

import "fmt"

// MultiWriter is the Owner value of a register that any process may write
// (the paper's nWnR variant, Section 3.5).
const MultiWriter = -1

// Reg is a single atomic register holding a uint64.
//
// Read and Write take the identity of the accessing process so that the
// substrate can attribute the access in the census. For 1WnR registers,
// Write panics if pid is not the owner: in the paper's model a write by a
// non-owner is a malformed algorithm, not a run-time condition, so it is a
// programming error here as well.
type Reg interface {
	// Read returns the current value, attributing the access to pid.
	Read(pid int) uint64
	// Write stores v, attributing the access to pid. pid must be the
	// owner unless the register is multi-writer.
	Write(pid int, v uint64)
	// Owner returns the writing process, or MultiWriter.
	Owner() int
	// Name returns the register's display name, e.g. "SUSPICIONS[2][3]".
	Name() string
}

// Mem allocates registers and carries the census shared by all registers it
// creates. A Mem instance represents one shared memory, i.e. one run.
type Mem interface {
	// Word allocates a fresh register. class is the register family
	// ("PROGRESS", "STOP", ...); idx are the paper's subscripts. owner is
	// the writing process or MultiWriter.
	Word(owner int, class string, idx ...int) Reg
	// Census returns the access census for all registers of this memory.
	// It may return nil if the implementation does not record accesses.
	Census() *Census
}

// Discarder is implemented by memories that can release a register's
// backing resources (census accounting, disk blocks) once the register
// is permanently dead. Recycling logs call it for the per-epoch
// registers of sealed, reclaimed slots; the register's name must never
// be allocated again afterwards. Memories without reclaimable backing
// simply do not implement it.
type Discarder interface {
	// Discard releases reg's backing resources.
	Discard(reg Reg)
}

// DiscardIfPossible releases reg's backing resources when mem supports
// reclamation.
func DiscardIfPossible(mem Mem, reg Reg) {
	if d, ok := mem.(Discarder); ok {
		d.Discard(reg)
	}
}

// RowAllocator is implemented by memories that can bulk-allocate rows
// of same-class registers: CLASS[tag][i] for i in [0, n), each owned by
// process i — the shape of one consensus instance's register arrays.
// Bulk allocation lets the implementation use one contiguous backing
// array for a whole block of rows, which matters on recycling logs: the
// window advances a checkpoint interval at a time and re-registers
// every reclaimed slot, so per-register allocation there is
// steady-state commit-path churn. Semantically WordRowBlock(class,
// tag0, k, n) is exactly the k*n Word calls Word(i, class, tag0+j, i);
// memories without a cheaper bulk path simply do not implement it.
type RowAllocator interface {
	// WordRowBlock allocates rows CLASS[tag0+j][0..n-1] for j in
	// [0, k); row j's register i is owned by process i.
	WordRowBlock(class string, tag0, k, n int) [][]Reg
}

// WordRow allocates one row of registers CLASS[tag][0..n-1] (register i
// owned by process i) through mem's bulk path when it has one, and
// register by register otherwise.
func WordRow(mem Mem, class string, tag, n int) []Reg {
	if ra, ok := mem.(RowAllocator); ok {
		return ra.WordRowBlock(class, tag, 1, n)[0]
	}
	row := make([]Reg, n)
	for i := range row {
		row[i] = mem.Word(i, class, tag, i)
	}
	return row
}

// WordRowBlock allocates k rows CLASS[tag0+j][0..n-1] through mem's
// bulk path when it has one, and row by row otherwise.
func WordRowBlock(mem Mem, class string, tag0, k, n int) [][]Reg {
	if ra, ok := mem.(RowAllocator); ok {
		return ra.WordRowBlock(class, tag0, k, n)
	}
	rows := make([][]Reg, k)
	for j := range rows {
		row := make([]Reg, n)
		for i := range row {
			row[i] = mem.Word(i, class, tag0+j, i)
		}
		rows[j] = row
	}
	return rows
}

// RegName renders the canonical display name of a register.
func RegName(class string, idx ...int) string {
	switch len(idx) {
	case 0:
		return class
	case 1:
		return fmt.Sprintf("%s[%d]", class, idx[0])
	case 2:
		return fmt.Sprintf("%s[%d][%d]", class, idx[0], idx[1])
	default:
		s := class
		for _, i := range idx {
			s += fmt.Sprintf("[%d]", i)
		}
		return s
	}
}

// Bool helpers: the paper's STOP, PROGRESS[i][k] and LAST[i][k] registers
// are boolean; we encode them in the low bit of the word.

// B2W encodes a boolean into a register word.
func B2W(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// W2B decodes a register word into a boolean.
func W2B(w uint64) bool { return w != 0 }
