package shmem

import (
	"testing"
	"testing/quick"
)

func TestRegName(t *testing.T) {
	tests := []struct {
		class string
		idx   []int
		want  string
	}{
		{"PROGRESS", nil, "PROGRESS"},
		{"PROGRESS", []int{3}, "PROGRESS[3]"},
		{"SUSPICIONS", []int{2, 7}, "SUSPICIONS[2][7]"},
		{"X", []int{1, 2, 3}, "X[1][2][3]"},
	}
	for _, tc := range tests {
		if got := RegName(tc.class, tc.idx...); got != tc.want {
			t.Errorf("RegName(%q, %v) = %q, want %q", tc.class, tc.idx, got, tc.want)
		}
	}
}

func TestBoolEncoding(t *testing.T) {
	if B2W(true) != 1 || B2W(false) != 0 {
		t.Fatalf("B2W broken: true=%d false=%d", B2W(true), B2W(false))
	}
	if !W2B(1) || W2B(0) {
		t.Fatalf("W2B broken")
	}
	if !W2B(42) {
		t.Errorf("W2B must treat any nonzero word as true")
	}
	// Round trip property.
	f := func(b bool) bool { return W2B(B2W(b)) == b }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimMemReadWrite(t *testing.T) {
	m := NewSimMem(3)
	r := m.Word(1, "PROGRESS", 1)
	if got := r.Read(0); got != 0 {
		t.Fatalf("fresh register reads %d, want 0", got)
	}
	r.Write(1, 42)
	if got := r.Read(2); got != 42 {
		t.Fatalf("read %d after write 42", got)
	}
	if r.Owner() != 1 {
		t.Errorf("Owner() = %d, want 1", r.Owner())
	}
	if r.Name() != "PROGRESS[1]" {
		t.Errorf("Name() = %q", r.Name())
	}
}

func TestSimMemOwnershipPanic(t *testing.T) {
	m := NewSimMem(3)
	r := m.Word(1, "STOP", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("write by non-owner must panic (1WnR discipline)")
		}
	}()
	r.Write(2, 1)
}

func TestMultiWriterAllowsAnyWriter(t *testing.T) {
	m := NewSimMem(3)
	r := m.Word(MultiWriter, "NSUSP", 0)
	r.Write(0, 1)
	r.Write(1, 2)
	r.Write(2, 3)
	if got := r.Read(0); got != 3 {
		t.Fatalf("read %d, want 3", got)
	}
}

func TestSeedDoesNotCountAsWrite(t *testing.T) {
	m := NewSimMem(2)
	r := m.Word(0, "PROGRESS", 0)
	SeedIfPossible(r, 99)
	if got := r.Read(1); got != 99 {
		t.Fatalf("seeded value not visible: %d", got)
	}
	snap := m.Census().Snapshot()
	rs := snap.Regs["PROGRESS[0]"]
	if rs.TotalWrites() != 0 {
		t.Errorf("seed counted as write: %d", rs.TotalWrites())
	}
	if rs.MaxValue != 99 {
		t.Errorf("seed not reflected in MaxValue: %d", rs.MaxValue)
	}
}

func TestWordSameNameSharesStats(t *testing.T) {
	m := NewSimMem(2)
	a := m.Word(0, "X", 0)
	b := m.Word(0, "X", 0)
	a.Write(0, 1)
	b.Write(0, 2)
	snap := m.Census().Snapshot()
	if got := snap.Regs["X[0]"].TotalWrites(); got != 2 {
		t.Errorf("same-name registers must share census stats: writes=%d, want 2", got)
	}
}
