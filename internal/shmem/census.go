package shmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Census records every shared-memory access of a run, attributed to the
// accessing process, together with the largest value ever stored in each
// register. It is the measurement substrate behind the paper's
// write-efficiency and boundedness results:
//
//   - Theorem 3 / Theorem 7: after stabilization only specific registers
//     are still written, by specific processes (WritersSince, WritesSince).
//   - Theorem 2 / Theorem 6: all (or all-but-one) registers have a bounded
//     domain (MaxValue, Bits, TotalBits).
//   - Lemmas 5 and 6: the leader writes forever, everyone else reads
//     forever (ReadsSince).
//
// Census is safe for concurrent use; the simulation scheduler serializes
// accesses anyway, while the live runtime pays the lock.
type Census struct {
	mu   sync.Mutex
	n    int
	regs map[string]*RegStats
	// clock returns the current logical or real time used to timestamp
	// accesses. The scheduler installs its virtual clock; the live runtime
	// installs a monotonic nanosecond clock.
	clock func() int64
	// logClasses enables per-write event logging for the named register
	// classes (used by the Figure 3 write-gap experiment).
	logClasses map[string]bool
	writeLog   []WriteEvent
}

// WriteEvent is one logged write, for classes enabled via LogWrites.
type WriteEvent struct {
	T     int64
	Name  string
	Class string
	Pid   int
	Value uint64
}

// RegStats is the per-register slice of the census.
type RegStats struct {
	Class string
	Name  string
	Owner int
	// ReadsBy[p] and WritesBy[p] count accesses by process p.
	ReadsBy  []uint64
	WritesBy []uint64
	// MaxValue is the largest word ever stored (including the initial
	// value if SeedValue was called).
	MaxValue uint64
	// LastWrite is the timestamp of the most recent write, in census
	// clock units; -1 if never written.
	LastWrite int64
	// DistinctValues counts value changes observed at write time; a
	// register whose writes never change the value still counts writes
	// but not distinct values.
	DistinctValues uint64
	lastValue      uint64
	everWritten    bool
}

// NewCensus creates a census for n processes. clock may be nil, in which
// case all timestamps are 0.
func NewCensus(n int, clock func() int64) *Census {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Census{
		n:     n,
		regs:  make(map[string]*RegStats),
		clock: clock,
	}
}

// SetClock replaces the census timestamp source. The scheduler calls this
// once it owns the memory.
func (c *Census) SetClock(clock func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if clock != nil {
		c.clock = clock
	}
}

// N returns the number of processes the census attributes accesses to.
func (c *Census) N() int { return c.n }

// LogWrites enables per-write event logging for the given register
// classes. Call before the run starts.
func (c *Census) LogWrites(classes ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.logClasses == nil {
		c.logClasses = make(map[string]bool)
	}
	for _, cl := range classes {
		c.logClasses[cl] = true
	}
}

// WriteLog returns a copy of the logged write events, in order.
func (c *Census) WriteLog() []WriteEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]WriteEvent(nil), c.writeLog...)
}

// Track registers (or returns the existing) per-register stats slot for a
// register. Substrate implementations outside this package (e.g. the SAN
// replicated registers) call Track at allocation and then attribute
// accesses via NoteRead / NoteWrite.
func (c *Census) Track(class, name string, owner int) *RegStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.regs[name]; ok {
		return st
	}
	st := &RegStats{
		Class:     class,
		Name:      name,
		Owner:     owner,
		ReadsBy:   make([]uint64, c.n),
		WritesBy:  make([]uint64, c.n),
		LastWrite: -1,
	}
	c.regs[name] = st
	return st
}

// NoteRead attributes one read of the tracked register to process pid.
func (c *Census) NoteRead(st *RegStats, pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pid >= 0 && pid < len(st.ReadsBy) {
		st.ReadsBy[pid]++
	}
}

// NoteWrite attributes one write of value v to process pid and updates
// the register's domain statistics.
func (c *Census) NoteWrite(st *RegStats, pid int, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pid >= 0 && pid < len(st.WritesBy) {
		st.WritesBy[pid]++
	}
	if v > st.MaxValue {
		st.MaxValue = v
	}
	if !st.everWritten || v != st.lastValue {
		st.DistinctValues++
	}
	st.everWritten = true
	st.lastValue = v
	st.LastWrite = c.clock()
	if c.logClasses[st.Class] {
		c.writeLog = append(c.writeLog, WriteEvent{
			T: st.LastWrite, Name: st.Name, Class: st.Class, Pid: pid, Value: v,
		})
	}
}

// SeedValue records an initial register value so boundedness verdicts
// account for arbitrary initial values (the paper's self-stabilization
// footnote 7). It does not count as a write.
func (c *Census) SeedValue(st *RegStats, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v > st.MaxValue {
		st.MaxValue = v
	}
	st.lastValue = v
}

// Snapshot returns a deep copy of the census at this instant. Experiments
// snapshot at the stabilization time and diff against the final state.
func (c *Census) Snapshot() *CensusSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &CensusSnapshot{
		N:    c.n,
		Regs: make(map[string]RegSnapshot, len(c.regs)),
	}
	for name, st := range c.regs {
		rs := RegSnapshot{
			Class:          st.Class,
			Name:           name,
			Owner:          st.Owner,
			ReadsBy:        append([]uint64(nil), st.ReadsBy...),
			WritesBy:       append([]uint64(nil), st.WritesBy...),
			MaxValue:       st.MaxValue,
			LastWrite:      st.LastWrite,
			DistinctValues: st.DistinctValues,
		}
		snap.Regs[name] = rs
	}
	return snap
}

// CensusSnapshot is an immutable copy of a Census.
type CensusSnapshot struct {
	N    int
	Regs map[string]RegSnapshot
}

// RegSnapshot is an immutable copy of RegStats.
type RegSnapshot struct {
	Class          string
	Name           string
	Owner          int
	ReadsBy        []uint64
	WritesBy       []uint64
	MaxValue       uint64
	LastWrite      int64
	DistinctValues uint64
}

// Bits returns the number of bits needed to hold the largest value ever
// stored in the register (at least 1).
func (r RegSnapshot) Bits() int {
	b := bits.Len64(r.MaxValue)
	if b == 0 {
		return 1
	}
	return b
}

// TotalReads returns reads summed over all processes.
func (r RegSnapshot) TotalReads() uint64 { return sum(r.ReadsBy) }

// TotalWrites returns writes summed over all processes.
func (r RegSnapshot) TotalWrites() uint64 { return sum(r.WritesBy) }

func sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// Diff describes the accesses that happened between an earlier snapshot
// and a later one (later minus earlier, register by register).
func (s *CensusSnapshot) Diff(earlier *CensusSnapshot) *CensusSnapshot {
	out := &CensusSnapshot{N: s.N, Regs: make(map[string]RegSnapshot, len(s.Regs))}
	for name, now := range s.Regs {
		before, ok := earlier.Regs[name]
		d := RegSnapshot{
			Class:          now.Class,
			Name:           name,
			Owner:          now.Owner,
			ReadsBy:        make([]uint64, len(now.ReadsBy)),
			WritesBy:       make([]uint64, len(now.WritesBy)),
			MaxValue:       now.MaxValue,
			LastWrite:      now.LastWrite,
			DistinctValues: now.DistinctValues,
		}
		for p := range now.ReadsBy {
			d.ReadsBy[p] = now.ReadsBy[p]
			d.WritesBy[p] = now.WritesBy[p]
			if ok && p < len(before.ReadsBy) {
				d.ReadsBy[p] -= before.ReadsBy[p]
				d.WritesBy[p] -= before.WritesBy[p]
			}
		}
		if ok {
			d.DistinctValues -= before.DistinctValues
		}
		out.Regs[name] = d
	}
	return out
}

// Writers returns the set of processes with at least one write in the
// snapshot, sorted ascending. For a diff snapshot this is the paper's
// "processes that write after stabilization" census.
func (s *CensusSnapshot) Writers() []int {
	seen := make(map[int]bool)
	for _, r := range s.Regs {
		for p, w := range r.WritesBy {
			if w > 0 {
				seen[p] = true
			}
		}
	}
	return sortedKeys(seen)
}

// Readers returns the set of processes with at least one read, sorted.
func (s *CensusSnapshot) Readers() []int {
	seen := make(map[int]bool)
	for _, r := range s.Regs {
		for p, rd := range r.ReadsBy {
			if rd > 0 {
				seen[p] = true
			}
		}
	}
	return sortedKeys(seen)
}

// WrittenRegisters returns the names of registers with at least one write,
// sorted. On a diff snapshot this identifies which variables are still
// being written after stabilization (Theorem 3: only PROGRESS[ell];
// Theorem 7: only PROGRESS[ell][*] and LAST[ell][*]).
func (s *CensusSnapshot) WrittenRegisters() []string {
	var names []string
	for name, r := range s.Regs {
		if r.TotalWrites() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ChangedRegisters returns the names of registers whose *value changed*
// at least once in the snapshot window, sorted. Rewrites of an identical
// value (e.g. the leader re-asserting STOP=false) do not count.
func (s *CensusSnapshot) ChangedRegisters() []string {
	var names []string
	for name, r := range s.Regs {
		if r.DistinctValues > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ClassBits sums Bits over all registers of the given class.
func (s *CensusSnapshot) ClassBits(class string) int {
	total := 0
	for _, r := range s.Regs {
		if r.Class == class {
			total += r.Bits()
		}
	}
	return total
}

// TotalBits sums Bits over every register: the shared-memory footprint in
// the sense of the paper's bounded-memory model (Section 4.1).
func (s *CensusSnapshot) TotalBits() int {
	total := 0
	for _, r := range s.Regs {
		total += r.Bits()
	}
	return total
}

// MaxBitsOutside returns the largest Bits() over registers that are NOT of
// the named class, used to check "all variables but PROGRESS[ell] are
// bounded" style claims.
func (s *CensusSnapshot) MaxBitsOutside(exceptName string) (string, int) {
	best, bestName := 0, ""
	for name, r := range s.Regs {
		if name == exceptName {
			continue
		}
		if b := r.Bits(); b > best {
			best = b
			bestName = name
		}
	}
	return bestName, best
}

// Classes returns the distinct register classes present, sorted.
func (s *CensusSnapshot) Classes() []string {
	seen := make(map[string]bool)
	for _, r := range s.Regs {
		seen[r.Class] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders a compact human-readable census table.
func (s *CensusSnapshot) String() string {
	names := make([]string, 0, len(s.Regs))
	for n := range s.Regs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		r := s.Regs[n]
		out += fmt.Sprintf("%-22s owner=%2d reads=%6d writes=%6d max=%d bits=%d\n",
			n, r.Owner, r.TotalReads(), r.TotalWrites(), r.MaxValue, r.Bits())
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
