package shmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Census records every shared-memory access of a run, attributed to the
// accessing process, together with the largest value ever stored in each
// register. It is the measurement substrate behind the paper's
// write-efficiency and boundedness results:
//
//   - Theorem 3 / Theorem 7: after stabilization only specific registers
//     are still written, by specific processes (WritersSince, WritesSince).
//   - Theorem 2 / Theorem 6: all (or all-but-one) registers have a bounded
//     domain (MaxValue, Bits, TotalBits).
//   - Lemmas 5 and 6: the leader writes forever, everyone else reads
//     forever (ReadsSince).
//
// Census is safe for concurrent use and its hot paths are lock-free: each
// register carries per-process cache-line-padded atomic counters, the
// maximum value is raised by a CAS loop, and the write-event log is
// sharded per process. Snapshot (and the cold registration/configuration
// paths Track and LogWrites) are the only operations that take a lock;
// SetClock is an atomic pointer swap, and NoteRead and NoteWrite never
// block, so N instrumented processes scale instead of serializing on a
// global mutex.
//
// Consistency model: counters are individually atomic but a Snapshot taken
// while writers are running is not a single linearization point across
// registers. The deterministic simulator serializes all accesses on one
// goroutine, so its snapshots remain exact; live-runtime snapshots are
// taken at quiescent or approximate instants, which is all the experiments
// need. For multi-writer (nWnR) registers the DistinctValues counter is a
// best-effort approximation under true concurrency; for the paper's 1WnR
// registers (a single writing process) it is exact.
type Census struct {
	n int
	// mu guards the registration map; it is taken by Track (allocation
	// time), Snapshot (to walk the map), and the pre-run configuration
	// calls. Never on an access path.
	mu   sync.Mutex
	regs map[string]*RegStats
	// clock returns the current logical or real time used to timestamp
	// accesses. The scheduler installs its virtual clock; the live runtime
	// installs a monotonic nanosecond clock. Swapped atomically so
	// NoteWrite can call it without locking.
	clock atomic.Pointer[func() int64]
	// logClasses enables per-write event logging for the named register
	// classes (used by the Figure 3 write-gap experiment). Replaced
	// copy-on-write by LogWrites.
	logClasses atomic.Pointer[map[string]bool]
	// seq is the global order of logged write events: each logged write
	// draws a ticket, so the per-process shards can be merged back into
	// the exact global sequence.
	seq    atomic.Uint64
	shards []logShard
}

// logShard is one process's slice of the write-event log. Appends by
// different processes go to different shards, so the only lock contention
// is between tasks of the same process (which the runtime already
// serializes). Padded so adjacent shards do not share a cache line.
type logShard struct {
	mu     sync.Mutex
	events []WriteEvent
	_      [32]byte // mutex (8) + slice header (24) + 32 = one 64-byte line
}

// WriteEvent is one logged write, for classes enabled via LogWrites.
type WriteEvent struct {
	T     int64
	Name  string
	Class string
	Pid   int
	Value uint64
	// seq is the event's global-order ticket, used to merge the
	// per-process shards back into one totally ordered log.
	seq uint64
}

// counter is a cache-line-padded atomic counter: per-process counters for
// the same register live in one slice, and without padding neighboring
// processes' increments would false-share a line and serialize in the
// cache-coherence protocol.
type counter struct {
	v atomic.Uint64
	_ [56]byte
}

// RegStats is the per-register slice of the census. All fields written on
// the access path are atomic; the identity fields are immutable after
// Track.
type RegStats struct {
	Class string
	Name  string
	Owner int
	// reads[p] and writes[p] count accesses by process p.
	reads  []counter
	writes []counter
	// maxValue is the largest word ever stored (including the initial
	// value if SeedValue was called); raised by CAS.
	maxValue atomic.Uint64
	// lastWrite is the timestamp of the most recent write, in census clock
	// units; -1 if never written.
	lastWrite atomic.Int64
	// distinct counts value changes observed at write time; a register
	// whose writes never change the value still counts writes but not
	// distinct values.
	distinct    atomic.Uint64
	lastValue   atomic.Uint64
	everWritten atomic.Bool
}

// NewCensus creates a census for n processes. clock may be nil, in which
// case all timestamps are 0.
func NewCensus(n int, clock func() int64) *Census {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	c := &Census{
		n:    n,
		regs: make(map[string]*RegStats),
		// One shard per process plus one overflow shard for out-of-range
		// pids (e.g. adversarial test writers).
		shards: make([]logShard, n+1),
	}
	c.clock.Store(&clock)
	return c
}

// Forget drops a register's accounting from the census. Recycling logs
// call it (through Mem.Discard) for the per-epoch registers of sealed,
// reclaimed slots, so a census over an unbounded write stream stays
// bounded by the live window instead of growing with history. Forgetting
// a register removes it from future Snapshots entirely.
func (c *Census) Forget(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.regs, name)
}

// SetClock replaces the census timestamp source. The scheduler calls this
// once it owns the memory.
func (c *Census) SetClock(clock func() int64) {
	if clock != nil {
		c.clock.Store(&clock)
	}
}

// N returns the number of processes the census attributes accesses to.
func (c *Census) N() int { return c.n }

// LogWrites enables per-write event logging for the given register
// classes. Call before the run starts.
func (c *Census) LogWrites(classes ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[string]bool)
	if old := c.logClasses.Load(); old != nil {
		for k, v := range *old {
			m[k] = v
		}
	}
	for _, cl := range classes {
		m[cl] = true
	}
	c.logClasses.Store(&m)
}

// shard returns the write-log shard for pid.
func (c *Census) shard(pid int) *logShard {
	if pid >= 0 && pid < c.n {
		return &c.shards[pid]
	}
	return &c.shards[c.n]
}

// WriteLog returns a copy of the logged write events, merged across the
// per-process shards into global order.
func (c *Census) WriteLog() []WriteEvent {
	var all []WriteEvent
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

// Track registers (or returns the existing) per-register stats slot for a
// register. Substrate implementations outside this package (e.g. the SAN
// replicated registers) call Track at allocation and then attribute
// accesses via NoteRead / NoteWrite.
func (c *Census) Track(class, name string, owner int) *RegStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.regs[name]; ok {
		return st
	}
	st := &RegStats{
		Class:  class,
		Name:   name,
		Owner:  owner,
		reads:  make([]counter, c.n),
		writes: make([]counter, c.n),
	}
	st.lastWrite.Store(-1)
	c.regs[name] = st
	return st
}

// NoteRead attributes one read of the tracked register to process pid.
// Lock-free: a single padded atomic increment.
func (c *Census) NoteRead(st *RegStats, pid int) {
	if pid >= 0 && pid < len(st.reads) {
		st.reads[pid].v.Add(1)
	}
}

// NoteWrite attributes one write of value v to process pid and updates
// the register's domain statistics. Lock-free unless the register's class
// is being event-logged (then only the writer's own shard lock is taken).
func (c *Census) NoteWrite(st *RegStats, pid int, v uint64) {
	if pid >= 0 && pid < len(st.writes) {
		st.writes[pid].v.Add(1)
	}
	raiseMax(&st.maxValue, v)
	if !st.everWritten.Load() || st.lastValue.Load() != v {
		st.distinct.Add(1)
	}
	st.lastValue.Store(v)
	if !st.everWritten.Load() {
		st.everWritten.Store(true)
	}
	t := (*c.clock.Load())()
	st.lastWrite.Store(t)
	if lc := c.logClasses.Load(); lc != nil && (*lc)[st.Class] {
		ev := WriteEvent{
			T: t, Name: st.Name, Class: st.Class, Pid: pid, Value: v,
			seq: c.seq.Add(1),
		}
		sh := c.shard(pid)
		sh.mu.Lock()
		sh.events = append(sh.events, ev)
		sh.mu.Unlock()
	}
}

// raiseMax lifts m to at least v with a CAS loop.
func raiseMax(m *atomic.Uint64, v uint64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SeedValue records an initial register value so boundedness verdicts
// account for arbitrary initial values (the paper's self-stabilization
// footnote 7). It does not count as a write.
func (c *Census) SeedValue(st *RegStats, v uint64) {
	raiseMax(&st.maxValue, v)
	st.lastValue.Store(v)
}

// snapshotReg atomically loads one register's counters into an immutable
// copy.
func snapshotReg(st *RegStats) RegSnapshot {
	rs := RegSnapshot{
		Class:          st.Class,
		Name:           st.Name,
		Owner:          st.Owner,
		ReadsBy:        make([]uint64, len(st.reads)),
		WritesBy:       make([]uint64, len(st.writes)),
		MaxValue:       st.maxValue.Load(),
		LastWrite:      st.lastWrite.Load(),
		DistinctValues: st.distinct.Load(),
	}
	for p := range st.reads {
		rs.ReadsBy[p] = st.reads[p].v.Load()
		rs.WritesBy[p] = st.writes[p].v.Load()
	}
	return rs
}

// Snapshot returns a deep copy of the census at this instant. Experiments
// snapshot at the stabilization time and diff against the final state.
// This is the census's one synchronizing operation: it briefly locks the
// registration map to walk it, then atomically loads every counter.
func (c *Census) Snapshot() *CensusSnapshot {
	c.mu.Lock()
	regs := make([]*RegStats, 0, len(c.regs))
	for _, st := range c.regs {
		regs = append(regs, st)
	}
	c.mu.Unlock()
	snap := &CensusSnapshot{
		N:    c.n,
		Regs: make(map[string]RegSnapshot, len(regs)),
	}
	for _, st := range regs {
		snap.Regs[st.Name] = snapshotReg(st)
	}
	return snap
}

// CensusSnapshot is an immutable copy of a Census.
type CensusSnapshot struct {
	N    int
	Regs map[string]RegSnapshot
}

// RegSnapshot is an immutable copy of RegStats.
type RegSnapshot struct {
	Class          string
	Name           string
	Owner          int
	ReadsBy        []uint64
	WritesBy       []uint64
	MaxValue       uint64
	LastWrite      int64
	DistinctValues uint64
}

// Bits returns the number of bits needed to hold the largest value ever
// stored in the register (at least 1).
func (r RegSnapshot) Bits() int {
	b := bits.Len64(r.MaxValue)
	if b == 0 {
		return 1
	}
	return b
}

// TotalReads returns reads summed over all processes.
func (r RegSnapshot) TotalReads() uint64 { return sum(r.ReadsBy) }

// TotalWrites returns writes summed over all processes.
func (r RegSnapshot) TotalWrites() uint64 { return sum(r.WritesBy) }

func sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

// Diff describes the accesses that happened between an earlier snapshot
// and a later one (later minus earlier, register by register).
func (s *CensusSnapshot) Diff(earlier *CensusSnapshot) *CensusSnapshot {
	out := &CensusSnapshot{N: s.N, Regs: make(map[string]RegSnapshot, len(s.Regs))}
	for name, now := range s.Regs {
		before, ok := earlier.Regs[name]
		d := RegSnapshot{
			Class:          now.Class,
			Name:           name,
			Owner:          now.Owner,
			ReadsBy:        make([]uint64, len(now.ReadsBy)),
			WritesBy:       make([]uint64, len(now.WritesBy)),
			MaxValue:       now.MaxValue,
			LastWrite:      now.LastWrite,
			DistinctValues: now.DistinctValues,
		}
		for p := range now.ReadsBy {
			d.ReadsBy[p] = now.ReadsBy[p]
			d.WritesBy[p] = now.WritesBy[p]
			if ok && p < len(before.ReadsBy) {
				d.ReadsBy[p] -= before.ReadsBy[p]
				d.WritesBy[p] -= before.WritesBy[p]
			}
		}
		if ok {
			d.DistinctValues -= before.DistinctValues
		}
		out.Regs[name] = d
	}
	return out
}

// Writers returns the set of processes with at least one write in the
// snapshot, sorted ascending. For a diff snapshot this is the paper's
// "processes that write after stabilization" census.
func (s *CensusSnapshot) Writers() []int {
	seen := make(map[int]bool)
	for _, r := range s.Regs {
		for p, w := range r.WritesBy {
			if w > 0 {
				seen[p] = true
			}
		}
	}
	return sortedKeys(seen)
}

// Readers returns the set of processes with at least one read, sorted.
func (s *CensusSnapshot) Readers() []int {
	seen := make(map[int]bool)
	for _, r := range s.Regs {
		for p, rd := range r.ReadsBy {
			if rd > 0 {
				seen[p] = true
			}
		}
	}
	return sortedKeys(seen)
}

// WrittenRegisters returns the names of registers with at least one write,
// sorted. On a diff snapshot this identifies which variables are still
// being written after stabilization (Theorem 3: only PROGRESS[ell];
// Theorem 7: only PROGRESS[ell][*] and LAST[ell][*]).
func (s *CensusSnapshot) WrittenRegisters() []string {
	var names []string
	for name, r := range s.Regs {
		if r.TotalWrites() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ChangedRegisters returns the names of registers whose *value changed*
// at least once in the snapshot window, sorted. Rewrites of an identical
// value (e.g. the leader re-asserting STOP=false) do not count.
func (s *CensusSnapshot) ChangedRegisters() []string {
	var names []string
	for name, r := range s.Regs {
		if r.DistinctValues > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ClassBits sums Bits over all registers of the given class.
func (s *CensusSnapshot) ClassBits(class string) int {
	total := 0
	for _, r := range s.Regs {
		if r.Class == class {
			total += r.Bits()
		}
	}
	return total
}

// TotalBits sums Bits over every register: the shared-memory footprint in
// the sense of the paper's bounded-memory model (Section 4.1).
func (s *CensusSnapshot) TotalBits() int {
	total := 0
	for _, r := range s.Regs {
		total += r.Bits()
	}
	return total
}

// MaxBitsOutside returns the largest Bits() over registers that are NOT of
// the named class, used to check "all variables but PROGRESS[ell] are
// bounded" style claims.
func (s *CensusSnapshot) MaxBitsOutside(exceptName string) (string, int) {
	best, bestName := 0, ""
	for name, r := range s.Regs {
		if name == exceptName {
			continue
		}
		if b := r.Bits(); b > best {
			best = b
			bestName = name
		}
	}
	return bestName, best
}

// Classes returns the distinct register classes present, sorted.
func (s *CensusSnapshot) Classes() []string {
	seen := make(map[string]bool)
	for _, r := range s.Regs {
		seen[r.Class] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders a compact human-readable census table.
func (s *CensusSnapshot) String() string {
	names := make([]string, 0, len(s.Regs))
	for n := range s.Regs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		r := s.Regs[n]
		out += fmt.Sprintf("%-22s owner=%2d reads=%6d writes=%6d max=%d bits=%d\n",
			n, r.Owner, r.TotalReads(), r.TotalWrites(), r.MaxValue, r.Bits())
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
