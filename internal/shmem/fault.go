package shmem

import (
	"math/rand"

	"omegasm/internal/vclock"
)

// FaultConfig tunes the gray-failure read anomalies a FaultMem injects.
// All probabilities are per read; everything draws from one seeded rng so
// runs stay deterministic.
type FaultConfig struct {
	// StaleReadP is the probability that a read landing within
	// StaleWindow ticks of the register's last write observes the
	// previous value instead of the current one. This degrades the
	// register from atomic to regular: a read concurrent-ish with a
	// write may return either the old or the new value, never a third.
	StaleReadP float64
	// StaleWindow bounds, in virtual ticks after a write, how long reads
	// of that register may still observe the overwritten value.
	StaleWindow int64
	// PartialViewP is the probability that a read freezes the reader's
	// view of the register: for the next PartialViewLen ticks that
	// process re-reads the frozen value while writes keep landing
	// underneath — partial census visibility, the gray-failure analogue
	// of a process whose SAN path serves cached blocks.
	PartialViewP float64
	// PartialViewLen is the freeze duration in virtual ticks.
	PartialViewLen int64
	// Classes restricts injection to the named register classes; nil
	// injects everywhere. Restricting to the election classes keeps the
	// consensus registers atomic, so a checker hit is a real algorithm
	// weakness rather than a broken Paxos substrate.
	Classes map[string]bool
}

// FaultMem wraps an inner Mem and injects deterministic read anomalies on
// the registers of the configured classes. Writes always reach the inner
// register unchanged — faults here are observation faults (staleness,
// frozen views), matching gray failures where the store is healthy but
// some readers see the past. It is single-goroutine only, like SimMem.
type FaultMem struct {
	inner Mem
	cfg   FaultConfig
	now   func() vclock.Time
	rng   *rand.Rand
}

var _ Mem = (*FaultMem)(nil)
var _ Discarder = (*FaultMem)(nil)

// NewFaultMem wraps inner with the fault injector. now supplies the
// current virtual time (the sim engine's clock) and rng is the run's
// seeded randomness source; both must come from the deterministic run.
func NewFaultMem(inner Mem, cfg FaultConfig, now func() vclock.Time, rng *rand.Rand) *FaultMem {
	return &FaultMem{inner: inner, cfg: cfg, now: now, rng: rng}
}

// Word allocates a register through the inner memory and, when its class
// is eligible, wraps it with the fault injector.
func (m *FaultMem) Word(owner int, class string, idx ...int) Reg {
	r := m.inner.Word(owner, class, idx...)
	if m.cfg.Classes != nil && !m.cfg.Classes[class] {
		return r
	}
	return &faultReg{inner: r, m: m, frozen: make(map[int]frozenView), lastWriteAt: -1}
}

// Census returns the inner memory's census (fault reads still attribute
// their access there, so censuses stay exact).
func (m *FaultMem) Census() *Census { return m.inner.Census() }

// Discard unwraps the register and forwards to the inner memory when it
// supports reclamation.
func (m *FaultMem) Discard(reg Reg) {
	if fr, ok := reg.(*faultReg); ok {
		reg = fr.inner
	}
	DiscardIfPossible(m.inner, reg)
}

// frozenView is one reader's stuck observation of a register.
type frozenView struct {
	val   uint64
	until vclock.Time
}

// faultReg shadows the inner register's current and previous values so it
// can serve regular-but-stale reads and per-reader frozen views without
// touching the inner word.
type faultReg struct {
	inner       Reg
	m           *FaultMem
	cur, prev   uint64
	lastWriteAt vclock.Time // -1: never written
	frozen      map[int]frozenView
}

var _ Reg = (*faultReg)(nil)
var _ Seeder = (*faultReg)(nil)

func (r *faultReg) Read(pid int) uint64 {
	v := r.inner.Read(pid) // census attribution first, always
	now := r.m.now()
	if fv, ok := r.frozen[pid]; ok {
		if now < fv.until {
			return fv.val
		}
		delete(r.frozen, pid)
	}
	cfg := &r.m.cfg
	if cfg.PartialViewP > 0 && cfg.PartialViewLen > 0 && r.m.rng.Float64() < cfg.PartialViewP {
		r.frozen[pid] = frozenView{val: v, until: now + vclock.Time(cfg.PartialViewLen)}
		return v
	}
	if cfg.StaleReadP > 0 && r.lastWriteAt >= 0 &&
		now-r.lastWriteAt <= vclock.Time(cfg.StaleWindow) &&
		r.m.rng.Float64() < cfg.StaleReadP {
		return r.prev
	}
	return v
}

func (r *faultReg) Write(pid int, v uint64) {
	r.prev = r.cur
	r.cur = v
	r.lastWriteAt = r.m.now()
	r.inner.Write(pid, v)
}

func (r *faultReg) Owner() int   { return r.inner.Owner() }
func (r *faultReg) Name() string { return r.inner.Name() }

// Seed forwards an arbitrary initial value to the inner register and
// resets the shadow so stale reads never resurrect a pre-seed zero.
func (r *faultReg) Seed(v uint64) {
	r.cur = v
	r.prev = v
	SeedIfPossible(r.inner, v)
}
