package core

import (
	"testing"

	"omegasm/internal/shmem"
)

func algo2Fixture(n int) (*shmem.SimMem, *Shared2, []*Algo2) {
	mem := shmem.NewSimMem(n)
	sh := NewShared2(mem, n)
	procs := make([]*Algo2, n)
	for i := range procs {
		procs[i] = NewAlgo2(sh, i)
	}
	return mem, sh, procs
}

func TestAlgo2InitialHandshakeState(t *testing.T) {
	_, sh, _ := algo2Fixture(3)
	// Paper initial values: all booleans true, so PROGRESS == LAST
	// everywhere: every pair starts "signalled alive".
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			p := sh.Progress[i][k].Read(0)
			l := sh.Last[i][k].Read(0)
			if p != l {
				t.Fatalf("PROGRESS[%d][%d]=%d != LAST[%d][%d]=%d initially", i, k, p, i, k, l)
			}
		}
	}
}

func TestAlgo2RegisterOwnership(t *testing.T) {
	_, sh, _ := algo2Fixture(3)
	// PROGRESS[i][k] is owned by the signaller i; LAST[i][k] by the
	// watcher k (the handshake's defining asymmetry).
	if got := sh.Progress[1][2].Owner(); got != 1 {
		t.Errorf("PROGRESS[1][2] owner = %d, want 1", got)
	}
	if got := sh.Last[1][2].Owner(); got != 2 {
		t.Errorf("LAST[1][2] owner = %d, want 2", got)
	}
}

func TestAlgo2HandshakeRoundTrip(t *testing.T) {
	_, sh, procs := algo2Fixture(2)
	p0, p1 := procs[0], procs[1]

	// Step 1: watcher p1 consumes the initial signal from p0 and
	// acknowledges: LAST[0][1] flips to differ from PROGRESS[0][1].
	p1.OnTimer(0)
	if !p1.candidates[0] {
		t.Fatal("initial signal must mark p0 as candidate")
	}
	if sh.Progress[0][1].Read(1) == sh.Last[0][1].Read(1) {
		t.Fatal("acknowledgement must cancel the signal (make the pair differ)")
	}

	// Step 2: with the signal cancelled and STOP[0] still true (p0 has
	// not competed yet), the next check withdraws p0 without suspicion.
	p1.OnTimer(0)
	if p1.candidates[0] {
		t.Fatal("unsignalled stopped process must be withdrawn")
	}
	if got := sh.Suspicions[1][0].Read(0); got != 0 {
		t.Fatalf("withdrawal counted as suspicion: %d", got)
	}

	// Step 3: p0 competes (it believes it leads): its step re-signals p1
	// by copying the acknowledgement value back (line 8.R2) and clears
	// STOP[0].
	p0.Step(0)
	if sh.Progress[0][1].Read(1) != sh.Last[0][1].Read(1) {
		t.Fatal("leader step must re-signal (make the pair equal)")
	}

	// Step 4: watcher sees the fresh signal, re-adds and re-acknowledges.
	p1.OnTimer(0)
	if !p1.candidates[0] {
		t.Fatal("fresh signal must re-add p0")
	}
	if sh.Progress[0][1].Read(1) == sh.Last[0][1].Read(1) {
		t.Fatal("second acknowledgement must cancel again")
	}
}

func TestAlgo2CrashedLeaderSuspectedOnce(t *testing.T) {
	_, sh, procs := algo2Fixture(2)
	p0, p1 := procs[0], procs[1]
	p0.Step(0)    // p0 competes: signal up, STOP[0] false
	p1.OnTimer(0) // p1 sees signal, acks
	// p0 "crashes" now (we simply stop stepping it): no more re-signals,
	// STOP[0] remains false.
	p1.OnTimer(0) // no signal, STOP false, candidate => suspicion
	if got := sh.Suspicions[1][0].Read(0); got != 1 {
		t.Fatalf("SUSPICIONS[1][0] = %d, want 1", got)
	}
	if p1.candidates[0] {
		t.Fatal("suspected process must be removed")
	}
	// Further checks must not inflate the suspicion count (bounded
	// SUSPICIONS, Theorem 6).
	for i := 0; i < 10; i++ {
		p1.OnTimer(0)
	}
	if got := sh.Suspicions[1][0].Read(0); got != 1 {
		t.Fatalf("SUSPICIONS[1][0] grew to %d for a crashed process", got)
	}
}

func TestAlgo2AllRegistersBoolean(t *testing.T) {
	mem, _, procs := algo2Fixture(3)
	// Drive a few hundred task executions and verify every handshake and
	// stop register stays in a 1-bit domain (Theorem 6's easy half).
	for i := 0; i < 300; i++ {
		for _, p := range procs {
			p.Step(0)
			if i%3 == 0 {
				p.OnTimer(0)
			}
		}
	}
	snap := mem.Census().Snapshot()
	for name, r := range snap.Regs {
		if r.Class == ClassProgress || r.Class == ClassLast || r.Class == ClassStop {
			if r.Bits() > 1 {
				t.Errorf("%s widened beyond 1 bit (max=%d)", name, r.MaxValue)
			}
		}
	}
}

func TestAlgo2LeaderQueryCached(t *testing.T) {
	mem, _, procs := algo2Fixture(3)
	procs[0].Step(0)
	before := mem.Census().Snapshot()
	for i := 0; i < 50; i++ {
		_ = procs[1].Leader()
	}
	d := mem.Census().Snapshot().Diff(before)
	var reads uint64
	for _, r := range d.Regs {
		reads += r.TotalReads()
	}
	if reads != 0 {
		t.Fatalf("Leader() performed %d register reads", reads)
	}
}

func TestAlgo2TimeoutValue(t *testing.T) {
	_, _, procs := algo2Fixture(3)
	p1 := procs[1]
	p1.mySusp[0], p1.mySusp[2] = 2, 7
	if got := p1.OnTimer(0); got != 8 {
		t.Fatalf("timeout = %d, want 8", got)
	}
}

func TestBuildAlgo2SharesMemory(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := BuildAlgo2(mem, 3)
	procs[0].Step(0) // signals everyone
	// Watcher 2 must observe the signal from process 0.
	if got := procs[2].sh.Progress[0][2].Read(2); got != procs[2].sh.Last[0][2].Read(2) {
		t.Fatal("signal from builder-shared memory not visible")
	}
}
