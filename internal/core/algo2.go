package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Shared2 is the shared memory of Algorithm 2 (paper Figure 5). The
// unbounded PROGRESS[i] counter of Algorithm 1 is replaced by a per-pair
// boolean handshake:
//
//   - PROGRESS[i][k]: boolean, owned by the signaller p_i. p_i signals
//     "I am alive" to p_k by setting PROGRESS[i][k] equal to LAST[i][k].
//   - LAST[i][k]: boolean, owned by the *watcher* p_k. p_k acknowledges
//     (cancels) the signal by flipping LAST[i][k] to the negation of the
//     PROGRESS[i][k] value it just read.
//
// Signal present  <=>  PROGRESS[i][k] == LAST[i][k].
//
// Reconstruction note: the source text of the report renders lines 17.R1
// and 19.R1 with the comparison and negation glyphs lost. The prose
// ("to signal p_k that it is alive, p_i sets PROGRESS[i][k] equal to
// LAST[i][k]; p_k indicates that it has seen this signal by cancelling
// it") uniquely determines the protocol up to the polarity of "signal
// present": cancelling must make the pair differ, re-signalling must make
// it equal again. The encoding here follows that reading; the symmetric
// encoding (signal = inequality) is behaviorally identical.
//
// SUSPICIONS and STOP are exactly as in Algorithm 1. Every shared variable
// is bounded: the booleans trivially, SUSPICIONS by Theorem 6's argument.
type Shared2 struct {
	N          int
	Suspicions [][]shmem.Reg // [j][k], row j owned by j
	Progress   [][]shmem.Reg // [i][k] owned by i (the signaller)
	Last       [][]shmem.Reg // [i][k] owned by k (the watcher)
	Stop       []shmem.Reg   // [i] owned by i
}

// NewShared2 allocates Algorithm 2's registers in mem with the paper's
// initial values (naturals 0, booleans true). PROGRESS == LAST initially,
// so every process starts out "signalled alive" to every other.
func NewShared2(mem shmem.Mem, n int) *Shared2 {
	s := &Shared2{
		N:          n,
		Suspicions: make([][]shmem.Reg, n),
		Progress:   make([][]shmem.Reg, n),
		Last:       make([][]shmem.Reg, n),
		Stop:       make([]shmem.Reg, n),
	}
	for i := 0; i < n; i++ {
		s.Suspicions[i] = make([]shmem.Reg, n)
		s.Progress[i] = make([]shmem.Reg, n)
		s.Last[i] = make([]shmem.Reg, n)
		for k := 0; k < n; k++ {
			s.Suspicions[i][k] = mem.Word(i, ClassSuspicions, i, k)
			s.Progress[i][k] = mem.Word(i, ClassProgress, i, k)
			s.Last[i][k] = mem.Word(k, ClassLast, i, k)
			shmem.SeedIfPossible(s.Progress[i][k], shmem.B2W(true))
			shmem.SeedIfPossible(s.Last[i][k], shmem.B2W(true))
		}
		s.Stop[i] = mem.Word(i, ClassStop, i)
		shmem.SeedIfPossible(s.Stop[i], shmem.B2W(true))
	}
	return s
}

// Algo2 is one process of Algorithm 2 (paper Figure 5). All its shared
// variables are bounded (Theorem 6); the price — proven unavoidable by
// Theorem 5 / Corollary 1 — is that every correct process keeps writing
// shared memory forever: the watchers' LAST acknowledgements never stop.
type Algo2 struct {
	id int
	n  int
	sh *Shared2

	candidates []bool

	// Local copies of own registers: STOP[id], SUSPICIONS[id][*], and the
	// watcher-side LAST[k][id] for every k.
	myStop bool
	mySusp []uint64
	myLast []bool // myLast[k] caches LAST[k][id]

	cachedLeader int
}

var _ Proc = (*Algo2)(nil)

// NewAlgo2 creates process id of Algorithm 2 over the shared memory sh.
func NewAlgo2(sh *Shared2, id int) *Algo2 {
	p := &Algo2{
		id:           id,
		n:            sh.N,
		sh:           sh,
		candidates:   make([]bool, sh.N),
		mySusp:       make([]uint64, sh.N),
		myLast:       make([]bool, sh.N),
		cachedLeader: id,
	}
	for k := range p.candidates {
		p.candidates[k] = true
	}
	p.myStop = shmem.W2B(sh.Stop[id].Read(id))
	for k := 0; k < sh.N; k++ {
		p.mySusp[k] = sh.Suspicions[id][k].Read(id)
		p.myLast[k] = shmem.W2B(sh.Last[k][id].Read(id))
	}
	return p
}

// ID implements Proc.
func (p *Algo2) ID() int { return p.id }

// Leader implements task T1's externally observable value.
func (p *Algo2) Leader() int { return p.cachedLeader }

func (p *Algo2) computeLeader() int {
	susp := make([]uint64, p.n)
	for k := 0; k < p.n; k++ {
		if !p.candidates[k] {
			continue
		}
		var s uint64
		for j := 0; j < p.n; j++ {
			if j == p.id {
				s += p.mySusp[k]
			} else {
				s += p.sh.Suspicions[j][k].Read(p.id)
			}
		}
		susp[k] = s
	}
	p.cachedLeader = lexMin(susp, p.candidates, p.id)
	return p.cachedLeader
}

// Step implements one iteration of task T2 (paper lines 6-12, with lines
// 8.R1-8.R3): while leader, re-signal every other process by copying its
// acknowledgement value back into PROGRESS (making the pair equal again).
func (p *Algo2) Step(vclock.Time) {
	if p.computeLeader() == p.id {
		for k := 0; k < p.n; k++ { // lines 8.R1-8.R3
			if k == p.id {
				continue
			}
			ack := p.sh.Last[p.id][k].Read(p.id) // LAST[i][k], owned by k
			p.sh.Progress[p.id][k].Write(p.id, ack)
		}
		if p.myStop {
			p.myStop = false
			p.sh.Stop[p.id].Write(p.id, shmem.B2W(false)) // line 9
		}
		return
	}
	if !p.myStop {
		p.myStop = true
		p.sh.Stop[p.id].Write(p.id, shmem.B2W(true)) // line 11
	}
}

// OnTimer implements task T3 (paper lines 13-27 with 16.R1/17.R1/19.R1).
// "PROGRESS[k][i] == LAST[k][i]" plays the role of Algorithm 1's
// "PROGRESS[k] changed": it means k re-signalled since our last
// acknowledgement.
func (p *Algo2) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		stopK := shmem.W2B(p.sh.Stop[k].Read(p.id))           // line 15
		progK := shmem.W2B(p.sh.Progress[k][p.id].Read(p.id)) // line 16.R1
		switch {
		case progK == p.myLast[k]: // line 17.R1: signal present
			p.candidates[k] = true // line 18
			p.myLast[k] = !progK   // line 19.R1: cancel the signal
			p.sh.Last[k][p.id].Write(p.id, shmem.B2W(p.myLast[k]))
		case stopK: // line 20
			p.candidates[k] = false // line 21
		case p.candidates[k]: // line 22
			p.mySusp[k]++
			p.sh.Suspicions[p.id][k].Write(p.id, p.mySusp[k]) // line 23
			p.candidates[k] = false                           // line 24
		}
	}
	p.computeLeader()
	return maxPlusOne(p.mySusp) // line 27
}

// BuildAlgo2 allocates Algorithm 2's shared memory in mem and returns the
// n process state machines.
func BuildAlgo2(mem shmem.Mem, n int) []*Algo2 {
	sh := NewShared2(mem, n)
	procs := make([]*Algo2, n)
	for i := 0; i < n; i++ {
		procs[i] = NewAlgo2(sh, i)
	}
	return procs
}
