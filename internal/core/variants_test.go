package core

import (
	"testing"

	"omegasm/internal/shmem"
)

func TestNWNRSingleSuspicionVectorShared(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := BuildNWNR(mem, 3)
	// Only n suspicion registers are allocated (vs n^2 for the matrix).
	snap := mem.Census().Snapshot()
	count := 0
	for _, r := range snap.Regs {
		if r.Class == ClassNSusp {
			count++
			if r.Owner != shmem.MultiWriter {
				t.Errorf("%s must be multi-writer", r.Name)
			}
		}
	}
	if count != 3 {
		t.Fatalf("allocated %d NSUSP registers, want 3", count)
	}
	_ = procs
}

func TestNWNRSuspicionAccumulatesAcrossWriters(t *testing.T) {
	mem := shmem.NewSimMem(3)
	sh := NewSharedN(mem, 3)
	procs := make([]*NWNR, 3)
	for i := range procs {
		procs[i] = NewNWNR(sh, i)
	}
	p1, p2 := procs[1], procs[2]
	// Make process 0 visible as a competitor: it steps once (believing it
	// leads) so PROGRESS[0] moves and STOP[0] goes false.
	procs[0].Step(0)
	p1.OnTimer(0) // sees progress: candidate
	p2.OnTimer(0)
	// Now p0 is silent: both watchers suspect, incrementing the SAME
	// multi-writer register.
	p1.OnTimer(0)
	p2.OnTimer(0)
	if got := sh.NSusp[0].Read(1); got != 2 {
		t.Fatalf("NSUSP[0] = %d, want 2 (both watchers incremented)", got)
	}
}

func TestNWNRTimeoutUsesLocalCounts(t *testing.T) {
	mem := shmem.NewSimMem(3)
	sh := NewSharedN(mem, 3)
	p1 := NewNWNR(sh, 1)
	// A foreign suspicion total must not inflate p1's timeout: the paper
	// notes the timeout is computed from process-owned state only.
	sh.NSusp[0].Write(shmem.MultiWriter, 0) // owner check bypassed: MW register
	sh.NSusp[0].Write(2, 50)
	if got := p1.OnTimer(0); got != 1 {
		t.Fatalf("timeout = %d, want 1 (local suspicion counts only)", got)
	}
}

func TestTimerFreeRunsT3FromSteps(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := BuildTimerFree(mem, 3)
	p1 := procs[1]
	// OnTimer must report "do not arm".
	if got := p1.OnTimer(0); got != 0 {
		t.Fatalf("TimerFree.OnTimer = %d, want 0", got)
	}
	// Make process 0 progress, then drive p1 by steps only: the embedded
	// countdown must eventually run the T3 body and see the progress.
	procs[0].Step(0)
	for i := 0; i < 10 && !p1.inner.candidates[0]; i++ {
		p1.Step(0)
	}
	if !p1.inner.candidates[0] {
		t.Fatal("timer-free variant never ran its T3 body from steps")
	}
	if p1.Leader() != p1.inner.Leader() {
		t.Error("Leader() must delegate to the wrapped process")
	}
	if p1.ID() != 1 {
		t.Errorf("ID() = %d", p1.ID())
	}
}

func TestTimerFreeCountdownRearms(t *testing.T) {
	mem := shmem.NewSimMem(2)
	procs := BuildTimerFree(mem, 2)
	p1 := procs[1]
	// Raise p1's own suspicion counts so the re-armed countdown is long.
	p1.inner.mySusp[0] = 5
	p1.Step(0) // countdown 0: runs T3, re-arms to maxPlusOne = 6
	if p1.countdown != 6 {
		t.Fatalf("countdown = %d, want 6", p1.countdown)
	}
	p1.Step(0)
	if p1.countdown != 5 {
		t.Fatalf("countdown = %d, want 5 (decrement per step)", p1.countdown)
	}
}

func TestStrawmanHeartbeatWraps(t *testing.T) {
	mem := shmem.NewSimMem(2)
	procs := BuildStrawman(mem, 2, 4, 8)
	p0 := procs[0]
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		p0.Step(0) // p0 believes it leads initially (lexmin of empty susp)
		seen[p0.sh.HB[0].Read(1)] = true
	}
	for v := range seen {
		if v >= 4 {
			t.Fatalf("heartbeat value %d escaped the mod-4 domain", v)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("heartbeat visited %d values, want all 4 residues", len(seen))
	}
}

func TestStrawmanSuspicionsSaturate(t *testing.T) {
	mem := shmem.NewSimMem(2)
	procs := BuildStrawman(mem, 2, 4, 3)
	p0, p1 := procs[0], procs[1]
	p0.Step(0) // heartbeat moves once
	p1.OnTimer(0)
	for i := 0; i < 20; i++ {
		// Alternate: p0 silent => suspect; then heartbeat moves => re-add.
		p1.OnTimer(0)
		p0.Step(0)
		p1.OnTimer(0)
	}
	if got := p1.sh.SSusp[1][0].Read(0); got > 3 {
		t.Fatalf("SSUSP[1][0] = %d, exceeded cap 3", got)
	}
	if got := p1.OnTimer(0); got > 4 {
		t.Fatalf("timeout = %d, must stay <= cap+1", got)
	}
}

func TestStrawmanParamClamps(t *testing.T) {
	sh := NewSharedS(shmem.NewSimMem(2), 2, 0, 0)
	if sh.Mod != 2 || sh.SuspCap != 1 {
		t.Errorf("degenerate params not clamped: mod=%d cap=%d", sh.Mod, sh.SuspCap)
	}
}
