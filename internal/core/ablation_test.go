package core

import (
	"testing"

	"omegasm/internal/shmem"
)

func TestNoStopChargesDemotionAsSuspicion(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := BuildNoStop(mem, 3)
	p0, p1 := procs[0], procs[1]
	// p0 competes once (initial lexmin is 0), then goes silent after p1
	// observes it.
	p0.Step(0) // writes PROGRESS[0]
	p1.OnTimer(0)
	if !p1.candidates[0] {
		t.Fatal("progressing p0 must be a candidate")
	}
	// p0 demotes itself silently (in the ablation there is no STOP):
	// from p1's perspective this is indistinguishable from a crash.
	p1.OnTimer(0)
	if p1.candidates[0] {
		t.Fatal("silent p0 must be dropped")
	}
	if got := p0.sh.Suspicions[1][0].Read(2); got != 1 {
		t.Fatalf("SUSPICIONS[1][0] = %d: the demotion must cost a suspicion", got)
	}
}

func TestNoStopStillElectsInQuietRuns(t *testing.T) {
	mem := shmem.NewSimMem(3)
	procs := BuildNoStop(mem, 3)
	// Round-robin stepping with interleaved timers: a benign schedule.
	for round := 0; round < 400; round++ {
		for _, p := range procs {
			p.Step(0)
		}
		if round%5 == 4 {
			for _, p := range procs {
				p.OnTimer(0)
			}
		}
	}
	want := procs[0].Leader()
	for _, p := range procs {
		if p.Leader() != want {
			t.Fatalf("estimates diverge: %d vs %d", p.Leader(), want)
		}
	}
}

func TestLeaderNoReadGoesBlindOnlyAfterReign(t *testing.T) {
	mem := shmem.NewSimMem(2)
	procs := BuildLeaderNoRead(mem, 2, 5)
	p0 := procs[0]
	if p0.blind() {
		t.Fatal("blind before any reign")
	}
	for i := 0; i < 5; i++ {
		p0.Step(0) // p0 is the initial lexmin: each step extends the reign
	}
	if !p0.blind() {
		t.Fatalf("not blind after %d leading steps (reign=%d)", 5, p0.reign)
	}
	// Blind steps perform no reads.
	before := mem.Census().Snapshot()
	p0.Step(0)
	d := mem.Census().Snapshot().Diff(before)
	var reads uint64
	for _, r := range d.Regs {
		reads += r.ReadsBy[0]
	}
	if reads != 0 {
		t.Fatalf("blind leader performed %d reads", reads)
	}
	// But it keeps writing its heartbeat (it must: Lemma 5).
	if d.Regs["PROGRESS[0]"].WritesBy[0] != 1 {
		t.Fatal("blind leader stopped heartbeating")
	}
}

func TestLeaderNoReadReignResetsOnDemotion(t *testing.T) {
	mem := shmem.NewSimMem(2)
	sh := NewShared1(mem, 2)
	p1 := NewLeaderNoRead(sh, 1, 3)
	// p1 is not the lexmin (process 0 is), so its reign never starts.
	for i := 0; i < 10; i++ {
		p1.Step(0)
	}
	if p1.reign != 0 {
		t.Fatalf("follower accumulated reign %d", p1.reign)
	}
	if p1.blind() {
		t.Fatal("follower went blind")
	}
}

func TestLeaderNoReadBlindAfterClamp(t *testing.T) {
	mem := shmem.NewSimMem(2)
	sh := NewShared1(mem, 2)
	p := NewLeaderNoRead(sh, 0, 0)
	if p.BlindAfter != 1 {
		t.Errorf("BlindAfter = %d, want clamp to 1", p.BlindAfter)
	}
}

func TestNoStopTimerReflectsOwnSuspicions(t *testing.T) {
	mem := shmem.NewSimMem(2)
	procs := BuildNoStop(mem, 2)
	p1 := procs[1]
	p1.mySusp[0] = 7
	p1.candidates[0] = false // avoid an in-call suspicion of the silent p0
	if got := p1.OnTimer(0); got != 8 {
		t.Fatalf("timeout = %d, want 8", got)
	}
}
