package core

import (
	"testing"

	"omegasm/internal/shmem"
)

// algo1Fixture builds Algorithm 1 for n processes on a fresh SimMem.
func algo1Fixture(n int) (*shmem.SimMem, *Shared1, []*Algo1) {
	mem := shmem.NewSimMem(n)
	sh := NewShared1(mem, n)
	procs := make([]*Algo1, n)
	for i := range procs {
		procs[i] = NewAlgo1(sh, i)
	}
	return mem, sh, procs
}

func TestAlgo1InitialState(t *testing.T) {
	_, sh, procs := algo1Fixture(3)
	// Paper initial values: naturals 0, booleans true.
	for i := 0; i < 3; i++ {
		if !shmem.W2B(sh.Stop[i].Read(i)) {
			t.Errorf("STOP[%d] must start true", i)
		}
		if sh.Progress[i].Read(i) != 0 {
			t.Errorf("PROGRESS[%d] must start 0", i)
		}
	}
	// Everyone starts with the full candidate set => lexmin is process 0.
	for i, p := range procs {
		if got := p.computeLeader(); got != 0 {
			t.Errorf("process %d initial leader = %d, want 0", i, got)
		}
	}
}

func TestAlgo1LeaderStepWritesProgress(t *testing.T) {
	_, sh, procs := algo1Fixture(3)
	p0 := procs[0]
	p0.Step(0) // believes leader: PROGRESS++ and STOP -> false (line 8-9)
	if got := sh.Progress[0].Read(1); got != 1 {
		t.Fatalf("PROGRESS[0] = %d after leader step, want 1", got)
	}
	if shmem.W2B(sh.Stop[0].Read(1)) {
		t.Fatal("STOP[0] must be false after a leader step")
	}
	p0.Step(0)
	if got := sh.Progress[0].Read(1); got != 2 {
		t.Fatalf("PROGRESS[0] = %d, want 2", got)
	}
}

func TestAlgo1NonLeaderStepRaisesStopOnce(t *testing.T) {
	mem, sh, procs := algo1Fixture(3)
	p1 := procs[1]
	// p1 sees leader 0, so its step takes the demotion branch (line 11).
	// STOP[1] is already true from initialization, so no write happens.
	before := mem.Census().Snapshot()
	p1.Step(0)
	after := mem.Census().Snapshot()
	d := after.Diff(before)
	if w := d.Regs["STOP[1]"].TotalWrites(); w != 0 {
		t.Fatalf("redundant STOP write: %d (local copy must suppress it)", w)
	}
	if shmem.W2B(sh.Stop[1].Read(0)) != true {
		t.Fatal("STOP[1] must remain true")
	}
	// Force p1 to have been leader once, then demote it: exactly one
	// STOP write.
	for k := 0; k < 3; k++ {
		if k != 1 {
			p1.candidates[k] = false
		}
	}
	p1.Step(0) // now p1 thinks it leads: STOP -> false
	if shmem.W2B(sh.Stop[1].Read(0)) {
		t.Fatal("STOP[1] must be false while p1 competes")
	}
	for k := 0; k < 3; k++ {
		p1.candidates[k] = true
	}
	p1.Step(0) // demoted: STOP -> true
	if !shmem.W2B(sh.Stop[1].Read(0)) {
		t.Fatal("STOP[1] must be true after demotion")
	}
}

func TestAlgo1TimerBranches(t *testing.T) {
	_, sh, procs := algo1Fixture(3)
	p0, p1 := procs[0], procs[1]

	// Branch 1 (lines 17-19): progress change makes a candidate.
	p0.Step(0) // PROGRESS[0] = 1
	p1.candidates[0] = false
	p1.OnTimer(0)
	if !p1.candidates[0] {
		t.Fatal("progressing process must become a candidate")
	}
	if p1.last[0] != 1 {
		t.Fatalf("last[0] = %d, want 1", p1.last[0])
	}

	// Branch 3 (lines 22-24): no progress, STOP false, candidate =>
	// suspected and removed.
	p1.OnTimer(0) // PROGRESS[0] still 1 => suspicion
	if p1.candidates[0] {
		t.Fatal("silent competing process must be removed")
	}
	if got := sh.Suspicions[1][0].Read(2); got != 1 {
		t.Fatalf("SUSPICIONS[1][0] = %d, want 1", got)
	}

	// Not a candidate anymore: a further silent check must NOT suspect
	// again (line 22 guard).
	p1.OnTimer(0)
	if got := sh.Suspicions[1][0].Read(2); got != 1 {
		t.Fatalf("SUSPICIONS[1][0] grew to %d while not a candidate", got)
	}

	// Branch 2 (lines 20-21): voluntary withdrawal via STOP is not a
	// suspicion. Re-add 2 as candidate, make it progress once, then stop.
	p2 := procs[2]
	for k := 0; k < 3; k++ {
		if k != 2 {
			p2.candidates[k] = false
		}
	}
	p2.Step(0) // PROGRESS[2]=1, STOP[2]=false
	p1.OnTimer(0)
	if !p1.candidates[2] {
		t.Fatal("p2 must be a candidate after progressing")
	}
	for k := 0; k < 3; k++ {
		p2.candidates[k] = true
	}
	p2.Step(0) // demote: STOP[2]=true, no progress
	p1.OnTimer(0)
	if p1.candidates[2] {
		t.Fatal("stopped process must be withdrawn")
	}
	if got := sh.Suspicions[1][2].Read(0); got != 0 {
		t.Fatalf("voluntary withdrawal counted as suspicion: %d", got)
	}
}

func TestAlgo1TimeoutValue(t *testing.T) {
	_, _, procs := algo1Fixture(3)
	p1 := procs[1]
	if got := p1.OnTimer(0); got != 1 {
		t.Fatalf("initial timeout = %d, want max(0)+1 = 1", got)
	}
	p1.mySusp[0], p1.mySusp[2] = 4, 9
	if got := p1.OnTimer(0); got != 10 {
		t.Fatalf("timeout = %d, want 10 (line 27)", got)
	}
}

func TestAlgo1LeaderQueryDoesNotTouchSharedMemory(t *testing.T) {
	mem, _, procs := algo1Fixture(3)
	procs[0].Step(0)
	before := mem.Census().Snapshot()
	for i := 0; i < 100; i++ {
		_ = procs[1].Leader()
	}
	after := mem.Census().Snapshot()
	d := after.Diff(before)
	var reads uint64
	for _, r := range d.Regs {
		reads += r.TotalReads()
	}
	if reads != 0 {
		t.Fatalf("Leader() performed %d register reads; the cached oracle output must be free", reads)
	}
}

func TestAlgo1OwnRegistersReadFromLocalCopies(t *testing.T) {
	mem, _, procs := algo1Fixture(3)
	base := mem.Census().Snapshot()
	// A leader step reads SUSPICIONS columns of others but must not read
	// its own row, PROGRESS[0], or STOP[0] (paper Section 3.2 remark).
	procs[0].Step(0)
	d := mem.Census().Snapshot().Diff(base)
	for _, name := range []string{"PROGRESS[0]", "STOP[0]", "SUSPICIONS[0][1]", "SUSPICIONS[0][2]"} {
		if r, ok := d.Regs[name]; ok && r.ReadsBy[0] > 0 {
			t.Errorf("process 0 read its own register %s (%d reads)", name, r.ReadsBy[0])
		}
	}
}

func TestAlgo1SelfNeverLeavesCandidates(t *testing.T) {
	_, _, procs := algo1Fixture(3)
	p1 := procs[1]
	for i := 0; i < 50; i++ {
		p1.Step(0)
		p1.OnTimer(0)
		if !p1.candidates[1] {
			t.Fatal("x in candidates_x must be invariant (proof of Theorem 1)")
		}
	}
}

func TestAlgo1AdoptsSeededRegisters(t *testing.T) {
	mem := shmem.NewSimMem(2)
	sh := NewShared1(mem, 2)
	shmem.SeedIfPossible(sh.Progress[0], 77)
	shmem.SeedIfPossible(sh.Suspicions[0][1], 5)
	shmem.SeedIfPossible(sh.Stop[0], 0)
	p0 := NewAlgo1(sh, 0)
	// Local copies must match the arbitrary initial shared state
	// (footnote 7: self-stabilization w.r.t. initial values).
	if p0.myProgress != 77 || p0.mySusp[1] != 5 || p0.myStop {
		t.Fatalf("local copies = (%d,%d,%v), want (77,5,false)",
			p0.myProgress, p0.mySusp[1], p0.myStop)
	}
	p0.Step(0)
	if got := sh.Progress[0].Read(1); got != 78 {
		t.Fatalf("PROGRESS[0] = %d, want 78 (continues from seed)", got)
	}
}

func TestBuildAlgo1SharesMemory(t *testing.T) {
	mem := shmem.NewSimMem(4)
	procs := BuildAlgo1(mem, 4)
	if len(procs) != 4 {
		t.Fatalf("built %d procs", len(procs))
	}
	// A write by one process must be visible to all others.
	procs[2].candidates = []bool{false, false, true, false}
	procs[2].Step(0) // PROGRESS[2] = 1
	for _, p := range procs {
		if p.ID() == 2 {
			continue
		}
		if got := p.sh.Progress[2].Read(p.ID()); got != 1 {
			t.Fatalf("process %d sees PROGRESS[2] = %d", p.ID(), got)
		}
	}
}
