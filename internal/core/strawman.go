package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Strawman is the bounded-memory counterexample algorithm driven by the
// Figure 4 / Theorem 5 lower-bound experiment. It is Algorithm 1 with all
// unbounded state forcibly bounded, in the "obvious" (and provably wrong)
// way:
//
//   - the leader's heartbeat HB[i] wraps modulo Mod;
//   - suspicion counters SSUSP[i][k] saturate at SuspCap, so timeouts
//     also stop growing at SuspCap+1;
//   - non-leaders write nothing (no STOP register).
//
// The shared memory is therefore bounded AND only the current leader
// writes — exactly the combination Theorem 5 proves impossible for an
// Omega algorithm. The proof constructs a schedule in which the bounded
// memory keeps revisiting the same state S, so watchers cannot tell a live
// lockstep leader from a crashed one. Operationally, the harness pairs a
// Fixed{1}-paced leader with PhaseLocked timers of period Mod: every
// watcher check then observes HB at the same phase, sees no progress, and
// suspicion never ends — Eventual Leadership fails even though the run
// satisfies AWB. Algorithms 1 and 2 stabilize under the identical
// adversary (experiment F4).
type Strawman struct {
	id int
	n  int
	sh *SharedS

	candidates []bool
	last       []uint64
	mySusp     []uint64 // local copy of SSUSP[id][*] (saturated)
	myHB       uint64

	cachedLeader int
}

// SharedS is the strawman's (bounded) shared memory.
type SharedS struct {
	N       int
	Mod     uint64        // heartbeat modulus (>= 2)
	SuspCap uint64        // suspicion saturation cap (>= 1)
	HB      []shmem.Reg   // [i] owned by i, value in [0, Mod)
	SSusp   [][]shmem.Reg // [j][k] owned by j, value in [0, SuspCap]
}

// NewSharedS allocates the strawman's registers.
func NewSharedS(mem shmem.Mem, n int, mod, suspCap uint64) *SharedS {
	if mod < 2 {
		mod = 2
	}
	if suspCap < 1 {
		suspCap = 1
	}
	s := &SharedS{
		N:       n,
		Mod:     mod,
		SuspCap: suspCap,
		HB:      make([]shmem.Reg, n),
		SSusp:   make([][]shmem.Reg, n),
	}
	for j := 0; j < n; j++ {
		s.HB[j] = mem.Word(j, ClassHB, j)
		s.SSusp[j] = make([]shmem.Reg, n)
		for k := 0; k < n; k++ {
			s.SSusp[j][k] = mem.Word(j, ClassSSusp, j, k)
		}
	}
	return s
}

var _ Proc = (*Strawman)(nil)

// NewStrawman creates process id of the strawman over sh.
func NewStrawman(sh *SharedS, id int) *Strawman {
	p := &Strawman{
		id:           id,
		n:            sh.N,
		sh:           sh,
		candidates:   make([]bool, sh.N),
		last:         make([]uint64, sh.N),
		mySusp:       make([]uint64, sh.N),
		cachedLeader: id,
	}
	for k := range p.candidates {
		p.candidates[k] = true
	}
	return p
}

// ID implements Proc.
func (p *Strawman) ID() int { return p.id }

// Leader implements task T1's externally observable value.
func (p *Strawman) Leader() int { return p.cachedLeader }

func (p *Strawman) computeLeader() int {
	susp := make([]uint64, p.n)
	for k := 0; k < p.n; k++ {
		if !p.candidates[k] {
			continue
		}
		var s uint64
		for j := 0; j < p.n; j++ {
			if j == p.id {
				s += p.mySusp[k]
			} else {
				s += p.sh.SSusp[j][k].Read(p.id)
			}
		}
		susp[k] = s
	}
	p.cachedLeader = lexMin(susp, p.candidates, p.id)
	return p.cachedLeader
}

// Step: while leader, advance the wrapped heartbeat; otherwise stay
// silent (no STOP — non-leaders never write, by design of the strawman).
func (p *Strawman) Step(vclock.Time) {
	if p.computeLeader() == p.id {
		p.myHB = (p.myHB + 1) % p.sh.Mod
		p.sh.HB[p.id].Write(p.id, p.myHB)
	}
}

// OnTimer: suspect silent candidates; suspicion counters saturate, so the
// returned timeout is bounded by SuspCap+1 — the memory-bounded flaw.
func (p *Strawman) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		hb := p.sh.HB[k].Read(p.id)
		switch {
		case hb != p.last[k]:
			p.candidates[k] = true
			p.last[k] = hb
		case p.candidates[k]:
			if p.mySusp[k] < p.sh.SuspCap {
				p.mySusp[k]++
				p.sh.SSusp[p.id][k].Write(p.id, p.mySusp[k])
			}
			p.candidates[k] = false
		}
	}
	p.computeLeader()
	return maxPlusOne(p.mySusp) // bounded by SuspCap+1
}

// BuildStrawman allocates the strawman's shared memory in mem and returns
// the n process state machines.
func BuildStrawman(mem shmem.Mem, n int, mod, suspCap uint64) []*Strawman {
	sh := NewSharedS(mem, n, mod, suspCap)
	procs := make([]*Strawman, n)
	for i := 0; i < n; i++ {
		procs[i] = NewStrawman(sh, i)
	}
	return procs
}
