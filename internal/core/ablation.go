package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// This file holds the ablation variants of Algorithm 1 used by the
// harness's A-series experiments. They are deliberately *worse* than the
// paper's algorithm: each removes one design element to measure (or
// falsify) what that element buys. They are not part of the public API.

// NoStop is Algorithm 1 without the STOP registers (ablation A1): a
// process that stops competing simply goes silent, so watchers cannot
// distinguish voluntary demotion from a crash and charge a suspicion for
// every demotion. The variant still implements Omega — the suspicion
// totals of processes in B stay bounded once leadership settles — but it
// pays for every leadership change with permanent suspicion growth and
// correspondingly inflated timeouts. Experiment A1 quantifies the
// difference.
type NoStop struct {
	id int
	n  int
	sh *SharedNS

	candidates []bool
	last       []uint64
	mySusp     []uint64
	myProgress uint64

	cachedLeader int
}

// SharedNS is NoStop's shared memory: Algorithm 1 minus the STOP array.
type SharedNS struct {
	N          int
	Suspicions [][]shmem.Reg
	Progress   []shmem.Reg
}

// NewSharedNS allocates the NoStop variant's registers.
func NewSharedNS(mem shmem.Mem, n int) *SharedNS {
	s := &SharedNS{
		N:          n,
		Suspicions: make([][]shmem.Reg, n),
		Progress:   make([]shmem.Reg, n),
	}
	for j := 0; j < n; j++ {
		s.Suspicions[j] = make([]shmem.Reg, n)
		for k := 0; k < n; k++ {
			s.Suspicions[j][k] = mem.Word(j, ClassSuspicions, j, k)
		}
		s.Progress[j] = mem.Word(j, ClassProgress, j)
	}
	return s
}

var _ Proc = (*NoStop)(nil)

// NewNoStop creates process id of the NoStop ablation.
func NewNoStop(sh *SharedNS, id int) *NoStop {
	p := &NoStop{
		id:           id,
		n:            sh.N,
		sh:           sh,
		candidates:   make([]bool, sh.N),
		last:         make([]uint64, sh.N),
		mySusp:       make([]uint64, sh.N),
		cachedLeader: id,
	}
	for k := range p.candidates {
		p.candidates[k] = true
	}
	return p
}

// ID implements Proc.
func (p *NoStop) ID() int { return p.id }

// Leader implements task T1's externally observable value.
func (p *NoStop) Leader() int { return p.cachedLeader }

func (p *NoStop) computeLeader() int {
	susp := make([]uint64, p.n)
	for k := 0; k < p.n; k++ {
		if !p.candidates[k] {
			continue
		}
		var s uint64
		for j := 0; j < p.n; j++ {
			if j == p.id {
				s += p.mySusp[k]
			} else {
				s += p.sh.Suspicions[j][k].Read(p.id)
			}
		}
		susp[k] = s
	}
	p.cachedLeader = lexMin(susp, p.candidates, p.id)
	return p.cachedLeader
}

// Step is task T2 without the STOP bookkeeping: demotion is silence.
func (p *NoStop) Step(vclock.Time) {
	if p.computeLeader() == p.id {
		p.myProgress++
		p.sh.Progress[p.id].Write(p.id, p.myProgress)
	}
}

// OnTimer is task T3 without the voluntary-withdrawal branch: silence is
// always charged as a suspicion.
func (p *NoStop) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		progK := p.sh.Progress[k].Read(p.id)
		switch {
		case progK != p.last[k]:
			p.candidates[k] = true
			p.last[k] = progK
		case p.candidates[k]:
			p.mySusp[k]++
			p.sh.Suspicions[p.id][k].Write(p.id, p.mySusp[k])
			p.candidates[k] = false
		}
	}
	p.computeLeader()
	return maxPlusOne(p.mySusp)
}

// BuildNoStop allocates the NoStop variant over mem.
func BuildNoStop(mem shmem.Mem, n int) []*NoStop {
	sh := NewSharedNS(mem, n)
	procs := make([]*NoStop, n)
	for i := 0; i < n; i++ {
		procs[i] = NewNoStop(sh, i)
	}
	return procs
}

// LeaderNoRead is Algorithm 1 with one change (ablation A2, probing the
// paper's Section 5 open question "is there a time after which the
// eventual leader need not read the shared memory?"): once a process
// considers itself leader it stops refreshing the suspicion totals — its
// task T1 answers from the cache while it reigns.
//
// The ablation demonstrates that the naive answer is NO: if the reigning
// leader is suspected during an outage, the other processes durably move
// to a less-suspected process, but the blinded incumbent never learns it
// was demoted and returns the stale answer "me" forever — a permanent
// split that violates Eventual Leadership. (The open question remains
// open; this shows the obvious shortcut is unsound, complementing
// Lemma 6, which proves the *non-leaders* must read forever.)
type LeaderNoRead struct {
	*Algo1
	// BlindAfter is the number of consecutive self-leading steps after
	// which the process stops reading; reign counts them.
	BlindAfter int
	reign      int
}

var _ Proc = (*LeaderNoRead)(nil)

// NewLeaderNoRead creates process id of the LeaderNoRead ablation over
// Algorithm 1 shared memory. The process behaves exactly like Algorithm 1
// until it has led for blindAfter consecutive steps; from then on it
// reigns blind.
func NewLeaderNoRead(sh *Shared1, id int, blindAfter int) *LeaderNoRead {
	if blindAfter < 1 {
		blindAfter = 1
	}
	return &LeaderNoRead{Algo1: NewAlgo1(sh, id), BlindAfter: blindAfter}
}

func (p *LeaderNoRead) blind() bool {
	return p.reign >= p.BlindAfter && p.cachedLeader == p.id
}

// Step is task T2, but once the process has reigned for BlindAfter
// consecutive steps it skips the leader computation — the reigning leader
// performs no reads.
func (p *LeaderNoRead) Step(now vclock.Time) {
	if p.blind() {
		// Blinded reign: keep heartbeating without re-reading suspicions.
		p.myProgress++
		p.sh.Progress[p.id].Write(p.id, p.myProgress)
		if p.myStop {
			p.myStop = false
			p.sh.Stop[p.id].Write(p.id, shmem.B2W(false))
		}
		p.reign++
		return
	}
	p.Algo1.Step(now)
	if p.cachedLeader == p.id {
		p.reign++
	} else {
		p.reign = 0
	}
}

// OnTimer runs the normal task T3 unless the process reigns blind, in
// which case it only maintains its own timeout.
func (p *LeaderNoRead) OnTimer(now vclock.Time) uint64 {
	if p.blind() {
		var m uint64
		for _, s := range p.mySusp {
			if s > m {
				m = s
			}
		}
		return m + 1
	}
	return p.Algo1.OnTimer(now)
}

// BuildLeaderNoRead allocates the ablation over mem.
func BuildLeaderNoRead(mem shmem.Mem, n, blindAfter int) []*LeaderNoRead {
	sh := NewShared1(mem, n)
	procs := make([]*LeaderNoRead, n)
	for i := 0; i < n; i++ {
		procs[i] = NewLeaderNoRead(sh, i, blindAfter)
	}
	return procs
}
