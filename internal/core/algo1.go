package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// Shared1 is the shared memory of Algorithm 1 (paper Figure 2):
//
//   - SUSPICIONS[j][k]: natural; row j is 1WnR-owned by p_j; value x means
//     "p_j has suspected p_k x times so far".
//   - PROGRESS[i]: natural, owned by p_i; incremented forever while p_i
//     considers itself leader. The single potentially unbounded register
//     (of the eventual leader) in the whole algorithm (Theorem 2).
//   - STOP[i]: boolean, owned by p_i; true when p_i stopped competing.
//
// PROGRESS[k] and STOP[k] are the paper's critical registers: AWB1
// constrains only accesses to them.
type Shared1 struct {
	N          int
	Suspicions [][]shmem.Reg // [j][k], row j owned by j
	Progress   []shmem.Reg   // [i] owned by i
	Stop       []shmem.Reg   // [i] owned by i
}

// NewShared1 allocates Algorithm 1's registers in mem with the paper's
// initial values (naturals 0, booleans true).
func NewShared1(mem shmem.Mem, n int) *Shared1 {
	s := &Shared1{
		N:          n,
		Suspicions: make([][]shmem.Reg, n),
		Progress:   make([]shmem.Reg, n),
		Stop:       make([]shmem.Reg, n),
	}
	for j := 0; j < n; j++ {
		s.Suspicions[j] = make([]shmem.Reg, n)
		for k := 0; k < n; k++ {
			s.Suspicions[j][k] = mem.Word(j, ClassSuspicions, j, k)
		}
		s.Progress[j] = mem.Word(j, ClassProgress, j)
		s.Stop[j] = mem.Word(j, ClassStop, j)
		shmem.SeedIfPossible(s.Stop[j], shmem.B2W(true))
	}
	return s
}

// Algo1 is one process of Algorithm 1 (paper Figure 2).
//
// The paper notes (Section 3.2) that since PROGRESS[i], STOP[i] and
// SUSPICIONS[i][*] are written only by p_i, the process keeps local copies
// and never reads its own registers from shared memory; we do the same, so
// the read census reflects only genuine remote reads (which is what
// Lemma 6 is about).
type Algo1 struct {
	id int
	n  int
	sh *Shared1

	// Local state (the paper's lowercase variables).
	candidates []bool   // candidates_i; always contains id
	last       []uint64 // last_i[k]: greatest PROGRESS[k] value seen

	// Local copies of own registers.
	myProgress uint64
	myStop     bool
	mySusp     []uint64

	// cachedLeader is the value returned by Leader() between recomputes;
	// task T2 recomputes it every iteration (the paper's while guard) and
	// task T3 after updating candidates. Sampling Leader() from the
	// harness therefore does not touch shared memory and does not distort
	// the access census.
	cachedLeader int
}

var _ Proc = (*Algo1)(nil)

// NewAlgo1 creates process id of Algorithm 1 over the shared memory sh.
// Initially candidates_i contains every process (any set containing i is
// allowed by the paper).
func NewAlgo1(sh *Shared1, id int) *Algo1 {
	p := &Algo1{
		id:           id,
		n:            sh.N,
		sh:           sh,
		candidates:   make([]bool, sh.N),
		last:         make([]uint64, sh.N),
		mySusp:       make([]uint64, sh.N),
		cachedLeader: id,
	}
	for k := range p.candidates {
		p.candidates[k] = true
	}
	// Adopt whatever initial values the registers hold (arbitrary initial
	// values are allowed; the algorithm is self-stabilizing w.r.t. them).
	p.myProgress = sh.Progress[id].Read(id)
	p.myStop = shmem.W2B(sh.Stop[id].Read(id))
	for k := 0; k < sh.N; k++ {
		p.mySusp[k] = sh.Suspicions[id][k].Read(id)
	}
	return p
}

// ID implements Proc.
func (p *Algo1) ID() int { return p.id }

// Leader implements task T1's externally observable value. The oracle
// output is recomputed by every T2 iteration and every T3 firing; see the
// cachedLeader comment.
func (p *Algo1) Leader() int { return p.cachedLeader }

// computeLeader is the body of task T1 (paper lines 2-5): for every
// candidate k, sum column k of SUSPICIONS, then take the lexicographic
// minimum of (suspicions, id).
func (p *Algo1) computeLeader() int {
	susp := make([]uint64, p.n)
	for k := 0; k < p.n; k++ {
		if !p.candidates[k] {
			continue
		}
		var s uint64
		for j := 0; j < p.n; j++ {
			if j == p.id {
				s += p.mySusp[k] // own row from the local copy
			} else {
				s += p.sh.Suspicions[j][k].Read(p.id)
			}
		}
		susp[k] = s
	}
	p.cachedLeader = lexMin(susp, p.candidates, p.id)
	return p.cachedLeader
}

// Step implements one iteration of task T2 (paper lines 6-12): while the
// process believes it is the leader it keeps incrementing PROGRESS[i]
// (and holds STOP[i] false); on leaving the loop it raises STOP[i].
func (p *Algo1) Step(vclock.Time) {
	if p.computeLeader() == p.id {
		p.myProgress++
		p.sh.Progress[p.id].Write(p.id, p.myProgress) // line 8
		if p.myStop {
			p.myStop = false
			p.sh.Stop[p.id].Write(p.id, shmem.B2W(false)) // line 9
		}
		return
	}
	if !p.myStop {
		p.myStop = true
		p.sh.Stop[p.id].Write(p.id, shmem.B2W(true)) // line 11
	}
}

// OnTimer implements task T3 (paper lines 13-27). For every other process
// k it checks whether PROGRESS[k] moved since the last firing; if so k is
// a candidate; if not and STOP[k] holds, k withdrew voluntarily; otherwise
// k is suspected (SUSPICIONS[i][k] incremented) and dropped. Returns the
// next timeout value max_k SUSPICIONS[i][k] + 1.
func (p *Algo1) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		stopK := shmem.W2B(p.sh.Stop[k].Read(p.id)) // line 15
		progK := p.sh.Progress[k].Read(p.id)        // line 16
		switch {
		case progK != p.last[k]: // line 17
			p.candidates[k] = true // line 18
			p.last[k] = progK      // line 19
		case stopK: // line 20
			p.candidates[k] = false // line 21
		case p.candidates[k]: // line 22
			p.mySusp[k]++
			p.sh.Suspicions[p.id][k].Write(p.id, p.mySusp[k]) // line 23
			p.candidates[k] = false                           // line 24
		}
	}
	p.computeLeader()
	return maxPlusOne(p.mySusp) // line 27
}

// BuildAlgo1 allocates Algorithm 1's shared memory in mem and returns the
// n process state machines.
func BuildAlgo1(mem shmem.Mem, n int) []*Algo1 {
	sh := NewShared1(mem, n)
	procs := make([]*Algo1, n)
	for i := 0; i < n; i++ {
		procs[i] = NewAlgo1(sh, i)
	}
	return procs
}
