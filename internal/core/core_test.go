package core

import (
	"testing"
	"testing/quick"
)

func TestLexLess(t *testing.T) {
	tests := []struct {
		s1   uint64
		id1  int
		s2   uint64
		id2  int
		want bool
	}{
		{0, 5, 1, 0, true},  // fewer suspicions wins regardless of id
		{1, 0, 0, 5, false}, //
		{2, 1, 2, 3, true},  // tie: lower id wins
		{2, 3, 2, 1, false}, //
		{7, 4, 7, 4, false}, // equal pair is not less
	}
	for _, tc := range tests {
		if got := lexLess(tc.s1, tc.id1, tc.s2, tc.id2); got != tc.want {
			t.Errorf("lexLess(%d,%d | %d,%d) = %v, want %v", tc.s1, tc.id1, tc.s2, tc.id2, got, tc.want)
		}
	}
}

// TestLexLessTotalOrder: property — lexLess is a strict total order:
// irreflexive, asymmetric, and total on distinct pairs.
func TestLexLessTotalOrder(t *testing.T) {
	f := func(s1 uint64, id1 uint8, s2 uint64, id2 uint8) bool {
		a, b := lexLess(s1, int(id1), s2, int(id2)), lexLess(s2, int(id2), s1, int(id1))
		if s1 == s2 && id1 == id2 {
			return !a && !b // irreflexive
		}
		return a != b // asymmetric and total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexMin(t *testing.T) {
	susp := []uint64{5, 3, 3, 9}
	cand := []bool{true, true, true, true}
	if got := lexMin(susp, cand, 0); got != 1 {
		t.Errorf("lexMin = %d, want 1 (least suspected, lowest id on tie)", got)
	}
	cand[1] = false
	if got := lexMin(susp, cand, 0); got != 2 {
		t.Errorf("lexMin = %d, want 2", got)
	}
	// Empty candidate set is defensive: returns self.
	if got := lexMin(susp, []bool{false, false, false, false}, 3); got != 3 {
		t.Errorf("lexMin on empty set = %d, want self", got)
	}
}

// TestLexMinIsMinimal: property — the returned id belongs to the set and
// no other candidate is lexicographically smaller.
func TestLexMinIsMinimal(t *testing.T) {
	f := func(susp []uint64, mask uint8) bool {
		if len(susp) == 0 {
			return true
		}
		if len(susp) > 8 {
			susp = susp[:8]
		}
		cand := make([]bool, len(susp))
		any := false
		for i := range cand {
			cand[i] = mask&(1<<uint(i)) != 0
			any = any || cand[i]
		}
		got := lexMin(susp, cand, 0)
		if !any {
			return got == 0
		}
		if !cand[got] {
			return false
		}
		for k := range cand {
			if cand[k] && lexLess(susp[k], k, susp[got], got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxPlusOne(t *testing.T) {
	if got := maxPlusOne(nil); got != 1 {
		t.Errorf("maxPlusOne(nil) = %d, want 1", got)
	}
	if got := maxPlusOne([]uint64{0, 0}); got != 1 {
		t.Errorf("maxPlusOne(zeros) = %d, want 1", got)
	}
	if got := maxPlusOne([]uint64{3, 9, 1}); got != 10 {
		t.Errorf("maxPlusOne = %d, want 10", got)
	}
}
