// Package core implements the paper's contribution: eventual leader (Omega)
// election algorithms for the crash-prone asynchronous shared-memory model
// augmented with the AWB assumption.
//
// Algorithms provided:
//
//   - Algo1 (paper Figure 2): write-efficient. After stabilization only the
//     elected leader writes shared memory, and every shared variable except
//     PROGRESS[ell] is bounded. Optimal in the number of eventual writers.
//   - Algo2 (paper Figure 5): all shared variables bounded, via a per-pair
//     boolean handshake; every correct process writes forever (which
//     Theorem 5 / Corollary 1 prove is unavoidable with bounded memory).
//   - NWNR (paper Section 3.5): Algo1 with each SUSPICIONS column collapsed
//     into one multi-writer register.
//   - TimerFree (paper Section 3.5): Algo1 with the local timer replaced by
//     a counted busy loop.
//   - Strawman (paper Figure 4, used adversarially): a bounded-memory
//     heartbeat algorithm in which only the leader writes. Theorem 5 proves
//     such an algorithm cannot implement Omega; the harness drives it with
//     the proof's schedule and watches it fail.
//
// Every algorithm is a set of per-process state machines exposing the
// paper's three tasks: Leader (task T1), Step (one iteration of task T2's
// infinite loop) and OnTimer (task T3). The same state machines run under
// the deterministic simulator (package sched) and the live goroutine
// runtime (package rt).
package core

import "omegasm/internal/vclock"

// Proc is the common view of one algorithm process. It structurally
// matches sched.Process and rt's node contract; core depends on neither.
type Proc interface {
	Step(now vclock.Time)
	OnTimer(now vclock.Time) (next uint64)
	Leader() int
	// ID returns the process identity in [0, n).
	ID() int
}

// lexLess is the paper's lexicographic order on (suspicion count, id)
// pairs: (a1,i1) < (a2,i2) iff a1 < a2, or a1 == a2 and i1 < i2.
func lexLess(susp1 uint64, id1 int, susp2 uint64, id2 int) bool {
	if susp1 != susp2 {
		return susp1 < susp2
	}
	return id1 < id2
}

// lexMin returns the id minimizing (susp[k], k) over the candidate set
// (candidates[k] == true). It returns self if the set would otherwise be
// empty — the paper guarantees i is always in candidates_i, so this is
// only a defensive default for arbitrary initial states.
func lexMin(susp []uint64, candidates []bool, self int) int {
	best := -1
	var bestSusp uint64
	for k := range candidates {
		if !candidates[k] {
			continue
		}
		if best == -1 || lexLess(susp[k], k, bestSusp, best) {
			best = k
			bestSusp = susp[k]
		}
	}
	if best == -1 {
		return self
	}
	return best
}

// maxPlusOne returns max(xs) + 1, the paper's next timeout value
// (line 27: set timer to max_k SUSPICIONS[i][k] + 1).
func maxPlusOne(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m + 1
}

// Register class names used across the algorithms; the census and the
// experiment harness key on these.
const (
	ClassSuspicions = "SUSPICIONS"
	ClassProgress   = "PROGRESS"
	ClassStop       = "STOP"
	ClassLast       = "LAST"
	// nWnR variant.
	ClassNSusp = "NSUSP"
	// Strawman.
	ClassHB    = "HB"
	ClassSSusp = "SSUSP"
)
