package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// TimerFree is the timer-free variant of Algorithm 1 (paper Section 3.5,
// "Eliminating the local clocks"): the local timer is replaced by a
// counted loop inside task T2. Each Step first decrements the counter and,
// when it reaches zero, runs the T3 body and re-arms the counter to
// max_k SUSPICIONS[i][k] + 1; then it runs the usual T2 body.
//
// The paper's justification: if each loop iteration takes at least one
// time unit, the counted loop is a timer whose duration T_R(tau, x) >= x
// ticks, i.e. it dominates f(tau, x) = x — an asymptotically well-behaved
// timer by construction. The variant therefore needs no AWB2 assumption on
// hardware timers at all.
type TimerFree struct {
	inner     *Algo1
	countdown uint64
}

var _ Proc = (*TimerFree)(nil)

// NewTimerFree wraps process id of Algorithm 1 over sh as the timer-free
// variant.
func NewTimerFree(sh *Shared1, id int) *TimerFree {
	return &TimerFree{inner: NewAlgo1(sh, id)}
}

// ID implements Proc.
func (p *TimerFree) ID() int { return p.inner.ID() }

// Leader implements task T1's externally observable value.
func (p *TimerFree) Leader() int { return p.inner.Leader() }

// Step runs the counted-loop timer check and then one T2 iteration.
func (p *TimerFree) Step(now vclock.Time) {
	if p.countdown == 0 {
		p.countdown = p.inner.OnTimer(now)
	} else {
		p.countdown--
	}
	p.inner.Step(now)
}

// OnTimer is never armed for this variant: it returns 0, which tells the
// scheduler not to re-arm the hardware timer.
func (p *TimerFree) OnTimer(vclock.Time) uint64 { return 0 }

// BuildTimerFree allocates Algorithm 1's shared memory in mem and returns
// n timer-free processes over it.
func BuildTimerFree(mem shmem.Mem, n int) []*TimerFree {
	sh := NewShared1(mem, n)
	procs := make([]*TimerFree, n)
	for i := 0; i < n; i++ {
		procs[i] = NewTimerFree(sh, i)
	}
	return procs
}
