package core

import (
	"omegasm/internal/shmem"
	"omegasm/internal/vclock"
)

// SharedN is the shared memory of the nWnR variant (paper Section 3.5,
// "Using multi-writer/multi-reader atomic registers"): each column
// SUSPICIONS[*][k] of Algorithm 1 collapses into a single multi-writer
// register NSUSP[k] holding the total suspicion count of p_k. PROGRESS and
// STOP are unchanged.
//
// The increment of NSUSP[k] is a read-modify-write; in the simulation a
// whole T3 firing is a single scheduler event, so the RMW is atomic. On
// the live runtime (the paper assumes atomic nWnR registers, which
// subsume fetch-and-add) the read and write are two separate register
// operations, so concurrent increments can collapse into one. That only
// under-counts suspicions — the counter stays monotone, and convergence
// is unaffected: once the run stabilizes no process suspects the leader,
// every NSUSP register stops changing, and all processes compute the same
// lexicographic minimum.
type SharedN struct {
	N        int
	NSusp    []shmem.Reg // [k], multi-writer
	Progress []shmem.Reg // [i] owned by i
	Stop     []shmem.Reg // [i] owned by i
}

// NewSharedN allocates the nWnR variant's registers.
func NewSharedN(mem shmem.Mem, n int) *SharedN {
	s := &SharedN{
		N:        n,
		NSusp:    make([]shmem.Reg, n),
		Progress: make([]shmem.Reg, n),
		Stop:     make([]shmem.Reg, n),
	}
	for k := 0; k < n; k++ {
		s.NSusp[k] = mem.Word(shmem.MultiWriter, ClassNSusp, k)
		s.Progress[k] = mem.Word(k, ClassProgress, k)
		s.Stop[k] = mem.Word(k, ClassStop, k)
		shmem.SeedIfPossible(s.Stop[k], shmem.B2W(true))
	}
	return s
}

// NWNR is one process of the nWnR variant. Task bodies are those of
// Algorithm 1 with the suspicion matrix column-collapsed. The timeout is
// derived from the process's *local* count of suspicions it has itself
// issued (mySuspCount), preserving Algorithm 1's property that the timeout
// is computed from process-owned state only (paper's remark after line 27).
type NWNR struct {
	id int
	n  int
	sh *SharedN

	candidates  []bool
	last        []uint64
	mySuspCount []uint64 // suspicions issued by this process, per target

	myProgress uint64
	myStop     bool

	cachedLeader int
}

var _ Proc = (*NWNR)(nil)

// NewNWNR creates process id of the nWnR variant.
func NewNWNR(sh *SharedN, id int) *NWNR {
	p := &NWNR{
		id:           id,
		n:            sh.N,
		sh:           sh,
		candidates:   make([]bool, sh.N),
		last:         make([]uint64, sh.N),
		mySuspCount:  make([]uint64, sh.N),
		cachedLeader: id,
	}
	for k := range p.candidates {
		p.candidates[k] = true
	}
	p.myProgress = sh.Progress[id].Read(id)
	p.myStop = shmem.W2B(sh.Stop[id].Read(id))
	return p
}

// ID implements Proc.
func (p *NWNR) ID() int { return p.id }

// Leader implements task T1's externally observable value.
func (p *NWNR) Leader() int { return p.cachedLeader }

func (p *NWNR) computeLeader() int {
	susp := make([]uint64, p.n)
	for k := 0; k < p.n; k++ {
		if !p.candidates[k] {
			continue
		}
		susp[k] = p.sh.NSusp[k].Read(p.id)
	}
	p.cachedLeader = lexMin(susp, p.candidates, p.id)
	return p.cachedLeader
}

// Step is task T2, identical to Algorithm 1's.
func (p *NWNR) Step(vclock.Time) {
	if p.computeLeader() == p.id {
		p.myProgress++
		p.sh.Progress[p.id].Write(p.id, p.myProgress)
		if p.myStop {
			p.myStop = false
			p.sh.Stop[p.id].Write(p.id, shmem.B2W(false))
		}
		return
	}
	if !p.myStop {
		p.myStop = true
		p.sh.Stop[p.id].Write(p.id, shmem.B2W(true))
	}
}

// OnTimer is task T3 with the collapsed suspicion vector.
func (p *NWNR) OnTimer(vclock.Time) uint64 {
	for k := 0; k < p.n; k++ {
		if k == p.id {
			continue
		}
		stopK := shmem.W2B(p.sh.Stop[k].Read(p.id))
		progK := p.sh.Progress[k].Read(p.id)
		switch {
		case progK != p.last[k]:
			p.candidates[k] = true
			p.last[k] = progK
		case stopK:
			p.candidates[k] = false
		case p.candidates[k]:
			cur := p.sh.NSusp[k].Read(p.id)
			p.sh.NSusp[k].Write(p.id, cur+1)
			p.mySuspCount[k]++
			p.candidates[k] = false
		}
	}
	p.computeLeader()
	return maxPlusOne(p.mySuspCount)
}

// BuildNWNR allocates the nWnR variant's shared memory in mem and returns
// the n process state machines.
func BuildNWNR(mem shmem.Mem, n int) []*NWNR {
	sh := NewSharedN(mem, n)
	procs := make([]*NWNR, n)
	for i := 0; i < n; i++ {
		procs[i] = NewNWNR(sh, i)
	}
	return procs
}
