package omegasm_test

import (
	"fmt"
	"time"

	"omegasm"
)

// ExampleCluster shows the basic lifecycle: start a cluster, wait for the
// oracle outputs to converge, and shut down.
func ExampleCluster() {
	c, err := omegasm.New(omegasm.WithN(3))
	if err != nil {
		fmt.Println("config error:", err)
		return
	}
	if err := c.Start(); err != nil {
		fmt.Println("start error:", err)
		return
	}
	defer c.Stop()

	if leader, ok := c.WaitForAgreement(10 * time.Second); ok {
		fmt.Println("a leader was elected:", leader >= 0 && leader < c.N())
	}
	// Output:
	// a leader was elected: true
}

// ExampleCluster_crash demonstrates crash-stop failover: the survivors'
// oracle converges on a new correct leader.
func ExampleCluster_crash() {
	c, err := omegasm.New(omegasm.WithN(4), omegasm.WithAlgorithm(omegasm.Bounded))
	if err != nil {
		fmt.Println("config error:", err)
		return
	}
	if err := c.Start(); err != nil {
		fmt.Println("start error:", err)
		return
	}
	defer c.Stop()

	leader, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		fmt.Println("no agreement")
		return
	}
	if err := c.Crash(leader); err != nil {
		fmt.Println("crash error:", err)
		return
	}
	next, ok := c.WaitForAgreement(30 * time.Second)
	fmt.Println("re-elected:", ok && next != leader)
	// Output:
	// re-elected: true
}
