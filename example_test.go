package omegasm_test

import (
	"context"
	"fmt"
	"time"

	"omegasm"
)

// Example_shardedKV runs the whole stack as a service: a hash-partitioned
// key-value store of two consensus-backed shards, written through the
// batching MultiPut fan-out and read back through MultiGet.
func Example_shardedKV() {
	skv, err := omegasm.NewShardedKV(
		omegasm.WithShards(2),
		omegasm.WithN(3),
		omegasm.WithBatchSize(8),
	)
	if err != nil {
		fmt.Println("config error:", err)
		return
	}
	if err := skv.Start(); err != nil {
		fmt.Println("start error:", err)
		return
	}
	defer skv.Close()
	if !skv.WaitForAgreement(10 * time.Second) {
		fmt.Println("no agreement")
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	entries := make([]omegasm.Entry, 16)
	for i := range entries {
		entries[i] = omegasm.Entry{Key: uint16(i), Val: uint16(100 + i)}
	}
	if err := skv.MultiPut(ctx, entries...); err != nil {
		fmt.Println("multiput error:", err)
		return
	}
	vals, ok := skv.MultiGet(3, 11)
	fmt.Println("committed keys:", skv.Len())
	fmt.Println("key 3:", vals[0], ok[0])
	fmt.Println("key 11:", vals[1], ok[1])
	// Output:
	// committed keys: 16
	// key 3: 103 true
	// key 11: 111 true
}

// ExampleCluster shows the basic lifecycle: start a cluster, wait for the
// oracle outputs to converge, and shut down.
func ExampleCluster() {
	c, err := omegasm.New(omegasm.WithN(3))
	if err != nil {
		fmt.Println("config error:", err)
		return
	}
	if err := c.Start(); err != nil {
		fmt.Println("start error:", err)
		return
	}
	defer c.Stop()

	if leader, ok := c.WaitForAgreement(10 * time.Second); ok {
		fmt.Println("a leader was elected:", leader >= 0 && leader < c.N())
	}
	// Output:
	// a leader was elected: true
}

// ExampleCluster_crash demonstrates crash-stop failover: the survivors'
// oracle converges on a new correct leader.
func ExampleCluster_crash() {
	c, err := omegasm.New(omegasm.WithN(4), omegasm.WithAlgorithm(omegasm.Bounded))
	if err != nil {
		fmt.Println("config error:", err)
		return
	}
	if err := c.Start(); err != nil {
		fmt.Println("start error:", err)
		return
	}
	defer c.Stop()

	leader, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		fmt.Println("no agreement")
		return
	}
	if err := c.Crash(leader); err != nil {
		fmt.Println("crash error:", err)
		return
	}
	next, ok := c.WaitForAgreement(30 * time.Second)
	fmt.Println("re-elected:", ok && next != leader)
	// Output:
	// re-elected: true
}
