// Command simkv scripts a deterministic failover of the full stack under
// the virtual-time engine: elect a leader, crash exactly that leader in
// the middle of a replicated write workload, and watch the survivors
// re-elect and finish the job — then replay the identical scenario and
// verify the committed history is byte-identical. Every run of this
// program prints the same histories: the seeded adversary, not the
// wall clock, chooses the interleaving.
//
// This is the run class the paper's theorems quantify over, opened up
// for the consensus/KV layers: the live runtime can only produce such a
// crash statistically, the simulator produces it on demand, at an exact
// virtual time, reproducibly.
package main

import (
	"fmt"
	"os"
	"reflect"

	"omegasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simkv:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n       = 4
		seed    = 2024
		horizon = 600_000
		crashAt = 100_000
	)

	// Dry run: find out who this seed elects, so the crash schedule can
	// target exactly the incumbent leader.
	probe, err := omegasm.SimKV(omegasm.SimKVConfig{N: n, Seed: seed, Horizon: horizon})
	if err != nil {
		return err
	}
	leader := -1
	for p, l := range probe.Leaders {
		if !probe.Crashed[p] {
			leader = l
			break
		}
	}
	fmt.Printf("probe run: seed %d elects process %d\n", seed, leader)

	// The scenario: 10 writes spanning the crash of that leader.
	cfg := omegasm.SimKVConfig{
		N:       n,
		Seed:    seed,
		Horizon: horizon,
		Crashes: map[int]int64{leader: crashAt},
	}
	for i := 0; i < 10; i++ {
		cfg.Writes = append(cfg.Writes, omegasm.SimWrite{
			At:  int64(2_000 + i*30_000), // some land before t=100k, some after
			Key: uint16(i),
			Val: uint16(1000 + i),
		})
	}

	res, err := omegasm.SimKV(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("failover run: leader %d crashed at t=%d; %d/%d writes delivered by t=%d\n",
		leader, crashAt, res.Delivered, len(cfg.Writes), res.End)
	newLeader := -1
	for p, l := range res.Leaders {
		if !res.Crashed[p] {
			newLeader = l
			break
		}
	}
	fmt.Printf("survivors re-elected process %d\n", newLeader)
	fmt.Printf("committed history (%d entries, duplicates from failover retries possible):\n", len(res.Committed))
	for i, c := range res.Committed {
		fmt.Printf("  slot %2d: set %d = %d\n", i, c.Key, c.Val)
	}

	// Replay: the same config must reproduce the history exactly.
	again, err := omegasm.SimKV(cfg)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(res.Committed, again.Committed) {
		return fmt.Errorf("replay diverged — determinism broken")
	}
	fmt.Println("replay: committed history is byte-identical — the scenario is fully reproducible")
	return nil
}
