// Quickstart: run five Omega processes on live goroutines, watch them
// agree on a leader, crash the leader, and watch the survivors re-elect.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"omegasm"
)

func main() {
	c, err := omegasm.New(
		omegasm.WithN(5),
		omegasm.WithAlgorithm(omegasm.WriteEfficient), // the paper's Figure 2
		omegasm.WithInstrumentation(),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Start(); err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	leader, ok := c.WaitForAgreement(5 * time.Second)
	if !ok {
		log.Fatal("no agreement within 5s")
	}
	fmt.Printf("elected leader: process %d\n", leader)

	fmt.Printf("crashing process %d...\n", leader)
	if err := c.Crash(leader); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	next, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		log.Fatal("no re-election within 10s")
	}
	fmt.Printf("re-elected leader: process %d (took %v)\n", next, time.Since(start).Round(time.Millisecond))

	// The paper's Theorem 3 in action: once stable, only the leader keeps
	// writing shared memory. Compare per-process write counts over a
	// settled window.
	before := c.Stats()
	time.Sleep(500 * time.Millisecond)
	after := c.Stats()
	fmt.Println("writes during a stable 500ms window:")
	for p := range after.Writers {
		delta := after.Writers[p] - before.Writers[p]
		marker := ""
		if p == next {
			marker = "  <- leader"
		}
		if c.Crashed(p) {
			marker = "  (crashed)"
		}
		fmt.Printf("  process %d: %5d writes%s\n", p, delta, marker)
	}
}
