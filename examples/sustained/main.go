// Sustained: an unbounded write stream through a deliberately tiny
// sharded store. Each shard's log window holds only 64 consensus slots,
// yet the demo pushes a stream 10x the store's total slot capacity —
// checkpointing seals the log prefix into published snapshots, a quorum
// acknowledges each seal, and the sealed slots recycle, so ErrLogFull
// never happens. Mid-stream it crashes one shard's elected leader to show
// that recycling survives failover: the survivors finish the in-flight
// checkpoint, keep sealing, and the stream never stalls. At the end every
// key reads back with its final value.
//
//	go run ./examples/sustained [-writes N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"omegasm"
)

func main() {
	const (
		shards = 2
		slots  = 64
		keys   = 512
	)
	writes := flag.Int("writes", 10*shards*slots, "stream length in committed writes (default 10x the store's slot capacity)")
	flag.Parse()

	skv, err := omegasm.NewShardedKV(
		omegasm.WithShards(shards),
		omegasm.WithN(3),
		omegasm.WithShardSlots(slots),
		omegasm.WithBatchSize(4),
		// Checkpointing is on by default (every slots/4 decided slots);
		// spelled out here because it is the point of the demo.
		omegasm.WithCheckpointEvery(slots/4),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := skv.Start(); err != nil {
		log.Fatal(err)
	}
	defer skv.Close()
	if !skv.WaitForAgreement(20 * time.Second) {
		log.Fatal("shards did not elect a leader in time")
	}
	fmt.Printf("store up: %d shards x %d-slot windows (%d slots total), checkpoint every %d slots\n",
		skv.Shards(), slots, skv.Capacity(), skv.CheckpointEvery())
	fmt.Printf("streaming %d writes — %.0fx the store's slot capacity\n",
		*writes, float64(*writes)/float64(skv.Capacity()))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	crashAt := *writes / 2
	start := time.Now()
	for k := 0; k < *writes; k++ {
		if k == crashAt {
			// Kill the leader of key 0's shard while its log is mid-cycle.
			sh := skv.ShardFor(0)
			if leader, ok := skv.Fleet().Leader(sh); ok {
				fmt.Printf("mid-stream (%d writes in): crashing process %d, leader of shard %d\n",
					k, leader, sh)
				if err := skv.Fleet().Crash(sh, leader); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := skv.Put(ctx, uint16(k%keys), uint16(k)); err != nil {
			if errors.Is(err, omegasm.ErrLogFull) {
				log.Fatalf("write %d hit ErrLogFull: recycling is broken", k)
			}
			log.Fatalf("write %d: %v", k, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("committed %d writes in %v (%.0f commits/s) using %d checkpoints\n",
		*writes, elapsed.Round(time.Millisecond),
		float64(*writes)/elapsed.Seconds(), skv.Checkpoints())

	// Full readback: every key holds the last value written to it.
	bad := 0
	for k := 0; k < keys && k < *writes; k++ {
		last := *writes - 1 - (*writes-1-k)%keys
		if v, ok := skv.Get(uint16(k)); !ok || v != uint16(last) {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d keys read back wrong after the sustained stream", bad)
	}
	fmt.Printf("readback clean: %d keys, every one at its final value; ", min(keys, *writes))
	fmt.Println("the log never filled")
}
