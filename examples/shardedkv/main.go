// Shardedkv: the module's whole stack serving traffic as one service. A
// ShardedKV partitions the key space over four consensus-backed shards —
// each shard an Omega-elected cluster running its own Disk-Paxos
// replicated log on the wake-driven engine — with per-shard proposal
// batching packing grouped writes into single consensus slots. The demo
// loads the store through the MultiPut fan-out, shows how many consensus
// slots the batches actually consumed, crashes one shard's elected
// leader mid-traffic, and keeps serving: the other shards never notice,
// and the crashed shard resumes as soon as its survivors re-elect.
//
//	go run ./examples/shardedkv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"omegasm"
)

func main() {
	skv, err := omegasm.NewShardedKV(
		omegasm.WithShards(4),
		omegasm.WithN(3),
		omegasm.WithBatchSize(16),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := skv.Start(); err != nil {
		log.Fatal(err)
	}
	defer skv.Close()
	if !skv.WaitForAgreement(20 * time.Second) {
		log.Fatal("shards did not elect a leader in time")
	}
	fmt.Printf("sharded store up: %d shards, batch size %d\n", skv.Shards(), skv.BatchSize())
	for i := 0; i < skv.Shards(); i++ {
		if l, ok := skv.Fleet().Leader(i); ok {
			fmt.Printf("  shard %d led by process %d\n", i, l)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Load 256 keys through the cross-shard group-commit path.
	var entries []omegasm.Entry
	for k := 0; k < 256; k++ {
		entries = append(entries, omegasm.Entry{Key: uint16(k), Val: uint16(1000 + k)})
	}
	if err := skv.MultiPut(ctx, entries...); err != nil {
		log.Fatal(err)
	}
	slots := 0
	for i := 0; i < skv.Shards(); i++ {
		slots += skv.Shard(i).SlotsUsed()
	}
	fmt.Printf("committed %d writes over %d shards using %d consensus slots (avg batch %.1f)\n",
		skv.Applied(), skv.Shards(), slots, float64(skv.Applied())/float64(slots))

	// Crash the leader of key 0's shard while traffic continues.
	victimShard := skv.ShardFor(0)
	leader, ok := skv.Fleet().Leader(victimShard)
	if !ok {
		log.Fatal("victim shard lost agreement before the crash")
	}
	fmt.Printf("crashing process %d, the leader of shard %d\n", leader, victimShard)
	if err := skv.Fleet().Crash(victimShard, leader); err != nil {
		log.Fatal(err)
	}

	// Writes keep committing: routed Puts retry across the failover.
	for k := 0; k < 64; k++ {
		if err := skv.Put(ctx, uint16(k), uint16(2000+k)); err != nil {
			log.Fatal(err)
		}
	}
	vals, found := skv.MultiGet(0, 63, 200)
	fmt.Printf("after failover: key 0 = %d (%v), key 63 = %d (%v), key 200 = %d (%v)\n",
		vals[0], found[0], vals[1], found[1], vals[2], found[2])
	if newLeader, ok := skv.Fleet().Leader(victimShard); ok {
		fmt.Printf("shard %d re-elected: process %d leads the survivors\n", victimShard, newLeader)
	}
	fmt.Println("done: all shards serving, one leader down, zero writes lost")
}
