// Sankv: the full paper stack through the public API alone. A cluster is
// built over the SAN substrate (registers replicated across simulated
// network-attached disks — the deployment the paper's Section 1
// motivates), Omega elects a leader, and the cluster serves the
// replicated key-value store. Mid-run the elected leader crashes: the
// survivors re-elect and the store keeps accepting writes, with every
// pre-crash key intact — the end-to-end availability story Omega exists
// to provide.
//
//	go run ./examples/sankv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"omegasm"
)

func main() {
	c, err := omegasm.New(
		omegasm.WithN(3),
		omegasm.WithSAN(omegasm.SANConfig{
			Disks:       5,
			BaseLatency: 100 * time.Microsecond,
			Jitter:      200 * time.Microsecond,
		}),
		// Pace for disk-speed registers: quorum operations per step.
		omegasm.WithStepInterval(time.Millisecond),
		omegasm.WithTimerUnit(15*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Start(); err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	leader, ok := c.WaitForAgreement(time.Minute)
	if !ok {
		log.Fatal("no leader over the SAN within a minute")
	}
	fmt.Printf("leader %d elected over %d disks (substrate %q)\n",
		leader, c.DiskCount(), c.Substrate())

	kv, err := omegasm.NewKV(c, omegasm.KVSlots(128))
	if err != nil {
		log.Fatal(err)
	}
	defer kv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Writes before the fault: replicated through the disk-paxos log.
	for k := uint16(0); k < 10; k++ {
		if err := kv.Put(ctx, k, 1000+k); err != nil {
			log.Fatalf("put key %d: %v", k, err)
		}
	}
	fmt.Printf("10 writes committed; store holds %d keys\n", kv.Len())

	// Kill the leader mid-service. Its uncommitted queue dies with it;
	// everything committed is on a disk majority and survives.
	fmt.Printf("crashing leader %d...\n", leader)
	if err := c.Crash(leader); err != nil {
		log.Fatal(err)
	}
	next, ok := c.WaitForAgreement(time.Minute)
	if !ok {
		log.Fatal("no re-election within a minute")
	}
	fmt.Printf("re-elected leader %d; resuming writes\n", next)

	// Service continues under the new leader: Put retries across the
	// failover internally.
	for k := uint16(10); k < 20; k++ {
		if err := kv.Put(ctx, k, 1000+k); err != nil {
			log.Fatalf("put key %d after failover: %v", k, err)
		}
	}

	// Every write from before and after the crash is present.
	missing := 0
	for k := uint16(0); k < 20; k++ {
		if v, ok := kv.Get(k); !ok || v != 1000+k {
			missing++
		}
	}
	fmt.Printf("store after failover: %d keys, %d missing, %d log entries applied\n",
		kv.Len(), missing, kv.Applied())
}
