// Lowerbound: replay the paper's Theorem 5 / Figure 4 impossibility
// construction and watch it play out. A bounded-memory "obvious fix" of
// Algorithm 1 (heartbeats wrap modulo 4, suspicion counters saturate,
// non-leaders stay silent) is driven by a perfectly legal AWB schedule —
// synchronous processes and timers that merely round their expiries up to
// a multiple of the heartbeat period. Every observation of the shared
// memory then lands on the same recurring state S, watchers cannot tell
// the lockstep leader from a crashed one, and leadership thrashes forever.
// The paper's own algorithms stabilize under the identical adversary.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"omegasm/internal/harness"
)

func main() {
	e, err := harness.ByID("F4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n(paper artifact: %s)\n\n", e.Title, e.Paper)
	out, err := e.Run(harness.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, tbl := range out.Tables {
		fmt.Printf("%s\n", tbl.Render())
	}
	fmt.Printf("verdicts:\n%s", out.Report)
	if out.Report.AllOK() {
		fmt.Println("\nTheorem 5 reproduced: bounded memory with silent non-leaders cannot implement Omega.")
	}
}
