// Sanpaxos: the paper's motivating deployment, end to end. A storage area
// network of commodity disks implements the shared memory (paper Section
// 1: "communicate through a network of attached disks"); the Omega
// algorithm elects a leader over disk-replicated registers; the leader
// drives a Disk-Paxos replicated log (the paper's references [9], [16]).
// One disk crashes mid-run and is masked by the majority quorum.
//
// This example uses the repository's internal substrates directly, since
// it demonstrates the full stack rather than the public facade.
//
//	go run ./examples/sanpaxos
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/san"
)

func main() {
	const (
		n     = 3
		disks = 5
		slots = 16
	)
	// Five disks with realistic latency spread; quorum is 3.
	var ds []*san.Disk
	for d := 0; d < disks; d++ {
		ds = append(ds, san.NewDisk(san.Latency{
			Base:   200 * time.Microsecond,
			Jitter: 300 * time.Microsecond,
			SpikeP: 0.01,
			Spike:  3 * time.Millisecond,
		}, int64(d+1)))
	}
	mem, err := san.NewDiskMem(n, ds)
	if err != nil {
		log.Fatal(err)
	}

	// Omega over the SAN: the same Figure 2 state machines, now reading
	// and writing disk-replicated registers.
	procs := make([]rt.Proc, n)
	for i, p := range core.BuildAlgo1(mem, n) {
		procs[i] = p
	}
	cluster, err := rt.New(rt.Config{
		StepInterval: 2 * time.Millisecond, // disk ops are slow; pace accordingly
		TimerUnit:    25 * time.Millisecond,
	}, procs)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	leader, ok := cluster.WaitForAgreement(30 * time.Second)
	if !ok {
		log.Fatal("no leader over the SAN within 30s")
	}
	fmt.Printf("leader over the SAN: process %d (quorum %d of %d disks)\n",
		leader, mem.Quorum(), disks)

	// A replicated log over the same disks, driven by the oracle.
	dlog := consensus.NewLog(mem, n, slots)
	replicas := make([]*consensus.Replica, n)
	for i := 0; i < n; i++ {
		i := i
		r, err := consensus.NewReplica(dlog, i, func() int {
			l, err := cluster.Leader(i)
			if err != nil {
				return -1
			}
			return l
		})
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			r.Submit(uint32(i*100 + k + 1))
		}
		replicas[i] = r
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, r := range replicas {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					r.Step(0)
				}
			}
		}()
	}

	// Crash a disk mid-replication: the quorum masks it.
	time.Sleep(300 * time.Millisecond)
	fmt.Println("crashing disk 0 mid-replication...")
	ds[0].Crash()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(replicas[leader].Committed()) >= 4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	fmt.Println("committed prefixes (must agree):")
	for i, r := range replicas {
		fmt.Printf("  replica %d: %v\n", i, r.Committed())
	}
}
