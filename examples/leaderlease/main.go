// Leaderlease: use the Omega oracle to coordinate a pool of workers. Only
// the process the oracle names leader drains the job queue; when the
// leader crashes, the survivors' oracle converges on a new one and work
// resumes — the classic "primary election" pattern the paper's
// introduction motivates (it is the liveness core of Paxos-style
// replication).
//
// Note what Omega does and does not give you: during the anarchy period
// two workers may briefly both believe they lead (the oracle is only
// *eventually* accurate), so the jobs here are idempotent counters. For
// mutual exclusion you would layer consensus on top (see the sanpaxos
// example).
//
//	go run ./examples/leaderlease
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"omegasm"
)

func main() {
	const n = 4
	c, err := omegasm.New(omegasm.WithN(n), omegasm.WithAlgorithm(omegasm.Bounded))
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Start(); err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	var (
		jobsDone [n]atomic.Uint64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	// One worker per process: it does a unit of work only while its own
	// oracle names it leader.
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					if c.Crashed(w) {
						return
					}
					if l, err := c.Leader(w); err == nil && l == w {
						jobsDone[w].Add(1)
					}
				}
			}
		}()
	}

	leader, ok := c.WaitForAgreement(5 * time.Second)
	if !ok {
		log.Fatal("no agreement within 5s")
	}
	fmt.Printf("leader %d is working...\n", leader)
	time.Sleep(750 * time.Millisecond)

	fmt.Printf("crashing leader %d mid-work...\n", leader)
	if err := c.Crash(leader); err != nil {
		log.Fatal(err)
	}
	next, ok := c.WaitForAgreement(10 * time.Second)
	if !ok {
		log.Fatal("no failover within 10s")
	}
	fmt.Printf("failover complete: leader %d resumed the work\n", next)
	time.Sleep(750 * time.Millisecond)

	close(stop)
	wg.Wait()
	fmt.Println("jobs processed per worker:")
	for w := 0; w < n; w++ {
		note := ""
		if w == leader {
			note = "  (first leader, crashed)"
		}
		if w == next {
			note = "  (current leader)"
		}
		fmt.Printf("  worker %d: %5d%s\n", w, jobsDone[w].Load(), note)
	}
}
