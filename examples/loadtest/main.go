// Loadtest: the load harness driving a live sharded store through a
// mid-run leader crash. A declarative workload spec (Poisson arrivals,
// Zipf keys, two SLO classes) is expanded into an open-loop schedule and
// executed against a ShardedKV on the wall clock; halfway through the
// arrival window the demo crashes one shard's elected leader. Because
// the runner is open-loop — arrivals keep coming on the clock, latency
// measured from each request's scheduled arrival — the failover shows up
// exactly where it happened: p99 spikes in the arrival windows whose
// requests queued behind the re-election, and the windows before it stay
// clean.
//
//	go run ./examples/loadtest [-rate N] [-dur D]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"omegasm"
	"omegasm/internal/stats"
	"omegasm/load"
)

func main() {
	rate := flag.Float64("rate", 1500, "aggregate arrival rate, requests/sec")
	dur := flag.Duration("dur", 3*time.Second, "arrival window")
	flag.Parse()

	spec := load.Spec{
		Name:         "crash-recovery",
		Clients:      32,
		Duration:     *dur,
		Seed:         11,
		Rate:         *rate,
		Process:      load.Poisson,
		Keys:         512,
		ZipfS:        1.2,
		ReadFraction: 0.5,
		Classes: []load.Class{
			{Name: "interactive", Weight: 0.7, SLO: 25 * time.Millisecond},
			{Name: "batch", Weight: 0.3, SLO: 250 * time.Millisecond},
		},
	}

	skv, err := omegasm.NewShardedKV(
		omegasm.WithShards(2),
		omegasm.WithN(3),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := skv.Start(); err != nil {
		log.Fatal(err)
	}
	defer skv.Close()
	if !skv.WaitForAgreement(20 * time.Second) {
		log.Fatal("shards did not elect a leader in time")
	}
	fmt.Printf("store up: 2 shards x 3 procs; running %q at %.0f req/s for %v\n",
		spec.Name, spec.Rate, spec.Duration)

	// Crash the leader of key 0's shard halfway through the window,
	// while the open-loop runner keeps issuing arrivals on the clock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(spec.Duration / 2)
		shard := skv.ShardFor(0)
		leader, ok := skv.Fleet().Leader(shard)
		if !ok {
			fmt.Println("(crash skipped: shard lost agreement)")
			return
		}
		if err := skv.Fleet().Crash(shard, leader); err != nil {
			fmt.Printf("(crash failed: %v)\n", err)
			return
		}
		fmt.Printf("crashed process %d, leader of shard %d, at t=%v\n", leader, shard, spec.Duration/2)
	}()

	rep, results, err := load.RunLiveResults(&spec, skv, load.LiveOptions{Drain: 5 * time.Second})
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", rep.String())

	// Windowed percentiles by arrival third: the crash lands mid-run, so
	// the pre-crash window stays clean and the windows overlapping the
	// re-election carry the spike.
	third := spec.Duration / 3
	names := []string{"first third", "middle third", "last third"}
	fmt.Printf("p50/p99 by arrival window (crash at t=%v):\n", spec.Duration/2)
	for w := 0; w < 3; w++ {
		var lat []float64
		missed := 0
		for _, r := range results {
			if r.At < time.Duration(w)*third || r.At >= time.Duration(w+1)*third {
				continue
			}
			if r.Latency < 0 {
				missed++
				continue
			}
			lat = append(lat, float64(r.Latency)/float64(time.Millisecond))
		}
		s := stats.Summarize(lat)
		fmt.Printf("  %-12s  n=%4d  p50=%7.2fms  p99=%7.2fms  incomplete=%d\n",
			names[w], s.N, s.P50, s.P99, missed)
	}
	fmt.Println("done: every arrival was issued on the clock and measured from its" +
		" scheduled time, so whatever the failover cost, it is in the tail above")
}
