package omegasm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FleetConfig parameterizes a Fleet.
type FleetConfig struct {
	// Clusters is the number of independent Omega clusters (>= 1).
	Clusters int
	// Cluster is the per-cluster configuration; every cluster runs the
	// same one (its N, Algorithm, intervals, instrumentation).
	Cluster Config
	// RefreshInterval is how often the fleet refreshes its cached
	// per-cluster agreement view; default 200us. Leader answers are at
	// most this stale.
	RefreshInterval time.Duration
}

// Fleet runs many independent Omega clusters concurrently — the
// multi-tenant deployment shape, where each cluster elects a leader for
// one replicated object — and answers Leader queries from a read-mostly
// fast path: a background refresher folds each cluster's agreement state
// into one packed atomic word, so a query is a single atomic load
// regardless of cluster size or query rate.
type Fleet struct {
	cfg      FleetConfig
	clusters []*Cluster
	// view[i] is cluster i's packed agreement word, see packView.
	view []atomic.Uint64

	mu      sync.Mutex
	started bool
	stopped bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// packView encodes an AgreedLeader result in one word: bit 63 set when the
// cluster's live processes agree, low bits the leader id.
func packView(leader int, agreed bool) uint64 {
	if !agreed {
		return 0
	}
	return 1<<63 | uint64(leader)
}

func unpackView(w uint64) (leader int, agreed bool) {
	if w&(1<<63) == 0 {
		return -1, false
	}
	return int(w &^ (1 << 63)), true
}

// NewFleet validates cfg and builds a stopped Fleet; call Start to run it.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("omegasm: need at least 1 cluster, got %d", cfg.Clusters)
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 200 * time.Microsecond
	}
	f := &Fleet{
		cfg:  cfg,
		view: make([]atomic.Uint64, cfg.Clusters),
		stop: make(chan struct{}),
	}
	for i := 0; i < cfg.Clusters; i++ {
		c, err := New(cfg.Cluster)
		if err != nil {
			return nil, fmt.Errorf("omegasm: fleet cluster %d: %w", i, err)
		}
		f.clusters = append(f.clusters, c)
	}
	return f, nil
}

// Start launches every cluster and the view refresher. It may be called
// once.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("omegasm: fleet already started")
	}
	f.started = true
	for i, c := range f.clusters {
		if err := c.Start(); err != nil {
			for _, prev := range f.clusters[:i] {
				prev.Stop()
			}
			return err
		}
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		ticker := time.NewTicker(f.cfg.RefreshInterval)
		defer ticker.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				for i := range f.clusters {
					f.refresh(i)
				}
			}
		}
	}()
	return nil
}

// refresh folds cluster i's live agreement state into the cached view.
func (f *Fleet) refresh(i int) {
	leader, agreed := f.clusters[i].AgreedLeader()
	f.view[i].Store(packView(leader, agreed))
}

// Stop halts the refresher and every cluster. Idempotent.
func (f *Fleet) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return
	}
	f.stopped = true
	close(f.stop)
	f.wg.Wait()
	for _, c := range f.clusters {
		c.Stop()
	}
}

// Clusters returns the number of clusters in the fleet.
func (f *Fleet) Clusters() int { return len(f.clusters) }

// Cluster returns cluster i for direct access (Stats, Crash, Watch, ...),
// or nil if out of range.
func (f *Fleet) Cluster(i int) *Cluster {
	if i < 0 || i >= len(f.clusters) {
		return nil
	}
	return f.clusters[i]
}

// Leader returns cluster i's agreed leader from the cached view: a single
// atomic load, safe to call at arbitrary rates from any number of
// goroutines. ok is false while the cluster's live processes disagree (or
// before the first refresh); the answer is at most RefreshInterval stale.
func (f *Fleet) Leader(i int) (leader int, ok bool) {
	if i < 0 || i >= len(f.clusters) {
		return -1, false
	}
	return unpackView(f.view[i].Load())
}

// Crash crashes process p of cluster i, and refreshes that cluster's view
// immediately so queries stop naming a dead leader as soon as the
// survivors re-elect.
func (f *Fleet) Crash(i, p int) error {
	if i < 0 || i >= len(f.clusters) {
		return fmt.Errorf("omegasm: no cluster %d", i)
	}
	if err := f.clusters[i].Crash(p); err != nil {
		return err
	}
	f.refresh(i)
	return nil
}

// WaitForAgreement blocks until every cluster's live processes agree on a
// live leader (refreshing the cached view as each cluster settles), or the
// timeout elapses. It returns the per-cluster leaders and whether all
// clusters agreed in time.
func (f *Fleet) WaitForAgreement(timeout time.Duration) ([]int, bool) {
	leaders := make([]int, len(f.clusters))
	deadline := time.Now().Add(timeout)
	for i, c := range f.clusters {
		remain := time.Until(deadline)
		if remain <= 0 {
			return leaders, false
		}
		l, ok := c.WaitForAgreement(remain)
		if !ok {
			return leaders, false
		}
		leaders[i] = l
		f.refresh(i)
	}
	return leaders, true
}
