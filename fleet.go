package omegasm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"omegasm/internal/engine"
	"omegasm/internal/vclock"
)

// FleetConfig is the closed configuration struct of the pre-options
// fleet API.
//
// Deprecated: build fleets with NewFleet and functional options instead.
// The field mapping is WithClusters(cfg.Clusters),
// WithRefreshInterval(cfg.RefreshInterval) and the Cluster field's
// options (see Config) applied fleet-wide; FleetConfig cannot express
// per-cluster overrides or substrates.
type FleetConfig struct {
	// Clusters is the number of independent Omega clusters (>= 1).
	Clusters int
	// Cluster is the per-cluster configuration; every cluster runs the
	// same one (its N, Algorithm, intervals, instrumentation).
	Cluster Config
	// RefreshInterval is how often the fleet refreshes its cached
	// per-cluster agreement view; default 200us. Leader answers are at
	// most this stale.
	RefreshInterval time.Duration
}

// NewFleetFromConfig builds a Fleet from the legacy FleetConfig struct.
//
// Deprecated: use NewFleet with functional options.
func NewFleetFromConfig(cfg FleetConfig) (*Fleet, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("omegasm: need at least 1 cluster, got %d", cfg.Clusters)
	}
	opts := append(cfg.Cluster.options(), WithClusters(cfg.Clusters))
	if cfg.RefreshInterval > 0 {
		opts = append(opts, WithRefreshInterval(cfg.RefreshInterval))
	}
	return NewFleet(opts...)
}

// Fleet runs many independent Omega clusters concurrently — the
// multi-tenant deployment shape, where each cluster elects a leader for
// one replicated object — and answers Leader queries from a read-mostly
// fast path: a background refresher folds each cluster's agreement state
// into one packed atomic word, so a query is a single atomic load
// regardless of cluster size or query rate.
type Fleet struct {
	refreshInterval time.Duration
	clusters        []*Cluster
	// view[i] is cluster i's packed agreement word, see packView.
	view []atomic.Uint64

	mu      sync.Mutex
	started bool
	stopped bool
	// eng hosts the view refresher as one fixed-cadence machine.
	eng *engine.Live
}

// packView encodes an AgreedLeader result in one word: bit 63 set when the
// cluster's live processes agree, low bits the leader id.
func packView(leader int, agreed bool) uint64 {
	if !agreed {
		return 0
	}
	return 1<<63 | uint64(leader)
}

func unpackView(w uint64) (leader int, agreed bool) {
	if w&(1<<63) == 0 {
		return -1, false
	}
	return int(w &^ (1 << 63)), true
}

// NewFleet validates the options and builds a stopped Fleet; call Start
// to run it. Cluster options (WithN, WithAlgorithm, WithSAN, ...) apply
// to every member; the fleet-only options WithClusters,
// WithRefreshInterval and WithClusterOptions shape the fleet itself.
// Per-cluster overrides compose after the fleet-wide options, so a
// heterogeneous fleet is:
//
//	f, err := omegasm.NewFleet(
//		omegasm.WithClusters(8),
//		omegasm.WithN(3),
//		omegasm.WithClusterOptions(0, omegasm.WithN(5), omegasm.WithSAN(omegasm.SANConfig{})),
//	)
//
// Substrate-backed members get their own substrate instance each (a SAN
// cluster's disk farm is not shared with its neighbors).
func NewFleet(opts ...Option) (*Fleet, error) {
	fs := newSettings()
	if err := fs.apply(opts); err != nil {
		return nil, err
	}
	if err := fs.rejectShardedOptions(); err != nil {
		return nil, err
	}
	return newFleetFromSettings(fs, opts)
}

// newFleetFromSettings builds a Fleet from resolved fleet-level settings,
// re-resolving the option list per member (shared by NewFleet and
// NewShardedKV, which fixes the cluster count to its shard count first).
func newFleetFromSettings(fs *settings, opts []Option) (*Fleet, error) {
	if fs.refreshInterval <= 0 {
		fs.refreshInterval = engine.DefaultStepInterval
	}
	for _, ov := range fs.overrides {
		if ov.index >= fs.clusters {
			return nil, fmt.Errorf("omegasm: cluster override index %d out of range (fleet of %d)", ov.index, fs.clusters)
		}
	}
	f := &Fleet{
		refreshInterval: fs.refreshInterval,
		view:            make([]atomic.Uint64, fs.clusters),
		eng:             engine.NewLive(engine.LiveConfig{}),
	}
	for i := 0; i < fs.clusters; i++ {
		// Re-resolve the full option list per member so each cluster gets
		// fresh state (its own substrate instance), then layer this
		// member's overrides on top.
		cs := newSettings()
		if err := cs.apply(opts); err != nil {
			return nil, err
		}
		cs.inOverride = true
		for _, ov := range fs.overrides {
			if ov.index != i {
				continue
			}
			if err := cs.apply(ov.opts); err != nil {
				return nil, fmt.Errorf("omegasm: fleet cluster %d: %w", i, err)
			}
		}
		c, err := newCluster(cs)
		if err != nil {
			return nil, fmt.Errorf("omegasm: fleet cluster %d: %w", i, err)
		}
		f.clusters = append(f.clusters, c)
	}
	return f, nil
}

// Start launches every cluster and the view refresher. It may be called
// once; a stopped fleet cannot be restarted.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return fmt.Errorf("omegasm: fleet already stopped")
	}
	if f.started {
		return fmt.Errorf("omegasm: fleet already started")
	}
	f.started = true
	for i, c := range f.clusters {
		if err := c.Start(); err != nil {
			for _, prev := range f.clusters[:i] {
				prev.Stop()
			}
			return err
		}
	}
	interval := int64(f.refreshInterval)
	f.eng.Add(engine.MachineFunc(func(now vclock.Time) engine.Hint {
		for i := range f.clusters {
			f.refresh(i)
		}
		return engine.At(now + interval)
	}), engine.FirstStepAt(interval))
	return f.eng.Start()
}

// refresh folds cluster i's live agreement state into the cached view.
func (f *Fleet) refresh(i int) {
	leader, agreed := f.clusters[i].AgreedLeader()
	f.view[i].Store(packView(leader, agreed))
}

// Stop halts the refresher and every cluster. Idempotent, and safe to
// call on a fleet that was never started.
func (f *Fleet) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return
	}
	f.stopped = true
	f.eng.Stop()
	for _, c := range f.clusters {
		c.Stop()
	}
}

// Clusters returns the number of clusters in the fleet.
func (f *Fleet) Clusters() int { return len(f.clusters) }

// Cluster returns cluster i for direct access (Stats, Crash, Watch, ...),
// or nil if out of range.
func (f *Fleet) Cluster(i int) *Cluster {
	if i < 0 || i >= len(f.clusters) {
		return nil
	}
	return f.clusters[i]
}

// Leader returns cluster i's agreed leader from the cached view: a single
// atomic load, safe to call at arbitrary rates from any number of
// goroutines. ok is false while the cluster's live processes disagree (or
// before the first refresh); the answer is at most RefreshInterval stale.
func (f *Fleet) Leader(i int) (leader int, ok bool) {
	if i < 0 || i >= len(f.clusters) {
		return -1, false
	}
	return unpackView(f.view[i].Load())
}

// Crash crashes process p of cluster i, and refreshes that cluster's view
// immediately so queries stop naming a dead leader as soon as the
// survivors re-elect. It errors on an out-of-range cluster or process
// index, and on a fleet that has already been stopped (whose processes
// are all down; crashing one would be meaningless).
func (f *Fleet) Crash(i, p int) error {
	f.mu.Lock()
	stopped := f.stopped
	f.mu.Unlock()
	if stopped {
		return fmt.Errorf("omegasm: fleet already stopped")
	}
	if i < 0 || i >= len(f.clusters) {
		return fmt.Errorf("omegasm: no cluster %d", i)
	}
	if err := f.clusters[i].Crash(p); err != nil {
		return err
	}
	f.refresh(i)
	return nil
}

// WaitForAgreement blocks until every cluster's live processes agree on a
// live leader (refreshing the cached view as each cluster settles), or
// the timeout elapses. All clusters are waited on in parallel, so the
// timeout bounds total wall time: the slowest cluster never eats into the
// others' budget, and a late cluster is detected within one timeout no
// matter how many siblings settle first. It returns the per-cluster
// leaders and whether all clusters agreed in time. WaitForAgreement is
// safe to race with Stop: a stopped fleet's processes are all down and
// report no agreement, so the call returns ok == false within the
// timeout instead of blocking forever.
func (f *Fleet) WaitForAgreement(timeout time.Duration) ([]int, bool) {
	leaders := make([]int, len(f.clusters))
	agreed := make([]bool, len(f.clusters))
	var wg sync.WaitGroup
	for i, c := range f.clusters {
		wg.Add(1)
		go func(i int, c *Cluster) {
			defer wg.Done()
			l, ok := c.WaitForAgreement(timeout)
			if ok {
				leaders[i], agreed[i] = l, true
				f.refresh(i)
			}
		}(i, c)
	}
	wg.Wait()
	for _, ok := range agreed {
		if !ok {
			return leaders, false
		}
	}
	return leaders, true
}
