module omegasm

go 1.24
