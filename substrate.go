package omegasm

import (
	"fmt"
	"time"

	"omegasm/internal/engine"
	"omegasm/internal/san"
	"omegasm/internal/shmem"
)

// Substrate is the shared-memory medium a cluster's processes communicate
// through. Two substrates ship: Atomic (sync/atomic registers in process
// memory — the default) and SAN (registers replicated over simulated
// network-attached disks with quorum reads and writes — the deployment
// the paper's introduction motivates). The same algorithms run over
// either; only pacing defaults differ.
//
// The interface is sealed: its contract is in terms of the internal
// register substrate, so implementations outside this package are not
// possible. Choose with WithSubstrate, or the WithSAN shorthand.
type Substrate interface {
	// Name identifies the substrate ("atomic", "san") in logs and Stats.
	Name() string

	// open allocates a fresh shared memory for an n-process cluster.
	// Sealed.
	open(n int, instrument bool) (*openedMem, error)
	// pacing returns the substrate's default (StepInterval, TimerUnit).
	// Sealed.
	pacing() (step, timer time.Duration)
}

// openedMem is what a substrate hands the cluster: the register memory
// plus any substrate-specific handles (the SAN's disks, for fault
// injection).
type openedMem struct {
	mem   shmem.Mem
	disks []*san.Disk
}

// Atomic returns the default substrate: each register is a sync/atomic
// word, giving exactly the paper's 1WnR atomic-register semantics from
// the Go memory model's sequentially consistent atomics.
func Atomic() Substrate { return atomicSubstrate{} }

type atomicSubstrate struct{}

func (atomicSubstrate) Name() string { return "atomic" }

func (atomicSubstrate) pacing() (time.Duration, time.Duration) {
	// The shared engine defaults: one source for the live engine, the
	// Drive shim and the options layer, so they cannot drift.
	return engine.DefaultStepInterval, engine.DefaultTimerUnit
}

func (atomicSubstrate) open(n int, instrument bool) (*openedMem, error) {
	return &openedMem{mem: shmem.NewAtomicMem(n, instrument)}, nil
}

// SANConfig parameterizes the SAN substrate's simulated disk farm. The
// zero value is a usable default: five ideal (zero-latency) disks.
type SANConfig struct {
	// Disks is the number of simulated disks (default 5). A majority must
	// stay alive for the cluster to make progress; prefer an odd count.
	Disks int
	// BaseLatency is the minimum per-operation disk latency. Zero is an
	// ideal SAN; 200us is a realistic commodity figure.
	BaseLatency time.Duration
	// Jitter is the uniform extra latency added per operation.
	Jitter time.Duration
	// SpikeP is the probability (0..1) of a latency spike per operation.
	SpikeP float64
	// Spike is the spike magnitude (uniform up to). Required when SpikeP
	// is positive.
	Spike time.Duration
	// Seed seeds the per-disk latency generators (default 1). Runs with
	// the same seed draw the same latency sequences.
	Seed int64
}

func (cfg SANConfig) normalize() (SANConfig, error) {
	if cfg.Disks == 0 {
		cfg.Disks = 5
	}
	if cfg.Disks < 1 {
		return cfg, fmt.Errorf("omegasm: SAN needs at least 1 disk, got %d", cfg.Disks)
	}
	if cfg.BaseLatency < 0 || cfg.Jitter < 0 || cfg.Spike < 0 {
		return cfg, fmt.Errorf("omegasm: SAN latencies must be non-negative")
	}
	if cfg.SpikeP < 0 || cfg.SpikeP > 1 {
		return cfg, fmt.Errorf("omegasm: SAN spike probability %v outside [0, 1]", cfg.SpikeP)
	}
	if cfg.SpikeP > 0 && cfg.Spike == 0 {
		return cfg, fmt.Errorf("omegasm: SAN spike probability set but spike magnitude is zero")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg, nil
}

// SAN returns a substrate of cfg.Disks simulated network-attached disks.
// Every register is replicated across all disks and accessed with the
// single-writer quorum discipline (write all / ack majority, read
// majority / highest sequence wins), so disk crashes below a majority are
// masked. Crash disks with Cluster.CrashDisk.
func SAN(cfg SANConfig) Substrate {
	return sanSubstrate{cfg: cfg}
}

func newSANSubstrate(cfg SANConfig) (Substrate, error) {
	if _, err := cfg.normalize(); err != nil {
		return nil, err
	}
	return sanSubstrate{cfg: cfg}, nil
}

type sanSubstrate struct{ cfg SANConfig }

func (s sanSubstrate) Name() string { return "san" }

func (s sanSubstrate) pacing() (time.Duration, time.Duration) {
	return engine.DefaultSANStepInterval, engine.DefaultSANTimerUnit
}

func (s sanSubstrate) open(n int, instrument bool) (*openedMem, error) {
	cfg, err := s.cfg.normalize()
	if err != nil {
		return nil, err
	}
	disks := make([]*san.Disk, cfg.Disks)
	for d := range disks {
		disks[d] = san.NewDisk(san.Latency{
			Base:   cfg.BaseLatency,
			Jitter: cfg.Jitter,
			SpikeP: cfg.SpikeP,
			Spike:  cfg.Spike,
		}, cfg.Seed+int64(d))
	}
	var mem *san.DiskMem
	if instrument {
		mem, err = san.NewDiskMem(n, disks)
	} else {
		mem, err = san.NewUncountedDiskMem(n, disks)
	}
	if err != nil {
		return nil, err
	}
	return &openedMem{mem: mem, disks: disks}, nil
}
