package omegasm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultBatchSize is the per-shard proposal batch size a ShardedKV uses
// unless WithBatchSize overrides it: up to this many queued writes are
// packed into one consensus slot (one Disk-Paxos round).
const DefaultBatchSize = 32

// ShardedKV is a hash-partitioned replicated key-value service: every key
// is routed to one of S shards, each shard a consensus-backed KV store
// over its own cluster of an internally owned Fleet. It is the layer that
// composes the module's whole stack into one traffic-serving system —
// Omega election per shard cluster, an Omega-driven Disk-Paxos log per
// shard, the wake-driven engine underneath, and the Fleet's cached
// agreement views for routing — and it scales writes two ways at once:
//
//   - Sharding: the S replicated logs are fully independent (separate
//     shared memories, separate engines), so shard commit pipelines run
//     in parallel and aggregate throughput grows with S.
//   - Batching: within a shard, up to WithBatchSize queued writes are
//     packed into one consensus slot (see KVBatch), so one Disk-Paxos
//     round — and its quorum I/O on the SAN substrate — is amortized
//     across the whole batch.
//
// Shard logs checkpoint by default (WithCheckpointEvery): each shard's
// leader periodically seals its log prefix into a published snapshot and
// the sealed slots recycle, so every shard's write stream — and therefore
// the store's — is unbounded; WithShardSlots bounds only the in-flight
// window per shard.
//
// Routing is static: ShardFor hashes the key, so no directory service and
// no cross-shard coordination exist. The price is the consistency scope —
// each shard is sequentially consistent on its own log, and a cross-shard
// MultiPut is not atomic: it fans out per shard in parallel and some
// shards may commit before others (each shard's group, though, commits
// through its log like any Put). Keys on batched or checkpointing shards
// exclude 0xFFFF (the descriptor row; see KVBatch and KVCheckpointEvery);
// WithBatchSize(1) plus WithCheckpointEvery(0) restores the full key
// space.
//
// A ShardedKV owns its Fleet: build with NewShardedKV, run with Start,
// free with Close. The Fleet accessor exposes the underlying clusters for
// fault injection and inspection.
type ShardedKV struct {
	fleet *Fleet
	kvs   []*KV
	batch int
}

// NewShardedKV validates the options and builds a stopped sharded store;
// call Start to run it. WithShards picks the partition count and
// WithBatchSize the per-shard proposal batch size; WithN is required, and
// every cluster option (WithAlgorithm, WithSAN, ...) applies to all shard
// clusters, with WithClusterOptions overriding single shards — a fleet of
// mostly atomic shards with one SAN-backed shard is a one-option change.
// WithClusters does not apply (the fleet size is the shard count).
func NewShardedKV(opts ...Option) (*ShardedKV, error) {
	s := newSettings()
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	for _, name := range s.fleetOpts {
		if name == "WithClusters" {
			return nil, fmt.Errorf("omegasm: WithClusters does not apply to NewShardedKV; use WithShards")
		}
	}
	if s.batchSize == 0 {
		s.batchSize = DefaultBatchSize
	}
	if s.shardSlots == 0 {
		s.shardSlots = 1024
	}
	s.clusters = s.shards
	f, err := newFleetFromSettings(s, opts)
	if err != nil {
		return nil, err
	}
	skv := &ShardedKV{fleet: f, batch: s.batchSize}
	for i := 0; i < f.Clusters(); i++ {
		kvOpts := []KVOption{KVSlots(s.shardSlots), KVBatch(s.batchSize)}
		if s.checkpointEvery != ckptAuto {
			kvOpts = append(kvOpts, KVCheckpointEvery(s.checkpointEvery))
		}
		kv, err := NewKV(f.Cluster(i), kvOpts...)
		if err != nil {
			skv.Close()
			return nil, fmt.Errorf("omegasm: shard %d: %w", i, err)
		}
		skv.kvs = append(skv.kvs, kv)
	}
	return skv, nil
}

// Start launches every shard cluster and the fleet's view refresher. It
// may be called once; a closed store cannot be restarted.
func (s *ShardedKV) Start() error { return s.fleet.Start() }

// Close stops every shard's replication engine and the underlying fleet.
// Reads keep answering from the frozen applied states; writes stop
// committing. Idempotent.
func (s *ShardedKV) Close() {
	for _, kv := range s.kvs {
		kv.Close()
	}
	s.fleet.Stop()
}

// WaitForAgreement blocks until every shard cluster's live processes
// agree on a live leader (all shards waited in parallel; the timeout
// bounds total wall time) or the timeout elapses. It reports whether the
// whole store is ready to commit writes without electing first.
func (s *ShardedKV) WaitForAgreement(timeout time.Duration) bool {
	_, ok := s.fleet.WaitForAgreement(timeout)
	return ok
}

// Shards returns the number of hash partitions.
func (s *ShardedKV) Shards() int { return len(s.kvs) }

// BatchSize returns the per-shard proposal batch size (1: batching off).
func (s *ShardedKV) BatchSize() int { return s.batch }

// CheckpointEvery returns the per-shard checkpoint cadence in slots (0:
// checkpointing off, shard logs fill permanently).
func (s *ShardedKV) CheckpointEvery() int { return s.kvs[0].CheckpointEvery() }

// Checkpoints returns the total number of checkpoints passed across the
// shards' reading replicas — how many times shard log prefixes have been
// sealed and their slots recycled.
func (s *ShardedKV) Checkpoints() int {
	total := 0
	for _, kv := range s.kvs {
		total += kv.Checkpoints()
	}
	return total
}

// Fleet returns the underlying fleet, for fault injection (Crash,
// CrashDisk via Cluster) and inspection (Leader, Stats). The fleet is
// owned by the store: do not Stop it directly; Close the store.
func (s *ShardedKV) Fleet() *Fleet { return s.fleet }

// Shard returns shard i's replicated store for direct access, or nil if
// out of range.
func (s *ShardedKV) Shard(i int) *KV {
	if i < 0 || i >= len(s.kvs) {
		return nil
	}
	return s.kvs[i]
}

// ShardFor returns the shard index key routes to. The hash is a fixed
// Fibonacci multiplier over the key — deterministic across runs and
// processes, so routing needs no shared state.
func (s *ShardedKV) ShardFor(key uint16) int {
	return shardIndex(key, len(s.kvs))
}

// shardIndex is the routing hash: multiplicative (Fibonacci) hashing
// spreads adjacent keys across shards, and the fixed constant keeps the
// partition map a pure function of (key, shards).
func shardIndex(key uint16, shards int) int {
	return int(((uint32(key) * 0x9E3779B1) >> 16) % uint32(shards))
}

// Put replicates one write through its key's shard and returns once it is
// committed, retrying across that shard's leader changes (the semantics
// of KV.Put on the routed shard).
func (s *ShardedKV) Put(ctx context.Context, key, val uint16) error {
	return s.kvs[s.ShardFor(key)].Put(ctx, key, val)
}

// Get returns the value of key in the applied state of its shard's
// freshest readable replica. Reads are sequentially consistent per shard.
func (s *ShardedKV) Get(key uint16) (uint16, bool) {
	return s.kvs[s.ShardFor(key)].Get(key)
}

// MultiPut replicates a group of writes and returns once all of them are
// committed: entries are grouped by shard, each shard's group is
// submitted as one PutAll — so it batches into as few consensus slots as
// the batch size allows — and the per-shard groups fan out in parallel,
// overlapping the shards' consensus rounds. The call gathers every
// shard's outcome and returns their joined errors (nil when all groups
// committed). Cross-shard atomicity is NOT provided: if ctx expires or a
// shard's log fills, other shards' groups may still have committed.
// Within one shard, entries keep their relative submission order.
func (s *ShardedKV) MultiPut(ctx context.Context, entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	groups := make(map[int][]Entry)
	for _, e := range entries {
		sh := s.ShardFor(e.Key)
		groups[sh] = append(groups[sh], e)
	}
	errs := make([]error, len(s.kvs))
	var wg sync.WaitGroup
	for sh, group := range groups {
		wg.Add(1)
		go func(sh int, group []Entry) {
			defer wg.Done()
			if err := s.kvs[sh].PutAll(ctx, group...); err != nil {
				errs[sh] = fmt.Errorf("omegasm: shard %d: %w", sh, err)
			}
		}(sh, group)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// MultiGet reads many keys at once: keys are grouped by shard, the
// per-shard lookups fan out in parallel, and the results are gathered in
// argument order. ok[i] reports whether keys[i] was present. Each shard's
// answers are sequentially consistent on that shard's log; there is no
// cross-shard snapshot.
func (s *ShardedKV) MultiGet(keys ...uint16) (vals []uint16, ok []bool) {
	vals = make([]uint16, len(keys))
	ok = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, ok
	}
	groups := make(map[int][]int) // shard -> indices into keys
	for i, k := range keys {
		sh := s.ShardFor(k)
		groups[sh] = append(groups[sh], i)
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				vals[i], ok[i] = s.kvs[sh].Get(keys[i])
			}
		}(sh, idxs)
	}
	wg.Wait()
	return vals, ok
}

// Len returns the total number of keys in the applied states of all
// shards (hash partitioning makes the key sets disjoint).
func (s *ShardedKV) Len() int {
	total := 0
	for _, kv := range s.kvs {
		total += kv.Len()
	}
	return total
}

// Applied returns the total number of log entries applied across all
// shards' reading replicas — the store-wide committed-write odometer the
// benchmarks sample.
func (s *ShardedKV) Applied() int {
	total := 0
	for _, kv := range s.kvs {
		total += kv.Applied()
	}
	return total
}

// Capacity returns the total consensus-slot window capacity across
// shards. With checkpointing on (the default) this bounds only the
// in-flight portion of each shard's stream — total write capacity is
// unbounded; with WithCheckpointEvery(0) it is the store's total
// capacity (times BatchSize with batching).
func (s *ShardedKV) Capacity() int {
	total := 0
	for _, kv := range s.kvs {
		total += kv.Capacity()
	}
	return total
}

// Snapshot returns a copy of the merged applied state of all shards.
// Shard snapshots are taken one after another: the result is a union of
// per-shard sequentially consistent states, not a cross-shard atomic cut.
func (s *ShardedKV) Snapshot() map[uint16]uint16 {
	out := make(map[uint16]uint16)
	for _, kv := range s.kvs {
		for k, v := range kv.Snapshot() {
			out[k] = v
		}
	}
	return out
}
