// Command omegasan runs the paper's motivating deployment live: Omega
// (Algorithm 1) over a simulated storage-area network of crash-prone
// disks, optionally with an Omega-driven replicated log on top.
//
// Usage:
//
//	omegasan [-n 3] [-disks 5] [-crash-disk 1] [-crash-proc 1] [-log]
//	         [-base 200us] [-jitter 300us] [-duration 3s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"omegasm/internal/consensus"
	"omegasm/internal/core"
	"omegasm/internal/rt"
	"omegasm/internal/san"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 3, "number of processes")
	nDisks := flag.Int("disks", 5, "number of disks (majority must survive)")
	crashDisks := flag.Int("crash-disk", 1, "disks to crash mid-run")
	crashProc := flag.Bool("crash-proc", true, "crash the elected leader mid-run")
	withLog := flag.Bool("log", true, "run a replicated log over the oracle")
	base := flag.Duration("base", 200*time.Microsecond, "disk base latency")
	jitter := flag.Duration("jitter", 300*time.Microsecond, "disk latency jitter")
	duration := flag.Duration("duration", 3*time.Second, "how long to run after election")
	flag.Parse()

	if *crashDisks >= (*nDisks+1)/2 {
		fmt.Fprintf(os.Stderr, "omegasan: crashing %d of %d disks would lose the majority\n",
			*crashDisks, *nDisks)
		return 1
	}

	disks := make([]*san.Disk, *nDisks)
	for d := range disks {
		disks[d] = san.NewDisk(san.Latency{
			Base:   *base,
			Jitter: *jitter,
			SpikeP: 0.01,
			Spike:  10 * *base,
		}, int64(d+1))
	}
	mem, err := san.NewDiskMem(*n, disks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
		return 1
	}
	procs := make([]rt.Proc, *n)
	for i, p := range core.BuildAlgo1(mem, *n) {
		procs[i] = p
	}
	cluster, err := rt.New(rt.Config{
		StepInterval: 2 * time.Millisecond,
		TimerUnit:    25 * time.Millisecond,
	}, procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
		return 1
	}
	if err := cluster.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
		return 1
	}
	defer cluster.Stop()

	leader, ok := cluster.WaitForAgreement(time.Minute)
	if !ok {
		fmt.Fprintln(os.Stderr, "omegasan: no election within a minute")
		return 1
	}
	fmt.Printf("elected leader %d over %d disks (quorum %d)\n", leader, *nDisks, mem.Quorum())

	var replicas []*consensus.Replica
	stopLog := make(chan struct{})
	logDone := make(chan struct{})
	if *withLog {
		dlog := consensus.NewLog(mem, *n, 64)
		for i := 0; i < *n; i++ {
			i := i
			r, err := consensus.NewReplica(dlog, i, func() int {
				l, err := cluster.Leader(i)
				if err != nil {
					return -1
				}
				return l
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
				return 1
			}
			for k := 0; k < 8; k++ {
				r.Submit(uint32(i*100 + k + 1))
			}
			replicas = append(replicas, r)
		}
		go func() {
			defer close(logDone)
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopLog:
					return
				case <-ticker.C:
					for i, r := range replicas {
						if !cluster.Crashed(i) {
							r.Step(0)
						}
					}
				}
			}
		}()
	}

	time.Sleep(*duration / 3)
	for d := 0; d < *crashDisks; d++ {
		fmt.Printf("crashing disk %d...\n", d)
		disks[d].Crash()
	}
	if *crashProc {
		fmt.Printf("crashing leader process %d...\n", leader)
		if err := cluster.Crash(leader); err != nil {
			fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
			return 1
		}
		next, ok := cluster.WaitForAgreement(time.Minute)
		if !ok {
			fmt.Fprintln(os.Stderr, "omegasan: no re-election within a minute")
			return 1
		}
		fmt.Printf("re-elected leader %d\n", next)
	}
	time.Sleep(*duration * 2 / 3)

	if *withLog {
		close(stopLog)
		<-logDone
		fmt.Println("committed prefixes:")
		for i, r := range replicas {
			note := ""
			if cluster.Crashed(i) {
				note = " (crashed)"
			}
			fmt.Printf("  replica %d%s: %v\n", i, note, r.Committed())
		}
	}
	fmt.Println("done")
	return 0
}
