// Command omegasan runs the paper's motivating deployment live through
// the public API: Omega over a simulated storage-area network of
// crash-prone disks (the SAN substrate), optionally with the Omega-driven
// replicated key-value store on top.
//
// Usage:
//
//	omegasan [-n 3] [-disks 5] [-crash-disk 1] [-crash-proc 1] [-kv]
//	         [-base 200us] [-jitter 300us] [-duration 3s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"omegasm"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 3, "number of processes")
	nDisks := flag.Int("disks", 5, "number of disks (majority must survive)")
	crashDisks := flag.Int("crash-disk", 1, "disks to crash mid-run")
	crashProc := flag.Bool("crash-proc", true, "crash the elected leader mid-run")
	withKV := flag.Bool("kv", true, "serve the replicated KV store over the oracle")
	base := flag.Duration("base", 200*time.Microsecond, "disk base latency")
	jitter := flag.Duration("jitter", 300*time.Microsecond, "disk latency jitter")
	duration := flag.Duration("duration", 3*time.Second, "how long to run after election")
	flag.Parse()

	if *crashDisks >= (*nDisks+1)/2 {
		fmt.Fprintf(os.Stderr, "omegasan: crashing %d of %d disks would lose the majority\n",
			*crashDisks, *nDisks)
		return 1
	}

	cluster, err := omegasm.New(
		omegasm.WithN(*n),
		omegasm.WithSAN(omegasm.SANConfig{
			Disks:       *nDisks,
			BaseLatency: *base,
			Jitter:      *jitter,
			SpikeP:      0.01,
			Spike:       10 * *base,
		}),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
		return 1
	}
	if err := cluster.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
		return 1
	}
	defer cluster.Stop()

	leader, ok := cluster.WaitForAgreement(time.Minute)
	if !ok {
		fmt.Fprintln(os.Stderr, "omegasan: no election within a minute")
		return 1
	}
	fmt.Printf("elected leader %d over %d disks\n", leader, cluster.DiskCount())

	var kv *omegasm.KV
	if *withKV {
		kv, err = omegasm.NewKV(cluster, omegasm.KVSlots(256))
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
			return 1
		}
		defer kv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for k := uint16(0); k < 8; k++ {
			if err := kv.Put(ctx, k, 100+k); err != nil {
				fmt.Fprintf(os.Stderr, "omegasan: put: %v\n", err)
				return 1
			}
		}
		fmt.Printf("replicated %d writes through the disk-paxos log\n", kv.Applied())
	}

	time.Sleep(*duration / 3)
	for d := 0; d < *crashDisks; d++ {
		fmt.Printf("crashing disk %d...\n", d)
		if err := cluster.CrashDisk(d); err != nil {
			fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
			return 1
		}
	}
	if *crashProc {
		fmt.Printf("crashing leader process %d...\n", leader)
		if err := cluster.Crash(leader); err != nil {
			fmt.Fprintf(os.Stderr, "omegasan: %v\n", err)
			return 1
		}
		next, ok := cluster.WaitForAgreement(time.Minute)
		if !ok {
			fmt.Fprintln(os.Stderr, "omegasan: no re-election within a minute")
			return 1
		}
		fmt.Printf("re-elected leader %d\n", next)
	}
	time.Sleep(*duration * 2 / 3)

	if *withKV {
		// Writes keep committing under the new leader, over the surviving
		// disk majority.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for k := uint16(8); k < 16; k++ {
			if err := kv.Put(ctx, k, 100+k); err != nil {
				fmt.Fprintf(os.Stderr, "omegasan: put after failover: %v\n", err)
				return 1
			}
		}
		fmt.Printf("store after failover: %d keys, %d log entries applied\n",
			kv.Len(), kv.Applied())
	}
	fmt.Println("done")
	return 0
}
