package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omegasm/internal/lint"
)

// writeTempModule lays out a throwaway module containing one wakehint
// violation and chdirs the test into it, so run() resolves it as the
// module under inspection.
func writeTempModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"spin.go": `package tmpmod

type Hint struct{ Kind int }

const WakeNow = 1

func Now() Hint { return Hint{Kind: WakeNow} }

type spinner struct{}

func (spinner) Step(now int64) Hint { return Now() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

// TestRunJSONFindings: -json must emit a machine-readable array with
// one object per finding and still exit 1.
func TestRunJSONFindings(t *testing.T) {
	writeTempModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "wakehint" || f.File != "spin.go" || f.Line != 11 {
		t.Errorf("finding misreported: %+v", f)
	}
	if !strings.Contains(f.Message, "WakeNow on every path") {
		t.Errorf("message = %q", f.Message)
	}
	if stderr.Len() != 0 {
		t.Errorf("-json wrote to stderr: %s", stderr.String())
	}
}

// TestRunJSONClean: a clean tree emits an empty array, not null, so
// consumers can always range over the result.
func TestRunJSONClean(t *testing.T) {
	writeTempModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-c", "puborder"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean output = %q, want []", got)
	}
}

// TestRunPlainFindings: the default mode prints file:line:col lines and
// a count on stderr.
func TestRunPlainFindings(t *testing.T) {
	writeTempModule(t)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "spin.go:11:") {
		t.Errorf("stdout = %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestRunBadFlags: unknown analyzers and unmatched patterns are usage
// errors (exit 2), distinct from findings (exit 1).
func TestRunBadFlags(t *testing.T) {
	writeTempModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-c", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"./nosuchdir/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}

// TestRunList enumerates the suite.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"atomicfield", "puborder", "simdet", "wakehint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list omits %s", name)
		}
	}
}
