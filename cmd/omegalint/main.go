// Command omegalint runs the repository's invariant analyzers (see
// internal/lint) over the module: atomicfield, puborder, simdet and
// wakehint. It is the multichecker CI runs as a hard gate.
//
// Usage:
//
//	omegalint [-json] [-c analyzer,...] [packages]
//
// Package patterns follow the go tool's shape relative to the module
// root: "./..." (the default) loads every package, "./internal/..."
// a subtree, "./internal/engine" one package. Test files are not
// loaded: the invariants cover the shipped code paths.
//
// Findings print as file:line:col: [analyzer] message, one per line;
// with -json they print as a single JSON array of objects with
// analyzer/file/line/col/message fields (the machine-readable mode
// scenario-campaign tooling consumes). Exit status is 0 when clean, 1
// when there are findings, 2 on usage or load errors.
//
// Suppressions: //omegalint:allow <analyzer> <reason> on (or directly
// above) the offending line, or before a file's package clause to
// cover the whole file. The reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"omegasm/internal/lint"
	"omegasm/internal/lint/analysis"
	"omegasm/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker and returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omegalint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("c", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: omegalint [-json] [-c analyzer,...] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}
	module, err := loader.ModulePath(root)
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}
	prog, _, err := loader.LoadModule(loader.Config{Root: root, Module: module})
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}
	targets, err := filterPackages(prog, module, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}

	findings, err := lint.RunSuite(prog, targets, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "omegalint: %v\n", err)
		return 2
	}
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "omegalint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "omegalint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -c subset, defaulting to the whole
// suite.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages returns the report targets matched by the go-style
// patterns (relative to the module root). No patterns or "./..." keeps
// everything. The full program stays loaded either way, so
// whole-program checks (atomicfield) always see every package; only
// reporting is filtered.
func filterPackages(prog *analysis.Program, module string, patterns []string) ([]*analysis.PackageInfo, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	match := func(path string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			pat = strings.TrimSuffix(pat, "/")
			switch {
			case pat == "..." || pat == ".":
				return true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true
				}
			case rel == pat:
				return true
			}
		}
		return false
	}
	var out []*analysis.PackageInfo
	for _, pkg := range prog.Packages {
		if match(pkg.Path) {
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patterns %v match no packages", patterns)
	}
	return out, nil
}
