// Command omegabench regenerates every figure/table of the reproduction
// (see DESIGN.md's experiment index) and prints the measurements and
// claim verdicts.
//
// Usage:
//
//	omegabench [-quick] [-seeds N] [-out FILE]
//	omegabench -bench [-benchdir DIR] [-benchdur D]
//	omegabench -load [-benchdir DIR] [-loaddur D]
//	omegabench -benchmd FILE [-benchdir DIR]
//	omegabench -campaign [-campseeds N] [-campseedbase S] [-campmutate M]
//	           [-campexpect E] [-campout FILE] [-campscenarios DIR]
//
// Any mode accepts -cpuprofile FILE and -memprofile FILE, which write
// pprof profiles covering the whole run — the reproducible way to find
// hot-path work (see README "Profiling the hot paths").
//
// With -bench it instead runs the performance benchmarks of the
// instrumentation, query and replication layers and writes
// machine-readable BENCH_<name>.json files (census contention: lock-free
// vs global-mutex census; fleet leader queries: the cached multi-cluster
// fast path; kv throughput: the Omega-driven replicated store on the
// atomic and SAN substrates; kv sustained: a write stream 10x the log's
// slot window, committed through checkpoint + recycle; sharded KV
// scaling: aggregate commit capacity vs shard count, batched vs
// unbatched), so the perf trajectory is recorded run over run.
//
// With -load it runs the latency-under-load benchmark: one declarative
// open-loop workload spec (Poisson arrivals, Zipf keys, mixed SLO
// classes) executed twice against the simulated sharded store under
// virtual time — asserting the two runs are byte-identical — and once
// against a live ShardedKV on the wall clock, writing
// BENCH_latency_under_load.json with per-class p50/p95/p99/p999,
// attainment, goodput and fairness for both modes plus the sim-vs-live
// calibration score (MAPE, Pearson's r).
//
// With -benchmd it regenerates the benchmark section of the given
// markdown file (the README) from the BENCH_*.json files in -benchdir,
// between the benchmark markers, so published numbers never drift from
// recorded ones.
//
// With -campaign it runs the adversarial scenario campaign instead: a
// seed sweep over a grid of fault configurations (crashes, gray
// election registers, brownouts, open-loop load), every run recorded
// and fed through the omegasm/check linearizability/durability checker,
// scored (violations over near-misses over leader churn and commit
// stalls) and summarized worst-first. -campmutate seeds a known bug to
// prove the checker catches it (-campexpect violations gates CI on
// that); -campexpect clean gates nightly sweeps; -campscenarios
// regenerates the minimized regression fixtures under
// testdata/scenarios.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"runtime/pprof"

	"omegasm"
	"omegasm/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "smaller horizons and seed counts")
	seeds := flag.Int("seeds", 0, "seeded repetitions per data point (0: default)")
	out := flag.String("out", "", "also write the report to this file")
	bench := flag.Bool("bench", false, "run the perf benchmarks and emit BENCH_*.json instead of the experiments")
	benchdir := flag.String("benchdir", ".", "directory for BENCH_*.json files")
	benchdur := flag.Duration("benchdur", 300*time.Millisecond, "measurement window per benchmark point")
	benchonly := flag.String("benchonly", "", "with -bench: only run benchmarks whose name contains this substring")
	benchgmp := flag.Int("benchgmp", 0, "with -bench: restrict GOMAXPROCS-swept benchmarks to this single value (0: full sweep); pair with -cpuprofile to profile one contention point")
	benchmd := flag.String("benchmd", "", "markdown file whose benchmark section is regenerated from -benchdir's BENCH_*.json files")
	loadBench := flag.Bool("load", false, "run the latency-under-load benchmark (sim + live) and emit BENCH_latency_under_load.json")
	loaddur := flag.Duration("loaddur", 2*time.Second, "arrival window of the -load workload")
	campaign := flag.Bool("campaign", false, "run the adversarial scenario campaign (seed sweep + checker) instead of the experiments")
	campseeds := flag.Int("campseeds", 50, "with -campaign: seeds per grid point")
	campseedbase := flag.Int64("campseedbase", 0, "with -campaign: first seed of the sweep (nightlies rotate this)")
	campout := flag.String("campout", "", "with -campaign: write the JSON report to this file")
	campmutate := flag.String("campmutate", "", "with -campaign: seed a bug (drop-quorum-ack, premature-lease-extend) to prove checker non-vacuity")
	campexpect := flag.String("campexpect", "", "with -campaign: gate the exit status (clean: no violations allowed; violations: at least one required)")
	campscenarios := flag.String("campscenarios", "", "with -campaign: regenerate minimized scenario fixtures into this directory")
	campkeep := flag.Int("campkeep", 10, "with -campaign: worst runs kept in the report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer func() {
			runtime.GC() // flush recent frees so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			}
			f.Close()
		}()
	}

	if *benchmd != "" {
		if err := updateBenchMarkdown(*benchmd, *benchdir); err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		fmt.Printf("updated benchmark section of %s\n", *benchmd)
		return 0
	}
	if *campaign {
		return runCampaignCmd(campaignOpts{
			seeds:     *campseeds,
			seedBase:  *campseedbase,
			out:       *campout,
			mutate:    *campmutate,
			expect:    *campexpect,
			scenarios: *campscenarios,
			keep:      *campkeep,
		})
	}
	if *loadBench {
		return runLoad(*benchdir, *loaddur)
	}
	if *bench {
		return runBench(*benchdir, *benchdur, *benchonly, *benchgmp)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := harness.Config{Quick: *quick, Seeds: *seeds}
	failed := 0
	for _, e := range harness.All() {
		fmt.Fprintf(w, "\n================================================================\n")
		fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper artifact: %s\n", e.Paper)
		fmt.Fprintf(w, "================================================================\n")
		outc, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
			continue
		}
		for _, tbl := range outc.Tables {
			fmt.Fprintf(w, "\n%s", tbl.Render())
		}
		if outc.Report != nil && len(outc.Report.Verdicts) > 0 {
			fmt.Fprintf(w, "\nverdicts:\n%s", outc.Report)
			if !outc.Report.AllOK() {
				failed++
			}
		}
		for _, n := range outc.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintf(w, "\n")
	if failed > 0 {
		fmt.Fprintf(w, "omegabench: %d experiment(s) with failures\n", failed)
		return 1
	}
	fmt.Fprintf(w, "omegabench: all experiments passed\n")
	return 0
}

// runBench measures the instrumentation and query layers and writes one
// BENCH_*.json per benchmark. A non-empty only restricts the run to
// benchmarks whose name contains it (regenerate one file, or profile one
// hot path in isolation); a non-zero gmp collapses GOMAXPROCS sweeps to
// that single value so a -cpuprofile captures one contention point.
func runBench(dir string, dur time.Duration, only string, gmp int) int {
	gmpSweep := []int{1, 2, 4}
	if gmp > 0 {
		gmpSweep = []int{gmp}
	}
	benches := []struct {
		name string
		run  func() (harness.BenchReport, error)
	}{
		{"census_contention", func() (harness.BenchReport, error) {
			fmt.Printf("census contention (monitored, %v per point):\n", dur)
			var points []harness.CensusContentionPoint
			for _, procs := range []int{2, 4, 8, 16} {
				pt := harness.BenchCensusContention(procs, dur)
				points = append(points, pt)
				fmt.Printf("  procs=%2d  mutex=%8.2fM ops/s  lockfree=%8.2fM ops/s  speedup=%.2fx\n",
					pt.Procs, pt.MutexOpsPerSec/1e6, pt.LockFreeOpsPerSec/1e6, pt.Speedup)
			}
			return harness.BenchReport{
				Name:   "census_contention",
				Unit:   "instrumented register accesses/sec (all processes)",
				Points: points,
			}, nil
		}},
		{"fleet_leader_queries", func() (harness.BenchReport, error) {
			fmt.Printf("fleet leader queries (%v per point):\n", dur)
			var points []harness.FleetQueryPoint
			for _, clusters := range []int{1, 4, 8} {
				pt, err := benchFleetQueries(clusters, 3, 8, dur)
				if err != nil {
					return harness.BenchReport{}, err
				}
				points = append(points, pt)
				fmt.Printf("  clusters=%2d  %8.2fM queries/s (%d queriers)\n",
					pt.Clusters, pt.QueriesPerSec/1e6, pt.Queriers)
			}
			return harness.BenchReport{
				Name:   "fleet_leader_queries",
				Unit:   "Leader() queries/sec (all queriers)",
				Points: points,
			}, nil
		}},
		{"kv_throughput", func() (harness.BenchReport, error) {
			fmt.Printf("replicated KV throughput (best of %d x %v per point, GOMAXPROCS swept):\n",
				kvThroughputRuns, dur)
			var points []harness.KVThroughputPoint
			for _, p := range []struct {
				n   int
				sub string
			}{{3, "atomic"}, {5, "atomic"}, {3, "san"}} {
				// Interleave the GOMAXPROCS points round-robin rather than
				// running each point's windows as a block: host load drifts
				// over the minute a sweep takes, and back-to-back blocks
				// would hand one point systematically quieter conditions.
				// Round-robin gives every point the same noise distribution,
				// so differences between rows are the setting, not the drift.
				best := make(map[int]harness.KVThroughputPoint, len(gmpSweep))
				for run := 0; run < kvThroughputRuns; run++ {
					for _, gmp := range gmpSweep {
						var pt harness.KVThroughputPoint
						var benchErr error
						harness.WithGoMaxProcs(gmp, func() {
							pt, benchErr = benchKVThroughput(p.n, p.sub, dur)
						})
						if benchErr != nil {
							return harness.BenchReport{}, benchErr
						}
						if pt.CommitsPerSec > best[gmp].CommitsPerSec {
							pt.GoMaxProcs = gmp
							best[gmp] = pt
						}
					}
				}
				for _, gmp := range gmpSweep {
					pt := best[gmp]
					points = append(points, pt)
					fmt.Printf("  n=%d %-6s gomaxprocs=%d  %8.0f commits/s  %10.0f reads/s\n",
						pt.Procs, pt.Substrate, pt.GoMaxProcs, pt.CommitsPerSec, pt.ReadsPerSec)
				}
			}
			return harness.BenchReport{
				Name:   "kv_throughput",
				Unit:   "committed log entries/sec and local reads/sec (64 reads per committed write)",
				Points: points,
			}, nil
		}},
		{"kv_sustained", func() (harness.BenchReport, error) {
			fmt.Printf("sustained KV stream (10x the slot window, checkpoint recycling, %v cap per point):\n", 20*dur)
			var points []harness.KVSustainedPoint
			for _, p := range []struct {
				n   int
				sub string
			}{{3, "atomic"}, {3, "san"}} {
				pt, err := benchKVSustained(p.n, p.sub, 20*dur)
				if err != nil {
					return harness.BenchReport{}, err
				}
				points = append(points, pt)
				fmt.Printf("  n=%d %-6s  %8.0f commits/s over %d/%d commands (%d-slot window, %d checkpoints)\n",
					pt.Procs, pt.Substrate, pt.CommitsPerSec, pt.Committed, pt.TargetCommands, pt.Slots, pt.Checkpoints)
			}
			return harness.BenchReport{
				Name:   "kv_sustained",
				Unit:   "committed writes/sec over a stream 10x the log's slot window (checkpoint + recycle on the write path)",
				Points: points,
			}, nil
		}},
		{"read_path", func() (harness.BenchReport, error) {
			fmt.Printf("read path (lease vs freshest vs quorum, %v per point):\n", dur)
			var points []harness.ReadPathPoint
			for _, mode := range []omegasm.ReadMode{
				omegasm.ReadLease, omegasm.ReadFreshest, omegasm.ReadQuorum,
			} {
				pt, err := benchReadPath(3, mode, dur)
				if err != nil {
					return harness.BenchReport{}, err
				}
				points = append(points, pt)
				fmt.Printf("  n=%d %-8s  %12.0f reads/s  p50=%7.2fus  p99=%7.2fus\n",
					pt.Procs, pt.Mode, pt.ReadsPerSec, pt.P50Usec, pt.P99Usec)
			}
			return harness.BenchReport{
				Name:   "read_path",
				Unit:   "linearizable-path Get/sec by read mode, with latency percentiles (atomic substrate, idle write load)",
				Points: points,
			}, nil
		}},
		{"shardedkv_scaling", func() (harness.BenchReport, error) {
			fmt.Printf("sharded KV scaling (deterministic virtual time, 1 tick = 1us, GOMAXPROCS swept):\n")
			points, err := benchShardedKVScaling([]int{1, 2, 4})
			if err != nil {
				return harness.BenchReport{}, err
			}
			for _, pt := range points {
				fmt.Printf("  shards=%d batch=%2d gomaxprocs=%d  %10.0f commits/s  avg batch=%5.1f  speedup vs 1 shard=%.2fx\n",
					pt.Shards, pt.BatchSize, pt.GoMaxProcs, pt.CommitsPerSec, pt.AvgBatch, pt.SpeedupVsOneShard)
			}
			return harness.BenchReport{
				Name:   "shardedkv_scaling",
				Unit:   "aggregate committed commands/sec (virtual time: every machine owns a processor), batched vs unbatched, atomic substrate",
				Points: points,
			}, nil
		}},
		{"engine_wakeup", func() (harness.BenchReport, error) {
			fmt.Printf("engine wakeup: polling vs wake-driven KV commits (%v per point):\n", dur)
			var points []harness.EngineWakeupPoint
			for _, p := range []struct {
				procs    int
				interval time.Duration
			}{{3, 200 * time.Microsecond}, {5, 200 * time.Microsecond}, {3, time.Millisecond}} {
				pt, err := harness.BenchEngineWakeup(p.procs, p.interval, dur)
				if err != nil {
					return harness.BenchReport{}, err
				}
				points = append(points, pt)
				fmt.Printf("  n=%d tick=%4.0fus  polling=%8.0f commits/s  wake=%8.0f commits/s  speedup=%.1fx\n",
					pt.Procs, pt.IntervalUsec, pt.PollingCommitsPerSec, pt.WakeCommitsPerSec, pt.Speedup)
			}
			return harness.BenchReport{
				Name:   "engine_wakeup",
				Unit:   "synchronous committed writes/sec, polling driver vs wake-driven engine",
				Points: points,
			}, nil
		}},
	}
	ran := 0
	for _, b := range benches {
		if only != "" && !strings.Contains(b.name, only) {
			continue
		}
		report, err := b.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %s: %v\n", b.name, err)
			return 1
		}
		path, err := harness.WriteBenchJSON(dir, report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n\n", path)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "omegabench: no benchmark matches -benchonly %q\n", only)
		return 1
	}
	return 0
}

// kvThroughputRuns is how many measurement windows each kv_throughput
// point takes; the best is recorded. A single window is at the mercy of
// whatever else the host runs during it (a window that catches an
// election or a GC cycle under CPU oversubscription can halve) — peak
// steady-state rate is the stable, comparable quantity, and best-of-N
// error is one-sided (only ever below the true ceiling), so more
// windows strictly tighten the estimate.
const kvThroughputRuns = 7

// benchKVThroughput elects a leader, serves the replicated KV store and
// measures commit and local-read throughput over dur. The writer keeps a
// bounded queue of async Sets ahead of the applied index so the log is
// never starved and never floods.
func benchKVThroughput(n int, substrate string, dur time.Duration) (harness.KVThroughputPoint, error) {
	opts := []omegasm.Option{
		omegasm.WithN(n),
		omegasm.WithStepInterval(100 * time.Microsecond),
		// 10ms failure-detection timers, not the 1ms used elsewhere: the
		// GOMAXPROCS sweep oversubscribes the reference container's single
		// core, and a GC wave or an OS reschedule then stalls the engine
		// thread past a 1ms timer unit — the benchmark would measure
		// spurious re-elections instead of the commit path. Commits are
		// wake-driven, so coarser timers change failover latency only.
		omegasm.WithTimerUnit(10 * time.Millisecond),
	}
	if substrate == "san" {
		// An ideal (zero-latency) SAN isolates the quorum-protocol cost;
		// pace a little slower than atomic memory to keep elections calm.
		opts = append(opts,
			omegasm.WithSAN(omegasm.SANConfig{Disks: 3}),
			omegasm.WithStepInterval(500*time.Microsecond),
			omegasm.WithTimerUnit(10*time.Millisecond),
		)
	}
	c, err := omegasm.New(opts...)
	if err != nil {
		return harness.KVThroughputPoint{}, err
	}
	if err := c.Start(); err != nil {
		return harness.KVThroughputPoint{}, err
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		return harness.KVThroughputPoint{}, fmt.Errorf("no agreement on %s substrate", substrate)
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(1<<15), omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		return harness.KVThroughputPoint{}, err
	}
	defer kv.Close()

	applied0 := kv.Applied()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: stay at most 256 commands ahead of the applied index
		defer wg.Done()
		for k := 0; !stop.Load(); {
			if k < kv.Applied()+256 {
				switch err := kv.Set(uint16(k%1024), uint16(k)); err {
				case nil:
					k++
					continue
				case omegasm.ErrLogFull:
					return // capacity exhausted; the sampler ends the window
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var reads atomic.Int64
	go func() { // reader: local Gets paced at a fixed read:write mix (64
		// reads per applied command). An unbounded spin-reader would
		// measure CPU monopolization instead of store capacity: lock-free
		// Gets scale with GOMAXPROCS until they starve the commit path,
		// so every GOMAXPROCS point would run a different workload. Pure
		// read throughput is the read-path benchmark's job.
		defer wg.Done()
		var count int64
		for k := 0; !stop.Load(); {
			target := int64(kv.Applied()-applied0) * 64
			if count >= target {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			for count < target && !stop.Load() {
				kv.Get(uint16(k % 1024))
				k++
				count++
				if count%256 == 0 {
					runtime.Gosched()
				}
			}
		}
		reads.Store(count)
	}()

	// Sample until dur elapses. The store checkpoints by default, so the
	// log recycles under the writer and the window never has to end early
	// for capacity (the old fixed log had to stop short of exhaustion).
	start := time.Now()
	deadline := start.Add(dur)
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	commits := kv.Applied() - applied0
	elapsed := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	return harness.KVThroughputPoint{
		Procs:         n,
		Substrate:     substrate,
		CommitsPerSec: float64(commits) / elapsed,
		ReadsPerSec:   float64(reads.Load()) / elapsed,
	}, nil
}

// readModeName names a ReadMode for benchmark points.
func readModeName(m omegasm.ReadMode) string {
	switch m {
	case omegasm.ReadLease:
		return "lease"
	case omegasm.ReadFreshest:
		return "freshest"
	case omegasm.ReadQuorum:
		return "quorum"
	}
	return "unknown"
}

// benchReadPath measures one read mode of the public KV over an
// otherwise idle default-options store: a single closed-loop reader, so
// the latencies are the read machinery itself — the lease fast path
// (two atomic loads behind a validity check), the uncoordinated
// freshest-replica read, or the full quorum fence (a consensus round
// per read on an idle store). Fast-mode latencies are sampled (every
// 16th read) to bound memory; quorum reads are all recorded.
func benchReadPath(n int, mode omegasm.ReadMode, dur time.Duration) (harness.ReadPathPoint, error) {
	c, err := omegasm.New(
		omegasm.WithN(n),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		return harness.ReadPathPoint{}, err
	}
	if err := c.Start(); err != nil {
		return harness.ReadPathPoint{}, err
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		return harness.ReadPathPoint{}, fmt.Errorf("no agreement")
	}
	kv, err := omegasm.NewKV(c, omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		return harness.ReadPathPoint{}, err
	}
	defer kv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), dur+20*time.Second)
	defer cancel()
	// Seed the key; the committed write also fences the first lease's
	// catch-up barrier. For the lease mode, wait until the fast path is
	// actually up so the point measures lease serving, not the fallback.
	if err := kv.Put(ctx, 7, 42); err != nil {
		return harness.ReadPathPoint{}, err
	}
	if mode == omegasm.ReadLease {
		settle := time.Now().Add(5 * time.Second)
		for {
			if _, ok := kv.LeaseHolder(); ok {
				break
			}
			if time.Now().After(settle) {
				return harness.ReadPathPoint{}, fmt.Errorf("lease never became readable")
			}
			time.Sleep(time.Millisecond)
		}
	}
	lat := make([]time.Duration, 0, 1<<20)
	count := 0
	start := time.Now()
	deadline := start.Add(dur)
	for {
		if count&63 == 0 && !time.Now().Before(deadline) {
			break
		}
		t0 := time.Now()
		if _, _, err := kv.Read(ctx, 7, mode); err != nil {
			return harness.ReadPathPoint{}, err
		}
		d := time.Since(t0)
		count++
		if (mode == omegasm.ReadQuorum || count&15 == 0) && len(lat) < cap(lat) {
			lat = append(lat, d)
		}
	}
	elapsed := time.Since(start).Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(float64(len(lat)-1) * p)
		return float64(lat[i].Nanoseconds()) / 1e3
	}
	return harness.ReadPathPoint{
		Procs:       n,
		Substrate:   "atomic",
		Mode:        readModeName(mode),
		ReadsPerSec: float64(count) / elapsed,
		P50Usec:     pct(0.50),
		P99Usec:     pct(0.99),
	}, nil
}

// benchKVSustained measures the store's sustained committed-write rate
// over a stream 10x its slot window: a default-options (checkpointing)
// KV over a deliberately small log, so the rate includes the whole
// seal/publish/quorum-ack/recycle cycle many times over. A fixed-capacity
// log would return ErrLogFull a tenth of the way in — this benchmark is
// the recorded proof that write streams are unbounded. cap bounds wall
// time on the slow (SAN) substrate; Committed reports how much of the
// target landed inside it.
func benchKVSustained(n int, substrate string, budget time.Duration) (harness.KVSustainedPoint, error) {
	slots := 512
	opts := []omegasm.Option{
		omegasm.WithN(n),
		omegasm.WithStepInterval(100 * time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	}
	if substrate == "san" {
		slots = 128 // quorum I/O per commit: keep the 10x stream short
		opts = append(opts,
			omegasm.WithSAN(omegasm.SANConfig{Disks: 3}),
			omegasm.WithStepInterval(500*time.Microsecond),
			omegasm.WithTimerUnit(10*time.Millisecond),
		)
	}
	c, err := omegasm.New(opts...)
	if err != nil {
		return harness.KVSustainedPoint{}, err
	}
	if err := c.Start(); err != nil {
		return harness.KVSustainedPoint{}, err
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		return harness.KVSustainedPoint{}, fmt.Errorf("no agreement on %s substrate", substrate)
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(slots), omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		return harness.KVSustainedPoint{}, err
	}
	defer kv.Close()

	target := 10 * slots
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: stay at most 256 commands ahead of the applied index
		defer wg.Done()
		for k := 0; k < target && !stop.Load(); {
			if k < kv.Applied()+256 {
				if err := kv.Set(uint16(k%1024), uint16(k)); err == nil {
					k++
					continue
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	start := time.Now()
	deadline := start.Add(budget)
	for kv.Applied() < target && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	commits := kv.Applied()
	elapsed := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	if commits < target {
		fmt.Printf("  (n=%d %s: wall-time cap hit at %d of %d commands)\n", n, substrate, commits, target)
	}
	return harness.KVSustainedPoint{
		Procs:           n,
		Substrate:       substrate,
		Slots:           slots,
		CheckpointEvery: kv.CheckpointEvery(),
		TargetCommands:  target,
		Committed:       commits,
		Checkpoints:     kv.Checkpoints(),
		CommitsPerSec:   float64(commits) / elapsed,
	}, nil
}

// benchShardedKVScaling measures aggregate commit capacity of the sharded
// store at 1..8 shards, batched vs unbatched, under the deterministic
// virtual-time engine: each shard's machines run a closed-loop saturation
// workload (SimShardedKV with SaturateWindow), every machine owns a
// virtual processor, and one virtual tick is defined as 1us. The
// virtual-time framing is deliberate: shard pipelines are independent by
// construction, and this measures that parallel capacity exactly and
// reproducibly even on a single-core benchmark host, where a wall-clock
// run would only measure the host's core count. Live-host numbers for
// the same stack are in BenchmarkShardedKVThroughput (go test -bench).
// The grid is repeated at each GOMAXPROCS in gmps: virtual-time numbers
// must come out identical at every setting — the recorded proof that the
// measurement is host-independent (the live KV throughput rows, by
// contrast, scale with GOMAXPROCS).
func benchShardedKVScaling(gmps []int) ([]harness.ShardedKVScalingPoint, error) {
	const (
		horizonTicks = 30_000 // 30ms of virtual time
		procs        = 3
		window       = 256
	)
	virtualSec := float64(horizonTicks) * 1e-6
	var points []harness.ShardedKVScalingPoint
	for _, gmp := range gmps {
		base := map[int]float64{} // batch -> single-shard commits/s
		var gmpErr error
		harness.WithGoMaxProcs(gmp, func() {
			for _, batch := range []int{1, 32} {
				// Size each log so no shard can fill it within the horizon: a
				// capacity-capped run would fake perfectly linear scaling.
				slots := 4096
				if batch == 1 {
					slots = 8192
				}
				for _, shards := range []int{1, 2, 4, 8} {
					res, err := omegasm.SimShardedKV(omegasm.SimShardedKVConfig{
						Shards:  shards,
						N:       procs,
						Seed:    1,
						Horizon: horizonTicks,
						Slots:   slots,
						// Fixed-capacity logs keep this a pure batching/sharding
						// measurement (and keep the capacity warning meaningful);
						// the recycling overhead is measured by the sustained
						// benchmark instead.
						CheckpointEvery: -1,
						BatchSize:       batch,
						SaturateWindow:  window,
					})
					if err != nil {
						gmpErr = err
						return
					}
					for sh, sr := range res.Shards {
						if sr.SlotsUsed >= slots {
							fmt.Printf("  (warning: shards=%d batch=%d: shard %d filled its %d-slot log; rate is capacity-capped)\n",
								shards, batch, sh, slots)
						}
					}
					pt := harness.ShardedKVScalingPoint{
						Shards:            shards,
						ProcsPerShard:     procs,
						BatchSize:         batch,
						Mode:              "sim-virtual-time",
						Substrate:         "atomic",
						GoMaxProcs:        gmp,
						CommittedCommands: res.TotalCommitted,
						SlotsUsed:         res.TotalSlots,
						CommitsPerSec:     float64(res.TotalCommitted) / virtualSec,
					}
					if res.TotalSlots > 0 {
						pt.AvgBatch = float64(res.TotalCommitted) / float64(res.TotalSlots)
					}
					if shards == 1 {
						base[batch] = pt.CommitsPerSec
					}
					if base[batch] > 0 {
						pt.SpeedupVsOneShard = pt.CommitsPerSec / base[batch]
					}
					points = append(points, pt)
				}
			}
		})
		if gmpErr != nil {
			return nil, gmpErr
		}
	}
	return points, nil
}

// benchFleetQueries starts a fleet and hammers the cached Leader fast path
// from queriers goroutines for dur.
func benchFleetQueries(clusters, n, queriers int, dur time.Duration) (harness.FleetQueryPoint, error) {
	f, err := omegasm.NewFleet(
		omegasm.WithClusters(clusters),
		omegasm.WithN(n),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		return harness.FleetQueryPoint{}, err
	}
	if err := f.Start(); err != nil {
		return harness.FleetQueryPoint{}, err
	}
	defer f.Stop()
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		return harness.FleetQueryPoint{}, fmt.Errorf("fleet of %d clusters did not agree", clusters)
	}

	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var count int64
			for i := 0; !stop.Load(); i++ {
				f.Leader((q + i) % clusters)
				count++
			}
			total.Add(count)
		}(q)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return harness.FleetQueryPoint{
		Clusters:        clusters,
		ProcsPerCluster: n,
		Queriers:        queriers,
		QueriesPerSec:   float64(total.Load()) / elapsed,
	}, nil
}
