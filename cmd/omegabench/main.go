// Command omegabench regenerates every figure/table of the reproduction
// (see DESIGN.md's experiment index) and prints the measurements and
// claim verdicts.
//
// Usage:
//
//	omegabench [-quick] [-seeds N] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"omegasm/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "smaller horizons and seed counts")
	seeds := flag.Int("seeds", 0, "seeded repetitions per data point (0: default)")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := harness.Config{Quick: *quick, Seeds: *seeds}
	failed := 0
	for _, e := range harness.All() {
		fmt.Fprintf(w, "\n================================================================\n")
		fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper artifact: %s\n", e.Paper)
		fmt.Fprintf(w, "================================================================\n")
		outc, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
			continue
		}
		for _, tbl := range outc.Tables {
			fmt.Fprintf(w, "\n%s", tbl.Render())
		}
		if outc.Report != nil && len(outc.Report.Verdicts) > 0 {
			fmt.Fprintf(w, "\nverdicts:\n%s", outc.Report)
			if !outc.Report.AllOK() {
				failed++
			}
		}
		for _, n := range outc.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintf(w, "\n")
	if failed > 0 {
		fmt.Fprintf(w, "omegabench: %d experiment(s) with failures\n", failed)
		return 1
	}
	fmt.Fprintf(w, "omegabench: all experiments passed\n")
	return 0
}
