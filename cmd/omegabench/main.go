// Command omegabench regenerates every figure/table of the reproduction
// (see DESIGN.md's experiment index) and prints the measurements and
// claim verdicts.
//
// Usage:
//
//	omegabench [-quick] [-seeds N] [-out FILE]
//	omegabench -bench [-benchdir DIR] [-benchdur D]
//
// With -bench it instead runs the performance benchmarks of the
// instrumentation, query and replication layers and writes
// machine-readable BENCH_<name>.json files (census contention: lock-free
// vs global-mutex census; fleet leader queries: the cached multi-cluster
// fast path; kv throughput: the Omega-driven replicated store on the
// atomic and SAN substrates), so the perf trajectory is recorded run over
// run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"omegasm"
	"omegasm/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "smaller horizons and seed counts")
	seeds := flag.Int("seeds", 0, "seeded repetitions per data point (0: default)")
	out := flag.String("out", "", "also write the report to this file")
	bench := flag.Bool("bench", false, "run the perf benchmarks and emit BENCH_*.json instead of the experiments")
	benchdir := flag.String("benchdir", ".", "directory for BENCH_*.json files")
	benchdur := flag.Duration("benchdur", 300*time.Millisecond, "measurement window per benchmark point")
	flag.Parse()

	if *bench {
		return runBench(*benchdir, *benchdur)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := harness.Config{Quick: *quick, Seeds: *seeds}
	failed := 0
	for _, e := range harness.All() {
		fmt.Fprintf(w, "\n================================================================\n")
		fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper artifact: %s\n", e.Paper)
		fmt.Fprintf(w, "================================================================\n")
		outc, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
			continue
		}
		for _, tbl := range outc.Tables {
			fmt.Fprintf(w, "\n%s", tbl.Render())
		}
		if outc.Report != nil && len(outc.Report.Verdicts) > 0 {
			fmt.Fprintf(w, "\nverdicts:\n%s", outc.Report)
			if !outc.Report.AllOK() {
				failed++
			}
		}
		for _, n := range outc.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintf(w, "\n")
	if failed > 0 {
		fmt.Fprintf(w, "omegabench: %d experiment(s) with failures\n", failed)
		return 1
	}
	fmt.Fprintf(w, "omegabench: all experiments passed\n")
	return 0
}

// runBench measures the instrumentation and query layers and writes one
// BENCH_*.json per benchmark.
func runBench(dir string, dur time.Duration) int {
	fmt.Printf("census contention (monitored, %v per point):\n", dur)
	var censusPoints []harness.CensusContentionPoint
	for _, procs := range []int{2, 4, 8, 16} {
		pt := harness.BenchCensusContention(procs, dur)
		censusPoints = append(censusPoints, pt)
		fmt.Printf("  procs=%2d  mutex=%8.2fM ops/s  lockfree=%8.2fM ops/s  speedup=%.2fx\n",
			pt.Procs, pt.MutexOpsPerSec/1e6, pt.LockFreeOpsPerSec/1e6, pt.Speedup)
	}
	path, err := harness.WriteBenchJSON(dir, harness.BenchReport{
		Name:   "census_contention",
		Unit:   "instrumented register accesses/sec (all processes)",
		Points: censusPoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n\n", path)

	fmt.Printf("fleet leader queries (%v per point):\n", dur)
	var fleetPoints []harness.FleetQueryPoint
	for _, clusters := range []int{1, 4, 8} {
		pt, err := benchFleetQueries(clusters, 3, 8, dur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: fleet bench: %v\n", err)
			return 1
		}
		fleetPoints = append(fleetPoints, pt)
		fmt.Printf("  clusters=%2d  %8.2fM queries/s (%d queriers)\n",
			pt.Clusters, pt.QueriesPerSec/1e6, pt.Queriers)
	}
	path, err = harness.WriteBenchJSON(dir, harness.BenchReport{
		Name:   "fleet_leader_queries",
		Unit:   "Leader() queries/sec (all queriers)",
		Points: fleetPoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n\n", path)

	fmt.Printf("replicated KV throughput (%v per point):\n", dur)
	var kvPoints []harness.KVThroughputPoint
	for _, p := range []struct {
		n   int
		sub string
	}{{3, "atomic"}, {5, "atomic"}, {3, "san"}} {
		pt, err := benchKVThroughput(p.n, p.sub, dur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: kv bench: %v\n", err)
			return 1
		}
		kvPoints = append(kvPoints, pt)
		fmt.Printf("  n=%d %-6s  %8.0f commits/s  %10.0f reads/s\n",
			pt.Procs, pt.Substrate, pt.CommitsPerSec, pt.ReadsPerSec)
	}
	path, err = harness.WriteBenchJSON(dir, harness.BenchReport{
		Name:   "kv_throughput",
		Unit:   "committed log entries/sec and local reads/sec",
		Points: kvPoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n\n", path)

	fmt.Printf("engine wakeup: polling vs wake-driven KV commits (%v per point):\n", dur)
	var wakePoints []harness.EngineWakeupPoint
	for _, p := range []struct {
		procs    int
		interval time.Duration
	}{{3, 200 * time.Microsecond}, {5, 200 * time.Microsecond}, {3, time.Millisecond}} {
		pt, err := harness.BenchEngineWakeup(p.procs, p.interval, dur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: wakeup bench: %v\n", err)
			return 1
		}
		wakePoints = append(wakePoints, pt)
		fmt.Printf("  n=%d tick=%4.0fus  polling=%8.0f commits/s  wake=%8.0f commits/s  speedup=%.1fx\n",
			pt.Procs, pt.IntervalUsec, pt.PollingCommitsPerSec, pt.WakeCommitsPerSec, pt.Speedup)
	}
	path, err = harness.WriteBenchJSON(dir, harness.BenchReport{
		Name:   "engine_wakeup",
		Unit:   "synchronous committed writes/sec, polling driver vs wake-driven engine",
		Points: wakePoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// benchKVThroughput elects a leader, serves the replicated KV store and
// measures commit and local-read throughput over dur. The writer keeps a
// bounded queue of async Sets ahead of the applied index so the log is
// never starved and never floods.
func benchKVThroughput(n int, substrate string, dur time.Duration) (harness.KVThroughputPoint, error) {
	opts := []omegasm.Option{
		omegasm.WithN(n),
		omegasm.WithStepInterval(100 * time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	}
	if substrate == "san" {
		// An ideal (zero-latency) SAN isolates the quorum-protocol cost;
		// pace a little slower than atomic memory to keep elections calm.
		opts = append(opts,
			omegasm.WithSAN(omegasm.SANConfig{Disks: 3}),
			omegasm.WithStepInterval(500*time.Microsecond),
			omegasm.WithTimerUnit(10*time.Millisecond),
		)
	}
	c, err := omegasm.New(opts...)
	if err != nil {
		return harness.KVThroughputPoint{}, err
	}
	if err := c.Start(); err != nil {
		return harness.KVThroughputPoint{}, err
	}
	defer c.Stop()
	if _, ok := c.WaitForAgreement(20 * time.Second); !ok {
		return harness.KVThroughputPoint{}, fmt.Errorf("no agreement on %s substrate", substrate)
	}
	kv, err := omegasm.NewKV(c, omegasm.KVSlots(1<<15), omegasm.KVStepInterval(50*time.Microsecond))
	if err != nil {
		return harness.KVThroughputPoint{}, err
	}
	defer kv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: stay at most 256 commands ahead of the applied index
		defer wg.Done()
		for k := 0; !stop.Load(); {
			if k < kv.Applied()+256 {
				switch err := kv.Set(uint16(k%1024), uint16(k)); err {
				case nil:
					k++
					continue
				case omegasm.ErrLogFull:
					return // capacity exhausted; the sampler ends the window
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var reads atomic.Int64
	go func() { // reader: hammer local Gets, yielding so the replication
		// driver is never starved of CPU or the store lock
		defer wg.Done()
		var count int64
		for k := 0; !stop.Load(); k++ {
			kv.Get(uint16(k % 1024))
			count++
			if count%256 == 0 {
				runtime.Gosched()
			}
		}
		reads.Store(count)
	}()

	// Sample until dur elapses, ending the window early if the log nears
	// capacity: measuring an exhausted log would flatline the recorded
	// rate as benchdur grows.
	applied0 := kv.Applied()
	start := time.Now()
	deadline := start.Add(dur)
	highWater := kv.Capacity() - 512
	for time.Now().Before(deadline) && kv.Applied() < highWater {
		time.Sleep(5 * time.Millisecond)
	}
	commits := kv.Applied() - applied0
	elapsed := time.Since(start).Seconds()
	if kv.Applied() >= highWater {
		fmt.Printf("  (n=%d %s: log filled after %.0fms; rate uses the shortened window)\n",
			n, substrate, elapsed*1000)
	}
	stop.Store(true)
	wg.Wait()
	return harness.KVThroughputPoint{
		Procs:         n,
		Substrate:     substrate,
		CommitsPerSec: float64(commits) / elapsed,
		ReadsPerSec:   float64(reads.Load()) / elapsed,
	}, nil
}

// benchFleetQueries starts a fleet and hammers the cached Leader fast path
// from queriers goroutines for dur.
func benchFleetQueries(clusters, n, queriers int, dur time.Duration) (harness.FleetQueryPoint, error) {
	f, err := omegasm.NewFleet(
		omegasm.WithClusters(clusters),
		omegasm.WithN(n),
		omegasm.WithStepInterval(100*time.Microsecond),
		omegasm.WithTimerUnit(time.Millisecond),
	)
	if err != nil {
		return harness.FleetQueryPoint{}, err
	}
	if err := f.Start(); err != nil {
		return harness.FleetQueryPoint{}, err
	}
	defer f.Stop()
	if _, ok := f.WaitForAgreement(20 * time.Second); !ok {
		return harness.FleetQueryPoint{}, fmt.Errorf("fleet of %d clusters did not agree", clusters)
	}

	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var count int64
			for i := 0; !stop.Load(); i++ {
				f.Leader((q + i) % clusters)
				count++
			}
			total.Add(count)
		}(q)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return harness.FleetQueryPoint{
		Clusters:        clusters,
		ProcsPerCluster: n,
		Queriers:        queriers,
		QueriesPerSec:   float64(total.Load()) / elapsed,
	}, nil
}
