package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"omegasm"
)

// campaignOpts carries the -campaign mode's flag values.
type campaignOpts struct {
	seeds     int
	seedBase  int64
	out       string
	mutate    string
	expect    string
	scenarios string
	keep      int
}

// parseCampaignMutation maps the -campmutate flag to a SimMutation.
func parseCampaignMutation(s string) (omegasm.SimMutation, error) {
	switch s {
	case "", "none":
		return omegasm.MutNone, nil
	case "drop-quorum-ack":
		return omegasm.MutDropQuorumAck, nil
	case "premature-lease-extend":
		return omegasm.MutPrematureLeaseExtend, nil
	}
	return omegasm.MutNone, fmt.Errorf("unknown mutation %q (want none, drop-quorum-ack or premature-lease-extend)", s)
}

// runCampaignCmd executes the adversarial scenario campaign: a seed
// sweep over the stock (or mutated) grid, a scored report on stdout and
// optionally as JSON, an expectation gate for CI, and optionally a
// refresh of the committed scenario fixtures.
func runCampaignCmd(o campaignOpts) int {
	mut, err := parseCampaignMutation(o.mutate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	cfg := omegasm.CampaignConfig{Seeds: o.seeds, SeedBase: o.seedBase, Keep: o.keep, Mutation: mut}
	rep, err := omegasm.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
		return 1
	}
	fmt.Printf("campaign: %d runs over %d grid points, seeds %d..%d\n",
		rep.Runs, len(rep.Points), rep.SeedBase, rep.SeedBase+int64(rep.Seeds)-1)
	fmt.Printf("  violation runs: %d   near-miss runs: %d\n", rep.ViolationRuns, rep.NearMissRuns)
	fmt.Printf("  worst runs:\n")
	for _, w := range rep.Worst {
		fmt.Printf("    %-20s seed=%-6d score=%-8d viol=%d near=%d churn=%d stall=%d",
			w.Point, w.Seed, w.Score, w.Violations, w.NearMisses, w.LeaderChanges, w.CommitStallMax)
		if w.FirstViolation != "" {
			fmt.Printf("  %s", w.FirstViolation)
		}
		fmt.Println()
	}
	if o.out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(o.out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		fmt.Printf("report written to %s\n", o.out)
	}
	if o.scenarios != "" {
		scs, err := omegasm.BuildWorstScenarios(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		if err := os.MkdirAll(o.scenarios, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
			return 1
		}
		for _, sc := range scs {
			raw, err := json.MarshalIndent(sc, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
				return 1
			}
			path := filepath.Join(o.scenarios, sc.Name+".json")
			if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "omegabench: %v\n", err)
				return 1
			}
			fmt.Printf("scenario %s (seed %d, churn %d) written to %s\n",
				sc.Name, sc.Config.Seed, sc.Expect.LeaderChanges, path)
		}
	}
	switch o.expect {
	case "", "none":
	case "clean":
		if rep.ViolationRuns > 0 {
			fmt.Fprintf(os.Stderr, "omegabench: expected a clean campaign, got %d violation runs\n", rep.ViolationRuns)
			return 1
		}
		fmt.Println("expectation met: campaign is clean")
	case "violations":
		if rep.ViolationRuns == 0 {
			fmt.Fprintf(os.Stderr, "omegabench: expected violations (mutation %q seeded), got none — the checker is vacuous\n", o.mutate)
			return 1
		}
		fmt.Printf("expectation met: mutation %q detected in %d/%d runs\n", o.mutate, rep.ViolationRuns, rep.Runs)
	default:
		fmt.Fprintf(os.Stderr, "omegabench: unknown -campexpect %q (want none, clean or violations)\n", o.expect)
		return 1
	}
	return 0
}
